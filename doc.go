// Package tatooine is a reproduction of "Mixed-instance querying: a
// lightweight integration architecture for data journalism" (Bonaque
// et al., VLDB 2016): a mediator evaluating Conjunctive Mixed Queries
// over a mixed instance — a custom RDF graph plus heterogeneous data
// sources (full-text document stores, relational databases, RDF
// endpoints) — with keyword-based query generation over source
// digests and PMI tag-cloud analytics.
//
// The implementation lives under internal/ (one package per
// subsystem; see DESIGN.md for the inventory), the runnable
// demonstrations under examples/, the CLI under cmd/, and the
// experiment reproduction benchmarks in bench_test.go (indexed in
// EXPERIMENTS.md).
package tatooine
