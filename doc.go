// Package tatooine is a reproduction of "Mixed-instance querying: a
// lightweight integration architecture for data journalism" (Bonaque
// et al., VLDB 2016): a mediator evaluating Conjunctive Mixed Queries
// over a mixed instance — a custom RDF graph plus heterogeneous data
// sources (full-text document stores, relational databases, RDF
// endpoints) — with keyword-based query generation over source
// digests and PMI tag-cloud analytics.
//
// The implementation lives under internal/ (one package per
// subsystem; see DESIGN.md for the inventory), the runnable
// demonstrations under examples/, the CLI under cmd/, and the
// experiment reproduction benchmarks in bench_test.go (indexed in
// EXPERIMENTS.md).
//
// # Serving queries
//
// Beyond the one-shot CLI, "tatooine serve" runs the mediator as a
// long-running HTTP service (internal/server): one shared
// core.Instance answers POST /cmq concurrently, with GET /stats and
// GET /healthz alongside. Two cache layers keep the serving hot path
// off the network:
//
//   - a whole-query LRU result cache keyed on the parsed query's
//     canonical form (core.CMQ.CanonicalKey — surface-syntax variants
//     share an entry, semantically distinct queries never do), fronted
//     by a single-flight guard so identical concurrent queries execute
//     once (-result-cache entries; negative disables caching and
//     coalescing);
//   - a per-source sub-query cache (source.Cached) memoizing
//     Execute(sub, params) by (URI, language, text, params), so
//     repeated bind-join probes — notably through federation.Client —
//     hit memory (-probe-cache entries; 0 = default 1024, negative
//     disables).
//
// BenchmarkServeThroughput measures the end-to-end HTTP path in both
// cached and cold configurations.
package tatooine
