// Package tatooine is a reproduction of "Mixed-instance querying: a
// lightweight integration architecture for data journalism" (Bonaque
// et al., VLDB 2016): a mediator evaluating Conjunctive Mixed Queries
// over a mixed instance — a custom RDF graph plus heterogeneous data
// sources (full-text document stores, relational databases, RDF
// endpoints) — with keyword-based query generation over source
// digests and PMI tag-cloud analytics.
//
// The implementation lives under internal/ (one package per
// subsystem; see DESIGN.md for the inventory), the runnable
// demonstrations under examples/, the CLI under cmd/, and the
// experiment reproduction benchmarks in bench_test.go (indexed in
// EXPERIMENTS.md).
//
// # Serving queries
//
// Beyond the one-shot CLI, "tatooine serve" runs the mediator as a
// long-running HTTP service (internal/server): one shared
// core.Instance answers POST /cmq concurrently, with GET /stats and
// GET /healthz alongside. Two cache layers keep the serving hot path
// off the network:
//
//   - a whole-query LRU result cache keyed on the parsed query's
//     canonical form (core.CMQ.CanonicalKey — surface-syntax variants
//     share an entry, semantically distinct queries never do), fronted
//     by a single-flight guard so identical concurrent queries execute
//     once (-result-cache entries; negative disables caching and
//     coalescing);
//   - a per-source sub-query cache (source.Cached) memoizing
//     Execute(sub, params) by (URI, language, text, params), so
//     repeated bind-join probes — notably through federation.Client —
//     hit memory (-probe-cache entries; 0 = default 1024, negative
//     disables; -probe-ttl expires entries after a duration so a
//     long-running mediator stops serving arbitrarily stale remote
//     rows).
//
// BenchmarkServeThroughput measures the end-to-end HTTP path in both
// cached and cold configurations.
//
// # Mutation and epoch-based invalidation
//
// The paper's instances are dynamic: journalists keep loading new
// tweets, INSEE tables and discovered endpoints into I = (G, D)
// mid-session. core.Instance therefore carries a monotonically
// increasing epoch, bumped by every mutation through its API —
// AddTriples / RemoveTriples on G, AddSource / DropSource on D, and
// the force-expiry entry points Invalidate / InvalidateSource. Every
// cache derived from the instance validates against the epoch, so the
// very next query after a mutation can never be answered from
// pre-mutation state:
//
//   - the server's result cache and single-flight map key on
//     (epoch, CanonicalKey) and lazily flush the superseded
//     generation — an in-flight leader that started before a mutation
//     finishes under the old epoch's key, invisible to post-mutation
//     requests;
//   - per-source probe caches (source.Cached) drop with their source
//     on DropSource, and expose Invalidate() (flushing memoized
//     results AND cost estimates) for sources mutated underneath the
//     mediator; Registry.InvalidateCaches reaches every interposed
//     cache, including the memoized wrappers of dynamically
//     discovered sources.
//
// Over HTTP ("tatooine serve"): POST /graph inserts triples (JSON
// {"triples": "<turtle>"} or raw Turtle body), DELETE /graph removes
// them, POST /sources dials and registers a federation endpoint,
// DELETE /sources/{uri} (path-escaped, or ?uri=) drops one, and
// POST /admin/invalidate force-expires probe caches (optionally
// scoped to one source). GET /stats reports the instance epoch plus
// the mutation, generation-flush and probe-invalidation counters.
//
// # Incremental delta-saturation (internal/reason)
//
// Graph atoms of a saturated instance answer over G∞ — the paper's
// answer semantics (§2.1). Recomputing G∞ from scratch whenever the
// epoch moves (the PR 3 design) makes a single-triple insert cost a
// whole-graph saturation on the next query, so core.Instance now feeds
// its mutation delta straight into reason.Engine, an incremental RDFS
// reasoner that owns the materialized G∞:
//
//   - inserts run the semi-naive rules seeded only from the delta
//     (rdf.DeltaConsequences joins each new triple against the
//     saturated graph in both premise positions of every rule; fresh
//     conclusions re-enter the frontier). New schema triples trigger
//     the targeted re-closure of exactly the affected hierarchy
//     slices.
//   - deletes run delete-and-rederive (DRed): trace the over-deletion
//     cone of consequences reachable from the deleted triples
//     (explicit base facts survive), resurrect cone members that keep
//     a well-founded derivation — checked READ-ONLY against the
//     hypothetical post-delete graph (rdf.DerivableExcept), so
//     concurrent queries never observe a still-entailed triple
//     missing — and only then remove the rest. Deleting a schema
//     triple, or a cone exceeding a configurable fraction of the
//     graph (reason.Config.MaxDeleteFraction), falls back to a full
//     recompute.
//
// core.WithFullResaturation ("tatooine serve -delta-saturation=false")
// restores the recompute-per-epoch path for ablation, and GET /stats
// carries a "saturation" block (mode, derived count, deltaApplies /
// fullRecomputes, last apply duration). BenchmarkDeltaSaturation
// measures the mutate-then-query loop: ~390x faster than the
// full-recompute path on a 1000-politician graph. A property-style
// test (internal/reason) keeps the maintained G∞ triple-identical to
// rdf.Saturate-from-scratch under random mixed insert/delete
// sequences.
//
// # Batched bind-join pushdown
//
// The paper's bind-join strategy ships one native sub-query per outer
// binding — for a remote source that is one HTTP round trip per
// binding. Sources may implement the optional source.BatchProber
// capability (ExecuteBatch: one sub-query, many parameter tuples, one
// native round trip); the executor then chunks a bind join's distinct
// outer tuples into batches of ExecOptions.ProbeBatch (default 64,
// "tatooine serve -probe-batch") and ships each chunk as ONE
// sub-query, turning O(bindings) round trips into O(bindings/batch).
//
//   - source.RelSource pushes batches down as SQL: each `col = ?`
//     probe predicate is rewritten into `col IN (v1, ..., vk)` per
//     batch and the single result is split back per tuple — exactly,
//     including multi-parameter cross products; shapes whose meaning
//     would change (LIMIT, DISTINCT, aggregation, '?' outside a
//     top-level equality) report source.ErrBatchUnsupported and fall
//     back to per-tuple probes.
//   - source.RDFSource and source.DocSource evaluate batches
//     VALUES-style: parse once, evaluate per tuple in-process.
//   - federation.Client ships the whole batch as one POST /batch
//     request; the remote endpoint pushes it natively into its store
//     when it can and loops server-side otherwise — either way the
//     per-binding network round trips collapse into one. Endpoints
//     predating the route degrade cleanly to per-tuple probes.
//   - source.Cached answers cached tuples from the probe cache and
//     forwards only the misses as a smaller batch, filling the cache
//     per tuple from the batch result.
//
// ExecStats.BatchProbes (and the /stats batchProbes counter) reports
// how many batched dispatches ran; POST /cmq with {"explain": true}
// returns the plan plus each atom's batched-vs-per-probe decision
// without executing. BenchmarkBatchedBindJoin measures the round-trip
// collapse against a latency-injected remote source.
//
// Batch sizes adapt per source when a core.BatchTuner is configured
// (on by default under "tatooine serve", off with
// -adaptive-batch=false): observed batch round-trip latency grows or
// shrinks the effective size within [16, 256] — fast round trips are
// paying proportionally too much per-request overhead, slow ones
// serialize too much work behind one request. ExecStats.BatchSizes and
// the /stats probeBatchSizes map report the current choice per source.
//
// # Pipelined operator-DAG execution
//
// The planner (internal/core/plan.go) compiles a CMQ into a dependency
// DAG rather than barrier-synchronized waves: each atom becomes a
// PlanStep whose Deps are the producers of its InVars (dynamic atoms
// depend on everything scheduled before them, because their URI set is
// resolved from the full intermediate result). Join order is greedy
// and selectivity-aware — atoms connected to what is already scheduled
// beat disconnected ones (avoiding cross products), then smaller
// estimated row counts win. Estimates come from the two-dimensional
// source.Estimator capability, Estimate(q, numParams) = (rows, cost):
// rows drives ordering (it is what intermediates grow with), cost
// records total effort (scan work + rows, plus
// federation.RemoteCostOverhead for remote sources); sources
// implementing only the legacy single-int EstimateCost participate
// through a default adapter (rows = cost).
//
// The executor (internal/core/exec.go) runs each DAG node as soon as
// its OWN dependencies finish: independent subtrees overlap with
// downstream bind joins instead of idling at wave boundaries, so on
// latency-skewed plans the wall clock drops from sum-of-waves to the
// longest dependency chain. A node's outer input is the natural join
// of its dependencies' results — a superset of the full intermediate
// projected on the variables it needs, so the final join (a streaming
// left-deep hash-join pipeline feeding the finishing operators without
// materializing) returns exactly the wave answer. Plan.Explain and
// {"explain": true} render the DAG:
//
//	plan for qSIA(?t, ?id) :- ... (2 nodes, depth 2)
//	  node 0: atom 0 [G] scan rows=1 cost=3 wave 0 deps=(-) out=(x,id)
//	  node 1: atom 1 [<solr://tweets>] bind-join(id) rows=2 cost=4 wave 1 deps=(0) out=(t,id)
//
// and ExecStats.Nodes reports per-node actual row counts next to the
// estimates, so misestimates are visible per query. The pre-DAG
// scheduler survives behind ExecOptions.WaveBarrier ("tatooine serve
// -wave-barrier") for ablation; a property test keeps both paths
// row-multiset-identical over randomized CMQs, and
// BenchmarkPipelinedExec measures the overlap win (a three-hop fast
// chain against a slow sibling branch: ≥1.6x lower wall clock than the
// barrier path).
//
// Execution is cancellable end to end: the POST /cmq request context
// flows through Instance.ExecuteContext into every DAG node, probe
// fan-out and federation.Client HTTP round trip
// (source.ContextExecutor / source.ContextBatchProber), so a
// disconnected client or an expired deadline stops scheduled nodes,
// refuses further probes and aborts in-flight remote requests instead
// of leaking goroutines. The mediator's single-flight guard counts
// interested requests per flight and cancels the shared execution only
// when the LAST one disconnects — a leader's disconnect never poisons
// coalesced followers. ExecOptions.MaxFanout defaults to a
// GOMAXPROCS-derived bound (DefaultMaxFanout, clamped to [8, 64]);
// "tatooine serve -fanout" overrides it.
//
// # Tuple-level streaming execution
//
// On the default DAG path, results stream wire-to-wire instead of
// materializing between operators. Every DAG node publishes rows
// progressively as its probe batches land (internal/core/stream.go): a
// downstream bind join consumes its dependency through a cursor and
// launches its first probe batch as soon as the first upstream rows
// exist, and the most expensive terminal node feeds the root join
// through a bounded channel of row batches — so the first result rows
// reach the client after roughly one probe round trip, while the rest
// of the fan-out is still in flight. Instance.ExecuteStream exposes
// the incremental result (StreamingResult.NextBatch / Close);
// ExecuteContext drains the same pipeline, so both APIs return
// identical row multisets (pinned by a randomized property test).
// Blocking operators (ORDER BY, aggregation) still consume their full
// input before the first row; everything else — projection, DISTINCT,
// LIMIT — passes rows through.
//
// Early termination flows upstream: a LIMIT that reaches its bound (a
// LIMIT without DISTINCT/ORDER BY/aggregates is additionally pushed
// below the projection) closes the stream, which cancels the
// per-query context and with it every in-flight probe and
// federation.Client round trip — LIMIT 1 over a large federated join
// pays for a handful of probes, not all of them. Abandoning a
// StreamingResult mid-drain (Close) cancels the same way; no executor
// goroutine outlives the result.
//
// POST /cmq streams over HTTP when the client asks for it — Accept:
// application/x-ndjson, or {"stream": true} in the JSON body. The
// response is NDJSON (server.StreamRecord), one JSON object per line:
// a {"cols": [...]} header, one {"row": [...]} record per result row
// (flushed batch by batch as the executor produces them), and a
// {"stats": {...}, "cached": bool} trailer with the final ExecStats. A
// failure after rows are on the wire — the 200 status is long since
// sent — terminates the stream with an {"error": "..."} record
// instead of the trailer; rows already delivered stand. Client
// disconnects cancel the pipeline through the request context, and
// GET /stats exposes streamed / inFlightStreams counters (the gauge
// returning to zero is the no-leak check). Streamed responses bypass
// the single-flight guard and are not cached; cache hits produced by
// the JSON path replay in the same NDJSON framing.
//
// ExecOptions.Materialized ("tatooine serve -materialized") disables
// tuple streaming for ablation: every node materializes before its
// consumers start, and /cmq answers from the old buffered path.
// BenchmarkTimeToFirstRow measures the difference on a
// latency-injected federated join: streamed time-to-first-row is ≥3x
// lower, with full-drain throughput unchanged.
//
// # Digest-driven planning and bloom semi-join pruning
//
// The per-source digests (internal/digest) that power keyword-based
// query generation double as planner statistics and a semi-join
// reducer. Each core.Instance keeps a digest catalog: the first query
// that plans against a source fetches or builds its digest through
// digest.ForSource (one /digest round trip for a federation.Client,
// one scan for a local store — memoized in source.Cached under the
// same generation as the probe cache), and catalog entries are keyed
// by the instance's mutation epoch, so statistics can never outlive
// the data they describe. GET /stats carries a "digest" block
// (digestFetches / digestHits / prunedProbes).
//
// Planning: digest.RefineEstimate sharpens the source's flat
// selectivity guess per atom — equality conjuncts contribute
// count/distinct from the target's value set (exactly zero when
// membership proves a literal absent), numeric ranges integrate the
// histogram, and the tightest conjunct wins — so DAG ordering ranks
// atoms by actual expected cardinality and ExecStats.Nodes shows
// est-vs-actual drift tightening. Graph atoms are exempt (digesting G
// per epoch would repay the full-saturation cost the incremental
// reasoner removed).
//
// Pruning: before a bind-join chunk dispatches, digest.ParamMatcher
// maps each parameter position to the digest nodes its value must
// appear in (`col = ?` equality targets for SQL, constant-predicate
// object / rdf:type subject positions for BGPs, non-analyzed
// keyword-equality fields for full-text) and skips outer bindings
// whose values the digest proves absent. Membership "no" is definitive
// because digest construction and probing normalize through the same
// function; false positives only cost a wasted probe. Shapes where an
// empty match still yields rows (aggregates, OPTIONAL patterns,
// analyzed CONTAINS fields) refuse pruning entirely, as do NULL
// bindings and digests decoded from a foreign wire version (every
// bloom and digest carries a version field; unknown versions decode as
// pass-through filters that never exclude, so mixed-version
// federations degrade to no pruning, never to lost rows). Surviving
// bindings ship their per-position bloom filters inside POST /batch
// ("prune"), letting the remote endpoint skip excluded tuples
// server-side and answer them as empty results, position-aligned; old
// endpoints ignore the unknown field. Fully pruned chunks never reach
// the wire — and deliberately leave the adaptive BatchTuner untouched,
// since no round trip was observed. ExecStats.PrunedProbes counts the
// skipped bindings, and {"explain": true} annotates each bind-join
// atom with its pruning decision — the plan line carries the refined
// row estimate and the atom entry says why pruning does or does not
// apply:
//
//	node 1: atom 1 [<sql://remote>] bind-join(k) rows=1 cost=48 wave 1 deps=(0) out=(k,v)
//
//	"pruning": "digest covers the parameter positions; bindings the
//	            digest excludes are skipped before probing"
//
// "tatooine serve -digest-planning=false" is the ablation: flat source
// estimates, no pruning, results identical either way (pinned by a
// randomized property test over partially disjoint sources).
// BenchmarkSemiJoinPruning measures a low-match-rate federated join
// (256 outer bindings, 16 matching): ≥5x fewer probes on the wire and
// ≥2x lower wall clock than the ablation.
//
// # Persistent storage engine
//
// The mediator's own state — the custom graph G, its materialized
// saturation G∞, the mutation epoch and registered-source metadata —
// can live on disk instead of in process memory. The stack is built
// from scratch, bottom-up:
//
//   - internal/pager: a page file (4 KiB pages) behind a clock
//     (second-chance) cache, fronted by a redo-only write-ahead log.
//     Commit appends the dirty pages plus a CRC-guarded commit frame
//     and fsyncs once; crash recovery replays committed frames and
//     discards a torn tail; Checkpoint folds the WAL back into the
//     main file. Path "" runs the same pager purely in memory.
//   - internal/btree: order-N B-trees over pager pages — insert,
//     delete, point lookup and ordered range cursors.
//   - internal/store: named keyspaces (one B-tree each) over one
//     shared pager, so a single Commit covers every keyspace touched
//     by a mutation — store.Store is the engine boundary the layers
//     above program against.
//
// rdf.Graph and relstore.Table are backend-split: the default
// in-memory backends (nested triple maps; row slices + hash indexes)
// are bit-for-bit the pre-engine behavior, while rdf.OpenGraph and
// relstore.OpenDatabase mount the same APIs on store keyspaces — SPO /
// POS / OSP triple permutations as 12-byte composite keys, dictionary
// write-through, binary-encoded rows with persisted secondary indexes
// and primary keys. Equivalence tests drive both backends through
// identical randomized operation sequences and compare every answer.
//
// core.Open(dir) opens a persistent Instance: each mutation commits
// graph pages, saturation pages, epoch and catalog in ONE WAL
// transaction, so a crash between commits rolls the whole instance
// back to the last committed mutation — epoch, G and G∞ can never
// diverge (a SIGKILL crash-recovery test pins exactly this). Reopening
// is a warm boot: the stored G∞ is adopted as-is (reason.Adopt, zero
// recomputes) and incremental maintenance resumes where it left off.
// Instance.Store() exposes the backing store so embedding applications
// co-locate their relational state in the same transactions.
//
// "tatooine serve -data-dir <dir>" runs the mediator persistently: a
// fresh directory is seeded from the generated dataset, a restart
// warm-boots from the stored state, SIGINT/SIGTERM drains in-flight
// requests and checkpoints the WAL on the way down, and GET /stats
// grows a "store" block (pages, cacheHits / cacheMisses, walBytes,
// commits, checkpoints). Without the flag everything runs in memory,
// byte-identical to the pre-engine behavior. BenchmarkWarmBoot
// measures adopt-vs-resaturate on reopen and BenchmarkPointLookupDisk
// the disk-backed triple probe against the in-memory baseline; see
// examples/persistent for the end-to-end walkthrough.
//
// # Observability
//
// internal/obs is a dependency-free observability layer threaded
// through the whole stack: per-query span trees, a Prometheus-text
// metrics registry, and a flight recorder.
//
// Tracing: Instance.ExecuteContext / ExecuteStream open an "execute"
// span (joining the HTTP request's span when the server layer started
// one) with children for planning, digest fetches, every DAG node,
// every probe and probe batch, and every federation round trip. The
// trace crosses processes: federation.Client stamps outgoing calls
// with X-Tat-Trace-Id / X-Tat-Span-Id, a sourced endpoint (or another
// mediator) joins the trace, and its response reports the remote root
// span plus server-side nanoseconds (X-Tat-Server-Ns), so the client
// span splits observed latency into remote compute vs wire time. POST
// /cmq with {"trace": true} returns the span tree — as a "trace"
// block of the JSON reply, or on the NDJSON trailer record — and
// examples/federated renders one.
//
// Metrics: GET /metrics exposes two registries in Prometheus text
// exposition format — the server-scoped one (tat_requests_total,
// result-cache hit/miss, tat_query_seconds and tat_query_ttfr_seconds
// histograms, in-flight gauges) and the process-wide obs.Default
// (per-source probe RTT and batch size, stream backpressure stalls,
// probe/digest cache hits, pager cache hits/misses, WAL commits and
// fsync latency, federation RTT per remote). GET /stats reads the
// same registry, so the two surfaces cannot disagree, and reports
// uptimeSeconds.
//
// Flight recorder: the server keeps the last N completed queries
// (-trace-ring, default 64) with their traces on GET /debug/queries;
// queries at or over -slow-query (default 250ms) are flagged there
// and logged through log/slog. -log-requests adds one structured line
// per request; -pprof mounts net/http/pprof under /debug/pprof/.
// "make verify" runs scripts/obs_vet.sh, which scrapes a live
// mediator's /metrics and rejects printf-style logging outside cmd/.
//
// # Memory model
//
// A persistent mediator runs in bounded memory: every layer that used
// to grow with the instance now works against an explicit budget, so
// an instance several times larger than RAM serves queries instead of
// thrashing or dying.
//
// Page cache: the pager keeps a hard-capped clock cache
// (-page-cache-mb, default 16 MiB at 4 KiB pages). Pages past the cap
// are evicted — clean pages dropped, dirty pages retained until the
// next commit flushes them — and the tat_pager_resident_pages gauge
// reports occupancy, so a flat gauge under a growing store is the
// observable signature of bounded operation. Freed pages go on a
// persistent free list and are reused before the file grows;
// store.Vacuum (auto-triggered when the dead-page ratio passes
// store.DefaultAutoVacuumRatio) compacts reclaimable space, and
// dropped saturation generations return their pages one generation
// deferred so in-flight readers never observe a freed page.
//
// Paged dictionary: the RDF term dictionary no longer materializes
// every term at open. Terms load lazily from prefix-compressed store
// pages on first touch and age out with the page cache, so warm-boot
// cost and steady-state footprint are independent of how many terms
// the instance has accumulated. Relational scans decode only the
// columns a query references (value.DecodeRowProject): pruned columns
// surface as nulls in their original positions and their bytes are
// never copied out of the page.
//
// Spill joins: residual hash joins — the joins the mediator itself
// runs over sub-query results — take a build-side budget
// (-join-mem-budget MiB; ExecOptions.JoinMemBudget bytes; 0 keeps the
// unbounded behavior). A build side that outgrows the budget
// transitions mid-build into a Grace-style partitioned join: both
// inputs hash-partition to a temporary store (NoSync, tiny cache,
// removed on Close), then partitions join one at a time, so peak
// memory tracks the largest partition rather than the whole build
// side. The spilled path is row-multiset-identical to the in-memory
// join (property-tested across all four executor modes), cross
// products never spill (no key to partition on), and the cost is
// visible everywhere: ExecStats.SpilledJoins/SpilledBytes per query,
// tat_spilled_joins_total / tat_spilled_bytes_total process-wide, a
// "memory" block on GET /stats, and a per-atom "spill" verdict from
// explain when a budget is set.
//
// BenchmarkBoundedMemory pins the contract — an on-disk instance
// several times the page-cache budget serving point lookups and a
// deliberately overflowing join while max RSS stays within 1.5x the
// budget — and "make verify" smoke-tests the same setup. See
// examples/boundedmemory for the end-to-end walkthrough.
package tatooine
