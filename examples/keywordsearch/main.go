// Keywordsearch demonstrates the paper's §2.2 keyword-based querying:
// digests are computed for every source of the mixed instance, the
// user's keywords are located in them, shortest join paths between the
// matches are found, and each path is translated into an executable
// Conjunctive Mixed Query — shown, then executed.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"tatooine/internal/datagen"
	"tatooine/internal/digest"
	"tatooine/internal/keyword"
)

func main() {
	keywords := os.Args[1:]
	if len(keywords) == 0 {
		keywords = []string{"head of state", "SIA2016"}
	}

	cfg := datagen.DefaultConfig()
	cfg.NumTweets = 4000
	ds, err := datagen.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	in, err := ds.Instance()
	if err != nil {
		log.Fatal(err)
	}

	// Digest every source under the default space budget.
	cat, err := keyword.BuildCatalog(in, digest.DefaultBudget())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("catalog: %d digests\n", len(cat.Digests()))
	for _, d := range cat.Digests() {
		fmt.Printf("  %-18s %d nodes\n", d.Source, len(d.Nodes))
	}

	// Show where each keyword matches (the "digest matches" the
	// demonstration lets the audience inspect before execution).
	matches, err := cat.Matches(keywords)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndigest matches:")
	for i, kw := range keywords {
		var where []string
		for _, m := range matches[i] {
			exact := "bloom"
			if m.Exact {
				exact = "exact"
			}
			where = append(where, fmt.Sprintf("%s@%s(%s)", m.Node.Label, m.Node.Source, exact))
		}
		fmt.Printf("  %-16q → %s\n", kw, strings.Join(where, ", "))
	}

	// Generate and run the candidate queries.
	cands, err := cat.Search(keywords, keyword.SearchOptions{MaxCandidates: 3})
	if err != nil {
		log.Fatal(err)
	}
	for i, cand := range cands {
		fmt.Printf("\n-- candidate %d (path weight %.2f)\n", i+1, cand.Weight)
		fmt.Println("   join path:", cat.Explain(cand))
		fmt.Println("   query:    ", cand.Query)
		res, err := in.Execute(cand.Query)
		if err != nil {
			fmt.Println("   execution failed:", err)
			continue
		}
		fmt.Printf("   results:   %d rows\n", len(res.Rows))
		for j, row := range res.Rows {
			if j >= 3 {
				fmt.Println("   …")
				break
			}
			fmt.Printf("   %v\n", row)
		}
	}
}
