// Federated demonstrates the HTTP federation layer and dynamic source
// discovery (§1: "the address of a relational database is found in an
// INSEE table and part of the mixed query is shipped there for
// evaluation"). It starts HTTP endpoints for the regional databases,
// stores their real URLs in the local INSEE endpoints table, and runs
// a mixed query whose second atom targets a *variable* — each URI
// bound at run time is dialed over HTTP and receives its sub-query.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"tatooine/internal/core"
	"tatooine/internal/datagen"
	"tatooine/internal/federation"
	"tatooine/internal/source"
)

func main() {
	cfg := datagen.DefaultConfig()
	cfg.NumTweets = 500
	ds, err := datagen.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Serve each regional database on its own HTTP endpoint.
	var urls []string
	for uri, db := range ds.Regional {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		srv := &http.Server{Handler: federation.Handler(source.NewRelSource(uri, db))}
		go srv.Serve(ln)
		defer srv.Close()
		url := "http://" + ln.Addr().String()
		urls = append(urls, url)
		fmt.Printf("serving %-18s at %s\n", uri, url)
	}

	// The mediator's local instance: the graph plus the INSEE database,
	// whose endpoints table now holds the *live HTTP URLs*.
	in := core.NewInstance(ds.Graph, core.WithPrefixes(map[string]string{"": datagen.NS}))
	if err := in.AddSource(source.NewRelSource(datagen.INSEEURI, ds.INSEE)); err != nil {
		log.Fatal(err)
	}
	if _, err := ds.INSEE.Exec("CREATE TABLE live_endpoints (region TEXT, uri TEXT)"); err != nil {
		log.Fatal(err)
	}
	for i, u := range urls {
		if _, err := ds.INSEE.Exec(
			fmt.Sprintf("INSERT INTO live_endpoints VALUES ('region%d', '%s')", i+1, u)); err != nil {
			log.Fatal(err)
		}
	}
	// Unknown http(s) URIs resolve by dialing the endpoint.
	in.Sources().SetFallback(federation.Resolver())

	// The mixed query: read the endpoint URIs from the INSEE table,
	// then ship the stats sub-query to every discovered source.
	res, err := in.Query(`
QUERY q(?region, ?src, ?ind, ?val)
FROM <sql://insee> OUT(?region, ?src) { SELECT region, uri FROM live_endpoints }
FROM ?src OUT(?ind, ?val) { SELECT indicator, val FROM stats }
ORDER BY ?val DESC
`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndynamically discovered %d sources; %d result rows:\n", res.Stats.Dynamic, len(res.Rows))
	for _, row := range res.Rows {
		fmt.Printf("  %-10s %-28s %-12s %v\n", row[0], row[1], row[2], row[3])
	}

	// Streaming execution: the same pipeline, consumed incrementally.
	// Rows arrive batch by batch while upstream probes are still in
	// flight, so the first rows land after roughly one remote round
	// trip instead of after the whole federated fan-out. Over HTTP the
	// equivalent is POST /cmq with Accept: application/x-ndjson (or
	// {"stream": true}): a {"cols": [...]} header, one {"row": [...]}
	// record per row flushed as batches land, and a {"stats": ...}
	// trailer — or a terminal {"error": ...} record if a remote dies
	// mid-stream. "tatooine serve -materialized" disables streaming for
	// ablation: same rows, but nothing is sent before everything is
	// computed. Note the ORDER BY above would block until the full
	// result exists, so the streamed query drops it.
	q, _, err := core.ParseCMQ(`
QUERY q(?region, ?src, ?ind, ?val)
FROM <sql://insee> OUT(?region, ?src) { SELECT region, uri FROM live_endpoints }
FROM ?src OUT(?ind, ?val) { SELECT indicator, val FROM stats }
`)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	sr, err := in.ExecuteStream(context.Background(), q, core.ExecOptions{Parallel: true})
	if err != nil {
		log.Fatal(err)
	}
	defer sr.Close()
	rows, batches := 0, 0
	for {
		batch, err := sr.NextBatch()
		if err != nil {
			log.Fatal(err)
		}
		if len(batch) == 0 {
			break
		}
		if batches == 0 {
			fmt.Printf("\nstreamed: first %d rows after %v (probes still in flight)\n",
				len(batch), time.Since(start).Round(time.Millisecond))
		}
		batches++
		rows += len(batch)
	}
	fmt.Printf("streamed: all %d rows in %d batches after %v\n",
		rows, batches, time.Since(start).Round(time.Millisecond))

	// The same execution left a trace behind: one span per DAG node,
	// probe and remote round trip, with the federation endpoints joining
	// the trace over X-Tat-* headers — "remote" spans carry the remote's
	// span ID plus the server-side vs wire split of the observed
	// latency. Over HTTP, POST /cmq {"trace": true} returns this tree in
	// the response (JSON "trace" block or NDJSON trailer), and the
	// mediator keeps the last N of them on GET /debug/queries.
	fmt.Printf("\ntrace of the streamed execution:\n%s", sr.Trace().Render())
}
