// Quickstart: build a small mixed instance by hand — a custom RDF
// graph of politicians plus a tweet store — and run (a) the paper's
// qSIA mixed query and (b) a keyword search that generates the same
// query automatically.
package main

import (
	"fmt"
	"log"

	"tatooine/internal/core"
	"tatooine/internal/digest"
	"tatooine/internal/doc"
	"tatooine/internal/fulltext"
	"tatooine/internal/keyword"
	"tatooine/internal/rdf"
	"tatooine/internal/source"
)

func main() {
	// 1. The custom application-dependent RDF graph G: who the
	// politicians are, their positions and social accounts.
	g := rdf.NewGraph()
	g.AddAll(rdf.MustParse(`
@prefix : <http://t.example/> .
@prefix pol: <http://t.example/pol/> .
pol:POL01140 a :politician ;
  :position :headOfState ;
  foaf:name "François Hollande" ;
  :twitterAccount "fhollande" .
pol:POL02 a :politician ;
  :position :deputy ;
  foaf:name "Jean Dupont" ;
  :twitterAccount "jdupont" .
`))

	// 2. A Solr-like tweet source.
	tweets := fulltext.NewIndex("tweets", fulltext.Schema{
		"text":              fulltext.TextField,
		"user.screen_name":  fulltext.KeywordField,
		"entities.hashtags": fulltext.KeywordField,
	})
	addTweet(tweets, "t1", "fhollande", "Je suis là aujourd'hui pour montrer la solidarité nationale #SIA2016", "SIA2016")
	addTweet(tweets, "t2", "jdupont", "Les agriculteurs au salon #SIA2016", "SIA2016")
	addTweet(tweets, "t3", "fhollande", "Débat sur l'état d'urgence", "EtatDurgence")

	// 3. Assemble the mixed instance I = (G, D).
	in := core.NewInstance(g, core.WithPrefixes(map[string]string{
		"": "http://t.example/", "pol": "http://t.example/pol/",
	}))
	if err := in.AddSource(source.NewDocSource("solr://tweets", tweets)); err != nil {
		log.Fatal(err)
	}

	// 4. The paper's running mixed query qSIA (§2.2): tweets from heads
	// of state about #SIA2016. The GRAPH atom binds ?id from G; the
	// tweet atom is bind-joined on it.
	res, err := in.Query(`
QUERY qSIA(?t, ?id)
GRAPH { ?x :position :headOfState . ?x :twitterAccount ?id }
FROM <solr://tweets> IN(?id) OUT(?t, ?id)
  { SEARCH tweets WHERE user.screen_name = ? AND entities.hashtags = 'SIA2016' RETURN _id, user.screen_name }
`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("qSIA results:")
	for _, row := range res.Rows {
		fmt.Printf("  tweet=%s author=%s\n", row[0], row[1])
	}
	fmt.Printf("stats: %d sub-queries, %d bind joins, %d waves\n\n",
		res.Stats.SubQueries, res.Stats.BindJoins, res.Stats.Waves)

	// 5. The same query, discovered from keywords: digests are built
	// for every source, the keywords located in them, and the shortest
	// join path turned into a CMQ.
	cat, err := keyword.BuildCatalog(in, digest.DefaultBudget())
	if err != nil {
		log.Fatal(err)
	}
	cands, err := cat.Search([]string{"head of state", "SIA2016"}, keyword.SearchOptions{MaxCandidates: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("keyword search \"head of state\" + \"SIA2016\" generated:")
	fmt.Println("  path: ", cat.Explain(cands[0]))
	fmt.Println("  query:", cands[0].Query)
	res2, err := in.Execute(cands[0].Query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  rows: %d (first: %v)\n", len(res2.Rows), res2.Rows[0])
}

func addTweet(ix *fulltext.Index, id, author, text, hashtag string) {
	d := &doc.Document{ID: id}
	d.Set("text", text)
	d.Set("user.screen_name", author)
	d.Set("entities.hashtags", []any{hashtag})
	if err := ix.Add(d); err != nil {
		log.Fatal(err)
	}
}
