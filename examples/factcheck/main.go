// Factcheck reproduces demonstration scenario (1): "identify factual
// sources of information that relate to the claims made by a
// personality on Twitter, for instance the French President". The
// mixed query finds the head of state's economy tweets in the Solr
// store and joins them — through the custom graph — with the INSEE
// unemployment statistics for the department where they were elected.
package main

import (
	"fmt"
	"log"

	"tatooine/internal/datagen"
)

func main() {
	cfg := datagen.DefaultConfig()
	cfg.NumTweets = 8000
	ds, err := datagen.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	in, err := ds.Instance()
	if err != nil {
		log.Fatal(err)
	}

	// The claim: tweets tagged #economie by the head of state. The
	// factual source: the INSEE chomage table for their department.
	res, err := in.Query(`
QUERY facts(?name, ?t, ?dept, ?annee, ?taux)
GRAPH { ?x :position :headOfState . ?x foaf:name ?name .
        ?x :twitterAccount ?id . ?x :electedIn ?dept }
FROM <solr://tweets> IN(?id) OUT(?t, ?id)
  { SEARCH tweets WHERE user.screen_name = ? AND entities.hashtags = 'economie'
    RETURN _id, user.screen_name ORDER BY retweet_count DESC LIMIT 5 }
FROM <sql://insee> IN(?dept) OUT(?dept, ?annee, ?taux)
  { SELECT dept, annee, taux FROM chomage WHERE dept = ? }
ORDER BY ?annee
`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("claims by the head of state and the INSEE statistics to check them against:")
	for _, row := range res.Rows {
		fmt.Printf("  %-22s tweet=%s dept=%s %v: unemployment %.2f%%\n",
			row[0], row[1], row[2], row[3], row[4].Float())
	}
	fmt.Printf("\nplan: %d sub-queries over 2 heterogeneous sources + G, %d bind joins, %d waves\n",
		res.Stats.SubQueries, res.Stats.BindJoins, res.Stats.Waves)

	// Second fact-check: compare the claim volume per party with the
	// election results held by the Ministry of Interior-style table.
	res2, err := in.Query(`
QUERY volume(?party, ?t)
GRAPH { ?x :memberOf ?party . ?x :twitterAccount ?id }
FROM <solr://tweets> IN(?id) OUT(?t, ?id)
  { SEARCH tweets WHERE user.screen_name = ? AND entities.hashtags = 'economie' RETURN _id, user.screen_name }
`)
	if err != nil {
		log.Fatal(err)
	}
	perParty := map[string]int{}
	for _, row := range res2.Rows {
		perParty[row[0].Str()]++
	}
	fmt.Println("\n#economie tweet volume per party (via graph join):")
	for p, n := range perParty {
		fmt.Printf("  %-40s %d\n", p, n)
	}
}
