// Statemergency reproduces Figure 3 of the paper: the weekly evolution
// of French politicians' vocabulary on the state of emergency, one tag
// cloud per (week, party), terms ranked by exponentiated PMI and
// coloured by political current. It generates the synthetic corpus,
// classifies every tweet through the custom graph (the scenario (2)
// mixed query), computes the clouds and writes tagcloud.html.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"tatooine/internal/analytics"
	"tatooine/internal/datagen"
	"tatooine/internal/viz"
)

func main() {
	out := flag.String("o", "tagcloud.html", "output HTML file")
	tweets := flag.Int("tweets", 20000, "corpus size")
	topK := flag.Int("k", 10, "terms per cloud")
	flag.Parse()

	cfg := datagen.DefaultConfig()
	cfg.NumTweets = *tweets
	cfg.Weeks = 4 // Figure 3 shows four weeks after the November 2015 attacks
	ds, err := datagen.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d tweets by %d politicians over %d weeks\n",
		ds.Tweets.Count(), len(ds.Politicians), cfg.Weeks)

	// The classifier is the analytic equivalent of the scenario (2)
	// mixed query: join each tweet's author with the custom RDF graph
	// to find the party, and bucket by week.
	clouds := analytics.ComputeTagClouds(ds.Tweets, "text", ds.Classifier(), *topK, 3)

	currents := datagen.CurrentOfParty()
	fmt.Println(viz.RenderText(clouds, currents, 6))

	html := viz.RenderHTML(clouds, viz.HTMLOptions{
		Title:     "Weekly vocabulary by party — state of emergency (synthetic reproduction of Figure 3)",
		CurrentOf: currents,
		WeekLabel: func(w int) string { return fmt.Sprintf("week %d after the attacks", w) },
	})
	if err := os.WriteFile(*out, []byte(html), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote", *out)

	// The Figure 3 storyline check: the ecologists' objection
	// vocabulary should be amplified in week 3 relative to week 2.
	report := func(week int) float64 {
		for _, wc := range clouds.Weeks {
			if wc.Week != week {
				continue
			}
			for _, ts := range wc.Parties["EELV"] {
				if ts.Term == "abu" || ts.Term == "exc" || ts.Term == "risqu" {
					return ts.Score
				}
			}
		}
		return 0
	}
	fmt.Printf("EELV objection-term PMI: week2=%.2f week3=%.2f (paper: objections appear in the third week)\n",
		report(2), report(3))
}
