// Persistent instance walkthrough: the mediator's own state — the
// custom graph G, its saturation G∞, the mutation epoch — on a durable
// paged B-tree store with a write-ahead log, surviving process
// restarts. Run it twice to see both boot paths:
//
//	go run ./examples/persistent            # 1st run: seeds the store
//	go run ./examples/persistent            # 2nd run: warm boot, zero recompute
//
// The data directory defaults to a sibling "tatooine-data"; point
// -data-dir elsewhere (or delete the directory to start over).
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"tatooine/internal/core"
	"tatooine/internal/rdf"
	"tatooine/internal/relstore"
	"tatooine/internal/value"
)

func main() {
	dataDir := flag.String("data-dir", "tatooine-data", "store directory")
	flag.Parse()

	// core.Open mounts the instance on dir/tatooine.db (created on
	// first use). Options mean the same as with core.NewInstance; with
	// WithSaturation a stored G∞ is adopted on reopen instead of
	// recomputed.
	start := time.Now()
	in, err := core.Open(*dataDir,
		core.WithSaturation(),
		core.WithPrefixes(map[string]string{"": "http://t.example/"}))
	if err != nil {
		log.Fatal(err)
	}
	defer in.Close()
	opened := time.Since(start)

	if in.Epoch() == 0 {
		// ---- First run: seed the store. --------------------------------
		// Each AddTriples is one mutation: graph pages, dictionary,
		// epoch and catalog commit in a single WAL transaction.
		fmt.Println("fresh store — seeding politicians…")
		in.AddTriples(rdf.MustParse(`
@prefix : <http://t.example/> .
:politician rdfs:subClassOf :person .
:p1 a :politician ; :position :headOfState .
:p2 a :politician ; :position :deputy .
`))

		// Other state co-locates on the SAME store: a relstore database
		// hung off in.Store() commits atomically with instance
		// mutations (one WAL transaction covers both).
		db, err := relstore.OpenDatabase(in.Store(), "stats")
		if err != nil {
			log.Fatal(err)
		}
		tb, err := db.CreateTable(relstore.Schema{
			Name: "chomage",
			Columns: []relstore.Column{
				{Name: "dept", Type: value.String},
				{Name: "taux", Type: value.Float},
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := tb.Insert(value.Row{value.NewString("75"), value.NewFloat(8.9)}); err != nil {
			log.Fatal(err)
		}
		// The next instance mutation's commit makes the row durable too.
		in.AddTriples(rdf.MustParse("@prefix : <http://t.example/> .\n:p3 a :politician ."))
	} else {
		// ---- Later runs: warm boot. ------------------------------------
		// Everything below loaded from disk; nothing was recomputed.
		fmt.Printf("warm boot in %v — epoch %d, G=%d triples\n",
			opened.Round(time.Microsecond), in.Epoch(), in.Graph().Size())
		db, err := relstore.OpenDatabase(in.Store(), "stats")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("co-located table survived: %d row(s) in chomage\n",
			db.Table("chomage").RowCount())
	}

	// Graph atoms answer over G∞. On the first run this query computes
	// the saturation (FullRecomputes becomes 1) and persists it; on a
	// warm boot the stored G∞ is adopted and FullRecomputes stays 0 —
	// the reopen skipped the whole saturation cost.
	res, err := in.Query("QUERY q(?x)\nGRAPH { ?x a :person }")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("persons via G∞: %d rows\n", len(res.Rows))
	sat := in.SaturationStats()
	fmt.Printf("saturation: mode=%s derived=%d fullRecomputes=%d\n",
		sat.Mode, sat.Derived, sat.FullRecomputes)
	if st := in.StoreStats(); st != nil {
		fmt.Printf("store: %d pages, %d commits, %d B WAL\n",
			st.Pages, st.Commits, st.WALBytes)
	}
	// Close (deferred) commits pending state and folds the WAL into the
	// main file, so the next boot replays nothing.
}
