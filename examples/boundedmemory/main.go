// Bounded-memory walkthrough: an on-disk instance several times larger
// than its page-cache budget serving queries in flat memory, and a
// residual hash join that outgrows its build-side budget spilling to a
// partitioned on-disk join instead of ballooning the heap.
//
//	go run ./examples/boundedmemory
//	go run ./examples/boundedmemory -page-cache-mb 1 -politicians 4000
//
// The same knobs exist on the mediator service as
// "tatooine serve -data-dir d -page-cache-mb 16 -join-mem-budget 64";
// GET /stats then reports the store block (pages vs residentPages) and
// the memory block (joinMemBudget, spilledJoins, spilledBytes).
package main

import (
	"flag"
	"fmt"
	"log"

	"tatooine/internal/core"
	"tatooine/internal/datagen"
	"tatooine/internal/pager"
	"tatooine/internal/store"
)

func main() {
	dataDir := flag.String("data-dir", "tatooine-bounded", "store directory")
	cacheMB := flag.Int("page-cache-mb", 1, "page-cache budget in MiB")
	budgetKB := flag.Int("join-mem-budget-kb", 16, "residual-join build-side budget in KiB")
	politicians := flag.Int("politicians", 2500, "graph scale (drives the on-disk size)")
	flag.Parse()

	cfg := datagen.DefaultConfig()
	cfg.NumPoliticians = *politicians
	ds, err := datagen.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// WithStoreOptions caps the clock cache: pages beyond the budget
	// are evicted, so resident memory stays flat no matter how large
	// the file grows. The first run seeds the store; later runs warm
	// boot from it.
	cachePages := (*cacheMB << 20) / pager.PageSize
	in, warm, err := ds.PersistentInstance(*dataDir,
		core.WithSaturation(),
		core.WithStoreOptions(store.Options{Pager: pager.Options{CacheSize: cachePages}}))
	if err != nil {
		log.Fatal(err)
	}
	defer in.Close()
	if warm {
		fmt.Println("warm boot from existing store (terms page in lazily — no bulk dictionary load)")
	} else {
		fmt.Println("fresh store — seeded from the generated dataset")
	}

	// Selective queries touch a handful of pages each; the clock cache
	// recycles frames instead of growing.
	for i := 0; i < 5; i++ {
		res, err := in.Query(`
QUERY q(?name, ?dept)
GRAPH { ?x :position :headOfState . ?x foaf:name ?name . ?x :electedIn ?dept }`)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("point lookups: head of state ×%d rows per query\n", len(res.Rows))
		}
	}
	if st := in.StoreStats(); st != nil {
		fmt.Printf("store: %d pages on disk (%.1f MiB), %d resident (cap %d) — %.0f%% of the file out of memory\n",
			st.Pages, float64(st.Pages)*float64(pager.PageSize)/(1<<20),
			st.ResidentPages, cachePages,
			100*(1-float64(st.ResidentPages)/float64(st.Pages)))
	}

	// A residual join: the graph relation (every politician and their
	// department) hash-joins two INSEE tables on ?dept. Under
	// JoinMemBudget a build side that overflows mid-build restarts as a
	// Grace-style partitioned join on a temporary store — same row
	// multiset, bounded memory, cost on ExecStats.
	q := core.MustParseCMQ(`
QUERY spill(?name, ?dept, ?taux, ?parti, ?voix)
GRAPH { ?x a :politician . ?x foaf:name ?name . ?x :electedIn ?dept }
FROM <sql://insee> OUT(?dept, ?annee, ?taux) { SELECT dept, annee, taux FROM chomage }
FROM <sql://insee> OUT(?dept, ?parti, ?voix) { SELECT dept, parti, voix FROM resultats }`)
	res, err := in.ExecuteOpts(q, core.ExecOptions{
		Parallel:      true,
		JoinMemBudget: int64(*budgetKB) << 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spilling join: %d rows under a %d KiB build budget — %d join(s) spilled, %d B written to disk\n",
		len(res.Rows), *budgetKB, res.Stats.SpilledJoins, res.Stats.SpilledBytes)

	ref, err := in.ExecuteOpts(q, core.ExecOptions{Parallel: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unbounded rerun: %d rows (identical multiset), %d join(s) spilled\n",
		len(ref.Rows), ref.Stats.SpilledJoins)
}
