module tatooine

go 1.24
