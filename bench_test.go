// Benchmarks reproducing the paper's demonstrated behaviours, one per
// experiment of DESIGN.md §4 (E1–E10). EXPERIMENTS.md records the
// measured outcomes against the paper's claims. Run with:
//
//	go test -bench=. -benchmem
package tatooine_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"tatooine/internal/analytics"
	"tatooine/internal/core"
	"tatooine/internal/datagen"
	"tatooine/internal/digest"
	"tatooine/internal/doc"
	"tatooine/internal/federation"
	"tatooine/internal/fulltext"
	"tatooine/internal/keyword"
	"tatooine/internal/pager"
	"tatooine/internal/rdf"
	"tatooine/internal/relstore"
	"tatooine/internal/server"
	"tatooine/internal/source"
	"tatooine/internal/store"
	"tatooine/internal/viz"
)

// ---------- shared fixtures (built once per scale) ----------

type fixture struct {
	ds *datagen.Dataset
	in *core.Instance
}

var (
	fixMu    sync.Mutex
	fixtures = map[int]*fixture{}
)

// fix returns a cached mixed instance with the given tweet count.
func fix(b *testing.B, tweets int) *fixture {
	b.Helper()
	fixMu.Lock()
	defer fixMu.Unlock()
	if f, ok := fixtures[tweets]; ok {
		return f
	}
	cfg := datagen.DefaultConfig()
	cfg.NumTweets = tweets
	cfg.NumPoliticians = 300
	ds, err := datagen.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	in, err := ds.Instance()
	if err != nil {
		b.Fatal(err)
	}
	f := &fixture{ds: ds, in: in}
	fixtures[tweets] = f
	return f
}

const qSIAText = `
QUERY qSIA(?t, ?id)
GRAPH { ?x :position :headOfState . ?x :twitterAccount ?id }
FROM <solr://tweets> IN(?id) OUT(?t, ?id)
  { SEARCH tweets WHERE user.screen_name = ? AND entities.hashtags = 'SIA2016' RETURN _id, user.screen_name }
`

// hashtagQuery is qSIA with a parameterizable hashtag/position, used
// for selectivity sweeps.
func hashtagQuery(position, hashtag string) string {
	return fmt.Sprintf(`
QUERY q(?t, ?id)
GRAPH { ?x :position :%s . ?x :twitterAccount ?id }
FROM <solr://tweets> IN(?id) OUT(?t, ?id)
  { SEARCH tweets WHERE user.screen_name = ? AND entities.hashtags = '%s' RETURN _id, user.screen_name }
`, position, hashtag)
}

// ---------- E1: the qSIA mixed query (§2.2) ----------

func BenchmarkE1QSIA(b *testing.B) {
	for _, tweets := range []int{5000, 20000} {
		for _, sel := range []struct{ name, position, hashtag string }{
			{"rare/headOfState+SIA2016", "headOfState", "SIA2016"},
			{"common/deputy+EtatDurgence", "deputy", "EtatDurgence"},
		} {
			b.Run(fmt.Sprintf("tweets=%d/%s", tweets, sel.name), func(b *testing.B) {
				f := fix(b, tweets)
				q := core.MustParseCMQ(hashtagQuery(sel.position, sel.hashtag))
				b.ResetTimer()
				rows := 0
				for i := 0; i < b.N; i++ {
					res, err := f.in.Execute(q)
					if err != nil {
						b.Fatal(err)
					}
					rows = len(res.Rows)
				}
				b.ReportMetric(float64(rows), "rows")
			})
		}
	}
}

// ---------- E2: scenario (1), fact sources for claims ----------

func BenchmarkE2FactSources(b *testing.B) {
	f := fix(b, 20000)
	q := core.MustParseCMQ(`
QUERY facts(?t, ?dept, ?taux)
GRAPH { ?x :position :headOfState . ?x :twitterAccount ?id . ?x :electedIn ?dept }
FROM <solr://tweets> IN(?id) OUT(?t, ?id)
  { SEARCH tweets WHERE user.screen_name = ? AND entities.hashtags = 'economie' RETURN _id, user.screen_name }
FROM <sql://insee> IN(?dept) OUT(?dept, ?taux)
  { SELECT dept, taux FROM chomage WHERE dept = ? AND annee = 2015 }
`)
	b.ResetTimer()
	rows := 0
	for i := 0; i < b.N; i++ {
		res, err := f.in.Execute(q)
		if err != nil {
			b.Fatal(err)
		}
		rows = len(res.Rows)
	}
	b.ReportMetric(float64(rows), "rows")
}

// ---------- E3: scenario (2) + Figure 3, PMI tag clouds ----------

func BenchmarkE3PMITagCloud(b *testing.B) {
	for _, tweets := range []int{5000, 20000} {
		b.Run(fmt.Sprintf("tweets=%d", tweets), func(b *testing.B) {
			f := fix(b, tweets)
			classify := f.ds.Classifier()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tc := analytics.ComputeTagClouds(f.ds.Tweets, "text", classify, 10, 3)
				if len(tc.Weeks) == 0 {
					b.Fatal("no clouds")
				}
			}
		})
	}
}

func BenchmarkE3TagCloudRender(b *testing.B) {
	f := fix(b, 5000)
	tc := analytics.ComputeTagClouds(f.ds.Tweets, "text", f.ds.Classifier(), 10, 3)
	currents := datagen.CurrentOfParty()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := viz.RenderHTML(tc, viz.HTMLOptions{Title: "bench", CurrentOf: currents})
		if len(out) == 0 {
			b.Fatal("empty render")
		}
	}
}

// ---------- E4: keyword → CMQ generation (§2.2) ----------

func BenchmarkE4CatalogBuild(b *testing.B) {
	for _, tweets := range []int{5000, 20000} {
		b.Run(fmt.Sprintf("tweets=%d", tweets), func(b *testing.B) {
			f := fix(b, tweets)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := keyword.BuildCatalog(f.in, digest.DefaultBudget()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE4KeywordToCMQ(b *testing.B) {
	f := fix(b, 5000)
	cat, err := keyword.BuildCatalog(f.in, digest.DefaultBudget())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cands, err := cat.Search([]string{"head of state", "SIA2016"}, keyword.SearchOptions{MaxCandidates: 3})
		if err != nil {
			b.Fatal(err)
		}
		if len(cands) == 0 {
			b.Fatal("no candidates")
		}
	}
}

// ---------- E5: dynamic source discovery ----------

func BenchmarkE5DynamicDiscovery(b *testing.B) {
	f := fix(b, 5000)
	q := core.MustParseCMQ(`
QUERY q(?region, ?src, ?val)
FROM <sql://insee> OUT(?region, ?src) { SELECT region, uri FROM endpoints }
FROM ?src OUT(?ind, ?val) { SELECT indicator, val FROM stats WHERE indicator = 'population' }
`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := f.in.Execute(q)
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.Dynamic != len(datagen.RegionalURIs) {
			b.Fatalf("dynamic sources: %d", res.Stats.Dynamic)
		}
	}
}

// ---------- E6: plan ablations (§2.3 ordering rules) ----------

func BenchmarkE6PlanAblation(b *testing.B) {
	f := fix(b, 20000)
	// A query where ordering matters: the tweet atom unconstrained is
	// large; bind-joining it after the selective graph atom is cheap.
	q := core.MustParseCMQ(qSIAText)
	modes := []struct {
		name string
		opts core.ExecOptions
	}{
		{"selectivity+parallel", core.ExecOptions{Parallel: true}},
		{"selectivity+sequential", core.ExecOptions{Parallel: false}},
		{"naive-order", core.ExecOptions{NaiveOrder: true}},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := f.in.ExecuteOpts(q, m.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// Bind join vs. full scan + residual hash join: the same semantics
	// expressed without IN() forces the mediator to fetch every tweet
	// with the hashtag, then hash join.
	noBind := core.MustParseCMQ(`
QUERY q(?t, ?id)
GRAPH { ?x :position :headOfState . ?x :twitterAccount ?id }
FROM <solr://tweets> OUT(?t, ?id)
  { SEARCH tweets WHERE entities.hashtags = 'SIA2016' RETURN _id, user.screen_name }
`)
	b.Run("hash-join-no-pushdown", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := f.in.Execute(noBind); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE6Parallelism isolates the wave-parallelism rule: three
// independent sub-queries (no shared IN variables) land in one wave and
// run concurrently when Parallel is on.
func BenchmarkE6Parallelism(b *testing.B) {
	f := fix(b, 20000)
	// Three searches over the corpus joined on the author variable: the
	// sub-queries dominate the cost, the residual join is small.
	q := core.MustParseCMQ(`
QUERY q(?a, ?t1, ?t2, ?t3)
FROM <solr://tweets> OUT(?t1, ?a) { SEARCH tweets WHERE text CONTAINS 'urgence' RETURN _id, user.screen_name LIMIT 50 }
FROM <solr://tweets> OUT(?t2, ?a) { SEARCH tweets WHERE text CONTAINS 'parlement' RETURN _id, user.screen_name LIMIT 50 }
FROM <solr://tweets> OUT(?t3, ?a) { SEARCH tweets WHERE text CONTAINS 'vigilance' RETURN _id, user.screen_name LIMIT 50 }
LIMIT 10
`)
	for _, par := range []bool{true, false} {
		name := "sequential"
		if par {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := f.in.ExecuteOpts(q, core.ExecOptions{Parallel: par}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------- E7: digest precision vs. space budget (§2.2) ----------

func BenchmarkE7DigestPrecision(b *testing.B) {
	f := fix(b, 20000)
	for _, bits := range []uint64{1024, 8192, 65536} {
		b.Run(fmt.Sprintf("bloomBits=%d", bits), func(b *testing.B) {
			budget := digest.DefaultBudget()
			budget.BloomBits = bits
			budget.ExactThreshold = 0 // force Bloom answers
			var d *digest.Digest
			for i := 0; i < b.N; i++ {
				d = digest.BuildDocument("solr://tweets", f.ds.Tweets, budget)
			}
			b.StopTimer()
			// Measured false-positive rate on the screen-name node.
			n := d.Nodes["solr://tweets#user.screen_name"]
			fp := 0
			const probes = 2000
			for i := 0; i < probes; i++ {
				if n.Values.MayContain(fmt.Sprintf("absent-account-%d", i)) {
					fp++
				}
			}
			b.ReportMetric(float64(fp)/probes, "fpr")
		})
	}
}

// ---------- E8: Figure 2 document ingest ----------

func BenchmarkE8TweetIngest(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("tweets=%d", n), func(b *testing.B) {
			cfg := datagen.DefaultConfig()
			cfg.NumTweets = n
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg.Seed = int64(i + 1)
				if _, err := datagen.Generate(cfg); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(n))
		})
	}
}

func BenchmarkE8FieldAccess(b *testing.B) {
	f := fix(b, 5000)
	d := f.ds.Tweets.Get("tw00000001")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if vals := d.Values("user.screen_name"); len(vals) != 1 {
			b.Fatal("missing field")
		}
	}
}

// ---------- E9: RDFS saturation G∞ (§2.1) ----------

func BenchmarkE9Saturation(b *testing.B) {
	for _, pols := range []int{100, 1000, 4500} {
		b.Run(fmt.Sprintf("politicians=%d", pols), func(b *testing.B) {
			cfg := datagen.DefaultConfig()
			cfg.NumPoliticians = pols
			cfg.NumTweets = 0
			ds, err := datagen.Generate(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			derived := 0
			for i := 0; i < b.N; i++ {
				sat := rdf.Saturate(ds.Graph)
				derived = sat.Derived
			}
			b.ReportMetric(float64(derived), "derived")
		})
	}
}

// ---------- E10: mediation vs. warehouse (§4 positioning) ----------

// warehouseLoad copies the tweet store into one RDF graph (the
// "standard data warehouse" the paper argues journalists will not
// build) and returns it.
func warehouseLoad(ds *datagen.Dataset) *rdf.Graph {
	g := ds.Graph.Clone()
	iri := func(local string) rdf.Term { return rdf.NewIRI(datagen.NS + local) }
	ds.Tweets.Each(func(d *doc.Document) bool {
		subj := rdf.NewIRI(datagen.NS + "tweet/" + d.ID)
		g.Add(rdf.Triple{S: subj, P: iri("authorAccount"), O: rdf.NewLiteral(d.Values("user.screen_name")[0].Str())})
		for _, h := range d.Values("entities.hashtags") {
			g.Add(rdf.Triple{S: subj, P: iri("hashtag"), O: rdf.NewLiteral(h.Str())})
		}
		return true
	})
	return g
}

func BenchmarkE10Mediation(b *testing.B) {
	f := fix(b, 20000)
	q := core.MustParseCMQ(qSIAText)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.in.Execute(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE10WarehouseSetup(b *testing.B) {
	f := fix(b, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := warehouseLoad(f.ds)
		if g.Size() == 0 {
			b.Fatal("empty warehouse")
		}
	}
}

func BenchmarkE10WarehouseQuery(b *testing.B) {
	f := fix(b, 20000)
	g := warehouseLoad(f.ds)
	q := rdf.MustParseBGP(fmt.Sprintf(
		`q(?t, ?id) :- ?x <%sposition> <%sheadOfState> . ?x <%stwitterAccount> ?id . ?t <%sauthorAccount> ?id . ?t <%shashtag> "SIA2016"`,
		datagen.NS, datagen.NS, datagen.NS, datagen.NS, datagen.NS), nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sols, err := rdf.Evaluate(g, q)
		if err != nil {
			b.Fatal(err)
		}
		if sols.Len() == 0 {
			b.Fatal("warehouse query empty")
		}
	}
}

// ---------- substrate micro-benchmarks ----------

func BenchmarkSubstrateFulltextSearch(b *testing.B) {
	f := fix(b, 20000)
	q := fulltext.BoolQuery{Must: []fulltext.Query{
		fulltext.KeywordQuery{Field: "entities.hashtags", Value: "EtatDurgence"},
		fulltext.TermQuery{Field: "text", Term: "urgence"},
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.ds.Tweets.Search(q, fulltext.SearchOptions{Limit: 50}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubstrateSQLJoin(b *testing.B) {
	f := fix(b, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := f.ds.INSEE.Exec(`SELECT d.name, r.parti, r.voix FROM resultats r
			JOIN departements d ON r.dept = d.code WHERE r.annee = 2015`)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubstrateBGPJoin(b *testing.B) {
	f := fix(b, 5000)
	q := rdf.MustParseBGP(fmt.Sprintf(
		`q(?name, ?cur) :- ?x <%smemberOf> ?p . ?p <%scurrentOf> ?cur . ?x <%stwitterAccount> ?name`,
		datagen.NS, datagen.NS, datagen.NS), nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rdf.Evaluate(f.ds.Graph, q); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------- E11: XML substrate inside a mixed query (§2.1) ----------

func BenchmarkE11XMLJoin(b *testing.B) {
	f := fix(b, 5000)
	q := core.MustParseCMQ(`
QUERY sp(?name, ?spid, ?topic)
GRAPH { ?x :position :headOfState . ?x foaf:name ?name }
FROM <xml://speeches> IN(?name) OUT(?spid, ?topic)
  { XPATH /speeches/speech[@speaker=?] RETURN _id, topic }
`)
	b.ResetTimer()
	rows := 0
	for i := 0; i < b.N; i++ {
		res, err := f.in.Execute(q)
		if err != nil {
			b.Fatal(err)
		}
		rows = len(res.Rows)
	}
	b.ReportMetric(float64(rows), "rows")
}

// ---------- E12: aggregated heads (§1 "most prolific authors") ----------

func BenchmarkE12AggregatedHead(b *testing.B) {
	f := fix(b, 20000)
	q := core.MustParseCMQ(`
QUERY vol(?cur, COUNT(?t) AS ?n, COUNT(DISTINCT ?id) AS ?authors)
GRAPH { ?x :memberOf ?p . ?p :currentOf ?cur . ?x :twitterAccount ?id }
FROM <solr://tweets> IN(?id) OUT(?t, ?id)
  { SEARCH tweets WHERE user.screen_name = ? AND entities.hashtags = 'EtatDurgence' RETURN _id, user.screen_name }
GROUP BY ?cur
ORDER BY ?n DESC
`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := f.in.Execute(q)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("no groups")
		}
	}
}

// BenchmarkSourceEstimate measures the planner's estimation path.
func BenchmarkSourceEstimate(b *testing.B) {
	f := fix(b, 20000)
	srcs := f.in.Sources().All()
	var docSrc source.DataSource
	for _, s := range srcs {
		if s.URI() == datagen.TweetsURI {
			docSrc = s
		}
	}
	sub := source.SubQuery{
		Language: source.LangSearch,
		Text:     "SEARCH tweets WHERE entities.hashtags = 'SIA2016' RETURN _id",
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if docSrc.EstimateCost(sub, 0) < 0 {
			b.Fatal("estimate failed")
		}
	}
}

// ---------- mediator service: end-to-end HTTP throughput ----------

// BenchmarkServeThroughput drives the long-running mediator service
// over HTTP with concurrent identical qSIA requests. After the first
// execution the result cache (plus the per-source probe cache beneath
// it) answers from memory, so this measures the serving hot path the
// ROADMAP's heavy-traffic north star cares about. cold=true disables
// the result cache (which also turns off single-flight coalescing) and
// the probe cache, so every request fully re-executes.
func BenchmarkServeThroughput(b *testing.B) {
	ds := fix(b, 5000).ds
	for _, cold := range []bool{false, true} {
		name := "cached"
		if cold {
			name = "cold"
		}
		b.Run(name, func(b *testing.B) {
			in, err := ds.Instance()
			if err != nil {
				b.Fatal(err)
			}
			opts := server.Options{Exec: core.ExecOptions{Parallel: true}}
			if cold {
				opts.ResultCacheSize = -1
				opts.ProbeCacheSize = -1
			}
			srv := server.New(in, opts)
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			body, err := json.Marshal(server.QueryRequest{Query: qSIAText})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					resp, err := http.Post(ts.URL+"/cmq", "application/json", bytes.NewReader(body))
					if err != nil {
						b.Fatal(err)
					}
					var qr server.QueryResponse
					if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
						b.Fatal(err)
					}
					resp.Body.Close()
					if qr.Error != "" || resp.StatusCode != http.StatusOK {
						b.Fatalf("status %d: %s", resp.StatusCode, qr.Error)
					}
				}
			})
		})
	}
}

// BenchmarkDeltaSaturation measures the tentpole of incremental
// delta-saturation: a mutation-heavy serving loop (insert one triple,
// then query over G∞) against a datagen-sized graph. In "full" mode
// (the WithFullResaturation ablation, the pre-reason behavior) every
// insert bumps the epoch and the next query recomputes the whole
// saturation from scratch; in "delta" mode the insert flows through
// reason.Engine's semi-naive rules in O(consequences-of-the-delta) and
// the query serves the maintained G∞ directly.
func BenchmarkDeltaSaturation(b *testing.B) {
	cfg := datagen.DefaultConfig()
	cfg.NumPoliticians = 1000
	cfg.NumTweets = 0
	ds, err := datagen.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	// The query needs G∞ (being a :person is derived via rdfs9) but is
	// selective, as serving-path queries are: the measured gap is the
	// saturation maintenance itself, not the row scan.
	q := core.MustParseCMQ("QUERY q(?x)\nGRAPH { ?x a :person . ?x :position :headOfState }")

	for _, mode := range []struct {
		name string
		opt  core.InstanceOption
	}{
		{"delta", core.WithSaturation()},
		{"full", core.WithFullResaturation()},
	} {
		b.Run(mode.name, func(b *testing.B) {
			in := core.NewInstance(ds.Graph.Clone(), mode.opt,
				core.WithPrefixes(map[string]string{"": datagen.NS}))
			// Warm up: materialize the initial saturation outside the
			// timed loop (both modes pay it once).
			if _, err := in.Execute(q); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n := in.AddTriples([]rdf.Triple{{
					S: rdf.NewIRI(fmt.Sprintf("%sbench/p%d", datagen.NS, i)),
					P: rdf.NewIRI(rdf.RDFType),
					O: rdf.NewIRI(datagen.NS + "politician"),
				}})
				if n != 1 {
					b.Fatal("insert did not apply")
				}
				res, err := in.Execute(q)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rows) == 0 {
					b.Fatal("no rows")
				}
			}
			b.StopTimer()
			st := in.SaturationStats()
			b.ReportMetric(float64(st.FullRecomputes), "recomputes")
		})
	}
}

// BenchmarkBatchedBindJoin measures the tentpole of the batched
// bind-join pushdown: a bind join whose probes travel to a remote
// federation endpoint behind an injected per-request latency. perProbe
// ships one HTTP round trip per distinct binding; batched chunks the
// bindings into ProbeBatch-sized IN-list pushdowns, collapsing the
// round trips by the batch factor. The rtts/op metric counts actual
// HTTP requests per executed query.
func BenchmarkBatchedBindJoin(b *testing.B) {
	const keys = 256
	const rtt = 500 * time.Microsecond

	db := relstore.NewDatabase("remote")
	if _, err := db.Exec("CREATE TABLE targets (k TEXT, v INT)"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < keys; i++ {
		if _, err := db.Exec(fmt.Sprintf("INSERT INTO targets VALUES ('k%d', %d)", i, i)); err != nil {
			b.Fatal(err)
		}
	}
	seed := relstore.NewDatabase("seed")
	if _, err := seed.Exec("CREATE TABLE seed (k TEXT)"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < keys; i++ {
		if _, err := seed.Exec(fmt.Sprintf("INSERT INTO seed VALUES ('k%d')", i)); err != nil {
			b.Fatal(err)
		}
	}

	var requests atomic.Int64
	inner := federation.Handler(source.NewRelSource("sql://remote", db))
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		time.Sleep(rtt) // injected network latency
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()
	client, err := federation.Dial(ts.URL)
	if err != nil {
		b.Fatal(err)
	}

	text := `
QUERY q(?k, ?v)
FROM <sql://seed> OUT(?k) { SELECT k FROM seed }
FROM <sql://remote> IN(?k) OUT(?k, ?v) { SELECT k, v FROM targets WHERE k = ? }
`
	q, _, err := core.ParseCMQ(text)
	if err != nil {
		b.Fatal(err)
	}

	for _, bench := range []struct {
		name       string
		probeBatch int
	}{
		{"perProbe", 1},
		{"batched64", 64},
	} {
		b.Run(bench.name, func(b *testing.B) {
			in := core.NewInstance(nil)
			if err := in.AddSource(source.NewRelSource("sql://seed", seed)); err != nil {
				b.Fatal(err)
			}
			if err := in.AddSource(client); err != nil {
				b.Fatal(err)
			}
			requests.Store(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := in.ExecuteOpts(q, core.ExecOptions{Parallel: true, ProbeBatch: bench.probeBatch})
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rows) != keys {
					b.Fatalf("rows: %d", len(res.Rows))
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(requests.Load())/float64(b.N), "rtts/op")
		})
	}
}

// BenchmarkPipelinedExec measures the tentpole of the operator-DAG
// executor on a latency-skewed multi-wave query: a local seed scan
// feeds two branches — a CHAIN of three dependent bind joins against
// fast remotes (10ms injected latency each) and one independent bind
// join against a slow remote (30ms). The wave-barrier scheduler makes
// every chain step wait for the slow branch's wave — ≈ slow + 2×fast
// on top of the first wave — while the DAG overlaps the chain with the
// slow probe, finishing in ≈ max(3×fast, slow). Expected: dag ≥1.5×
// lower wall-clock than waveBarrier.
// estMemoClient memoizes a remote's cost estimates (as the mediator's
// source.Cached does) WITHOUT caching probe results, so the benchmark
// measures execution latency rather than plan-time estimate round
// trips — while every probe still pays its injected network latency.
type estMemoClient struct {
	*federation.Client
	mu sync.Mutex
	m  map[string][2]int
}

func (e *estMemoClient) Unwrap() source.DataSource { return e.Client }

func (e *estMemoClient) Estimate(q source.SubQuery, numParams int) (rows, cost int) {
	key := fmt.Sprintf("%s|%d", q.Text, numParams)
	e.mu.Lock()
	if v, ok := e.m[key]; ok {
		e.mu.Unlock()
		return v[0], v[1]
	}
	e.mu.Unlock()
	rows, cost = e.Client.Estimate(q, numParams)
	e.mu.Lock()
	e.m[key] = [2]int{rows, cost}
	e.mu.Unlock()
	return rows, cost
}

func (e *estMemoClient) EstimateCost(q source.SubQuery, numParams int) int {
	rows, _ := e.Estimate(q, numParams)
	return rows
}

func BenchmarkPipelinedExec(b *testing.B) {
	const keys = 4
	const fastRTT = 10 * time.Millisecond
	const slowRTT = 30 * time.Millisecond

	// Each remote maps k<i> -> k<i> so the chain re-probes the same key
	// space at every hop.
	makeRemote := func(name string, rtt time.Duration) source.DataSource {
		db := relstore.NewDatabase(name)
		if _, err := db.Exec("CREATE TABLE t (k TEXT, v TEXT)"); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < keys; i++ {
			if _, err := db.Exec(fmt.Sprintf("INSERT INTO t VALUES ('k%d', 'k%d')", i, i)); err != nil {
				b.Fatal(err)
			}
		}
		inner := federation.Handler(source.NewRelSource("sql://"+name, db))
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			time.Sleep(rtt) // injected network latency
			inner.ServeHTTP(w, r)
		}))
		b.Cleanup(ts.Close)
		client, err := federation.Dial(ts.URL)
		if err != nil {
			b.Fatal(err)
		}
		return &estMemoClient{Client: client, m: make(map[string][2]int)}
	}

	seed := relstore.NewDatabase("seed")
	if _, err := seed.Exec("CREATE TABLE seed (k TEXT)"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < keys; i++ {
		if _, err := seed.Exec(fmt.Sprintf("INSERT INTO seed VALUES ('k%d')", i)); err != nil {
			b.Fatal(err)
		}
	}

	in := core.NewInstance(nil)
	if err := in.AddSource(source.NewRelSource("sql://seed", seed)); err != nil {
		b.Fatal(err)
	}
	for _, r := range []struct {
		name string
		rtt  time.Duration
	}{
		{"fast1", fastRTT}, {"fast2", fastRTT}, {"fast3", fastRTT}, {"slow", slowRTT},
	} {
		if err := in.AddSource(makeRemote(r.name, r.rtt)); err != nil {
			b.Fatal(err)
		}
	}

	q, _, err := core.ParseCMQ(`
QUERY q(?k, ?b, ?c, ?d, ?s)
FROM <sql://seed> OUT(?k) { SELECT k FROM seed }
FROM <sql://fast1> IN(?k) OUT(?k, ?b) { SELECT k, v FROM t WHERE k = ? }
FROM <sql://fast2> IN(?b) OUT(?b, ?c) { SELECT k, v FROM t WHERE k = ? }
FROM <sql://fast3> IN(?c) OUT(?c, ?d) { SELECT k, v FROM t WHERE k = ? }
FROM <sql://slow> IN(?k) OUT(?k, ?s) { SELECT k, v FROM t WHERE k = ? }
`)
	if err != nil {
		b.Fatal(err)
	}

	for _, bench := range []struct {
		name string
		opts core.ExecOptions
	}{
		{"waveBarrier", core.ExecOptions{Parallel: true, WaveBarrier: true}},
		{"dag", core.ExecOptions{Parallel: true}},
	} {
		b.Run(bench.name, func(b *testing.B) {
			// Warm the estimate memo so plan-time round trips do not
			// pollute the executor measurement.
			if _, err := in.ExecuteOpts(q, bench.opts); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := in.ExecuteOpts(q, bench.opts)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rows) != keys {
					b.Fatalf("rows: %d", len(res.Rows))
				}
			}
		})
	}
}

// BenchmarkSemiJoinPruning measures the tentpole of digest-driven
// semi-join pruning on a low-match-rate bind join: 256 outer bindings
// probe a latency-injected remote holding only 16 of the keys. With
// digest planning the remote's digest is fetched once, the 240
// provably-absent bindings are skipped before dispatch, and the few
// survivors ship in one small batch; the noDigest ablation
// (-digest-planning=false) ships every binding. Expected: ≥5× fewer
// probes on the wire (probes/op) and ≥2× lower wall-clock. rtts/op
// counts actual HTTP requests per executed query.
func BenchmarkSemiJoinPruning(b *testing.B) {
	const outerKeys = 256
	const matching = 16
	const rtt = 2 * time.Millisecond

	db := relstore.NewDatabase("remote")
	if _, err := db.Exec("CREATE TABLE t (k TEXT, v INT)"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < matching; i++ {
		if _, err := db.Exec(fmt.Sprintf("INSERT INTO t VALUES ('k%d', %d)", i, i)); err != nil {
			b.Fatal(err)
		}
	}
	seed := relstore.NewDatabase("seed")
	if _, err := seed.Exec("CREATE TABLE seed (k TEXT)"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < outerKeys; i++ {
		if _, err := seed.Exec(fmt.Sprintf("INSERT INTO seed VALUES ('k%d')", i)); err != nil {
			b.Fatal(err)
		}
	}

	var requests atomic.Int64
	inner := federation.Handler(source.NewRelSource("sql://remote", db))
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		time.Sleep(rtt) // injected network latency
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()

	q, _, err := core.ParseCMQ(`
QUERY q(?k, ?v)
FROM <sql://seed> OUT(?k) { SELECT k FROM seed }
FROM <sql://remote> IN(?k) OUT(?k, ?v) { SELECT k, v FROM t WHERE k = ? }
`)
	if err != nil {
		b.Fatal(err)
	}

	// Small batches over a small fan-out so the probe bill is paid in
	// several serial rounds — the regime where skipping probes pays.
	base := core.ExecOptions{Parallel: true, MaxFanout: 2, ProbeBatch: 16}
	noDigest := base
	noDigest.NoDigestPlanning = true
	for _, bench := range []struct {
		name string
		opts core.ExecOptions
	}{
		{"digest", base},
		{"noDigest", noDigest},
	} {
		b.Run(bench.name, func(b *testing.B) {
			client, err := federation.Dial(ts.URL)
			if err != nil {
				b.Fatal(err)
			}
			in := core.NewInstance(nil)
			if err := in.AddSource(source.NewRelSource("sql://seed", seed)); err != nil {
				b.Fatal(err)
			}
			if err := in.AddSource(&estMemoClient{Client: client, m: make(map[string][2]int)}); err != nil {
				b.Fatal(err)
			}
			// Warm up outside the timed loop: the digest fetch (one
			// /digest round trip, memoized per mutation epoch) and the
			// estimate memo are per-instance setup, not per-query cost.
			if _, err := in.ExecuteOpts(q, bench.opts); err != nil {
				b.Fatal(err)
			}
			requests.Store(0)
			probes := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := in.ExecuteOpts(q, bench.opts)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rows) != matching {
					b.Fatalf("rows: %d", len(res.Rows))
				}
				probes += outerKeys - res.Stats.PrunedProbes
			}
			b.StopTimer()
			b.ReportMetric(float64(probes)/float64(b.N), "probes/op")
			b.ReportMetric(float64(requests.Load())/float64(b.N), "rtts/op")
		})
	}
}

// BenchmarkTimeToFirstRow measures the tentpole of tuple-level
// streaming: on a large federated bind join against a latency-injected
// remote, the streamed pipeline delivers its first row after roughly
// one probe round trip — while the remaining probes are still in
// flight — whereas the materialized ablation pays the full probe bill
// before any row exists. Both modes drain through the same
// ExecuteStream API (the materialized one replays), so full-drain
// throughput is directly comparable; ttfr-ns/op reports the
// first-row latency separately. Expected: streamed ttfr ≥3× lower,
// full drain within noise of each other.
func BenchmarkTimeToFirstRow(b *testing.B) {
	const keys = 48
	const rtt = 4 * time.Millisecond

	remote := relstore.NewDatabase("remote")
	if _, err := remote.Exec("CREATE TABLE t (k TEXT, v TEXT)"); err != nil {
		b.Fatal(err)
	}
	seed := relstore.NewDatabase("seed")
	if _, err := seed.Exec("CREATE TABLE seed (k TEXT)"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < keys; i++ {
		if _, err := remote.Exec(fmt.Sprintf("INSERT INTO t VALUES ('k%d', 'v%d')", i, i)); err != nil {
			b.Fatal(err)
		}
		if _, err := seed.Exec(fmt.Sprintf("INSERT INTO seed VALUES ('k%d')", i)); err != nil {
			b.Fatal(err)
		}
	}
	inner := federation.Handler(source.NewRelSource("sql://remote", remote))
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(rtt) // injected network latency
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()
	client, err := federation.Dial(ts.URL)
	if err != nil {
		b.Fatal(err)
	}

	in := core.NewInstance(nil)
	if err := in.AddSource(source.NewRelSource("sql://seed", seed)); err != nil {
		b.Fatal(err)
	}
	if err := in.AddSource(&estMemoClient{Client: client, m: make(map[string][2]int)}); err != nil {
		b.Fatal(err)
	}
	q, _, err := core.ParseCMQ(`
QUERY q(?k, ?v)
FROM <sql://seed> OUT(?k) { SELECT k FROM seed }
FROM <sql://remote> IN(?k) OUT(?k, ?v) { SELECT k, v FROM t WHERE k = ? }
`)
	if err != nil {
		b.Fatal(err)
	}

	// Small batches over a modest fan-out: the drain takes several probe
	// rounds, so first-row and last-row latency genuinely diverge.
	base := core.ExecOptions{Parallel: true, MaxFanout: 2, ProbeBatch: 4}
	matOpts := base
	matOpts.Materialized = true
	for _, bench := range []struct {
		name string
		opts core.ExecOptions
	}{
		{"streamed", base},
		{"materialized", matOpts},
	} {
		b.Run(bench.name, func(b *testing.B) {
			// Warm the estimate memo so plan-time round trips do not
			// pollute the executor measurement.
			if _, err := in.ExecuteOpts(q, bench.opts); err != nil {
				b.Fatal(err)
			}
			var ttfr time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				start := time.Now()
				sr, err := in.ExecuteStream(context.Background(), q, bench.opts)
				if err != nil {
					b.Fatal(err)
				}
				rows, first := 0, true
				for {
					batch, err := sr.NextBatch()
					if err != nil {
						b.Fatal(err)
					}
					if len(batch) == 0 {
						break
					}
					if first {
						ttfr += time.Since(start)
						first = false
					}
					rows += len(batch)
				}
				if err := sr.Close(); err != nil {
					b.Fatal(err)
				}
				if rows != keys {
					b.Fatalf("rows: %d", rows)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(ttfr.Nanoseconds())/float64(b.N), "ttfr-ns/op")
		})
	}
}

// BenchmarkWarmBoot measures the persistent-storage tentpole: reopening
// a persistent instance (core.Open adopts the stored G∞ with zero
// recompute) against rebuilding the same instance from its triples
// (load + full saturation), each timed through to the first answered
// G∞ query. The warm path should win by well over an order of
// magnitude — it reads a catalog page and probes B-trees instead of
// re-interning the graph and re-running the saturation fixpoint.
func BenchmarkWarmBoot(b *testing.B) {
	cfg := datagen.DefaultConfig()
	cfg.NumPoliticians = 1000
	cfg.NumTweets = 0
	ds, err := datagen.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	q := core.MustParseCMQ("QUERY q(?x)\nGRAPH { ?x a :person . ?x :position :headOfState }")
	prefixes := core.WithPrefixes(map[string]string{"": datagen.NS})
	ts := ds.Graph.Triples()

	// Seed the store once: load the graph, materialize + persist G∞.
	dir := b.TempDir()
	seed, err := core.Open(dir, core.WithSaturation(), prefixes)
	if err != nil {
		b.Fatal(err)
	}
	seed.AddTriples(ts)
	if _, err := seed.Execute(q); err != nil {
		b.Fatal(err)
	}
	if err := seed.Close(); err != nil {
		b.Fatal(err)
	}

	b.Run("warmOpen", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			in, err := core.Open(dir, core.WithSaturation(), prefixes)
			if err != nil {
				b.Fatal(err)
			}
			res, err := in.Execute(q)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) == 0 {
				b.Fatal("no rows")
			}
			if in.SaturationStats().FullRecomputes != 0 {
				b.Fatal("warm boot recomputed the saturation")
			}
			b.StopTimer()
			in.Close()
			b.StartTimer()
		}
	})
	b.Run("loadSaturate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			in := core.NewInstance(rdf.NewGraph(), core.WithSaturation(), prefixes)
			in.AddTriples(ts)
			res, err := in.Execute(q)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) == 0 {
				b.Fatal("no rows")
			}
		}
	})
}

// ---------- bounded memory ----------

// maxRSSBytes reads the process high-water resident set size. Linux
// reports ru_maxrss in KiB.
func maxRSSBytes(b *testing.B) int64 {
	b.Helper()
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		b.Fatal(err)
	}
	return ru.Maxrss << 10
}

// heapInuse reports GC-settled live heap bytes.
func heapInuse() int64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return int64(m.HeapInuse)
}

// BenchmarkBoundedMemory pins the bounded-memory contract of the memory
// model (doc.go): an on-disk instance at least 4x the page-cache budget
// serves point lookups and a deliberately overflowing federated join
// while live-heap growth stays within 1.5x the budget and the
// resident-page gauge never exceeds the cap. Max RSS is reported as a
// benchmark metric so BENCH_10.json records the memory trajectory
// alongside ns/op. The seeding phase inflates the process high-water
// mark before serving starts, so the hard bound is asserted on
// GC-settled heap growth across the serving phase — the budgeted
// resources (page cache, join build sides, dictionary hot cache) all
// live on the heap.
func BenchmarkBoundedMemory(b *testing.B) {
	const cacheBudget = 16 << 20 // -page-cache-mb 16
	cfg := datagen.DefaultConfig()
	cfg.NumPoliticians = 47000
	cfg.NumTweets = 0
	ds, err := datagen.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	in, _, err := ds.PersistentInstance(b.TempDir(),
		core.WithStoreOptions(store.Options{Pager: pager.Options{CacheSize: cacheBudget / pager.PageSize}}))
	if err != nil {
		b.Fatal(err)
	}
	defer in.Close()
	st := in.StoreStats()
	if onDisk := int64(st.Pages) * pager.PageSize; onDisk < 4*cacheBudget {
		b.Fatalf("instance is %d B on disk, need >= 4x the %d B page-cache budget", onDisk, cacheBudget)
	}
	baseHeap := heapInuse()

	point := core.MustParseCMQ(`
QUERY q(?name)
GRAPH { ?x :position :headOfState . ?x foaf:name ?name }`)
	// The residual chain graph |><| chomage |><| resultats: the second
	// build side overflows a 16 KiB budget and runs as a Grace join.
	spill := core.MustParseCMQ(`
QUERY s(?name, ?dept, ?taux, ?parti, ?voix)
GRAPH { ?x a :politician . ?x foaf:name ?name . ?x :electedIn ?dept }
FROM <sql://insee> OUT(?dept, ?annee, ?taux) { SELECT dept, annee, taux FROM chomage }
FROM <sql://insee> OUT(?dept, ?parti, ?voix) { SELECT dept, parti, voix FROM resultats }
LIMIT 2000`)

	checkResident := func(b *testing.B) {
		if s := in.StoreStats(); s.ResidentPages > cacheBudget/pager.PageSize {
			b.Fatalf("resident gauge %d pages exceeds the %d-page cap", s.ResidentPages, cacheBudget/pager.PageSize)
		}
	}
	b.Run("pointLookup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := in.ExecuteOpts(point, core.ExecOptions{Parallel: true})
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) == 0 {
				b.Fatal("no rows")
			}
		}
		b.StopTimer()
		checkResident(b)
		b.ReportMetric(float64(maxRSSBytes(b))/(1<<20), "max-rss-MB")
	})
	b.Run("spillJoin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := in.ExecuteOpts(spill, core.ExecOptions{Parallel: true, JoinMemBudget: 16 << 10})
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) != 2000 {
				b.Fatalf("got %d rows, want 2000", len(res.Rows))
			}
			if res.Stats.SpilledJoins == 0 {
				b.Fatal("join stayed in memory under a 16 KiB build budget")
			}
		}
		b.StopTimer()
		checkResident(b)
		b.ReportMetric(float64(maxRSSBytes(b))/(1<<20), "max-rss-MB")
		if grown := heapInuse() - baseHeap; grown > cacheBudget*3/2 {
			b.Fatalf("live heap grew %d B across the serving phase, budget bound is %d B", grown, cacheBudget*3/2)
		}
	})
}

// BenchmarkWarmBootAllocs pins the paged dictionary's startup contract:
// reopening a store allocates independently of how many terms the
// instance has accumulated, because terms page in lazily on first touch
// instead of loading wholesale at boot. The allocation ratio between an
// 8x-terms store and the baseline store is reported and must stay far
// under the term ratio.
func BenchmarkWarmBootAllocs(b *testing.B) {
	openAllocs := func(n int) uint64 {
		cfg := datagen.DefaultConfig()
		cfg.NumPoliticians = n
		cfg.NumTweets = 0
		ds, err := datagen.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		dir := b.TempDir()
		seed, _, err := ds.PersistentInstance(dir)
		if err != nil {
			b.Fatal(err)
		}
		if err := seed.Close(); err != nil {
			b.Fatal(err)
		}
		best := ^uint64(0)
		for i := 0; i < 3; i++ {
			runtime.GC()
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			in, warm, err := ds.PersistentInstance(dir)
			runtime.ReadMemStats(&m1)
			if err != nil {
				b.Fatal(err)
			}
			if !warm {
				b.Fatal("reopen did not warm boot")
			}
			in.Close()
			if d := m1.Mallocs - m0.Mallocs; d < best {
				best = d
			}
		}
		return best
	}
	small := openAllocs(500)
	large := openAllocs(4000)
	ratio := float64(large) / float64(small)
	b.ReportMetric(ratio, "allocs-ratio-8x-terms")
	b.ReportMetric(float64(small), "allocs/open")
	if ratio > 2 {
		b.Fatalf("warm boot allocations scale with term count: %d at 1x vs %d at 8x terms (ratio %.2f)", small, large, ratio)
	}
	for i := 0; i < b.N; i++ {
		// The timed body is a no-op: the benchmark exists for its
		// metrics and the scaling assertion above.
	}
}

// BenchmarkPointLookupDisk prices the disk-backed triple probe: the
// same Contains workload against the in-memory map backend and the
// store-backed B-tree backend with a warm page cache. The B-tree pays
// key encoding plus a descent through cached pages; the target is
// staying within a small constant factor (~2x) of the map.
func BenchmarkPointLookupDisk(b *testing.B) {
	cfg := datagen.DefaultConfig()
	cfg.NumPoliticians = 1000
	cfg.NumTweets = 0
	ds, err := datagen.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ts := ds.Graph.Triples()

	b.Run("memory", func(b *testing.B) {
		g := ds.Graph
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !g.Contains(ts[i%len(ts)]) {
				b.Fatal("probe missed")
			}
		}
	})
	b.Run("disk", func(b *testing.B) {
		st, err := store.Open(filepath.Join(b.TempDir(), "bench.db"), store.Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		g, err := rdf.OpenGraph(st, "g")
		if err != nil {
			b.Fatal(err)
		}
		g.AddAll(ts)
		if err := st.Commit(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !g.Contains(ts[i%len(ts)]) {
				b.Fatal("probe missed")
			}
		}
		b.StopTimer()
		if err := g.StoreErr(); err != nil {
			b.Fatal(err)
		}
	})
}
