// Command sourced serves one data source of the synthetic mixed
// instance as an HTTP federation endpoint, so a remote tatooine
// mediator can query it (the paper's remote-endpoint / dynamic source
// discovery code path). The endpoint speaks the full federation wire
// protocol, including POST /batch: a mediator's batched bind-join
// probes arrive as one request and are pushed down natively when the
// served source supports source.BatchProber (IN-list rewriting for the
// relational sources), or evaluated in a server-side loop otherwise —
// either way the per-binding HTTP round trips collapse into one.
//
// A running endpoint can be attached to (POST /sources) and dropped
// from (DELETE /sources/{uri}) a live "tatooine serve" mediator; when
// the data behind an endpoint is reloaded in place, tell the mediator
// with POST /admin/invalidate {"source": "<uri>"} so its probe cache
// stops serving pre-reload rows before the TTL would expire them.
//
// Usage:
//
//	sourced -source tweets  -addr :8081
//	sourced -source insee   -addr :8082
//	sourced -source graph   -addr :8083
//	sourced -source region-idf -addr :8084
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"tatooine/internal/datagen"
	"tatooine/internal/federation"
	"tatooine/internal/obs"
	"tatooine/internal/server"
	"tatooine/internal/source"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sourced:", err)
		os.Exit(1)
	}
}

func run() error {
	name := flag.String("source", "tweets", "source to serve: tweets, fbposts, insee, graph, speeches, region-idf, region-bzh, region-paca")
	addr := flag.String("addr", ":8081", "listen address")
	seed := flag.Int64("seed", 42, "dataset seed")
	tweets := flag.Int("tweets", 5000, "number of tweets")
	flag.Parse()

	cfg := datagen.DefaultConfig()
	cfg.Seed = *seed
	cfg.NumTweets = *tweets
	ds, err := datagen.Generate(cfg)
	if err != nil {
		return err
	}

	var src source.DataSource
	switch *name {
	case "tweets":
		src = source.NewDocSource(datagen.TweetsURI, ds.Tweets)
	case "fbposts":
		src = source.NewDocSource(datagen.FacebookURI, ds.Facebook)
	case "insee":
		src = source.NewRelSource(datagen.INSEEURI, ds.INSEE)
	case "graph":
		src = source.NewRDFSource("rdf://politics", ds.Graph, true)
	case "speeches":
		src = source.NewXMLSource(datagen.SpeechesURI, ds.Speeches)
	default:
		db, ok := ds.Regional["sql://"+*name]
		if !ok {
			return fmt.Errorf("unknown source %q", *name)
		}
		src = source.NewRelSource("sql://"+*name, db)
	}

	fmt.Fprintf(os.Stderr, "serving %s (%s model) on %s\n", src.URI(), src.Model(), *addr)
	// The federation handler joins X-Tat-* traces from calling
	// mediators; /metrics exposes the endpoint's process-wide registry
	// (probe caches, handler counters) for the same scrapers that watch
	// the mediator.
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", obs.Handler(obs.Default))
	mux.Handle("/", federation.Handler(src))
	return server.NewHTTPServer(*addr, mux).ListenAndServe()
}
