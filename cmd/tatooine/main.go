// Command tatooine is the CLI for the TATOOINE mixed-instance querying
// system. It generates the synthetic French-politics mixed instance
// (the demonstration dataset substitute) and runs mixed queries,
// keyword searches, digests and tag-cloud analytics over it.
//
// Usage:
//
//	tatooine demo                        run the demonstration scenarios
//	tatooine query  -q 'QUERY …'         run a CMQ (or -f query.cmq)
//	tatooine serve  -addr :8080          long-running HTTP mediator service
//	                                     (queries via POST /cmq; the instance
//	                                     is mutable mid-session via POST
//	                                     /graph, POST/DELETE /sources and
//	                                     POST /admin/invalidate — every
//	                                     mutation bumps the instance epoch
//	                                     and invalidates dependent caches;
//	                                     graph atoms answer over G∞,
//	                                     maintained incrementally under
//	                                     mutations unless
//	                                     -delta-saturation=false)
//	tatooine keyword head of state SIA2016
//	tatooine tagcloud -o tagcloud.html   Figure 3 tag clouds
//	tatooine digest                      print per-source digests
//	tatooine explain -q 'QUERY …'        show the execution plan
//
// Global flags (before the subcommand): -seed, -politicians, -tweets,
// -weeks scale the generated instance.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tatooine/internal/analytics"
	"tatooine/internal/core"
	"tatooine/internal/datagen"
	"tatooine/internal/digest"
	"tatooine/internal/keyword"
	"tatooine/internal/pager"
	"tatooine/internal/server"
	"tatooine/internal/store"
	"tatooine/internal/viz"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tatooine:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	global := flag.NewFlagSet("tatooine", flag.ContinueOnError)
	seed := global.Int64("seed", 42, "dataset seed")
	politicians := global.Int("politicians", 120, "number of politicians")
	tweets := global.Int("tweets", 5000, "number of tweets")
	weeks := global.Int("weeks", 4, "number of weeks")
	if err := global.Parse(args); err != nil {
		return err
	}
	rest := global.Args()
	if len(rest) == 0 {
		return fmt.Errorf("missing subcommand (demo, query, serve, keyword, tagcloud, digest, explain)")
	}

	cfg := datagen.DefaultConfig()
	cfg.Seed = *seed
	cfg.NumPoliticians = *politicians
	cfg.NumTweets = *tweets
	cfg.Weeks = *weeks

	start := time.Now()
	ds, err := datagen.Generate(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "mixed instance ready in %v: G=%d triples, %d tweets, %d fb posts, %d INSEE tables\n",
		time.Since(start).Round(time.Millisecond), ds.Graph.Size(), ds.Tweets.Count(),
		ds.Facebook.Count(), len(ds.INSEE.Tables()))

	// serve assembles its own instance (it adds the saturation option
	// from its flags); every other subcommand shares the default one.
	if rest[0] == "serve" {
		return cmdServe(ds, rest[1:])
	}
	in, err := ds.Instance()
	if err != nil {
		return err
	}
	switch rest[0] {
	case "demo":
		return cmdDemo(ds, in)
	case "query":
		return cmdQuery(in, rest[1:], false)
	case "explain":
		return cmdQuery(in, rest[1:], true)
	case "keyword":
		return cmdKeyword(in, rest[1:])
	case "tagcloud":
		return cmdTagcloud(ds, rest[1:])
	case "digest":
		return cmdDigest(in)
	default:
		return fmt.Errorf("unknown subcommand %q", rest[0])
	}
}

func printResult(res *core.QueryResult) {
	fmt.Println(strings.Join(res.Cols, "\t"))
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
		}
		fmt.Println(strings.Join(parts, "\t"))
	}
	fmt.Fprintf(os.Stderr, "%d rows; %d sub-queries (%d batched), %d rows fetched, %d waves, %d bind joins, %d dynamic sources\n",
		len(res.Rows), res.Stats.SubQueries, res.Stats.BatchProbes, res.Stats.RowsFetched,
		res.Stats.Waves, res.Stats.BindJoins, res.Stats.Dynamic)
}

func cmdQuery(in *core.Instance, args []string, explainOnly bool) error {
	fs := flag.NewFlagSet("query", flag.ContinueOnError)
	qtext := fs.String("q", "", "CMQ text")
	qfile := fs.String("f", "", "file holding the CMQ")
	if err := fs.Parse(args); err != nil {
		return err
	}
	text := *qtext
	if *qfile != "" {
		data, err := os.ReadFile(*qfile)
		if err != nil {
			return err
		}
		text = string(data)
	}
	if text == "" {
		return fmt.Errorf("provide -q or -f")
	}
	q, _, err := core.ParseCMQ(text)
	if err != nil {
		return err
	}
	res, err := in.Execute(q)
	if err != nil {
		return err
	}
	if explainOnly {
		fmt.Print(res.Plan.Explain(q))
		return nil
	}
	printResult(res)
	return nil
}

// cmdServe runs the long-running HTTP mediator service around the
// generated mixed instance. The serving instance evaluates graph atoms
// over G∞ (the paper's answer semantics); by default the saturation is
// maintained incrementally under mutations (internal/reason), and
// -delta-saturation=false restores the recompute-per-epoch path for
// ablation.
func cmdServe(ds *datagen.Dataset, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	dataDir := fs.String("data-dir", "",
		"persist the custom graph, its saturation and the mutation epoch in this directory (paged B-tree store + WAL); a restart warm-boots from the stored state instead of re-seeding (empty = in-memory)")
	pageCacheMB := fs.Int("page-cache-mb", 0,
		"store page-cache budget in MiB — the hard cap on pages resident in memory (0 = default 16; requires -data-dir)")
	joinMemBudgetMB := fs.Int("join-mem-budget", 0,
		"per-join build-side memory budget in MiB: residual hash joins whose build side exceeds it spill to a partitioned on-disk join (0 = unbounded, never spill)")
	deltaSat := fs.Bool("delta-saturation", true,
		"maintain G∞ incrementally under mutations (false = full recompute per epoch move, for ablation)")
	resultCache := fs.Int("result-cache", server.DefaultResultCacheSize,
		"result-cache entries (negative disables)")
	probeCache := fs.Int("probe-cache", 0,
		"per-source sub-query cache entries (0 = default, negative disables)")
	probeTTL := fs.Duration("probe-ttl", 0,
		"probe-cache entry TTL, e.g. 5m (0 = entries never expire)")
	fanout := fs.Int("fanout", 0,
		"bind-join fan-out per atom (0 = derive from GOMAXPROCS, clamped)")
	probeBatch := fs.Int("probe-batch", 0,
		"bind-join probe batch size for batch-capable sources (0 = default 64, 1 disables batching)")
	adaptiveBatch := fs.Bool("adaptive-batch", true,
		"adapt per-source probe batch size from observed round-trip latency (within [16, 256])")
	waveBarrier := fs.Bool("wave-barrier", false,
		"schedule atoms in barrier-synchronized waves instead of the pipelined operator DAG (ablation)")
	materialized := fs.Bool("materialized", false,
		"materialize every node result before joining instead of streaming tuples through the DAG (ablation; also disables NDJSON row streaming)")
	digestPlanning := fs.Bool("digest-planning", true,
		"refine planner row estimates with per-source digest statistics and prune bind-join probes the digests exclude (false = source estimates only, no semi-join pruning; ablation)")
	slowQuery := fs.Duration("slow-query", server.DefaultSlowQuery,
		"slow-query log threshold: completed queries at or over it are logged and flagged on GET /debug/queries (negative disables)")
	traceRing := fs.Int("trace-ring", server.DefaultTraceRing,
		"flight-recorder capacity: last N completed query traces on GET /debug/queries (negative disables)")
	logRequests := fs.Bool("log-requests", false,
		"log one structured line per HTTP request")
	pprofOn := fs.Bool("pprof", false,
		"mount net/http/pprof under GET /debug/pprof/")
	if err := fs.Parse(args); err != nil {
		return err
	}
	satOpt := core.WithSaturation()
	if !*deltaSat {
		satOpt = core.WithFullResaturation()
	}
	var in *core.Instance
	var err error
	if *dataDir != "" {
		instOpts := []core.InstanceOption{satOpt}
		if *pageCacheMB > 0 {
			instOpts = append(instOpts, core.WithStoreOptions(store.Options{
				Pager: pager.Options{CacheSize: (*pageCacheMB << 20) / pager.PageSize},
			}))
		}
		var warm bool
		in, warm, err = ds.PersistentInstance(*dataDir, instOpts...)
		if err != nil {
			return err
		}
		boot := "seeded fresh store"
		if warm {
			boot = "warm boot from stored state"
		}
		fmt.Fprintf(os.Stderr, "persistent instance at %s: %s (epoch %d, G=%d triples)\n",
			*dataDir, boot, in.Epoch(), in.Graph().Size())
	} else {
		in, err = ds.Instance(satOpt)
		if err != nil {
			return err
		}
	}
	exec := core.ExecOptions{
		Parallel:         true,
		MaxFanout:        *fanout,
		ProbeBatch:       *probeBatch,
		WaveBarrier:      *waveBarrier,
		Materialized:     *materialized,
		NoDigestPlanning: !*digestPlanning,
		JoinMemBudget:    int64(*joinMemBudgetMB) << 20,
	}
	if *adaptiveBatch {
		exec.Tuner = core.NewBatchTuner()
	}
	srv := server.New(in, server.Options{
		ResultCacheSize: *resultCache,
		ProbeCacheSize:  *probeCache,
		ProbeTTL:        *probeTTL,
		Exec:            exec,
		SlowQuery:       *slowQuery,
		TraceRing:       *traceRing,
		LogRequests:     *logRequests,
		EnablePprof:     *pprofOn,
	})
	fmt.Fprintf(os.Stderr, "mediator service listening on %s\n", *addr)
	fmt.Fprintln(os.Stderr, "  query:  POST /cmq · GET /stats · GET /healthz")
	fmt.Fprintln(os.Stderr, "  mutate: POST|DELETE /graph · POST /sources · DELETE /sources/{uri} · POST /admin/invalidate")
	fmt.Fprintln(os.Stderr, "  observe: GET /metrics · GET /debug/queries")

	// Serve until SIGINT/SIGTERM, then drain in-flight requests and
	// close the instance — for a persistent one that commits pending
	// state and folds the WAL into the main file, so the next boot
	// replays nothing.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	httpSrv := server.NewHTTPServer(*addr, srv.Handler())
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		in.Close()
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "shutting down: draining requests…")
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "shutdown:", err)
	}
	if err := in.Close(); err != nil {
		return fmt.Errorf("closing instance: %w", err)
	}
	if in.Persistent() {
		fmt.Fprintln(os.Stderr, "store checkpointed and closed")
	}
	return nil
}

func cmdKeyword(in *core.Instance, keywords []string) error {
	if len(keywords) == 0 {
		return fmt.Errorf("provide keywords")
	}
	cat, err := keyword.BuildCatalog(in, digest.DefaultBudget())
	if err != nil {
		return err
	}
	cands, err := cat.Search(keywords, keyword.SearchOptions{MaxCandidates: 3})
	if err != nil {
		return err
	}
	for i, cand := range cands {
		fmt.Printf("-- candidate %d (weight %.2f)\n", i+1, cand.Weight)
		fmt.Println("   path:", cat.Explain(cand))
		fmt.Println("   query:", cand.Query)
		res, err := in.Execute(cand.Query)
		if err != nil {
			fmt.Println("   execution failed:", err)
			continue
		}
		fmt.Printf("   %d rows", len(res.Rows))
		if len(res.Rows) > 0 {
			fmt.Printf("; first: %v", res.Rows[0])
		}
		fmt.Println()
	}
	return nil
}

func cmdTagcloud(ds *datagen.Dataset, args []string) error {
	fs := flag.NewFlagSet("tagcloud", flag.ContinueOnError)
	out := fs.String("o", "tagcloud.html", "output HTML file")
	topK := fs.Int("k", 12, "terms per cloud")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tc := analytics.ComputeTagClouds(ds.Tweets, "text", ds.Classifier(), *topK, 3)
	currents := datagen.CurrentOfParty()
	fmt.Print(viz.RenderText(tc, currents, 6))
	html := viz.RenderHTML(tc, viz.HTMLOptions{
		Title:     "Vocabulary by party — state of emergency (synthetic)",
		CurrentOf: currents,
	})
	if err := os.WriteFile(*out, []byte(html), 0o644); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "wrote", *out)
	return nil
}

func cmdDigest(in *core.Instance) error {
	cat, err := keyword.BuildCatalog(in, digest.DefaultBudget())
	if err != nil {
		return err
	}
	for _, d := range cat.Digests() {
		fmt.Printf("== %s ==\n", d.Source)
		for _, n := range d.NodeList() {
			line := fmt.Sprintf("  %-12s %s", n.Kind, n.Label)
			if n.Values != nil {
				line += fmt.Sprintf("  n=%d exact=%v", n.Values.Count(), n.Values.Exact())
				if h := n.Values.Histogram(); h != nil {
					line += " " + h.String()
				}
			}
			fmt.Println(line)
		}
	}
	return nil
}

// cmdDemo walks the three demonstration scenarios of §3.
func cmdDemo(ds *datagen.Dataset, in *core.Instance) error {
	hos := ds.Politicians[0]
	fmt.Println("=== scenario: qSIA — tweets from heads of state about #SIA2016 (§2.2) ===")
	res, err := in.Query(`
QUERY qSIA(?t, ?id)
GRAPH { ?x :position :headOfState . ?x :twitterAccount ?id }
FROM <solr://tweets> IN(?id) OUT(?t, ?id)
  { SEARCH tweets WHERE user.screen_name = ? AND entities.hashtags = 'SIA2016' RETURN _id, user.screen_name }
LIMIT 5
`)
	if err != nil {
		return err
	}
	printResult(res)

	fmt.Println("\n=== scenario (1): factual sources for the head of state's economy claims ===")
	res, err = in.Query(`
QUERY facts(?t, ?dept, ?taux)
GRAPH { ?x :position :headOfState . ?x :twitterAccount ?id . ?x :electedIn ?dept }
FROM <solr://tweets> IN(?id) OUT(?t, ?id)
  { SEARCH tweets WHERE user.screen_name = ? AND entities.hashtags = 'economie' RETURN _id, user.screen_name }
FROM <sql://insee> IN(?dept) OUT(?dept, ?taux)
  { SELECT dept, taux FROM chomage WHERE dept = ? AND annee = 2015 }
LIMIT 5
`)
	if err != nil {
		return err
	}
	printResult(res)
	_ = hos

	fmt.Println("\n=== scenario (2): PMI tag clouds (Figure 3) ===")
	tc := analytics.ComputeTagClouds(ds.Tweets, "text", ds.Classifier(), 6, 3)
	fmt.Print(viz.RenderText(tc, datagen.CurrentOfParty(), 6))

	fmt.Println("\n=== keyword search: \"head of state\" + \"SIA2016\" → generated CMQ (§2.2) ===")
	cat, err := keyword.BuildCatalog(in, digest.DefaultBudget())
	if err != nil {
		return err
	}
	cands, err := cat.Search([]string{"head of state", "SIA2016"}, keyword.SearchOptions{MaxCandidates: 1})
	if err != nil {
		return err
	}
	fmt.Println("generated:", cands[0].Query)
	res2, err := in.Execute(cands[0].Query)
	if err != nil {
		return err
	}
	fmt.Printf("%d rows\n", len(res2.Rows))
	return nil
}
