// End-to-end integration tests: the complete TATOOINE pipeline over
// the generated mixed instance — every substrate, the mediator, the
// keyword engine, the analytics, and the HTTP federation layer
// together, as the demonstration runs them.
package tatooine_test

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"tatooine/internal/analytics"
	"tatooine/internal/core"
	"tatooine/internal/datagen"
	"tatooine/internal/digest"
	"tatooine/internal/federation"
	"tatooine/internal/keyword"
	"tatooine/internal/source"
	"tatooine/internal/viz"
)

func integrationDataset(t *testing.T) (*datagen.Dataset, *core.Instance) {
	t.Helper()
	cfg := datagen.DefaultConfig()
	cfg.NumPoliticians = 80
	cfg.NumTweets = 2500
	cfg.NumFacebookPosts = 200
	ds, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in, err := ds.Instance()
	if err != nil {
		t.Fatal(err)
	}
	return ds, in
}

// TestDemoScenarioEndToEnd walks the full §3 demonstration:
// qSIA, fact-checking, PMI clouds, keyword search — over one instance.
func TestDemoScenarioEndToEnd(t *testing.T) {
	ds, in := integrationDataset(t)

	// qSIA.
	res, err := in.Query(`
QUERY qSIA(?t, ?id)
GRAPH { ?x :position :headOfState . ?x :twitterAccount ?id }
FROM <solr://tweets> IN(?id) OUT(?t, ?id)
  { SEARCH tweets WHERE user.screen_name = ? AND entities.hashtags = 'SIA2016' RETURN _id, user.screen_name }
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Error("qSIA empty")
	}

	// Scenario (1): claims + INSEE stats, 3 heterogeneous atoms.
	res, err = in.Query(`
QUERY facts(?t, ?dept, ?taux)
GRAPH { ?x :position :headOfState . ?x :twitterAccount ?id . ?x :electedIn ?dept }
FROM <solr://tweets> IN(?id) OUT(?t, ?id)
  { SEARCH tweets WHERE user.screen_name = ? AND entities.hashtags = 'economie' RETURN _id, user.screen_name }
FROM <sql://insee> IN(?dept) OUT(?dept, ?taux)
  { SELECT dept, taux FROM chomage WHERE dept = ? AND annee = 2015 }
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Error("fact-check query empty")
	}

	// Speeches (XML) joined through the graph.
	res, err = in.Query(`
QUERY sp(?name, ?spid, ?topic)
GRAPH { ?x :position :headOfState . ?x foaf:name ?name }
FROM <xml://speeches> IN(?name) OUT(?spid, ?topic)
  { XPATH /speeches/speech[@speaker=?] RETURN _id, topic }
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Error("speeches query empty (datagen guarantees at least one)")
	}

	// Aggregated head: tweet volume per current.
	res, err = in.Query(`
QUERY vol(?cur, COUNT(?t) AS ?n)
GRAPH { ?x :memberOf ?p . ?p :currentOf ?cur . ?x :twitterAccount ?id }
FROM <solr://tweets> IN(?id) OUT(?t, ?id)
  { SEARCH tweets WHERE user.screen_name = ? AND entities.hashtags = 'EtatDurgence' RETURN _id, user.screen_name }
GROUP BY ?cur
ORDER BY ?n DESC
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 3 {
		t.Errorf("currents with tweets: %d", len(res.Rows))
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i-1][1].Int() < res.Rows[i][1].Int() {
			t.Errorf("not sorted by count: %+v", res.Rows)
		}
	}

	// Scenario (2): PMI clouds render.
	tc := analytics.ComputeTagClouds(ds.Tweets, "text", ds.Classifier(), 8, 3)
	if len(tc.Weeks) == 0 {
		t.Fatal("no tag clouds")
	}
	html := viz.RenderHTML(tc, viz.HTMLOptions{Title: "it", CurrentOf: datagen.CurrentOfParty()})
	if !strings.Contains(html, "<table>") {
		t.Error("tag cloud HTML malformed")
	}

	// Keyword search over the full instance.
	cat, err := keyword.BuildCatalog(in, digest.DefaultBudget())
	if err != nil {
		t.Fatal(err)
	}
	cands, err := cat.Search([]string{"head of state", "SIA2016"}, keyword.SearchOptions{MaxCandidates: 3})
	if err != nil {
		t.Fatal(err)
	}
	executed := false
	for _, cand := range cands {
		if res, err := in.Execute(cand.Query); err == nil && len(res.Rows) > 0 {
			executed = true
			break
		}
	}
	if !executed {
		t.Error("no keyword candidate produced results")
	}
}

// TestFullyFederatedInstance serves every source over HTTP and runs
// the mediator purely against remote endpoints.
func TestFullyFederatedInstance(t *testing.T) {
	ds, _ := integrationDataset(t)

	serve := func(s source.DataSource) *federation.Client {
		srv := httptest.NewServer(federation.Handler(s))
		t.Cleanup(srv.Close)
		c, err := federation.Dial(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	in := core.NewInstance(ds.Graph, core.WithPrefixes(map[string]string{"": datagen.NS}))
	for _, s := range []source.DataSource{
		source.NewDocSource(datagen.TweetsURI, ds.Tweets),
		source.NewRelSource(datagen.INSEEURI, ds.INSEE),
		source.NewXMLSource(datagen.SpeechesURI, ds.Speeches),
	} {
		if err := in.AddSource(serve(s)); err != nil {
			t.Fatal(err)
		}
	}

	res, err := in.Query(`
QUERY q(?t, ?id, ?dept, ?taux)
GRAPH { ?x :position :headOfState . ?x :twitterAccount ?id . ?x :electedIn ?dept }
FROM <solr://tweets> IN(?id) OUT(?t, ?id)
  { SEARCH tweets WHERE user.screen_name = ? AND entities.hashtags = 'SIA2016' RETURN _id, user.screen_name }
FROM <sql://insee> IN(?dept) OUT(?dept, ?taux)
  { SELECT dept, taux FROM chomage WHERE dept = ? AND annee = 2016 }
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Error("federated 3-source query empty")
	}

	// Keyword search pulls remote digests.
	cat, err := keyword.BuildCatalog(in, digest.DefaultBudget())
	if err != nil {
		t.Fatal(err)
	}
	if len(cat.Digests()) != 4 { // G + 3 remote
		t.Errorf("digests: %d", len(cat.Digests()))
	}
	if _, err := cat.Search([]string{"head of state", "SIA2016"}, keyword.SearchOptions{}); err != nil {
		t.Errorf("federated keyword search: %v", err)
	}
}

// TestExportedTableAsGraphExtension reproduces §1's workflow: a small
// curated table (parties → EP groups) exported to RDF and loaded into
// the custom graph, then used as the bridge in a mixed query.
func TestExportedTableAsGraphExtension(t *testing.T) {
	ds, _ := integrationDataset(t)

	// The "hand-built tabular file": party → EP group.
	aux := ds.INSEE // reuse the db object for convenience
	if _, err := aux.Exec("CREATE TABLE epgroups (party TEXT PRIMARY KEY, ep TEXT)"); err != nil {
		t.Fatal(err)
	}
	for _, p := range datagen.Parties {
		if _, err := aux.Exec(fmt.Sprintf("INSERT INTO epgroups VALUES ('%s', '%s')",
			p.ID, strings.ReplaceAll(p.EPGroup, "'", "''"))); err != nil {
			t.Fatal(err)
		}
	}
	added, err := source.ExportTableRDF(ds.Graph, aux.Table("epgroups"), datagen.NS+"aux/")
	if err != nil || added == 0 {
		t.Fatalf("export: %d, %v", added, err)
	}

	in, err := ds.Instance()
	if err != nil {
		t.Fatal(err)
	}
	// Query across: politicians → party code (from localname of the
	// party IRI we can't string-op in BGP, so epgroups carries party
	// IDs which also appear as party IRIs' trailing part; join via the
	// aux row's party literal against a helper triple instead).
	res, err := in.Query(`
QUERY q(?row, ?ep)
GRAPH { ?row <http://tatooine.example/aux/ep> ?ep }
ORDER BY ?ep
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(datagen.Parties) {
		t.Errorf("exported rows queryable: %d", len(res.Rows))
	}
}
