#!/bin/sh
# obs_vet.sh — observability hygiene gate, run from `make verify`.
#
# 1. No new fmt.Print* logging outside cmd/ (and examples/): library
#    code logs through log/slog or exposes obs metrics; stray printf
#    debugging must not land.
# 2. The /metrics surface stays scrapeable: boot a real mediator on a
#    loopback port, run one query, scrape GET /metrics and fail on any
#    line that is not a well-formed HELP/TYPE comment or a
#    `name{labels} value` sample with a numeric value.
set -eu

cd "$(dirname "$0")/.."

# --- 1. printf-logging gate ---------------------------------------------
# fmt.Fprintf to a writer is fine (wire encoding, renderers); bare
# fmt.Print/Println/Printf write to stdout and are logging.
offenders="$(grep -rn --include='*.go' -E 'fmt\.Print(f|ln)?\(' internal/ 2>/dev/null \
    | grep -v '_test.go' || true)"
if [ -n "$offenders" ]; then
    echo "obs_vet: fmt.Print logging outside cmd/ (use log/slog or obs metrics):" >&2
    echo "$offenders" >&2
    exit 1
fi

# --- 2. /metrics scrape gate --------------------------------------------
go build -o /tmp/obs_vet_tatooine ./cmd/tatooine

/tmp/obs_vet_tatooine -tweets 200 serve -addr 127.0.0.1:18089 >/tmp/obs_vet_serve.log 2>&1 &
srv=$!
trap 'kill $srv 2>/dev/null || true' EXIT

ok=""
for _ in $(seq 1 50); do
    if curl -fsS -o /dev/null http://127.0.0.1:18089/healthz 2>/dev/null; then
        ok=1
        break
    fi
    sleep 0.1
done
if [ -z "$ok" ]; then
    echo "obs_vet: mediator did not come up; serve log:" >&2
    cat /tmp/obs_vet_serve.log >&2
    exit 1
fi

# One real query so the latency histograms have samples.
curl -fsS -o /dev/null -X POST http://127.0.0.1:18089/cmq \
    -H 'Content-Type: application/json' \
    -d '{"query": "QUERY q(?x, ?p) GRAPH { ?x :position ?p }"}' \
    || { echo "obs_vet: query against mediator failed" >&2; exit 1; }

metrics=/tmp/obs_vet_metrics.txt
curl -fsS http://127.0.0.1:18089/metrics >"$metrics"

bad="$(awk '
    /^$/ { next }
    /^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* / { next }
    /^#/ { print "bad comment: " $0; next }
    {
        if ($0 !~ /^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9+.eE-]+$/ &&
            $0 !~ /^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? \+Inf$/)
            print "bad sample: " $0
    }
' "$metrics")"
if [ -n "$bad" ]; then
    echo "obs_vet: unparseable /metrics lines:" >&2
    echo "$bad" >&2
    exit 1
fi

count="$(grep -c '^tat_' "$metrics" || true)"
if [ "$count" -lt 10 ]; then
    echo "obs_vet: expected tat_* metric samples on /metrics, found $count" >&2
    cat "$metrics" >&2
    exit 1
fi

echo "obs_vet: ok ($count tat_* samples, printf gate clean)"
