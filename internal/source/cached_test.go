package source_test

import (
	"fmt"
	"sync"
	"testing"

	"tatooine/internal/source"
	"tatooine/internal/value"
)

// fakeSource records Execute calls and answers with a row echoing the
// parameters, so tests can tell which invocation produced a result.
type fakeSource struct {
	mu        sync.Mutex
	executes  int
	estimates int
	fail      bool
}

func (f *fakeSource) URI() string                  { return "fake://src" }
func (f *fakeSource) Model() source.Model          { return source.RelationalModel }
func (f *fakeSource) Languages() []source.Language { return []source.Language{source.LangSQL} }
func (f *fakeSource) EstimateCost(source.SubQuery, int) int {
	f.mu.Lock()
	f.estimates++
	f.mu.Unlock()
	return 7
}

func (f *fakeSource) Execute(q source.SubQuery, params []value.Value) (*source.Result, error) {
	f.mu.Lock()
	f.executes++
	n := f.executes
	fail := f.fail
	f.mu.Unlock()
	if fail {
		return nil, fmt.Errorf("fake: boom")
	}
	row := value.Row{value.NewInt(int64(n))}
	row = append(row, params...)
	return &source.Result{Cols: []string{"n"}, Rows: []value.Row{row}}, nil
}

func (f *fakeSource) calls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.executes
}

func (f *fakeSource) estimateCalls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.estimates
}

func sub(text string) source.SubQuery {
	return source.SubQuery{Language: source.LangSQL, Text: text}
}

func TestCachedHitAndMiss(t *testing.T) {
	f := &fakeSource{}
	c := source.NewCached(f, 8)

	r1, err := c.Execute(sub("SELECT a"), nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Execute(sub("SELECT a"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.calls() != 1 {
		t.Errorf("inner executions: %d, want 1", f.calls())
	}
	if r1 != r2 {
		t.Error("cache hit returned a different result object")
	}
	if _, err := c.Execute(sub("SELECT b"), nil); err != nil {
		t.Fatal(err)
	}
	if f.calls() != 2 {
		t.Errorf("distinct text should miss: %d inner executions", f.calls())
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Entries != 2 {
		t.Errorf("stats: %+v", st)
	}
}

func TestCachedParamIsolation(t *testing.T) {
	f := &fakeSource{}
	c := source.NewCached(f, 8)

	p75 := []value.Value{value.NewString("75")}
	p92 := []value.Value{value.NewString("92")}
	r75, _ := c.Execute(sub("SELECT taux WHERE dept = ?"), p75)
	r92, _ := c.Execute(sub("SELECT taux WHERE dept = ?"), p92)
	if f.calls() != 2 {
		t.Fatalf("param-distinct probes collided: %d inner executions", f.calls())
	}
	if value.Equal(r75.Rows[0][0], r92.Rows[0][0]) {
		t.Error("different params returned the same cached result")
	}
	again, _ := c.Execute(sub("SELECT taux WHERE dept = ?"), p75)
	if f.calls() != 2 || again != r75 {
		t.Errorf("repeat probe should hit: %d executions", f.calls())
	}

	// Ambiguity check: text/param splits must not collide.
	c.Execute(sub("SELECT x WHERE a = ?"), []value.Value{value.NewString("bc")})
	before := f.calls()
	c.Execute(sub("SELECT x WHERE a = ?b"), []value.Value{value.NewString("c")})
	if f.calls() != before+1 {
		t.Error("distinct (text, params) pairs shared a cache entry")
	}
}

func TestCachedEviction(t *testing.T) {
	f := &fakeSource{}
	c := source.NewCached(f, 2)

	c.Execute(sub("q1"), nil)
	c.Execute(sub("q2"), nil)
	c.Execute(sub("q1"), nil) // refresh q1; q2 is now LRU
	c.Execute(sub("q3"), nil) // evicts q2
	if f.calls() != 3 {
		t.Fatalf("setup executions: %d", f.calls())
	}
	c.Execute(sub("q1"), nil) // still cached
	if f.calls() != 3 {
		t.Error("q1 was evicted despite being most recently used")
	}
	c.Execute(sub("q2"), nil) // must re-execute
	if f.calls() != 4 {
		t.Error("q2 survived eviction in a size-2 cache")
	}
	if st := c.Stats(); st.Evictions == 0 || st.Entries != 2 {
		t.Errorf("stats: %+v", st)
	}
}

func TestCachedErrorsNotCached(t *testing.T) {
	f := &fakeSource{fail: true}
	c := source.NewCached(f, 8)
	if _, err := c.Execute(sub("q"), nil); err == nil {
		t.Fatal("expected error")
	}
	f.mu.Lock()
	f.fail = false
	f.mu.Unlock()
	res, err := c.Execute(sub("q"), nil)
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("retry after error: %v %+v", err, res)
	}
	if f.calls() != 2 {
		t.Errorf("error was cached: %d executions", f.calls())
	}
}

func TestCachedDelegatesMetadata(t *testing.T) {
	f := &fakeSource{}
	c := source.NewCached(f, 0) // 0 → default size
	if c.URI() != f.URI() || c.Model() != f.Model() {
		t.Error("metadata not delegated")
	}
	if got := c.EstimateCost(sub("q"), 0); got != 7 {
		t.Errorf("estimate: %d", got)
	}
	if c.Unwrap() != source.DataSource(f) {
		t.Error("Unwrap did not return the inner source")
	}
}

func TestCachedConcurrentAccess(t *testing.T) {
	f := &fakeSource{}
	c := source.NewCached(f, 4)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				q := sub(fmt.Sprintf("q%d", j%6)) // overflows the size-4 cache
				if _, err := c.Execute(q, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestRegistryInterpose(t *testing.T) {
	reg := source.NewRegistry()
	f := &fakeSource{}
	if err := reg.Register(f); err != nil {
		t.Fatal(err)
	}
	dials := 0
	reg.SetFallback(func(uri string) (source.DataSource, error) {
		dials++
		return &fakeSource{}, nil
	})
	reg.Interpose(func(s source.DataSource) source.DataSource {
		return source.NewCached(s, 8)
	})

	s, err := reg.Resolve("fake://src")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(*source.Cached); !ok {
		t.Fatalf("registered source not wrapped: %T", s)
	}

	// Fallback resolutions are wrapped and memoized: one dial, one
	// stable wrapper across resolutions.
	r1, err := reg.Resolve("http://remote/a")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := reg.Resolve("http://remote/a")
	if err != nil {
		t.Fatal(err)
	}
	if dials != 1 {
		t.Errorf("fallback dialed %d times, want 1", dials)
	}
	if r1 != r2 {
		t.Error("fallback resolutions returned distinct wrappers")
	}
	if _, ok := r1.(*source.Cached); !ok {
		t.Fatalf("fallback source not wrapped: %T", r1)
	}
}

// TestInterposeFallbackMemoBounded: the fallback memo evicts least
// recently resolved sources instead of growing without limit.
func TestInterposeFallbackMemoBounded(t *testing.T) {
	reg := source.NewRegistry()
	dials := make(map[string]int)
	reg.SetFallback(func(uri string) (source.DataSource, error) {
		dials[uri]++
		return &fakeSource{}, nil
	})
	reg.Interpose(func(s source.DataSource) source.DataSource {
		return source.NewCached(s, 4)
	})

	first := "http://remote/0"
	if _, err := reg.Resolve(first); err != nil {
		t.Fatal(err)
	}
	// Resolve enough distinct URIs to push the first out of the memo.
	for i := 1; i <= source.FallbackMemoSize; i++ {
		if _, err := reg.Resolve(fmt.Sprintf("http://remote/%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := reg.Resolve(first); err != nil {
		t.Fatal(err)
	}
	if dials[first] != 2 {
		t.Errorf("evicted URI dialed %d times, want 2 (re-resolved after eviction)", dials[first])
	}
	if dials["http://remote/1"] != 1 {
		t.Errorf("recent URI re-dialed: %d", dials["http://remote/1"])
	}
}

func TestCachedEstimateMemoized(t *testing.T) {
	f := &fakeSource{}
	c := source.NewCached(f, 8)
	for i := 0; i < 3; i++ {
		if got := c.EstimateCost(sub("q"), 1); got != 7 {
			t.Fatalf("estimate: %d", got)
		}
	}
	f.mu.Lock()
	n := f.estimates
	f.mu.Unlock()
	if n != 1 {
		t.Errorf("inner EstimateCost called %d times, want 1", n)
	}
	// Distinct numParams is a distinct planning question.
	c.EstimateCost(sub("q"), 2)
	f.mu.Lock()
	n = f.estimates
	f.mu.Unlock()
	if n != 2 {
		t.Errorf("numParams-distinct estimate not re-asked: %d calls", n)
	}
}

// TestInterposeOrderIndependent: sources registered or fallbacks
// installed after Interpose are decorated too — wiring order must not
// silently lose the probe cache.
func TestInterposeOrderIndependent(t *testing.T) {
	reg := source.NewRegistry()
	reg.Interpose(func(s source.DataSource) source.DataSource {
		return source.NewCached(s, 8)
	})

	if err := reg.Register(&fakeSource{}); err != nil {
		t.Fatal(err)
	}
	s, err := reg.Resolve("fake://src")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(*source.Cached); !ok {
		t.Fatalf("source registered after Interpose not wrapped: %T", s)
	}

	dials := 0
	reg.SetFallback(func(uri string) (source.DataSource, error) {
		dials++
		return &fakeSource{}, nil
	})
	r1, err := reg.Resolve("http://remote/late")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := reg.Resolve("http://remote/late")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r1.(*source.Cached); !ok {
		t.Fatalf("fallback installed after Interpose not wrapped: %T", r1)
	}
	if dials != 1 || r1 != r2 {
		t.Errorf("late fallback not memoized: %d dials, stable=%v", dials, r1 == r2)
	}
}

// TestCachedInvalidate: Invalidate drops both the memoized results and
// the memoized cost estimates, so the next probe and the next planning
// pass go back to the (possibly mutated) inner source.
func TestCachedInvalidate(t *testing.T) {
	f := &fakeSource{}
	c := source.NewCached(f, 8)
	q := sub("SELECT 1")

	if _, err := c.Execute(q, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Execute(q, nil); err != nil {
		t.Fatal(err)
	}
	if f.calls() != 1 {
		t.Fatalf("inner executes before Invalidate: %d", f.calls())
	}
	c.EstimateCost(q, 0)
	c.EstimateCost(q, 0)
	if f.estimateCalls() != 1 {
		t.Fatalf("inner estimates before Invalidate: %d", f.estimateCalls())
	}

	if dropped := c.Invalidate(); dropped != 1 {
		t.Errorf("Invalidate dropped %d entries, want 1", dropped)
	}
	if st := c.Stats(); st.Entries != 0 || st.Invalidated != 1 {
		t.Errorf("stats after Invalidate: %+v", st)
	}

	if _, err := c.Execute(q, nil); err != nil {
		t.Fatal(err)
	}
	if f.calls() != 2 {
		t.Errorf("probe after Invalidate did not reach the inner source: %d calls", f.calls())
	}
	c.EstimateCost(q, 0)
	if f.estimateCalls() != 2 {
		t.Errorf("estimate after Invalidate did not reach the inner source: %d calls", f.estimateCalls())
	}

	// An empty cache invalidates to zero without side effects.
	c2 := source.NewCached(&fakeSource{}, 8)
	if c2.Invalidate() != 0 {
		t.Error("empty cache reported dropped entries")
	}
}

// blockingSource holds Execute until released so tests can interleave
// an invalidation with an in-flight probe.
type blockingSource struct {
	fakeSource
	started chan struct{}
	release chan struct{}
}

func (b *blockingSource) Execute(q source.SubQuery, params []value.Value) (*source.Result, error) {
	b.started <- struct{}{}
	<-b.release
	return b.fakeSource.Execute(q, params)
}

// TestInvalidateCoversInFlightProbe: a probe that read the inner
// source BEFORE an Invalidate must not re-fill the cache AFTER the
// flush — otherwise the stale rows the invalidation was meant to purge
// survive it (forever, with no TTL configured).
func TestInvalidateCoversInFlightProbe(t *testing.T) {
	b := &blockingSource{started: make(chan struct{}, 1), release: make(chan struct{})}
	c := source.NewCached(b, 8)

	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := c.Execute(sub("SELECT 1"), nil); err != nil {
			t.Error(err)
		}
	}()
	<-b.started // probe is mid-flight, pre-invalidation rows in hand
	c.Invalidate()
	close(b.release)
	<-done

	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("in-flight probe re-filled the invalidated cache: %+v", st)
	}
	// The next probe goes back to the (mutated) source.
	if _, err := c.Execute(sub("SELECT 1"), nil); err != nil {
		t.Fatal(err)
	}
	if b.calls() != 2 {
		t.Errorf("post-invalidate probe served the discarded fill: %d inner calls", b.calls())
	}
}

func TestCachedMemoizeDigest(t *testing.T) {
	f := &fakeSource{}
	c := source.NewCached(f, 8)

	fills := 0
	fill := func() (any, error) {
		fills++
		return fmt.Sprintf("digest-%d", fills), nil
	}

	d1, err := c.MemoizeDigest("b/8192", fill)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := c.MemoizeDigest("b/8192", fill)
	if err != nil {
		t.Fatal(err)
	}
	if fills != 1 {
		t.Fatalf("fill ran %d times, want 1", fills)
	}
	if d1 != d2 {
		t.Fatalf("memoized digest changed between calls: %v vs %v", d1, d2)
	}
	// A different budget key is a different digest.
	if _, err := c.MemoizeDigest("b/64", fill); err != nil {
		t.Fatal(err)
	}
	if fills != 2 {
		t.Fatalf("fill ran %d times after second key, want 2", fills)
	}
	st := c.Stats()
	if st.DigestFetches != 2 || st.DigestHits != 1 {
		t.Fatalf("DigestFetches/DigestHits = %d/%d, want 2/1", st.DigestFetches, st.DigestHits)
	}

	// Invalidate (the mutation-epoch hook) drops the memo: the next call
	// refills instead of serving a stale digest.
	c.Invalidate()
	if _, err := c.MemoizeDigest("b/8192", fill); err != nil {
		t.Fatal(err)
	}
	if fills != 3 {
		t.Fatalf("fill ran %d times after Invalidate, want 3", fills)
	}
}

func TestCachedMemoizeDigestErrorNotMemoized(t *testing.T) {
	c := source.NewCached(&fakeSource{}, 8)
	calls := 0
	failing := func() (any, error) {
		calls++
		if calls == 1 {
			return nil, fmt.Errorf("digest: remote down")
		}
		return "ok", nil
	}
	if _, err := c.MemoizeDigest("k", failing); err == nil {
		t.Fatal("expected the first fill's error")
	}
	d, err := c.MemoizeDigest("k", failing)
	if err != nil {
		t.Fatal(err)
	}
	if d != "ok" {
		t.Fatalf("second fill returned %v, want ok (errors must not be memoized)", d)
	}
	if st := c.Stats(); st.DigestFetches != 1 {
		t.Fatalf("DigestFetches = %d, want 1 (failed fill must not count)", st.DigestFetches)
	}
}

func TestCachedMemoizeDigestInvalidateDuringFill(t *testing.T) {
	c := source.NewCached(&fakeSource{}, 8)
	// A fill that races an Invalidate: the caller still gets the digest,
	// but it must not be kept (it may predate the mutation).
	d, err := c.MemoizeDigest("k", func() (any, error) {
		c.Invalidate()
		return "stale", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if d != "stale" {
		t.Fatalf("fill result = %v, want stale", d)
	}
	refilled := false
	if _, err := c.MemoizeDigest("k", func() (any, error) {
		refilled = true
		return "fresh", nil
	}); err != nil {
		t.Fatal(err)
	}
	if !refilled {
		t.Fatal("digest filled during an Invalidate was kept; stale statistics could mis-prune")
	}
}
