package source

import (
	"fmt"

	"tatooine/internal/relstore"
	"tatooine/internal/sqlparse"
	"tatooine/internal/value"
)

// RelSource exposes a relstore.Database as a DataSource accepting the
// SQL subset. It stands in for curated relational sources such as the
// INSEE statistics tables of the paper.
type RelSource struct {
	uri string
	db  *relstore.Database
}

// NewRelSource wraps db.
func NewRelSource(uri string, db *relstore.Database) *RelSource {
	return &RelSource{uri: uri, db: db}
}

// DB returns the underlying database.
func (s *RelSource) DB() *relstore.Database { return s.db }

// URI implements DataSource.
func (s *RelSource) URI() string { return s.uri }

// Model implements DataSource.
func (s *RelSource) Model() Model { return RelationalModel }

// Languages implements DataSource.
func (s *RelSource) Languages() []Language { return []Language{LangSQL} }

// Execute implements DataSource: params substitute '?' placeholders in
// statement order.
func (s *RelSource) Execute(q SubQuery, params []value.Value) (*Result, error) {
	if q.Language != LangSQL {
		return nil, fmt.Errorf("source %s: unsupported language %q", s.uri, q.Language)
	}
	res, err := s.db.Exec(q.Text, params...)
	if err != nil {
		return nil, err
	}
	out := &Result{Cols: res.Columns, Rows: res.Rows}
	return out, nil
}

// EstimateCost implements DataSource: the base table's row count (a
// join multiplies by joined table sizes; predicates with parameters
// divide by a default selectivity factor of 10).
func (s *RelSource) EstimateCost(q SubQuery, numParams int) int {
	stmt, err := sqlparse.ParseSelect(q.Text)
	if err != nil {
		return -1
	}
	t := s.db.Table(stmt.From.Name)
	if t == nil {
		return -1
	}
	est := t.RowCount()
	for _, j := range stmt.Joins {
		if jt := s.db.Table(j.Table.Name); jt != nil && jt.RowCount() > 0 {
			// Equi-joins keep cardinality near the larger side.
			if jt.RowCount() > est {
				est = jt.RowCount()
			}
		}
	}
	if stmt.Where != nil {
		sel := selectivityFactor(stmt.Where)
		est /= sel
		if est < 1 {
			est = 1
		}
	}
	if stmt.Limit >= 0 && stmt.Limit < est {
		est = stmt.Limit
	}
	return est
}

// selectivityFactor estimates how much a predicate divides cardinality:
// 10 per equality conjunct, 3 per range conjunct.
func selectivityFactor(e sqlparse.Expr) int {
	switch x := e.(type) {
	case *sqlparse.BinaryExpr:
		switch x.Op {
		case sqlparse.OpAnd:
			f := selectivityFactor(x.Left) * selectivityFactor(x.Right)
			if f > 1000 {
				f = 1000
			}
			return f
		case sqlparse.OpEq:
			return 10
		case sqlparse.OpLt, sqlparse.OpLe, sqlparse.OpGt, sqlparse.OpGe, sqlparse.OpLike:
			return 3
		case sqlparse.OpOr:
			return 2
		}
	case *sqlparse.InExpr:
		return 5
	case *sqlparse.BetweenExpr:
		return 3
	}
	return 1
}
