package source

import (
	"fmt"

	"tatooine/internal/relstore"
	"tatooine/internal/sqlparse"
	"tatooine/internal/value"
)

// RelSource exposes a relstore.Database as a DataSource accepting the
// SQL subset. It stands in for curated relational sources such as the
// INSEE statistics tables of the paper.
type RelSource struct {
	uri string
	db  *relstore.Database
}

// NewRelSource wraps db.
func NewRelSource(uri string, db *relstore.Database) *RelSource {
	return &RelSource{uri: uri, db: db}
}

// DB returns the underlying database.
func (s *RelSource) DB() *relstore.Database { return s.db }

// URI implements DataSource.
func (s *RelSource) URI() string { return s.uri }

// Model implements DataSource.
func (s *RelSource) Model() Model { return RelationalModel }

// Languages implements DataSource.
func (s *RelSource) Languages() []Language { return []Language{LangSQL} }

// Execute implements DataSource: params substitute '?' placeholders in
// statement order.
func (s *RelSource) Execute(q SubQuery, params []value.Value) (*Result, error) {
	if q.Language != LangSQL {
		return nil, fmt.Errorf("source %s: unsupported language %q", s.uri, q.Language)
	}
	res, err := s.db.Exec(q.Text, params...)
	if err != nil {
		return nil, err
	}
	out := &Result{Cols: res.Columns, Rows: res.Rows}
	return out, nil
}

// ExecuteBatch implements BatchProber by IN-list pushdown: each
// `col = ?` conjunct is rewritten into `col IN (v1, v2, ...)` over the
// distinct values that parameter takes across the batch, the param
// columns are appended to the projection, and the single native result
// is split back per tuple by equality on those columns. The rewrite is
// exact — the IN lists select a superset (a cross product when several
// parameters batch together) and the split keeps only rows matching
// the tuple on every parameter — so each per-tuple Result is identical
// to a per-probe Execute. Shapes whose semantics would change under
// batching (LIMIT/OFFSET, DISTINCT, grouping/aggregation, '?' outside
// a top-level `col = ?` conjunct) return ErrBatchUnsupported.
func (s *RelSource) ExecuteBatch(q SubQuery, paramSets []value.Row) (results []*Result, err error) {
	if q.Language != LangSQL {
		return nil, fmt.Errorf("source %s: unsupported language %q", s.uri, q.Language)
	}
	if len(paramSets) == 0 {
		return nil, nil
	}
	stmt, err := sqlparse.ParseSelect(q.Text)
	if err != nil {
		return nil, ErrBatchUnsupported
	}
	nParams := len(paramSets[0])
	for _, ps := range paramSets {
		if len(ps) != nParams {
			return nil, fmt.Errorf("source %s: ragged batch parameter tuples", s.uri)
		}
	}
	if !rewriteInList(stmt, nParams, paramSets) {
		return nil, ErrBatchUnsupported
	}
	res, err := s.db.ExecStmt(stmt)
	if err != nil {
		return nil, err
	}
	origN := len(res.Columns) - nParams
	cols := res.Columns[:origN]
	// Split in one pass: bucket rows by their param-column values.
	// value.Key is Equal-consistent for non-null values (ints and
	// integral floats share keys), and nulls — which Equal never
	// matches — are excluded from both sides, so the bucketed split
	// returns exactly what per-tuple value.Equal filtering would.
	buckets := make(map[string][]value.Row, len(paramSets))
	for _, row := range res.Rows {
		if value.Row(row[origN:]).HasNull() {
			continue
		}
		k := value.Row(row[origN:]).Key()
		buckets[k] = append(buckets[k], row[:origN])
	}
	out := make([]*Result, len(paramSets))
	for i, ps := range paramSets {
		r := &Result{Cols: cols}
		if !ps.HasNull() {
			r.Rows = buckets[ps.Key()]
		}
		out[i] = r
	}
	return out, nil
}

// rewriteInList rewrites stmt in place for batched evaluation: every
// '?' must appear as a top-level AND conjunct `col = ?` in WHERE; each
// such conjunct becomes `col IN (...)` over the batch's distinct
// values and the referenced columns are appended to the projection.
// It reports false when the statement shape cannot be batched exactly.
func rewriteInList(stmt *sqlparse.SelectStmt, nParams int, paramSets []value.Row) bool {
	if stmt.Star || stmt.Distinct || stmt.Limit >= 0 || stmt.Offset > 0 ||
		len(stmt.GroupBy) > 0 || stmt.Having != nil {
		return false
	}
	for _, it := range stmt.Columns {
		if sqlparse.HasAggregate(it.Expr) || sqlparse.CountParams(it.Expr) > 0 {
			return false
		}
	}
	for _, j := range stmt.Joins {
		if sqlparse.CountParams(j.On) > 0 {
			return false
		}
	}
	for _, ob := range stmt.OrderBy {
		if sqlparse.CountParams(ob.Expr) > 0 {
			return false
		}
	}
	if nParams == 0 || stmt.Where == nil {
		return nParams == 0
	}
	conjuncts := splitAnd(stmt.Where)
	paramCols := make([]*sqlparse.ColumnRef, nParams)
	seen := 0
	for ci, c := range conjuncts {
		be, isEq := c.(*sqlparse.BinaryExpr)
		if !isEq || be.Op != sqlparse.OpEq {
			if sqlparse.CountParams(c) > 0 {
				return false
			}
			continue
		}
		var p *sqlparse.Param
		var col *sqlparse.ColumnRef
		switch l := be.Left.(type) {
		case *sqlparse.Param:
			p = l
			col, _ = be.Right.(*sqlparse.ColumnRef)
		case *sqlparse.ColumnRef:
			col = l
			p, _ = be.Right.(*sqlparse.Param)
		}
		if p == nil {
			if sqlparse.CountParams(c) > 0 {
				return false
			}
			continue
		}
		if col == nil || p.Index >= nParams || paramCols[p.Index] != nil {
			return false
		}
		paramCols[p.Index] = col
		seen++
		// Distinct values this parameter takes across the batch.
		dedup := make(map[string]struct{}, len(paramSets))
		var list []sqlparse.Expr
		for _, ps := range paramSets {
			v := ps[p.Index]
			k := v.Key()
			if _, dup := dedup[k]; dup {
				continue
			}
			dedup[k] = struct{}{}
			list = append(list, &sqlparse.Literal{Val: v})
		}
		conjuncts[ci] = &sqlparse.InExpr{Needle: col, List: list}
	}
	if seen != nParams {
		return false
	}
	stmt.Where = joinAnd(conjuncts)
	items := make([]sqlparse.SelectItem, 0, len(stmt.Columns)+nParams)
	items = append(items, stmt.Columns...)
	for _, col := range paramCols {
		items = append(items, sqlparse.SelectItem{Expr: col})
	}
	stmt.Columns = items
	return true
}

// splitAnd flattens a top-level AND tree into its conjuncts.
func splitAnd(e sqlparse.Expr) []sqlparse.Expr {
	if be, ok := e.(*sqlparse.BinaryExpr); ok && be.Op == sqlparse.OpAnd {
		return append(splitAnd(be.Left), splitAnd(be.Right)...)
	}
	return []sqlparse.Expr{e}
}

// joinAnd rebuilds an AND tree from conjuncts.
func joinAnd(conjuncts []sqlparse.Expr) sqlparse.Expr {
	out := conjuncts[0]
	for _, c := range conjuncts[1:] {
		out = &sqlparse.BinaryExpr{Op: sqlparse.OpAnd, Left: out, Right: c}
	}
	return out
}

// EstimateCost implements DataSource: the base table's row count (a
// join multiplies by joined table sizes; predicates with parameters
// divide by a default selectivity factor of 10).
func (s *RelSource) EstimateCost(q SubQuery, numParams int) int {
	rows, _ := s.Estimate(q, numParams)
	return rows
}

// Estimate implements Estimator: rows is the selectivity-discounted
// result cardinality (the quantity bind joins and intermediate
// relations grow with), cost adds the scan work — the rows the engine
// must walk before predicates discard them — so a highly selective
// predicate over a huge table is cheap to *join with* but not free to
// *run*.
func (s *RelSource) Estimate(q SubQuery, numParams int) (rows, cost int) {
	stmt, err := sqlparse.ParseSelect(q.Text)
	if err != nil {
		return -1, -1
	}
	t := s.db.Table(stmt.From.Name)
	if t == nil {
		return -1, -1
	}
	est := t.RowCount()
	for _, j := range stmt.Joins {
		if jt := s.db.Table(j.Table.Name); jt != nil && jt.RowCount() > 0 {
			// Equi-joins keep cardinality near the larger side.
			if jt.RowCount() > est {
				est = jt.RowCount()
			}
		}
	}
	scanned := est
	if stmt.Where != nil {
		sel := selectivityFactor(stmt.Where)
		est /= sel
		if est < 1 {
			est = 1
		}
	}
	if stmt.Limit >= 0 && stmt.Limit < est {
		est = stmt.Limit
	}
	return est, scanned + est
}

// selectivityFactor estimates how much a predicate divides cardinality:
// 10 per equality conjunct, 3 per range conjunct.
func selectivityFactor(e sqlparse.Expr) int {
	switch x := e.(type) {
	case *sqlparse.BinaryExpr:
		switch x.Op {
		case sqlparse.OpAnd:
			f := selectivityFactor(x.Left) * selectivityFactor(x.Right)
			if f > 1000 {
				f = 1000
			}
			return f
		case sqlparse.OpEq:
			return 10
		case sqlparse.OpLt, sqlparse.OpLe, sqlparse.OpGt, sqlparse.OpGe, sqlparse.OpLike:
			return 3
		case sqlparse.OpOr:
			return 2
		}
	case *sqlparse.InExpr:
		return 5
	case *sqlparse.BetweenExpr:
		return 3
	}
	return 1
}
