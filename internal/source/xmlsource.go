package source

import (
	"fmt"

	"tatooine/internal/value"
	"tatooine/internal/xmlstore"
)

// LangXPath is the XPATH sub-query syntax of internal/xmlstore.
const LangXPath Language = "xpath"

// XMLSource exposes an xmlstore.Store as a DataSource accepting XPATH
// sub-queries — the structured-text sources (laws, regulations, public
// speeches) of the paper's mixed instances.
type XMLSource struct {
	uri   string
	store *xmlstore.Store
}

// NewXMLSource wraps store.
func NewXMLSource(uri string, store *xmlstore.Store) *XMLSource {
	return &XMLSource{uri: uri, store: store}
}

// Store returns the underlying XML store.
func (s *XMLSource) Store() *xmlstore.Store { return s.store }

// URI implements DataSource.
func (s *XMLSource) URI() string { return s.uri }

// Model implements DataSource.
func (s *XMLSource) Model() Model { return DocumentModel }

// Languages implements DataSource.
func (s *XMLSource) Languages() []Language { return []Language{LangXPath} }

// Execute implements DataSource: params substitute '?' placeholders in
// predicate order.
func (s *XMLSource) Execute(q SubQuery, params []value.Value) (*Result, error) {
	if q.Language != LangXPath {
		return nil, fmt.Errorf("source %s: unsupported language %q", s.uri, q.Language)
	}
	tq, err := xmlstore.ParseTextQuery(q.Text)
	if err != nil {
		return nil, err
	}
	strParams := make([]string, len(params))
	for i, p := range params {
		strParams[i] = p.String()
	}
	cols, rows, err := tq.Execute(s.store, strParams)
	if err != nil {
		return nil, err
	}
	out := &Result{Cols: cols}
	for _, r := range rows {
		row := make(value.Row, len(r))
		for i, cell := range r {
			if cell == "" {
				row[i] = value.NewNull()
				continue
			}
			row[i] = value.Parse(cell, false)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// EstimateCost implements DataSource: document count scaled by a
// per-predicate selectivity factor.
func (s *XMLSource) EstimateCost(q SubQuery, numParams int) int {
	rows, _ := s.Estimate(q, numParams)
	return rows
}

// Estimate implements Estimator: rows is the predicate-discounted
// document count; cost stays at the full store size because the path
// evaluator walks every document regardless of how few survive the
// predicates.
func (s *XMLSource) Estimate(q SubQuery, numParams int) (rows, cost int) {
	tq, err := xmlstore.ParseTextQuery(q.Text)
	if err != nil {
		return -1, -1
	}
	est := s.store.Count()
	for _, step := range tq.Path.Steps {
		for range step.Preds {
			est /= 5
		}
	}
	if est < 1 {
		est = 1
	}
	return est, s.store.Count() + est
}
