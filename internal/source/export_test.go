package source

import (
	"testing"
	"time"

	"tatooine/internal/rdf"
	"tatooine/internal/relstore"
)

func TestExportTableRDF(t *testing.T) {
	db := relstore.NewDatabase("d")
	for _, q := range []string{
		"CREATE TABLE parties (id TEXT PRIMARY KEY, name TEXT, current TEXT)",
		"INSERT INTO parties VALUES ('PS', 'Parti Socialiste', 'left'), ('LR', 'Les Républicains', 'right')",
	} {
		if _, err := db.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	g := rdf.NewGraph()
	added, err := ExportTableRDF(g, db.Table("parties"), "http://t.example/")
	if err != nil {
		t.Fatal(err)
	}
	// 2 rows × (type + 3 columns) = 8 triples.
	if added != 8 || g.Size() != 8 {
		t.Fatalf("added %d triples (graph %d)", added, g.Size())
	}
	// PK-based subjects and queryability.
	q := rdf.MustParseBGP(`q(?n) :- <http://t.example/parties/PS> <http://t.example/name> ?n`, nil)
	sols, err := rdf.Evaluate(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if sols.Len() != 1 || sols.Rows[0][0] != rdf.NewLiteral("Parti Socialiste") {
		t.Errorf("exported triple query: %+v", sols.Rows)
	}
	// Class typing.
	q2 := rdf.MustParseBGP(`q(?x) :- ?x a <http://t.example/parties>`, nil)
	sols2, _ := rdf.Evaluate(g, q2)
	if sols2.Len() != 2 {
		t.Errorf("typed rows: %d", sols2.Len())
	}
}

func TestExportTableRDFWithoutPK(t *testing.T) {
	db := relstore.NewDatabase("d")
	db.Exec("CREATE TABLE notes (txt TEXT)")
	db.Exec("INSERT INTO notes VALUES ('a'), ('b')")
	g := rdf.NewGraph()
	if _, err := ExportTableRDF(g, db.Table("notes"), "http://t.example"); err != nil {
		t.Fatal(err)
	}
	// Row-number subjects: notes/1 and notes/2 (ns gets '/' appended).
	if !g.Contains(rdf.Triple{
		S: rdf.NewIRI("http://t.example/notes/1"),
		P: rdf.NewIRI("http://t.example/txt"),
		O: rdf.NewLiteral("a"),
	}) {
		t.Error("row-numbered subject missing")
	}
}

func TestExportTableRDFNullsSkipped(t *testing.T) {
	db := relstore.NewDatabase("d")
	db.Exec("CREATE TABLE t (a TEXT, b TEXT)")
	db.Exec("INSERT INTO t (a) VALUES ('x')")
	g := rdf.NewGraph()
	added, _ := ExportTableRDF(g, db.Table("t"), "http://e/")
	if added != 2 { // type + a only
		t.Errorf("added: %d", added)
	}
}

func TestExportDatabaseRDFJoinsWithGraph(t *testing.T) {
	// The exported graph can serve as a custom-graph extension: the
	// "parties → currents" file of the paper (§1).
	db := relstore.NewDatabase("d")
	db.Exec("CREATE TABLE currents (party TEXT PRIMARY KEY, current TEXT)")
	db.Exec("INSERT INTO currents VALUES ('PS', 'left')")
	g, err := ExportDatabaseRDF(db, "http://t.example/")
	if err != nil {
		t.Fatal(err)
	}
	// Merge with a politician graph and query across.
	g.AddAll(rdf.MustParse(`
@prefix : <http://t.example/> .
:POL1 :memberOfCode "PS" .
`))
	q := rdf.MustParseBGP(`q(?x, ?cur) :-
?x <http://t.example/memberOfCode> ?code .
?row <http://t.example/party> ?code .
?row <http://t.example/current> ?cur`, nil)
	sols, err := rdf.Evaluate(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if sols.Len() != 1 || sols.Rows[0][1] != rdf.NewLiteral("left") {
		t.Errorf("cross join: %+v", sols.Rows)
	}
}

func TestSanitizeLocal(t *testing.T) {
	if got := sanitizeLocal("Corse-du-Sud (2A)"); got != "Corse-du-Sud__2A_" {
		t.Errorf("sanitize: %q", got)
	}
}

// SetCachedClock overrides a Cached decorator's time source for TTL
// tests (exported to the external test package via this in-package
// test file).
func SetCachedClock(c *Cached, now func() time.Time) { c.now = now }
