package source

// Estimator is the optional capability of a DataSource that can
// produce a two-dimensional cost estimate for a sub-query: the
// expected result cardinality (rows) and an abstract total execution
// effort (cost — access work plus rows produced, in comparable units
// across sources; remote sources add their round-trip overhead).
// The planner orders atoms by rows (selectivity-first) and uses cost
// to break ties and to render plans; sources that only implement the
// single-int EstimateCost keep working through EstimateOf's default
// adapter.
type Estimator interface {
	DataSource
	// Estimate returns the expected result cardinality and the total
	// execution cost of q with numParams bound parameters. Negative
	// values mean unknown.
	Estimate(q SubQuery, numParams int) (rows, cost int)
}

// EstimateOf returns s's (rows, cost) estimate. Sources implementing
// Estimator answer directly; everything else goes through the default
// adapter — rows = cost = EstimateCost — so pre-Estimator sources keep
// participating in planning unchanged.
func EstimateOf(s DataSource, q SubQuery, numParams int) (rows, cost int) {
	if e, ok := s.(Estimator); ok {
		return e.Estimate(q, numParams)
	}
	c := s.EstimateCost(q, numParams)
	return c, c
}
