package source

import (
	"strconv"
	"strings"
	"sync"

	"tatooine/internal/lru"
	"tatooine/internal/value"
)

// CacheStats reports what a Cached decorator has done so far.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int
}

// Cached decorates a DataSource with a bounded LRU memoization of
// Execute results, keyed by (URI, language, text, InVars, params). It
// turns repeated bind-join probes — the mediator's shipped-sub-query
// hot path, especially through a federation.Client — into memory
// lookups. Results are shared between the cache and callers and must
// be treated as read-only, which the executor already guarantees.
type Cached struct {
	inner DataSource

	mu        sync.Mutex
	cache     *lru.Cache[*Result]
	estimates *lru.Cache[int]
	stats     CacheStats
}

// DefaultCacheSize bounds a Cached decorator when the caller passes a
// non-positive size.
const DefaultCacheSize = 1024

// NewCached wraps inner with a sub-query result cache holding at most
// maxEntries results (DefaultCacheSize when maxEntries <= 0).
func NewCached(inner DataSource, maxEntries int) *Cached {
	if maxEntries <= 0 {
		maxEntries = DefaultCacheSize
	}
	return &Cached{
		inner:     inner,
		cache:     lru.New[*Result](maxEntries),
		estimates: lru.New[int](maxEntries),
	}
}

// Unwrap returns the decorated source (digest construction dispatches
// on concrete adapter types and unwraps decorators first).
func (c *Cached) Unwrap() DataSource { return c.inner }

// URI implements DataSource.
func (c *Cached) URI() string { return c.inner.URI() }

// Model implements DataSource.
func (c *Cached) Model() Model { return c.inner.Model() }

// Languages implements DataSource.
func (c *Cached) Languages() []Language { return c.inner.Languages() }

// EstimateCost implements DataSource, memoizing the inner estimate:
// planning calls it per atom on every query, and for a remote source
// each call is an HTTP round trip. Unknown estimates (negative) are
// not cached so a recovering remote can start answering.
func (c *Cached) EstimateCost(q SubQuery, numParams int) int {
	key := cacheKey(c.inner.URI(), q, nil) + "|" + strconv.Itoa(numParams)
	c.mu.Lock()
	if cost, ok := c.estimates.Get(key); ok {
		c.mu.Unlock()
		return cost
	}
	c.mu.Unlock()
	cost := c.inner.EstimateCost(q, numParams)
	if cost >= 0 {
		c.mu.Lock()
		c.estimates.Put(key, cost)
		c.mu.Unlock()
	}
	return cost
}

// Stats returns a snapshot of the cache counters.
func (c *Cached) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.cache.Len()
	return s
}

// Execute implements DataSource: a cache hit returns the memoized
// result without touching the inner source; a miss executes and, on
// success, stores the result (evicting the least recently used entry
// when full). Errors are never cached.
func (c *Cached) Execute(q SubQuery, params []value.Value) (*Result, error) {
	key := cacheKey(c.inner.URI(), q, params)

	c.mu.Lock()
	if res, ok := c.cache.Get(key); ok {
		c.stats.Hits++
		c.mu.Unlock()
		return res, nil
	}
	c.stats.Misses++
	c.mu.Unlock()

	// Execute outside the lock; concurrent misses on the same key may
	// race to fill, which is harmless (last writer wins).
	res, err := c.inner.Execute(q, params)
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	if c.cache.Put(key, res) {
		c.stats.Evictions++
	}
	c.mu.Unlock()
	return res, nil
}

// cacheKey builds an unambiguous key from the source identity, the
// sub-query, and the bound parameters (length-framed via value.Frame
// so no two distinct inputs collide).
func cacheKey(uri string, q SubQuery, params []value.Value) string {
	var b strings.Builder
	value.Frame(&b, uri)
	value.Frame(&b, string(q.Language))
	value.Frame(&b, q.Text)
	for _, iv := range q.InVars {
		value.Frame(&b, iv)
	}
	b.WriteByte('|')
	b.WriteString(value.Row(params).Key())
	return b.String()
}
