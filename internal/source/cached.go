package source

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"tatooine/internal/lru"
	"tatooine/internal/value"
)

// CacheStats reports what a Cached decorator has done so far.
type CacheStats struct {
	Hits          int64
	Misses        int64
	Expired       int64 // misses caused by TTL expiry of an existing entry
	Evictions     int64
	Invalidated   int64 // result entries dropped by Invalidate
	Entries       int
	DigestFetches int64 // MemoizeDigest fills (the inner source was digested)
	DigestHits    int64 // MemoizeDigest answers from memory
}

// Cached decorates a DataSource with a bounded LRU memoization of
// Execute results, keyed by (URI, language, text, InVars, params). It
// turns repeated bind-join probes — the mediator's shipped-sub-query
// hot path, especially through a federation.Client — into memory
// lookups. Results are shared between the cache and callers and must
// be treated as read-only, which the executor already guarantees.
//
// Cached is also a BatchProber: batched probes are answered per tuple
// from the cache, only the missing tuples are forwarded (as a smaller
// batch when the inner source batches, per-tuple otherwise via the
// caller's fallback), and the batch result fills the cache per tuple.
type Cached struct {
	inner DataSource
	ttl   time.Duration    // 0 = entries never expire
	now   func() time.Time // test hook

	mu        sync.Mutex
	gen       uint64 // bumped by Invalidate; fills from an older gen are discarded
	cache     *lru.Cache[cacheEntry]
	estimates *lru.Cache[estimateEntry]
	digests   map[string]any // memoized digests by budget key (opaque: no digest import)
	stats     CacheStats
}

// cacheEntry is one memoized result with its fill time (for TTL).
type cacheEntry struct {
	res *Result
	at  time.Time
}

// estimateEntry is one memoized (rows, cost) estimate.
type estimateEntry struct {
	rows, cost int
}

// DefaultCacheSize bounds a Cached decorator when the caller passes a
// non-positive size.
const DefaultCacheSize = 1024

// NewCached wraps inner with a sub-query result cache holding at most
// maxEntries results (DefaultCacheSize when maxEntries <= 0).
func NewCached(inner DataSource, maxEntries int) *Cached {
	if maxEntries <= 0 {
		maxEntries = DefaultCacheSize
	}
	return &Cached{
		inner:     inner,
		now:       time.Now,
		cache:     lru.New[cacheEntry](maxEntries),
		estimates: lru.New[estimateEntry](maxEntries),
	}
}

// WithTTL makes result entries expire ttl after they were filled, so a
// long-running mediator stops serving arbitrarily stale rows from
// mutable remote sources. A non-positive ttl means no expiry. Returns
// c for chaining.
func (c *Cached) WithTTL(ttl time.Duration) *Cached {
	c.mu.Lock()
	c.ttl = ttl
	c.mu.Unlock()
	return c
}

// Unwrap returns the decorated source (digest construction dispatches
// on concrete adapter types and unwraps decorators first).
func (c *Cached) Unwrap() DataSource { return c.inner }

// URI implements DataSource.
func (c *Cached) URI() string { return c.inner.URI() }

// Model implements DataSource.
func (c *Cached) Model() Model { return c.inner.Model() }

// Languages implements DataSource.
func (c *Cached) Languages() []Language { return c.inner.Languages() }

// EstimateCost implements DataSource through the memoized Estimate.
func (c *Cached) EstimateCost(q SubQuery, numParams int) int {
	rows, _ := c.Estimate(q, numParams)
	return rows
}

// Estimate implements Estimator, memoizing the inner (rows, cost)
// estimate: planning calls it per atom on every query, and for a
// remote source each call is an HTTP round trip. Unknown estimates
// (negative rows) are not cached so a recovering remote can start
// answering.
func (c *Cached) Estimate(q SubQuery, numParams int) (rows, cost int) {
	key := cacheKey(c.inner.URI(), q, nil) + "|" + strconv.Itoa(numParams)
	c.mu.Lock()
	if e, ok := c.estimates.Get(key); ok {
		c.mu.Unlock()
		return e.rows, e.cost
	}
	gen := c.gen
	c.mu.Unlock()
	rows, cost = EstimateOf(c.inner, q, numParams)
	if rows >= 0 {
		c.mu.Lock()
		if c.gen == gen {
			c.estimates.Put(key, estimateEntry{rows: rows, cost: cost})
		}
		c.mu.Unlock()
	}
	return rows, cost
}

// Invalidate implements Invalidator: it drops every memoized sub-query
// result and cost estimate, returning how many result entries were
// discarded. The mediator calls it when the instance mutates (a source
// changed underneath, or POST /admin/invalidate) so callers stop being
// served pre-mutation rows until the TTL would have expired them.
// Bumping the generation makes the flush cover in-flight probes too: a
// miss that read the source before the invalidation discards its fill
// instead of re-inserting pre-invalidation rows after the Clear.
func (c *Cached) Invalidate() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	n := c.cache.Clear()
	c.estimates.Clear()
	c.digests = nil
	c.stats.Invalidated += int64(n)
	return n
}

// MemoizeDigest returns the memoized value for key, filling it with
// fill() on the first call. It exists for digest.ForSource (which
// cannot be imported from here without a cycle, hence the opaque any):
// building or fetching a source digest costs a full scan or an HTTP
// round trip, and planning wants one per query. The memo lives under
// the same generation as the probe cache, so Invalidate — driven by
// the instance's mutation epoch — makes a stale digest impossible:
// a fill that started before the invalidation is returned to its
// caller but not kept.
func (c *Cached) MemoizeDigest(key string, fill func() (any, error)) (any, error) {
	c.mu.Lock()
	if d, ok := c.digests[key]; ok {
		c.stats.DigestHits++
		c.mu.Unlock()
		return d, nil
	}
	gen := c.gen
	c.mu.Unlock()

	d, err := fill()
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	if c.gen == gen {
		if c.digests == nil {
			c.digests = make(map[string]any)
		}
		if prev, ok := c.digests[key]; ok {
			d = prev // concurrent fills share one digest
		} else {
			c.digests[key] = d
			c.stats.DigestFetches++
		}
	} else {
		c.stats.DigestFetches++
	}
	c.mu.Unlock()
	return d, nil
}

// Stats returns a snapshot of the cache counters.
func (c *Cached) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.cache.Len()
	return s
}

// peek returns the live cached result for key without touching the
// stats; expired entries are removed so they stop occupying recency
// slots. Caller must hold c.mu.
func (c *Cached) peek(key string) (*Result, bool) {
	e, ok := c.cache.Get(key)
	if !ok {
		return nil, false
	}
	if c.ttl > 0 && c.now().Sub(e.at) >= c.ttl {
		c.cache.Remove(key)
		c.stats.Expired++
		return nil, false
	}
	return e.res, true
}

// lookup is peek plus hit/miss accounting. Caller must hold c.mu.
func (c *Cached) lookup(key string) (*Result, bool) {
	res, ok := c.peek(key)
	if ok {
		c.stats.Hits++
		probeCacheHitTotal.Inc()
	} else {
		c.stats.Misses++
		probeCacheMissTotal.Inc()
	}
	return res, ok
}

// store fills key with res, counting evictions. Caller must hold c.mu.
func (c *Cached) store(key string, res *Result) {
	if c.cache.Put(key, cacheEntry{res: res, at: c.now()}) {
		c.stats.Evictions++
	}
}

// Execute implements DataSource: a cache hit returns the memoized
// result without touching the inner source; a miss executes and, on
// success, stores the result (evicting the least recently used entry
// when full). Errors are never cached.
func (c *Cached) Execute(q SubQuery, params []value.Value) (*Result, error) {
	return c.ExecuteContext(context.Background(), q, params)
}

// ExecuteContext implements ContextExecutor: hits answer from memory
// regardless of the context; misses forward it to the inner source so
// a cancelled query aborts the in-flight fill (cancellation errors
// are never cached — they are errors like any other).
func (c *Cached) ExecuteContext(ctx context.Context, q SubQuery, params []value.Value) (*Result, error) {
	key := cacheKey(c.inner.URI(), q, params)

	c.mu.Lock()
	res, ok := c.lookup(key)
	gen := c.gen
	c.mu.Unlock()
	if ok {
		return res, nil
	}

	// Execute outside the lock; concurrent misses on the same key may
	// race to fill, which is harmless (last writer wins).
	res, err := ExecuteWith(ctx, c.inner, q, params)
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	// An Invalidate since the miss means this result may predate the
	// mutation the invalidation announced: return it to the caller (it
	// was read before the flush, like any probe that finished a moment
	// earlier) but do not let it outlive the flush in the cache.
	if c.gen == gen {
		c.store(key, res)
	}
	c.mu.Unlock()
	return res, nil
}

// ExecuteBatch implements BatchProber: cached tuples are answered from
// the probe cache and only the misses travel to the inner source, as a
// smaller batch. The batch result fills the cache per tuple, so a later
// per-tuple probe (or a different batch overlapping this one) hits
// memory. When the inner source is not a BatchProber (or cannot batch
// this sub-query) ErrBatchUnsupported propagates; the executor then
// probes per tuple through Execute, which still serves the hits.
func (c *Cached) ExecuteBatch(q SubQuery, paramSets []value.Row) ([]*Result, error) {
	return c.ExecuteBatchContext(context.Background(), q, paramSets)
}

// ExecuteBatchContext implements ContextBatchProber; see ExecuteBatch.
func (c *Cached) ExecuteBatchContext(ctx context.Context, q SubQuery, paramSets []value.Row) ([]*Result, error) {
	bp, batchable := c.inner.(BatchProber)
	if !batchable {
		return nil, ErrBatchUnsupported
	}
	// Build the keys outside the lock (Execute does the same): under a
	// parallel bind join many chunks contend on this mutex.
	keys := make([]string, len(paramSets))
	for i, ps := range paramSets {
		keys[i] = cacheKey(c.inner.URI(), q, ps)
	}
	out := make([]*Result, len(paramSets))
	var missIdx []int
	c.mu.Lock()
	for i := range paramSets {
		if res, ok := c.peek(keys[i]); ok {
			out[i] = res
		} else {
			missIdx = append(missIdx, i)
		}
	}
	if len(missIdx) == 0 {
		c.stats.Hits += int64(len(paramSets))
		c.mu.Unlock()
		probeCacheHitTotal.Add(int64(len(paramSets)))
		return out, nil
	}
	gen := c.gen
	c.mu.Unlock()

	misses := make([]value.Row, len(missIdx))
	for j, i := range missIdx {
		misses[j] = paramSets[i]
	}
	// Hit/miss accounting is deferred until the batch commits: when the
	// inner source rejects the shape (ErrBatchUnsupported) the caller
	// re-probes every tuple through Execute, which does its own
	// counting — counting here too would tally each logical probe twice.
	results, err := ExecuteBatchWith(ctx, bp, q, misses)
	if err != nil {
		return nil, err
	}
	if len(results) != len(misses) {
		// A contract violation, not an unsupported shape: reporting it
		// as ErrBatchUnsupported would silently defeat batching forever.
		return nil, fmt.Errorf("source %s: batched probe returned %d results for %d tuples",
			c.inner.URI(), len(results), len(misses))
	}

	probeCacheHitTotal.Add(int64(len(paramSets) - len(missIdx)))
	probeCacheMissTotal.Add(int64(len(missIdx)))
	c.mu.Lock()
	c.stats.Hits += int64(len(paramSets) - len(missIdx))
	c.stats.Misses += int64(len(missIdx))
	for j, i := range missIdx {
		out[i] = results[j]
		// As in Execute: a batch whose misses were read before an
		// Invalidate still answers the caller, but must not re-fill the
		// flushed cache with possibly pre-mutation rows.
		if c.gen == gen {
			c.store(keys[i], results[j])
		}
	}
	c.mu.Unlock()
	return out, nil
}

// cacheKey builds an unambiguous key from the source identity, the
// sub-query, and the bound parameters (length-framed via value.Frame
// so no two distinct inputs collide).
func cacheKey(uri string, q SubQuery, params []value.Value) string {
	var b strings.Builder
	value.Frame(&b, uri)
	value.Frame(&b, string(q.Language))
	value.Frame(&b, q.Text)
	for _, iv := range q.InVars {
		value.Frame(&b, iv)
	}
	b.WriteByte('|')
	b.WriteString(value.Row(params).Key())
	return b.String()
}
