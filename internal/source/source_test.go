package source

import (
	"testing"

	"tatooine/internal/doc"
	"tatooine/internal/fulltext"
	"tatooine/internal/rdf"
	"tatooine/internal/relstore"
	"tatooine/internal/value"
)

func polGraph(t *testing.T) *rdf.Graph {
	t.Helper()
	g := rdf.NewGraph()
	g.AddAll(rdf.MustParse(`
@prefix : <http://t.example/> .
@prefix pol: <http://t.example/pol/> .
pol:POL01140 a :politician ;
  :position :headOfState ;
  :twitterAccount "fhollande" .
pol:POL02 a :politician ;
  :position :deputy ;
  :twitterAccount "jdupont" .
:politician rdfs:subClassOf :person .
`))
	return g
}

func relDB(t *testing.T) *relstore.Database {
	t.Helper()
	db := relstore.NewDatabase("insee")
	for _, q := range []string{
		"CREATE TABLE departements (code TEXT PRIMARY KEY, name TEXT, population INT)",
		"INSERT INTO departements VALUES ('75','Paris',2187526), ('92','Hauts-de-Seine',1609306)",
	} {
		if _, err := db.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func tweetIndex(t *testing.T) *fulltext.Index {
	t.Helper()
	ix := fulltext.NewIndex("tweets", fulltext.Schema{
		"text":              fulltext.TextField,
		"user.screen_name":  fulltext.KeywordField,
		"entities.hashtags": fulltext.KeywordField,
		"retweet_count":     fulltext.NumericField,
	})
	add := func(id, author, text string, tags []string, rt int) {
		d := &doc.Document{ID: id}
		d.Set("text", text)
		d.Set("user.screen_name", author)
		d.Set("retweet_count", rt)
		anyTags := make([]any, len(tags))
		for i, h := range tags {
			anyTags[i] = h
		}
		d.Set("entities.hashtags", anyTags)
		if err := ix.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	add("t1", "fhollande", "solidarité nationale #SIA2016", []string{"SIA2016"}, 469)
	add("t2", "jdupont", "au salon #SIA2016", []string{"SIA2016"}, 12)
	add("t3", "amartin", "état d'urgence", []string{"EtatDurgence"}, 88)
	return ix
}

func TestRDFSourceExecute(t *testing.T) {
	s := NewRDFSource("rdf://politics", polGraph(t), false)
	res, err := s.Execute(SubQuery{
		Language: LangBGP,
		Text:     `q(?id) :- ?x <http://t.example/position> <http://t.example/headOfState> . ?x <http://t.example/twitterAccount> ?id`,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Rows[0][0].Str() != "fhollande" {
		t.Errorf("rows: %+v", res.Rows)
	}
	if res.Cols[0] != "id" {
		t.Errorf("cols: %v", res.Cols)
	}
}

func TestRDFSourceSaturated(t *testing.T) {
	s := NewRDFSource("rdf://politics", polGraph(t), true)
	res, err := s.Execute(SubQuery{
		Language: LangBGP,
		Text:     `q(?x) :- ?x a <http://t.example/person>`,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Errorf("saturated person count: %d", res.Len())
	}
	// Unsaturated source must see none.
	s2 := NewRDFSource("rdf://politics2", polGraph(t), false)
	res2, _ := s2.Execute(SubQuery{Language: LangBGP, Text: `q(?x) :- ?x a <http://t.example/person>`}, nil)
	if res2.Len() != 0 {
		t.Errorf("unsaturated person count: %d", res2.Len())
	}
}

func TestRDFSourceBindJoinParams(t *testing.T) {
	s := NewRDFSource("rdf://politics", polGraph(t), false)
	res, err := s.Execute(SubQuery{
		Language: LangBGP,
		Text:     `q(?x, ?id) :- ?x <http://t.example/twitterAccount> ?id`,
		InVars:   []string{"id"},
	}, []value.Value{value.NewString("jdupont")})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Rows[0][0].Str() != "http://t.example/pol/POL02" {
		t.Errorf("bind join: %+v", res.Rows)
	}
}

func TestRDFSourceParamArityMismatch(t *testing.T) {
	s := NewRDFSource("rdf://x", polGraph(t), false)
	_, err := s.Execute(SubQuery{
		Language: LangBGP,
		Text:     `q(?x) :- ?x a <http://t.example/politician>`,
		InVars:   []string{"x"},
	}, nil)
	if err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestRDFSourceWrongLanguage(t *testing.T) {
	s := NewRDFSource("rdf://x", polGraph(t), false)
	if _, err := s.Execute(SubQuery{Language: LangSQL, Text: "SELECT 1"}, nil); err == nil {
		t.Error("wrong language accepted")
	}
}

func TestTermValueRoundTrip(t *testing.T) {
	terms := []rdf.Term{
		rdf.NewIRI("http://t.example/pol/POL01140"),
		rdf.NewLiteral("fhollande"),
		rdf.NewTypedLiteral("42", rdf.XSDInteger),
		rdf.NewTypedLiteral("2.5", rdf.XSDDecimal),
		rdf.NewTypedLiteral("true", rdf.XSDBoolean),
		rdf.NewBlank("b0"),
	}
	for _, term := range terms {
		v := TermToValue(term)
		back := ValueToTerm(v)
		if back != term {
			t.Errorf("round trip %v → %v → %v", term, v, back)
		}
	}
}

func TestValueToTermKinds(t *testing.T) {
	if ValueToTerm(value.NewString("http://x/y")).Kind != rdf.IRI {
		t.Error("IRI-looking string should become IRI")
	}
	if ValueToTerm(value.NewString("plain")).Kind != rdf.Literal {
		t.Error("plain string should become literal")
	}
	if tm := ValueToTerm(value.NewInt(5)); tm.Datatype != rdf.XSDInteger {
		t.Errorf("int term: %v", tm)
	}
}

func TestRelSourceExecute(t *testing.T) {
	s := NewRelSource("sql://insee", relDB(t))
	res, err := s.Execute(SubQuery{
		Language: LangSQL,
		Text:     "SELECT name, population FROM departements WHERE code = ?",
		InVars:   []string{"c"},
	}, []value.Value{value.NewString("75")})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Rows[0][0].Str() != "Paris" {
		t.Errorf("rel rows: %+v", res.Rows)
	}
}

func TestRelSourceEstimate(t *testing.T) {
	s := NewRelSource("sql://insee", relDB(t))
	all := s.EstimateCost(SubQuery{Language: LangSQL, Text: "SELECT * FROM departements"}, 0)
	filtered := s.EstimateCost(SubQuery{Language: LangSQL, Text: "SELECT * FROM departements WHERE code = ?"}, 1)
	if all != 2 {
		t.Errorf("all estimate: %d", all)
	}
	if filtered >= all {
		t.Errorf("equality filter should reduce estimate: %d vs %d", filtered, all)
	}
	if s.EstimateCost(SubQuery{Language: LangSQL, Text: "not sql"}, 0) != -1 {
		t.Error("bad SQL estimate should be -1")
	}
}

func TestDocSourceExecute(t *testing.T) {
	s := NewDocSource("solr://tweets", tweetIndex(t))
	res, err := s.Execute(SubQuery{
		Language: LangSearch,
		Text:     "SEARCH tweets WHERE entities.hashtags = ? RETURN _id, user.screen_name ORDER BY retweet_count DESC",
		InVars:   []string{"h"},
	}, []value.Value{value.NewString("SIA2016")})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("doc rows: %+v", res.Rows)
	}
	if res.Rows[0][1].Str() != "fhollande" { // 469 retweets first
		t.Errorf("order: %+v", res.Rows)
	}
}

func TestDocSourceEstimate(t *testing.T) {
	s := NewDocSource("solr://tweets", tweetIndex(t))
	exact := s.EstimateCost(SubQuery{
		Language: LangSearch,
		Text:     "SEARCH tweets WHERE entities.hashtags = 'EtatDurgence' RETURN _id",
	}, 0)
	if exact != 1 {
		t.Errorf("exact keyword estimate: %d", exact)
	}
}

func TestRegistryResolve(t *testing.T) {
	reg := NewRegistry()
	s := NewRDFSource("rdf://politics", polGraph(t), false)
	if err := reg.Register(s); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(s); err == nil {
		t.Error("duplicate registration accepted")
	}
	got, err := reg.Resolve("rdf://politics")
	if err != nil || got != DataSource(s) {
		t.Errorf("resolve: %v %v", got, err)
	}
	if _, err := reg.Resolve("rdf://missing"); err == nil {
		t.Error("missing URI resolved")
	}
}

func TestRegistryFallback(t *testing.T) {
	reg := NewRegistry()
	called := ""
	reg.SetFallback(func(uri string) (DataSource, error) {
		called = uri
		return NewRDFSource(uri, rdf.NewGraph(), false), nil
	})
	// Non-HTTP URIs never hit the fallback.
	if _, err := reg.Resolve("rdf://nope"); err == nil {
		t.Error("non-http fallback should not fire")
	}
	if _, err := reg.Resolve("http://remote/source"); err != nil {
		t.Errorf("http fallback: %v", err)
	}
	if called != "http://remote/source" {
		t.Errorf("fallback called with %q", called)
	}
}

func TestRegistryByLanguage(t *testing.T) {
	reg := NewRegistry()
	reg.Register(NewRDFSource("rdf://a", polGraph(t), false))
	reg.Register(NewRelSource("sql://b", relDB(t)))
	reg.Register(NewDocSource("solr://c", tweetIndex(t)))
	if n := len(reg.All()); n != 3 {
		t.Errorf("All: %d", n)
	}
	if srcs := reg.ByLanguage(LangSQL); len(srcs) != 1 || srcs[0].URI() != "sql://b" {
		t.Errorf("ByLanguage(sql): %v", srcs)
	}
}

func TestModelStrings(t *testing.T) {
	if RDFModel.String() != "rdf" || RelationalModel.String() != "relational" || DocumentModel.String() != "document" {
		t.Error("model strings")
	}
}

func TestRegistryDeregister(t *testing.T) {
	reg := NewRegistry()
	if reg.Deregister("rdf://politics") {
		t.Error("deregistering an unknown URI reported success")
	}
	if err := reg.Register(NewRDFSource("rdf://politics", polGraph(t), false)); err != nil {
		t.Fatal(err)
	}
	if !reg.Deregister("rdf://politics") {
		t.Fatal("deregister failed")
	}
	if _, err := reg.Resolve("rdf://politics"); err == nil {
		t.Error("deregistered source still resolves")
	}
	if len(reg.All()) != 0 {
		t.Errorf("All after deregister: %v", reg.All())
	}
	// The URI is free for a fresh registration afterwards.
	if err := reg.Register(NewRDFSource("rdf://politics", polGraph(t), false)); err != nil {
		t.Errorf("re-register after deregister: %v", err)
	}
}

// TestRegistryInvalidateCaches: the registry-wide flush reaches every
// interposed probe cache — registered sources via Invalidator, and
// dynamically discovered ones by discarding their memoized wrappers so
// they are re-dialed (and re-cached) fresh.
func TestRegistryInvalidateCaches(t *testing.T) {
	reg := NewRegistry()
	reg.Interpose(func(s DataSource) DataSource { return NewCached(s, 8) })
	if err := reg.Register(NewRelSource("sql://insee", relDB(t))); err != nil {
		t.Fatal(err)
	}
	dials := 0
	reg.SetFallback(func(uri string) (DataSource, error) {
		dials++
		return NewRelSource(uri, relDB(t)), nil
	})

	s, err := reg.Resolve("sql://insee")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute(SubQuery{Language: LangSQL, Text: "SELECT * FROM departements"}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Resolve("http://remote/db"); err != nil {
		t.Fatal(err)
	}
	if dials != 1 {
		t.Fatalf("dials before invalidation: %d", dials)
	}

	if dropped := reg.InvalidateCaches(); dropped != 1 {
		t.Errorf("InvalidateCaches dropped %d entries, want 1", dropped)
	}
	if st := s.(*Cached).Stats(); st.Entries != 0 {
		t.Errorf("registered probe cache not flushed: %+v", st)
	}
	// The fallback memo was cleared: the next resolution re-dials.
	if _, err := reg.Resolve("http://remote/db"); err != nil {
		t.Fatal(err)
	}
	if dials != 2 {
		t.Errorf("fallback memo not cleared: %d dials", dials)
	}
}

// TestRegistryLookupDoesNotDial: Lookup must only see materialized
// sources — an unknown URI returns false without triggering the
// fallback resolver's side effects (dialing, memo insertion).
func TestRegistryLookupDoesNotDial(t *testing.T) {
	reg := NewRegistry()
	reg.Interpose(func(s DataSource) DataSource { return NewCached(s, 8) })
	dials := 0
	reg.SetFallback(func(uri string) (DataSource, error) {
		dials++
		return NewRelSource(uri, relDB(t)), nil
	})

	if _, ok := reg.Lookup("http://remote/db"); ok {
		t.Error("Lookup materialized an unknown URI")
	}
	if dials != 0 {
		t.Fatalf("Lookup dialed: %d", dials)
	}
	if _, err := reg.Resolve("http://remote/db"); err != nil {
		t.Fatal(err)
	}
	if s, ok := reg.Lookup("http://remote/db"); !ok || s == nil {
		t.Error("Lookup missed a memoized dynamic source")
	}
	if dials != 1 {
		t.Errorf("Lookup of a memoized source re-dialed: %d", dials)
	}

	if err := reg.Register(NewRelSource("sql://local", relDB(t))); err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.Lookup("sql://local"); !ok {
		t.Error("Lookup missed a registered source")
	}
}
