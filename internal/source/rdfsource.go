package source

import (
	"fmt"
	"strings"

	"tatooine/internal/rdf"
	"tatooine/internal/value"
)

// TermToValue converts an RDF term to the mediator's value model. IRIs
// and blank nodes become strings (the IRI text / "_:" label), typed
// literals map to their natural kind, other literals to strings, and
// zero terms (unbound OPTIONAL variables) to Null.
func TermToValue(t rdf.Term) value.Value {
	if t.IsZero() {
		return value.NewNull()
	}
	switch t.Kind {
	case rdf.IRI:
		return value.NewString(t.Value)
	case rdf.Blank:
		return value.NewString("_:" + t.Value)
	case rdf.Literal:
		switch t.Datatype {
		case rdf.XSDInteger:
			if v, ok := value.Coerce(value.NewString(t.Value), value.Int); ok {
				return v
			}
		case rdf.XSDDecimal:
			if v, ok := value.Coerce(value.NewString(t.Value), value.Float); ok {
				return v
			}
		case rdf.XSDBoolean:
			if v, ok := value.Coerce(value.NewString(t.Value), value.Bool); ok {
				return v
			}
		case rdf.XSDDateTime:
			if v, ok := value.Coerce(value.NewString(t.Value), value.Time); ok {
				return v
			}
		}
		return value.NewString(t.Value)
	default:
		return value.NewString(t.Value)
	}
}

// ValueToTerm converts a mediator value to an RDF term for binding into
// BGPs: strings that look like absolute IRIs become IRI terms, "_:"
// strings become blank nodes, numerics/booleans become typed literals,
// everything else a plain literal.
func ValueToTerm(v value.Value) rdf.Term {
	switch v.Kind() {
	case value.String:
		s := v.Str()
		if strings.HasPrefix(s, "_:") {
			return rdf.NewBlank(s[2:])
		}
		if looksLikeIRI(s) {
			return rdf.NewIRI(s)
		}
		return rdf.NewLiteral(s)
	case value.Int:
		return rdf.NewTypedLiteral(v.String(), rdf.XSDInteger)
	case value.Float:
		return rdf.NewTypedLiteral(v.String(), rdf.XSDDecimal)
	case value.Bool:
		return rdf.NewTypedLiteral(v.String(), rdf.XSDBoolean)
	case value.Time:
		return rdf.NewTypedLiteral(v.String(), rdf.XSDDateTime)
	default:
		return rdf.NewLiteral(v.String())
	}
}

func looksLikeIRI(s string) bool {
	for _, scheme := range []string{"http://", "https://", "urn:", "mailto:", "ftp://"} {
		if strings.HasPrefix(s, scheme) {
			return true
		}
	}
	return false
}

// RDFSource exposes an rdf.Graph as a DataSource accepting BGP
// sub-queries. When saturate is set, queries run over G∞ (computed once
// and cached), implementing the paper's answer semantics.
type RDFSource struct {
	uri      string
	graph    *rdf.Graph
	prefixes map[string]string
}

// NewRDFSource wraps g. When saturate is true, the graph is saturated
// (RDFS entailment) before serving queries.
func NewRDFSource(uri string, g *rdf.Graph, saturate bool) *RDFSource {
	if saturate {
		g = rdf.Saturate(g).Graph
	}
	return &RDFSource{uri: uri, graph: g}
}

// WithPrefixes sets extra prefix declarations usable in BGP texts.
func (s *RDFSource) WithPrefixes(prefixes map[string]string) *RDFSource {
	s.prefixes = prefixes
	return s
}

// Graph returns the underlying (possibly saturated) graph.
func (s *RDFSource) Graph() *rdf.Graph { return s.graph }

// URI implements DataSource.
func (s *RDFSource) URI() string { return s.uri }

// Model implements DataSource.
func (s *RDFSource) Model() Model { return RDFModel }

// Languages implements DataSource.
func (s *RDFSource) Languages() []Language { return []Language{LangBGP} }

// Execute implements DataSource. Params bind the query's InVars (see
// SubQuery.InVars) by name to constant terms before evaluation.
func (s *RDFSource) Execute(q SubQuery, params []value.Value) (*Result, error) {
	if q.Language != LangBGP {
		return nil, fmt.Errorf("source %s: unsupported language %q", s.uri, q.Language)
	}
	bgp, err := rdf.ParseBGP(q.Text, s.prefixes)
	if err != nil {
		return nil, err
	}
	if len(params) != len(q.InVars) {
		return nil, fmt.Errorf("source %s: query expects %d parameters, got %d", s.uri, len(q.InVars), len(params))
	}
	init := make(rdf.Bindings, len(params))
	for i, name := range q.InVars {
		init[strings.TrimPrefix(name, "?")] = ValueToTerm(params[i])
	}
	sols, err := rdf.EvaluateBound(s.graph, bgp, init)
	if err != nil {
		return nil, err
	}
	res := &Result{Cols: sols.Vars}
	for _, row := range sols.Rows {
		vrow := make(value.Row, len(row))
		for i, t := range row {
			vrow[i] = TermToValue(t)
		}
		res.Rows = append(res.Rows, vrow)
	}
	return res, nil
}

// ExecuteBatch implements BatchProber, VALUES-style: the BGP is parsed
// once and evaluated once per binding tuple over the in-process graph.
// The pushdown win is amortizing the parse and — when this source sits
// behind a federation endpoint — collapsing N probe round trips into
// one request.
func (s *RDFSource) ExecuteBatch(q SubQuery, paramSets []value.Row) ([]*Result, error) {
	if q.Language != LangBGP {
		return nil, fmt.Errorf("source %s: unsupported language %q", s.uri, q.Language)
	}
	bgp, err := rdf.ParseBGP(q.Text, s.prefixes)
	if err != nil {
		return nil, err
	}
	out := make([]*Result, len(paramSets))
	for i, params := range paramSets {
		if len(params) != len(q.InVars) {
			return nil, fmt.Errorf("source %s: query expects %d parameters, got %d", s.uri, len(q.InVars), len(params))
		}
		init := make(rdf.Bindings, len(params))
		for j, name := range q.InVars {
			init[strings.TrimPrefix(name, "?")] = ValueToTerm(params[j])
		}
		sols, err := rdf.EvaluateBound(s.graph, bgp, init)
		if err != nil {
			return nil, err
		}
		res := &Result{Cols: sols.Vars}
		for _, row := range sols.Rows {
			vrow := make(value.Row, len(row))
			for k, t := range row {
				vrow[k] = TermToValue(t)
			}
			res.Rows = append(res.Rows, vrow)
		}
		out[i] = res
	}
	return out, nil
}

// EstimateCost implements DataSource: the minimum pattern cardinality
// of the BGP (a cheap, index-backed upper bound on the first join step).
func (s *RDFSource) EstimateCost(q SubQuery, numParams int) int {
	rows, _ := s.Estimate(q, numParams)
	return rows
}

// Estimate implements Estimator: rows is the minimum pattern
// cardinality (the seed of the BGP join), cost adds one index probe
// per pattern — an in-memory graph's whole effort is walking its
// pattern indexes.
func (s *RDFSource) Estimate(q SubQuery, numParams int) (rows, cost int) {
	bgp, err := rdf.ParseBGP(q.Text, s.prefixes)
	if err != nil || len(bgp.Patterns) == 0 {
		return -1, -1
	}
	best := -1
	for _, p := range bgp.Patterns {
		var sp, pp, op rdf.Term
		if !p.S.IsVar() {
			sp = p.S.Term
		}
		if !p.P.IsVar() {
			pp = p.P.Term
		}
		if !p.O.IsVar() {
			op = p.O.Term
		}
		c := s.graph.CountMatch(sp, pp, op)
		if best < 0 || c < best {
			best = c
		}
	}
	return best, best + len(bgp.Patterns)
}
