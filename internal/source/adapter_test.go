package source

import (
	"testing"

	"tatooine/internal/rdf"
	"tatooine/internal/value"
	"tatooine/internal/xmlstore"
)

func TestAdapterMetadata(t *testing.T) {
	rdfSrc := NewRDFSource("rdf://g", polGraph(t), false)
	relSrc := NewRelSource("sql://d", relDB(t))
	docSrc := NewDocSource("solr://t", tweetIndex(t))
	store := xmlstore.NewStore("sp")
	xmlSrc := NewXMLSource("xml://sp", store)

	if rdfSrc.Model() != RDFModel || rdfSrc.Graph() == nil {
		t.Error("rdf adapter metadata")
	}
	if relSrc.Model() != RelationalModel || relSrc.DB() == nil {
		t.Error("rel adapter metadata")
	}
	if docSrc.Model() != DocumentModel || docSrc.Index() == nil {
		t.Error("doc adapter metadata")
	}
	if xmlSrc.Model() != DocumentModel || xmlSrc.Store() != store || xmlSrc.URI() != "xml://sp" {
		t.Error("xml adapter metadata")
	}
	if !Accepts(xmlSrc, LangXPath) || Accepts(xmlSrc, LangSQL) {
		t.Error("xml languages")
	}
}

func TestRDFSourceWithPrefixes(t *testing.T) {
	s := NewRDFSource("rdf://g", polGraph(t), false).
		WithPrefixes(map[string]string{"t": "http://t.example/"})
	res, err := s.Execute(SubQuery{
		Language: LangBGP,
		Text:     `q(?x) :- ?x t:position t:headOfState`,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Errorf("prefixed query rows: %d", res.Len())
	}
}

func TestRDFSourceEstimate(t *testing.T) {
	s := NewRDFSource("rdf://g", polGraph(t), false)
	all := s.EstimateCost(SubQuery{Language: LangBGP,
		Text: `q(?x, ?p, ?o) :- ?x ?p ?o`}, 0)
	narrow := s.EstimateCost(SubQuery{Language: LangBGP,
		Text: `q(?x) :- ?x <http://t.example/position> <http://t.example/headOfState> . ?x ?p ?o`}, 0)
	if all <= 0 {
		t.Errorf("all estimate: %d", all)
	}
	if narrow >= all {
		t.Errorf("selective pattern should shrink the estimate: %d vs %d", narrow, all)
	}
	if s.EstimateCost(SubQuery{Language: LangBGP, Text: "garbage :-"}, 0) != -1 {
		t.Error("bad BGP estimate should be -1")
	}
}

func TestXMLSourceExecuteThroughAdapter(t *testing.T) {
	store := xmlstore.NewStore("speeches")
	if err := store.Add("d1", []byte(`<speeches>
<speech speaker="A"><topic>agriculture</topic></speech>
<speech speaker="B"><topic>economie</topic></speech>
</speeches>`)); err != nil {
		t.Fatal(err)
	}
	s := NewXMLSource("xml://sp", store)
	res, err := s.Execute(SubQuery{
		Language: LangXPath,
		Text:     "XPATH /speeches/speech[@speaker=?] RETURN _id, topic",
		InVars:   []string{"n"},
	}, []value.Value{value.NewString("B")})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Rows[0][1].Str() != "economie" {
		t.Errorf("xml adapter rows: %+v", res.Rows)
	}
	if _, err := s.Execute(SubQuery{Language: LangSQL, Text: "SELECT 1"}, nil); err == nil {
		t.Error("wrong language accepted")
	}
	if _, err := s.Execute(SubQuery{Language: LangXPath, Text: "garbage"}, nil); err == nil {
		t.Error("bad query accepted")
	}
}

func TestSelectivityFactorShapes(t *testing.T) {
	s := NewRelSource("sql://d", relDB(t))
	base := s.EstimateCost(SubQuery{Language: LangSQL, Text: "SELECT * FROM departements"}, 0)
	cases := []string{
		"SELECT * FROM departements WHERE code = '75' AND name = 'Paris'",
		"SELECT * FROM departements WHERE population > 1",
		"SELECT * FROM departements WHERE code IN ('75','92')",
		"SELECT * FROM departements WHERE population BETWEEN 1 AND 2",
		"SELECT * FROM departements WHERE code = '75' OR code = '92'",
		"SELECT * FROM departements LIMIT 1",
	}
	for _, q := range cases {
		est := s.EstimateCost(SubQuery{Language: LangSQL, Text: q}, 0)
		if est < 0 || est > base {
			t.Errorf("%q estimate %d out of range (base %d)", q, est, base)
		}
	}
	// Joins keep the estimate at least at the larger side.
	joined := s.EstimateCost(SubQuery{Language: LangSQL,
		Text: "SELECT * FROM departements d JOIN departements e ON d.code = e.code"}, 0)
	if joined < base {
		t.Errorf("join estimate %d below base %d", joined, base)
	}
}

func TestTermToValueDateTime(t *testing.T) {
	v := TermToValue(rdf.NewTypedLiteral("2016-03-01T03:42:31Z", rdf.XSDDateTime))
	if v.Kind() != value.Time {
		t.Errorf("datetime kind: %v", v.Kind())
	}
	back := ValueToTerm(v)
	if back.Datatype != rdf.XSDDateTime {
		t.Errorf("datetime round trip: %v", back)
	}
}
