package source

import (
	"errors"
	"fmt"

	"tatooine/internal/value"
)

// ErrBatchUnsupported is returned by a BatchProber that cannot batch a
// particular sub-query (unsupported shape, remote endpoint without the
// batch route, ...). The executor falls back to per-tuple probes; any
// other error aborts the bind join.
var ErrBatchUnsupported = errors.New("source: batched execution unsupported for this sub-query")

// BatchProber is the optional capability of a DataSource that can
// evaluate one sub-query for many parameter tuples in a single native
// round trip (IN-list pushdown for SQL, multi-binding BGP evaluation,
// multi-term search, one HTTP request for a federation client). The
// executor's bind join chunks its distinct outer tuples and dispatches
// whole chunks here, turning O(bindings) source round trips into
// O(bindings / batch).
type BatchProber interface {
	DataSource
	// ExecuteBatch evaluates q once per parameter tuple and returns one
	// Result per tuple, aligned with paramSets. Each per-tuple Result
	// must equal what Execute(q, paramSets[i]) would return (row order
	// within a tuple's result may differ only where Execute's own order
	// is unspecified). ErrBatchUnsupported signals the source cannot
	// batch this sub-query shape; callers then probe per tuple.
	ExecuteBatch(q SubQuery, paramSets []value.Row) ([]*Result, error)
}

// CanBatch reports whether probes against s can actually ship batched:
// s must implement BatchProber and any decorator chain (Unwrap) must
// bottom out in a source that does too — a Cached wrapper always has
// ExecuteBatch but only forwards when its inner source batches. This
// is a static best-effort answer (a remote endpoint may still reject
// the batch route at run time); the executor's authoritative signal is
// ErrBatchUnsupported.
func CanBatch(s DataSource) bool {
	if _, ok := s.(BatchProber); !ok {
		return false
	}
	type unwrapper interface{ Unwrap() DataSource }
	if u, ok := s.(unwrapper); ok {
		return CanBatch(u.Unwrap())
	}
	return true
}

// ExecuteSerially evaluates q once per tuple through plain Execute —
// the reference semantics of ExecuteBatch. It is the server-side
// fallback of the federation batch endpoint (one network round trip,
// N local executions) and a convenience for tests.
func ExecuteSerially(s DataSource, q SubQuery, paramSets []value.Row) ([]*Result, error) {
	out := make([]*Result, len(paramSets))
	for i, ps := range paramSets {
		res, err := s.Execute(q, ps)
		if err != nil {
			return nil, fmt.Errorf("source: batch tuple %d: %w", i, err)
		}
		out[i] = res
	}
	return out, nil
}
