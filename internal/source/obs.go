package source

import "tatooine/internal/obs"

// Process-wide probe-cache metrics (internal/obs.Default): every Cached
// decorator in the process reports into the same pair — the signal is
// the overall probe-cache hit ratio across sources.
var (
	probeCacheHitTotal = obs.Default.Counter("tat_probe_cache_hits_total",
		"Probe-cache lookups answered from memory.")
	probeCacheMissTotal = obs.Default.Counter("tat_probe_cache_misses_total",
		"Probe-cache lookups that executed against the inner source.")
)
