package source_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"tatooine/internal/fulltext"
	"tatooine/internal/rdf"
	"tatooine/internal/relstore"
	"tatooine/internal/source"
	"tatooine/internal/value"
)

func relFixture(t *testing.T) *source.RelSource {
	t.Helper()
	db := relstore.NewDatabase("d")
	for _, q := range []string{
		"CREATE TABLE t (k TEXT, v INT, grp TEXT)",
		"INSERT INTO t VALUES ('a', 1, 'g1'), ('a', 2, 'g2'), ('b', 1, 'g1'), ('b', 3, 'g2'), ('c', 5, 'g1')",
	} {
		if _, err := db.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	return source.NewRelSource("sql://d", db)
}

// assertBatchMatchesSerial runs q through ExecuteBatch and through
// per-tuple Execute and requires identical per-tuple results
// (including row order).
func assertBatchMatchesSerial(t *testing.T, s source.BatchProber, q source.SubQuery, sets []value.Row) {
	t.Helper()
	batched, err := s.ExecuteBatch(q, sets)
	if err != nil {
		t.Fatalf("ExecuteBatch: %v", err)
	}
	serial, err := source.ExecuteSerially(s, q, sets)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	if len(batched) != len(sets) {
		t.Fatalf("batched returned %d results for %d tuples", len(batched), len(sets))
	}
	for i := range sets {
		b, ref := batched[i], serial[i]
		if fmt.Sprint(b.Cols) != fmt.Sprint(ref.Cols) {
			t.Fatalf("tuple %d cols: %v vs %v", i, b.Cols, ref.Cols)
		}
		if len(b.Rows) != len(ref.Rows) {
			t.Fatalf("tuple %d (%v): %d rows batched, %d serial", i, sets[i], len(b.Rows), len(ref.Rows))
		}
		for j := range b.Rows {
			if b.Rows[j].Key() != ref.Rows[j].Key() {
				t.Errorf("tuple %d row %d: %v vs %v", i, j, b.Rows[j], ref.Rows[j])
			}
		}
	}
}

func TestRelSourceExecuteBatchINListPushdown(t *testing.T) {
	s := relFixture(t)
	q := source.SubQuery{
		Language: source.LangSQL,
		Text:     "SELECT k, v FROM t WHERE k = ? AND v >= 1",
		InVars:   []string{"k"},
	}
	sets := []value.Row{
		{value.NewString("a")},
		{value.NewString("b")},
		{value.NewString("nope")}, // no matching rows
		{value.NewString("a")},    // duplicate tuple
	}
	assertBatchMatchesSerial(t, s, q, sets)
}

func TestRelSourceExecuteBatchMultiParamCrossProduct(t *testing.T) {
	// Two parameters batch into two IN lists whose cross product is a
	// strict superset of the requested tuples; the per-tuple split must
	// keep only each tuple's own rows.
	s := relFixture(t)
	q := source.SubQuery{
		Language: source.LangSQL,
		Text:     "SELECT grp FROM t WHERE k = ? AND v = ?",
		InVars:   []string{"k", "v"},
	}
	sets := []value.Row{
		{value.NewString("a"), value.NewInt(1)},
		{value.NewString("b"), value.NewInt(3)}, // (a,3) and (b,1) exist but were not asked for
	}
	assertBatchMatchesSerial(t, s, q, sets)
}

func TestRelSourceExecuteBatchOrderByPreserved(t *testing.T) {
	s := relFixture(t)
	q := source.SubQuery{
		Language: source.LangSQL,
		Text:     "SELECT k, v FROM t WHERE k = ? ORDER BY v DESC",
		InVars:   []string{"k"},
	}
	sets := []value.Row{{value.NewString("a")}, {value.NewString("b")}}
	assertBatchMatchesSerial(t, s, q, sets)
}

func TestRelSourceExecuteBatchUnsupportedShapes(t *testing.T) {
	s := relFixture(t)
	sets := []value.Row{{value.NewString("a")}, {value.NewString("b")}}
	for _, text := range []string{
		"SELECT k FROM t WHERE k = ? LIMIT 1",       // per-probe LIMIT ≠ global LIMIT
		"SELECT DISTINCT k FROM t WHERE k = ?",      // per-probe DISTINCT ≠ global DISTINCT
		"SELECT k FROM t WHERE v >= ?",              // '?' outside col = ?
		"SELECT k, COUNT(*) FROM t WHERE k = ?",     // aggregation over the union differs
		"SELECT k FROM t WHERE k = ? OR grp = 'g1'", // param under OR
	} {
		q := source.SubQuery{Language: source.LangSQL, Text: text, InVars: []string{"p"}}
		_, err := s.ExecuteBatch(q, sets)
		if !errors.Is(err, source.ErrBatchUnsupported) {
			t.Errorf("%q: err = %v, want ErrBatchUnsupported", text, err)
		}
	}
}

func TestRDFSourceExecuteBatch(t *testing.T) {
	g := rdf.NewGraph()
	g.AddAll(rdf.MustParse(`
@prefix : <http://t.example/> .
:p1 :account "alice" ; :party :left .
:p2 :account "bob" ; :party :right .
`))
	s := source.NewRDFSource("rdf://g", g, false).WithPrefixes(map[string]string{"": "http://t.example/"})
	q := source.SubQuery{
		Language: source.LangBGP,
		Text:     `q(?x, ?p) :- ?x :account ?acct . ?x :party ?p`,
		InVars:   []string{"acct"},
	}
	sets := []value.Row{
		{value.NewString("alice")},
		{value.NewString("bob")},
		{value.NewString("nobody")},
	}
	assertBatchMatchesSerial(t, s, q, sets)
}

func TestDocSourceExecuteBatch(t *testing.T) {
	ix := fulltext.NewIndex("tweets", fulltext.Schema{
		"text": fulltext.TextField,
		"user": fulltext.KeywordField,
	})
	for i, txt := range []string{"economie en hausse", "economie en baisse", "culture et sport"} {
		if err := ix.AddJSON(fmt.Sprintf("d%d", i), []byte(fmt.Sprintf(`{"user": "u%d", "text": %q}`, i%2, txt))); err != nil {
			t.Fatal(err)
		}
	}
	s := source.NewDocSource("solr://tweets", ix)
	q := source.SubQuery{
		Language: source.LangSearch,
		Text:     "SEARCH tweets WHERE user = ? AND text CONTAINS 'economie' RETURN _id, user",
		InVars:   []string{"user"},
	}
	sets := []value.Row{
		{value.NewString("u0")},
		{value.NewString("u1")},
		{value.NewString("u9")},
	}
	assertBatchMatchesSerial(t, s, q, sets)
}

// recordingBatchSource counts per-tuple and batched calls reaching the
// inner layer, for Cached decoration tests.
type recordingBatchSource struct {
	uri string

	mu         sync.Mutex
	execCalls  int
	batchCalls int
	batchSizes []int
}

func (s *recordingBatchSource) URI() string         { return s.uri }
func (s *recordingBatchSource) Model() source.Model { return source.RelationalModel }
func (s *recordingBatchSource) Languages() []source.Language {
	return []source.Language{source.LangSQL}
}
func (s *recordingBatchSource) EstimateCost(source.SubQuery, int) int { return 1 }

func (s *recordingBatchSource) result(p value.Value) *source.Result {
	return &source.Result{Cols: []string{"v"}, Rows: []value.Row{{p}}}
}

func (s *recordingBatchSource) Execute(q source.SubQuery, params []value.Value) (*source.Result, error) {
	s.mu.Lock()
	s.execCalls++
	s.mu.Unlock()
	return s.result(params[0]), nil
}

func (s *recordingBatchSource) ExecuteBatch(q source.SubQuery, paramSets []value.Row) ([]*source.Result, error) {
	s.mu.Lock()
	s.batchCalls++
	s.batchSizes = append(s.batchSizes, len(paramSets))
	s.mu.Unlock()
	out := make([]*source.Result, len(paramSets))
	for i, ps := range paramSets {
		out[i] = s.result(ps[0])
	}
	return out, nil
}

var batchTestQuery = source.SubQuery{
	Language: source.LangSQL,
	Text:     "SELECT v FROM t WHERE v = ?",
	InVars:   []string{"v"},
}

func tuple(s string) value.Row { return value.Row{value.NewString(s)} }

func TestCachedExecuteBatchForwardsOnlyMisses(t *testing.T) {
	inner := &recordingBatchSource{uri: "sql://r"}
	c := source.NewCached(inner, 16)

	// Prime one tuple through the per-tuple path.
	if _, err := c.Execute(batchTestQuery, tuple("a")); err != nil {
		t.Fatal(err)
	}
	// Batch of three: "a" answered from cache, only b+c travel.
	res, err := c.ExecuteBatch(batchTestQuery, []value.Row{tuple("a"), tuple("b"), tuple("c")})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("results: %d", len(res))
	}
	for i, want := range []string{"a", "b", "c"} {
		if res[i].Rows[0][0].Str() != want {
			t.Errorf("tuple %d: got %v", i, res[i].Rows[0])
		}
	}
	if inner.batchCalls != 1 || inner.batchSizes[0] != 2 {
		t.Errorf("inner batches: calls=%d sizes=%v, want one batch of 2", inner.batchCalls, inner.batchSizes)
	}
	// The batch result filled the cache per tuple: no further inner calls.
	if _, err := c.Execute(batchTestQuery, tuple("b")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExecuteBatch(batchTestQuery, []value.Row{tuple("b"), tuple("c")}); err != nil {
		t.Fatal(err)
	}
	if inner.execCalls != 1 || inner.batchCalls != 1 {
		t.Errorf("inner calls after warm cache: exec=%d batch=%d", inner.execCalls, inner.batchCalls)
	}
	st := c.Stats()
	if st.Hits != 4 || st.Misses != 3 {
		t.Errorf("stats: %+v", st)
	}
}

// plainSource hides any batch capability.
type plainSource struct{ source.DataSource }

func TestCachedExecuteBatchUnsupportedInner(t *testing.T) {
	inner := &recordingBatchSource{uri: "sql://r"}
	c := source.NewCached(plainSource{inner}, 16)
	_, err := c.ExecuteBatch(batchTestQuery, []value.Row{tuple("a")})
	if !errors.Is(err, source.ErrBatchUnsupported) {
		t.Errorf("err = %v, want ErrBatchUnsupported", err)
	}
}

func TestCachedTTLExpiry(t *testing.T) {
	inner := &recordingBatchSource{uri: "sql://r"}
	c := source.NewCached(inner, 16).WithTTL(time.Minute)
	now := time.Unix(1000, 0)
	source.SetCachedClock(c, func() time.Time { return now })

	if _, err := c.Execute(batchTestQuery, tuple("a")); err != nil {
		t.Fatal(err)
	}
	// Within the TTL: served from cache.
	now = now.Add(30 * time.Second)
	if _, err := c.Execute(batchTestQuery, tuple("a")); err != nil {
		t.Fatal(err)
	}
	if inner.execCalls != 1 {
		t.Fatalf("exec calls within TTL: %d", inner.execCalls)
	}
	// Past the TTL: the entry expires, the inner source re-executes, and
	// the refreshed entry serves again.
	now = now.Add(time.Minute)
	if _, err := c.Execute(batchTestQuery, tuple("a")); err != nil {
		t.Fatal(err)
	}
	if inner.execCalls != 2 {
		t.Fatalf("exec calls after expiry: %d", inner.execCalls)
	}
	if _, err := c.Execute(batchTestQuery, tuple("a")); err != nil {
		t.Fatal(err)
	}
	if inner.execCalls != 2 {
		t.Fatalf("refreshed entry not served: %d", inner.execCalls)
	}
	st := c.Stats()
	if st.Expired != 1 {
		t.Errorf("expired count: %+v", st)
	}
	// Zero TTL (the default) never expires.
	c2 := source.NewCached(&recordingBatchSource{uri: "sql://r2"}, 16)
	source.SetCachedClock(c2, func() time.Time { return now })
	c2.Execute(batchTestQuery, tuple("a"))
	now = now.Add(1000 * time.Hour)
	c2.Execute(batchTestQuery, tuple("a"))
	if st2 := c2.Stats(); st2.Hits != 1 || st2.Expired != 0 {
		t.Errorf("no-TTL stats: %+v", st2)
	}
}
