package source

import (
	"context"

	"tatooine/internal/value"
)

// ContextExecutor is the optional capability of a DataSource whose
// sub-query evaluation can be bound to a context: cancelling the
// context aborts the in-flight evaluation (for a federation client,
// the underlying HTTP request) instead of letting it run to
// completion with nobody waiting for the answer. In-process sources
// generally answer too fast to bother; the capability matters for
// anything that crosses the network.
type ContextExecutor interface {
	DataSource
	// ExecuteContext is Execute bound to ctx.
	ExecuteContext(ctx context.Context, q SubQuery, params []value.Value) (*Result, error)
}

// ContextBatchProber is ContextExecutor's batched sibling: a
// BatchProber whose batch dispatch can be cancelled mid-flight.
type ContextBatchProber interface {
	BatchProber
	// ExecuteBatchContext is ExecuteBatch bound to ctx.
	ExecuteBatchContext(ctx context.Context, q SubQuery, paramSets []value.Row) ([]*Result, error)
}

// ExecuteWith evaluates q against s under ctx: an already-cancelled
// context refuses the dispatch outright, a ContextExecutor gets the
// context threaded through (so cancellation reaches the wire), and a
// plain source executes as before — it cannot be interrupted, but the
// pre-dispatch check still stops a cancelled query from fanning out
// further probes.
func ExecuteWith(ctx context.Context, s DataSource, q SubQuery, params []value.Value) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if ce, ok := s.(ContextExecutor); ok {
		return ce.ExecuteContext(ctx, q, params)
	}
	return s.Execute(q, params)
}

// ExecuteBatchWith is ExecuteWith for batched probes.
func ExecuteBatchWith(ctx context.Context, bp BatchProber, q SubQuery, paramSets []value.Row) ([]*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if cb, ok := bp.(ContextBatchProber); ok {
		return cb.ExecuteBatchContext(ctx, q, paramSets)
	}
	return bp.ExecuteBatch(q, paramSets)
}
