package source

import (
	"fmt"

	"tatooine/internal/fulltext"
	"tatooine/internal/value"
)

// DocSource exposes a fulltext.Index as a DataSource accepting the
// SEARCH syntax; it plays the role of the Apache Solr tweet / Facebook
// post collections of the paper's mixed instance.
type DocSource struct {
	uri string
	ix  *fulltext.Index
}

// NewDocSource wraps ix.
func NewDocSource(uri string, ix *fulltext.Index) *DocSource {
	return &DocSource{uri: uri, ix: ix}
}

// Index returns the underlying full-text index.
func (s *DocSource) Index() *fulltext.Index { return s.ix }

// URI implements DataSource.
func (s *DocSource) URI() string { return s.uri }

// Model implements DataSource.
func (s *DocSource) Model() Model { return DocumentModel }

// Languages implements DataSource.
func (s *DocSource) Languages() []Language { return []Language{LangSearch} }

// Execute implements DataSource: params substitute '?' placeholders in
// condition order.
func (s *DocSource) Execute(q SubQuery, params []value.Value) (*Result, error) {
	if q.Language != LangSearch {
		return nil, fmt.Errorf("source %s: unsupported language %q", s.uri, q.Language)
	}
	tq, err := fulltext.ParseTextQuery(q.Text)
	if err != nil {
		return nil, err
	}
	cols, rows, err := tq.Execute(s.ix, params)
	if err != nil {
		return nil, err
	}
	out := &Result{Cols: cols}
	for _, r := range rows {
		out.Rows = append(out.Rows, value.Row(r))
	}
	return out, nil
}

// ExecuteBatch implements BatchProber as a multi-term batch: the
// SEARCH statement is parsed once and the prepared query runs once per
// parameter tuple against the index. Like the RDF case, the win is
// parse amortization locally and a single round trip when this index
// is served behind a federation endpoint.
func (s *DocSource) ExecuteBatch(q SubQuery, paramSets []value.Row) ([]*Result, error) {
	if q.Language != LangSearch {
		return nil, fmt.Errorf("source %s: unsupported language %q", s.uri, q.Language)
	}
	tq, err := fulltext.ParseTextQuery(q.Text)
	if err != nil {
		return nil, err
	}
	out := make([]*Result, len(paramSets))
	for i, params := range paramSets {
		cols, rows, err := tq.Execute(s.ix, params)
		if err != nil {
			return nil, err
		}
		res := &Result{Cols: cols}
		for _, r := range rows {
			res.Rows = append(res.Rows, value.Row(r))
		}
		out[i] = res
	}
	return out, nil
}

// EstimateCost implements DataSource: keyword equality conditions with
// literal values use exact document frequencies; parameterized or
// analyzed conditions fall back to corpus-size heuristics.
func (s *DocSource) EstimateCost(q SubQuery, numParams int) int {
	rows, _ := s.Estimate(q, numParams)
	return rows
}

// Estimate implements Estimator: rows from the frequency heuristics
// below, cost adds one posting-list probe per condition — the index
// answers from postings, it never scans the corpus.
func (s *DocSource) Estimate(q SubQuery, numParams int) (rows, cost int) {
	tq, err := fulltext.ParseTextQuery(q.Text)
	if err != nil {
		return -1, -1
	}
	est := s.ix.Count()
	for _, c := range tq.Conds {
		switch {
		case c.Op == fulltext.CondEq && c.Param < 0:
			// Exact: count documents holding this keyword value.
			hits, err := s.ix.Search(fulltext.KeywordQuery{Field: c.Field, Value: c.Val.String()}, fulltext.SearchOptions{})
			if err == nil && len(hits) < est {
				est = len(hits)
			}
		case c.Op == fulltext.CondEq:
			if e := s.ix.Count() / 100; e < est {
				est = e
			}
		default:
			if e := s.ix.Count() / 10; e < est {
				est = e
			}
		}
	}
	if tq.Limit > 0 && tq.Limit < est {
		est = tq.Limit
	}
	if est < 1 {
		est = 1
	}
	return est, est + len(tq.Conds)
}
