package source

import (
	"fmt"
	"strings"

	"tatooine/internal/rdf"
	"tatooine/internal/relstore"
	"tatooine/internal/value"
)

// ExportTableRDF converts a relational table to RDF triples under a
// namespace — the paper's observation that journalists' small tabular
// files "can be easily exported into RDF" (§1). Each row becomes a
// subject <ns><table>/<n> (or <ns><table>/<pk> when the table has a
// single-column primary key); each column a property <ns><column>
// with the cell as a typed literal (strings that look like IRIs stay
// IRIs). Null cells are skipped. The triples are added to g.
func ExportTableRDF(g *rdf.Graph, t *relstore.Table, ns string) (int, error) {
	if !strings.HasSuffix(ns, "/") && !strings.HasSuffix(ns, "#") {
		ns += "/"
	}
	schema := t.Schema()
	pkCol := -1
	if len(schema.PrimaryKey) == 1 {
		pkCol = schema.ColumnIndex(schema.PrimaryKey[0])
	}
	typeTerm := rdf.NewIRI(rdf.RDFType)
	classTerm := rdf.NewIRI(ns + schema.Name)

	added := 0
	rowNum := 0
	var exportErr error
	t.Scan(func(row value.Row) bool {
		rowNum++
		var local string
		if pkCol >= 0 && !row[pkCol].IsNull() {
			local = sanitizeLocal(row[pkCol].String())
		} else {
			local = fmt.Sprintf("%d", rowNum)
		}
		subj := rdf.NewIRI(ns + schema.Name + "/" + local)
		if g.Add(rdf.Triple{S: subj, P: typeTerm, O: classTerm}) {
			added++
		}
		for i, col := range schema.Columns {
			if row[i].IsNull() {
				continue
			}
			if g.Add(rdf.Triple{S: subj, P: rdf.NewIRI(ns + col.Name), O: ValueToTerm(row[i])}) {
				added++
			}
		}
		return true
	})
	return added, exportErr
}

// sanitizeLocal makes a primary-key value safe as an IRI local name.
func sanitizeLocal(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			b.WriteRune(r)
		default:
			b.WriteRune('_')
		}
	}
	return b.String()
}

// ExportDatabaseRDF exports every table of a database into one graph.
func ExportDatabaseRDF(db *relstore.Database, ns string) (*rdf.Graph, error) {
	g := rdf.NewGraph()
	for _, t := range db.Tables() {
		if _, err := ExportTableRDF(g, t, ns); err != nil {
			return nil, err
		}
	}
	return g, nil
}
