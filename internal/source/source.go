// Package source defines the data-source abstraction of TATOOINE's
// mixed instances: every heterogeneous store (RDF graph, relational
// database, full-text document index, remote endpoint) is exposed to
// the mediator as a DataSource that evaluates native sub-queries and
// returns uniform tuple results. The registry resolves source URIs,
// including URIs discovered at query run time (dynamic source
// discovery, §2.2 of the paper).
package source

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"tatooine/internal/lru"
	"tatooine/internal/value"
)

// Model identifies a source's data model.
type Model uint8

const (
	RDFModel Model = iota
	RelationalModel
	DocumentModel
)

func (m Model) String() string {
	switch m {
	case RDFModel:
		return "rdf"
	case RelationalModel:
		return "relational"
	case DocumentModel:
		return "document"
	default:
		return fmt.Sprintf("Model(%d)", uint8(m))
	}
}

// Language identifies a sub-query language a source accepts.
type Language string

const (
	// LangBGP is the basic-graph-pattern syntax of internal/rdf.
	LangBGP Language = "bgp"
	// LangSQL is the SQL subset of internal/sqlparse.
	LangSQL Language = "sql"
	// LangSearch is the SEARCH syntax of internal/fulltext.
	LangSearch Language = "search"
)

// SubQuery is one native sub-query of a mixed query, destined for a
// single source.
type SubQuery struct {
	// Language the Text is written in.
	Language Language
	// Text is the native query.
	Text string
	// InVars names the parameters the query expects, in order. For SQL
	// and SEARCH texts they correspond positionally to '?' placeholders;
	// for BGP texts they name pattern variables to pre-bind. The
	// mediator supplies the bound values via Execute's params.
	InVars []string
}

// Result is a uniform tuple result: column names and rows of values.
type Result struct {
	Cols []string
	Rows []value.Row
}

// Len returns the number of rows.
func (r *Result) Len() int { return len(r.Rows) }

// DataSource is a queryable member of a mixed instance.
type DataSource interface {
	// URI is the source's identifier inside the mixed instance.
	URI() string
	// Model reports the source's data model.
	Model() Model
	// Languages lists the sub-query languages the source accepts.
	Languages() []Language
	// Execute evaluates a native sub-query. params bind the query's
	// placeholders in order (bind joins push outer bindings here).
	Execute(q SubQuery, params []value.Value) (*Result, error)
	// EstimateCost returns an estimated result cardinality used to
	// order sub-queries by selectivity; negative means unknown.
	EstimateCost(q SubQuery, numParams int) int
}

// Accepts reports whether the source accepts the given language.
func Accepts(s DataSource, lang Language) bool {
	for _, l := range s.Languages() {
		if l == lang {
			return true
		}
	}
	return false
}

// Resolver resolves a URI outside the local registry (e.g. an HTTP
// federation client). Registered with Registry.SetFallback.
type Resolver func(uri string) (DataSource, error)

// Registry maps source URIs to DataSources; it is the catalog of a
// mixed instance's D component.
type Registry struct {
	mu       sync.RWMutex
	sources  map[string]DataSource
	fallback Resolver
	// wrapper, once installed by Interpose, decorates every source that
	// enters the registry afterwards (Register and SetFallback included),
	// so wiring order cannot silently lose the decoration.
	wrapper func(DataSource) DataSource
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{sources: make(map[string]DataSource)}
}

// Register adds a source; a URI can only be registered once.
func (r *Registry) Register(s DataSource) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	uri := s.URI()
	if uri == "" {
		return fmt.Errorf("source: cannot register a source with empty URI")
	}
	if _, dup := r.sources[uri]; dup {
		return fmt.Errorf("source: URI %q already registered", uri)
	}
	if r.wrapper != nil {
		s = r.wrapper(s)
	}
	r.sources[uri] = s
	return nil
}

// SetFallback installs a resolver consulted when a URI is not
// registered locally (remote endpoints / dynamic discovery). An
// interposed wrapper applies to the new resolver's sources too.
func (r *Registry) SetFallback(f Resolver) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.wrapper != nil && f != nil {
		f = wrapResolver(f, r.wrapper)
	}
	r.fallback = f
}

// FallbackMemoSize bounds the number of dynamically discovered sources
// an interposed fallback keeps wrappers (and their caches) for; the
// least recently resolved are dropped and simply re-resolved on next
// use, so a long-running mediator cannot grow without limit.
const FallbackMemoSize = 256

// Interposed reports whether a wrapper is installed, letting callers
// avoid stacking decorators on an already-interposed registry.
func (r *Registry) Interposed() bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.wrapper != nil
}

// Interpose wraps every source in the registry — those currently
// registered, those registered later, and every source the fallback
// resolver produces — with wrap(s). Fallback resolutions are memoized
// per URI (bounded by FallbackMemoSize) so a dynamically discovered
// source keeps one stable wrapper (and one stable cache, when wrap is
// NewCached) across queries instead of being re-dialed and re-wrapped
// on every resolution.
func (r *Registry) Interpose(wrap func(DataSource) DataSource) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.wrapper = wrap
	for uri, s := range r.sources {
		r.sources[uri] = wrap(s)
	}
	if r.fallback != nil {
		r.fallback = wrapResolver(r.fallback, wrap)
	}
}

// wrapResolver decorates a fallback resolver's sources with wrap,
// memoizing resolutions per URI (bounded by FallbackMemoSize).
func wrapResolver(fb Resolver, wrap func(DataSource) DataSource) Resolver {
	var memoMu sync.Mutex
	memo := lru.New[DataSource](FallbackMemoSize)
	return func(uri string) (DataSource, error) {
		memoMu.Lock()
		s, ok := memo.Get(uri)
		memoMu.Unlock()
		if ok {
			return s, nil
		}
		inner, err := fb(uri)
		if err != nil {
			return nil, err
		}
		wrapped := wrap(inner)
		memoMu.Lock()
		if prev, dup := memo.Get(uri); dup {
			wrapped = prev // concurrent resolvers share one wrapper
		} else {
			memo.Put(uri, wrapped)
		}
		memoMu.Unlock()
		return wrapped, nil
	}
}

// Resolve returns the source for a URI, consulting the fallback
// resolver for unknown URIs that look remote.
func (r *Registry) Resolve(uri string) (DataSource, error) {
	r.mu.RLock()
	s, ok := r.sources[uri]
	fb := r.fallback
	r.mu.RUnlock()
	if ok {
		return s, nil
	}
	if fb != nil && (strings.HasPrefix(uri, "http://") || strings.HasPrefix(uri, "https://")) {
		return fb(uri)
	}
	return nil, fmt.Errorf("source: unknown source URI %q", uri)
}

// All returns the registered sources sorted by URI.
func (r *Registry) All() []DataSource {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]DataSource, 0, len(r.sources))
	for _, s := range r.sources {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URI() < out[j].URI() })
	return out
}

// ByLanguage returns registered sources accepting lang, sorted by URI.
func (r *Registry) ByLanguage(lang Language) []DataSource {
	var out []DataSource
	for _, s := range r.All() {
		if Accepts(s, lang) {
			out = append(out, s)
		}
	}
	return out
}
