// Package source defines the data-source abstraction of TATOOINE's
// mixed instances: every heterogeneous store (RDF graph, relational
// database, full-text document index, remote endpoint) is exposed to
// the mediator as a DataSource that evaluates native sub-queries and
// returns uniform tuple results. The registry resolves source URIs,
// including URIs discovered at query run time (dynamic source
// discovery, §2.2 of the paper).
package source

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"tatooine/internal/lru"
	"tatooine/internal/value"
)

// Model identifies a source's data model.
type Model uint8

const (
	RDFModel Model = iota
	RelationalModel
	DocumentModel
)

func (m Model) String() string {
	switch m {
	case RDFModel:
		return "rdf"
	case RelationalModel:
		return "relational"
	case DocumentModel:
		return "document"
	default:
		return fmt.Sprintf("Model(%d)", uint8(m))
	}
}

// Language identifies a sub-query language a source accepts.
type Language string

const (
	// LangBGP is the basic-graph-pattern syntax of internal/rdf.
	LangBGP Language = "bgp"
	// LangSQL is the SQL subset of internal/sqlparse.
	LangSQL Language = "sql"
	// LangSearch is the SEARCH syntax of internal/fulltext.
	LangSearch Language = "search"
)

// SubQuery is one native sub-query of a mixed query, destined for a
// single source.
type SubQuery struct {
	// Language the Text is written in.
	Language Language
	// Text is the native query.
	Text string
	// InVars names the parameters the query expects, in order. For SQL
	// and SEARCH texts they correspond positionally to '?' placeholders;
	// for BGP texts they name pattern variables to pre-bind. The
	// mediator supplies the bound values via Execute's params.
	InVars []string
	// Prune optionally carries one membership filter per InVar position
	// (nil entries mean "no filter"). Executors and federation
	// endpoints may skip binding tuples a filter provably excludes.
	// Filters never change results — only avoid empty probes — so they
	// take no part in cache keys or equality.
	Prune []ProbeFilter `json:"-"`
}

// ProbeFilter tests whether a normalized probe key may match at the
// target source (implemented by digest Bloom filters). Implementations
// must never answer false for a key that is actually present —
// semi-join pruning relies on the no-false-negative contract.
type ProbeFilter interface {
	MayContainKey(key string) bool
}

// Result is a uniform tuple result: column names and rows of values.
type Result struct {
	Cols []string
	Rows []value.Row
}

// Len returns the number of rows.
func (r *Result) Len() int { return len(r.Rows) }

// DataSource is a queryable member of a mixed instance.
type DataSource interface {
	// URI is the source's identifier inside the mixed instance.
	URI() string
	// Model reports the source's data model.
	Model() Model
	// Languages lists the sub-query languages the source accepts.
	Languages() []Language
	// Execute evaluates a native sub-query. params bind the query's
	// placeholders in order (bind joins push outer bindings here).
	Execute(q SubQuery, params []value.Value) (*Result, error)
	// EstimateCost returns an estimated result cardinality used to
	// order sub-queries by selectivity; negative means unknown.
	EstimateCost(q SubQuery, numParams int) int
}

// Accepts reports whether the source accepts the given language.
func Accepts(s DataSource, lang Language) bool {
	for _, l := range s.Languages() {
		if l == lang {
			return true
		}
	}
	return false
}

// Resolver resolves a URI outside the local registry (e.g. an HTTP
// federation client). Registered with Registry.SetFallback.
type Resolver func(uri string) (DataSource, error)

// Invalidator is implemented by source decorators (Cached) that hold
// memoized state derived from their inner source. Invalidate drops
// that state and returns how many result entries were discarded, so a
// mutated source stops serving pre-mutation rows before its TTL.
type Invalidator interface {
	Invalidate() int
}

// Registry maps source URIs to DataSources; it is the catalog of a
// mixed instance's D component.
type Registry struct {
	mu       sync.RWMutex
	sources  map[string]DataSource
	fallback Resolver
	// wrapper, once installed by Interpose, decorates every source that
	// enters the registry afterwards (Register and SetFallback included),
	// so wiring order cannot silently lose the decoration.
	wrapper func(DataSource) DataSource
	// memo, set when the fallback resolver is wrapped, indexes the
	// memoized wrappers of dynamically discovered sources so Lookup and
	// InvalidateCaches reach sources that never entered the registry.
	memo *resolverMemo
}

// resolverMemo bounds and indexes the stable wrappers of dynamically
// discovered sources (see Interpose).
type resolverMemo struct {
	mu  sync.Mutex
	lru *lru.Cache[DataSource]
}

func (m *resolverMemo) peek(uri string) (DataSource, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lru.Get(uri)
}

func (m *resolverMemo) clear() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lru.Clear()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{sources: make(map[string]DataSource)}
}

// Register adds a source; a URI can only be registered once.
func (r *Registry) Register(s DataSource) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	uri := s.URI()
	if uri == "" {
		return fmt.Errorf("source: cannot register a source with empty URI")
	}
	if _, dup := r.sources[uri]; dup {
		return fmt.Errorf("source: URI %q already registered", uri)
	}
	if r.wrapper != nil {
		s = r.wrapper(s)
	}
	r.sources[uri] = s
	return nil
}

// Deregister removes the source registered under uri, dropping its
// interposed wrapper (and thus its probe and estimate caches) with it,
// so a dropped source cannot keep serving cached rows. It reports
// whether a source was removed; the URI can be registered again later.
func (r *Registry) Deregister(uri string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.sources[uri]; !ok {
		return false
	}
	delete(r.sources, uri)
	return true
}

// SetFallback installs a resolver consulted when a URI is not
// registered locally (remote endpoints / dynamic discovery). An
// interposed wrapper applies to the new resolver's sources too.
func (r *Registry) SetFallback(f Resolver) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.wrapper != nil && f != nil {
		f, r.memo = wrapResolver(f, r.wrapper)
	} else {
		r.memo = nil
	}
	r.fallback = f
}

// FallbackMemoSize bounds the number of dynamically discovered sources
// an interposed fallback keeps wrappers (and their caches) for; the
// least recently resolved are dropped and simply re-resolved on next
// use, so a long-running mediator cannot grow without limit.
const FallbackMemoSize = 256

// Interposed reports whether a wrapper is installed, letting callers
// avoid stacking decorators on an already-interposed registry.
func (r *Registry) Interposed() bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.wrapper != nil
}

// Interpose wraps every source in the registry — those currently
// registered, those registered later, and every source the fallback
// resolver produces — with wrap(s). Fallback resolutions are memoized
// per URI (bounded by FallbackMemoSize) so a dynamically discovered
// source keeps one stable wrapper (and one stable cache, when wrap is
// NewCached) across queries instead of being re-dialed and re-wrapped
// on every resolution.
func (r *Registry) Interpose(wrap func(DataSource) DataSource) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.wrapper = wrap
	for uri, s := range r.sources {
		r.sources[uri] = wrap(s)
	}
	if r.fallback != nil {
		r.fallback, r.memo = wrapResolver(r.fallback, wrap)
	}
}

// Lookup returns the already-materialized source for uri — registered,
// or dynamically discovered and currently memoized — WITHOUT consulting
// the fallback resolver. Use it when resolution side effects (dialing
// an arbitrary URI, inserting a fresh wrapper into the memo) would be
// wrong, e.g. when targeting an invalidation.
func (r *Registry) Lookup(uri string) (DataSource, bool) {
	r.mu.RLock()
	s, ok := r.sources[uri]
	memo := r.memo
	r.mu.RUnlock()
	if ok {
		return s, true
	}
	if memo != nil {
		return memo.peek(uri)
	}
	return nil, false
}

// InvalidateCaches flushes every interposed probe cache: each
// registered source implementing Invalidator drops its memoized
// entries, and the fallback resolver's memoized wrappers for
// dynamically discovered sources are discarded entirely (they are
// re-dialed and re-wrapped fresh on next use). It returns the number
// of result entries dropped from registered sources' caches.
func (r *Registry) InvalidateCaches() int {
	r.mu.Lock()
	dropped := 0
	for _, s := range r.sources {
		if inv, ok := s.(Invalidator); ok {
			dropped += inv.Invalidate()
		}
	}
	memo := r.memo
	r.mu.Unlock()
	if memo != nil {
		memo.clear()
	}
	return dropped
}

// wrapResolver decorates a fallback resolver's sources with wrap,
// memoizing resolutions per URI (bounded by FallbackMemoSize). The
// returned memo lets the registry peek and clear the wrappers.
func wrapResolver(fb Resolver, wrap func(DataSource) DataSource) (Resolver, *resolverMemo) {
	memo := &resolverMemo{lru: lru.New[DataSource](FallbackMemoSize)}
	resolve := func(uri string) (DataSource, error) {
		if s, ok := memo.peek(uri); ok {
			return s, nil
		}
		inner, err := fb(uri)
		if err != nil {
			return nil, err
		}
		wrapped := wrap(inner)
		memo.mu.Lock()
		if prev, dup := memo.lru.Get(uri); dup {
			wrapped = prev // concurrent resolvers share one wrapper
		} else {
			memo.lru.Put(uri, wrapped)
		}
		memo.mu.Unlock()
		return wrapped, nil
	}
	return resolve, memo
}

// Resolve returns the source for a URI, consulting the fallback
// resolver for unknown URIs that look remote.
func (r *Registry) Resolve(uri string) (DataSource, error) {
	r.mu.RLock()
	s, ok := r.sources[uri]
	fb := r.fallback
	r.mu.RUnlock()
	if ok {
		return s, nil
	}
	if fb != nil && (strings.HasPrefix(uri, "http://") || strings.HasPrefix(uri, "https://")) {
		return fb(uri)
	}
	return nil, fmt.Errorf("source: unknown source URI %q", uri)
}

// All returns the registered sources sorted by URI.
func (r *Registry) All() []DataSource {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]DataSource, 0, len(r.sources))
	for _, s := range r.sources {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URI() < out[j].URI() })
	return out
}

// ByLanguage returns registered sources accepting lang, sorted by URI.
func (r *Registry) ByLanguage(lang Language) []DataSource {
	var out []DataSource
	for _, s := range r.All() {
		if Accepts(s, lang) {
			out = append(out, s)
		}
	}
	return out
}
