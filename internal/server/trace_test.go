package server_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"tatooine/internal/core"
	"tatooine/internal/federation"
	"tatooine/internal/obs"
	"tatooine/internal/rdf"
	"tatooine/internal/relstore"
	"tatooine/internal/server"
	"tatooine/internal/source"
)

// collectSpans flattens a span tree depth-first.
func collectSpans(d *obs.SpanData) []*obs.SpanData {
	if d == nil {
		return nil
	}
	out := []*obs.SpanData{d}
	for _, c := range d.Children {
		out = append(out, collectSpans(c)...)
	}
	return out
}

// TestTracePropagation runs a federated query against a real sourced
// style endpoint and checks cross-process trace propagation: the
// mediator's X-Tat-Trace-Id reaches the remote, the remote's span joins
// the client's trace, and the client's remote-call span splits its
// duration into server-side time and wire time that fit inside the
// observed span duration.
func TestTracePropagation(t *testing.T) {
	db := relstore.NewDatabase("insee")
	for _, q := range []string{
		"CREATE TABLE chomage (dept TEXT, taux FLOAT)",
		"INSERT INTO chomage VALUES ('75', 8.4), ('92', 7.2)",
	} {
		if _, err := db.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	fed := federation.Handler(source.NewRelSource("sql://insee", db))

	var mu sync.Mutex
	var remoteTraceIDs []string
	remote := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if id := r.Header.Get(obs.TraceHeader); id != "" {
			mu.Lock()
			remoteTraceIDs = append(remoteTraceIDs, id)
			mu.Unlock()
		}
		fed.ServeHTTP(w, r)
	}))
	defer remote.Close()

	g := rdf.NewGraph()
	g.AddAll(rdf.MustParse(`
@prefix : <http://t.example/> .
:p1 a :politician ; :position :headOfState ; :electedIn "75" .
:p2 a :politician ; :position :deputy ; :electedIn "92" .
`))
	in := core.NewInstance(g, core.WithPrefixes(map[string]string{"": "http://t.example/"}))
	c, err := federation.Dial(remote.URL)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.AddSource(c); err != nil {
		t.Fatal(err)
	}

	srv := server.New(in, server.Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, err := json.Marshal(server.QueryRequest{Query: testQuery, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/cmq", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr server.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if qr.Error != "" {
		t.Fatalf("query failed: %s", qr.Error)
	}
	if len(qr.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(qr.Rows))
	}
	if qr.Trace == nil {
		t.Fatal("no trace block on a traced request")
	}
	if qr.Trace.TraceID == "" {
		t.Fatal("trace block has no trace ID")
	}
	// The /cmq response also advertises the trace on its headers (the
	// obs middleware echoes what it joined or started).
	if got := resp.Header.Get(obs.TraceHeader); got != qr.Trace.TraceID {
		t.Fatalf("response %s = %q, trace block says %q", obs.TraceHeader, got, qr.Trace.TraceID)
	}

	// Every traced remote call carried the mediator's trace ID to the
	// endpoint — the remote spans joined the SAME trace.
	mu.Lock()
	gotIDs := append([]string(nil), remoteTraceIDs...)
	mu.Unlock()
	if len(gotIDs) == 0 {
		t.Fatal("remote endpoint saw no traced request")
	}
	for _, id := range gotIDs {
		if id != qr.Trace.TraceID {
			t.Fatalf("remote saw trace %q, client trace is %q", id, qr.Trace.TraceID)
		}
	}

	// The client-side remote-call span records the remote's root span ID
	// and splits observed latency into server-side vs wire time; both
	// must fit inside the span's own duration.
	var remoteSpans []*obs.SpanData
	for _, sp := range collectSpans(qr.Trace) {
		if strings.HasPrefix(sp.Name, "remote ") {
			remoteSpans = append(remoteSpans, sp)
		}
	}
	if len(remoteSpans) == 0 {
		t.Fatal("no remote call spans in the trace")
	}
	for _, sp := range remoteSpans {
		if sp.Attrs["remoteSpan"] == "" {
			t.Fatalf("remote span %q has no remoteSpan attr: %v", sp.Name, sp.Attrs)
		}
		serverNs, err := strconv.ParseInt(sp.Attrs["serverNs"], 10, 64)
		if err != nil {
			t.Fatalf("remote span %q serverNs attr: %v", sp.Name, err)
		}
		if serverNs <= 0 {
			t.Fatalf("remote span %q serverNs = %d, want > 0", sp.Name, serverNs)
		}
		total := serverNs
		if w := sp.Attrs["wireNs"]; w != "" {
			wireNs, err := strconv.ParseInt(w, 10, 64)
			if err != nil {
				t.Fatalf("remote span %q wireNs attr: %v", sp.Name, err)
			}
			total += wireNs
		}
		// serverNs + wireNs is the observed RTT, which the span fully
		// contains (it closes after the response header is read).
		if total > sp.DurationNs {
			t.Fatalf("remote span %q: serverNs+wireNs = %dns exceeds span duration %dns",
				sp.Name, total, sp.DurationNs)
		}
	}
}

// TestStreamTraceTrailer checks the NDJSON path: a traced streamed
// query ends with a trailer record carrying the span tree.
func TestStreamTraceTrailer(t *testing.T) {
	in, _ := fixture(t)
	srv := server.New(in, server.Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, err := json.Marshal(server.QueryRequest{Query: testQuery, Stream: true, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/cmq", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q, want application/x-ndjson", ct)
	}
	dec := json.NewDecoder(resp.Body)
	var last server.StreamRecord
	rows := 0
	for dec.More() {
		var rec server.StreamRecord
		if err := dec.Decode(&rec); err != nil {
			t.Fatal(err)
		}
		if rec.Error != "" {
			t.Fatalf("stream failed: %s", rec.Error)
		}
		if rec.Row != nil {
			rows++
		}
		last = rec
	}
	if rows != 1 {
		t.Fatalf("streamed rows = %d, want 1", rows)
	}
	if last.Stats == nil {
		t.Fatal("stream did not end with a stats trailer")
	}
	if last.Trace == nil {
		t.Fatal("traced stream trailer has no trace")
	}
	if last.Trace.TraceID == "" {
		t.Fatal("trailer trace has no trace ID")
	}
	var names []string
	for _, sp := range collectSpans(last.Trace) {
		names = append(names, sp.Name)
	}
	if !strings.Contains(strings.Join(names, " "), "node") {
		t.Fatalf("trailer trace has no node spans: %v", names)
	}
}
