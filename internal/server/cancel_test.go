package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tatooine/internal/core"
	"tatooine/internal/relstore"
	"tatooine/internal/server"
	"tatooine/internal/source"
	"tatooine/internal/value"
)

// ctxProbeSource is a context-aware probe target: each probe waits for
// release (or its context), recording whether it was cancelled.
type ctxProbeSource struct {
	uri     string
	started chan struct{} // one tick per probe entering
	release chan struct{} // closed to let probes answer

	mu        sync.Mutex
	cancelled int
	completed int
}

func (s *ctxProbeSource) URI() string                           { return s.uri }
func (s *ctxProbeSource) Model() source.Model                   { return source.RelationalModel }
func (s *ctxProbeSource) Languages() []source.Language          { return []source.Language{source.LangSQL} }
func (s *ctxProbeSource) EstimateCost(source.SubQuery, int) int { return 1 }

func (s *ctxProbeSource) Execute(q source.SubQuery, params []value.Value) (*source.Result, error) {
	return s.ExecuteContext(context.Background(), q, params)
}

func (s *ctxProbeSource) ExecuteContext(ctx context.Context, q source.SubQuery, params []value.Value) (*source.Result, error) {
	s.started <- struct{}{}
	select {
	case <-s.release:
		s.mu.Lock()
		s.completed++
		s.mu.Unlock()
		return &source.Result{Cols: []string{"k", "v"}, Rows: []value.Row{{params[0], value.NewString("v")}}}, nil
	case <-ctx.Done():
		s.mu.Lock()
		s.cancelled++
		s.mu.Unlock()
		return nil, ctx.Err()
	}
}

func probeFixture(t *testing.T) (*core.Instance, *ctxProbeSource) {
	t.Helper()
	in := core.NewInstance(nil)
	db := relstore.NewDatabase("seed")
	for _, q := range []string{
		"CREATE TABLE seed (k TEXT)",
		"INSERT INTO seed VALUES ('a')",
	} {
		if _, err := db.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.AddSource(source.NewRelSource("sql://seed", db)); err != nil {
		t.Fatal(err)
	}
	probe := &ctxProbeSource{uri: "sql://probe", started: make(chan struct{}, 8), release: make(chan struct{})}
	if err := in.AddSource(probe); err != nil {
		t.Fatal(err)
	}
	return in, probe
}

const probeQuery = `
QUERY q(?k, ?v)
FROM <sql://seed> OUT(?k) { SELECT k FROM seed }
FROM <sql://probe> IN(?k) OUT(?k, ?v) { SELECT k, v FROM t WHERE k = ? }
`

func postCMQContext(ctx context.Context, t *testing.T, h *server.Server, query string) (int, server.QueryResponse) {
	t.Helper()
	body, err := json.Marshal(server.QueryRequest{Query: query})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/cmq", bytes.NewReader(body)).WithContext(ctx)
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.Handler().ServeHTTP(rec, req)
	var qr server.QueryResponse
	if err := json.NewDecoder(rec.Body).Decode(&qr); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return rec.Code, qr
}

// TestRequestCancellationReachesProbes: when the only request for a
// query goes away, its in-flight probe is cancelled instead of running
// to completion with nobody waiting.
func TestRequestCancellationReachesProbes(t *testing.T) {
	in, probe := probeFixture(t)
	// ProbeBatch 1: the context-aware per-tuple path (the batch path
	// would fall back per tuple anyway, ctxProbeSource has no batches).
	srv := server.New(in, server.Options{Exec: core.ExecOptions{Parallel: true, ProbeBatch: 1}})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		status, qr := postCMQContext(ctx, t, srv, probeQuery)
		if status == 200 {
			t.Errorf("cancelled request got 200: %+v", qr)
		}
		if !strings.Contains(qr.Error, "context canceled") {
			t.Errorf("cancelled request error = %q", qr.Error)
		}
	}()
	<-probe.started
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled request did not return")
	}
	probe.mu.Lock()
	defer probe.mu.Unlock()
	if probe.cancelled != 1 || probe.completed != 0 {
		t.Errorf("probe saw cancelled=%d completed=%d, want 1/0", probe.cancelled, probe.completed)
	}
}

// TestLeaderDisconnectDoesNotPoisonFollowers: a coalesced follower
// keeps the shared execution alive when the single-flight leader's
// client disconnects — the execution is cancelled only when the LAST
// interested request goes away.
func TestLeaderDisconnectDoesNotPoisonFollowers(t *testing.T) {
	in, probe := probeFixture(t)
	srv := server.New(in, server.Options{Exec: core.ExecOptions{Parallel: true, ProbeBatch: 1}})

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		postCMQContext(leaderCtx, t, srv, probeQuery) // outcome irrelevant: the client left
	}()
	<-probe.started // the leader's execution reached the probe

	followerDone := make(chan struct{})
	go func() {
		defer close(followerDone)
		status, qr := postCMQContext(context.Background(), t, srv, probeQuery)
		if status != 200 || len(qr.Rows) != 1 {
			t.Errorf("follower after leader disconnect: status %d, %+v", status, qr)
		}
		if !qr.Cached {
			t.Errorf("follower should share the leader's result (cached=true): %+v", qr)
		}
	}()

	// Wait until the follower joined the flight, then disconnect the
	// leader: with one waiter left the probe must NOT be cancelled.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Coalesced == 0 {
		if time.Now().After(deadline) {
			t.Fatal("follower never coalesced onto the leader's flight")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancelLeader()
	time.Sleep(50 * time.Millisecond) // would cancel the probe if the accounting were wrong
	close(probe.release)

	select {
	case <-followerDone:
	case <-time.After(5 * time.Second):
		t.Fatal("follower did not complete")
	}
	<-leaderDone
	probe.mu.Lock()
	defer probe.mu.Unlock()
	if probe.cancelled != 0 || probe.completed != 1 {
		t.Errorf("probe saw cancelled=%d completed=%d, want 0/1", probe.cancelled, probe.completed)
	}
}
