package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tatooine/internal/core"
	"tatooine/internal/rdf"
	"tatooine/internal/relstore"
	"tatooine/internal/server"
	"tatooine/internal/source"
	"tatooine/internal/value"
)

// countingSource wraps a DataSource and counts Execute invocations that
// actually reach it (i.e. probe-cache misses once decorated).
type countingSource struct {
	source.DataSource
	executes atomic.Int64
	block    chan struct{} // when non-nil, Execute signals started and waits
	started  chan struct{}
}

func (c *countingSource) Execute(q source.SubQuery, params []value.Value) (*source.Result, error) {
	c.executes.Add(1)
	if c.block != nil {
		c.started <- struct{}{}
		<-c.block
	}
	return c.DataSource.Execute(q, params)
}

// fixture builds a small mixed instance (graph + relational source)
// whose second atom runs as a bind join, and returns the counting
// wrapper around the relational source.
func fixture(t testing.TB) (*core.Instance, *countingSource) {
	g := rdf.NewGraph()
	g.AddAll(rdf.MustParse(`
@prefix : <http://t.example/> .
:p1 a :politician ; :position :headOfState ; :electedIn "75" .
:p2 a :politician ; :position :deputy ; :electedIn "92" .
`))
	in := core.NewInstance(g, core.WithPrefixes(map[string]string{"": "http://t.example/"}))

	db := relstore.NewDatabase("insee")
	for _, q := range []string{
		"CREATE TABLE chomage (dept TEXT, taux FLOAT)",
		"INSERT INTO chomage VALUES ('75', 8.4), ('92', 7.2)",
	} {
		if _, err := db.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	cs := &countingSource{DataSource: source.NewRelSource("sql://insee", db)}
	if err := in.AddSource(cs); err != nil {
		t.Fatal(err)
	}
	return in, cs
}

const testQuery = `
QUERY q(?dept, ?taux)
GRAPH { ?x :position :headOfState . ?x :electedIn ?dept }
FROM <sql://insee> IN(?dept) OUT(?dept, ?taux)
  { SELECT dept, taux FROM chomage WHERE dept = ? }
`

func postCMQ(t testing.TB, url, query string) (int, server.QueryResponse) {
	t.Helper()
	body, err := json.Marshal(server.QueryRequest{Query: query})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/cmq", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr server.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp.StatusCode, qr
}

func TestServeCacheHitZeroesSubQueries(t *testing.T) {
	in, _ := fixture(t)
	srv := server.New(in, server.Options{Exec: core.ExecOptions{Parallel: true}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, first := postCMQ(t, ts.URL, testQuery)
	if status != http.StatusOK {
		t.Fatalf("first request: status %d, %+v", status, first)
	}
	if first.Cached {
		t.Error("first request reported cached")
	}
	if first.Stats.SubQueries == 0 {
		t.Errorf("first request shipped no sub-queries: %+v", first.Stats)
	}
	if len(first.Rows) != 1 || first.Rows[0][0].Str() != "75" {
		t.Fatalf("rows: %+v", first.Rows)
	}

	// Identical up to clause-level whitespace and comments (sub-query
	// block bytes unchanged): must hit the result cache with zeroed
	// stats (nothing executed).
	variant := "# same query, different surface syntax\nQUERY  q(?dept,  ?taux)\n\n" +
		"GRAPH  { ?x :position :headOfState . ?x :electedIn ?dept }\n" +
		"FROM  <sql://insee>  IN(?dept)  OUT(?dept, ?taux)\n" +
		"  { SELECT dept, taux FROM chomage WHERE dept = ? }\n"
	status, second := postCMQ(t, ts.URL, variant)
	if status != http.StatusOK {
		t.Fatalf("second request: status %d", status)
	}
	if !second.Cached {
		t.Error("second request missed the result cache")
	}
	if second.Stats.SubQueries != 0 {
		t.Errorf("cached request reported %d sub-queries", second.Stats.SubQueries)
	}
	if len(second.Rows) != 1 || second.Rows[0][0].Str() != "75" {
		t.Fatalf("cached rows: %+v", second.Rows)
	}

	st := srv.Stats()
	if st.Requests != 2 || st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Errorf("server stats: %+v", st)
	}
}

func TestServeProbeCacheAcrossQueries(t *testing.T) {
	in, cs := fixture(t)
	srv := server.New(in, server.Options{Exec: core.ExecOptions{Parallel: true}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if status, _ := postCMQ(t, ts.URL, testQuery); status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	after1 := cs.executes.Load()
	if after1 == 0 {
		t.Fatal("no probe reached the source")
	}

	// A textually different query (result-cache miss) issuing the same
	// bind-join probes: the probe cache must answer them from memory.
	status, qr := postCMQ(t, ts.URL, testQuery+"LIMIT 1\n")
	if status != http.StatusOK || qr.Cached {
		t.Fatalf("status %d cached=%v", status, qr.Cached)
	}
	if qr.Stats.SubQueries == 0 {
		t.Errorf("limit query executed nothing: %+v", qr.Stats)
	}
	if got := cs.executes.Load(); got != after1 {
		t.Errorf("probe cache missed: %d source executions after second query (was %d)", got, after1)
	}
}

func TestServeMalformedQuery(t *testing.T) {
	in, _ := fixture(t)
	srv := server.New(in, server.Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for name, body := range map[string]string{
		"bad json":    `{"query": `,
		"empty query": `{"query": ""}`,
		"parse error": `{"query": "QUERY oops("}`,
	} {
		resp, err := http.Post(ts.URL+"/cmq", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var qr server.QueryResponse
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Errorf("%s: non-JSON error response: %v", name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
		if qr.Error == "" {
			t.Errorf("%s: empty error message", name)
		}
	}

	// Unknown source is an execution error, not a client error.
	status, qr := postCMQ(t, ts.URL, `
QUERY q(?a)
FROM <sql://nope> OUT(?a) { SELECT dept FROM chomage }
`)
	if status != http.StatusUnprocessableEntity || qr.Error == "" {
		t.Errorf("unknown source: status %d error %q", status, qr.Error)
	}
}

func TestServeRawTextBody(t *testing.T) {
	in, _ := fixture(t)
	srv := server.New(in, server.Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/cmq", "text/plain", strings.NewReader(testQuery))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("raw body: status %d", resp.StatusCode)
	}
	var qr server.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Rows) != 1 {
		t.Errorf("raw body rows: %+v", qr.Rows)
	}
}

func TestServeHealthzAndStats(t *testing.T) {
	in, _ := fixture(t)
	srv := server.New(in, server.Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: status %d", resp.StatusCode)
	}

	postCMQ(t, ts.URL, testQuery)
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st server.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != 1 || st.SubQueries == 0 || st.CacheEntries != 1 {
		t.Errorf("stats: %+v", st)
	}
}

func TestServeConcurrentRequests(t *testing.T) {
	in, _ := fixture(t)
	srv := server.New(in, server.Options{Exec: core.ExecOptions{Parallel: true}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	queries := []string{
		testQuery,
		testQuery + "LIMIT 1\n",
		strings.Replace(testQuery, ":headOfState", ":deputy", 1),
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := queries[i%len(queries)]
			status, qr := postCMQ(t, ts.URL, q)
			if status != http.StatusOK {
				errs <- fmt.Sprintf("request %d: status %d (%s)", i, status, qr.Error)
				return
			}
			if len(qr.Rows) != 1 {
				errs <- fmt.Sprintf("request %d: rows %+v", i, qr.Rows)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if st := srv.Stats(); st.Requests != 16 || st.Errors != 0 {
		t.Errorf("stats after concurrent load: %+v", st)
	}
}

func TestServeSingleFlightCoalesces(t *testing.T) {
	in, cs := fixture(t)
	cs.block = make(chan struct{})
	cs.started = make(chan struct{}, 1)
	srv := server.New(in, server.Options{Exec: core.ExecOptions{Parallel: true}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	results := make(chan server.QueryResponse, 2)
	go func() {
		_, qr := postCMQ(t, ts.URL, testQuery)
		results <- qr
	}()
	<-cs.started // leader is mid-execution

	go func() {
		_, qr := postCMQ(t, ts.URL, testQuery)
		results <- qr
	}()
	// Wait until the follower has joined the in-flight call, then
	// release the leader.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Coalesced == 0 {
		if time.Now().After(deadline) {
			t.Fatal("follower never coalesced")
		}
		time.Sleep(2 * time.Millisecond)
	}
	cs.block <- struct{}{}
	close(cs.block)

	for i := 0; i < 2; i++ {
		qr := <-results
		if len(qr.Rows) != 1 {
			t.Fatalf("result %d: %+v", i, qr)
		}
	}
	if got := cs.executes.Load(); got != 1 {
		t.Errorf("source executed %d times, want 1 (single-flight)", got)
	}
	if st := srv.Stats(); st.Coalesced != 1 {
		t.Errorf("coalesced count: %+v", st)
	}
}

// TestServeLiteralWhitespaceNotConflated is the regression test for the
// normalization bug: two queries differing only inside a quoted literal
// must not share a result-cache entry.
func TestServeLiteralWhitespaceNotConflated(t *testing.T) {
	in, _ := fixture(t)
	srv := server.New(in, server.Options{Exec: core.ExecOptions{Parallel: true}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	one := `
QUERY q(?dept, ?taux)
FROM <sql://insee> OUT(?dept, ?taux) { SELECT dept, taux FROM chomage WHERE dept = '75' }
`
	two := strings.Replace(one, "'75'", "' 75'", 1)
	status, r1 := postCMQ(t, ts.URL, one)
	if status != http.StatusOK || len(r1.Rows) != 1 {
		t.Fatalf("first: status %d rows %+v", status, r1.Rows)
	}
	status, r2 := postCMQ(t, ts.URL, two)
	if status != http.StatusOK {
		t.Fatalf("second: status %d", status)
	}
	if r2.Cached {
		t.Fatal("literal-distinct query hit the other query's cache entry")
	}
	if len(r2.Rows) != 0 {
		t.Errorf("' 75' should match nothing, got %+v", r2.Rows)
	}
}

// TestServeNoResultCacheDisablesCoalescing: with ResultCacheSize < 0
// every request executes for itself — no cache, no single-flight.
func TestServeNoResultCacheDisablesCoalescing(t *testing.T) {
	in, cs := fixture(t)
	srv := server.New(in, server.Options{
		ResultCacheSize: -1,
		ProbeCacheSize:  -1,
		Exec:            core.ExecOptions{Parallel: true},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		status, qr := postCMQ(t, ts.URL, testQuery)
		if status != http.StatusOK || qr.Cached {
			t.Fatalf("request %d: status %d cached=%v", i, status, qr.Cached)
		}
		if qr.Stats.SubQueries == 0 {
			t.Errorf("request %d executed nothing", i)
		}
	}
	if got := cs.executes.Load(); got != 3 {
		t.Errorf("source executed %d times, want 3 (no caching anywhere)", got)
	}
	if st := srv.Stats(); st.CacheHits != 0 || st.Coalesced != 0 || st.CacheEntries != 0 {
		t.Errorf("stats: %+v", st)
	}
}

// TestServeOversizedBodyRejected: a body over the 1 MB cap must be
// rejected outright, never truncated to a still-parseable prefix.
func TestServeOversizedBodyRejected(t *testing.T) {
	in, cs := fixture(t)
	srv := server.New(in, server.Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	big := testQuery + "# " + strings.Repeat("x", 1<<20) + "\n"
	resp, err := http.Post(ts.URL+"/cmq", "text/plain", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized body: status %d, want 400", resp.StatusCode)
	}
	if got := cs.executes.Load(); got != 0 {
		t.Errorf("oversized body reached execution: %d source calls", got)
	}
}

// TestCanonicalKeySurfaceVariants: the cache key comes from the parsed
// query, so surface-syntax variants share a key and any semantic
// difference — including bytes inside sub-query blocks and
// hash-namespace IRIs — splits it.
func TestCanonicalKeySurfaceVariants(t *testing.T) {
	key := func(text string) string {
		q, _, err := core.ParseCMQ(text)
		if err != nil {
			t.Fatalf("parse %q: %v", text, err)
		}
		return q.CanonicalKey()
	}
	base := "QUERY q(?dept)\nFROM <sql://insee> OUT(?dept) { SELECT dept FROM chomage WHERE dept = '75' }"
	cases := []struct {
		name, a, b string
		same       bool
	}{
		{"whitespace between clauses",
			base,
			"QUERY   q(?dept)\n\n\tFROM  <sql://insee>  OUT(?dept)  { SELECT dept FROM chomage WHERE dept = '75' }",
			true},
		{"comment outside blocks",
			base,
			"# lead comment\n" + base,
			true},
		{"whitespace inside a quoted literal",
			base,
			strings.Replace(base, "'75'", "' 75'", 1),
			false},
		{"hash-namespace IRI difference",
			"PREFIX ex: <http://ex/ns#A>\n" + base,
			"PREFIX ex: <http://ex/ns#B>\n" + base,
			false},
		{"newline inside block is preserved verbatim",
			strings.Replace(base, "WHERE dept = '75'", "WHERE\ndept = '75'", 1),
			strings.Replace(base, "WHERE dept = '75'", "WHERE dept = '75'", 1),
			false},
		{"limit difference",
			base,
			base + "\nLIMIT 1",
			false},
		{"distinct difference",
			base,
			base + "\nDISTINCT",
			false},
	}
	for _, c := range cases {
		if got := key(c.a) == key(c.b); got != c.same {
			t.Errorf("%s: key equality %v, want %v", c.name, got, c.same)
		}
	}
}

// TestServerReuseDoesNotStackWrappers: a second Server over the same
// instance must not wrap sources in a second Cached layer.
func TestServerReuseDoesNotStackWrappers(t *testing.T) {
	in, _ := fixture(t)
	server.New(in, server.Options{})
	server.New(in, server.Options{})
	s, err := in.ResolveSource("sql://insee")
	if err != nil {
		t.Fatal(err)
	}
	c, ok := s.(*source.Cached)
	if !ok {
		t.Fatalf("source not wrapped: %T", s)
	}
	if _, double := c.Unwrap().(*source.Cached); double {
		t.Error("second server.New stacked a Cached inside a Cached")
	}
}
