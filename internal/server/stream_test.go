package server_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tatooine/internal/core"
	"tatooine/internal/relstore"
	"tatooine/internal/server"
	"tatooine/internal/source"
	"tatooine/internal/value"
)

// multiKeyFixture seeds an instance with several keys and a local
// relational probe target, so a streamed bind join produces several
// row batches.
func multiKeyFixture(t *testing.T, keys int) *core.Instance {
	t.Helper()
	in := core.NewInstance(nil)
	seed := relstore.NewDatabase("seed")
	if _, err := seed.Exec("CREATE TABLE seed (k TEXT)"); err != nil {
		t.Fatal(err)
	}
	probe := relstore.NewDatabase("probe")
	if _, err := probe.Exec("CREATE TABLE t (k TEXT, v TEXT)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < keys; i++ {
		if _, err := seed.Exec(fmt.Sprintf("INSERT INTO seed VALUES ('k%02d')", i)); err != nil {
			t.Fatal(err)
		}
		if _, err := probe.Exec(fmt.Sprintf("INSERT INTO t VALUES ('k%02d', 'v%02d')", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.AddSource(source.NewRelSource("sql://seed", seed)); err != nil {
		t.Fatal(err)
	}
	if err := in.AddSource(source.NewRelSource("sql://probe", probe)); err != nil {
		t.Fatal(err)
	}
	return in
}

// postStream POSTs a streamed /cmq request and decodes the NDJSON
// response line by line.
func postStream(ctx context.Context, t *testing.T, srv *server.Server, query string, viaAccept bool) (int, string, []server.StreamRecord) {
	t.Helper()
	req := server.QueryRequest{Query: query, Stream: !viaAccept}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r := httptest.NewRequest("POST", "/cmq", bytes.NewReader(body)).WithContext(ctx)
	r.Header.Set("Content-Type", "application/json")
	if viaAccept {
		r.Header.Set("Accept", "application/x-ndjson")
	}
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, r)
	var records []server.StreamRecord
	sc := bufio.NewScanner(rec.Body)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		var sr server.StreamRecord
		if err := json.Unmarshal(sc.Bytes(), &sr); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		records = append(records, sr)
	}
	return rec.Code, rec.Header().Get("Content-Type"), records
}

// splitRecords classifies a streamed response into its framing parts
// and asserts the sequencing: header first, rows in the middle,
// exactly one terminator (trailer or error) last.
func splitRecords(t *testing.T, records []server.StreamRecord) (cols []string, rows []value.Row, trailer, errRec *server.StreamRecord) {
	t.Helper()
	if len(records) == 0 {
		t.Fatal("empty stream")
	}
	if records[0].Cols == nil {
		t.Fatalf("first record is not the header: %+v", records[0])
	}
	cols = records[0].Cols
	last := records[len(records)-1]
	switch {
	case last.Stats != nil:
		trailer = &last
	case last.Error != "":
		errRec = &last
	default:
		t.Fatalf("stream does not end with a trailer or error record: %+v", last)
	}
	for _, rec := range records[1 : len(records)-1] {
		if rec.Row == nil {
			t.Fatalf("non-row record in the middle of the stream: %+v", rec)
		}
		rows = append(rows, rec.Row)
	}
	return cols, rows, trailer, errRec
}

const streamedQuery = `
QUERY q(?k, ?v)
FROM <sql://seed> OUT(?k) { SELECT k FROM seed }
FROM <sql://probe> IN(?k) OUT(?k, ?v) { SELECT k, v FROM t WHERE k = ? }
`

// TestStreamCMQ: the NDJSON response carries the same rows as the JSON
// path — header, one record per row, stats trailer — whether requested
// through the body flag or the Accept header, and the in-flight gauge
// returns to zero.
func TestStreamCMQ(t *testing.T) {
	const keys = 9
	for _, viaAccept := range []bool{false, true} {
		in := multiKeyFixture(t, keys)
		srv := server.New(in, server.Options{
			ResultCacheSize: -1, // no cache: both requests must execute
			Exec:            core.ExecOptions{Parallel: true, ProbeBatch: 1},
		})
		status, ctype, records := postStream(context.Background(), t, srv, streamedQuery, viaAccept)
		if status != 200 || ctype != "application/x-ndjson" {
			t.Fatalf("viaAccept=%v: status %d, content-type %q", viaAccept, status, ctype)
		}
		cols, rows, trailer, errRec := splitRecords(t, records)
		if errRec != nil {
			t.Fatalf("stream failed: %q", errRec.Error)
		}
		if want := []string{"k", "v"}; len(cols) != 2 || cols[0] != want[0] || cols[1] != want[1] {
			t.Fatalf("cols = %v, want %v", cols, want)
		}
		if len(rows) != keys {
			t.Fatalf("streamed %d rows, want %d", len(rows), keys)
		}
		if trailer.Cached == nil || *trailer.Cached {
			t.Fatalf("trailer cached = %+v, want explicit false", trailer.Cached)
		}
		if trailer.Stats.SubQueries == 0 {
			t.Fatalf("trailer stats report no sub-queries: %+v", trailer.Stats)
		}
		st := srv.Stats()
		if st.Streamed != 1 || st.InFlightStreams != 0 {
			t.Fatalf("stats streamed=%d inFlight=%d, want 1/0", st.Streamed, st.InFlightStreams)
		}
		if st.SubQueries == 0 {
			t.Fatalf("server sub-query counter not updated from the stream trailer: %+v", st)
		}
	}
}

// TestStreamMatchesJSONRows: row multisets of the streamed and the
// plain JSON responses are identical.
func TestStreamMatchesJSONRows(t *testing.T) {
	in := multiKeyFixture(t, 7)
	srv := server.New(in, server.Options{
		ResultCacheSize: -1,
		Exec:            core.ExecOptions{Parallel: true, ProbeBatch: 1},
	})
	status, qr := postCMQContext(context.Background(), t, srv, streamedQuery)
	if status != 200 {
		t.Fatalf("JSON path: status %d %+v", status, qr)
	}
	_, _, records := postStream(context.Background(), t, srv, streamedQuery, false)
	_, rows, _, errRec := splitRecords(t, records)
	if errRec != nil {
		t.Fatalf("stream failed: %q", errRec.Error)
	}
	key := func(rs []value.Row) map[string]int {
		m := make(map[string]int)
		for _, r := range rs {
			m[r.Key()]++
		}
		return m
	}
	got, want := key(rows), key(qr.Rows)
	if len(got) != len(want) {
		t.Fatalf("row multiset diverges: %v vs %v", got, want)
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("row %q: streamed %d, JSON %d", k, got[k], n)
		}
	}
}

// TestStreamCacheHitReplays: a result cached by the JSON path replays
// over NDJSON in the same framing, with the trailer marking it cached.
func TestStreamCacheHitReplays(t *testing.T) {
	in := multiKeyFixture(t, 5)
	srv := server.New(in, server.Options{Exec: core.ExecOptions{Parallel: true, ProbeBatch: 1}})
	if status, qr := postCMQContext(context.Background(), t, srv, streamedQuery); status != 200 {
		t.Fatalf("priming request: status %d %+v", status, qr)
	}
	_, _, records := postStream(context.Background(), t, srv, streamedQuery, false)
	_, rows, trailer, errRec := splitRecords(t, records)
	if errRec != nil {
		t.Fatalf("replay failed: %q", errRec.Error)
	}
	if len(rows) != 5 {
		t.Fatalf("replayed %d rows, want 5", len(rows))
	}
	if trailer.Cached == nil || !*trailer.Cached {
		t.Fatalf("trailer cached = %+v, want true", trailer.Cached)
	}
	if st := srv.Stats(); st.CacheHits != 1 || st.InFlightStreams != 0 {
		t.Fatalf("stats hits=%d inFlight=%d, want 1/0", st.CacheHits, st.InFlightStreams)
	}
}

// dyingSource answers its first probe and fails every later one — a
// remote source dying mid-query.
type dyingSource struct {
	uri   string
	calls atomic.Int64
}

func (s *dyingSource) URI() string                           { return s.uri }
func (s *dyingSource) Model() source.Model                   { return source.RelationalModel }
func (s *dyingSource) Languages() []source.Language          { return []source.Language{source.LangSQL} }
func (s *dyingSource) EstimateCost(source.SubQuery, int) int { return 1 }

func (s *dyingSource) Execute(q source.SubQuery, params []value.Value) (*source.Result, error) {
	return s.ExecuteContext(context.Background(), q, params)
}

func (s *dyingSource) ExecuteContext(ctx context.Context, q source.SubQuery, params []value.Value) (*source.Result, error) {
	if s.calls.Add(1) > 1 {
		return nil, errors.New("remote went away")
	}
	return &source.Result{Cols: []string{"k", "v"}, Rows: []value.Row{{params[0], value.NewString("v")}}}, nil
}

// TestStreamMidQueryRemoteDeath: when a remote dies after the first
// batch is already on the wire, the client receives the emitted rows
// followed by a terminal error record (the 200 status is long since
// sent), and the server leaks no in-flight stream.
func TestStreamMidQueryRemoteDeath(t *testing.T) {
	in := core.NewInstance(nil)
	seed := relstore.NewDatabase("seed")
	if _, err := seed.Exec("CREATE TABLE seed (k TEXT)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := seed.Exec(fmt.Sprintf("INSERT INTO seed VALUES ('k%d')", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.AddSource(source.NewRelSource("sql://seed", seed)); err != nil {
		t.Fatal(err)
	}
	if err := in.AddSource(&dyingSource{uri: "sql://probe"}); err != nil {
		t.Fatal(err)
	}
	srv := server.New(in, server.Options{
		ResultCacheSize: -1,
		// Fan-out 1, per-tuple probes: the first probe's row is on the
		// wire before the second probe fails.
		Exec: core.ExecOptions{Parallel: true, ProbeBatch: 1, MaxFanout: 1},
	})
	status, _, records := postStream(context.Background(), t, srv, streamedQuery, false)
	if status != 200 {
		t.Fatalf("status %d, want 200 (error struck after the status line)", status)
	}
	_, rows, trailer, errRec := splitRecords(t, records)
	if trailer != nil || errRec == nil {
		t.Fatalf("stream must end with an error record, got trailer=%+v err=%+v", trailer, errRec)
	}
	if !strings.Contains(errRec.Error, "remote went away") {
		t.Fatalf("terminal error = %q, want the remote's failure", errRec.Error)
	}
	if len(rows) == 0 {
		t.Fatal("rows emitted before the failure must reach the client")
	}
	st := srv.Stats()
	if st.InFlightStreams != 0 {
		t.Fatalf("in-flight streams leaked: %+v", st)
	}
	if st.Errors == 0 {
		t.Fatalf("mid-stream failure not counted: %+v", st)
	}
}

// TestStreamClientDisconnectCancelsPipeline: the request context is
// the pipeline context — a client going away mid-stream cancels the
// in-flight probes instead of letting the query run for nobody.
func TestStreamClientDisconnectCancelsPipeline(t *testing.T) {
	in, probe := probeFixture(t)
	srv := server.New(in, server.Options{
		ResultCacheSize: -1,
		Exec:            core.ExecOptions{Parallel: true, ProbeBatch: 1},
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _, records := postStream(ctx, t, srv, probeQuery, false)
		if len(records) == 0 || records[len(records)-1].Error == "" {
			t.Errorf("disconnected stream should end with an error record: %+v", records)
		}
	}()
	<-probe.started
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("disconnected stream did not unwind")
	}
	probe.mu.Lock()
	defer probe.mu.Unlock()
	if probe.cancelled != 1 || probe.completed != 0 {
		t.Errorf("probe saw cancelled=%d completed=%d, want 1/0", probe.cancelled, probe.completed)
	}
	if st := srv.Stats(); st.InFlightStreams != 0 {
		t.Fatalf("in-flight streams leaked: %+v", st)
	}
}
