// Package server turns a mixed instance into a long-running HTTP
// mediator service: one shared core.Instance answers concurrent mixed
// queries, with an LRU result cache keyed on (instance epoch, the
// parsed query's canonical form core.CMQ.CanonicalKey), a
// single-flight guard so identical concurrent queries execute once,
// and a per-source sub-query cache (source.Cached) underneath so
// repeated bind-join probes hit memory instead of the network.
//
// The instance is mutable over HTTP: POST /graph inserts triples,
// POST /sources registers a remote endpoint, DELETE /sources drops
// one. Every mutation bumps the instance epoch; because result-cache
// and single-flight keys carry the epoch, the very next POST /cmq can
// never be answered from a pre-mutation entry (the stale generation is
// flushed lazily). POST /admin/invalidate force-expires the per-source
// probe caches for sources that mutated underneath the mediator.
//
// Queries are cancellable: the request context flows through
// core.Instance.ExecuteContext into every probe, so a disconnected
// client or an expired deadline aborts in-flight remote sub-queries.
// Coalesced executions are cancelled only when the LAST interested
// request goes away (the flight counts its waiters) — a leader's
// disconnect never poisons its followers.
//
// Routes:
//
//	POST   /cmq               execute a CMQ (JSON {"query": "..."} or raw
//	                          text body; {"explain": true} plans without
//	                          executing and returns the plan plus per-atom
//	                          batch/per-probe decisions)
//	POST   /graph             insert triples into G (JSON {"triples":
//	                          "<turtle>"} or raw Turtle body)
//	DELETE /graph             remove triples from G (same body forms)
//	POST   /sources           register a remote endpoint (JSON {"url": ...})
//	DELETE /sources/{uri}     drop a registered source (URI path-escaped;
//	                          DELETE /sources?uri=... is equivalent)
//	POST   /admin/invalidate  flush probe caches + rotate the result cache
//	                          (JSON {"source": "uri"} scopes to one source)
//	GET    /stats             server counters + cache occupancy + epoch
//	GET    /healthz           liveness probe
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tatooine/internal/core"
	"tatooine/internal/federation"
	"tatooine/internal/lru"
	"tatooine/internal/rdf"
	"tatooine/internal/source"
	"tatooine/internal/store"
	"tatooine/internal/value"
)

// Options tune the mediator service.
type Options struct {
	// ResultCacheSize bounds the whole-query result cache (entries).
	// 0 uses DefaultResultCacheSize; negative disables result caching
	// AND the single-flight coalescing of identical concurrent queries
	// (coalescing is result sharing across requests too).
	ResultCacheSize int
	// ProbeCacheSize bounds each source's sub-query cache (entries).
	// 0 uses source.DefaultCacheSize; negative disables probe caching.
	ProbeCacheSize int
	// ProbeTTL expires probe-cache entries this long after they were
	// filled (0 = never), so a long-running mediator stops serving
	// arbitrarily stale rows from mutable remote sources.
	ProbeTTL time.Duration
	// Exec carries the execution options every query runs with.
	Exec core.ExecOptions
}

// DefaultResultCacheSize bounds the result cache when Options leaves
// ResultCacheSize at zero.
const DefaultResultCacheSize = 256

// Stats are the server-level counters surfaced on GET /stats.
type Stats struct {
	Requests           int64  `json:"requests"`           // POST /cmq requests handled
	CacheHits          int64  `json:"cacheHits"`          // answered from the result cache
	CacheMisses        int64  `json:"cacheMisses"`        // executed (or joined an in-flight execution)
	Coalesced          int64  `json:"coalesced"`          // waited on an identical in-flight query
	Errors             int64  `json:"errors"`             // parse or execution failures
	SubQueries         int64  `json:"subQueries"`         // native sub-queries across all executions
	BatchProbes        int64  `json:"batchProbes"`        // batched bind-join dispatches across all executions
	Streamed           int64  `json:"streamed"`           // POST /cmq requests answered as NDJSON streams
	InFlightStreams    int64  `json:"inFlightStreams"`    // NDJSON streams currently open (a leak shows here)
	CacheEntries       int    `json:"cacheEntries"`       // current result-cache occupancy
	Epoch              uint64 `json:"epoch"`              // instance mutation epoch
	Mutations          int64  `json:"mutations"`          // mutation requests applied over HTTP
	Invalidations      int64  `json:"invalidations"`      // stale result-cache generations flushed
	ProbeInvalidations int64  `json:"probeInvalidations"` // probe-cache result entries force-dropped

	// Saturation reports how the instance maintains G∞: the mode
	// ("off", "delta", "full"), the materialized implicit-triple count,
	// the deltaApplies / fullRecomputes counters and the last apply
	// duration (ns).
	Saturation core.SaturationStats `json:"saturation"`

	// ProbeBatchSizes reports the current adaptive bind-join batch size
	// per source URI, when the server runs with a core.BatchTuner
	// (Options.Exec.Tuner).
	ProbeBatchSizes map[string]int `json:"probeBatchSizes,omitempty"`

	// Store reports the persistent backing store's counters (pages,
	// cache hits/misses, WAL bytes, commits, checkpoints) when the
	// server runs on a persistent instance; absent in memory mode.
	Store *store.Stats `json:"store,omitempty"`

	// Digest reports digest-driven planning and semi-join pruning: how
	// many per-source digests were built or fetched, how many planner /
	// pruner lookups the catalog answered from memory, and how many
	// bind-join probes digest filters pruned before any round trip.
	Digest DigestBlock `json:"digest"`
}

// DigestBlock is the /stats digest section.
type DigestBlock struct {
	core.DigestStats
	PrunedProbes int64 `json:"prunedProbes"`
}

// QueryRequest is the JSON body of POST /cmq. With Explain set the
// query is planned but not executed: the response carries the rendered
// plan plus the per-atom batched-vs-per-probe decisions instead of
// rows. With Stream set (equivalently: an Accept header asking for
// application/x-ndjson) the response streams as NDJSON records — see
// StreamRecord — with rows flushed as the executor produces them.
type QueryRequest struct {
	Query   string `json:"query"`
	Explain bool   `json:"explain,omitempty"`
	Stream  bool   `json:"stream,omitempty"`
}

// QueryResponse is the JSON reply of POST /cmq.
type QueryResponse struct {
	Cols    []string          `json:"cols"`
	Rows    []value.Row       `json:"rows"`
	Stats   core.ExecStats    `json:"stats"`
	Cached  bool              `json:"cached"`
	Explain *core.ExplainInfo `json:"explain,omitempty"`
	Error   string            `json:"error,omitempty"`
}

// GraphRequest is the JSON body of POST /graph and DELETE /graph; a
// non-JSON body is treated as the Turtle/N-Triples text directly.
type GraphRequest struct {
	Triples string `json:"triples"`
}

// GraphResponse reports an applied graph mutation.
type GraphResponse struct {
	Changed int    `json:"changed"` // triples actually inserted / removed
	Size    int    `json:"size"`    // G's triple count after the mutation
	Epoch   uint64 `json:"epoch"`
	Error   string `json:"error,omitempty"`
}

// SourceRequest is the JSON body of POST /sources: the base URL of a
// federation endpoint to dial and register.
type SourceRequest struct {
	URL string `json:"url"`
}

// SourceResponse reports a source registration or drop.
type SourceResponse struct {
	URI   string `json:"uri,omitempty"`
	Epoch uint64 `json:"epoch"`
	Error string `json:"error,omitempty"`
}

// InvalidateRequest is the optional JSON body of POST /admin/invalidate;
// Source scopes the flush to one source's probe cache.
type InvalidateRequest struct {
	Source string `json:"source,omitempty"`
}

// InvalidateResponse reports what an invalidation dropped. The shape
// is pinned: a successful invalidation ALWAYS carries epoch and
// probeEntries — probeEntries is an explicit 0 when nothing was cached
// (the epoch still bumps; the caller asked for a hard reset and the
// bump is what guarantees it) — while an error response carries only
// error, never a meaningless zero epoch.
type InvalidateResponse struct {
	Epoch        uint64 `json:"epoch,omitempty"`
	ProbeEntries *int   `json:"probeEntries,omitempty"` // probe-cache result entries dropped
	Error        string `json:"error,omitempty"`
}

// Server is the mediator query service around one shared Instance.
type Server struct {
	in   *core.Instance
	opts Options

	mu       sync.Mutex
	cache    *lru.Cache[*core.QueryResult] // nil when result caching is disabled
	inflight map[string]*flightCall
	gen      uint64 // instance epoch the current cache generation belongs to

	requests, hits, misses, coalesced, errors, subQueries, batchProbes atomic.Int64
	mutations, invalidations, probeInvalidations                       atomic.Int64
	streamed, inFlightStreams                                          atomic.Int64
	prunedProbes                                                       atomic.Int64
}

// flightCall is one in-progress execution identical queries wait on.
// waiters counts the requests still interested in the result (the
// leader included); when the last one's context ends, cancel aborts
// the leader's execution — one surviving waiter keeps the in-flight
// probes alive, so a leader's disconnect never poisons its followers.
// waiters is guarded by the server mutex: the drop to zero and the
// flight's removal from the inflight map happen atomically, so a
// request can never join a flight that is already being cancelled.
type flightCall struct {
	done    chan struct{}
	res     *core.QueryResult
	err     error
	waiters int // guarded by Server.mu
	cancel  context.CancelFunc
}

// watchFlight registers ctx against the flight under key: when it
// ends, the flight's waiter count drops, and the last drop removes the
// flight from the inflight map (so later identical requests lead a
// fresh execution instead of inheriting a cancelled one) and cancels
// the execution. The returned stop function releases the registration.
func (s *Server) watchFlight(ctx context.Context, key string, call *flightCall) (stop func() bool) {
	return context.AfterFunc(ctx, func() {
		s.mu.Lock()
		call.waiters--
		last := call.waiters == 0
		if last && s.inflight[key] == call {
			delete(s.inflight, key)
		}
		s.mu.Unlock()
		if last {
			call.cancel()
		}
	})
}

// New builds a Server over the instance. Unless probe caching is
// disabled, every source in the instance's registry (and every source
// its fallback resolver discovers later) is interposed with a
// source.Cached decorator sized by opts.ProbeCacheSize. The
// interposition is skipped when the registry is already decorated
// (e.g. a second Server over the same instance), so wrappers never
// stack.
func New(in *core.Instance, opts Options) *Server {
	if opts.ResultCacheSize == 0 {
		opts.ResultCacheSize = DefaultResultCacheSize
	}
	if opts.ProbeCacheSize >= 0 && !in.Sources().Interposed() {
		n, ttl := opts.ProbeCacheSize, opts.ProbeTTL
		in.Sources().Interpose(func(s source.DataSource) source.DataSource {
			return source.NewCached(s, n).WithTTL(ttl)
		})
	}
	s := &Server{
		in:       in,
		opts:     opts,
		inflight: make(map[string]*flightCall),
		gen:      in.Epoch(),
	}
	if opts.ResultCacheSize > 0 {
		s.cache = lru.New[*core.QueryResult](opts.ResultCacheSize)
	}
	return s
}

// Stats snapshots the server counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	entries := 0
	if s.cache != nil {
		entries = s.cache.Len()
	}
	s.mu.Unlock()
	st := Stats{
		Requests:           s.requests.Load(),
		CacheHits:          s.hits.Load(),
		CacheMisses:        s.misses.Load(),
		Coalesced:          s.coalesced.Load(),
		Errors:             s.errors.Load(),
		SubQueries:         s.subQueries.Load(),
		BatchProbes:        s.batchProbes.Load(),
		Streamed:           s.streamed.Load(),
		InFlightStreams:    s.inFlightStreams.Load(),
		CacheEntries:       entries,
		Epoch:              s.in.Epoch(),
		Mutations:          s.mutations.Load(),
		Invalidations:      s.invalidations.Load(),
		ProbeInvalidations: s.probeInvalidations.Load(),
		Saturation:         s.in.SaturationStats(),
		Digest: DigestBlock{
			DigestStats:  s.in.DigestStats(),
			PrunedProbes: s.prunedProbes.Load(),
		},
	}
	if s.opts.Exec.Tuner != nil {
		st.ProbeBatchSizes = s.opts.Exec.Tuner.Sizes()
	}
	st.Store = s.in.StoreStats()
	return st
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /cmq", s.handleCMQ)
	mux.HandleFunc("POST /graph", func(w http.ResponseWriter, r *http.Request) { s.handleGraph(w, r, false) })
	mux.HandleFunc("DELETE /graph", func(w http.ResponseWriter, r *http.Request) { s.handleGraph(w, r, true) })
	mux.HandleFunc("POST /sources", s.handleSourceAdd)
	mux.HandleFunc("DELETE /sources", s.handleSourceDrop)
	mux.HandleFunc("DELETE /sources/{uri...}", s.handleSourceDrop)
	mux.HandleFunc("POST /admin/invalidate", s.handleInvalidate)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// maxMutationBytes bounds a mutation request body (a POST /graph can
// legitimately carry a large triple document).
const maxMutationBytes = 16 << 20

// handleGraph inserts (POST) or removes (DELETE) triples in the custom
// graph G through the epoch-bumping instance API, so the next query
// re-saturates and result-cache generations rotate.
func (s *Server) handleGraph(w http.ResponseWriter, r *http.Request, remove bool) {
	body, isJSON, err := readBody(r, maxMutationBytes)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, GraphResponse{Error: err.Error()})
		return
	}
	text := string(body)
	if isJSON {
		var req GraphRequest
		if err := json.Unmarshal(body, &req); err != nil {
			writeJSON(w, http.StatusBadRequest, GraphResponse{Error: "server: bad JSON body: " + err.Error()})
			return
		}
		text = req.Triples
	}
	if strings.TrimSpace(text) == "" {
		writeJSON(w, http.StatusBadRequest, GraphResponse{Error: "server: empty triple document"})
		return
	}
	ts, err := rdf.ParseString(text)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, GraphResponse{Error: err.Error()})
		return
	}
	var changed int
	if remove {
		changed = s.in.RemoveTriples(ts)
	} else {
		changed = s.in.AddTriples(ts)
	}
	s.mutations.Add(1)
	writeJSON(w, http.StatusOK, GraphResponse{Changed: changed, Size: s.in.Graph().Size(), Epoch: s.in.Epoch()})
}

// handleSourceAdd dials a remote federation endpoint and registers it
// as a source of the shared instance; the registry's interposed
// wrapper gives it a probe cache like any seed source.
func (s *Server) handleSourceAdd(w http.ResponseWriter, r *http.Request) {
	var req SourceRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxQueryBytes)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, SourceResponse{Error: "server: bad JSON body: " + err.Error()})
		return
	}
	if strings.TrimSpace(req.URL) == "" {
		writeJSON(w, http.StatusBadRequest, SourceResponse{Error: "server: missing url"})
		return
	}
	c, err := federation.Dial(req.URL)
	if err != nil {
		writeJSON(w, http.StatusBadGateway, SourceResponse{Error: err.Error()})
		return
	}
	if err := s.in.AddSource(c); err != nil {
		writeJSON(w, http.StatusConflict, SourceResponse{Error: err.Error()})
		return
	}
	s.mutations.Add(1)
	writeJSON(w, http.StatusOK, SourceResponse{URI: c.URI(), Epoch: s.in.Epoch()})
}

// handleSourceDrop removes a registered source. The URI arrives either
// path-escaped in the path (DELETE /sources/sql:%2F%2Finsee) or as the
// uri query parameter (DELETE /sources?uri=sql://insee); the latter
// avoids ServeMux's clean-path redirect for URIs containing "//".
func (s *Server) handleSourceDrop(w http.ResponseWriter, r *http.Request) {
	uri := r.PathValue("uri")
	if uri == "" {
		uri = r.URL.Query().Get("uri")
	}
	if uri == "" {
		writeJSON(w, http.StatusBadRequest, SourceResponse{Error: "server: missing source URI"})
		return
	}
	if !s.in.DropSource(uri) {
		writeJSON(w, http.StatusNotFound, SourceResponse{Error: fmt.Sprintf("server: source %q not registered", uri)})
		return
	}
	s.mutations.Add(1)
	writeJSON(w, http.StatusOK, SourceResponse{URI: uri, Epoch: s.in.Epoch()})
}

// handleInvalidate force-expires cached state derived from the
// instance: with no body (or an empty one) every probe cache flushes
// and the epoch bumps; {"source": "uri"} scopes the flush to one
// source. Either way the result cache rotates to a new generation.
func (s *Server) handleInvalidate(w http.ResponseWriter, r *http.Request) {
	body, isJSON, err := readBody(r, maxQueryBytes)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, InvalidateResponse{Error: err.Error()})
		return
	}
	var req InvalidateRequest
	if len(body) > 0 {
		// Unlike /graph there is no raw-body form here: silently ignoring
		// a non-JSON body would turn an intended source-scoped
		// invalidation into a full flush.
		if !isJSON {
			writeJSON(w, http.StatusBadRequest, InvalidateResponse{Error: "server: body must be application/json"})
			return
		}
		if err := json.Unmarshal(body, &req); err != nil {
			writeJSON(w, http.StatusBadRequest, InvalidateResponse{Error: "server: bad JSON body: " + err.Error()})
			return
		}
	}
	var epoch uint64
	var dropped int
	if req.Source != "" {
		epoch, dropped, err = s.in.InvalidateSource(req.Source)
		if err != nil {
			writeJSON(w, http.StatusNotFound, InvalidateResponse{Error: err.Error()})
			return
		}
	} else {
		epoch, dropped = s.in.Invalidate()
	}
	s.probeInvalidations.Add(int64(dropped))
	writeJSON(w, http.StatusOK, InvalidateResponse{Epoch: epoch, ProbeEntries: &dropped})
}

func (s *Server) handleCMQ(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	text, explain, stream, err := readQuery(r)
	if err != nil {
		s.errors.Add(1)
		writeJSON(w, http.StatusBadRequest, QueryResponse{Error: err.Error()})
		return
	}
	// Parse first: malformed queries are always a 400, and the cache is
	// keyed on the parsed query's canonical form, so surface-syntax
	// variants (whitespace, comments) share an entry while any
	// semantically distinct query gets its own.
	q, _, err := core.ParseCMQ(text)
	if err != nil {
		s.errors.Add(1)
		writeJSON(w, http.StatusBadRequest, QueryResponse{Error: err.Error()})
		return
	}

	if explain {
		// Plan only — nothing executes, no cache interaction.
		info, err := s.in.ExplainQuery(q, s.opts.Exec)
		if err != nil {
			s.errors.Add(1)
			writeJSON(w, http.StatusUnprocessableEntity, QueryResponse{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, QueryResponse{Explain: info})
		return
	}

	if stream || wantsNDJSON(r) {
		s.handleStreamCMQ(w, r, q)
		return
	}

	key, epoch := s.generationKey(q.CanonicalKey())
	if res, ok := s.cacheGet(key); ok {
		s.hits.Add(1)
		// A cache hit executed nothing: report zeroed stats so clients
		// (and benchmarks) can observe that no sub-query was shipped.
		writeJSON(w, http.StatusOK, QueryResponse{Cols: res.Cols, Rows: res.Rows, Cached: true})
		return
	}
	s.misses.Add(1)

	res, cached, err := s.execute(r.Context(), key, epoch, q)
	if err != nil {
		s.errors.Add(1)
		writeJSON(w, http.StatusUnprocessableEntity, QueryResponse{Error: err.Error()})
		return
	}
	if cached {
		writeJSON(w, http.StatusOK, QueryResponse{Cols: res.Cols, Rows: res.Rows, Cached: true})
		return
	}
	writeJSON(w, http.StatusOK, QueryResponse{Cols: res.Cols, Rows: res.Rows, Stats: res.Stats})
}

// generationKey prefixes the canonical query key with the instance's
// current epoch and lazily flushes the superseded cache generation.
// The epoch in the key is what makes mutation safe: a single-flight
// leader that started before a mutation finishes under the old epoch's
// key, so post-mutation requests can neither join it nor read the
// result it caches.
func (s *Server) generationKey(canonical string) (string, uint64) {
	epoch := s.in.Epoch()
	s.mu.Lock()
	// Strictly newer only: a request that loaded the epoch just before
	// a concurrent mutation must not regress the generation and flush
	// entries the newer generation just cached.
	if epoch > s.gen {
		if s.cache != nil {
			s.cache.Clear()
		}
		s.gen = epoch
		s.invalidations.Add(1)
	}
	s.mu.Unlock()
	return strconv.FormatUint(epoch, 10) + "|" + canonical, epoch
}

// execute runs the query under the single-flight guard: the first
// caller for a key executes; identical concurrent callers wait and
// share the leader's result (cached=true for them — they shipped no
// sub-queries of their own). With result caching disabled the guard is
// off too: every request executes for itself, directly under its own
// request context. epoch is the generation the key belongs to: a
// leader finishing after a newer generation flushed skips the Put —
// its old-epoch key could never be read again and would only waste
// LRU slots.
//
// Cancellation: the leader executes under a context detached from its
// own request but cancelled as soon as the LAST interested request
// (leader or coalesced follower) goes away — a disconnected leader
// whose followers still wait must not abort their shared execution,
// while a query nobody waits for anymore must stop probing remotes.
func (s *Server) execute(ctx context.Context, key string, epoch uint64, q *core.CMQ) (res *core.QueryResult, cached bool, err error) {
	if s.cache == nil {
		res, err = s.in.ExecuteContext(ctx, q, s.opts.Exec)
		if err == nil {
			s.subQueries.Add(int64(res.Stats.SubQueries))
			s.batchProbes.Add(int64(res.Stats.BatchProbes))
			s.prunedProbes.Add(int64(res.Stats.PrunedProbes))
		}
		return res, false, err
	}
	s.mu.Lock()
	// Re-check the cache under the lock: a leader may have finished
	// (inflight entry gone, result cached) between the handler's
	// cacheGet and here; without this a request in that window would
	// become a new leader and re-execute an already-cached query.
	if res, ok := s.cache.Get(key); ok {
		s.mu.Unlock()
		return res, true, nil
	}
	if call, ok := s.inflight[key]; ok {
		// The entry being present implies waiters > 0: the drop to zero
		// removes it under this same mutex, so this join cannot revive a
		// flight that is already being cancelled.
		call.waiters++
		s.mu.Unlock()
		s.coalesced.Add(1)
		stop := s.watchFlight(ctx, key, call)
		defer stop()
		<-call.done
		return call.res, true, call.err
	}
	fctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	call := &flightCall{done: make(chan struct{}), cancel: cancel, waiters: 1}
	s.inflight[key] = call
	s.mu.Unlock()
	stop := s.watchFlight(ctx, key, call)

	call.res, call.err = s.in.ExecuteContext(fctx, q, s.opts.Exec)
	stop()
	cancel()
	if call.err == nil {
		s.subQueries.Add(int64(call.res.Stats.SubQueries))
		s.batchProbes.Add(int64(call.res.Stats.BatchProbes))
		s.prunedProbes.Add(int64(call.res.Stats.PrunedProbes))
	}

	s.mu.Lock()
	// The last-waiter path may have removed the flight already — and a
	// NEW leader may have claimed the key since — so only delete our own
	// entry.
	if s.inflight[key] == call {
		delete(s.inflight, key)
	}
	if call.err == nil && epoch == s.gen {
		s.cache.Put(key, call.res)
	}
	s.mu.Unlock()
	close(call.done)
	return call.res, false, call.err
}

func (s *Server) cacheGet(key string) (*core.QueryResult, bool) {
	if s.cache == nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cache.Get(key)
}

// maxQueryBytes bounds a POST /cmq body; larger requests are rejected
// outright rather than silently truncated to a still-parseable prefix.
const maxQueryBytes = 1 << 20

// readBody reads at most max bytes of the request body — larger bodies
// are rejected outright rather than silently truncated — and reports
// whether the request declared a JSON content type.
func readBody(r *http.Request, max int64) ([]byte, bool, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, max+1))
	if err != nil {
		return nil, false, fmt.Errorf("server: read body: %w", err)
	}
	if int64(len(body)) > max {
		return nil, false, fmt.Errorf("server: body exceeds %d bytes", max)
	}
	mt, _, err := mime.ParseMediaType(r.Header.Get("Content-Type"))
	return body, err == nil && mt == "application/json", nil
}

// readQuery extracts the CMQ text (and the explain/stream flags) from
// the request body: a JSON {"query": "...", "explain": bool, "stream":
// bool} envelope when Content-Type is application/json, otherwise the
// raw body.
func readQuery(r *http.Request) (text string, explain, stream bool, err error) {
	body, isJSON, err := readBody(r, maxQueryBytes)
	if err != nil {
		return "", false, false, err
	}
	if isJSON {
		var req QueryRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return "", false, false, fmt.Errorf("server: bad JSON body: %w", err)
		}
		if strings.TrimSpace(req.Query) == "" {
			return "", false, false, fmt.Errorf("server: empty query")
		}
		return req.Query, req.Explain, req.Stream, nil
	}
	text = string(body)
	if strings.TrimSpace(text) == "" {
		return "", false, false, fmt.Errorf("server: empty query")
	}
	return text, false, false, nil
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

// NewHTTPServer wraps a handler in an http.Server with sane timeouts —
// a bare ListenAndServe has none and is slowloris-vulnerable. Shared by
// the mediator service and cmd/sourced. The write timeout is generous
// because it bounds the whole handler, and a cold federated query can
// legitimately ship many slow remote sub-queries; the slowloris defense
// is the header/read timeouts, not the write bound.
func NewHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      15 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
}
