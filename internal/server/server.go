// Package server turns a mixed instance into a long-running HTTP
// mediator service: one shared core.Instance answers concurrent mixed
// queries, with an LRU result cache keyed on the parsed query's
// canonical form (core.CMQ.CanonicalKey), a single-flight guard so
// identical concurrent queries execute once, and a per-source
// sub-query cache (source.Cached) underneath so repeated bind-join
// probes hit memory instead of the network.
//
// Routes:
//
//	POST /cmq      execute a CMQ (JSON {"query": "..."} or raw text body;
//	               {"explain": true} plans without executing and returns
//	               the plan plus per-atom batch/per-probe decisions)
//	GET  /stats    server counters + cache occupancy
//	GET  /healthz  liveness probe
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tatooine/internal/core"
	"tatooine/internal/lru"
	"tatooine/internal/source"
	"tatooine/internal/value"
)

// Options tune the mediator service.
type Options struct {
	// ResultCacheSize bounds the whole-query result cache (entries).
	// 0 uses DefaultResultCacheSize; negative disables result caching
	// AND the single-flight coalescing of identical concurrent queries
	// (coalescing is result sharing across requests too).
	ResultCacheSize int
	// ProbeCacheSize bounds each source's sub-query cache (entries).
	// 0 uses source.DefaultCacheSize; negative disables probe caching.
	ProbeCacheSize int
	// ProbeTTL expires probe-cache entries this long after they were
	// filled (0 = never), so a long-running mediator stops serving
	// arbitrarily stale rows from mutable remote sources.
	ProbeTTL time.Duration
	// Exec carries the execution options every query runs with.
	Exec core.ExecOptions
}

// DefaultResultCacheSize bounds the result cache when Options leaves
// ResultCacheSize at zero.
const DefaultResultCacheSize = 256

// Stats are the server-level counters surfaced on GET /stats.
type Stats struct {
	Requests     int64 `json:"requests"`     // POST /cmq requests handled
	CacheHits    int64 `json:"cacheHits"`    // answered from the result cache
	CacheMisses  int64 `json:"cacheMisses"`  // executed (or joined an in-flight execution)
	Coalesced    int64 `json:"coalesced"`    // waited on an identical in-flight query
	Errors       int64 `json:"errors"`       // parse or execution failures
	SubQueries   int64 `json:"subQueries"`   // native sub-queries across all executions
	BatchProbes  int64 `json:"batchProbes"`  // batched bind-join dispatches across all executions
	CacheEntries int   `json:"cacheEntries"` // current result-cache occupancy
}

// QueryRequest is the JSON body of POST /cmq. With Explain set the
// query is planned but not executed: the response carries the rendered
// plan plus the per-atom batched-vs-per-probe decisions instead of
// rows.
type QueryRequest struct {
	Query   string `json:"query"`
	Explain bool   `json:"explain,omitempty"`
}

// QueryResponse is the JSON reply of POST /cmq.
type QueryResponse struct {
	Cols    []string          `json:"cols"`
	Rows    []value.Row       `json:"rows"`
	Stats   core.ExecStats    `json:"stats"`
	Cached  bool              `json:"cached"`
	Explain *core.ExplainInfo `json:"explain,omitempty"`
	Error   string            `json:"error,omitempty"`
}

// Server is the mediator query service around one shared Instance.
type Server struct {
	in   *core.Instance
	opts Options

	mu       sync.Mutex
	cache    *lru.Cache[*core.QueryResult] // nil when result caching is disabled
	inflight map[string]*flightCall

	requests, hits, misses, coalesced, errors, subQueries, batchProbes atomic.Int64
}

// flightCall is one in-progress execution identical queries wait on.
type flightCall struct {
	done chan struct{}
	res  *core.QueryResult
	err  error
}

// New builds a Server over the instance. Unless probe caching is
// disabled, every source in the instance's registry (and every source
// its fallback resolver discovers later) is interposed with a
// source.Cached decorator sized by opts.ProbeCacheSize. The
// interposition is skipped when the registry is already decorated
// (e.g. a second Server over the same instance), so wrappers never
// stack.
func New(in *core.Instance, opts Options) *Server {
	if opts.ResultCacheSize == 0 {
		opts.ResultCacheSize = DefaultResultCacheSize
	}
	if opts.ProbeCacheSize >= 0 && !in.Sources().Interposed() {
		n, ttl := opts.ProbeCacheSize, opts.ProbeTTL
		in.Sources().Interpose(func(s source.DataSource) source.DataSource {
			return source.NewCached(s, n).WithTTL(ttl)
		})
	}
	s := &Server{
		in:       in,
		opts:     opts,
		inflight: make(map[string]*flightCall),
	}
	if opts.ResultCacheSize > 0 {
		s.cache = lru.New[*core.QueryResult](opts.ResultCacheSize)
	}
	return s
}

// Stats snapshots the server counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	entries := 0
	if s.cache != nil {
		entries = s.cache.Len()
	}
	s.mu.Unlock()
	return Stats{
		Requests:     s.requests.Load(),
		CacheHits:    s.hits.Load(),
		CacheMisses:  s.misses.Load(),
		Coalesced:    s.coalesced.Load(),
		Errors:       s.errors.Load(),
		SubQueries:   s.subQueries.Load(),
		BatchProbes:  s.batchProbes.Load(),
		CacheEntries: entries,
	}
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /cmq", s.handleCMQ)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleCMQ(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	text, explain, err := readQuery(r)
	if err != nil {
		s.errors.Add(1)
		writeJSON(w, http.StatusBadRequest, QueryResponse{Error: err.Error()})
		return
	}
	// Parse first: malformed queries are always a 400, and the cache is
	// keyed on the parsed query's canonical form, so surface-syntax
	// variants (whitespace, comments) share an entry while any
	// semantically distinct query gets its own.
	q, _, err := core.ParseCMQ(text)
	if err != nil {
		s.errors.Add(1)
		writeJSON(w, http.StatusBadRequest, QueryResponse{Error: err.Error()})
		return
	}

	if explain {
		// Plan only — nothing executes, no cache interaction.
		info, err := s.in.ExplainQuery(q, s.opts.Exec)
		if err != nil {
			s.errors.Add(1)
			writeJSON(w, http.StatusUnprocessableEntity, QueryResponse{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, QueryResponse{Explain: info})
		return
	}

	key := q.CanonicalKey()
	if res, ok := s.cacheGet(key); ok {
		s.hits.Add(1)
		// A cache hit executed nothing: report zeroed stats so clients
		// (and benchmarks) can observe that no sub-query was shipped.
		writeJSON(w, http.StatusOK, QueryResponse{Cols: res.Cols, Rows: res.Rows, Cached: true})
		return
	}
	s.misses.Add(1)

	res, cached, err := s.execute(key, q)
	if err != nil {
		s.errors.Add(1)
		writeJSON(w, http.StatusUnprocessableEntity, QueryResponse{Error: err.Error()})
		return
	}
	if cached {
		writeJSON(w, http.StatusOK, QueryResponse{Cols: res.Cols, Rows: res.Rows, Cached: true})
		return
	}
	writeJSON(w, http.StatusOK, QueryResponse{Cols: res.Cols, Rows: res.Rows, Stats: res.Stats})
}

// execute runs the query under the single-flight guard: the first
// caller for a key executes; identical concurrent callers wait and
// share the leader's result (cached=true for them — they shipped no
// sub-queries of their own). With result caching disabled the guard is
// off too: every request executes for itself.
func (s *Server) execute(key string, q *core.CMQ) (res *core.QueryResult, cached bool, err error) {
	if s.cache == nil {
		res, err = s.in.ExecuteOpts(q, s.opts.Exec)
		if err == nil {
			s.subQueries.Add(int64(res.Stats.SubQueries))
			s.batchProbes.Add(int64(res.Stats.BatchProbes))
		}
		return res, false, err
	}
	s.mu.Lock()
	// Re-check the cache under the lock: a leader may have finished
	// (inflight entry gone, result cached) between the handler's
	// cacheGet and here; without this a request in that window would
	// become a new leader and re-execute an already-cached query.
	if res, ok := s.cache.Get(key); ok {
		s.mu.Unlock()
		return res, true, nil
	}
	if call, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		s.coalesced.Add(1)
		<-call.done
		return call.res, true, call.err
	}
	call := &flightCall{done: make(chan struct{})}
	s.inflight[key] = call
	s.mu.Unlock()

	call.res, call.err = s.in.ExecuteOpts(q, s.opts.Exec)
	if call.err == nil {
		s.subQueries.Add(int64(call.res.Stats.SubQueries))
		s.batchProbes.Add(int64(call.res.Stats.BatchProbes))
	}

	s.mu.Lock()
	delete(s.inflight, key)
	if call.err == nil {
		s.cache.Put(key, call.res)
	}
	s.mu.Unlock()
	close(call.done)
	return call.res, false, call.err
}

func (s *Server) cacheGet(key string) (*core.QueryResult, bool) {
	if s.cache == nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cache.Get(key)
}

// maxQueryBytes bounds a POST /cmq body; larger requests are rejected
// outright rather than silently truncated to a still-parseable prefix.
const maxQueryBytes = 1 << 20

// readQuery extracts the CMQ text (and the explain flag) from the
// request body: a JSON {"query": "...", "explain": bool} envelope when
// Content-Type is application/json, otherwise the raw body.
func readQuery(r *http.Request) (string, bool, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxQueryBytes+1))
	if err != nil {
		return "", false, fmt.Errorf("server: read body: %w", err)
	}
	if len(body) > maxQueryBytes {
		return "", false, fmt.Errorf("server: query exceeds %d bytes", maxQueryBytes)
	}
	ct := r.Header.Get("Content-Type")
	if mt, _, err := mime.ParseMediaType(ct); err == nil && mt == "application/json" {
		var req QueryRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return "", false, fmt.Errorf("server: bad JSON body: %w", err)
		}
		if strings.TrimSpace(req.Query) == "" {
			return "", false, fmt.Errorf("server: empty query")
		}
		return req.Query, req.Explain, nil
	}
	text := string(body)
	if strings.TrimSpace(text) == "" {
		return "", false, fmt.Errorf("server: empty query")
	}
	return text, false, nil
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

// NewHTTPServer wraps a handler in an http.Server with sane timeouts —
// a bare ListenAndServe has none and is slowloris-vulnerable. Shared by
// the mediator service and cmd/sourced. The write timeout is generous
// because it bounds the whole handler, and a cold federated query can
// legitimately ship many slow remote sub-queries; the slowloris defense
// is the header/read timeouts, not the write bound.
func NewHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      15 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
}
