// Package server turns a mixed instance into a long-running HTTP
// mediator service: one shared core.Instance answers concurrent mixed
// queries, with an LRU result cache keyed on (instance epoch, the
// parsed query's canonical form core.CMQ.CanonicalKey), a
// single-flight guard so identical concurrent queries execute once,
// and a per-source sub-query cache (source.Cached) underneath so
// repeated bind-join probes hit memory instead of the network.
//
// The instance is mutable over HTTP: POST /graph inserts triples,
// POST /sources registers a remote endpoint, DELETE /sources drops
// one. Every mutation bumps the instance epoch; because result-cache
// and single-flight keys carry the epoch, the very next POST /cmq can
// never be answered from a pre-mutation entry (the stale generation is
// flushed lazily). POST /admin/invalidate force-expires the per-source
// probe caches for sources that mutated underneath the mediator.
//
// Queries are cancellable: the request context flows through
// core.Instance.ExecuteContext into every probe, so a disconnected
// client or an expired deadline aborts in-flight remote sub-queries.
// Coalesced executions are cancelled only when the LAST interested
// request goes away (the flight counts its waiters) — a leader's
// disconnect never poisons its followers.
//
// Routes:
//
//	POST   /cmq               execute a CMQ (JSON {"query": "..."} or raw
//	                          text body; {"explain": true} plans without
//	                          executing and returns the plan plus per-atom
//	                          batch/per-probe decisions)
//	POST   /graph             insert triples into G (JSON {"triples":
//	                          "<turtle>"} or raw Turtle body)
//	DELETE /graph             remove triples from G (same body forms)
//	POST   /sources           register a remote endpoint (JSON {"url": ...})
//	DELETE /sources/{uri}     drop a registered source (URI path-escaped;
//	                          DELETE /sources?uri=... is equivalent)
//	POST   /admin/invalidate  flush probe caches + rotate the result cache
//	                          (JSON {"source": "uri"} scopes to one source)
//	GET    /stats             server counters + cache occupancy + epoch
//	GET    /metrics           Prometheus text exposition (server + process
//	                          registries)
//	GET    /debug/queries     flight recorder: last N completed query
//	                          traces + slow-query flags
//	GET    /debug/pprof/      net/http/pprof, when Options.EnablePprof
//	GET    /healthz           liveness probe
//
// Observability: every request joins (or starts) an obs trace, POST
// /cmq can return the query's span tree ({"trace": true} in the body),
// and completed queries land in a bounded flight recorder with the
// slow ones logged through Options.Logger.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"mime"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"tatooine/internal/core"
	"tatooine/internal/federation"
	"tatooine/internal/lru"
	"tatooine/internal/obs"
	"tatooine/internal/rdf"
	"tatooine/internal/source"
	"tatooine/internal/store"
	"tatooine/internal/value"
)

// Options tune the mediator service.
type Options struct {
	// ResultCacheSize bounds the whole-query result cache (entries).
	// 0 uses DefaultResultCacheSize; negative disables result caching
	// AND the single-flight coalescing of identical concurrent queries
	// (coalescing is result sharing across requests too).
	ResultCacheSize int
	// ProbeCacheSize bounds each source's sub-query cache (entries).
	// 0 uses source.DefaultCacheSize; negative disables probe caching.
	ProbeCacheSize int
	// ProbeTTL expires probe-cache entries this long after they were
	// filled (0 = never), so a long-running mediator stops serving
	// arbitrarily stale rows from mutable remote sources.
	ProbeTTL time.Duration
	// Exec carries the execution options every query runs with.
	Exec core.ExecOptions

	// SlowQuery is the slow-query log threshold: completed queries at
	// or over it are flagged in GET /debug/queries and logged through
	// Logger. 0 uses DefaultSlowQuery; negative disables the log.
	SlowQuery time.Duration
	// TraceRing bounds the flight recorder — the last N completed query
	// traces served on GET /debug/queries. 0 uses DefaultTraceRing;
	// negative disables the recorder.
	TraceRing int
	// Logger receives slow-query warnings and (with LogRequests)
	// structured request logs; nil uses slog.Default().
	Logger *slog.Logger
	// LogRequests turns on one structured log line per request.
	LogRequests bool
	// EnablePprof mounts net/http/pprof under GET /debug/pprof/.
	EnablePprof bool
}

// DefaultResultCacheSize bounds the result cache when Options leaves
// ResultCacheSize at zero.
const DefaultResultCacheSize = 256

// DefaultSlowQuery is the slow-query threshold when Options leaves
// SlowQuery at zero.
const DefaultSlowQuery = 250 * time.Millisecond

// DefaultTraceRing is the flight-recorder capacity when Options leaves
// TraceRing at zero.
const DefaultTraceRing = 64

// Stats are the server-level counters surfaced on GET /stats. Since
// the obs layer landed they are read back from the server's metric
// registry — /stats and /metrics can never disagree.
type Stats struct {
	UptimeSeconds      float64 `json:"uptimeSeconds"`      // seconds since the server was built
	Requests           int64   `json:"requests"`           // POST /cmq requests handled
	CacheHits          int64   `json:"cacheHits"`          // answered from the result cache
	CacheMisses        int64   `json:"cacheMisses"`        // executed (or joined an in-flight execution)
	Coalesced          int64   `json:"coalesced"`          // waited on an identical in-flight query
	Errors             int64   `json:"errors"`             // parse or execution failures
	SubQueries         int64   `json:"subQueries"`         // native sub-queries across all executions
	BatchProbes        int64   `json:"batchProbes"`        // batched bind-join dispatches across all executions
	Streamed           int64   `json:"streamed"`           // POST /cmq requests answered as NDJSON streams
	InFlightStreams    int64   `json:"inFlightStreams"`    // NDJSON streams currently open (a leak shows here)
	CacheEntries       int     `json:"cacheEntries"`       // current result-cache occupancy
	Epoch              uint64  `json:"epoch"`              // instance mutation epoch
	Mutations          int64   `json:"mutations"`          // mutation requests applied over HTTP
	Invalidations      int64   `json:"invalidations"`      // stale result-cache generations flushed
	ProbeInvalidations int64   `json:"probeInvalidations"` // probe-cache result entries force-dropped

	// Saturation reports how the instance maintains G∞: the mode
	// ("off", "delta", "full"), the materialized implicit-triple count,
	// the deltaApplies / fullRecomputes counters and the last apply
	// duration (ns).
	Saturation core.SaturationStats `json:"saturation"`

	// ProbeBatchSizes reports the current adaptive bind-join batch size
	// per source URI, when the server runs with a core.BatchTuner
	// (Options.Exec.Tuner).
	ProbeBatchSizes map[string]int `json:"probeBatchSizes,omitempty"`

	// Store reports the persistent backing store's counters (pages,
	// cache hits/misses, WAL bytes, commits, checkpoints) when the
	// server runs on a persistent instance; absent in memory mode.
	Store *store.Stats `json:"store,omitempty"`

	// Digest reports digest-driven planning and semi-join pruning: how
	// many per-source digests were built or fetched, how many planner /
	// pruner lookups the catalog answered from memory, and how many
	// bind-join probes digest filters pruned before any round trip.
	Digest DigestBlock `json:"digest"`

	// Memory reports the bounded-memory configuration and its effect:
	// the per-join build-side budget queries execute under (bytes;
	// 0 = unbounded) and the process-wide spill totals. The page-cache
	// cap and resident-page count appear under Store.
	Memory MemoryBlock `json:"memory"`
}

// MemoryBlock is the /stats bounded-memory section.
type MemoryBlock struct {
	JoinMemBudget int64 `json:"joinMemBudget"` // bytes; 0 disables spilling
	SpilledJoins  int64 `json:"spilledJoins"`  // joins that exceeded the budget
	SpilledBytes  int64 `json:"spilledBytes"`  // bytes written to spill files
}

// DigestBlock is the /stats digest section.
type DigestBlock struct {
	core.DigestStats
	PrunedProbes int64 `json:"prunedProbes"`
}

// QueryRequest is the JSON body of POST /cmq. With Explain set the
// query is planned but not executed: the response carries the rendered
// plan plus the per-atom batched-vs-per-probe decisions instead of
// rows. With Stream set (equivalently: an Accept header asking for
// application/x-ndjson) the response streams as NDJSON records — see
// StreamRecord — with rows flushed as the executor produces them.
type QueryRequest struct {
	Query   string `json:"query"`
	Explain bool   `json:"explain,omitempty"`
	Stream  bool   `json:"stream,omitempty"`
	// Trace asks for the execution's span tree in the response: the
	// "trace" block of the JSON reply, or the NDJSON trailer's trace
	// field. Cache hits executed nothing and carry no trace.
	Trace bool `json:"trace,omitempty"`
}

// QueryResponse is the JSON reply of POST /cmq.
type QueryResponse struct {
	Cols    []string          `json:"cols"`
	Rows    []value.Row       `json:"rows"`
	Stats   core.ExecStats    `json:"stats"`
	Cached  bool              `json:"cached"`
	Explain *core.ExplainInfo `json:"explain,omitempty"`
	Trace   *obs.SpanData     `json:"trace,omitempty"`
	Error   string            `json:"error,omitempty"`
}

// GraphRequest is the JSON body of POST /graph and DELETE /graph; a
// non-JSON body is treated as the Turtle/N-Triples text directly.
type GraphRequest struct {
	Triples string `json:"triples"`
}

// GraphResponse reports an applied graph mutation.
type GraphResponse struct {
	Changed int    `json:"changed"` // triples actually inserted / removed
	Size    int    `json:"size"`    // G's triple count after the mutation
	Epoch   uint64 `json:"epoch"`
	Error   string `json:"error,omitempty"`
}

// SourceRequest is the JSON body of POST /sources: the base URL of a
// federation endpoint to dial and register.
type SourceRequest struct {
	URL string `json:"url"`
}

// SourceResponse reports a source registration or drop.
type SourceResponse struct {
	URI   string `json:"uri,omitempty"`
	Epoch uint64 `json:"epoch"`
	Error string `json:"error,omitempty"`
}

// InvalidateRequest is the optional JSON body of POST /admin/invalidate;
// Source scopes the flush to one source's probe cache.
type InvalidateRequest struct {
	Source string `json:"source,omitempty"`
}

// InvalidateResponse reports what an invalidation dropped. The shape
// is pinned: a successful invalidation ALWAYS carries epoch and
// probeEntries — probeEntries is an explicit 0 when nothing was cached
// (the epoch still bumps; the caller asked for a hard reset and the
// bump is what guarantees it) — while an error response carries only
// error, never a meaningless zero epoch.
type InvalidateResponse struct {
	Epoch        uint64 `json:"epoch,omitempty"`
	ProbeEntries *int   `json:"probeEntries,omitempty"` // probe-cache result entries dropped
	Error        string `json:"error,omitempty"`
}

// Server is the mediator query service around one shared Instance.
type Server struct {
	in    *core.Instance
	opts  Options
	start time.Time

	// reg is the server's own metric registry: counters scoped to THIS
	// server (two Servers over one instance must not share request
	// counts), rendered on /metrics alongside the process-wide
	// obs.Default (pager, probe caches, federation RTT).
	reg      *obs.Registry
	recorder *obs.Recorder // nil when Options.TraceRing < 0
	logger   *slog.Logger

	mu       sync.Mutex
	cache    *lru.Cache[*core.QueryResult] // nil when result caching is disabled
	inflight map[string]*flightCall
	gen      uint64 // instance epoch the current cache generation belongs to

	requests, hits, misses, coalesced, errors       *obs.Counter
	subQueries, batchProbes, prunedProbes, streamed *obs.Counter
	mutations, invalidations, probeInvalidations    *obs.Counter
	inFlightStreams, inFlightQueries                *obs.Gauge
	querySeconds, ttfrSeconds                       *obs.Histogram
}

// flightCall is one in-progress execution identical queries wait on.
// waiters counts the requests still interested in the result (the
// leader included); when the last one's context ends, cancel aborts
// the leader's execution — one surviving waiter keeps the in-flight
// probes alive, so a leader's disconnect never poisons its followers.
// waiters is guarded by the server mutex: the drop to zero and the
// flight's removal from the inflight map happen atomically, so a
// request can never join a flight that is already being cancelled.
type flightCall struct {
	done    chan struct{}
	res     *core.QueryResult
	err     error
	waiters int // guarded by Server.mu
	cancel  context.CancelFunc
}

// watchFlight registers ctx against the flight under key: when it
// ends, the flight's waiter count drops, and the last drop removes the
// flight from the inflight map (so later identical requests lead a
// fresh execution instead of inheriting a cancelled one) and cancels
// the execution. The returned stop function releases the registration.
func (s *Server) watchFlight(ctx context.Context, key string, call *flightCall) (stop func() bool) {
	return context.AfterFunc(ctx, func() {
		s.mu.Lock()
		call.waiters--
		last := call.waiters == 0
		if last && s.inflight[key] == call {
			delete(s.inflight, key)
		}
		s.mu.Unlock()
		if last {
			call.cancel()
		}
	})
}

// New builds a Server over the instance. Unless probe caching is
// disabled, every source in the instance's registry (and every source
// its fallback resolver discovers later) is interposed with a
// source.Cached decorator sized by opts.ProbeCacheSize. The
// interposition is skipped when the registry is already decorated
// (e.g. a second Server over the same instance), so wrappers never
// stack.
func New(in *core.Instance, opts Options) *Server {
	if opts.ResultCacheSize == 0 {
		opts.ResultCacheSize = DefaultResultCacheSize
	}
	if opts.ProbeCacheSize >= 0 && !in.Sources().Interposed() {
		n, ttl := opts.ProbeCacheSize, opts.ProbeTTL
		in.Sources().Interpose(func(s source.DataSource) source.DataSource {
			return source.NewCached(s, n).WithTTL(ttl)
		})
	}
	s := &Server{
		in:       in,
		opts:     opts,
		start:    time.Now(),
		reg:      obs.NewRegistry(),
		logger:   opts.Logger,
		inflight: make(map[string]*flightCall),
		gen:      in.Epoch(),
	}
	if s.logger == nil {
		s.logger = slog.Default()
	}
	if opts.ResultCacheSize > 0 {
		s.cache = lru.New[*core.QueryResult](opts.ResultCacheSize)
	}
	slow := opts.SlowQuery
	switch {
	case slow == 0:
		slow = DefaultSlowQuery
	case slow < 0:
		slow = 0 // recorder treats 0 as "no slow-query log"
	}
	ring := opts.TraceRing
	if ring == 0 {
		ring = DefaultTraceRing
	}
	if ring > 0 {
		s.recorder = obs.NewRecorder(ring, slow, s.logger)
	}
	s.requests = s.reg.Counter("tat_requests_total",
		"POST /cmq requests handled.")
	s.hits = s.reg.Counter("tat_result_cache_hits_total",
		"Queries answered from the result cache.")
	s.misses = s.reg.Counter("tat_result_cache_misses_total",
		"Queries that executed (or joined an in-flight execution).")
	s.coalesced = s.reg.Counter("tat_coalesced_total",
		"Queries that waited on an identical in-flight execution.")
	s.errors = s.reg.Counter("tat_errors_total",
		"Parse or execution failures.")
	s.subQueries = s.reg.Counter("tat_subqueries_total",
		"Native sub-queries shipped across all executions.")
	s.batchProbes = s.reg.Counter("tat_batch_probes_total",
		"Batched bind-join dispatches across all executions.")
	s.prunedProbes = s.reg.Counter("tat_pruned_probes_total",
		"Bind-join probes pruned by digest filters before any round trip.")
	s.streamed = s.reg.Counter("tat_streams_total",
		"POST /cmq requests answered as NDJSON streams.")
	s.mutations = s.reg.Counter("tat_mutations_total",
		"Mutation requests applied over HTTP.")
	s.invalidations = s.reg.Counter("tat_result_cache_invalidations_total",
		"Stale result-cache generations flushed.")
	s.probeInvalidations = s.reg.Counter("tat_probe_invalidations_total",
		"Probe-cache result entries force-dropped.")
	s.inFlightStreams = s.reg.Gauge("tat_streams_in_flight",
		"NDJSON streams currently open.")
	s.inFlightQueries = s.reg.Gauge("tat_queries_in_flight",
		"POST /cmq requests currently being handled.")
	s.querySeconds = s.reg.Histogram("tat_query_seconds",
		"End-to-end POST /cmq handling latency.", obs.DurationBuckets())
	s.ttfrSeconds = s.reg.Histogram("tat_query_ttfr_seconds",
		"Time to first row of NDJSON streamed responses.", obs.DurationBuckets())
	return s
}

// Stats snapshots the server counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	entries := 0
	if s.cache != nil {
		entries = s.cache.Len()
	}
	s.mu.Unlock()
	st := Stats{
		UptimeSeconds:      time.Since(s.start).Seconds(),
		Requests:           s.requests.Value(),
		CacheHits:          s.hits.Value(),
		CacheMisses:        s.misses.Value(),
		Coalesced:          s.coalesced.Value(),
		Errors:             s.errors.Value(),
		SubQueries:         s.subQueries.Value(),
		BatchProbes:        s.batchProbes.Value(),
		Streamed:           s.streamed.Value(),
		InFlightStreams:    s.inFlightStreams.Value(),
		CacheEntries:       entries,
		Epoch:              s.in.Epoch(),
		Mutations:          s.mutations.Value(),
		Invalidations:      s.invalidations.Value(),
		ProbeInvalidations: s.probeInvalidations.Value(),
		Saturation:         s.in.SaturationStats(),
		Digest: DigestBlock{
			DigestStats:  s.in.DigestStats(),
			PrunedProbes: s.prunedProbes.Value(),
		},
	}
	if s.opts.Exec.Tuner != nil {
		st.ProbeBatchSizes = s.opts.Exec.Tuner.Sizes()
	}
	st.Memory.JoinMemBudget = s.opts.Exec.JoinMemBudget
	st.Memory.SpilledJoins, st.Memory.SpilledBytes = core.SpillCounters()
	st.Store = s.in.StoreStats()
	return st
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /cmq", s.handleCMQ)
	mux.HandleFunc("POST /graph", func(w http.ResponseWriter, r *http.Request) { s.handleGraph(w, r, false) })
	mux.HandleFunc("DELETE /graph", func(w http.ResponseWriter, r *http.Request) { s.handleGraph(w, r, true) })
	mux.HandleFunc("POST /sources", s.handleSourceAdd)
	mux.HandleFunc("DELETE /sources", s.handleSourceDrop)
	mux.HandleFunc("DELETE /sources/{uri...}", s.handleSourceDrop)
	mux.HandleFunc("POST /admin/invalidate", s.handleInvalidate)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	// Server-scoped registry first, then the process-wide one (pager,
	// probe caches, federation RTT): one scrape sees the whole stack.
	mux.Handle("GET /metrics", obs.Handler(s.reg, obs.Default))
	mux.Handle("GET /debug/queries", s.recorder.Handler())
	if s.opts.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	var reqLog *slog.Logger
	if s.opts.LogRequests {
		reqLog = s.logger
	}
	return obs.Wrap("server", mux, reqLog)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// maxMutationBytes bounds a mutation request body (a POST /graph can
// legitimately carry a large triple document).
const maxMutationBytes = 16 << 20

// handleGraph inserts (POST) or removes (DELETE) triples in the custom
// graph G through the epoch-bumping instance API, so the next query
// re-saturates and result-cache generations rotate.
func (s *Server) handleGraph(w http.ResponseWriter, r *http.Request, remove bool) {
	body, isJSON, err := readBody(r, maxMutationBytes)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, GraphResponse{Error: err.Error()})
		return
	}
	text := string(body)
	if isJSON {
		var req GraphRequest
		if err := json.Unmarshal(body, &req); err != nil {
			writeJSON(w, http.StatusBadRequest, GraphResponse{Error: "server: bad JSON body: " + err.Error()})
			return
		}
		text = req.Triples
	}
	if strings.TrimSpace(text) == "" {
		writeJSON(w, http.StatusBadRequest, GraphResponse{Error: "server: empty triple document"})
		return
	}
	ts, err := rdf.ParseString(text)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, GraphResponse{Error: err.Error()})
		return
	}
	var changed int
	if remove {
		changed = s.in.RemoveTriples(ts)
	} else {
		changed = s.in.AddTriples(ts)
	}
	s.mutations.Add(1)
	writeJSON(w, http.StatusOK, GraphResponse{Changed: changed, Size: s.in.Graph().Size(), Epoch: s.in.Epoch()})
}

// handleSourceAdd dials a remote federation endpoint and registers it
// as a source of the shared instance; the registry's interposed
// wrapper gives it a probe cache like any seed source.
func (s *Server) handleSourceAdd(w http.ResponseWriter, r *http.Request) {
	var req SourceRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxQueryBytes)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, SourceResponse{Error: "server: bad JSON body: " + err.Error()})
		return
	}
	if strings.TrimSpace(req.URL) == "" {
		writeJSON(w, http.StatusBadRequest, SourceResponse{Error: "server: missing url"})
		return
	}
	c, err := federation.Dial(req.URL)
	if err != nil {
		writeJSON(w, http.StatusBadGateway, SourceResponse{Error: err.Error()})
		return
	}
	if err := s.in.AddSource(c); err != nil {
		writeJSON(w, http.StatusConflict, SourceResponse{Error: err.Error()})
		return
	}
	s.mutations.Add(1)
	writeJSON(w, http.StatusOK, SourceResponse{URI: c.URI(), Epoch: s.in.Epoch()})
}

// handleSourceDrop removes a registered source. The URI arrives either
// path-escaped in the path (DELETE /sources/sql:%2F%2Finsee) or as the
// uri query parameter (DELETE /sources?uri=sql://insee); the latter
// avoids ServeMux's clean-path redirect for URIs containing "//".
func (s *Server) handleSourceDrop(w http.ResponseWriter, r *http.Request) {
	uri := r.PathValue("uri")
	if uri == "" {
		uri = r.URL.Query().Get("uri")
	}
	if uri == "" {
		writeJSON(w, http.StatusBadRequest, SourceResponse{Error: "server: missing source URI"})
		return
	}
	if !s.in.DropSource(uri) {
		writeJSON(w, http.StatusNotFound, SourceResponse{Error: fmt.Sprintf("server: source %q not registered", uri)})
		return
	}
	s.mutations.Add(1)
	writeJSON(w, http.StatusOK, SourceResponse{URI: uri, Epoch: s.in.Epoch()})
}

// handleInvalidate force-expires cached state derived from the
// instance: with no body (or an empty one) every probe cache flushes
// and the epoch bumps; {"source": "uri"} scopes the flush to one
// source. Either way the result cache rotates to a new generation.
func (s *Server) handleInvalidate(w http.ResponseWriter, r *http.Request) {
	body, isJSON, err := readBody(r, maxQueryBytes)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, InvalidateResponse{Error: err.Error()})
		return
	}
	var req InvalidateRequest
	if len(body) > 0 {
		// Unlike /graph there is no raw-body form here: silently ignoring
		// a non-JSON body would turn an intended source-scoped
		// invalidation into a full flush.
		if !isJSON {
			writeJSON(w, http.StatusBadRequest, InvalidateResponse{Error: "server: body must be application/json"})
			return
		}
		if err := json.Unmarshal(body, &req); err != nil {
			writeJSON(w, http.StatusBadRequest, InvalidateResponse{Error: "server: bad JSON body: " + err.Error()})
			return
		}
	}
	var epoch uint64
	var dropped int
	if req.Source != "" {
		epoch, dropped, err = s.in.InvalidateSource(req.Source)
		if err != nil {
			writeJSON(w, http.StatusNotFound, InvalidateResponse{Error: err.Error()})
			return
		}
	} else {
		epoch, dropped = s.in.Invalidate()
	}
	s.probeInvalidations.Add(int64(dropped))
	writeJSON(w, http.StatusOK, InvalidateResponse{Epoch: epoch, ProbeEntries: &dropped})
}

func (s *Server) handleCMQ(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	req, err := readQuery(r)
	if err != nil {
		s.errors.Add(1)
		writeJSON(w, http.StatusBadRequest, QueryResponse{Error: err.Error()})
		return
	}
	// Parse first: malformed queries are always a 400, and the cache is
	// keyed on the parsed query's canonical form, so surface-syntax
	// variants (whitespace, comments) share an entry while any
	// semantically distinct query gets its own.
	q, _, err := core.ParseCMQ(req.Query)
	if err != nil {
		s.errors.Add(1)
		writeJSON(w, http.StatusBadRequest, QueryResponse{Error: err.Error()})
		return
	}

	if req.Explain {
		// Plan only — nothing executes, no cache interaction.
		info, err := s.in.ExplainQuery(q, s.opts.Exec)
		if err != nil {
			s.errors.Add(1)
			writeJSON(w, http.StatusUnprocessableEntity, QueryResponse{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, QueryResponse{Explain: info})
		return
	}

	if req.Stream || wantsNDJSON(r) {
		s.handleStreamCMQ(w, r, q, req)
		return
	}

	start := time.Now()
	s.inFlightQueries.Add(1)
	defer func() {
		s.inFlightQueries.Add(-1)
		s.querySeconds.ObserveSince(start)
	}()

	key, epoch := s.generationKey(q.CanonicalKey())
	if res, ok := s.cacheGet(key); ok {
		s.hits.Add(1)
		s.recorder.Record(obs.QueryRecord{Query: req.Query, Start: start,
			Duration: time.Since(start), Rows: len(res.Rows), CacheHit: true})
		// A cache hit executed nothing: report zeroed stats so clients
		// (and benchmarks) can observe that no sub-query was shipped.
		writeJSON(w, http.StatusOK, QueryResponse{Cols: res.Cols, Rows: res.Rows, Cached: true})
		return
	}
	s.misses.Add(1)

	res, cached, err := s.execute(r.Context(), key, epoch, q)
	if err != nil {
		s.errors.Add(1)
		s.recorder.Record(obs.QueryRecord{Query: req.Query, Start: start,
			Duration: time.Since(start), Err: err.Error()})
		writeJSON(w, http.StatusUnprocessableEntity, QueryResponse{Error: err.Error()})
		return
	}
	resp := QueryResponse{Cols: res.Cols, Rows: res.Rows, Cached: cached}
	if !cached {
		resp.Stats = res.Stats
	}
	if req.Trace {
		// Coalesced followers share the leader's trace: the execution
		// they waited on IS the one that served them.
		resp.Trace = res.Trace
	}
	s.recorder.Record(obs.QueryRecord{Query: req.Query, Start: start,
		Duration: time.Since(start), Rows: len(res.Rows), CacheHit: cached, Trace: res.Trace})
	writeJSON(w, http.StatusOK, resp)
}

// generationKey prefixes the canonical query key with the instance's
// current epoch and lazily flushes the superseded cache generation.
// The epoch in the key is what makes mutation safe: a single-flight
// leader that started before a mutation finishes under the old epoch's
// key, so post-mutation requests can neither join it nor read the
// result it caches.
func (s *Server) generationKey(canonical string) (string, uint64) {
	epoch := s.in.Epoch()
	s.mu.Lock()
	// Strictly newer only: a request that loaded the epoch just before
	// a concurrent mutation must not regress the generation and flush
	// entries the newer generation just cached.
	if epoch > s.gen {
		if s.cache != nil {
			s.cache.Clear()
		}
		s.gen = epoch
		s.invalidations.Add(1)
	}
	s.mu.Unlock()
	return strconv.FormatUint(epoch, 10) + "|" + canonical, epoch
}

// execute runs the query under the single-flight guard: the first
// caller for a key executes; identical concurrent callers wait and
// share the leader's result (cached=true for them — they shipped no
// sub-queries of their own). With result caching disabled the guard is
// off too: every request executes for itself, directly under its own
// request context. epoch is the generation the key belongs to: a
// leader finishing after a newer generation flushed skips the Put —
// its old-epoch key could never be read again and would only waste
// LRU slots.
//
// Cancellation: the leader executes under a context detached from its
// own request but cancelled as soon as the LAST interested request
// (leader or coalesced follower) goes away — a disconnected leader
// whose followers still wait must not abort their shared execution,
// while a query nobody waits for anymore must stop probing remotes.
func (s *Server) execute(ctx context.Context, key string, epoch uint64, q *core.CMQ) (res *core.QueryResult, cached bool, err error) {
	if s.cache == nil {
		res, err = s.in.ExecuteContext(ctx, q, s.opts.Exec)
		if err == nil {
			s.subQueries.Add(int64(res.Stats.SubQueries))
			s.batchProbes.Add(int64(res.Stats.BatchProbes))
			s.prunedProbes.Add(int64(res.Stats.PrunedProbes))
		}
		return res, false, err
	}
	s.mu.Lock()
	// Re-check the cache under the lock: a leader may have finished
	// (inflight entry gone, result cached) between the handler's
	// cacheGet and here; without this a request in that window would
	// become a new leader and re-execute an already-cached query.
	if res, ok := s.cache.Get(key); ok {
		s.mu.Unlock()
		return res, true, nil
	}
	if call, ok := s.inflight[key]; ok {
		// The entry being present implies waiters > 0: the drop to zero
		// removes it under this same mutex, so this join cannot revive a
		// flight that is already being cancelled.
		call.waiters++
		s.mu.Unlock()
		s.coalesced.Add(1)
		stop := s.watchFlight(ctx, key, call)
		defer stop()
		<-call.done
		return call.res, true, call.err
	}
	fctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	call := &flightCall{done: make(chan struct{}), cancel: cancel, waiters: 1}
	s.inflight[key] = call
	s.mu.Unlock()
	stop := s.watchFlight(ctx, key, call)

	call.res, call.err = s.in.ExecuteContext(fctx, q, s.opts.Exec)
	stop()
	cancel()
	if call.err == nil {
		s.subQueries.Add(int64(call.res.Stats.SubQueries))
		s.batchProbes.Add(int64(call.res.Stats.BatchProbes))
		s.prunedProbes.Add(int64(call.res.Stats.PrunedProbes))
	}

	s.mu.Lock()
	// The last-waiter path may have removed the flight already — and a
	// NEW leader may have claimed the key since — so only delete our own
	// entry.
	if s.inflight[key] == call {
		delete(s.inflight, key)
	}
	if call.err == nil && epoch == s.gen {
		s.cache.Put(key, call.res)
	}
	s.mu.Unlock()
	close(call.done)
	return call.res, false, call.err
}

func (s *Server) cacheGet(key string) (*core.QueryResult, bool) {
	if s.cache == nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cache.Get(key)
}

// maxQueryBytes bounds a POST /cmq body; larger requests are rejected
// outright rather than silently truncated to a still-parseable prefix.
const maxQueryBytes = 1 << 20

// readBody reads at most max bytes of the request body — larger bodies
// are rejected outright rather than silently truncated — and reports
// whether the request declared a JSON content type.
func readBody(r *http.Request, max int64) ([]byte, bool, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, max+1))
	if err != nil {
		return nil, false, fmt.Errorf("server: read body: %w", err)
	}
	if int64(len(body)) > max {
		return nil, false, fmt.Errorf("server: body exceeds %d bytes", max)
	}
	mt, _, err := mime.ParseMediaType(r.Header.Get("Content-Type"))
	return body, err == nil && mt == "application/json", nil
}

// readQuery extracts the request from the body of POST /cmq: a JSON
// QueryRequest envelope when Content-Type is application/json,
// otherwise the raw body as the query text with every flag off.
func readQuery(r *http.Request) (QueryRequest, error) {
	body, isJSON, err := readBody(r, maxQueryBytes)
	if err != nil {
		return QueryRequest{}, err
	}
	if isJSON {
		var req QueryRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return QueryRequest{}, fmt.Errorf("server: bad JSON body: %w", err)
		}
		if strings.TrimSpace(req.Query) == "" {
			return QueryRequest{}, fmt.Errorf("server: empty query")
		}
		return req, nil
	}
	text := string(body)
	if strings.TrimSpace(text) == "" {
		return QueryRequest{}, fmt.Errorf("server: empty query")
	}
	return QueryRequest{Query: text}, nil
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

// NewHTTPServer wraps a handler in an http.Server with sane timeouts —
// a bare ListenAndServe has none and is slowloris-vulnerable. Shared by
// the mediator service and cmd/sourced. The write timeout is generous
// because it bounds the whole handler, and a cold federated query can
// legitimately ship many slow remote sub-queries; the slowloris defense
// is the header/read timeouts, not the write bound.
func NewHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      15 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
}
