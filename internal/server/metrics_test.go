package server_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"tatooine/internal/server"
)

var metricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// scrapeMetrics GETs /metrics and parses the Prometheus text format
// strictly: every line must be a well-formed HELP/TYPE comment or a
// `name{labels} value` sample with a parseable float, or the scrape
// fails the test. Returns samples keyed by the full series name
// (labels included).
func scrapeMetrics(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("GET /metrics: content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# HELP ") && !strings.HasPrefix(line, "# TYPE ") {
				t.Fatalf("unparseable comment line: %q", line)
			}
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable sample line: %q", line)
		}
		series, val := line[:i], line[i+1:]
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		base := series
		if j := strings.IndexByte(series, '{'); j >= 0 {
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("unbalanced labels in %q", line)
			}
			base = series[:j]
		}
		if !metricName.MatchString(base) {
			t.Fatalf("invalid metric name in %q", line)
		}
		if _, dup := out[series]; dup {
			t.Fatalf("duplicate series %q", series)
		}
		out[series] = f
	}
	return out
}

func TestMetricsEndpoint(t *testing.T) {
	in, _ := fixture(t)
	srv := server.New(in, server.Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	postCMQ(t, ts.URL, testQuery) // miss: executes
	first := scrapeMetrics(t, ts.URL)
	postCMQ(t, ts.URL, testQuery) // hit: result cache
	second := scrapeMetrics(t, ts.URL)

	// The server-scoped counters are exact: two requests, one miss, one
	// hit, both scrapes monotone in between.
	if got := second["tat_requests_total"]; got != 2 {
		t.Fatalf("tat_requests_total = %v, want 2", got)
	}
	if got := second["tat_result_cache_hits_total"]; got != 1 {
		t.Fatalf("tat_result_cache_hits_total = %v, want 1", got)
	}
	if got := second["tat_result_cache_misses_total"]; got != 1 {
		t.Fatalf("tat_result_cache_misses_total = %v, want 1", got)
	}
	for _, name := range []string{"tat_requests_total", "tat_query_seconds_count"} {
		if second[name] <= first[name] {
			t.Fatalf("%s did not increase across queries: %v -> %v", name, first[name], second[name])
		}
	}
	if got := second["tat_queries_in_flight"]; got != 0 {
		t.Fatalf("tat_queries_in_flight = %v after queries finished, want 0", got)
	}

	// Histogram invariants: buckets are cumulative (monotone in le) and
	// the +Inf bucket matches _count for every exported histogram.
	counts := 0
	for series, total := range second {
		base, ok := strings.CutSuffix(series, "_count")
		if !ok || strings.ContainsRune(base, '{') {
			continue
		}
		prefix := base + "_bucket{le=\""
		buckets := 0
		for s, v := range second {
			if !strings.HasPrefix(s, prefix) {
				continue
			}
			buckets++
			if v < 0 {
				t.Fatalf("negative bucket %q = %v", s, v)
			}
		}
		if buckets == 0 {
			continue // not a histogram (plain counter ending in _count)
		}
		counts++
		inf := second[base+"_bucket{le=\"+Inf\"}"]
		if inf != total {
			t.Fatalf("%s: +Inf bucket %v != _count %v", base, inf, total)
		}
		if sum, ok := second[base+"_sum"]; !ok {
			t.Fatalf("%s: missing _sum", base)
		} else if total > 0 && sum < 0 {
			t.Fatalf("%s: negative _sum %v", base, sum)
		}
	}
	if counts == 0 {
		t.Fatal("no histograms found on /metrics")
	}

	// The query latency histogram observed both requests.
	if got := second["tat_query_seconds_count"]; got != 2 {
		t.Fatalf("tat_query_seconds_count = %v, want 2", got)
	}
}

// TestMetricsBucketsCumulative checks the le ordering explicitly: each
// bucket of the query-latency histogram holds at least the count of
// every smaller bound.
func TestMetricsBucketsCumulative(t *testing.T) {
	in, _ := fixture(t)
	srv := server.New(in, server.Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	postCMQ(t, ts.URL, testQuery)

	samples := scrapeMetrics(t, ts.URL)
	type bucket struct {
		le float64
		v  float64
	}
	var buckets []bucket
	for s, v := range samples {
		rest, ok := strings.CutPrefix(s, `tat_query_seconds_bucket{le="`)
		if !ok {
			continue
		}
		leStr := strings.TrimSuffix(rest, `"}`)
		if leStr == "+Inf" {
			continue
		}
		le, err := strconv.ParseFloat(leStr, 64)
		if err != nil {
			t.Fatalf("bad le %q: %v", leStr, err)
		}
		buckets = append(buckets, bucket{le, v})
	}
	if len(buckets) < 2 {
		t.Fatalf("expected several finite buckets, got %d", len(buckets))
	}
	for i := range buckets {
		for j := range buckets {
			if buckets[i].le < buckets[j].le && buckets[i].v > buckets[j].v {
				t.Fatalf("bucket le=%v count %v exceeds le=%v count %v",
					buckets[i].le, buckets[i].v, buckets[j].le, buckets[j].v)
			}
		}
	}
}

// TestStatsMatchesMetrics pins the satellite invariant: /stats is read
// back from the same registry /metrics renders, so the two surfaces
// cannot disagree, and /stats reports the server's uptime.
func TestStatsMatchesMetrics(t *testing.T) {
	in, _ := fixture(t)
	srv := server.New(in, server.Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	postCMQ(t, ts.URL, testQuery)
	postCMQ(t, ts.URL, testQuery)

	st := srv.Stats()
	samples := scrapeMetrics(t, ts.URL)
	if float64(st.Requests) != samples["tat_requests_total"] {
		t.Fatalf("stats.Requests %d != tat_requests_total %v", st.Requests, samples["tat_requests_total"])
	}
	if float64(st.CacheHits) != samples["tat_result_cache_hits_total"] {
		t.Fatalf("stats.CacheHits %d != tat_result_cache_hits_total %v", st.CacheHits, samples["tat_result_cache_hits_total"])
	}
	if st.UptimeSeconds <= 0 {
		t.Fatalf("stats.UptimeSeconds = %v, want > 0", st.UptimeSeconds)
	}
}
