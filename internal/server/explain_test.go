package server_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"tatooine/internal/core"
	"tatooine/internal/rdf"
	"tatooine/internal/relstore"
	"tatooine/internal/server"
	"tatooine/internal/source"
)

// batchFixture is like fixture but keeps the relational source's
// native BatchProber capability (no counting wrapper) and binds two
// distinct departments so the bind join actually batches.
func batchFixture(t testing.TB) *core.Instance {
	t.Helper()
	g := rdf.NewGraph()
	g.AddAll(rdf.MustParse(`
@prefix : <http://t.example/> .
:p1 a :politician ; :position :headOfState ; :electedIn "75" .
:p2 a :politician ; :position :headOfState ; :electedIn "92" .
`))
	in := core.NewInstance(g, core.WithPrefixes(map[string]string{"": "http://t.example/"}))
	db := relstore.NewDatabase("insee")
	for _, q := range []string{
		"CREATE TABLE chomage (dept TEXT, taux FLOAT)",
		"INSERT INTO chomage VALUES ('75', 8.4), ('92', 7.2)",
	} {
		if _, err := db.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.AddSource(source.NewRelSource("sql://insee", db)); err != nil {
		t.Fatal(err)
	}
	return in
}

// TestServeBatchedBindJoinCountsBatchProbes checks the whole stack:
// a bind join with two distinct bindings against a batch-capable
// source (RelSource under the interposed probe cache) ships ONE
// batched probe, and the server surfaces it on /stats.
func TestServeBatchedBindJoinCountsBatchProbes(t *testing.T) {
	srv := server.New(batchFixture(t), server.Options{Exec: core.ExecOptions{Parallel: true}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, qr := postCMQ(t, ts.URL, testQuery)
	if code != http.StatusOK || qr.Error != "" {
		t.Fatalf("status %d, err %q", code, qr.Error)
	}
	if len(qr.Rows) != 2 {
		t.Fatalf("rows: %+v", qr.Rows)
	}
	// Graph scan + one batched probe covering both bindings.
	if qr.Stats.SubQueries != 2 || qr.Stats.BatchProbes != 1 || qr.Stats.BindJoins != 1 {
		t.Errorf("exec stats: %+v", qr.Stats)
	}
	st := srv.Stats()
	if st.BatchProbes != 1 || st.SubQueries != 2 {
		t.Errorf("server stats: %+v", st)
	}
}

// TestServeExplainPlansWithoutExecuting checks POST /cmq with
// {"explain": true}: the response carries the plan and per-atom batch
// decisions, nothing executes, and nothing is cached.
func TestServeExplainPlansWithoutExecuting(t *testing.T) {
	in, cs := fixture(t) // counting wrapper hides BatchProber
	srv := server.New(in, server.Options{Exec: core.ExecOptions{Parallel: true}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, _ := json.Marshal(server.QueryRequest{Query: testQuery, Explain: true})
	resp, err := http.Post(ts.URL+"/cmq", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr server.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || qr.Error != "" {
		t.Fatalf("status %d, err %q", resp.StatusCode, qr.Error)
	}
	if qr.Explain == nil || !strings.Contains(qr.Explain.Plan, "bind-join") {
		t.Fatalf("explain payload: %+v", qr.Explain)
	}
	if len(qr.Explain.Atoms) != 2 {
		t.Fatalf("atoms: %+v", qr.Explain.Atoms)
	}
	var bindAtom *core.AtomExplain
	for i := range qr.Explain.Atoms {
		if strings.HasPrefix(qr.Explain.Atoms[i].Mode, "bind-join") {
			bindAtom = &qr.Explain.Atoms[i]
		}
	}
	if bindAtom == nil {
		t.Fatalf("no bind-join atom in %+v", qr.Explain.Atoms)
	}
	// The counting wrapper hides the BatchProber capability, so the
	// decision must be per-probe with a capability reason.
	if bindAtom.Batched || !strings.Contains(bindAtom.Reason, "BatchProber") {
		t.Errorf("bind atom decision: %+v", bindAtom)
	}
	if len(qr.Rows) != 0 {
		t.Errorf("explain returned rows: %+v", qr.Rows)
	}
	if got := cs.executes.Load(); got != 0 {
		t.Errorf("explain executed %d probes", got)
	}
	if st := srv.Stats(); st.SubQueries != 0 || st.CacheHits != 0 || st.CacheMisses != 0 || st.CacheEntries != 0 {
		t.Errorf("explain touched execution/caches: %+v", st)
	}
}

// TestServeExplainBatchCapable checks the positive decision: a
// batch-capable source reports Batched=true with the effective batch
// size.
func TestServeExplainBatchCapable(t *testing.T) {
	srv := server.New(batchFixture(t), server.Options{Exec: core.ExecOptions{Parallel: true}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, _ := json.Marshal(server.QueryRequest{Query: testQuery, Explain: true})
	resp, err := http.Post(ts.URL+"/cmq", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr server.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range qr.Explain.Atoms {
		if strings.HasPrefix(a.Mode, "bind-join") {
			found = true
			if !a.Batched || a.BatchSize != core.DefaultProbeBatch {
				t.Errorf("batch decision: %+v", a)
			}
		}
	}
	if !found {
		t.Fatalf("no bind-join atom: %+v", qr.Explain)
	}
}
