package server_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"tatooine/internal/core"
	"tatooine/internal/federation"
	"tatooine/internal/rdf"
	"tatooine/internal/relstore"
	"tatooine/internal/server"
	"tatooine/internal/source"
)

// saturatedFixture builds a mutable mixed instance whose graph atom
// only answers through G∞ (heads of state are politicians via
// rdfs:subClassOf), so a stale saturation is observable end to end.
func saturatedFixture(t testing.TB) (*core.Instance, *countingSource) {
	g := rdf.NewGraph()
	g.AddAll(rdf.MustParse(`
@prefix : <http://t.example/> .
:headOfState rdfs:subClassOf :politician .
:p1 a :headOfState ; :electedIn "75" .
`))
	in := core.NewInstance(g, core.WithSaturation(),
		core.WithPrefixes(map[string]string{"": "http://t.example/"}))

	db := relstore.NewDatabase("insee")
	for _, q := range []string{
		"CREATE TABLE chomage (dept TEXT, taux FLOAT)",
		"INSERT INTO chomage VALUES ('75', 8.4), ('92', 7.2)",
	} {
		if _, err := db.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	cs := &countingSource{DataSource: source.NewRelSource("sql://insee", db)}
	if err := in.AddSource(cs); err != nil {
		t.Fatal(err)
	}
	return in, cs
}

const saturatedQuery = `
QUERY q(?dept, ?taux)
GRAPH { ?x a :politician . ?x :electedIn ?dept }
FROM <sql://insee> IN(?dept) OUT(?dept, ?taux)
  { SELECT dept, taux FROM chomage WHERE dept = ? }
`

func getStats(t testing.TB, url string) server.Stats {
	t.Helper()
	resp, err := http.Get(url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st server.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func postJSON(t testing.TB, url string, body any) (int, map[string]any) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := map[string]any{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// TestMutationInvalidationEndToEnd is the acceptance test of the
// epoch-based invalidation subsystem: the instance is mutated through
// the server (graph insert, then source drop) and the VERY NEXT
// POST /cmq must reflect each mutation — no stale result-cache,
// probe-cache, or saturation hit — while /stats reports the advancing
// epoch and the invalidation counters.
func TestMutationInvalidationEndToEnd(t *testing.T) {
	in, cs := saturatedFixture(t)
	srv := server.New(in, server.Options{Exec: core.ExecOptions{Parallel: true}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// AddSource in the fixture already bumped the epoch once.
	baseEpoch := in.Epoch()

	status, first := postCMQ(t, ts.URL, saturatedQuery)
	if status != http.StatusOK || first.Cached {
		t.Fatalf("first query: status %d cached=%v", status, first.Cached)
	}
	if len(first.Rows) != 1 || first.Rows[0][0].Str() != "75" {
		t.Fatalf("pre-mutation rows: %+v", first.Rows)
	}
	execsBefore := cs.executes.Load()

	// Mutate G through the server: :p9 is a head of state, hence a
	// politician only in a saturation computed AFTER this insert.
	status, gr := postJSON(t, ts.URL+"/graph", server.GraphRequest{Triples: `
@prefix : <http://t.example/> .
:p9 a :headOfState ; :electedIn "92" .
`})
	if status != http.StatusOK {
		t.Fatalf("graph insert: status %d %v", status, gr)
	}
	if gr["changed"].(float64) != 2 {
		t.Fatalf("graph insert changed %v triples, want 2", gr["changed"])
	}
	if uint64(gr["epoch"].(float64)) != baseEpoch+1 {
		t.Fatalf("graph insert epoch %v, want %d", gr["epoch"], baseEpoch+1)
	}

	// The very next query must see the new politician: the result cache
	// may not serve the pre-mutation entry, the saturation must
	// recompute, and the new dept probe must reach the source.
	status, second := postCMQ(t, ts.URL, saturatedQuery)
	if status != http.StatusOK {
		t.Fatalf("post-insert query: status %d (%s)", status, second.Error)
	}
	if second.Cached {
		t.Fatal("post-insert query served from the pre-mutation result cache")
	}
	if len(second.Rows) != 2 {
		t.Fatalf("post-insert rows = %d, want 2: %+v", len(second.Rows), second.Rows)
	}
	depts := map[string]bool{}
	for _, r := range second.Rows {
		depts[r[0].Str()] = true
	}
	if !depts["75"] || !depts["92"] {
		t.Fatalf("post-insert depts: %+v", second.Rows)
	}
	if got := cs.executes.Load(); got <= execsBefore {
		t.Error("new dept probe never reached the source (stale probe answer)")
	}

	// Drop the relational source through the server; the very next
	// identical query must fail to resolve it — not serve cached rows.
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/sources?uri="+url.QueryEscape("sql://insee"), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("source drop: status %d", resp.StatusCode)
	}

	status, third := postCMQ(t, ts.URL, saturatedQuery)
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("post-drop query: status %d rows %+v (stale cache served a dropped source)", status, third.Rows)
	}
	if !strings.Contains(third.Error, "sql://insee") {
		t.Errorf("post-drop error: %q", third.Error)
	}

	st := getStats(t, ts.URL)
	if st.Epoch != baseEpoch+2 {
		t.Errorf("stats epoch = %d, want %d", st.Epoch, baseEpoch+2)
	}
	if st.Mutations != 2 {
		t.Errorf("stats mutations = %d, want 2", st.Mutations)
	}
	if st.Invalidations != 2 {
		t.Errorf("stats invalidations = %d, want 2 (one generation flush per mutation)", st.Invalidations)
	}
	if st.CacheHits != 0 {
		t.Errorf("a post-mutation query hit the result cache: %+v", st)
	}
}

// TestGraphRemoveOverHTTP: DELETE /graph removes triples (raw Turtle
// body form) and the next query stops seeing them.
func TestGraphRemoveOverHTTP(t *testing.T) {
	in, _ := saturatedFixture(t)
	srv := server.New(in, server.Options{Exec: core.ExecOptions{Parallel: true}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if status, qr := postCMQ(t, ts.URL, saturatedQuery); status != http.StatusOK || len(qr.Rows) != 1 {
		t.Fatalf("seed query: status %d rows %+v", status, qr.Rows)
	}

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/graph",
		strings.NewReader("@prefix : <http://t.example/> .\n:p1 :electedIn \"75\" ."))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var gr server.GraphResponse
	if err := json.NewDecoder(resp.Body).Decode(&gr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || gr.Changed != 1 {
		t.Fatalf("graph remove: status %d %+v", resp.StatusCode, gr)
	}

	status, qr := postCMQ(t, ts.URL, saturatedQuery)
	if status != http.StatusOK || qr.Cached {
		t.Fatalf("post-remove query: status %d cached=%v", status, qr.Cached)
	}
	if len(qr.Rows) != 0 {
		t.Errorf("removed triple still answers: %+v", qr.Rows)
	}
}

// TestGraphInsertRejectsBadBodies: malformed Turtle and empty bodies
// are client errors and must not bump the epoch.
func TestGraphInsertRejectsBadBodies(t *testing.T) {
	in, _ := saturatedFixture(t)
	srv := server.New(in, server.Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	epoch := in.Epoch()

	for name, body := range map[string]string{
		"empty":      "",
		"bad turtle": ":p10 :electedIn",
	} {
		resp, err := http.Post(ts.URL+"/graph", "text/plain", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	if in.Epoch() != epoch {
		t.Errorf("rejected mutations bumped the epoch to %d", in.Epoch())
	}
}

// TestAddSourceOverHTTP: POST /sources dials a federation endpoint,
// registers it (probe-cache wrapped like any seed source), and the
// next query can use it without a server restart.
func TestAddSourceOverHTTP(t *testing.T) {
	in, _ := saturatedFixture(t)
	srv := server.New(in, server.Options{Exec: core.ExecOptions{Parallel: true}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	db := relstore.NewDatabase("remote")
	for _, q := range []string{
		"CREATE TABLE pop (dept TEXT, habitants INT)",
		"INSERT INTO pop VALUES ('75', 2148000)",
	} {
		if _, err := db.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	endpoint := httptest.NewServer(federation.Handler(source.NewRelSource("sql://pop", db)))
	defer endpoint.Close()

	status, sr := postJSON(t, ts.URL+"/sources", server.SourceRequest{URL: endpoint.URL})
	if status != http.StatusOK || sr["uri"] != "sql://pop" {
		t.Fatalf("source add: status %d %v", status, sr)
	}

	// The registered remote is decorated with the probe cache.
	s, err := in.ResolveSource("sql://pop")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(*source.Cached); !ok {
		t.Errorf("HTTP-registered source not probe-cache wrapped: %T", s)
	}

	status, qr := postCMQ(t, ts.URL, `
QUERY q(?dept, ?habitants)
FROM <sql://pop> OUT(?dept, ?habitants) { SELECT dept, habitants FROM pop }
`)
	if status != http.StatusOK || len(qr.Rows) != 1 {
		t.Fatalf("query over added source: status %d rows %+v (%s)", status, qr.Rows, qr.Error)
	}

	// Registering the same endpoint twice is a conflict.
	if status, _ := postJSON(t, ts.URL+"/sources", server.SourceRequest{URL: endpoint.URL}); status != http.StatusConflict {
		t.Errorf("duplicate source add: status %d, want 409", status)
	}
	// An undialable URL is a bad gateway.
	if status, _ := postJSON(t, ts.URL+"/sources", server.SourceRequest{URL: "http://127.0.0.1:1"}); status != http.StatusBadGateway {
		t.Errorf("undialable source add: status %d, want 502", status)
	}
}

// TestDropSourceEscapedPath: the path-escaped DELETE /sources/{uri}
// form resolves the same as the query-parameter form.
func TestDropSourceEscapedPath(t *testing.T) {
	in, _ := saturatedFixture(t)
	srv := server.New(in, server.Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/sources/"+url.PathEscape("sql://insee"), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var sr server.SourceResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || sr.URI != "sql://insee" {
		t.Fatalf("escaped-path drop: status %d %+v", resp.StatusCode, sr)
	}
	// Dropping it again is a 404.
	resp, err = http.DefaultClient.Do(req.Clone(req.Context()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("second drop: status %d, want 404", resp.StatusCode)
	}
}

// TestAdminInvalidateFlushesProbeCache: POST /admin/invalidate drops
// memoized probe rows so the next identical query re-executes against
// the (externally mutated) source, and /stats counts the drop.
func TestAdminInvalidateFlushesProbeCache(t *testing.T) {
	in, cs := saturatedFixture(t)
	srv := server.New(in, server.Options{Exec: core.ExecOptions{Parallel: true}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if status, _ := postCMQ(t, ts.URL, saturatedQuery); status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	execs := cs.executes.Load()
	if execs == 0 {
		t.Fatal("no probe reached the source")
	}

	status, ir := postJSON(t, ts.URL+"/admin/invalidate", server.InvalidateRequest{})
	if status != http.StatusOK {
		t.Fatalf("invalidate: status %d %v", status, ir)
	}
	if ir["probeEntries"].(float64) == 0 {
		t.Fatalf("invalidate dropped no probe entries: %v", ir)
	}

	// Epoch bumped → result cache rotated; probe cache flushed → the
	// same probes travel to the source again.
	status, qr := postCMQ(t, ts.URL, saturatedQuery)
	if status != http.StatusOK || qr.Cached {
		t.Fatalf("post-invalidate query: status %d cached=%v", status, qr.Cached)
	}
	if got := cs.executes.Load(); got <= execs {
		t.Errorf("post-invalidate probes served from flushed cache: %d executions (was %d)", got, execs)
	}

	st := getStats(t, ts.URL)
	if st.ProbeInvalidations == 0 {
		t.Errorf("stats probeInvalidations = 0: %+v", st)
	}

	// Scoped form: an unknown source is a 404.
	status, _ = postJSON(t, ts.URL+"/admin/invalidate", server.InvalidateRequest{Source: "sql://nope"})
	if status != http.StatusNotFound {
		t.Errorf("scoped invalidate of unknown source: status %d, want 404", status)
	}
	// Scoped form against the real source succeeds.
	status, ir = postJSON(t, ts.URL+"/admin/invalidate", server.InvalidateRequest{Source: "sql://insee"})
	if status != http.StatusOK {
		t.Errorf("scoped invalidate: status %d %v", status, ir)
	}
}

// TestAdminInvalidateResponseShape pins the JSON contract of POST
// /admin/invalidate: a successful invalidation ALWAYS carries epoch
// and probeEntries — probeEntries is an explicit 0 when nothing was
// cached, never absent — while an error response carries only error
// (no meaningless zero epoch or probeEntries).
func TestAdminInvalidateResponseShape(t *testing.T) {
	in, _ := saturatedFixture(t)
	// Probe caching disabled: nothing is ever cached, so the flush
	// drops 0 entries — which must still serialize as an explicit 0.
	srv := server.New(in, server.Options{ProbeCacheSize: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	epochBefore := in.Epoch()
	status, ir := postJSON(t, ts.URL+"/admin/invalidate", server.InvalidateRequest{})
	if status != http.StatusOK {
		t.Fatalf("invalidate: status %d %v", status, ir)
	}
	pe, ok := ir["probeEntries"]
	if !ok {
		t.Fatalf("success response must carry probeEntries even when 0: %v", ir)
	}
	if pe.(float64) != 0 {
		t.Errorf("probeEntries = %v, want 0 with probe caching disabled", pe)
	}
	if ep, ok := ir["epoch"]; !ok || ep.(float64) != float64(epochBefore+1) {
		t.Errorf("epoch = %v, want %d (the bump happens even when nothing was cached)", ir["epoch"], epochBefore+1)
	}
	if _, ok := ir["error"]; ok {
		t.Errorf("success response must not carry error: %v", ir)
	}

	// Error response: only error, no zero-valued epoch/probeEntries.
	status, ir = postJSON(t, ts.URL+"/admin/invalidate", server.InvalidateRequest{Source: "sql://nope"})
	if status != http.StatusNotFound {
		t.Fatalf("unknown source: status %d, want 404", status)
	}
	if _, ok := ir["error"]; !ok {
		t.Errorf("error response must carry error: %v", ir)
	}
	for _, k := range []string{"epoch", "probeEntries"} {
		if _, ok := ir[k]; ok {
			t.Errorf("error response must omit %s: %v", k, ir)
		}
	}
}

// TestStatsSaturationBlock: /stats surfaces how G∞ is maintained —
// delta mode absorbs a mutation without a second full recompute.
func TestStatsSaturationBlock(t *testing.T) {
	in, _ := saturatedFixture(t)
	srv := server.New(in, server.Options{Exec: core.ExecOptions{Parallel: true}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if status, _ := postCMQ(t, ts.URL, saturatedQuery); status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	st := getStats(t, ts.URL)
	if st.Saturation.Mode != "delta" {
		t.Fatalf("saturation mode = %q, want delta", st.Saturation.Mode)
	}
	if st.Saturation.FullRecomputes != 1 || st.Saturation.Derived == 0 {
		t.Errorf("after first query: %+v, want 1 full recompute and derived > 0", st.Saturation)
	}

	status, gr := postJSON(t, ts.URL+"/graph", server.GraphRequest{Triples: `
@prefix : <http://t.example/> .
:p7 a :headOfState ; :electedIn "92" .
`})
	if status != http.StatusOK {
		t.Fatalf("graph insert: status %d %v", status, gr)
	}
	st = getStats(t, ts.URL)
	if st.Saturation.DeltaApplies != 1 || st.Saturation.FullRecomputes != 1 {
		t.Errorf("after mutation: %+v, want the insert absorbed as a delta apply", st.Saturation)
	}
}

// TestAdminInvalidateRejectsNonJSONBody: a non-empty body that is not
// JSON must be a 400 — silently ignoring it would turn an intended
// source-scoped invalidation into a full flush.
func TestAdminInvalidateRejectsNonJSONBody(t *testing.T) {
	in, _ := saturatedFixture(t)
	srv := server.New(in, server.Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	epoch := in.Epoch()

	// curl -d defaults to application/x-www-form-urlencoded.
	resp, err := http.Post(ts.URL+"/admin/invalidate", "application/x-www-form-urlencoded",
		strings.NewReader(`{"source":"sql://insee"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("non-JSON body: status %d, want 400", resp.StatusCode)
	}
	if in.Epoch() != epoch {
		t.Errorf("rejected invalidation bumped the epoch to %d", in.Epoch())
	}

	// An empty body remains the documented full-flush form.
	resp, err = http.Post(ts.URL+"/admin/invalidate", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("empty body: status %d, want 200", resp.StatusCode)
	}
}
