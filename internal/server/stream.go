package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"time"

	"tatooine/internal/core"
	"tatooine/internal/obs"
	"tatooine/internal/value"
)

// StreamRecord is one line of a streamed POST /cmq response
// (Content-Type application/x-ndjson): exactly one JSON object per
// line, exactly one of the fields below populated per record. The
// sequence on the wire is
//
//	{"cols": [...]}                 header: result column names
//	{"row": [...]}                  one record per result row, flushed
//	                                in executor batches as they land
//	{"stats": {...}, "cached": b}   trailer: final execution counters
//	                                (plus "trace" — the execution's
//	                                span tree — when the request asked
//	                                for one)
//
// and a failure after the header — the status line is long since on
// the wire — ends the stream with a terminal
//
//	{"error": "..."}
//
// record instead of the trailer; rows already delivered stand (they
// are correct, just incomplete). Errors detected before execution
// starts (parse, planning) are still ordinary JSON 4xx responses.
type StreamRecord struct {
	Cols   []string        `json:"cols,omitempty"`
	Row    value.Row       `json:"row,omitempty"`
	Stats  *core.ExecStats `json:"stats,omitempty"`
	Cached *bool           `json:"cached,omitempty"`
	Trace  *obs.SpanData   `json:"trace,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// wantsNDJSON reports whether the request negotiated a streamed
// response through its Accept header.
func wantsNDJSON(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
}

// handleStreamCMQ answers POST /cmq as an NDJSON stream: rows go out
// as the executor produces them (first rows at first-probe latency,
// while upstream bind joins are still probing), the client
// disconnecting cancels the whole pipeline through the request
// context, and a LIMIT satisfied early stops upstream probes the same
// way. A result-cache hit replays the cached rows in the same framing,
// so clients speak one protocol; a miss executes directly under the
// request context — streamed executions are not coalesced and their
// results are not cached (the rows leave as they arrive; buffering
// them for the cache would reintroduce materialization).
func (s *Server) handleStreamCMQ(w http.ResponseWriter, r *http.Request, q *core.CMQ, req QueryRequest) {
	s.streamed.Add(1)
	s.inFlightStreams.Add(1)
	s.inFlightQueries.Add(1)
	start := time.Now()
	defer func() {
		s.inFlightStreams.Add(-1)
		s.inFlightQueries.Add(-1)
		s.querySeconds.ObserveSince(start)
	}()

	key, _ := s.generationKey(q.CanonicalKey())
	if res, ok := s.cacheGet(key); ok {
		s.hits.Add(1)
		sw := newStreamWriter(w)
		sw.header(res.Cols)
		for i := 0; i < len(res.Rows); i += core.StreamBatchRows {
			end := min(i+core.StreamBatchRows, len(res.Rows))
			sw.rows(res.Rows[i:end])
			if i == 0 {
				s.ttfrSeconds.ObserveSince(start)
			}
		}
		if len(res.Rows) == 0 {
			s.ttfrSeconds.ObserveSince(start)
		}
		s.recorder.Record(obs.QueryRecord{Query: req.Query, Start: start,
			Duration: time.Since(start), Rows: len(res.Rows), Streamed: true, CacheHit: true})
		// A cache hit executed nothing: zeroed stats, like the JSON path.
		sw.trailer(&core.ExecStats{}, true, nil)
		return
	}
	s.misses.Add(1)

	sr, err := s.in.ExecuteStream(r.Context(), q, s.opts.Exec)
	if err != nil {
		// Nothing is on the wire yet: planning errors stay ordinary JSON.
		s.errors.Add(1)
		s.recorder.Record(obs.QueryRecord{Query: req.Query, Start: start,
			Duration: time.Since(start), Streamed: true, Err: err.Error()})
		writeJSON(w, http.StatusUnprocessableEntity, QueryResponse{Error: err.Error()})
		return
	}
	defer sr.Close()

	sw := newStreamWriter(w)
	sw.header(sr.Cols)
	rows, first := 0, true
	for {
		batch, err := sr.NextBatch()
		if err != nil {
			s.errors.Add(1)
			s.recorder.Record(obs.QueryRecord{Query: req.Query, Start: start,
				Duration: time.Since(start), Rows: rows, Streamed: true,
				Err: err.Error(), Trace: sr.Trace()})
			sw.fail(err)
			return
		}
		if len(batch) == 0 {
			break
		}
		if first {
			s.ttfrSeconds.ObserveSince(start)
			first = false
		}
		rows += len(batch)
		sw.rows(batch)
	}
	if first {
		// Empty result: the trailer is the first (and only) payload.
		s.ttfrSeconds.ObserveSince(start)
	}
	stats := sr.Stats()
	s.subQueries.Add(int64(stats.SubQueries))
	s.batchProbes.Add(int64(stats.BatchProbes))
	s.prunedProbes.Add(int64(stats.PrunedProbes))
	trace := sr.Trace() // complete: the stream has ended
	s.recorder.Record(obs.QueryRecord{Query: req.Query, Start: start,
		Duration: time.Since(start), Rows: rows, Streamed: true, Trace: trace})
	if !req.Trace {
		trace = nil
	}
	sw.trailer(&stats, false, trace)
}

// streamWriter frames StreamRecords onto the wire, flushing after
// every call so each executor batch reaches the client immediately
// instead of sitting in the ResponseWriter's buffer until the handler
// returns.
type streamWriter struct {
	w   http.ResponseWriter
	f   http.Flusher
	enc *json.Encoder
}

func newStreamWriter(w http.ResponseWriter) *streamWriter {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	f, _ := w.(http.Flusher)
	return &streamWriter{w: w, f: f, enc: json.NewEncoder(w)}
}

func (sw *streamWriter) flush() {
	if sw.f != nil {
		sw.f.Flush()
	}
}

func (sw *streamWriter) header(cols []string) {
	if cols == nil {
		cols = []string{}
	}
	_ = sw.enc.Encode(StreamRecord{Cols: cols})
	sw.flush()
}

func (sw *streamWriter) rows(rows []value.Row) {
	for _, row := range rows {
		if row == nil {
			row = value.Row{}
		}
		_ = sw.enc.Encode(StreamRecord{Row: row})
	}
	sw.flush()
}

func (sw *streamWriter) trailer(stats *core.ExecStats, cached bool, trace *obs.SpanData) {
	_ = sw.enc.Encode(StreamRecord{Stats: stats, Cached: &cached, Trace: trace})
	sw.flush()
}

func (sw *streamWriter) fail(err error) {
	_ = sw.enc.Encode(StreamRecord{Error: err.Error()})
	sw.flush()
}
