package analytics

import (
	"fmt"
	"testing"

	"tatooine/internal/doc"
	"tatooine/internal/fulltext"
)

func TestPMIFormula(t *testing.T) {
	// Party says w in 10 of 100 words; corpus has w in 20 of 1000 words:
	// PMI = (10/100) / (20/1000) = 0.1 / 0.02 = 5.
	if got := PMI(10, 100, 20, 1000); got != 5 {
		t.Errorf("PMI = %f, want 5", got)
	}
	// Party usage at corpus rate → PMI 1 (no signal).
	if got := PMI(2, 100, 20, 1000); got != 1 {
		t.Errorf("baseline PMI = %f, want 1", got)
	}
	if PMI(0, 100, 20, 1000) != 0 || PMI(10, 0, 20, 1000) != 0 {
		t.Error("zero counts must yield 0")
	}
}

func TestRankTermsOrderingAndThreshold(t *testing.T) {
	party := map[string]int{"abus": 8, "vote": 4, "hapax": 1, "commun": 10}
	corpus := map[string]int{"abus": 10, "vote": 40, "hapax": 1, "commun": 100}
	ranked := RankTerms(party, 23, corpus, 151, 0, 2)
	if len(ranked) != 3 { // hapax filtered by minCount=2
		t.Fatalf("ranked: %+v", ranked)
	}
	if ranked[0].Term != "abus" {
		t.Errorf("top term: %+v", ranked)
	}
	// Verify descending scores.
	for i := 1; i < len(ranked); i++ {
		if ranked[i-1].Score < ranked[i].Score {
			t.Errorf("not descending: %+v", ranked)
		}
	}
	// Top-k cut.
	if got := RankTerms(party, 23, corpus, 151, 1, 1); len(got) != 1 {
		t.Errorf("topK: %+v", got)
	}
}

// stateEmergencyIndex builds a 2-week, 2-party corpus with planted
// vocabulary skew, as in Figure 3: ecologists raise "abus" in week 2.
func stateEmergencyIndex(t *testing.T) (*fulltext.Index, Classifier) {
	t.Helper()
	ix := fulltext.NewIndex("tweets", fulltext.Schema{
		"text":             fulltext.TextField,
		"user.screen_name": fulltext.KeywordField,
	})
	add := func(id, author, text string, week int) {
		d := &doc.Document{ID: id}
		d.Set("text", text)
		d.Set("user.screen_name", author)
		d.Set("week", week)
		if err := ix.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	// Week 1: factual vocabulary everywhere.
	for i := 0; i < 5; i++ {
		add(fmt.Sprintf("l1-%d", i), "left1", "attentats paris deuil national urgence", 1)
		add(fmt.Sprintf("e1-%d", i), "eco1", "attentats paris solidarite urgence", 1)
	}
	// Week 2: ecologists object (abus, excès, risque).
	for i := 0; i < 5; i++ {
		add(fmt.Sprintf("l2-%d", i), "left1", "parlement vote urgence prolongation", 2)
		add(fmt.Sprintf("e2-%d", i), "eco1", "abus exces risque libertes urgence", 2)
	}
	partyOf := map[string]string{"left1": "PS", "eco1": "EELV"}
	classify := func(d *doc.Document) (string, int, bool) {
		author := ""
		if vals := d.Values("user.screen_name"); len(vals) > 0 {
			author = vals[0].Str()
		}
		p, ok := partyOf[author]
		if !ok {
			return "", 0, false
		}
		week := int(d.Values("week")[0].Int())
		return p, week, true
	}
	return ix, classify
}

func TestComputeTagCloudsWeeklyEvolution(t *testing.T) {
	ix, classify := stateEmergencyIndex(t)
	tc := ComputeTagClouds(ix, "text", classify, 5, 2)
	if len(tc.Weeks) != 2 {
		t.Fatalf("weeks: %+v", tc.Weeks)
	}
	if tc.Weeks[0].Week != 1 || tc.Weeks[1].Week != 2 {
		t.Errorf("week order: %+v", tc.Weeks)
	}
	// Week 2 EELV must rank the objection vocabulary top (planted skew).
	eelv := tc.Weeks[1].Parties["EELV"]
	if len(eelv) == 0 {
		t.Fatal("no EELV terms in week 2")
	}
	topTerms := map[string]bool{}
	for _, ts := range eelv {
		topTerms[ts.Term] = true
	}
	if !topTerms["abu"] { // "abus" stemmed
		t.Errorf("EELV week-2 cloud missing stemmed abu: %+v", eelv)
	}
	// "urgence" is corpus-wide background: its PMI must be ~1, below the
	// party-specific terms.
	for _, ts := range eelv {
		if ts.Term == "urgenc" || ts.Term == "urgence" {
			if ts.Score > 1.5 {
				t.Errorf("background term over-scored: %+v", ts)
			}
		}
	}
	// PS week-2 must NOT feature 'abus'.
	for _, ts := range tc.Weeks[1].Parties["PS"] {
		if ts.Term == "abu" {
			t.Errorf("PS cloud contains ecologist term: %+v", ts)
		}
	}
	if got := tc.PartyNames(); len(got) != 2 || got[0] != "EELV" || got[1] != "PS" {
		t.Errorf("party names: %v", got)
	}
}

func TestComputeTagCloudsSkipsUnclassified(t *testing.T) {
	ix, _ := stateEmergencyIndex(t)
	none := func(*doc.Document) (string, int, bool) { return "", 0, false }
	tc := ComputeTagClouds(ix, "text", none, 5, 1)
	if len(tc.Weeks) != 0 {
		t.Errorf("unclassified docs should produce no clouds: %+v", tc.Weeks)
	}
}
