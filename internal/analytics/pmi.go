// Package analytics implements the paper's scenario (2) analytics
// (§3): comparing the vocabulary of political parties on a topic by
// ranking every term w used by a party P within a tweet set Q by its
// exponentiated pointwise mutual information,
//
//	PMI(w, Q) = (Σ_{t∈P} n_tw / Σ_{t∈P} n_t) · (N_Q / n_Qw)
//
// where n_tw is the count of w in tweet t, n_t the number of words in
// t, N_Q the total word count of Q, and n_Qw the count of w in Q —
// i.e., the Maximum-Likelihood-Estimated probability of w in the party
// divided by its global probability in the corpus. The weekly,
// per-party top terms drive the Figure 3 tag clouds.
package analytics

import (
	"sort"

	"tatooine/internal/doc"
	"tatooine/internal/fulltext"
)

// TermScore is one ranked term.
type TermScore struct {
	Term  string
	Score float64 // exponentiated PMI
	Count int     // occurrences within the party subset
}

// PMI computes the exponentiated PMI of one term given party-local and
// corpus-wide counts. It returns 0 when the term is absent from either.
func PMI(partyCount, partyTotal, corpusCount, corpusTotal int) float64 {
	if partyCount == 0 || partyTotal == 0 || corpusCount == 0 || corpusTotal == 0 {
		return 0
	}
	pParty := float64(partyCount) / float64(partyTotal)
	pCorpus := float64(corpusCount) / float64(corpusTotal)
	return pParty / pCorpus
}

// RankTerms scores every party term against the corpus and returns the
// top k, requiring at least minCount party occurrences (MLE on rare
// terms is noise; the demo's clouds use a small threshold).
func RankTerms(partyCounts map[string]int, partyTotal int,
	corpusCounts map[string]int, corpusTotal int, k, minCount int) []TermScore {
	if minCount < 1 {
		minCount = 1
	}
	out := make([]TermScore, 0, len(partyCounts))
	for w, n := range partyCounts {
		if n < minCount {
			continue
		}
		score := PMI(n, partyTotal, corpusCounts[w], corpusTotal)
		if score <= 0 {
			continue
		}
		out = append(out, TermScore{Term: w, Score: score, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Term < out[j].Term
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// Classifier assigns a document to a party and a week; ok=false skips
// the document. In the demonstration the party comes from joining the
// tweet's author with the custom RDF graph, and the week from the
// tweet's timestamp.
type Classifier func(d *doc.Document) (party string, week int, ok bool)

// WeekClouds holds the per-party term rankings of one week.
type WeekClouds struct {
	Week    int
	Parties map[string][]TermScore
}

// TagClouds is the full Figure 3 data: weekly evolution of per-party
// vocabulary.
type TagClouds struct {
	Weeks []WeekClouds
}

// ComputeTagClouds scans the index's text field, groups term counts by
// (week, party), and ranks each group against its week's corpus by
// exponentiated PMI.
func ComputeTagClouds(ix *fulltext.Index, field string, classify Classifier, topK, minCount int) *TagClouds {
	type groupKey struct {
		week  int
		party string
	}
	groupCounts := make(map[groupKey]map[string]int)
	groupTotals := make(map[groupKey]int)
	weekCounts := make(map[int]map[string]int)
	weekTotals := make(map[int]int)
	analyzer := ix.Analyzer()

	ix.Each(func(d *doc.Document) bool {
		party, week, ok := classify(d)
		if !ok {
			return true
		}
		gk := groupKey{week, party}
		if groupCounts[gk] == nil {
			groupCounts[gk] = make(map[string]int)
		}
		if weekCounts[week] == nil {
			weekCounts[week] = make(map[string]int)
		}
		for _, v := range d.Values(field) {
			for _, tok := range analyzer.Tokens(v.String()) {
				groupCounts[gk][tok]++
				groupTotals[gk]++
				weekCounts[week][tok]++
				weekTotals[week]++
			}
		}
		return true
	})

	weeks := make(map[int]*WeekClouds)
	for gk, counts := range groupCounts {
		wc, ok := weeks[gk.week]
		if !ok {
			wc = &WeekClouds{Week: gk.week, Parties: make(map[string][]TermScore)}
			weeks[gk.week] = wc
		}
		wc.Parties[gk.party] = RankTerms(counts, groupTotals[gk],
			weekCounts[gk.week], weekTotals[gk.week], topK, minCount)
	}
	out := &TagClouds{}
	var order []int
	for w := range weeks {
		order = append(order, w)
	}
	sort.Ints(order)
	for _, w := range order {
		out.Weeks = append(out.Weeks, *weeks[w])
	}
	return out
}

// PartyNames returns the sorted set of parties across all weeks.
func (tc *TagClouds) PartyNames() []string {
	seen := make(map[string]struct{})
	for _, w := range tc.Weeks {
		for p := range w.Parties {
			seen[p] = struct{}{}
		}
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
