package rdf

import (
	"testing"
)

// graphFromPaper builds the running example of §2.1: journalists are
// employees, worksFor ⊑ paidBy, foundedIn has domain Organization,
// worksFor has range Organization.
func graphFromPaper() *Graph {
	g := NewGraph()
	g.AddAll(MustParse(`
@prefix : <http://tatooine.example/> .
:LeMonde :foundedIn "1944" .
:Samuel :worksFor :LeMonde .
:Samuel a :Journalist .
:Journalist rdfs:subClassOf :Employee .
:worksFor rdfs:subPropertyOf :paidBy .
:foundedIn rdfs:domain :Organization .
:worksFor rdfs:range :Organization .
`))
	return g
}

func iri(s string) Term { return NewIRI("http://tatooine.example/" + s) }

func TestSaturatePaperExample(t *testing.T) {
	g := graphFromPaper()
	sat := Saturate(g)
	got := sat.Graph

	// The paper lists exactly these implicit triples (§2.1).
	wantImplicit := []Triple{
		{iri("Samuel"), iri("paidBy"), iri("LeMonde")},
		{iri("Samuel"), NewIRI(RDFType), iri("Employee")},
		{iri("LeMonde"), NewIRI(RDFType), iri("Organization")},
	}
	for _, tri := range wantImplicit {
		if !got.Contains(tri) {
			t.Errorf("saturation missing implicit triple %v", tri)
		}
	}
	// Original graph must be untouched.
	for _, tri := range wantImplicit {
		if g.Contains(tri) {
			t.Errorf("Saturate mutated its input: found %v", tri)
		}
	}
	if sat.Derived < len(wantImplicit) {
		t.Errorf("Derived = %d, want at least %d", sat.Derived, len(wantImplicit))
	}
}

func TestSaturateSubClassTransitivity(t *testing.T) {
	g := NewGraph()
	g.AddAll(MustParse(`
@prefix : <http://e/> .
:A rdfs:subClassOf :B .
:B rdfs:subClassOf :C .
:C rdfs:subClassOf :D .
:x a :A .
`))
	got := Saturate(g).Graph
	for _, c := range []string{"B", "C", "D"} {
		if !got.Contains(Triple{NewIRI("http://e/x"), NewIRI(RDFType), NewIRI("http://e/" + c)}) {
			t.Errorf("x should be typed %s", c)
		}
	}
	// rdfs11: A subClassOf D must be derived.
	if !got.Contains(Triple{NewIRI("http://e/A"), NewIRI(RDFSSubClassOf), NewIRI("http://e/D")}) {
		t.Error("missing transitive subClassOf A->D")
	}
}

func TestSaturateSubClassCycle(t *testing.T) {
	g := NewGraph()
	g.AddAll(MustParse(`
@prefix : <http://e/> .
:A rdfs:subClassOf :B .
:B rdfs:subClassOf :A .
:x a :A .
`))
	got := Saturate(g).Graph // must terminate
	if !got.Contains(Triple{NewIRI("http://e/x"), NewIRI(RDFType), NewIRI("http://e/B")}) {
		t.Error("cycle member typing missing")
	}
}

func TestSaturateSubPropertyChainFeedsDomain(t *testing.T) {
	// rdfs7 output must feed rdfs2: p ⊑ q, q has domain C, s p o ⟹ s type C.
	g := NewGraph()
	g.AddAll(MustParse(`
@prefix : <http://e/> .
:p rdfs:subPropertyOf :q .
:q rdfs:domain :C .
:s :p :o .
`))
	got := Saturate(g).Graph
	if !got.Contains(Triple{NewIRI("http://e/s"), NewIRI(RDFType), NewIRI("http://e/C")}) {
		t.Error("rdfs7 ∘ rdfs2 composition missing")
	}
}

func TestSaturateRangeSkipsLiterals(t *testing.T) {
	g := NewGraph()
	g.AddAll(MustParse(`
@prefix : <http://e/> .
:name rdfs:range :Label .
:s :name "plain string" .
:s :name :uriValue .
`))
	got := Saturate(g).Graph
	if got.Contains(Triple{NewLiteral("plain string"), NewIRI(RDFType), NewIRI("http://e/Label")}) {
		t.Error("literal must not be typed by rdfs3")
	}
	if !got.Contains(Triple{NewIRI("http://e/uriValue"), NewIRI(RDFType), NewIRI("http://e/Label")}) {
		t.Error("IRI object should be typed by rdfs3")
	}
}

func TestSaturateIdempotent(t *testing.T) {
	g := graphFromPaper()
	once := Saturate(g)
	twice := Saturate(once.Graph)
	if twice.Derived != 0 {
		t.Errorf("second saturation derived %d new triples, want 0", twice.Derived)
	}
	if twice.Graph.Size() != once.Graph.Size() {
		t.Errorf("sizes differ: %d vs %d", twice.Graph.Size(), once.Graph.Size())
	}
}

func TestSaturateInPlace(t *testing.T) {
	g := graphFromPaper()
	before := g.Size()
	n := SaturateInPlace(g)
	if n <= 0 {
		t.Fatal("expected derivations")
	}
	if g.Size() != before+n {
		t.Errorf("size %d != before %d + derived %d", g.Size(), before, n)
	}
}

func TestSaturateNoSchemaNoop(t *testing.T) {
	g := NewGraph()
	g.AddAll(MustParse(`@prefix : <http://e/> . :a :p :b . :b :q :c .`))
	sat := Saturate(g)
	if sat.Derived != 0 {
		t.Errorf("derived %d from schema-free graph", sat.Derived)
	}
}

func TestAnswerUsesSaturation(t *testing.T) {
	g := graphFromPaper()
	q := MustParseBGP(`q(?who) :- ?who <http://tatooine.example/paidBy> <http://tatooine.example/LeMonde>`, nil)
	sols, err := Answer(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if sols.Len() != 1 || sols.Rows[0][0] != iri("Samuel") {
		t.Errorf("Answer over G∞: %+v", sols.Rows)
	}
	// Plain Evaluate must not see the implicit triple.
	plain, err := Evaluate(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Len() != 0 {
		t.Errorf("Evaluate without saturation returned %d rows", plain.Len())
	}
}
