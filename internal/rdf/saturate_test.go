package rdf

import (
	"testing"
)

// graphFromPaper builds the running example of §2.1: journalists are
// employees, worksFor ⊑ paidBy, foundedIn has domain Organization,
// worksFor has range Organization.
func graphFromPaper() *Graph {
	g := NewGraph()
	g.AddAll(MustParse(`
@prefix : <http://tatooine.example/> .
:LeMonde :foundedIn "1944" .
:Samuel :worksFor :LeMonde .
:Samuel a :Journalist .
:Journalist rdfs:subClassOf :Employee .
:worksFor rdfs:subPropertyOf :paidBy .
:foundedIn rdfs:domain :Organization .
:worksFor rdfs:range :Organization .
`))
	return g
}

func iri(s string) Term { return NewIRI("http://tatooine.example/" + s) }

func TestSaturatePaperExample(t *testing.T) {
	g := graphFromPaper()
	sat := Saturate(g)
	got := sat.Graph

	// The paper lists exactly these implicit triples (§2.1).
	wantImplicit := []Triple{
		{iri("Samuel"), iri("paidBy"), iri("LeMonde")},
		{iri("Samuel"), NewIRI(RDFType), iri("Employee")},
		{iri("LeMonde"), NewIRI(RDFType), iri("Organization")},
	}
	for _, tri := range wantImplicit {
		if !got.Contains(tri) {
			t.Errorf("saturation missing implicit triple %v", tri)
		}
	}
	// Original graph must be untouched.
	for _, tri := range wantImplicit {
		if g.Contains(tri) {
			t.Errorf("Saturate mutated its input: found %v", tri)
		}
	}
	if sat.Derived < len(wantImplicit) {
		t.Errorf("Derived = %d, want at least %d", sat.Derived, len(wantImplicit))
	}
}

func TestSaturateSubClassTransitivity(t *testing.T) {
	g := NewGraph()
	g.AddAll(MustParse(`
@prefix : <http://e/> .
:A rdfs:subClassOf :B .
:B rdfs:subClassOf :C .
:C rdfs:subClassOf :D .
:x a :A .
`))
	got := Saturate(g).Graph
	for _, c := range []string{"B", "C", "D"} {
		if !got.Contains(Triple{NewIRI("http://e/x"), NewIRI(RDFType), NewIRI("http://e/" + c)}) {
			t.Errorf("x should be typed %s", c)
		}
	}
	// rdfs11: A subClassOf D must be derived.
	if !got.Contains(Triple{NewIRI("http://e/A"), NewIRI(RDFSSubClassOf), NewIRI("http://e/D")}) {
		t.Error("missing transitive subClassOf A->D")
	}
}

func TestSaturateSubClassCycle(t *testing.T) {
	g := NewGraph()
	g.AddAll(MustParse(`
@prefix : <http://e/> .
:A rdfs:subClassOf :B .
:B rdfs:subClassOf :A .
:x a :A .
`))
	got := Saturate(g).Graph // must terminate
	if !got.Contains(Triple{NewIRI("http://e/x"), NewIRI(RDFType), NewIRI("http://e/B")}) {
		t.Error("cycle member typing missing")
	}
}

// TestSaturateSubClassCycleReflexive: transitivity around a cycle
// entails the reflexive edges (A ⊑ B, B ⊑ A ⟹ A ⊑ A), which the
// incremental delta rules derive — the full fixpoint must agree.
func TestSaturateSubClassCycleReflexive(t *testing.T) {
	g := NewGraph()
	g.AddAll(MustParse(`
@prefix : <http://e/> .
:A rdfs:subClassOf :B .
:B rdfs:subClassOf :C .
:C rdfs:subClassOf :A .
:x a :A .
`))
	got := Saturate(g).Graph
	for _, c := range []string{"A", "B", "C"} {
		if !got.Contains(Triple{NewIRI("http://e/" + c), NewIRI(RDFSSubClassOf), NewIRI("http://e/" + c)}) {
			t.Errorf("cycle member %s should be its own subclass in the closure", c)
		}
		if !got.Contains(Triple{NewIRI("http://e/x"), NewIRI(RDFType), NewIRI("http://e/" + c)}) {
			t.Errorf("x should be typed %s through the cycle", c)
		}
	}
}

// TestSaturateSubPropertyCycle: a subPropertyOf cycle must terminate
// and propagate data triples to every property on the cycle.
func TestSaturateSubPropertyCycle(t *testing.T) {
	g := NewGraph()
	g.AddAll(MustParse(`
@prefix : <http://e/> .
:p rdfs:subPropertyOf :q .
:q rdfs:subPropertyOf :p .
:s :p :o .
`))
	got := Saturate(g).Graph // must terminate
	if !got.Contains(Triple{NewIRI("http://e/s"), NewIRI("http://e/q"), NewIRI("http://e/o")}) {
		t.Error("data triple not propagated around the subPropertyOf cycle")
	}
	if !got.Contains(Triple{NewIRI("http://e/p"), NewIRI(RDFSSubPropertyOf), NewIRI("http://e/p")}) {
		t.Error("reflexive subPropertyOf edge missing from the cycle closure")
	}
}

// TestSaturateSelfSubProperty: a property that is its own sub-property
// must not send the fixpoint into an infinite loop, and must derive
// nothing beyond what is already there.
func TestSaturateSelfSubProperty(t *testing.T) {
	g := NewGraph()
	g.AddAll(MustParse(`
@prefix : <http://e/> .
:p rdfs:subPropertyOf :p .
:s :p :o .
`))
	sat := Saturate(g) // must terminate
	if sat.Derived != 0 {
		t.Errorf("self-subproperty derived %d triples, want 0", sat.Derived)
	}
	if sat.Graph.Size() != g.Size() {
		t.Errorf("saturation size %d != input size %d", sat.Graph.Size(), g.Size())
	}
}

func TestSaturateSubPropertyChainFeedsDomain(t *testing.T) {
	// rdfs7 output must feed rdfs2: p ⊑ q, q has domain C, s p o ⟹ s type C.
	g := NewGraph()
	g.AddAll(MustParse(`
@prefix : <http://e/> .
:p rdfs:subPropertyOf :q .
:q rdfs:domain :C .
:s :p :o .
`))
	got := Saturate(g).Graph
	if !got.Contains(Triple{NewIRI("http://e/s"), NewIRI(RDFType), NewIRI("http://e/C")}) {
		t.Error("rdfs7 ∘ rdfs2 composition missing")
	}
}

func TestSaturateRangeSkipsLiterals(t *testing.T) {
	g := NewGraph()
	g.AddAll(MustParse(`
@prefix : <http://e/> .
:name rdfs:range :Label .
:s :name "plain string" .
:s :name :uriValue .
`))
	got := Saturate(g).Graph
	if got.Contains(Triple{NewLiteral("plain string"), NewIRI(RDFType), NewIRI("http://e/Label")}) {
		t.Error("literal must not be typed by rdfs3")
	}
	if !got.Contains(Triple{NewIRI("http://e/uriValue"), NewIRI(RDFType), NewIRI("http://e/Label")}) {
		t.Error("IRI object should be typed by rdfs3")
	}
}

func TestSaturateIdempotent(t *testing.T) {
	g := graphFromPaper()
	once := Saturate(g)
	twice := Saturate(once.Graph)
	if twice.Derived != 0 {
		t.Errorf("second saturation derived %d new triples, want 0", twice.Derived)
	}
	if twice.Graph.Size() != once.Graph.Size() {
		t.Errorf("sizes differ: %d vs %d", twice.Graph.Size(), once.Graph.Size())
	}
}

func TestSaturateInPlace(t *testing.T) {
	g := graphFromPaper()
	before := g.Size()
	n := SaturateInPlace(g)
	if n <= 0 {
		t.Fatal("expected derivations")
	}
	if g.Size() != before+n {
		t.Errorf("size %d != before %d + derived %d", g.Size(), before, n)
	}
}

func TestSaturateNoSchemaNoop(t *testing.T) {
	g := NewGraph()
	g.AddAll(MustParse(`@prefix : <http://e/> . :a :p :b . :b :q :c .`))
	sat := Saturate(g)
	if sat.Derived != 0 {
		t.Errorf("derived %d from schema-free graph", sat.Derived)
	}
}

func TestAnswerUsesSaturation(t *testing.T) {
	g := graphFromPaper()
	q := MustParseBGP(`q(?who) :- ?who <http://tatooine.example/paidBy> <http://tatooine.example/LeMonde>`, nil)
	sols, err := Answer(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if sols.Len() != 1 || sols.Rows[0][0] != iri("Samuel") {
		t.Errorf("Answer over G∞: %+v", sols.Rows)
	}
	// Plain Evaluate must not see the implicit triple.
	plain, err := Evaluate(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Len() != 0 {
		t.Errorf("Evaluate without saturation returned %d rows", plain.Len())
	}
}
