package rdf

import (
	"fmt"
	"sort"
	"strings"
)

// PatternTerm is a position in a triple pattern: either a constant Term
// or a named variable.
type PatternTerm struct {
	Var  string // non-empty for a variable (without the '?' sigil)
	Term Term   // constant when Var == ""
}

// IsVar reports whether the position holds a variable.
func (pt PatternTerm) IsVar() bool { return pt.Var != "" }

// Variable returns a PatternTerm holding the named variable.
func Variable(name string) PatternTerm { return PatternTerm{Var: name} }

// Constant returns a PatternTerm holding a constant term.
func Constant(t Term) PatternTerm { return PatternTerm{Term: t} }

func (pt PatternTerm) String() string {
	if pt.IsVar() {
		return "?" + pt.Var
	}
	return pt.Term.String()
}

// TriplePattern is a triple whose positions may hold variables.
type TriplePattern struct {
	S, P, O PatternTerm
}

func (tp TriplePattern) String() string {
	return tp.S.String() + " " + tp.P.String() + " " + tp.O.String()
}

// Vars returns the distinct variable names in the pattern, in S,P,O order.
func (tp TriplePattern) Vars() []string {
	var out []string
	seen := make(map[string]struct{})
	for _, pt := range []PatternTerm{tp.S, tp.P, tp.O} {
		if pt.IsVar() {
			if _, ok := seen[pt.Var]; !ok {
				seen[pt.Var] = struct{}{}
				out = append(out, pt.Var)
			}
		}
	}
	return out
}

// BGP is a basic graph pattern query: a conjunction of triple patterns
// with a head of projected variables. It corresponds to the SPARQL
// subset of conjunctive queries defined in the paper (§2.1).
type BGP struct {
	// Head lists the projected variables, in output column order. An
	// empty head projects all variables (in first-appearance order).
	Head []string
	// Patterns is the conjunctive body.
	Patterns []TriplePattern
	// Filters constrain solutions (variable-vs-constant comparisons).
	Filters []Filter
	// Optionals are OPTIONAL { … } groups: each group extends solutions
	// when it matches and leaves its variables unbound otherwise
	// (SPARQL's left-join, applied group by group in order). Unbound
	// positions surface as zero Terms in Solutions rows.
	Optionals [][]TriplePattern
}

// AllVars returns the distinct variables of the body (required patterns
// then optional groups) in first-appearance order.
func (q BGP) AllVars() []string {
	var out []string
	seen := make(map[string]struct{})
	add := func(pats []TriplePattern) {
		for _, p := range pats {
			for _, v := range p.Vars() {
				if _, ok := seen[v]; !ok {
					seen[v] = struct{}{}
					out = append(out, v)
				}
			}
		}
	}
	add(q.Patterns)
	for _, g := range q.Optionals {
		add(g)
	}
	return out
}

// Validate checks that every head and filter variable appears in the
// body.
func (q BGP) Validate() error {
	body := make(map[string]struct{})
	for _, v := range q.AllVars() {
		body[v] = struct{}{}
	}
	for _, v := range q.Head {
		if _, ok := body[v]; !ok {
			return fmt.Errorf("rdf: head variable ?%s not in query body", v)
		}
	}
	for _, f := range q.Filters {
		if _, ok := body[f.Var]; !ok {
			return fmt.Errorf("rdf: filter variable ?%s not in query body", f.Var)
		}
	}
	return nil
}

func (q BGP) String() string {
	var b strings.Builder
	b.WriteString("q(")
	for i, v := range q.Head {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString("?" + v)
	}
	b.WriteString(") :- ")
	for i, p := range q.Patterns {
		if i > 0 {
			b.WriteString(" . ")
		}
		b.WriteString(p.String())
	}
	for _, g := range q.Optionals {
		b.WriteString(" . OPTIONAL { ")
		for i, p := range g {
			if i > 0 {
				b.WriteString(" . ")
			}
			b.WriteString(p.String())
		}
		b.WriteString(" }")
	}
	for _, f := range q.Filters {
		b.WriteString(" . ")
		b.WriteString(f.String())
	}
	return b.String()
}

// Bindings is one solution: variable name → bound term.
type Bindings map[string]Term

// Clone returns a copy of b.
func (b Bindings) Clone() Bindings {
	out := make(Bindings, len(b))
	for k, v := range b {
		out[k] = v
	}
	return out
}

// Solutions is an ordered result set with named columns.
type Solutions struct {
	Vars []string
	Rows [][]Term
}

// Answer evaluates q over the saturation of g (the paper's "answer"
// semantics): the graph is saturated first, then the BGP is evaluated.
func Answer(g *Graph, q BGP) (*Solutions, error) {
	sat := Saturate(g)
	return Evaluate(sat.Graph, q)
}

// Evaluate computes all embeddings of q into g (no entailment) and
// projects the head variables. Patterns are greedily reordered so the
// most selective pattern (fewest matching triples given already-bound
// variables) runs first.
func Evaluate(g *Graph, q BGP) (*Solutions, error) {
	return EvaluateBound(g, q, nil)
}

// EvaluateBound is Evaluate with initial variable bindings, used by the
// mediator's bind joins: variables in init are constrained to the given
// terms before evaluation. Head variables may be satisfied by init even
// when absent from the body.
func EvaluateBound(g *Graph, q BGP, init Bindings) (*Solutions, error) {
	if err := validateWithInit(q, init); err != nil {
		return nil, err
	}
	head := q.Head
	if len(head) == 0 {
		head = q.AllVars()
	}
	sols := &Solutions{Vars: head}
	if len(q.Patterns) == 0 {
		return sols, nil
	}

	// evalPats enumerates embeddings of a pattern conjunction, applying
	// the query filters as soon as their variable binds.
	var evalPats func(bound Bindings, rem []TriplePattern, emit func(Bindings))
	evalPats = func(bound Bindings, rem []TriplePattern, emit func(Bindings)) {
		for _, f := range q.Filters {
			if t, ok := bound[f.Var]; ok && !f.eval(t) {
				return
			}
		}
		if len(rem) == 0 {
			emit(bound)
			return
		}
		// Pick the most selective remaining pattern under current bindings.
		best, bestCount := 0, -1
		for i, p := range rem {
			c := g.patternCount(p, bound)
			if bestCount < 0 || c < bestCount {
				best, bestCount = i, c
			}
			if c == 0 {
				best, bestCount = i, 0
				break
			}
		}
		p := rem[best]
		rest := make([]TriplePattern, 0, len(rem)-1)
		rest = append(rest, rem[:best]...)
		rest = append(rest, rem[best+1:]...)

		g.matchPattern(p, bound, func(next Bindings) {
			evalPats(next, rest, emit)
		})
	}

	// applyOptionals extends a solution with each OPTIONAL group in
	// order: matching groups multiply solutions, non-matching groups
	// pass the solution through with their variables unbound.
	var applyOptionals func(bound Bindings, groups [][]TriplePattern)
	applyOptionals = func(bound Bindings, groups [][]TriplePattern) {
		if len(groups) == 0 {
			row := make([]Term, len(head))
			for i, v := range head {
				row[i] = bound[v] // zero Term when unbound (OPTIONAL miss)
			}
			sols.Rows = append(sols.Rows, row)
			return
		}
		matched := false
		evalPats(bound, groups[0], func(ext Bindings) {
			matched = true
			applyOptionals(ext, groups[1:])
		})
		if !matched {
			applyOptionals(bound, groups[1:])
		}
	}

	start := make(Bindings, len(init))
	for k, v := range init {
		start[k] = v
	}
	evalPats(start, append([]TriplePattern(nil), q.Patterns...), func(bound Bindings) {
		applyOptionals(bound, q.Optionals)
	})
	return sols, nil
}

func validateWithInit(q BGP, init Bindings) error {
	body := make(map[string]struct{})
	for _, v := range q.AllVars() {
		body[v] = struct{}{}
	}
	for _, v := range q.Head {
		if _, ok := body[v]; ok {
			continue
		}
		if _, ok := init[v]; ok {
			continue
		}
		return fmt.Errorf("rdf: head variable ?%s not in query body", v)
	}
	for _, f := range q.Filters {
		if _, ok := body[f.Var]; ok {
			continue
		}
		if _, ok := init[f.Var]; ok {
			continue
		}
		return fmt.Errorf("rdf: filter variable ?%s not in query body", f.Var)
	}
	return nil
}

// resolve maps a pattern position to a concrete TermID under bindings:
// NoTerm means wildcard; ok=false means a constant/bound term is absent
// from the dictionary so nothing can match.
func (g *Graph) resolve(pt PatternTerm, bound Bindings) (TermID, bool) {
	if pt.IsVar() {
		if t, ok := bound[pt.Var]; ok {
			id := g.dict.Lookup(t)
			return id, id != NoTerm
		}
		return NoTerm, true
	}
	id := g.dict.Lookup(pt.Term)
	return id, id != NoTerm
}

// patternCount estimates the number of triples matching p under bound.
func (g *Graph) patternCount(p TriplePattern, bound Bindings) int {
	s, ok := g.resolve(p.S, bound)
	if !ok {
		return 0
	}
	pp, ok := g.resolve(p.P, bound)
	if !ok {
		return 0
	}
	o, ok := g.resolve(p.O, bound)
	if !ok {
		return 0
	}
	return g.countIDs(s, pp, o)
}

// matchPattern enumerates extensions of bound that satisfy p.
func (g *Graph) matchPattern(p TriplePattern, bound Bindings, fn func(Bindings)) {
	s, ok := g.resolve(p.S, bound)
	if !ok {
		return
	}
	pp, ok := g.resolve(p.P, bound)
	if !ok {
		return
	}
	o, ok := g.resolve(p.O, bound)
	if !ok {
		return
	}
	// Repeated unbound variables within the pattern (e.g. ?x ?p ?x)
	// require an equality check after matching.
	type capture struct {
		name string
		pos  int // 0=s 1=p 2=o
	}
	var caps []capture
	if p.S.IsVar() && s == NoTerm {
		caps = append(caps, capture{p.S.Var, 0})
	}
	if p.P.IsVar() && pp == NoTerm {
		caps = append(caps, capture{p.P.Var, 1})
	}
	if p.O.IsVar() && o == NoTerm {
		caps = append(caps, capture{p.O.Var, 2})
	}

	var rows [][3]TermID
	g.MatchIDs(s, pp, o, func(ms, mp, mo TermID) bool {
		rows = append(rows, [3]TermID{ms, mp, mo})
		return true
	})
	for _, r := range rows {
		next := bound
		cloned := false
		ok := true
		for _, c := range caps {
			val := g.dict.Term(r[c.pos])
			if prev, exists := next[c.name]; exists {
				if prev != val {
					ok = false
					break
				}
				continue
			}
			if !cloned {
				next = bound.Clone()
				cloned = true
			}
			next[c.name] = val
		}
		if !ok {
			continue
		}
		if !cloned && len(caps) > 0 {
			// All captures matched pre-existing bindings; next == bound.
			fn(bound)
			continue
		}
		fn(next)
	}
}

// Sort orders rows lexically by their term keys; useful for deterministic
// test comparison.
func (s *Solutions) Sort() {
	sort.Slice(s.Rows, func(i, j int) bool {
		a, b := s.Rows[i], s.Rows[j]
		for k := range a {
			ka, kb := a[k].Key(), b[k].Key()
			if ka != kb {
				return ka < kb
			}
		}
		return false
	})
}

// Len returns the number of solution rows.
func (s *Solutions) Len() int { return len(s.Rows) }

// Maps converts the solutions to a slice of Bindings maps.
func (s *Solutions) Maps() []Bindings {
	out := make([]Bindings, len(s.Rows))
	for i, row := range s.Rows {
		m := make(Bindings, len(s.Vars))
		for j, v := range s.Vars {
			m[v] = row[j]
		}
		out[i] = m
	}
	return out
}
