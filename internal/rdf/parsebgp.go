package rdf

import (
	"bufio"
	"strings"
)

// ParseBGP parses the textual form of a basic graph pattern produced by
// BGP.String and used throughout TATOOINE's query syntax:
//
//	q(?x, ?id) :- ?x <http://t.example/position> <http://t.example/headOfState> .
//	              ?x <http://t.example/twitterAccount> ?id
//
// The head is optional: a bare pattern list ("?x <p> ?y . ?y <q> ?z")
// projects all variables. Prefixed names (rdf:type, foaf:name, plus any
// extra prefixes given) and the 'a' keyword are accepted in patterns.
func ParseBGP(input string, prefixes map[string]string) (BGP, error) {
	var q BGP
	body := input
	if i := strings.Index(input, ":-"); i >= 0 {
		headStr := strings.TrimSpace(input[:i])
		body = input[i+2:]
		head, err := parseHead(headStr)
		if err != nil {
			return q, err
		}
		q.Head = head
	}
	main, optionalBodies, err := extractOptionals(body)
	if err != nil {
		return q, err
	}
	pats, filters, err := parsePatterns(main, prefixes)
	if err != nil {
		return q, err
	}
	q.Patterns = pats
	q.Filters = filters
	for _, ob := range optionalBodies {
		opats, ofilters, err := parsePatterns(ob, prefixes)
		if err != nil {
			return q, err
		}
		if len(ofilters) > 0 {
			return q, &ParseError{Msg: "FILTER inside OPTIONAL is not supported"}
		}
		if len(opats) == 0 {
			return q, &ParseError{Msg: "empty OPTIONAL group"}
		}
		q.Optionals = append(q.Optionals, opats)
	}
	return q, q.Validate()
}

// MustParseBGP is ParseBGP panicking on error; for tests and fixtures.
func MustParseBGP(input string, prefixes map[string]string) BGP {
	q, err := ParseBGP(input, prefixes)
	if err != nil {
		panic(err)
	}
	return q
}

func parseHead(s string) ([]string, error) {
	open := strings.IndexByte(s, '(')
	close := strings.LastIndexByte(s, ')')
	if open < 0 || close < open {
		return nil, &ParseError{Msg: "malformed query head (expected q(?v, ...))"}
	}
	inner := s[open+1 : close]
	if strings.TrimSpace(inner) == "" {
		return nil, nil
	}
	var out []string
	for _, part := range strings.Split(inner, ",") {
		v := strings.TrimSpace(part)
		v = strings.TrimPrefix(v, "?")
		if v == "" {
			return nil, &ParseError{Msg: "empty variable in query head"}
		}
		out = append(out, v)
	}
	return out, nil
}

// extractOptionals splits "p1 . OPTIONAL { p2 . p3 } . p4" into the
// main pattern text and the optional group bodies. Braces inside
// string literals are respected.
func extractOptionals(body string) (string, []string, error) {
	var main strings.Builder
	var optionals []string
	i := 0
	n := len(body)
	for i < n {
		// String literal: copy verbatim.
		if body[i] == '"' {
			j := i + 1
			for j < n && body[j] != '"' {
				if body[j] == '\\' {
					j++
				}
				j++
			}
			if j >= n {
				return "", nil, &ParseError{Msg: "unterminated literal"}
			}
			main.WriteString(body[i : j+1])
			i = j + 1
			continue
		}
		// OPTIONAL keyword (case-insensitive, word-delimited)?
		if isOptionalAt(body, i) {
			j := i + len("OPTIONAL")
			for j < n && (body[j] == ' ' || body[j] == '\t' || body[j] == '\n' || body[j] == '\r') {
				j++
			}
			if j >= n || body[j] != '{' {
				return "", nil, &ParseError{Msg: "OPTIONAL expects '{'"}
			}
			depth := 1
			k := j + 1
			for k < n && depth > 0 {
				switch body[k] {
				case '{':
					depth++
				case '}':
					depth--
				case '"':
					k++
					for k < n && body[k] != '"' {
						if body[k] == '\\' {
							k++
						}
						k++
					}
				}
				k++
			}
			if depth != 0 {
				return "", nil, &ParseError{Msg: "unterminated OPTIONAL group"}
			}
			optionals = append(optionals, strings.TrimSpace(body[j+1:k-1]))
			// Swallow one adjacent '.' separator so the main pattern
			// list stays well-formed.
			rest := strings.TrimLeft(body[k:], " \t\n\r")
			trimmedMain := strings.TrimRight(main.String(), " \t\n\r")
			switch {
			case strings.HasSuffix(trimmedMain, "."):
				main.Reset()
				main.WriteString(strings.TrimSuffix(trimmedMain, "."))
				main.WriteString(" ")
				i = n - len(rest)
			case strings.HasPrefix(rest, "."):
				i = n - len(rest) + 1
			default:
				i = n - len(rest)
			}
			continue
		}
		main.WriteByte(body[i])
		i++
	}
	return main.String(), optionals, nil
}

func isOptionalAt(body string, i int) bool {
	const kw = "OPTIONAL"
	if i+len(kw) > len(body) {
		return false
	}
	if !strings.EqualFold(body[i:i+len(kw)], kw) {
		return false
	}
	// Word boundaries: previous and next characters must not be
	// name-like.
	if i > 0 {
		prev := body[i-1]
		if prev != ' ' && prev != '\t' && prev != '\n' && prev != '\r' && prev != '.' {
			return false
		}
	}
	if i+len(kw) < len(body) {
		next := body[i+len(kw)]
		if next != ' ' && next != '\t' && next != '\n' && next != '\r' && next != '{' {
			return false
		}
	}
	return true
}

// parsePatterns tokenizes a '.'-separated conjunction of triple
// patterns and FILTER(...) constraints.
func parsePatterns(body string, prefixes map[string]string) ([]TriplePattern, []Filter, error) {
	p := &parser{
		sc:       bufio.NewReader(strings.NewReader(body)),
		line:     1,
		prefixes: make(map[string]string),
	}
	for k, v := range CommonPrefixes {
		p.prefixes[k] = v
	}
	for k, v := range prefixes {
		p.prefixes[k] = v
	}
	var pats []TriplePattern
	var filters []Filter
	for {
		if err := p.skipWS(); err != nil {
			return pats, filters, nil // end of input
		}
		if p.peekKeyword("FILTER") {
			f, err := p.parseFilter()
			if err != nil {
				return nil, nil, err
			}
			filters = append(filters, f)
		} else if p.peekKeyword("OPTIONAL") {
			return nil, nil, p.errf("OPTIONAL blocks must be handled by ParseBGP (internal error)")
		} else {
			var pt [3]PatternTerm
			for i := 0; i < 3; i++ {
				if err := p.skipWS(); err != nil {
					return nil, nil, p.errf("incomplete triple pattern")
				}
				term, err := p.parsePatternTerm()
				if err != nil {
					return nil, nil, err
				}
				pt[i] = term
			}
			pats = append(pats, TriplePattern{pt[0], pt[1], pt[2]})
		}
		if err := p.skipWS(); err != nil {
			return pats, filters, nil
		}
		r, _ := p.peek()
		if r == '.' {
			p.read()
			continue
		}
		return nil, nil, p.errf("expected '.' between patterns, got %q", r)
	}
}

// peekKeyword checks (case-insensitively) whether the next word is kw,
// consuming it when it matches.
func (p *parser) peekKeyword(kw string) bool {
	// Read up to len(kw) runes, pushing back on mismatch.
	var read []rune
	match := true
	for i := 0; i < len(kw); i++ {
		r, err := p.read()
		if err != nil {
			match = false
			break
		}
		read = append(read, r)
		lower := r
		if lower >= 'A' && lower <= 'Z' {
			lower += 'a' - 'A'
		}
		want := rune(kw[i])
		if want >= 'A' && want <= 'Z' {
			want += 'a' - 'A'
		}
		if lower != want {
			match = false
			break
		}
	}
	if match {
		// The keyword must be delimited (next rune not word-like).
		if r, err := p.peek(); err == nil {
			if r != '(' && r != ' ' && r != '\t' && r != '\n' && r != '\r' {
				match = false
			}
		}
	}
	if !match {
		for i := len(read) - 1; i >= 0; i-- {
			p.unread(read[i])
		}
	}
	return match
}

// parsePatternTerm parses a term or a ?variable.
func (p *parser) parsePatternTerm() (PatternTerm, error) {
	r, err := p.peek()
	if err != nil {
		return PatternTerm{}, p.errf("expected term")
	}
	if r == '?' {
		p.read()
		name, err := p.readBareWord()
		if err != nil || name == "" {
			return PatternTerm{}, p.errf("malformed variable")
		}
		return Variable(name), nil
	}
	t, err := p.parseTerm()
	if err != nil {
		return PatternTerm{}, err
	}
	return Constant(t), nil
}
