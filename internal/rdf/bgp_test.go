package rdf

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// politicsGraph builds a small custom graph like Figure 1's.
func politicsGraph() *Graph {
	g := NewGraph()
	g.AddAll(MustParse(`
@prefix : <http://t.example/> .
@prefix pol: <http://t.example/pol/> .
pol:POL01140 a :politician ;
  :position :headOfState ;
  foaf:name "François Hollande" ;
  :twitterAccount "fhollande" .
pol:POL02 a :politician ;
  :position :deputy ;
  foaf:name "Jean Dupont" ;
  :twitterAccount "jdupont" ;
  :memberOf :PartyA .
pol:POL03 a :politician ;
  :position :senator ;
  foaf:name "Anne Martin" ;
  :twitterAccount "amartin" ;
  :memberOf :PartyB .
:PartyA :currentOf :left .
:PartyB :currentOf :right .
`))
	return g
}

func TestEvaluateSinglePattern(t *testing.T) {
	g := politicsGraph()
	q := MustParseBGP(`q(?x) :- ?x a <http://t.example/politician>`, nil)
	sols, err := Evaluate(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if sols.Len() != 3 {
		t.Errorf("got %d politicians, want 3", sols.Len())
	}
}

func TestEvaluateQGFromPaper(t *testing.T) {
	// qG(id) :- ?x position headOfState, ?x twitterAccount ?id  (§2.2)
	g := politicsGraph()
	q := MustParseBGP(
		`q(?id) :- ?x <http://t.example/position> <http://t.example/headOfState> . ?x <http://t.example/twitterAccount> ?id`, nil)
	sols, err := Evaluate(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if sols.Len() != 1 || sols.Rows[0][0] != NewLiteral("fhollande") {
		t.Errorf("qG result: %+v", sols.Rows)
	}
}

func TestEvaluateJoinAcrossPatterns(t *testing.T) {
	g := politicsGraph()
	q := MustParseBGP(`q(?name, ?cur) :-
?x <http://t.example/memberOf> ?p .
?p <http://t.example/currentOf> ?cur .
?x foaf:name ?name`, nil)
	sols, err := Evaluate(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if sols.Len() != 2 {
		t.Fatalf("got %d rows, want 2: %v", sols.Len(), sols.Rows)
	}
	sols.Sort()
	if sols.Rows[0][0] != NewLiteral("Anne Martin") || sols.Rows[0][1] != NewIRI("http://t.example/right") {
		t.Errorf("row 0: %v", sols.Rows[0])
	}
	if sols.Rows[1][0] != NewLiteral("Jean Dupont") || sols.Rows[1][1] != NewIRI("http://t.example/left") {
		t.Errorf("row 1: %v", sols.Rows[1])
	}
}

func TestEvaluateNoMatches(t *testing.T) {
	g := politicsGraph()
	q := MustParseBGP(`q(?x) :- ?x <http://t.example/position> <http://t.example/astronaut>`, nil)
	sols, err := Evaluate(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if sols.Len() != 0 {
		t.Errorf("expected empty result, got %v", sols.Rows)
	}
}

func TestEvaluateHeadValidation(t *testing.T) {
	q := BGP{
		Head:     []string{"missing"},
		Patterns: []TriplePattern{{Variable("x"), Constant(NewIRI("p")), Variable("y")}},
	}
	if _, err := Evaluate(NewGraph(), q); err == nil {
		t.Error("expected error for head variable not in body")
	}
}

func TestEvaluateEmptyHeadProjectsAll(t *testing.T) {
	g := politicsGraph()
	q := MustParseBGP(`?x <http://t.example/memberOf> ?p`, nil)
	sols, err := Evaluate(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols.Vars) != 2 || sols.Vars[0] != "x" || sols.Vars[1] != "p" {
		t.Errorf("vars: %v", sols.Vars)
	}
	if sols.Len() != 2 {
		t.Errorf("rows: %d", sols.Len())
	}
}

func TestEvaluateRepeatedVariableInPattern(t *testing.T) {
	g := NewGraph()
	g.AddAll(MustParse(`@prefix : <http://e/> .
:a :p :a .
:a :p :b .
:b :p :b .
:c :p :d .`))
	q := MustParseBGP(`q(?x) :- ?x <http://e/p> ?x`, nil)
	sols, err := Evaluate(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if sols.Len() != 2 {
		t.Fatalf("self-loops: got %d, want 2 (%v)", sols.Len(), sols.Rows)
	}
}

func TestEvaluateVariablePredicate(t *testing.T) {
	g := politicsGraph()
	q := MustParseBGP(`q(?p, ?o) :- <http://t.example/pol/POL01140> ?p ?o`, nil)
	sols, err := Evaluate(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if sols.Len() != 4 {
		t.Errorf("POL01140 has %d property-values, want 4", sols.Len())
	}
}

func TestEvaluateCartesianProduct(t *testing.T) {
	// Disconnected patterns produce a cross product.
	g := NewGraph()
	g.AddAll(MustParse(`@prefix : <http://e/> .
:a :p :b . :c :p :d .
:x :q :y . :z :q :w .`))
	q := MustParseBGP(`q(?a, ?b) :- ?a <http://e/p> ?u . ?b <http://e/q> ?v`, nil)
	sols, err := Evaluate(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if sols.Len() != 4 {
		t.Errorf("cross product size %d, want 4", sols.Len())
	}
}

func TestEvaluateBoundConstantAbsentFromDict(t *testing.T) {
	g := politicsGraph()
	q := MustParseBGP(`q(?x) :- ?x <http://never.seen/prop> ?y`, nil)
	sols, err := Evaluate(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if sols.Len() != 0 {
		t.Error("unknown constant should yield empty result")
	}
}

func TestBGPStringRoundTrip(t *testing.T) {
	q := MustParseBGP(`q(?x, ?id) :- ?x <http://t/p> ?id . ?x a <http://t/C>`, nil)
	q2, err := ParseBGP(q.String(), nil)
	if err != nil {
		t.Fatalf("reparse %q: %v", q.String(), err)
	}
	if q2.String() != q.String() {
		t.Errorf("round trip: %q vs %q", q2.String(), q.String())
	}
}

// Property: evaluation order must not affect the result set. We compare
// the default (selectivity-ordered) evaluation against evaluation of the
// patterns in every rotation.
func TestEvaluateOrderIndependenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewGraph()
		names := []string{"a", "b", "c", "d"}
		for i := 0; i < 30; i++ {
			g.Add(Triple{
				NewIRI("http://e/" + names[rng.Intn(4)]),
				NewIRI("http://e/p" + fmt.Sprint(rng.Intn(3))),
				NewIRI("http://e/" + names[rng.Intn(4)]),
			})
		}
		base := MustParseBGP(`q(?x, ?z) :- ?x <http://e/p0> ?y . ?y <http://e/p1> ?z`, nil)
		want, err := Evaluate(g, base)
		if err != nil {
			return false
		}
		want.Sort()
		rotated := BGP{Head: base.Head, Patterns: []TriplePattern{base.Patterns[1], base.Patterns[0]}}
		got, err := Evaluate(g, rotated)
		if err != nil {
			return false
		}
		got.Sort()
		if got.Len() != want.Len() {
			return false
		}
		for i := range got.Rows {
			for j := range got.Rows[i] {
				if got.Rows[i][j] != want.Rows[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSolutionsMaps(t *testing.T) {
	g := politicsGraph()
	q := MustParseBGP(`q(?x, ?id) :- ?x <http://t.example/twitterAccount> ?id`, nil)
	sols, err := Evaluate(g, q)
	if err != nil {
		t.Fatal(err)
	}
	maps := sols.Maps()
	if len(maps) != 3 {
		t.Fatalf("maps: %d", len(maps))
	}
	for _, m := range maps {
		if m["x"].IsZero() || m["id"].IsZero() {
			t.Errorf("incomplete binding map: %v", m)
		}
	}
}

func TestParseBGPErrors(t *testing.T) {
	cases := []string{
		`q(?x :- ?x <p> ?y`,             // malformed head
		`q(?x) :- ?x <http://e/p>`,      // incomplete pattern
		`q(?zzz) :- ?x <http://e/p> ?y`, // head var not in body
		`q(?x) :- ?x und:p ?y`,          // undeclared prefix
	}
	for _, c := range cases {
		if _, err := ParseBGP(c, nil); err == nil {
			t.Errorf("expected error for %q", c)
		}
	}
}

func TestParseBGPCustomPrefix(t *testing.T) {
	q, err := ParseBGP(`q(?x) :- ?x ex:p ex:o`, map[string]string{"ex": "http://custom/"})
	if err != nil {
		t.Fatal(err)
	}
	if q.Patterns[0].P.Term != NewIRI("http://custom/p") {
		t.Errorf("custom prefix: %v", q.Patterns[0].P)
	}
}
