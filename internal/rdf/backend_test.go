package rdf

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"tatooine/internal/store"
)

// runBothGraphs runs fn against an in-memory graph and a store-backed
// graph, pinning every Graph behavior backend-agnostically.
func runBothGraphs(t *testing.T, fn func(t *testing.T, g *Graph)) {
	t.Helper()
	t.Run("map", func(t *testing.T) {
		fn(t, NewGraph())
	})
	t.Run("store", func(t *testing.T) {
		st, err := store.Open(filepath.Join(t.TempDir(), "g.db"), store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		g, err := OpenGraph(st, "g")
		if err != nil {
			t.Fatal(err)
		}
		fn(t, g)
		if err := g.StoreErr(); err != nil {
			t.Fatalf("store error: %v", err)
		}
	})
}

func tri(s, p, o string) Triple {
	return Triple{NewIRI(s), NewIRI(p), NewIRI(o)}
}

func TestBackendsAddRemoveContains(t *testing.T) {
	runBothGraphs(t, func(t *testing.T, g *Graph) {
		a := tri("s1", "p1", "o1")
		if !g.Add(a) {
			t.Fatal("first add not fresh")
		}
		if g.Add(a) {
			t.Fatal("duplicate add reported fresh")
		}
		if !g.Contains(a) || g.Size() != 1 {
			t.Fatalf("contains=%v size=%d", g.Contains(a), g.Size())
		}
		if !g.Remove(a) {
			t.Fatal("remove missed")
		}
		if g.Contains(a) || g.Size() != 0 {
			t.Fatal("triple survived removal")
		}
		if g.Remove(a) {
			t.Fatal("double remove reported hit")
		}
	})
}

// TestBackendsMatchEquivalence drives a random triple workload through
// both backends and checks every pattern shape returns identical triple
// sets and counts.
func TestBackendsMatchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	term := func(prefix string, n int) Term {
		return NewIRI(fmt.Sprintf("%s%d", prefix, rng.Intn(n)))
	}
	var ops []Triple
	for i := 0; i < 800; i++ {
		ops = append(ops, Triple{term("s", 12), term("p", 5), term("o", 12)})
	}

	mem := NewGraph()
	st, err := store.Open(filepath.Join(t.TempDir(), "g.db"), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	disk, err := OpenGraph(st, "g")
	if err != nil {
		t.Fatal(err)
	}

	for i, op := range ops {
		if i%5 == 4 {
			rm, rd := mem.Remove(op), disk.Remove(op)
			if rm != rd {
				t.Fatalf("op %d: remove mem=%v disk=%v", i, rm, rd)
			}
			continue
		}
		am, ad := mem.Add(op), disk.Add(op)
		if am != ad {
			t.Fatalf("op %d: add mem=%v disk=%v", i, am, ad)
		}
	}
	if mem.Size() != disk.Size() {
		t.Fatalf("size mem=%d disk=%d", mem.Size(), disk.Size())
	}

	render := func(ts []Triple) []string {
		out := make([]string, len(ts))
		for i, tr := range ts {
			out[i] = tr.String()
		}
		sort.Strings(out)
		return out
	}
	wild := Term{}
	patterns := []struct{ s, p, o Term }{
		{wild, wild, wild},
		{NewIRI("s3"), wild, wild},
		{wild, NewIRI("p2"), wild},
		{wild, wild, NewIRI("o7")},
		{NewIRI("s3"), NewIRI("p2"), wild},
		{NewIRI("s3"), wild, NewIRI("o7")},
		{wild, NewIRI("p2"), NewIRI("o7")},
		{NewIRI("s3"), NewIRI("p2"), NewIRI("o7")},
		{NewIRI("absent"), wild, wild},
	}
	for _, pat := range patterns {
		gm := render(mem.Match(pat.s, pat.p, pat.o))
		gd := render(disk.Match(pat.s, pat.p, pat.o))
		if fmt.Sprint(gm) != fmt.Sprint(gd) {
			t.Fatalf("pattern (%v %v %v): mem %d triples, disk %d triples\nmem:  %v\ndisk: %v",
				pat.s, pat.p, pat.o, len(gm), len(gd), gm, gd)
		}
		cm := mem.CountMatch(pat.s, pat.p, pat.o)
		cd := disk.CountMatch(pat.s, pat.p, pat.o)
		if cm != len(gm) || cd != len(gd) || cm != cd {
			t.Fatalf("pattern (%v %v %v): count mem=%d disk=%d match=%d",
				pat.s, pat.p, pat.o, cm, cd, len(gm))
		}
	}

	pm, pd := render(triplesFromTerms(mem.Properties())), render(triplesFromTerms(disk.Properties()))
	if fmt.Sprint(pm) != fmt.Sprint(pd) {
		t.Fatalf("properties mem=%v disk=%v", pm, pd)
	}
	if err := disk.StoreErr(); err != nil {
		t.Fatalf("store error: %v", err)
	}
}

func triplesFromTerms(ts []Term) []Triple {
	out := make([]Triple, len(ts))
	for i, tm := range ts {
		out[i] = Triple{tm, tm, tm}
	}
	return out
}

func TestBackendsSubjectsObjectsProperties(t *testing.T) {
	runBothGraphs(t, func(t *testing.T, g *Graph) {
		g.AddAll([]Triple{
			tri("a", "knows", "b"),
			tri("a", "knows", "c"),
			tri("b", "knows", "c"),
			tri("a", "likes", "c"),
		})
		subj := g.Subjects(NewIRI("knows"), NewIRI("c"))
		if len(subj) != 2 || subj[0].Value != "a" || subj[1].Value != "b" {
			t.Fatalf("subjects = %v", subj)
		}
		obj := g.Objects(NewIRI("a"), NewIRI("knows"))
		if len(obj) != 2 || obj[0].Value != "b" || obj[1].Value != "c" {
			t.Fatalf("objects = %v", obj)
		}
		props := g.Properties()
		if len(props) != 2 || props[0].Value != "knows" || props[1].Value != "likes" {
			t.Fatalf("properties = %v", props)
		}
	})
}

func TestBackendsSaturate(t *testing.T) {
	runBothGraphs(t, func(t *testing.T, g *Graph) {
		sub := NewIRI(RDFSSubClassOf)
		typ := NewIRI(RDFType)
		g.AddAll([]Triple{
			{NewIRI("Dog"), sub, NewIRI("Mammal")},
			{NewIRI("Mammal"), sub, NewIRI("Animal")},
			{NewIRI("rex"), typ, NewIRI("Dog")},
		})
		SaturateInPlace(g)
		for _, want := range []Triple{
			{NewIRI("Dog"), sub, NewIRI("Animal")},
			{NewIRI("rex"), typ, NewIRI("Mammal")},
			{NewIRI("rex"), typ, NewIRI("Animal")},
		} {
			if !g.Contains(want) {
				t.Fatalf("saturation missing %v", want)
			}
		}
	})
}

func TestStoreGraphPersistAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.db")
	st, err := store.Open(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := OpenGraph(st, "g")
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for i := 0; i < 500; i++ {
		tr := tri(fmt.Sprintf("s%d", i%50), fmt.Sprintf("p%d", i%7), fmt.Sprintf("o%d", i))
		g.Add(tr)
		want = append(want, tr.String())
	}
	sort.Strings(want)
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	g2, err := OpenGraph(st2, "g")
	if err != nil {
		t.Fatal(err)
	}
	if g2.Size() != 500 {
		t.Fatalf("reopened size = %d, want 500", g2.Size())
	}
	var got []string
	for _, tr := range g2.Triples() {
		got = append(got, tr.String())
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatal("reopened triple set differs")
	}
	// Pattern probes still work after reopen (dictionary IDs rebuilt).
	if n := g2.CountMatch(NewIRI("s3"), Term{}, Term{}); n == 0 {
		t.Fatal("reopened graph: subject probe found nothing")
	}
}
