package rdf

import (
	"encoding/binary"
	"fmt"
	"strings"
	"sync"

	"tatooine/internal/lru"
	"tatooine/internal/store"
)

// TermID is a dense dictionary identifier for a Term within one Graph.
// IDs start at 1; 0 is reserved as "no term" / wildcard in index lookups.
type TermID uint32

// NoTerm is the reserved wildcard TermID.
const NoTerm TermID = 0

// Dictionary interns Terms, assigning each distinct term a dense TermID.
// It is safe for concurrent use.
//
// Two modes share the type. The in-memory mode (NewDictionary) holds
// everything in maps. The paged mode (openPagedDictionary) keeps the
// mappings on disk — a forward keyspace id(4,BE) → stored key and a
// reverse keyspace stored key → id(4,BE), both read through the
// store's page cache — with a small LRU of hot decoded terms, so
// opening a graph costs O(1) regardless of term count and resident
// memory is bounded by the cache, not the dictionary.
//
// Stored keys are prefix-compressed: IRI namespaces (through the last
// '/' or '#') are interned in an append-only table of up to 255
// entries, and a tabled IRI is stored as 'I'+tableID+local instead of
// 'i'+full IRI. The table is append-only so a term's stored form is
// ambiguous only between "compressed" and "raw interned before its
// namespace was tabled" — lookups probe both.
type Dictionary struct {
	mu    sync.RWMutex
	byKey map[string]TermID // in-memory mode only
	terms []Term            // in-memory mode only; terms[id-1] is the Term for id

	kv       store.KV // forward keyspace; nil for a purely in-memory dictionary
	firstErr error

	// Paged mode.
	paged   bool
	rev     store.KV           // stored key → id(4,BE)
	pfxKV   store.KV           // tableID(1) → namespace
	pfx     []string           // pfx[tableID] = namespace
	pfxByNS map[string]int     // namespace → tableID
	nextID  TermID             // next id to assign
	hotTerm *lru.Cache[Term]   // string(id,4,BE) → decoded Term
	hotID   *lru.Cache[TermID] // raw term key → id
}

// DefaultDictHotTerms is the paged dictionary's decoded-term LRU
// capacity (each of the two hot caches): 4096 terms.
const DefaultDictHotTerms = 4096

// maxDictPrefixes bounds the namespace table to what one byte can
// address; IRIs beyond the 255th distinct namespace store raw.
const maxDictPrefixes = 255

// NewDictionary returns an empty in-memory dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{byKey: make(map[string]TermID)}
}

// openPagedDictionary opens (or creates) the lazily-paged dictionary
// stored under prefix in st. Nothing is scanned on a warm open: the
// next TermID comes from the forward keyspace's O(1) length and the
// namespace table (at most 255 entries) is the only state loaded.
// Dictionaries persisted by older versions have no reverse keyspace
// yet; the one-time migration below rebuilds it from the forward
// mapping.
func openPagedDictionary(st store.Store, prefix string, hot int) (*Dictionary, error) {
	kv, err := st.Keyspace(prefix + "/dict")
	if err != nil {
		return nil, err
	}
	rev, err := st.Keyspace(prefix + "/dict_r")
	if err != nil {
		return nil, err
	}
	pfxKV, err := st.Keyspace(prefix + "/dict_p")
	if err != nil {
		return nil, err
	}
	if hot <= 0 {
		hot = DefaultDictHotTerms
	}
	d := &Dictionary{
		kv:      kv,
		paged:   true,
		rev:     rev,
		pfxKV:   pfxKV,
		pfxByNS: make(map[string]int),
		nextID:  TermID(kv.Len()) + 1,
		hotTerm: lru.New[Term](hot),
		hotID:   lru.New[TermID](hot),
	}
	err = pfxKV.Scan(nil, func(k, v []byte) bool {
		for int(k[0]) >= len(d.pfx) {
			d.pfx = append(d.pfx, "")
		}
		d.pfx[k[0]] = string(v)
		d.pfxByNS[string(v)] = int(k[0])
		return true
	})
	if err != nil {
		return nil, err
	}
	if kv.Len() > 0 && rev.Len() == 0 {
		// Migration from the load-everything format: no reverse mapping
		// was persisted. One forward scan rebuilds it (entries stay in
		// their raw form; only terms interned from now on compress).
		err := kv.Scan(nil, func(k, v []byte) bool {
			if _, perr := rev.Put(v, k); perr != nil {
				err = perr
				return false
			}
			return true
		})
		if err != nil {
			return nil, err
		}
	}
	return d, nil
}

// splitIRINamespace splits an IRI value at its last '/' or '#'
// (inclusive). An empty namespace means the IRI is not worth
// compressing.
func splitIRINamespace(v string) (ns, local string) {
	idx := strings.LastIndexAny(v, "/#")
	if idx <= 0 {
		return "", v
	}
	return v[:idx+1], v[idx+1:]
}

// storedKeys returns the candidate stored encodings for t, compressed
// form first when t's namespace is tabled. Callers probe the reverse
// keyspace in order. Holds d.mu (read suffices).
func (d *Dictionary) storedKeys(raw string, t Term) [][]byte {
	if t.Kind == IRI {
		if ns, local := splitIRINamespace(t.Value); ns != "" {
			if id, ok := d.pfxByNS[ns]; ok {
				comp := make([]byte, 2+len(local))
				comp[0] = 'I'
				comp[1] = byte(id)
				copy(comp[2:], local)
				return [][]byte{comp, []byte(raw)}
			}
		}
	}
	return [][]byte{[]byte(raw)}
}

// storedKeyForInsert encodes t for a fresh intern, adding t's
// namespace to the table when there is room. Holds d.mu (write).
func (d *Dictionary) storedKeyForInsert(raw string, t Term) []byte {
	if t.Kind != IRI {
		return []byte(raw)
	}
	ns, local := splitIRINamespace(t.Value)
	if ns == "" {
		return []byte(raw)
	}
	id, ok := d.pfxByNS[ns]
	if !ok {
		if len(d.pfx) >= maxDictPrefixes {
			return []byte(raw)
		}
		id = len(d.pfx)
		d.pfx = append(d.pfx, ns)
		d.pfxByNS[ns] = id
		if _, err := d.pfxKV.Put([]byte{byte(id)}, []byte(ns)); err != nil && d.firstErr == nil {
			d.firstErr = err
		}
	}
	comp := make([]byte, 2+len(local))
	comp[0] = 'I'
	comp[1] = byte(id)
	copy(comp[2:], local)
	return comp
}

// decodeStoredKey inverts the stored encoding (compressed or raw).
func (d *Dictionary) decodeStoredKey(v []byte) (Term, error) {
	if len(v) >= 2 && v[0] == 'I' {
		if int(v[1]) >= len(d.pfx) || d.pfx[v[1]] == "" {
			return Term{}, fmt.Errorf("rdf: dict: unknown namespace id %d", v[1])
		}
		return NewIRI(d.pfx[v[1]] + string(v[2:])), nil
	}
	return decodeTermKey(string(v))
}

// decodeTermKey inverts Term.Key(): "i<iri>", "b<label>",
// "l<lang>\x00<datatype>\x00<value>".
func decodeTermKey(key string) (Term, error) {
	if key == "" {
		return Term{}, fmt.Errorf("rdf: dict: empty term key")
	}
	rest := key[1:]
	switch key[0] {
	case 'i':
		return NewIRI(rest), nil
	case 'b':
		return NewBlank(rest), nil
	case 'l':
		parts := strings.SplitN(rest, "\x00", 3)
		if len(parts) != 3 {
			return Term{}, fmt.Errorf("rdf: dict: malformed literal key %q", key)
		}
		return Term{Kind: Literal, Lang: parts[0], Datatype: parts[1], Value: parts[2]}, nil
	default:
		return Term{}, fmt.Errorf("rdf: dict: unknown term key kind %q", key[0])
	}
}

// Intern returns the ID for t, assigning a fresh one if t is new.
func (d *Dictionary) Intern(t Term) TermID {
	key := t.Key()
	if d.paged {
		return d.internPaged(key, t)
	}
	d.mu.RLock()
	id, ok := d.byKey[key]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.byKey[key]; ok {
		return id
	}
	d.terms = append(d.terms, t)
	id = TermID(len(d.terms))
	d.byKey[key] = id
	if d.kv != nil {
		var k [4]byte
		binary.BigEndian.PutUint32(k[:], uint32(id))
		if _, err := d.kv.Put(k[:], []byte(key)); err != nil && d.firstErr == nil {
			d.firstErr = err
		}
	}
	return id
}

func (d *Dictionary) internPaged(key string, t Term) TermID {
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.hotID.Get(key); ok {
		return id
	}
	if id, ok := d.lookupPagedLocked(key, t); ok {
		d.hotID.Put(key, id)
		return id
	}
	stored := d.storedKeyForInsert(key, t)
	id := d.nextID
	d.nextID++
	var k [4]byte
	binary.BigEndian.PutUint32(k[:], uint32(id))
	if _, err := d.kv.Put(k[:], stored); err != nil && d.firstErr == nil {
		d.firstErr = err
	}
	if _, err := d.rev.Put(stored, k[:]); err != nil && d.firstErr == nil {
		d.firstErr = err
	}
	d.hotID.Put(key, id)
	d.hotTerm.Put(string(k[:]), t)
	return id
}

// lookupPagedLocked probes the reverse keyspace for t, compressed form
// first. Holds d.mu.
func (d *Dictionary) lookupPagedLocked(key string, t Term) (TermID, bool) {
	for _, stored := range d.storedKeys(key, t) {
		v, ok, err := d.rev.Get(stored)
		if err != nil {
			if d.firstErr == nil {
				d.firstErr = err
			}
			return NoTerm, false
		}
		if ok && len(v) == 4 {
			return TermID(binary.BigEndian.Uint32(v)), true
		}
	}
	return NoTerm, false
}

// storeErr returns the first write-through error, if any.
func (d *Dictionary) storeErr() error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.firstErr
}

// Lookup returns the ID for t, or NoTerm if t was never interned.
func (d *Dictionary) Lookup(t Term) TermID {
	key := t.Key()
	if d.paged {
		d.mu.Lock()
		defer d.mu.Unlock()
		if id, ok := d.hotID.Get(key); ok {
			return id
		}
		id, ok := d.lookupPagedLocked(key, t)
		if ok {
			d.hotID.Put(key, id)
		}
		return id
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.byKey[key]
}

// Term returns the Term for id. It returns the zero Term for NoTerm or an
// out-of-range id.
func (d *Dictionary) Term(id TermID) Term {
	if id == NoTerm {
		return Term{}
	}
	if d.paged {
		var k [4]byte
		binary.BigEndian.PutUint32(k[:], uint32(id))
		d.mu.Lock()
		defer d.mu.Unlock()
		if t, ok := d.hotTerm.Get(string(k[:])); ok {
			return t
		}
		v, ok, err := d.kv.Get(k[:])
		if err != nil {
			if d.firstErr == nil {
				d.firstErr = err
			}
			return Term{}
		}
		if !ok {
			return Term{}
		}
		t, err := d.decodeStoredKey(v)
		if err != nil {
			if d.firstErr == nil {
				d.firstErr = err
			}
			return Term{}
		}
		d.hotTerm.Put(string(k[:]), t)
		return t
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(id) > len(d.terms) {
		return Term{}
	}
	return d.terms[id-1]
}

// Len returns the number of interned terms.
func (d *Dictionary) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.paged {
		return int(d.nextID) - 1
	}
	return len(d.terms)
}

// tripleID is a dictionary-encoded triple.
type tripleID struct {
	s, p, o TermID
}
