package rdf

import "sync"

// TermID is a dense dictionary identifier for a Term within one Graph.
// IDs start at 1; 0 is reserved as "no term" / wildcard in index lookups.
type TermID uint32

// NoTerm is the reserved wildcard TermID.
const NoTerm TermID = 0

// Dictionary interns Terms, assigning each distinct term a dense TermID.
// It is safe for concurrent use.
type Dictionary struct {
	mu    sync.RWMutex
	byKey map[string]TermID
	terms []Term // terms[id-1] is the Term for id
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{byKey: make(map[string]TermID)}
}

// Intern returns the ID for t, assigning a fresh one if t is new.
func (d *Dictionary) Intern(t Term) TermID {
	key := t.Key()
	d.mu.RLock()
	id, ok := d.byKey[key]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.byKey[key]; ok {
		return id
	}
	d.terms = append(d.terms, t)
	id = TermID(len(d.terms))
	d.byKey[key] = id
	return id
}

// Lookup returns the ID for t, or NoTerm if t was never interned.
func (d *Dictionary) Lookup(t Term) TermID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.byKey[t.Key()]
}

// Term returns the Term for id. It returns the zero Term for NoTerm or an
// out-of-range id.
func (d *Dictionary) Term(id TermID) Term {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id == NoTerm || int(id) > len(d.terms) {
		return Term{}
	}
	return d.terms[id-1]
}

// Len returns the number of interned terms.
func (d *Dictionary) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.terms)
}

// tripleID is a dictionary-encoded triple.
type tripleID struct {
	s, p, o TermID
}
