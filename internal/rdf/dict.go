package rdf

import (
	"encoding/binary"
	"fmt"
	"strings"
	"sync"

	"tatooine/internal/store"
)

// TermID is a dense dictionary identifier for a Term within one Graph.
// IDs start at 1; 0 is reserved as "no term" / wildcard in index lookups.
type TermID uint32

// NoTerm is the reserved wildcard TermID.
const NoTerm TermID = 0

// Dictionary interns Terms, assigning each distinct term a dense TermID.
// It is safe for concurrent use.
//
// A dictionary may be bound to a store keyspace (openDictionary): the
// full id→term mapping always lives in memory for map-speed lookups,
// and each fresh Intern is written through to the keyspace so IDs are
// stable across restarts. The keyspace records id(4,BE) → Term.Key().
type Dictionary struct {
	mu    sync.RWMutex
	byKey map[string]TermID
	terms []Term // terms[id-1] is the Term for id

	kv       store.KV // nil for a purely in-memory dictionary
	firstErr error
}

// NewDictionary returns an empty in-memory dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{byKey: make(map[string]TermID)}
}

// openDictionary loads a dictionary from kv and binds it for
// write-through. IDs in the keyspace must be dense starting at 1 —
// they are scanned in key order (big-endian, so numeric order) and
// rebuilt positionally.
func openDictionary(kv store.KV) (*Dictionary, error) {
	n := kv.Len()
	d := &Dictionary{
		byKey: make(map[string]TermID, n),
		terms: make([]Term, 0, n),
		kv:    kv,
	}
	var next TermID = 1
	var loadErr error
	err := kv.Scan(nil, func(k, v []byte) bool {
		if len(k) != 4 {
			loadErr = fmt.Errorf("rdf: dict: malformed id key (%d bytes)", len(k))
			return false
		}
		id := TermID(binary.BigEndian.Uint32(k))
		if id != next {
			loadErr = fmt.Errorf("rdf: dict: non-dense ids (got %d, want %d)", id, next)
			return false
		}
		key := string(v)
		t, err := decodeTermKey(key)
		if err != nil {
			loadErr = err
			return false
		}
		d.terms = append(d.terms, t)
		d.byKey[key] = id
		next++
		return true
	})
	if err != nil {
		return nil, err
	}
	if loadErr != nil {
		return nil, loadErr
	}
	return d, nil
}

// decodeTermKey inverts Term.Key(): "i<iri>", "b<label>",
// "l<lang>\x00<datatype>\x00<value>".
func decodeTermKey(key string) (Term, error) {
	if key == "" {
		return Term{}, fmt.Errorf("rdf: dict: empty term key")
	}
	rest := key[1:]
	switch key[0] {
	case 'i':
		return NewIRI(rest), nil
	case 'b':
		return NewBlank(rest), nil
	case 'l':
		parts := strings.SplitN(rest, "\x00", 3)
		if len(parts) != 3 {
			return Term{}, fmt.Errorf("rdf: dict: malformed literal key %q", key)
		}
		return Term{Kind: Literal, Lang: parts[0], Datatype: parts[1], Value: parts[2]}, nil
	default:
		return Term{}, fmt.Errorf("rdf: dict: unknown term key kind %q", key[0])
	}
}

// Intern returns the ID for t, assigning a fresh one if t is new.
func (d *Dictionary) Intern(t Term) TermID {
	key := t.Key()
	d.mu.RLock()
	id, ok := d.byKey[key]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.byKey[key]; ok {
		return id
	}
	d.terms = append(d.terms, t)
	id = TermID(len(d.terms))
	d.byKey[key] = id
	if d.kv != nil {
		var k [4]byte
		binary.BigEndian.PutUint32(k[:], uint32(id))
		if _, err := d.kv.Put(k[:], []byte(key)); err != nil && d.firstErr == nil {
			d.firstErr = err
		}
	}
	return id
}

// storeErr returns the first write-through error, if any.
func (d *Dictionary) storeErr() error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.firstErr
}

// Lookup returns the ID for t, or NoTerm if t was never interned.
func (d *Dictionary) Lookup(t Term) TermID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.byKey[t.Key()]
}

// Term returns the Term for id. It returns the zero Term for NoTerm or an
// out-of-range id.
func (d *Dictionary) Term(id TermID) Term {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id == NoTerm || int(id) > len(d.terms) {
		return Term{}
	}
	return d.terms[id-1]
}

// Len returns the number of interned terms.
func (d *Dictionary) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.terms)
}

// tripleID is a dictionary-encoded triple.
type tripleID struct {
	s, p, o TermID
}
