package rdf

import (
	"sort"
	"sync"
)

type termSet map[TermID]struct{}

// index is a two-level nested map ending in a set, e.g. for the SPO index
// idx[s][p] is the set of objects.
type index map[TermID]map[TermID]termSet

func (ix index) add(a, b, c TermID) bool {
	m, ok := ix[a]
	if !ok {
		m = make(map[TermID]termSet)
		ix[a] = m
	}
	s, ok := m[b]
	if !ok {
		s = make(termSet)
		m[b] = s
	}
	if _, ok := s[c]; ok {
		return false
	}
	s[c] = struct{}{}
	return true
}

func (ix index) remove(a, b, c TermID) bool {
	m, ok := ix[a]
	if !ok {
		return false
	}
	s, ok := m[b]
	if !ok {
		return false
	}
	if _, ok := s[c]; !ok {
		return false
	}
	delete(s, c)
	if len(s) == 0 {
		delete(m, b)
		if len(m) == 0 {
			delete(ix, a)
		}
	}
	return true
}

// Graph is a dictionary-encoded RDF triple store with SPO, POS and OSP
// indexes, supporting pattern matching with any combination of bound
// positions. It is safe for concurrent readers; writes take an exclusive
// lock.
type Graph struct {
	mu   sync.RWMutex
	dict *Dictionary
	spo  index
	pos  index
	osp  index
	size int
}

// NewGraph returns an empty graph with its own dictionary.
func NewGraph() *Graph {
	return &Graph{
		dict: NewDictionary(),
		spo:  make(index),
		pos:  make(index),
		osp:  make(index),
	}
}

// Dict exposes the graph's term dictionary.
func (g *Graph) Dict() *Dictionary { return g.dict }

// Size returns the number of distinct triples stored.
func (g *Graph) Size() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.size
}

// Add inserts the triple and reports whether it was not already present.
// Zero (invalid) terms are rejected by returning false.
func (g *Graph) Add(t Triple) bool {
	if t.S.IsZero() || t.P.IsZero() || t.O.IsZero() {
		return false
	}
	s := g.dict.Intern(t.S)
	p := g.dict.Intern(t.P)
	o := g.dict.Intern(t.O)
	return g.addIDs(s, p, o)
}

// AddAll inserts every triple in ts and returns how many were new. The
// batch is applied atomically with respect to concurrent readers (it is
// AddBatch without the delta).
func (g *Graph) AddAll(ts []Triple) int {
	return len(g.AddBatch(ts))
}

// AddBatch inserts every triple in ts under ONE write-lock hold and
// returns the subset that was actually new, in input order. Unlike
// AddAll — which locks per triple, so a concurrent reader can observe a
// half-applied batch — the whole batch becomes visible atomically with
// respect to any single read operation. The returned delta is what an
// incremental reasoner must propagate. Zero (invalid) terms are skipped.
func (g *Graph) AddBatch(ts []Triple) []Triple {
	type enc struct {
		s, p, o TermID
		t       Triple
	}
	// Intern outside the graph lock; the dictionary has its own.
	encs := make([]enc, 0, len(ts))
	for _, t := range ts {
		if t.S.IsZero() || t.P.IsZero() || t.O.IsZero() {
			continue
		}
		encs = append(encs, enc{g.dict.Intern(t.S), g.dict.Intern(t.P), g.dict.Intern(t.O), t})
	}
	var added []Triple
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, e := range encs {
		if g.addIDsLocked(e.s, e.p, e.o) {
			added = append(added, e.t)
		}
	}
	return added
}

// RemoveBatch deletes every triple in ts under ONE write-lock hold and
// returns the subset that was actually present, in input order (the
// delta an incremental reasoner must retract).
func (g *Graph) RemoveBatch(ts []Triple) []Triple {
	type enc struct {
		s, p, o TermID
		t       Triple
	}
	encs := make([]enc, 0, len(ts))
	for _, t := range ts {
		s := g.dict.Lookup(t.S)
		p := g.dict.Lookup(t.P)
		o := g.dict.Lookup(t.O)
		if s == NoTerm || p == NoTerm || o == NoTerm {
			continue
		}
		encs = append(encs, enc{s, p, o, t})
	}
	var removed []Triple
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, e := range encs {
		if g.removeIDsLocked(e.s, e.p, e.o) {
			removed = append(removed, e.t)
		}
	}
	return removed
}

func (g *Graph) addIDs(s, p, o TermID) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.addIDsLocked(s, p, o)
}

// addIDsLocked is the single index-maintenance point for insertion;
// callers hold g.mu.
func (g *Graph) addIDsLocked(s, p, o TermID) bool {
	if !g.spo.add(s, p, o) {
		return false
	}
	g.pos.add(p, o, s)
	g.osp.add(o, s, p)
	g.size++
	return true
}

// removeIDsLocked is the single index-maintenance point for deletion;
// callers hold g.mu.
func (g *Graph) removeIDsLocked(s, p, o TermID) bool {
	if !g.spo.remove(s, p, o) {
		return false
	}
	g.pos.remove(p, o, s)
	g.osp.remove(o, s, p)
	g.size--
	return true
}

// Remove deletes the triple and reports whether it was present.
func (g *Graph) Remove(t Triple) bool {
	s := g.dict.Lookup(t.S)
	p := g.dict.Lookup(t.P)
	o := g.dict.Lookup(t.O)
	if s == NoTerm || p == NoTerm || o == NoTerm {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.removeIDsLocked(s, p, o)
}

// Contains reports whether the triple is present.
func (g *Graph) Contains(t Triple) bool {
	s := g.dict.Lookup(t.S)
	p := g.dict.Lookup(t.P)
	o := g.dict.Lookup(t.O)
	if s == NoTerm || p == NoTerm || o == NoTerm {
		return false
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	if m, ok := g.spo[s]; ok {
		if set, ok := m[p]; ok {
			_, ok := set[o]
			return ok
		}
	}
	return false
}

// MatchIDs calls fn for every stored triple matching the pattern, where
// NoTerm in any position is a wildcard. Iteration stops early if fn
// returns false. The callback runs under the graph's read lock and must
// not call write methods.
func (g *Graph) MatchIDs(s, p, o TermID, fn func(s, p, o TermID) bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	g.matchLocked(s, p, o, fn)
}

func (g *Graph) matchLocked(s, p, o TermID, fn func(s, p, o TermID) bool) {
	switch {
	case s != NoTerm:
		m, ok := g.spo[s]
		if !ok {
			return
		}
		if p != NoTerm {
			set, ok := m[p]
			if !ok {
				return
			}
			if o != NoTerm {
				if _, ok := set[o]; ok {
					fn(s, p, o)
				}
				return
			}
			for oid := range set {
				if !fn(s, p, oid) {
					return
				}
			}
			return
		}
		for pid, set := range m {
			if o != NoTerm {
				if _, ok := set[o]; ok {
					if !fn(s, pid, o) {
						return
					}
				}
				continue
			}
			for oid := range set {
				if !fn(s, pid, oid) {
					return
				}
			}
		}
	case p != NoTerm:
		m, ok := g.pos[p]
		if !ok {
			return
		}
		if o != NoTerm {
			set, ok := m[o]
			if !ok {
				return
			}
			for sid := range set {
				if !fn(sid, p, o) {
					return
				}
			}
			return
		}
		for oid, set := range m {
			for sid := range set {
				if !fn(sid, p, oid) {
					return
				}
			}
		}
	case o != NoTerm:
		m, ok := g.osp[o]
		if !ok {
			return
		}
		for sid, set := range m {
			for pid := range set {
				if !fn(sid, pid, o) {
					return
				}
			}
		}
	default:
		for sid, m := range g.spo {
			for pid, set := range m {
				for oid := range set {
					if !fn(sid, pid, oid) {
						return
					}
				}
			}
		}
	}
}

// zeroAsWildcard maps a zero Term to NoTerm, otherwise looks it up. The
// second return value is false when a non-zero term is absent from the
// dictionary (so no triple can match).
func (g *Graph) zeroAsWildcard(t Term) (TermID, bool) {
	if t.IsZero() {
		return NoTerm, true
	}
	id := g.dict.Lookup(t)
	return id, id != NoTerm
}

// Match returns all triples matching the pattern; zero Terms are
// wildcards. Results are in unspecified order.
func (g *Graph) Match(s, p, o Term) []Triple {
	sid, ok := g.zeroAsWildcard(s)
	if !ok {
		return nil
	}
	pid, ok := g.zeroAsWildcard(p)
	if !ok {
		return nil
	}
	oid, ok := g.zeroAsWildcard(o)
	if !ok {
		return nil
	}
	var out []Triple
	g.MatchIDs(sid, pid, oid, func(s, p, o TermID) bool {
		out = append(out, Triple{g.dict.Term(s), g.dict.Term(p), g.dict.Term(o)})
		return true
	})
	return out
}

// CountMatch returns the number of triples matching the pattern without
// materializing them; zero Terms are wildcards.
func (g *Graph) CountMatch(s, p, o Term) int {
	sid, ok := g.zeroAsWildcard(s)
	if !ok {
		return 0
	}
	pid, ok := g.zeroAsWildcard(p)
	if !ok {
		return 0
	}
	oid, ok := g.zeroAsWildcard(o)
	if !ok {
		return 0
	}
	return g.countIDs(sid, pid, oid)
}

func (g *Graph) countIDs(s, p, o TermID) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	// Fast paths that avoid enumeration.
	switch {
	case s == NoTerm && p == NoTerm && o == NoTerm:
		return g.size
	case s != NoTerm && p != NoTerm && o == NoTerm:
		if m, ok := g.spo[s]; ok {
			return len(m[p])
		}
		return 0
	case s == NoTerm && p != NoTerm && o != NoTerm:
		if m, ok := g.pos[p]; ok {
			return len(m[o])
		}
		return 0
	}
	n := 0
	g.matchLocked(s, p, o, func(_, _, _ TermID) bool { n++; return true })
	return n
}

// Triples returns every stored triple, sorted lexically by their
// N-Triples rendering (deterministic for tests and serialization).
func (g *Graph) Triples() []Triple {
	ts := g.Match(Term{}, Term{}, Term{})
	sort.Slice(ts, func(i, j int) bool { return ts[i].String() < ts[j].String() })
	return ts
}

// Subjects returns the distinct subjects of triples with property p and
// object o (zero Terms are wildcards).
func (g *Graph) Subjects(p, o Term) []Term {
	pid, ok := g.zeroAsWildcard(p)
	if !ok {
		return nil
	}
	oid, ok := g.zeroAsWildcard(o)
	if !ok {
		return nil
	}
	seen := make(map[TermID]struct{})
	g.MatchIDs(NoTerm, pid, oid, func(s, _, _ TermID) bool {
		seen[s] = struct{}{}
		return true
	})
	out := make([]Term, 0, len(seen))
	for id := range seen {
		out = append(out, g.dict.Term(id))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// Objects returns the distinct objects of triples with subject s and
// property p (zero Terms are wildcards).
func (g *Graph) Objects(s, p Term) []Term {
	sid, ok := g.zeroAsWildcard(s)
	if !ok {
		return nil
	}
	pid, ok := g.zeroAsWildcard(p)
	if !ok {
		return nil
	}
	seen := make(map[TermID]struct{})
	g.MatchIDs(sid, pid, NoTerm, func(_, _, o TermID) bool {
		seen[o] = struct{}{}
		return true
	})
	out := make([]Term, 0, len(seen))
	for id := range seen {
		out = append(out, g.dict.Term(id))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// Properties returns the distinct properties used in the graph.
func (g *Graph) Properties() []Term {
	g.mu.RLock()
	ids := make([]TermID, 0, len(g.pos))
	for p := range g.pos {
		ids = append(ids, p)
	}
	g.mu.RUnlock()
	out := make([]Term, 0, len(ids))
	for _, id := range ids {
		out = append(out, g.dict.Term(id))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// Clone returns a deep copy of the graph sharing no mutable state.
func (g *Graph) Clone() *Graph {
	out := NewGraph()
	g.mu.RLock()
	defer g.mu.RUnlock()
	for s, m := range g.spo {
		st := g.dict.Term(s)
		for p, set := range m {
			pt := g.dict.Term(p)
			for o := range set {
				out.Add(Triple{st, pt, g.dict.Term(o)})
			}
		}
	}
	return out
}
