package rdf

import (
	"sort"
	"sync"

	"tatooine/internal/store"
)

// tripleBackend is the storage engine behind a Graph: the three
// permutation indexes (SPO/POS/OSP) reduced to eight operations. The
// default backend is nested in-memory maps (mapTriples); a store-backed
// graph runs the same access paths over B-tree cursors (storeTriples).
// All methods are called with the Graph's lock held (write lock for
// add/remove, read lock otherwise), so implementations need no internal
// locking.
type tripleBackend interface {
	add(s, p, o TermID) bool
	remove(s, p, o TermID) bool
	contains(s, p, o TermID) bool
	// match calls fn for every triple matching the pattern (NoTerm is a
	// wildcard in any position); iteration stops when fn returns false.
	match(s, p, o TermID, fn func(s, p, o TermID) bool)
	count(s, p, o TermID) int
	size() int
	// properties iterates the distinct predicate IDs in the graph.
	properties(fn func(p TermID) bool)
	// err returns the first storage error encountered, if any; the map
	// backend always returns nil.
	err() error
}

// Graph is a dictionary-encoded RDF triple store with SPO, POS and OSP
// access paths, supporting pattern matching with any combination of
// bound positions. It is safe for concurrent readers; writes take an
// exclusive lock. The default graph lives in memory; OpenGraph puts the
// same structure on a persistent store.Store.
type Graph struct {
	mu   sync.RWMutex
	dict *Dictionary
	be   tripleBackend
}

// NewGraph returns an empty in-memory graph with its own dictionary.
func NewGraph() *Graph {
	return &Graph{
		dict: NewDictionary(),
		be:   newMapTriples(),
	}
}

// OpenGraph opens (or creates) a graph persisted in st under the given
// keyspace prefix. The dictionary is lazily paged: term↔ID mappings
// live in B-tree keyspaces read through the store's page cache with a
// small LRU of hot decoded terms, so open cost and resident memory are
// independent of term count. Writes become durable at the owning
// store's next Commit.
func OpenGraph(st store.Store, prefix string) (*Graph, error) {
	dict, err := openPagedDictionary(st, prefix, 0)
	if err != nil {
		return nil, err
	}
	be, err := openStoreTriples(st, prefix)
	if err != nil {
		return nil, err
	}
	return &Graph{dict: dict, be: be}, nil
}

// OpenGraphSharedDict opens (or creates) a graph persisted in st under
// prefix that interns terms through base's dictionary instead of
// loading its own. Saturation generations use this: G∞ shares G's
// terms almost entirely, so sharing the dictionary halves what a warm
// boot has to load — and since dictionaries only ever grow, sharing
// one across graphs is safe (it locks internally).
func OpenGraphSharedDict(st store.Store, prefix string, base *Graph) (*Graph, error) {
	be, err := openStoreTriples(st, prefix)
	if err != nil {
		return nil, err
	}
	return &Graph{dict: base.dict, be: be}, nil
}

// StoreErr returns the first storage error the graph's backend has
// swallowed, or nil. The probe API (Contains, MatchIDs, ...) cannot
// report errors, so a store-backed graph degrades to missing answers on
// I/O failure; durable owners must check StoreErr before committing.
func (g *Graph) StoreErr() error {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if err := g.dict.storeErr(); err != nil {
		return err
	}
	return g.be.err()
}

// Dict exposes the graph's term dictionary.
func (g *Graph) Dict() *Dictionary { return g.dict }

// Size returns the number of distinct triples stored.
func (g *Graph) Size() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.be.size()
}

// Add inserts the triple and reports whether it was not already present.
// Zero (invalid) terms are rejected by returning false.
func (g *Graph) Add(t Triple) bool {
	if t.S.IsZero() || t.P.IsZero() || t.O.IsZero() {
		return false
	}
	s := g.dict.Intern(t.S)
	p := g.dict.Intern(t.P)
	o := g.dict.Intern(t.O)
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.be.add(s, p, o)
}

// AddAll inserts every triple in ts and returns how many were new. The
// batch is applied atomically with respect to concurrent readers (it is
// AddBatch without the delta).
func (g *Graph) AddAll(ts []Triple) int {
	return len(g.AddBatch(ts))
}

// AddBatch inserts every triple in ts under ONE write-lock hold and
// returns the subset that was actually new, in input order. Unlike
// AddAll — which locks per triple, so a concurrent reader can observe a
// half-applied batch — the whole batch becomes visible atomically with
// respect to any single read operation. The returned delta is what an
// incremental reasoner must propagate. Zero (invalid) terms are skipped.
func (g *Graph) AddBatch(ts []Triple) []Triple {
	type enc struct {
		s, p, o TermID
		t       Triple
	}
	// Intern outside the graph lock; the dictionary has its own.
	encs := make([]enc, 0, len(ts))
	for _, t := range ts {
		if t.S.IsZero() || t.P.IsZero() || t.O.IsZero() {
			continue
		}
		encs = append(encs, enc{g.dict.Intern(t.S), g.dict.Intern(t.P), g.dict.Intern(t.O), t})
	}
	var added []Triple
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, e := range encs {
		if g.be.add(e.s, e.p, e.o) {
			added = append(added, e.t)
		}
	}
	return added
}

// RemoveBatch deletes every triple in ts under ONE write-lock hold and
// returns the subset that was actually present, in input order (the
// delta an incremental reasoner must retract).
func (g *Graph) RemoveBatch(ts []Triple) []Triple {
	type enc struct {
		s, p, o TermID
		t       Triple
	}
	encs := make([]enc, 0, len(ts))
	for _, t := range ts {
		s := g.dict.Lookup(t.S)
		p := g.dict.Lookup(t.P)
		o := g.dict.Lookup(t.O)
		if s == NoTerm || p == NoTerm || o == NoTerm {
			continue
		}
		encs = append(encs, enc{s, p, o, t})
	}
	var removed []Triple
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, e := range encs {
		if g.be.remove(e.s, e.p, e.o) {
			removed = append(removed, e.t)
		}
	}
	return removed
}

// addIDs inserts an already-encoded triple under the write lock.
func (g *Graph) addIDs(s, p, o TermID) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.be.add(s, p, o)
}

// Remove deletes the triple and reports whether it was present.
func (g *Graph) Remove(t Triple) bool {
	s := g.dict.Lookup(t.S)
	p := g.dict.Lookup(t.P)
	o := g.dict.Lookup(t.O)
	if s == NoTerm || p == NoTerm || o == NoTerm {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.be.remove(s, p, o)
}

// Contains reports whether the triple is present.
func (g *Graph) Contains(t Triple) bool {
	s := g.dict.Lookup(t.S)
	p := g.dict.Lookup(t.P)
	o := g.dict.Lookup(t.O)
	if s == NoTerm || p == NoTerm || o == NoTerm {
		return false
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.be.contains(s, p, o)
}

// MatchIDs calls fn for every stored triple matching the pattern, where
// NoTerm in any position is a wildcard. Iteration stops early if fn
// returns false. The callback runs under the graph's read lock and must
// not call write methods.
func (g *Graph) MatchIDs(s, p, o TermID, fn func(s, p, o TermID) bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	g.be.match(s, p, o, fn)
}

// zeroAsWildcard maps a zero Term to NoTerm, otherwise looks it up. The
// second return value is false when a non-zero term is absent from the
// dictionary (so no triple can match).
func (g *Graph) zeroAsWildcard(t Term) (TermID, bool) {
	if t.IsZero() {
		return NoTerm, true
	}
	id := g.dict.Lookup(t)
	return id, id != NoTerm
}

// Match returns all triples matching the pattern; zero Terms are
// wildcards. Results are in unspecified order.
func (g *Graph) Match(s, p, o Term) []Triple {
	sid, ok := g.zeroAsWildcard(s)
	if !ok {
		return nil
	}
	pid, ok := g.zeroAsWildcard(p)
	if !ok {
		return nil
	}
	oid, ok := g.zeroAsWildcard(o)
	if !ok {
		return nil
	}
	var out []Triple
	g.MatchIDs(sid, pid, oid, func(s, p, o TermID) bool {
		out = append(out, Triple{g.dict.Term(s), g.dict.Term(p), g.dict.Term(o)})
		return true
	})
	return out
}

// CountMatch returns the number of triples matching the pattern without
// materializing them; zero Terms are wildcards.
func (g *Graph) CountMatch(s, p, o Term) int {
	sid, ok := g.zeroAsWildcard(s)
	if !ok {
		return 0
	}
	pid, ok := g.zeroAsWildcard(p)
	if !ok {
		return 0
	}
	oid, ok := g.zeroAsWildcard(o)
	if !ok {
		return 0
	}
	return g.countIDs(sid, pid, oid)
}

func (g *Graph) countIDs(s, p, o TermID) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.be.count(s, p, o)
}

// Triples returns every stored triple, sorted lexically by their
// N-Triples rendering (deterministic for tests and serialization).
func (g *Graph) Triples() []Triple {
	ts := g.Match(Term{}, Term{}, Term{})
	sort.Slice(ts, func(i, j int) bool { return ts[i].String() < ts[j].String() })
	return ts
}

// Subjects returns the distinct subjects of triples with property p and
// object o (zero Terms are wildcards).
func (g *Graph) Subjects(p, o Term) []Term {
	pid, ok := g.zeroAsWildcard(p)
	if !ok {
		return nil
	}
	oid, ok := g.zeroAsWildcard(o)
	if !ok {
		return nil
	}
	seen := make(map[TermID]struct{})
	g.MatchIDs(NoTerm, pid, oid, func(s, _, _ TermID) bool {
		seen[s] = struct{}{}
		return true
	})
	out := make([]Term, 0, len(seen))
	for id := range seen {
		out = append(out, g.dict.Term(id))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// Objects returns the distinct objects of triples with subject s and
// property p (zero Terms are wildcards).
func (g *Graph) Objects(s, p Term) []Term {
	sid, ok := g.zeroAsWildcard(s)
	if !ok {
		return nil
	}
	pid, ok := g.zeroAsWildcard(p)
	if !ok {
		return nil
	}
	seen := make(map[TermID]struct{})
	g.MatchIDs(sid, pid, NoTerm, func(_, _, o TermID) bool {
		seen[o] = struct{}{}
		return true
	})
	out := make([]Term, 0, len(seen))
	for id := range seen {
		out = append(out, g.dict.Term(id))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// Properties returns the distinct properties used in the graph.
func (g *Graph) Properties() []Term {
	g.mu.RLock()
	var ids []TermID
	g.be.properties(func(p TermID) bool {
		ids = append(ids, p)
		return true
	})
	g.mu.RUnlock()
	out := make([]Term, 0, len(ids))
	for _, id := range ids {
		out = append(out, g.dict.Term(id))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// CopyTo inserts every triple of g into dst. It is the bulk-load path
// for migrating a graph between backends (e.g. seeding a store-backed
// graph from an in-memory one).
func (g *Graph) CopyTo(dst *Graph) {
	const batch = 4096
	buf := make([]Triple, 0, batch)
	flush := func() {
		if len(buf) > 0 {
			dst.AddBatch(buf)
			buf = buf[:0]
		}
	}
	g.mu.RLock()
	var all []Triple
	g.be.match(NoTerm, NoTerm, NoTerm, func(s, p, o TermID) bool {
		all = append(all, Triple{g.dict.Term(s), g.dict.Term(p), g.dict.Term(o)})
		return true
	})
	g.mu.RUnlock()
	for _, t := range all {
		buf = append(buf, t)
		if len(buf) == batch {
			flush()
		}
	}
	flush()
}

// Clone returns a deep in-memory copy of the graph sharing no mutable
// state.
func (g *Graph) Clone() *Graph {
	out := NewGraph()
	g.CopyTo(out)
	return out
}
