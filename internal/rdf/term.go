// Package rdf implements an in-memory RDF substrate: terms, a
// dictionary-encoded triple store with three access-path indexes,
// an N-Triples/Turtle-subset parser and serializer, RDFS entailment
// (saturation), and evaluation of basic graph pattern (BGP) queries.
//
// It is the "custom application-dependent RDF graph" component of the
// TATOOINE mixed-instance architecture, and also serves as the engine
// behind RDF data sources (LOD endpoints) in a mixed instance.
package rdf

import (
	"fmt"
	"strings"
)

// TermKind discriminates the three kinds of RDF terms.
type TermKind uint8

const (
	// IRI identifies a resource, e.g. http://tatooine.example/pol/POL01140.
	IRI TermKind = iota
	// Literal is a constant value, optionally typed or language-tagged.
	Literal
	// Blank is an anonymous node, scoped to one graph.
	Blank
)

func (k TermKind) String() string {
	switch k {
	case IRI:
		return "iri"
	case Literal:
		return "literal"
	case Blank:
		return "blank"
	default:
		return fmt.Sprintf("TermKind(%d)", uint8(k))
	}
}

// Term is an RDF term. The zero Term is an empty IRI and is treated as
// invalid by Graph operations.
type Term struct {
	Kind TermKind
	// Value is the IRI string, the literal's lexical form, or the blank
	// node label (without the "_:" prefix).
	Value string
	// Datatype is the datatype IRI of a typed literal ("" for plain).
	Datatype string
	// Lang is the language tag of a language-tagged literal.
	Lang string
}

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return Term{Kind: IRI, Value: iri} }

// NewLiteral returns a plain literal term.
func NewLiteral(v string) Term { return Term{Kind: Literal, Value: v} }

// NewTypedLiteral returns a literal with a datatype IRI.
func NewTypedLiteral(v, datatype string) Term {
	return Term{Kind: Literal, Value: v, Datatype: datatype}
}

// NewLangLiteral returns a language-tagged literal.
func NewLangLiteral(v, lang string) Term {
	return Term{Kind: Literal, Value: v, Lang: lang}
}

// NewBlank returns a blank node with the given label.
func NewBlank(label string) Term { return Term{Kind: Blank, Value: label} }

// IsZero reports whether t is the zero Term.
func (t Term) IsZero() bool {
	return t.Kind == IRI && t.Value == "" && t.Datatype == "" && t.Lang == ""
}

// Key returns a unique string encoding of the term, usable as a map key
// and stable across processes. IRIs encode as "i<iri>", literals as
// "l<lang>\x00<datatype>\x00<value>", blanks as "b<label>".
func (t Term) Key() string {
	switch t.Kind {
	case IRI:
		return "i" + t.Value
	case Literal:
		return "l" + t.Lang + "\x00" + t.Datatype + "\x00" + t.Value
	case Blank:
		return "b" + t.Value
	default:
		return "?" + t.Value
	}
}

// String renders the term in N-Triples syntax.
func (t Term) String() string {
	switch t.Kind {
	case IRI:
		return "<" + t.Value + ">"
	case Literal:
		s := `"` + escapeLiteral(t.Value) + `"`
		if t.Lang != "" {
			return s + "@" + t.Lang
		}
		if t.Datatype != "" {
			return s + "^^<" + t.Datatype + ">"
		}
		return s
	case Blank:
		return "_:" + t.Value
	default:
		return t.Value
	}
}

func escapeLiteral(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Triple is a subject-property-object statement over Terms.
type Triple struct {
	S, P, O Term
}

// String renders the triple in N-Triples syntax (without trailing dot).
func (t Triple) String() string {
	return t.S.String() + " " + t.P.String() + " " + t.O.String()
}

// Well-known vocabulary IRIs used by the RDFS entailment rules and by
// TATOOINE's custom graphs.
const (
	RDFType           = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
	RDFSSubClassOf    = "http://www.w3.org/2000/01/rdf-schema#subClassOf"
	RDFSSubPropertyOf = "http://www.w3.org/2000/01/rdf-schema#subPropertyOf"
	RDFSDomain        = "http://www.w3.org/2000/01/rdf-schema#domain"
	RDFSRange         = "http://www.w3.org/2000/01/rdf-schema#range"
	RDFSLabel         = "http://www.w3.org/2000/01/rdf-schema#label"
	XSDString         = "http://www.w3.org/2001/XMLSchema#string"
	XSDInteger        = "http://www.w3.org/2001/XMLSchema#integer"
	XSDDecimal        = "http://www.w3.org/2001/XMLSchema#decimal"
	XSDBoolean        = "http://www.w3.org/2001/XMLSchema#boolean"
	XSDDateTime       = "http://www.w3.org/2001/XMLSchema#dateTime"
	FOAFName          = "http://xmlns.com/foaf/0.1/name"
)

// CommonPrefixes maps the prefix names understood by default when parsing
// Turtle-style prefixed names.
var CommonPrefixes = map[string]string{
	"rdf":  "http://www.w3.org/1999/02/22-rdf-syntax-ns#",
	"rdfs": "http://www.w3.org/2000/01/rdf-schema#",
	"xsd":  "http://www.w3.org/2001/XMLSchema#",
	"foaf": "http://xmlns.com/foaf/0.1/",
	"owl":  "http://www.w3.org/2002/07/owl#",
}
