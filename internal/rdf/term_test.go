package rdf

import (
	"testing"
	"testing/quick"
)

func TestTermString(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{NewIRI("http://ex.org/a"), "<http://ex.org/a>"},
		{NewLiteral("hello"), `"hello"`},
		{NewLangLiteral("bonjour", "fr"), `"bonjour"@fr`},
		{NewTypedLiteral("12", XSDInteger), `"12"^^<` + XSDInteger + `>`},
		{NewBlank("b0"), "_:b0"},
		{NewLiteral(`quote " and \ back`), `"quote \" and \\ back"`},
		{NewLiteral("line\nbreak\ttab"), `"line\nbreak\ttab"`},
	}
	for _, c := range cases {
		if got := c.term.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.term, got, c.want)
		}
	}
}

func TestTermKeyDistinguishesKinds(t *testing.T) {
	// Same value in different kinds must have different keys.
	terms := []Term{
		NewIRI("x"),
		NewLiteral("x"),
		NewBlank("x"),
		NewLangLiteral("x", "fr"),
		NewTypedLiteral("x", XSDString),
	}
	seen := make(map[string]Term)
	for _, tm := range terms {
		if prev, ok := seen[tm.Key()]; ok {
			t.Errorf("key collision between %v and %v", prev, tm)
		}
		seen[tm.Key()] = tm
	}
}

func TestTermKeyInjective(t *testing.T) {
	// Property: distinct (value, lang, datatype) literals have distinct keys.
	f := func(v1, v2, lang1, lang2 string) bool {
		t1 := Term{Kind: Literal, Value: v1, Lang: lang1}
		t2 := Term{Kind: Literal, Value: v2, Lang: lang2}
		if t1 == t2 {
			return t1.Key() == t2.Key()
		}
		return t1.Key() != t2.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsZero(t *testing.T) {
	if !(Term{}).IsZero() {
		t.Error("zero Term should be zero")
	}
	if NewIRI("x").IsZero() {
		t.Error("non-empty IRI should not be zero")
	}
	if NewLiteral("").IsZero() {
		// An empty plain literal is a valid term, distinct from zero.
		t.Error("empty literal should not be zero")
	}
}

func TestTermKindString(t *testing.T) {
	if IRI.String() != "iri" || Literal.String() != "literal" || Blank.String() != "blank" {
		t.Error("TermKind.String mismatch")
	}
}

func TestDictionaryRoundTrip(t *testing.T) {
	d := NewDictionary()
	a := d.Intern(NewIRI("http://ex.org/a"))
	b := d.Intern(NewLiteral("a"))
	if a == b {
		t.Fatal("distinct terms interned to same ID")
	}
	if again := d.Intern(NewIRI("http://ex.org/a")); again != a {
		t.Errorf("re-intern gave %d, want %d", again, a)
	}
	if got := d.Term(a); got != NewIRI("http://ex.org/a") {
		t.Errorf("Term(%d) = %v", a, got)
	}
	if d.Lookup(NewIRI("http://ex.org/missing")) != NoTerm {
		t.Error("Lookup of missing term should be NoTerm")
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
	if !d.Term(NoTerm).IsZero() {
		t.Error("Term(NoTerm) should be zero")
	}
	if !d.Term(999).IsZero() {
		t.Error("Term(out of range) should be zero")
	}
}

func TestDictionaryConcurrent(t *testing.T) {
	d := NewDictionary()
	const n = 64
	done := make(chan TermID, n)
	for i := 0; i < n; i++ {
		go func() { done <- d.Intern(NewIRI("http://ex.org/same")) }()
	}
	first := <-done
	for i := 1; i < n; i++ {
		if id := <-done; id != first {
			t.Fatalf("concurrent interns disagree: %d vs %d", id, first)
		}
	}
	if d.Len() != 1 {
		t.Errorf("Len = %d, want 1", d.Len())
	}
}
