package rdf

import (
	"strings"
	"testing"
)

func TestParseNTriples(t *testing.T) {
	in := `<http://ex.org/s> <http://ex.org/p> <http://ex.org/o> .
<http://ex.org/s> <http://ex.org/name> "Le Monde" .
<http://ex.org/s> <http://ex.org/founded> "1944"^^<` + XSDInteger + `> .
<http://ex.org/s> <http://ex.org/slogan> "bonjour"@fr .
_:b0 <http://ex.org/p> <http://ex.org/o> .
`
	ts, err := ParseString(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 5 {
		t.Fatalf("parsed %d triples, want 5", len(ts))
	}
	if ts[1].O != NewLiteral("Le Monde") {
		t.Errorf("literal parse: %v", ts[1].O)
	}
	if ts[2].O != NewTypedLiteral("1944", XSDInteger) {
		t.Errorf("typed literal parse: %v", ts[2].O)
	}
	if ts[3].O != NewLangLiteral("bonjour", "fr") {
		t.Errorf("lang literal parse: %v", ts[3].O)
	}
	if ts[4].S != NewBlank("b0") {
		t.Errorf("blank parse: %v", ts[4].S)
	}
}

func TestParseTurtleSubset(t *testing.T) {
	in := `
@prefix pol: <http://tatooine.example/pol/> .
@prefix : <http://tatooine.example/> .
# a comment
pol:POL01140 a :politician ;
    :position :headOfState ;
    foaf:name "François Hollande" ;
    :twitterAccount "fhollande" .
pol:POL01140 :knows pol:POL02, pol:POL03 .
`
	ts, err := ParseString(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 6 {
		t.Fatalf("parsed %d triples, want 6: %v", len(ts), ts)
	}
	if ts[0].P != NewIRI(RDFType) {
		t.Errorf("'a' keyword should map to rdf:type, got %v", ts[0].P)
	}
	if ts[0].S != NewIRI("http://tatooine.example/pol/POL01140") {
		t.Errorf("prefixed subject: %v", ts[0].S)
	}
	if ts[2].P != NewIRI(FOAFName) {
		t.Errorf("default foaf prefix: %v", ts[2].P)
	}
	// Object list via ','.
	if ts[4].O != NewIRI("http://tatooine.example/pol/POL02") ||
		ts[5].O != NewIRI("http://tatooine.example/pol/POL03") {
		t.Errorf("object list: %v %v", ts[4], ts[5])
	}
}

func TestParseNumbersAndBooleans(t *testing.T) {
	in := `@prefix : <http://e/> .
:x :count 42 .
:x :ratio 3.14 .
:x :neg -7 .
:x :flag true .
:x :flag2 false .
`
	ts, err := ParseString(in)
	if err != nil {
		t.Fatal(err)
	}
	want := []Term{
		NewTypedLiteral("42", XSDInteger),
		NewTypedLiteral("3.14", XSDDecimal),
		NewTypedLiteral("-7", XSDInteger),
		NewTypedLiteral("true", XSDBoolean),
		NewTypedLiteral("false", XSDBoolean),
	}
	for i, w := range want {
		if ts[i].O != w {
			t.Errorf("row %d: got %v, want %v", i, ts[i].O, w)
		}
	}
}

func TestParseEscapes(t *testing.T) {
	in := `<http://e/s> <http://e/p> "line\nnext \"quoted\" tab\there \\ done" .`
	ts, err := ParseString(in)
	if err != nil {
		t.Fatal(err)
	}
	want := "line\nnext \"quoted\" tab\there \\ done"
	if ts[0].O.Value != want {
		t.Errorf("escape parse: %q, want %q", ts[0].O.Value, want)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`<http://e/s> <http://e/p>`,                   // missing object + dot
		`"literal" <http://e/p> <http://e/o> .`,       // literal subject
		`<http://e/s> "p" <http://e/o> .`,             // literal predicate
		`<http://e/s> <http://e/p> <http://e/o> ;; .`, // bad punctuation
		`und:x <http://e/p> <http://e/o> .`,           // undeclared prefix
		`@prefix broken <http://e/> .`,                // prefix name missing ':'
		`<http://e/s <http://e/p> <http://e/o> .`,     // unterminated IRI then garbage
	}
	for _, c := range cases {
		if _, err := ParseString(c); err == nil {
			t.Errorf("expected error for %q", c)
		}
	}
}

func TestParseErrorPosition(t *testing.T) {
	_, err := ParseString("<http://e/s> <http://e/p> <http://e/o> .\n\"bad\" <x> <y> .")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("expected *ParseError, got %v", err)
	}
	if pe.Line != 2 {
		t.Errorf("error line = %d, want 2", pe.Line)
	}
	if !strings.Contains(pe.Error(), "parse error") {
		t.Errorf("error text: %s", pe.Error())
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	g := NewGraph()
	g.AddAll(MustParse(`
@prefix : <http://e/> .
:s :p :o .
:s :name "Le \"Monde\"" .
:s :founded 1944 .
:s :motto "liberté"@fr .
`))
	text := NTriplesString(g)
	back, err := ParseString(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	g2 := NewGraph()
	g2.AddAll(back)
	if g2.Size() != g.Size() {
		t.Fatalf("round trip size %d != %d", g2.Size(), g.Size())
	}
	for _, tri := range g.Triples() {
		if !g2.Contains(tri) {
			t.Errorf("round trip lost %v", tri)
		}
	}
}

func TestParseTrailingSemicolon(t *testing.T) {
	ts, err := ParseString(`@prefix : <http://e/> . :s :p :o ; .`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 1 {
		t.Fatalf("got %d triples, want 1", len(ts))
	}
}

func TestParseDecimalBeforeDot(t *testing.T) {
	ts, err := ParseString(`@prefix : <http://e/> . :s :p 1.5 . :s :q 2 .`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 {
		t.Fatalf("got %d triples, want 2", len(ts))
	}
	if ts[0].O != NewTypedLiteral("1.5", XSDDecimal) {
		t.Errorf("decimal: %v", ts[0].O)
	}
	if ts[1].O != NewTypedLiteral("2", XSDInteger) {
		t.Errorf("integer followed by statement dot: %v", ts[1].O)
	}
}
