package rdf

import (
	"strings"
	"testing"
)

func filterGraph() *Graph {
	g := NewGraph()
	g.AddAll(MustParse(`
@prefix : <http://e/> .
:p1 :followers 1500000 .
:p1 foaf:name "François Hollande" .
:p2 :followers 12000 .
:p2 foaf:name "Jean Dupont" .
:p3 :followers 88000 .
:p3 foaf:name "Anne Martin" .
`))
	return g
}

func TestFilterNumericComparison(t *testing.T) {
	g := filterGraph()
	q := MustParseBGP(`q(?x, ?n) :- ?x <http://e/followers> ?n . FILTER(?n > 50000)`, nil)
	sols, err := Evaluate(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if sols.Len() != 2 {
		t.Errorf("followers > 50000: %+v", sols.Rows)
	}
	qle := MustParseBGP(`q(?x) :- ?x <http://e/followers> ?n . FILTER(?n <= 12000)`, nil)
	sols, _ = Evaluate(g, qle)
	if sols.Len() != 1 {
		t.Errorf("followers <= 12000: %+v", sols.Rows)
	}
}

func TestFilterEqNe(t *testing.T) {
	g := filterGraph()
	q := MustParseBGP(`q(?x) :- ?x foaf:name ?n . FILTER(?n = "Jean Dupont")`, nil)
	sols, err := Evaluate(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if sols.Len() != 1 || sols.Rows[0][0] != NewIRI("http://e/p2") {
		t.Errorf("name =: %+v", sols.Rows)
	}
	qne := MustParseBGP(`q(?x) :- ?x foaf:name ?n . FILTER(?n != "Jean Dupont")`, nil)
	sols, _ = Evaluate(g, qne)
	if sols.Len() != 2 {
		t.Errorf("name !=: %+v", sols.Rows)
	}
}

func TestFilterContains(t *testing.T) {
	g := filterGraph()
	q := MustParseBGP(`q(?x) :- ?x foaf:name ?n . FILTER(?n CONTAINS "hollande")`, nil)
	sols, err := Evaluate(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if sols.Len() != 1 {
		t.Errorf("contains (case-insensitive): %+v", sols.Rows)
	}
}

func TestFilterMultiple(t *testing.T) {
	g := filterGraph()
	q := MustParseBGP(`q(?x) :- ?x <http://e/followers> ?n . ?x foaf:name ?name .
		FILTER(?n > 10000) . FILTER(?name CONTAINS "an")`, nil)
	sols, err := Evaluate(g, q)
	if err != nil {
		t.Fatal(err)
	}
	// Hollande (François: no "an"? "François Hollande" contains "an"? —
	// "Holl-an-de" yes), Dupont ("Je-an" yes), Martin ("Anne M-art-in":
	// "Anne" contains "an" case-insensitively). All three have n>10000.
	if sols.Len() != 3 {
		t.Errorf("multi filter: %+v", sols.Rows)
	}
	q2 := MustParseBGP(`q(?x) :- ?x <http://e/followers> ?n . ?x foaf:name ?name .
		FILTER(?n > 100000) . FILTER(?name CONTAINS "martin")`, nil)
	sols, _ = Evaluate(g, q2)
	if sols.Len() != 0 {
		t.Errorf("conjoined filters: %+v", sols.Rows)
	}
}

func TestFilterValidation(t *testing.T) {
	if _, err := ParseBGP(`q(?x) :- ?x <http://e/p> ?y . FILTER(?zz > 3)`, nil); err == nil {
		t.Error("filter on unbound variable accepted")
	}
}

func TestFilterParseErrors(t *testing.T) {
	cases := []string{
		`q(?x) :- ?x <http://e/p> ?y . FILTER ?y > 3)`,    // missing (
		`q(?x) :- ?x <http://e/p> ?y . FILTER(?y >< 3)`,   // bad operator
		`q(?x) :- ?x <http://e/p> ?y . FILTER(?y > 3`,     // unclosed
		`q(?x) :- ?x <http://e/p> ?y . FILTER(y > 3)`,     // missing ?
		`q(?x) :- ?x <http://e/p> ?y . FILTER(?y LIKE 3)`, // unknown op
	}
	for _, c := range cases {
		if _, err := ParseBGP(c, nil); err == nil {
			t.Errorf("expected error for %q", c)
		}
	}
}

func TestFilterStringRoundTrip(t *testing.T) {
	q := MustParseBGP(`q(?x) :- ?x <http://e/followers> ?n . FILTER(?n >= 100)`, nil)
	if !strings.Contains(q.String(), "FILTER(?n >= ") {
		t.Fatalf("render: %s", q.String())
	}
	q2, err := ParseBGP(q.String(), nil)
	if err != nil {
		t.Fatalf("reparse %q: %v", q.String(), err)
	}
	if len(q2.Filters) != 1 || q2.Filters[0].Op != FilterGe {
		t.Errorf("round trip: %+v", q2.Filters)
	}
}

func TestFilterWithEvaluateBound(t *testing.T) {
	g := filterGraph()
	q := MustParseBGP(`q(?x, ?n) :- ?x <http://e/followers> ?n . FILTER(?n > 50000)`, nil)
	sols, err := EvaluateBound(g, q, Bindings{"x": NewIRI("http://e/p2")})
	if err != nil {
		t.Fatal(err)
	}
	if sols.Len() != 0 { // p2 has 12000 followers
		t.Errorf("bound + filter: %+v", sols.Rows)
	}
}

func TestFilterKeywordNotMistakenForPattern(t *testing.T) {
	// A subject named "FILTERx" must not be parsed as a FILTER clause.
	g := NewGraph()
	g.AddAll(MustParse(`@prefix : <http://e/> . :FILTERx :p :o .`))
	q, err := ParseBGP(`q(?s) :- ?s <http://e/p> <http://e/o>`, nil)
	if err != nil {
		t.Fatal(err)
	}
	sols, _ := Evaluate(g, q)
	if sols.Len() != 1 {
		t.Errorf("rows: %+v", sols.Rows)
	}
}
