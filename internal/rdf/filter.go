package rdf

import (
	"strconv"
	"strings"
)

// FilterOp enumerates BGP filter operators.
type FilterOp uint8

const (
	FilterEq FilterOp = iota
	FilterNe
	FilterLt
	FilterLe
	FilterGt
	FilterGe
	// FilterContains tests substring containment on the lexical form
	// (case-insensitive), handy for journalists' name matching.
	FilterContains
)

func (op FilterOp) String() string {
	switch op {
	case FilterEq:
		return "="
	case FilterNe:
		return "!="
	case FilterLt:
		return "<"
	case FilterLe:
		return "<="
	case FilterGt:
		return ">"
	case FilterGe:
		return ">="
	case FilterContains:
		return "CONTAINS"
	default:
		return "?op"
	}
}

// Filter constrains one variable of a BGP against a constant term,
// applied to each solution (SPARQL's FILTER restricted to
// variable-vs-constant comparisons, which covers the queries the paper
// shows).
type Filter struct {
	Var  string
	Op   FilterOp
	Term Term
}

func (f Filter) String() string {
	return "FILTER(?" + f.Var + " " + f.Op.String() + " " + f.Term.String() + ")"
}

// eval applies the filter to a bound term.
func (f Filter) eval(bound Term) bool {
	switch f.Op {
	case FilterEq:
		return bound == f.Term
	case FilterNe:
		return bound != f.Term
	case FilterContains:
		return strings.Contains(strings.ToLower(bound.Value), strings.ToLower(f.Term.Value))
	}
	// Ordering: numeric when both literals parse as numbers, else
	// lexicographic on the value.
	c, ok := compareTerms(bound, f.Term)
	if !ok {
		return false
	}
	switch f.Op {
	case FilterLt:
		return c < 0
	case FilterLe:
		return c <= 0
	case FilterGt:
		return c > 0
	case FilterGe:
		return c >= 0
	default:
		return false
	}
}

func compareTerms(a, b Term) (int, bool) {
	af, aerr := strconv.ParseFloat(a.Value, 64)
	bf, berr := strconv.ParseFloat(b.Value, 64)
	if aerr == nil && berr == nil {
		switch {
		case af < bf:
			return -1, true
		case af > bf:
			return 1, true
		default:
			return 0, true
		}
	}
	return strings.Compare(a.Value, b.Value), true
}

// parseFilter parses "FILTER(?var OP term)" with the parser positioned
// after the FILTER keyword.
func (p *parser) parseFilter() (Filter, error) {
	if err := p.skipWS(); err != nil {
		return Filter{}, p.errf("unexpected end in FILTER")
	}
	r, _ := p.peek()
	if r != '(' {
		return Filter{}, p.errf("FILTER expects '('")
	}
	p.read()
	if err := p.skipWS(); err != nil {
		return Filter{}, p.errf("unexpected end in FILTER")
	}
	r, _ = p.peek()
	if r != '?' {
		return Filter{}, p.errf("FILTER expects a variable")
	}
	p.read()
	name, err := p.readBareWord()
	if err != nil || name == "" {
		return Filter{}, p.errf("malformed FILTER variable")
	}
	if err := p.skipWS(); err != nil {
		return Filter{}, p.errf("unexpected end in FILTER")
	}
	op, err := p.readFilterOp()
	if err != nil {
		return Filter{}, err
	}
	if err := p.skipWS(); err != nil {
		return Filter{}, p.errf("unexpected end in FILTER")
	}
	term, err := p.parseTerm()
	if err != nil {
		return Filter{}, err
	}
	if err := p.skipWS(); err != nil {
		return Filter{}, p.errf("FILTER not closed")
	}
	r, _ = p.peek()
	if r != ')' {
		return Filter{}, p.errf("FILTER expects ')'")
	}
	p.read()
	return Filter{Var: name, Op: op, Term: term}, nil
}

func (p *parser) readFilterOp() (FilterOp, error) {
	r, err := p.peek()
	if err != nil {
		return 0, p.errf("missing FILTER operator")
	}
	switch r {
	case '=':
		p.read()
		return FilterEq, nil
	case '!':
		p.read()
		if r2, _ := p.read(); r2 != '=' {
			return 0, p.errf("expected '!='")
		}
		return FilterNe, nil
	case '<':
		p.read()
		if r2, _ := p.peek(); r2 == '=' {
			p.read()
			return FilterLe, nil
		}
		return FilterLt, nil
	case '>':
		p.read()
		if r2, _ := p.peek(); r2 == '=' {
			p.read()
			return FilterGe, nil
		}
		return FilterGt, nil
	default:
		word, err := p.readBareWord()
		if err != nil {
			return 0, p.errf("missing FILTER operator")
		}
		if strings.EqualFold(word, "CONTAINS") {
			return FilterContains, nil
		}
		return 0, p.errf("unknown FILTER operator %q", word)
	}
}
