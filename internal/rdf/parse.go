package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"unicode"
)

// ParseError reports a syntax error with its position in the input.
type ParseError struct {
	Line int
	Col  int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("rdf: parse error at %d:%d: %s", e.Line, e.Col, e.Msg)
}

// Parse reads a Turtle-subset / N-Triples document and returns its
// triples. The supported subset covers what TATOOINE's custom graphs use:
//
//   - @prefix declarations and prefixed names (ex:name)
//   - <IRI> references
//   - "literal", "literal"@lang, "literal"^^<datatype> with escapes
//   - _:blank nodes
//   - the keyword 'a' for rdf:type
//   - predicate lists with ';' and object lists with ','
//   - '#' comments
func Parse(r io.Reader) ([]Triple, error) {
	p := &parser{
		sc:       bufio.NewReaderSize(r, 64<<10),
		line:     1,
		col:      0,
		prefixes: make(map[string]string),
	}
	for k, v := range CommonPrefixes {
		p.prefixes[k] = v
	}
	return p.parse()
}

// ParseString is Parse over a string.
func ParseString(s string) ([]Triple, error) {
	return Parse(strings.NewReader(s))
}

// MustParse parses s and panics on error; intended for tests and
// hand-written fixture graphs.
func MustParse(s string) []Triple {
	ts, err := ParseString(s)
	if err != nil {
		panic(err)
	}
	return ts
}

type parser struct {
	sc       *bufio.Reader
	line     int
	col      int
	pushback []rune // LIFO stack of un-read runes
	prefixes map[string]string
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Line: p.line, Col: p.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) read() (rune, error) {
	if n := len(p.pushback); n > 0 {
		r := p.pushback[n-1]
		p.pushback = p.pushback[:n-1]
		p.advancePos(r)
		return r, nil
	}
	r, _, err := p.sc.ReadRune()
	if err != nil {
		return 0, err
	}
	p.advancePos(r)
	return r, nil
}

func (p *parser) advancePos(r rune) {
	if r == '\n' {
		p.line++
		p.col = 0
	} else {
		p.col++
	}
}

// unread pushes r back so the next read or peek returns it. Position
// tracking is approximate after an unread; errors report the nearest
// line/column.
func (p *parser) unread(r rune) {
	p.pushback = append(p.pushback, r)
	if p.col > 0 {
		p.col--
	}
}

func (p *parser) peek() (rune, error) {
	if n := len(p.pushback); n > 0 {
		return p.pushback[n-1], nil
	}
	r, _, err := p.sc.ReadRune()
	if err != nil {
		return 0, err
	}
	p.pushback = append(p.pushback, r)
	return r, nil
}

// skipWS consumes whitespace and comments; returns io.EOF at end of input.
func (p *parser) skipWS() error {
	for {
		r, err := p.peek()
		if err != nil {
			return err
		}
		switch {
		case unicode.IsSpace(r):
			p.read()
		case r == '#':
			for {
				r, err := p.read()
				if err != nil {
					return err
				}
				if r == '\n' {
					break
				}
			}
		default:
			return nil
		}
	}
}

func (p *parser) parse() ([]Triple, error) {
	var out []Triple
	for {
		if err := p.skipWS(); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, err
		}
		r, _ := p.peek()
		if r == '@' {
			if err := p.parsePrefix(); err != nil {
				return nil, err
			}
			continue
		}
		ts, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		out = append(out, ts...)
	}
}

func (p *parser) parsePrefix() error {
	word, err := p.readBareWord()
	if err != nil {
		return err
	}
	if word != "@prefix" {
		return p.errf("unknown directive %q", word)
	}
	if err := p.skipWS(); err != nil {
		return p.errf("unexpected end in @prefix")
	}
	name, err := p.readBareWord()
	if err != nil {
		return err
	}
	if !strings.HasSuffix(name, ":") {
		return p.errf("prefix name %q must end with ':'", name)
	}
	if err := p.skipWS(); err != nil {
		return p.errf("unexpected end in @prefix")
	}
	t, err := p.parseTerm()
	if err != nil {
		return err
	}
	if t.Kind != IRI {
		return p.errf("@prefix target must be an IRI")
	}
	p.prefixes[strings.TrimSuffix(name, ":")] = t.Value
	if err := p.expectDot(); err != nil {
		return err
	}
	return nil
}

func (p *parser) expectDot() error {
	if err := p.skipWS(); err != nil {
		return p.errf("expected '.', got end of input")
	}
	r, err := p.read()
	if err != nil || r != '.' {
		return p.errf("expected '.', got %q", r)
	}
	return nil
}

// parseStatement parses one subject with its predicate-object list(s).
func (p *parser) parseStatement() ([]Triple, error) {
	subj, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	if subj.Kind == Literal {
		return nil, p.errf("literal cannot be a subject")
	}
	var out []Triple
	for {
		if err := p.skipWS(); err != nil {
			return nil, p.errf("unexpected end of input after subject")
		}
		pred, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		if pred.Kind != IRI {
			return nil, p.errf("predicate must be an IRI")
		}
		for {
			if err := p.skipWS(); err != nil {
				return nil, p.errf("unexpected end of input after predicate")
			}
			obj, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			out = append(out, Triple{subj, pred, obj})
			if err := p.skipWS(); err != nil {
				return nil, p.errf("statement not terminated")
			}
			r, _ := p.peek()
			if r == ',' {
				p.read()
				continue
			}
			break
		}
		r, _ := p.peek()
		switch r {
		case ';':
			p.read()
			// Allow a trailing ';' before '.'.
			if err := p.skipWS(); err != nil {
				return nil, p.errf("statement not terminated")
			}
			if r2, _ := p.peek(); r2 == '.' {
				p.read()
				return out, nil
			}
			continue
		case '.':
			p.read()
			return out, nil
		default:
			return nil, p.errf("expected ';', ',' or '.', got %q", r)
		}
	}
}

// parseTerm parses one term: IRI ref, prefixed name, literal, blank, or 'a'.
func (p *parser) parseTerm() (Term, error) {
	r, err := p.peek()
	if err != nil {
		return Term{}, p.errf("expected term, got end of input")
	}
	switch {
	case r == '<':
		return p.parseIRIRef()
	case r == '"':
		return p.parseLiteral()
	case r == '_':
		return p.parseBlank()
	default:
		word, err := p.readBareWord()
		if err != nil {
			return Term{}, err
		}
		if word == "a" {
			return NewIRI(RDFType), nil
		}
		if word == "true" || word == "false" {
			return NewTypedLiteral(word, XSDBoolean), nil
		}
		if isNumeric(word) {
			if strings.ContainsAny(word, ".eE") {
				return NewTypedLiteral(word, XSDDecimal), nil
			}
			return NewTypedLiteral(word, XSDInteger), nil
		}
		colon := strings.IndexByte(word, ':')
		if colon < 0 {
			return Term{}, p.errf("expected term, got %q", word)
		}
		base, ok := p.prefixes[word[:colon]]
		if !ok {
			return Term{}, p.errf("undeclared prefix %q", word[:colon])
		}
		return NewIRI(base + word[colon+1:]), nil
	}
}

func isNumeric(s string) bool {
	if s == "" {
		return false
	}
	i := 0
	if s[0] == '+' || s[0] == '-' {
		i = 1
		if len(s) == 1 {
			return false
		}
	}
	digits := false
	for ; i < len(s); i++ {
		c := s[i]
		if c >= '0' && c <= '9' {
			digits = true
			continue
		}
		if c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-' {
			continue
		}
		return false
	}
	return digits
}

func (p *parser) parseIRIRef() (Term, error) {
	p.read() // consume '<'
	var b strings.Builder
	for {
		r, err := p.read()
		if err != nil {
			return Term{}, p.errf("unterminated IRI")
		}
		if r == '>' {
			return NewIRI(b.String()), nil
		}
		if r == '\\' {
			esc, err := p.read()
			if err != nil {
				return Term{}, p.errf("unterminated IRI escape")
			}
			b.WriteRune(esc)
			continue
		}
		b.WriteRune(r)
	}
}

func (p *parser) parseLiteral() (Term, error) {
	p.read() // consume '"'
	var b strings.Builder
	for {
		r, err := p.read()
		if err != nil {
			return Term{}, p.errf("unterminated literal")
		}
		if r == '"' {
			break
		}
		if r == '\\' {
			esc, err := p.read()
			if err != nil {
				return Term{}, p.errf("unterminated escape")
			}
			switch esc {
			case 'n':
				b.WriteRune('\n')
			case 't':
				b.WriteRune('\t')
			case 'r':
				b.WriteRune('\r')
			case '"', '\\':
				b.WriteRune(esc)
			default:
				return Term{}, p.errf("unknown escape \\%c", esc)
			}
			continue
		}
		b.WriteRune(r)
	}
	val := b.String()
	r, err := p.peek()
	if err != nil {
		return NewLiteral(val), nil
	}
	switch r {
	case '@':
		p.read()
		lang, err := p.readBareWord()
		if err != nil || lang == "" {
			return Term{}, p.errf("missing language tag")
		}
		return NewLangLiteral(val, lang), nil
	case '^':
		p.read()
		r2, err := p.read()
		if err != nil || r2 != '^' {
			return Term{}, p.errf("expected '^^' before datatype")
		}
		dt, err := p.parseTerm()
		if err != nil {
			return Term{}, err
		}
		if dt.Kind != IRI {
			return Term{}, p.errf("datatype must be an IRI")
		}
		return NewTypedLiteral(val, dt.Value), nil
	default:
		return NewLiteral(val), nil
	}
}

func (p *parser) parseBlank() (Term, error) {
	word, err := p.readBareWord()
	if err != nil {
		return Term{}, err
	}
	if !strings.HasPrefix(word, "_:") || len(word) == 2 {
		return Term{}, p.errf("malformed blank node %q", word)
	}
	return NewBlank(word[2:]), nil
}

// readBareWord reads a run of characters that can appear in a prefixed
// name, directive, language tag, or number.
func (p *parser) readBareWord() (string, error) {
	var b strings.Builder
	for {
		r, err := p.peek()
		if err != nil {
			break
		}
		if unicode.IsSpace(r) || r == ';' || r == ',' || strings.ContainsRune("<>\"#()", r) {
			break
		}
		// A '.' ends a word unless it is the decimal point of a number
		// ("1.5" vs the statement-terminating dot of "ex:p 1 .").
		if r == '.' {
			if !isNumeric(b.String()) {
				break
			}
			p.read()
			next, err := p.peek()
			if err != nil || next < '0' || next > '9' {
				// Statement dot: push it back for the caller.
				p.unread('.')
				break
			}
			b.WriteRune('.')
			continue
		}
		p.read()
		b.WriteRune(r)
	}
	if b.Len() == 0 {
		r, _ := p.peek()
		return "", p.errf("expected word, got %q", r)
	}
	return b.String(), nil
}
