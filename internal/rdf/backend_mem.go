package rdf

// mapTriples is the default, in-memory triple backend: the original
// three nested-map indexes. It implements tripleBackend so the graph's
// access paths (probe, scan, count) are backend-agnostic — the same
// calls run against B-tree cursors when the graph is store-backed.

type termSet map[TermID]struct{}

// index is a two-level nested map ending in a set, e.g. for the SPO index
// idx[s][p] is the set of objects.
type index map[TermID]map[TermID]termSet

func (ix index) add(a, b, c TermID) bool {
	m, ok := ix[a]
	if !ok {
		m = make(map[TermID]termSet)
		ix[a] = m
	}
	s, ok := m[b]
	if !ok {
		s = make(termSet)
		m[b] = s
	}
	if _, ok := s[c]; ok {
		return false
	}
	s[c] = struct{}{}
	return true
}

func (ix index) remove(a, b, c TermID) bool {
	m, ok := ix[a]
	if !ok {
		return false
	}
	s, ok := m[b]
	if !ok {
		return false
	}
	if _, ok := s[c]; !ok {
		return false
	}
	delete(s, c)
	if len(s) == 0 {
		delete(m, b)
		if len(m) == 0 {
			delete(ix, a)
		}
	}
	return true
}

type mapTriples struct {
	spo index
	pos index
	osp index
	n   int
}

func newMapTriples() *mapTriples {
	return &mapTriples{spo: make(index), pos: make(index), osp: make(index)}
}

func (b *mapTriples) add(s, p, o TermID) bool {
	if !b.spo.add(s, p, o) {
		return false
	}
	b.pos.add(p, o, s)
	b.osp.add(o, s, p)
	b.n++
	return true
}

func (b *mapTriples) remove(s, p, o TermID) bool {
	if !b.spo.remove(s, p, o) {
		return false
	}
	b.pos.remove(p, o, s)
	b.osp.remove(o, s, p)
	b.n--
	return true
}

func (b *mapTriples) contains(s, p, o TermID) bool {
	if m, ok := b.spo[s]; ok {
		if set, ok := m[p]; ok {
			_, ok := set[o]
			return ok
		}
	}
	return false
}

func (b *mapTriples) size() int { return b.n }

func (b *mapTriples) match(s, p, o TermID, fn func(s, p, o TermID) bool) {
	switch {
	case s != NoTerm:
		m, ok := b.spo[s]
		if !ok {
			return
		}
		if p != NoTerm {
			set, ok := m[p]
			if !ok {
				return
			}
			if o != NoTerm {
				if _, ok := set[o]; ok {
					fn(s, p, o)
				}
				return
			}
			for oid := range set {
				if !fn(s, p, oid) {
					return
				}
			}
			return
		}
		for pid, set := range m {
			if o != NoTerm {
				if _, ok := set[o]; ok {
					if !fn(s, pid, o) {
						return
					}
				}
				continue
			}
			for oid := range set {
				if !fn(s, pid, oid) {
					return
				}
			}
		}
	case p != NoTerm:
		m, ok := b.pos[p]
		if !ok {
			return
		}
		if o != NoTerm {
			set, ok := m[o]
			if !ok {
				return
			}
			for sid := range set {
				if !fn(sid, p, o) {
					return
				}
			}
			return
		}
		for oid, set := range m {
			for sid := range set {
				if !fn(sid, p, oid) {
					return
				}
			}
		}
	case o != NoTerm:
		m, ok := b.osp[o]
		if !ok {
			return
		}
		for sid, set := range m {
			for pid := range set {
				if !fn(sid, pid, o) {
					return
				}
			}
		}
	default:
		for sid, m := range b.spo {
			for pid, set := range m {
				for oid := range set {
					if !fn(sid, pid, oid) {
						return
					}
				}
			}
		}
	}
}

func (b *mapTriples) count(s, p, o TermID) int {
	// Fast paths that avoid enumeration.
	switch {
	case s == NoTerm && p == NoTerm && o == NoTerm:
		return b.n
	case s != NoTerm && p != NoTerm && o == NoTerm:
		if m, ok := b.spo[s]; ok {
			return len(m[p])
		}
		return 0
	case s == NoTerm && p != NoTerm && o != NoTerm:
		if m, ok := b.pos[p]; ok {
			return len(m[o])
		}
		return 0
	}
	n := 0
	b.match(s, p, o, func(_, _, _ TermID) bool { n++; return true })
	return n
}

func (b *mapTriples) properties(fn func(p TermID) bool) {
	for p := range b.pos {
		if !fn(p) {
			return
		}
	}
}

func (b *mapTriples) err() error { return nil }
