package rdf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func tr(s, p, o string) Triple {
	return Triple{NewIRI(s), NewIRI(p), NewIRI(o)}
}

func TestGraphAddContainsRemove(t *testing.T) {
	g := NewGraph()
	x := tr("s", "p", "o")
	if g.Contains(x) {
		t.Fatal("empty graph contains triple")
	}
	if !g.Add(x) {
		t.Fatal("first Add returned false")
	}
	if g.Add(x) {
		t.Fatal("duplicate Add returned true")
	}
	if !g.Contains(x) {
		t.Fatal("graph missing added triple")
	}
	if g.Size() != 1 {
		t.Fatalf("Size = %d, want 1", g.Size())
	}
	if !g.Remove(x) {
		t.Fatal("Remove returned false")
	}
	if g.Contains(x) || g.Size() != 0 {
		t.Fatal("triple still present after Remove")
	}
	if g.Remove(x) {
		t.Fatal("second Remove returned true")
	}
}

func TestGraphRejectsZeroTerms(t *testing.T) {
	g := NewGraph()
	if g.Add(Triple{Term{}, NewIRI("p"), NewIRI("o")}) {
		t.Error("Add with zero subject should fail")
	}
	if g.Size() != 0 {
		t.Error("graph should stay empty")
	}
}

func TestGraphMatchAllCombinations(t *testing.T) {
	g := NewGraph()
	triples := []Triple{
		tr("s1", "p1", "o1"),
		tr("s1", "p1", "o2"),
		tr("s1", "p2", "o1"),
		tr("s2", "p1", "o1"),
		tr("s2", "p2", "o3"),
	}
	g.AddAll(triples)

	w := Term{} // wildcard
	cases := []struct {
		s, p, o Term
		want    int
	}{
		{w, w, w, 5},
		{NewIRI("s1"), w, w, 3},
		{w, NewIRI("p1"), w, 3},
		{w, w, NewIRI("o1"), 3},
		{NewIRI("s1"), NewIRI("p1"), w, 2},
		{NewIRI("s1"), w, NewIRI("o1"), 2},
		{w, NewIRI("p1"), NewIRI("o1"), 2},
		{NewIRI("s2"), NewIRI("p2"), NewIRI("o3"), 1},
		{NewIRI("nope"), w, w, 0},
		{w, NewIRI("nope"), w, 0},
		{w, w, NewIRI("nope"), 0},
	}
	for _, c := range cases {
		got := g.Match(c.s, c.p, c.o)
		if len(got) != c.want {
			t.Errorf("Match(%v,%v,%v) = %d rows, want %d", c.s, c.p, c.o, len(got), c.want)
		}
		if n := g.CountMatch(c.s, c.p, c.o); n != c.want {
			t.Errorf("CountMatch(%v,%v,%v) = %d, want %d", c.s, c.p, c.o, n, c.want)
		}
	}
}

func TestGraphMatchEarlyStop(t *testing.T) {
	g := NewGraph()
	for _, x := range []string{"a", "b", "c", "d"} {
		g.Add(tr(x, "p", "o"))
	}
	n := 0
	g.MatchIDs(NoTerm, NoTerm, NoTerm, func(_, _, _ TermID) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Errorf("early stop visited %d, want 2", n)
	}
}

func TestGraphSubjectsObjectsProperties(t *testing.T) {
	g := NewGraph()
	g.AddAll([]Triple{
		tr("s1", "p", "o1"), tr("s2", "p", "o1"), tr("s1", "q", "o2"),
	})
	if got := g.Subjects(NewIRI("p"), NewIRI("o1")); len(got) != 2 {
		t.Errorf("Subjects = %v, want 2 rows", got)
	}
	if got := g.Objects(NewIRI("s1"), Term{}); len(got) != 2 {
		t.Errorf("Objects = %v, want 2 rows", got)
	}
	props := g.Properties()
	if len(props) != 2 {
		t.Errorf("Properties = %v, want 2", props)
	}
}

func TestGraphClone(t *testing.T) {
	g := NewGraph()
	g.Add(tr("s", "p", "o"))
	c := g.Clone()
	c.Add(tr("s2", "p2", "o2"))
	if g.Size() != 1 {
		t.Errorf("clone mutation leaked into original: size %d", g.Size())
	}
	if c.Size() != 2 {
		t.Errorf("clone size = %d, want 2", c.Size())
	}
	if !c.Contains(tr("s", "p", "o")) {
		t.Error("clone missing original triple")
	}
}

func TestGraphTriplesDeterministic(t *testing.T) {
	mk := func(order []int) *Graph {
		base := []Triple{tr("a", "p", "x"), tr("b", "q", "y"), tr("c", "r", "z")}
		g := NewGraph()
		for _, i := range order {
			g.Add(base[i])
		}
		return g
	}
	a := mk([]int{0, 1, 2}).Triples()
	b := mk([]int{2, 0, 1}).Triples()
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("row %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: for a random set of triples, Size equals the number of
// distinct triples added, and every added triple is found by Contains
// and by each index path.
func TestGraphIndexConsistencyProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewGraph()
		distinct := make(map[Triple]struct{})
		names := []string{"a", "b", "c", "d", "e"}
		for i := 0; i < int(n); i++ {
			x := tr(names[rng.Intn(5)], names[rng.Intn(5)], names[rng.Intn(5)])
			g.Add(x)
			distinct[x] = struct{}{}
		}
		if g.Size() != len(distinct) {
			return false
		}
		for x := range distinct {
			if !g.Contains(x) {
				return false
			}
			// Each single-position probe must include x.
			if g.CountMatch(x.S, Term{}, Term{}) == 0 ||
				g.CountMatch(Term{}, x.P, Term{}) == 0 ||
				g.CountMatch(Term{}, Term{}, x.O) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: removing everything that was added leaves an empty graph with
// empty indexes (no dangling entries observable through Match).
func TestGraphRemoveAllProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewGraph()
		var added []Triple
		names := []string{"a", "b", "c"}
		for i := 0; i < int(n); i++ {
			x := tr(names[rng.Intn(3)], names[rng.Intn(3)], names[rng.Intn(3)])
			if g.Add(x) {
				added = append(added, x)
			}
		}
		for _, x := range added {
			if !g.Remove(x) {
				return false
			}
		}
		return g.Size() == 0 && len(g.Match(Term{}, Term{}, Term{})) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestGraphConcurrentReaders(t *testing.T) {
	g := NewGraph()
	for _, x := range []string{"a", "b", "c", "d", "e", "f"} {
		g.Add(tr(x, "p", "o"))
	}
	done := make(chan int, 16)
	for i := 0; i < 16; i++ {
		go func() { done <- len(g.Match(Term{}, NewIRI("p"), Term{})) }()
	}
	for i := 0; i < 16; i++ {
		if n := <-done; n != 6 {
			t.Fatalf("concurrent reader saw %d rows, want 6", n)
		}
	}
}
