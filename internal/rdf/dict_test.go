package rdf

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"tatooine/internal/store"
)

func TestDictionaryInternLookupRoundTrip(t *testing.T) {
	d := NewDictionary()
	terms := []Term{
		NewIRI("http://example.org/a"),
		NewLiteral("plain"),
		NewTypedLiteral("42", XSDInteger),
		NewLangLiteral("bonjour", "fr"),
		NewBlank("b0"),
		NewLiteral(""), // empty lexical form is a valid literal
	}
	ids := make([]TermID, len(terms))
	for i, tm := range terms {
		ids[i] = d.Intern(tm)
		if ids[i] == NoTerm {
			t.Fatalf("intern(%v) returned NoTerm", tm)
		}
	}
	for i, tm := range terms {
		if got := d.Lookup(tm); got != ids[i] {
			t.Fatalf("lookup(%v) = %d, want %d", tm, got, ids[i])
		}
		if got := d.Term(ids[i]); got != tm {
			t.Fatalf("term(%d) = %v, want %v", ids[i], got, tm)
		}
		if again := d.Intern(tm); again != ids[i] {
			t.Fatalf("re-intern(%v) = %d, want %d", tm, again, ids[i])
		}
	}
	if d.Len() != len(terms) {
		t.Fatalf("len = %d, want %d", d.Len(), len(terms))
	}
	if d.Lookup(NewIRI("never-seen")) != NoTerm {
		t.Fatal("lookup of unseen term != NoTerm")
	}
	if !d.Term(NoTerm).IsZero() || !d.Term(TermID(999)).IsZero() {
		t.Fatal("out-of-range Term() not zero")
	}
}

// TestDictionaryConcurrentIntern hammers Intern from many goroutines
// with overlapping term sets; run under -race this pins the
// double-checked locking, and the assertions pin ID uniqueness.
func TestDictionaryConcurrentIntern(t *testing.T) {
	d := NewDictionary()
	const workers = 8
	const perWorker = 500
	results := make([][]TermID, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ids := make([]TermID, perWorker)
			for i := 0; i < perWorker; i++ {
				// All workers intern the same 500 terms, racing on each.
				ids[i] = d.Intern(NewIRI(fmt.Sprintf("http://example.org/t%d", i)))
			}
			results[w] = ids
		}(w)
	}
	wg.Wait()
	if d.Len() != perWorker {
		t.Fatalf("len = %d, want %d (duplicate assignment under race)", d.Len(), perWorker)
	}
	for w := 1; w < workers; w++ {
		for i := range results[0] {
			if results[w][i] != results[0][i] {
				t.Fatalf("worker %d term %d got id %d, worker 0 got %d",
					w, i, results[w][i], results[0][i])
			}
		}
	}
}

// TestDictionaryIDStabilityAcrossReopen pins the core warm-restart
// invariant: a persisted dictionary reassigns the SAME TermID to every
// term after reopen, so persisted triple keys stay valid.
func TestDictionaryIDStabilityAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.db")
	st, err := store.Open(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A hot cache far smaller than the term count forces the reopened
	// dictionary to page terms in from disk rather than answer from
	// memory.
	d, err := openPagedDictionary(st, "d", 2)
	if err != nil {
		t.Fatal(err)
	}
	terms := []Term{
		NewIRI("http://example.org/a"),
		NewLangLiteral("hûllo\x1fodd", "en-GB"),
		NewTypedLiteral("2016-01-01T00:00:00Z", XSDDateTime),
		NewBlank("gen7"),
		NewLiteral("with\x00embedded-nul-free? no: datatype uses \\x00 separators"),
	}
	ids := make([]TermID, len(terms))
	for i, tm := range terms {
		ids[i] = d.Intern(tm)
	}
	if err := d.storeErr(); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	d2, err := openPagedDictionary(st2, "d", 2)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Len() != len(terms) {
		t.Fatalf("reopened len = %d, want %d", d2.Len(), len(terms))
	}
	for i, tm := range terms {
		if got := d2.Lookup(tm); got != ids[i] {
			t.Fatalf("reopened lookup(%v) = %d, want %d", tm, got, ids[i])
		}
		if got := d2.Term(ids[i]); got != tm {
			t.Fatalf("reopened term(%d) = %v, want %v", ids[i], got, tm)
		}
	}
	// New terms continue the sequence, not restart it.
	if id := d2.Intern(NewIRI("http://example.org/new")); id != TermID(len(terms)+1) {
		t.Fatalf("post-reopen intern id = %d, want %d", id, len(terms)+1)
	}
}

func TestDecodeTermKeyRejectsMalformed(t *testing.T) {
	for _, bad := range []string{"", "lnosep", "l\x00onesep", "zunknown"} {
		if _, err := decodeTermKey(bad); err == nil {
			t.Fatalf("decodeTermKey(%q) succeeded", bad)
		}
	}
}

// TestPagedDictionaryRoundTripSmallHotCache interns far more terms
// than the hot cache holds, reopens, and asserts every ID and term
// round-trips — i.e. correctness never depends on cache residency.
func TestPagedDictionaryRoundTripSmallHotCache(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.db")
	st, err := store.Open(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := openPagedDictionary(st, "d", 8)
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	mk := func(i int) Term {
		switch i % 4 {
		case 0:
			return NewIRI(fmt.Sprintf("http://example.org/people/person%d", i))
		case 1:
			return NewIRI(fmt.Sprintf("http://data.example.com/votes#v%d", i))
		case 2:
			return NewLiteral(fmt.Sprintf("value %d", i))
		default:
			return NewBlank(fmt.Sprintf("b%d", i))
		}
	}
	ids := make([]TermID, n)
	for i := 0; i < n; i++ {
		ids[i] = d.Intern(mk(i))
	}
	if d.Len() != n {
		t.Fatalf("len = %d, want %d", d.Len(), n)
	}
	for i := 0; i < n; i++ {
		if got := d.Term(ids[i]); got != mk(i) {
			t.Fatalf("term(%d) = %v, want %v", ids[i], got, mk(i))
		}
		if got := d.Lookup(mk(i)); got != ids[i] {
			t.Fatalf("lookup(%v) = %d, want %d", mk(i), got, ids[i])
		}
	}
	if err := d.storeErr(); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	d2, err := openPagedDictionary(st2, "d", 8)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Len() != n {
		t.Fatalf("reopened len = %d, want %d", d2.Len(), n)
	}
	// Walk in an order unfriendly to an 8-entry LRU.
	for step := 0; step < n; step++ {
		i := (step * 37) % n
		if got := d2.Term(ids[i]); got != mk(i) {
			t.Fatalf("reopened term(%d) = %v, want %v", ids[i], got, mk(i))
		}
		if got := d2.Lookup(mk(i)); got != ids[i] {
			t.Fatalf("reopened lookup = %d, want %d", got, ids[i])
		}
		if again := d2.Intern(mk(i)); again != ids[i] {
			t.Fatalf("reopened re-intern = %d, want %d", again, ids[i])
		}
	}
	// New terms continue the ID sequence.
	if id := d2.Intern(NewIRI("http://example.org/people/new")); id != TermID(n+1) {
		t.Fatalf("post-reopen intern id = %d, want %d", id, n+1)
	}
}

// TestPagedDictionaryConcurrentIntern is the paged-mode sibling of
// TestDictionaryConcurrentIntern: 8 workers race on overlapping term
// sets through the store-backed path (run under -race).
func TestPagedDictionaryConcurrentIntern(t *testing.T) {
	st, err := store.Open(filepath.Join(t.TempDir(), "d.db"), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	d, err := openPagedDictionary(st, "d", 32)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const perWorker = 300
	results := make([][]TermID, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ids := make([]TermID, perWorker)
			for i := 0; i < perWorker; i++ {
				ids[i] = d.Intern(NewIRI(fmt.Sprintf("http://example.org/t/%d", i)))
			}
			results[w] = ids
		}(w)
	}
	wg.Wait()
	if err := d.storeErr(); err != nil {
		t.Fatal(err)
	}
	if d.Len() != perWorker {
		t.Fatalf("len = %d, want %d (duplicate assignment under race)", d.Len(), perWorker)
	}
	for w := 1; w < workers; w++ {
		for i := range results[0] {
			if results[w][i] != results[0][i] {
				t.Fatalf("worker %d term %d got id %d, worker 0 got %d",
					w, i, results[w][i], results[0][i])
			}
		}
	}
}

// TestPagedDictionaryMigratesLegacyLayout simulates a dictionary
// persisted by the load-everything format (forward keyspace only, raw
// keys) and asserts the paged open rebuilds the reverse mapping once
// and keeps IDs stable.
func TestPagedDictionaryMigratesLegacyLayout(t *testing.T) {
	st, err := store.Open(filepath.Join(t.TempDir(), "d.db"), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	fwd, err := st.Keyspace("d/dict")
	if err != nil {
		t.Fatal(err)
	}
	terms := []Term{
		NewIRI("http://example.org/a"),
		NewLiteral("plain"),
		NewBlank("b0"),
	}
	for i, tm := range terms {
		k := []byte{0, 0, 0, byte(i + 1)}
		if _, err := fwd.Put(k, []byte(tm.Key())); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	d, err := openPagedDictionary(st, "d", 16)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != len(terms) {
		t.Fatalf("len = %d, want %d", d.Len(), len(terms))
	}
	for i, tm := range terms {
		if got := d.Lookup(tm); got != TermID(i+1) {
			t.Fatalf("lookup(%v) = %d, want %d", tm, got, i+1)
		}
		if got := d.Term(TermID(i + 1)); got != tm {
			t.Fatalf("term(%d) = %v, want %v", i+1, got, tm)
		}
	}
	if id := d.Intern(NewIRI("http://example.org/fresh")); id != TermID(len(terms)+1) {
		t.Fatalf("fresh intern = %d, want %d", id, len(terms)+1)
	}
}
