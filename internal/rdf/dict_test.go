package rdf

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"tatooine/internal/store"
)

func TestDictionaryInternLookupRoundTrip(t *testing.T) {
	d := NewDictionary()
	terms := []Term{
		NewIRI("http://example.org/a"),
		NewLiteral("plain"),
		NewTypedLiteral("42", XSDInteger),
		NewLangLiteral("bonjour", "fr"),
		NewBlank("b0"),
		NewLiteral(""), // empty lexical form is a valid literal
	}
	ids := make([]TermID, len(terms))
	for i, tm := range terms {
		ids[i] = d.Intern(tm)
		if ids[i] == NoTerm {
			t.Fatalf("intern(%v) returned NoTerm", tm)
		}
	}
	for i, tm := range terms {
		if got := d.Lookup(tm); got != ids[i] {
			t.Fatalf("lookup(%v) = %d, want %d", tm, got, ids[i])
		}
		if got := d.Term(ids[i]); got != tm {
			t.Fatalf("term(%d) = %v, want %v", ids[i], got, tm)
		}
		if again := d.Intern(tm); again != ids[i] {
			t.Fatalf("re-intern(%v) = %d, want %d", tm, again, ids[i])
		}
	}
	if d.Len() != len(terms) {
		t.Fatalf("len = %d, want %d", d.Len(), len(terms))
	}
	if d.Lookup(NewIRI("never-seen")) != NoTerm {
		t.Fatal("lookup of unseen term != NoTerm")
	}
	if !d.Term(NoTerm).IsZero() || !d.Term(TermID(999)).IsZero() {
		t.Fatal("out-of-range Term() not zero")
	}
}

// TestDictionaryConcurrentIntern hammers Intern from many goroutines
// with overlapping term sets; run under -race this pins the
// double-checked locking, and the assertions pin ID uniqueness.
func TestDictionaryConcurrentIntern(t *testing.T) {
	d := NewDictionary()
	const workers = 8
	const perWorker = 500
	results := make([][]TermID, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ids := make([]TermID, perWorker)
			for i := 0; i < perWorker; i++ {
				// All workers intern the same 500 terms, racing on each.
				ids[i] = d.Intern(NewIRI(fmt.Sprintf("http://example.org/t%d", i)))
			}
			results[w] = ids
		}(w)
	}
	wg.Wait()
	if d.Len() != perWorker {
		t.Fatalf("len = %d, want %d (duplicate assignment under race)", d.Len(), perWorker)
	}
	for w := 1; w < workers; w++ {
		for i := range results[0] {
			if results[w][i] != results[0][i] {
				t.Fatalf("worker %d term %d got id %d, worker 0 got %d",
					w, i, results[w][i], results[0][i])
			}
		}
	}
}

// TestDictionaryIDStabilityAcrossReopen pins the core warm-restart
// invariant: a persisted dictionary reassigns the SAME TermID to every
// term after reopen, so persisted triple keys stay valid.
func TestDictionaryIDStabilityAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.db")
	st, err := store.Open(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	kv, err := st.Keyspace("dict")
	if err != nil {
		t.Fatal(err)
	}
	d, err := openDictionary(kv)
	if err != nil {
		t.Fatal(err)
	}
	terms := []Term{
		NewIRI("http://example.org/a"),
		NewLangLiteral("hûllo\x1fodd", "en-GB"),
		NewTypedLiteral("2016-01-01T00:00:00Z", XSDDateTime),
		NewBlank("gen7"),
		NewLiteral("with\x00embedded-nul-free? no: datatype uses \\x00 separators"),
	}
	ids := make([]TermID, len(terms))
	for i, tm := range terms {
		ids[i] = d.Intern(tm)
	}
	if err := d.storeErr(); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	kv2, err := st2.Keyspace("dict")
	if err != nil {
		t.Fatal(err)
	}
	d2, err := openDictionary(kv2)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Len() != len(terms) {
		t.Fatalf("reopened len = %d, want %d", d2.Len(), len(terms))
	}
	for i, tm := range terms {
		if got := d2.Lookup(tm); got != ids[i] {
			t.Fatalf("reopened lookup(%v) = %d, want %d", tm, got, ids[i])
		}
		if got := d2.Term(ids[i]); got != tm {
			t.Fatalf("reopened term(%d) = %v, want %v", ids[i], got, tm)
		}
	}
	// New terms continue the sequence, not restart it.
	if id := d2.Intern(NewIRI("http://example.org/new")); id != TermID(len(terms)+1) {
		t.Fatalf("post-reopen intern id = %d, want %d", id, len(terms)+1)
	}
}

func TestDecodeTermKeyRejectsMalformed(t *testing.T) {
	for _, bad := range []string{"", "lnosep", "l\x00onesep", "zunknown"} {
		if _, err := decodeTermKey(bad); err == nil {
			t.Fatalf("decodeTermKey(%q) succeeded", bad)
		}
	}
}
