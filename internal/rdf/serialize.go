package rdf

import (
	"bufio"
	"io"
	"strings"
)

// WriteNTriples serializes the graph in canonical (sorted) N-Triples form.
func WriteNTriples(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for _, t := range g.Triples() {
		if _, err := bw.WriteString(t.String()); err != nil {
			return err
		}
		if _, err := bw.WriteString(" .\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// NTriplesString returns the canonical N-Triples rendering of g.
func NTriplesString(g *Graph) string {
	var b strings.Builder
	// strings.Builder never returns a write error.
	_ = WriteNTriples(&b, g)
	return b.String()
}
