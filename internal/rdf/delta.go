package rdf

// This file holds the delta-aware side of the RDFS rule set: instead of
// re-running the fixpoint of saturate.go over the whole graph, the
// incremental reasoner (internal/reason) seeds the rules from a delta —
// the triples just inserted or deleted — and joins each rule's other
// premise against the already-saturated graph. DeltaConsequences is the
// shared one-step consequence operator (used forward for inserts and to
// trace the over-deletion cone of DRed); Derivable is its inverse (is
// this triple still supported by one rule application?), used by DRed's
// re-derivation phase.

// Schema vocabulary terms, interned once.
var (
	termType          = NewIRI(RDFType)
	termSubClassOf    = NewIRI(RDFSSubClassOf)
	termSubPropertyOf = NewIRI(RDFSSubPropertyOf)
	termDomain        = NewIRI(RDFSDomain)
	termRange         = NewIRI(RDFSRange)
)

// SchemaTriple reports whether t is an RDFS schema triple — one whose
// property shapes how the entailment rules fire (subClassOf,
// subPropertyOf, domain, range). Deleting a schema triple can
// invalidate derivations anywhere in the graph, which is why the
// incremental reasoner falls back to a full recompute for those.
func SchemaTriple(t Triple) bool {
	switch t.P {
	case termSubClassOf, termSubPropertyOf, termDomain, termRange:
		return true
	}
	return false
}

// DeltaConsequences calls emit for every one-step consequence of t
// under the RDFS rules, joining the rule's other premise against sat.
// Both premise positions are covered: t as the schema premise (its
// property is part of the schema vocabulary) and t as the data premise
// (its property has super-properties, a domain or a range in sat, or it
// is an rdf:type triple whose class has super-classes). Consequences
// are emitted without deduplication; callers add them to a graph (whose
// Add reports novelty) or a set.
func DeltaConsequences(sat *Graph, t Triple, emit func(Triple)) {
	switch t.P {
	case termSubPropertyOf:
		// rdfs5, t as right premise: (p0 ⊑ t.S) → (p0 ⊑ t.O).
		for _, u := range sat.Match(Term{}, termSubPropertyOf, t.S) {
			emit(Triple{u.S, termSubPropertyOf, t.O})
		}
		// rdfs5, t as left premise: (t.O ⊑ p3) → (t.S ⊑ p3).
		for _, u := range sat.Match(t.O, termSubPropertyOf, Term{}) {
			emit(Triple{t.S, termSubPropertyOf, u.O})
		}
		// rdfs7, t as schema premise: (s t.S o) → (s t.O o).
		for _, u := range sat.Match(Term{}, t.S, Term{}) {
			emit(Triple{u.S, t.O, u.O})
		}
	case termSubClassOf:
		// rdfs11, both premise positions.
		for _, u := range sat.Match(Term{}, termSubClassOf, t.S) {
			emit(Triple{u.S, termSubClassOf, t.O})
		}
		for _, u := range sat.Match(t.O, termSubClassOf, Term{}) {
			emit(Triple{t.S, termSubClassOf, u.O})
		}
		// rdfs9, t as schema premise: (x type t.S) → (x type t.O).
		for _, u := range sat.Match(Term{}, termType, t.S) {
			emit(Triple{u.S, termType, t.O})
		}
	case termDomain:
		// rdfs2, t as schema premise: (s t.S o) → (s type t.O).
		for _, u := range sat.Match(Term{}, t.S, Term{}) {
			emit(Triple{u.S, termType, t.O})
		}
	case termRange:
		// rdfs3, t as schema premise: (s t.S o) → (o type t.O), literal
		// objects skipped (a literal cannot be typed).
		for _, u := range sat.Match(Term{}, t.S, Term{}) {
			if u.O.Kind != Literal {
				emit(Triple{u.O, termType, t.O})
			}
		}
	}

	// t as the data premise of rdfs7/2/3: any triple's property may have
	// super-properties, a domain or a range — including the schema
	// vocabulary itself, which is what makes the schema cases above and
	// these compose for meta-schema graphs.
	for _, u := range sat.Match(t.P, termSubPropertyOf, Term{}) {
		emit(Triple{t.S, u.O, t.O})
	}
	for _, u := range sat.Match(t.P, termDomain, Term{}) {
		emit(Triple{t.S, termType, u.O})
	}
	if t.O.Kind != Literal {
		for _, u := range sat.Match(t.P, termRange, Term{}) {
			emit(Triple{t.O, termType, u.O})
		}
	}
	// rdfs9, t as data premise: (t.S type t.O), (t.O ⊑ c2) → (t.S type c2).
	if t.P == termType {
		for _, u := range sat.Match(t.O, termSubClassOf, Term{}) {
			emit(Triple{t.S, termType, u.O})
		}
	}
}

// Derivable reports whether t is the conclusion of at least one RDFS
// rule whose premises are both present in sat. t itself must already be
// absent from sat, or it would count as its own support through a
// cyclic hierarchy; when checking derivability against a hypothetical
// deletion use DerivableExcept instead.
func Derivable(sat *Graph, t Triple) bool { return DerivableExcept(sat, t, nil) }

// DerivableExcept reports whether t is the conclusion of at least one
// RDFS rule whose premises are both present in sat AND not in dead. It
// is the re-derivation check of delete-and-rederive, computed against
// the hypothetical graph sat−dead without mutating sat: the reasoner
// resurrects cone members bottom-up (removing them from dead as they
// prove well-founded) and only then deletes what remains, so concurrent
// readers of sat never observe a still-entailed triple missing. t may
// be present in sat as long as it is in dead — it can then never count
// as its own support.
func DerivableExcept(sat *Graph, t Triple, dead map[Triple]struct{}) bool {
	isDead := func(u Triple) bool {
		_, ok := dead[u]
		return ok
	}
	alive := func(u Triple) bool { return !isDead(u) && sat.Contains(u) }

	// rdfs7: (t.S p' t.O) with (p' ⊑ t.P).
	for _, u := range sat.Match(t.S, Term{}, t.O) {
		if !isDead(u) && alive(Triple{u.P, termSubPropertyOf, t.P}) {
			return true
		}
	}
	switch t.P {
	case termType:
		// rdfs9: (t.S type c') with (c' ⊑ t.O).
		for _, u := range sat.Match(t.S, termType, Term{}) {
			if !isDead(u) && alive(Triple{u.O, termSubClassOf, t.O}) {
				return true
			}
		}
		// rdfs2: (t.S q o') with (q domain t.O).
		for _, u := range sat.Match(t.S, Term{}, Term{}) {
			if !isDead(u) && alive(Triple{u.P, termDomain, t.O}) {
				return true
			}
		}
		// rdfs3: (s' q t.S) with (q range t.O).
		for _, u := range sat.Match(Term{}, Term{}, t.S) {
			if !isDead(u) && alive(Triple{u.P, termRange, t.O}) {
				return true
			}
		}
	case termSubClassOf:
		// rdfs11: (t.S ⊑ c) with (c ⊑ t.O).
		for _, u := range sat.Match(t.S, termSubClassOf, Term{}) {
			if !isDead(u) && alive(Triple{u.O, termSubClassOf, t.O}) {
				return true
			}
		}
	case termSubPropertyOf:
		// rdfs5: (t.S ⊑ p) with (p ⊑ t.O).
		for _, u := range sat.Match(t.S, termSubPropertyOf, Term{}) {
			if !isDead(u) && alive(Triple{u.O, termSubPropertyOf, t.O}) {
				return true
			}
		}
	}
	return false
}
