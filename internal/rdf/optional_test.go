package rdf

import (
	"strings"
	"testing"
)

func optionalGraph() *Graph {
	g := NewGraph()
	g.AddAll(MustParse(`
@prefix : <http://e/> .
:p1 :name "Hollande" ; :twitter "fh" ; :facebook "fb.h" .
:p2 :name "Dupont" ; :twitter "jd" .
:p3 :name "Martin" .
`))
	return g
}

func TestOptionalBasic(t *testing.T) {
	g := optionalGraph()
	q := MustParseBGP(`q(?n, ?tw) :- ?x <http://e/name> ?n . OPTIONAL { ?x <http://e/twitter> ?tw }`, nil)
	sols, err := Evaluate(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if sols.Len() != 3 {
		t.Fatalf("rows: %+v", sols.Rows)
	}
	sols.Sort()
	// Martin has no twitter → unbound (zero Term).
	byName := map[string]Term{}
	for _, row := range sols.Rows {
		byName[row[0].Value] = row[1]
	}
	if byName["Hollande"] != NewLiteral("fh") || byName["Dupont"] != NewLiteral("jd") {
		t.Errorf("bound optional: %+v", byName)
	}
	if !byName["Martin"].IsZero() {
		t.Errorf("Martin's twitter should be unbound: %v", byName["Martin"])
	}
}

func TestOptionalMultipleGroups(t *testing.T) {
	g := optionalGraph()
	q := MustParseBGP(`q(?n, ?tw, ?fb) :- ?x <http://e/name> ?n .
		OPTIONAL { ?x <http://e/twitter> ?tw } .
		OPTIONAL { ?x <http://e/facebook> ?fb }`, nil)
	sols, err := Evaluate(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if sols.Len() != 3 {
		t.Fatalf("rows: %+v", sols.Rows)
	}
	for _, row := range sols.Rows {
		switch row[0].Value {
		case "Hollande":
			if row[1].IsZero() || row[2].IsZero() {
				t.Errorf("Hollande row: %+v", row)
			}
		case "Dupont":
			if row[1].IsZero() || !row[2].IsZero() {
				t.Errorf("Dupont row: %+v", row)
			}
		case "Martin":
			if !row[1].IsZero() || !row[2].IsZero() {
				t.Errorf("Martin row: %+v", row)
			}
		}
	}
}

func TestOptionalJoinsOnSharedVar(t *testing.T) {
	// The optional group shares ?x with the required part — it must
	// constrain per solution, not globally.
	g := NewGraph()
	g.AddAll(MustParse(`
@prefix : <http://e/> .
:a :p :b . :a :q :c .
:d :p :e .
`))
	q := MustParseBGP(`q(?x, ?o) :- ?x <http://e/p> ?y . OPTIONAL { ?x <http://e/q> ?o }`, nil)
	sols, err := Evaluate(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if sols.Len() != 2 {
		t.Fatalf("rows: %+v", sols.Rows)
	}
	for _, row := range sols.Rows {
		if row[0] == NewIRI("http://e/a") && row[1] != NewIRI("http://e/c") {
			t.Errorf("a's optional should bind c: %+v", row)
		}
		if row[0] == NewIRI("http://e/d") && !row[1].IsZero() {
			t.Errorf("d's optional should be unbound: %+v", row)
		}
	}
}

func TestOptionalMultiplicity(t *testing.T) {
	// Matching optional with several embeddings multiplies rows.
	g := NewGraph()
	g.AddAll(MustParse(`
@prefix : <http://e/> .
:a :p :x . :a :q :o1 . :a :q :o2 .
`))
	q := MustParseBGP(`q(?x, ?o) :- ?x <http://e/p> ?y . OPTIONAL { ?x <http://e/q> ?o }`, nil)
	sols, _ := Evaluate(g, q)
	if sols.Len() != 2 {
		t.Errorf("multiplicity: %+v", sols.Rows)
	}
}

func TestOptionalStringRoundTrip(t *testing.T) {
	q := MustParseBGP(`q(?n, ?tw) :- ?x <http://e/name> ?n . OPTIONAL { ?x <http://e/twitter> ?tw }`, nil)
	s := q.String()
	if !strings.Contains(s, "OPTIONAL { ") {
		t.Fatalf("render: %s", s)
	}
	q2, err := ParseBGP(s, nil)
	if err != nil {
		t.Fatalf("reparse %q: %v", s, err)
	}
	if len(q2.Optionals) != 1 || len(q2.Optionals[0]) != 1 {
		t.Errorf("round trip optionals: %+v", q2.Optionals)
	}
}

func TestOptionalParseErrors(t *testing.T) {
	cases := []string{
		`q(?n) :- ?x <http://e/name> ?n . OPTIONAL ?x <http://e/t> ?tw`,   // missing {
		`q(?n) :- ?x <http://e/name> ?n . OPTIONAL { ?x <http://e/t> ?tw`, // unterminated
		`q(?n) :- ?x <http://e/name> ?n . OPTIONAL { }`,                   // empty
	}
	for _, c := range cases {
		if _, err := ParseBGP(c, nil); err == nil {
			t.Errorf("expected error for %q", c)
		}
	}
}

func TestOptionalHeadOnlyVariable(t *testing.T) {
	// A head variable appearing only in an OPTIONAL group is valid.
	g := optionalGraph()
	q, err := ParseBGP(`q(?tw) :- ?x <http://e/name> ?n . OPTIONAL { ?x <http://e/twitter> ?tw }`, nil)
	if err != nil {
		t.Fatal(err)
	}
	sols, err := Evaluate(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if sols.Len() != 3 {
		t.Errorf("rows: %+v", sols.Rows)
	}
}

func TestOptionalWordNotConfusedWithIRI(t *testing.T) {
	// A subject whose local name contains "optional" must not trigger
	// OPTIONAL parsing.
	g := NewGraph()
	g.AddAll(MustParse(`@prefix : <http://e/> . :optionalThing :p :o .`))
	q, err := ParseBGP(`q(?s) :- ?s <http://e/p> <http://e/o>`, nil)
	if err != nil {
		t.Fatal(err)
	}
	sols, _ := Evaluate(g, q)
	if sols.Len() != 1 {
		t.Errorf("rows: %+v", sols.Rows)
	}
}
