package rdf

import (
	"encoding/binary"

	"tatooine/internal/store"
)

// storeTriples is the B-tree-backed triple backend: the SPO, POS and
// OSP access paths are three store keyspaces whose 12-byte keys are the
// dictionary-encoded triple in the respective permutation. Pattern
// matching becomes prefix cursor scans, so a disk-resident graph probes
// pages through the pager's cache instead of walking maps — and the
// triples survive the process.
//
// Storage errors cannot surface through the Graph's error-less probe
// API; the backend treats a failed read as "no triples" and keeps the
// FIRST error sticky (Graph.StoreErr), which the owning layer checks
// at commit points. A graph whose store has failed degrades to missing
// answers, never to wrong ones.
type storeTriples struct {
	spo, pos, osp store.KV
	firstErr      error
}

func openStoreTriples(st store.Store, prefix string) (*storeTriples, error) {
	spo, err := st.Keyspace(prefix + "/spo")
	if err != nil {
		return nil, err
	}
	pos, err := st.Keyspace(prefix + "/pos")
	if err != nil {
		return nil, err
	}
	osp, err := st.Keyspace(prefix + "/osp")
	if err != nil {
		return nil, err
	}
	return &storeTriples{spo: spo, pos: pos, osp: osp}, nil
}

func (b *storeTriples) fail(err error) {
	if err != nil && b.firstErr == nil {
		b.firstErr = err
	}
}

func (b *storeTriples) err() error { return b.firstErr }

func key12(a, b, c TermID) []byte {
	var k [12]byte
	binary.BigEndian.PutUint32(k[0:], uint32(a))
	binary.BigEndian.PutUint32(k[4:], uint32(b))
	binary.BigEndian.PutUint32(k[8:], uint32(c))
	return k[:]
}

func key8(a, b TermID) []byte {
	var k [8]byte
	binary.BigEndian.PutUint32(k[0:], uint32(a))
	binary.BigEndian.PutUint32(k[4:], uint32(b))
	return k[:]
}

func key4(a TermID) []byte {
	var k [4]byte
	binary.BigEndian.PutUint32(k[0:], uint32(a))
	return k[:]
}

func id3(k []byte) (TermID, TermID, TermID) {
	return TermID(binary.BigEndian.Uint32(k[0:])),
		TermID(binary.BigEndian.Uint32(k[4:])),
		TermID(binary.BigEndian.Uint32(k[8:]))
}

func (b *storeTriples) add(s, p, o TermID) bool {
	fresh, err := b.spo.Put(key12(s, p, o), nil)
	if err != nil {
		b.fail(err)
		return false
	}
	if !fresh {
		return false
	}
	if _, err := b.pos.Put(key12(p, o, s), nil); err != nil {
		b.fail(err)
	}
	if _, err := b.osp.Put(key12(o, s, p), nil); err != nil {
		b.fail(err)
	}
	return true
}

func (b *storeTriples) remove(s, p, o TermID) bool {
	deleted, err := b.spo.Delete(key12(s, p, o))
	if err != nil {
		b.fail(err)
		return false
	}
	if !deleted {
		return false
	}
	if _, err := b.pos.Delete(key12(p, o, s)); err != nil {
		b.fail(err)
	}
	if _, err := b.osp.Delete(key12(o, s, p)); err != nil {
		b.fail(err)
	}
	return true
}

func (b *storeTriples) contains(s, p, o TermID) bool {
	_, ok, err := b.spo.Get(key12(s, p, o))
	if err != nil {
		b.fail(err)
		return false
	}
	return ok
}

func (b *storeTriples) size() int { return b.spo.Len() }

func (b *storeTriples) match(s, p, o TermID, fn func(s, p, o TermID) bool) {
	switch {
	case s != NoTerm && p != NoTerm && o != NoTerm:
		if b.contains(s, p, o) {
			fn(s, p, o)
		}
	case s != NoTerm && p != NoTerm:
		b.scan(b.spo, key8(s, p), func(x, y, z TermID) bool { return fn(x, y, z) })
	case s != NoTerm && o != NoTerm:
		// (s,?,o): the OSP permutation has them adjacent.
		b.scan(b.osp, key8(o, s), func(o2, s2, p2 TermID) bool { return fn(s2, p2, o2) })
	case s != NoTerm:
		b.scan(b.spo, key4(s), func(x, y, z TermID) bool { return fn(x, y, z) })
	case p != NoTerm && o != NoTerm:
		b.scan(b.pos, key8(p, o), func(p2, o2, s2 TermID) bool { return fn(s2, p2, o2) })
	case p != NoTerm:
		b.scan(b.pos, key4(p), func(p2, o2, s2 TermID) bool { return fn(s2, p2, o2) })
	case o != NoTerm:
		b.scan(b.osp, key4(o), func(o2, s2, p2 TermID) bool { return fn(s2, p2, o2) })
	default:
		b.scan(b.spo, nil, func(x, y, z TermID) bool { return fn(x, y, z) })
	}
}

// scan walks kv entries under prefix, decoding each 12-byte key in its
// native permutation order.
func (b *storeTriples) scan(kv store.KV, prefix []byte, fn func(a, x, c TermID) bool) {
	err := kv.Scan(prefix, func(k, _ []byte) bool {
		a, x, c := id3(k)
		return fn(a, x, c)
	})
	b.fail(err)
}

func (b *storeTriples) count(s, p, o TermID) int {
	if s == NoTerm && p == NoTerm && o == NoTerm {
		return b.size()
	}
	n := 0
	b.match(s, p, o, func(_, _, _ TermID) bool { n++; return true })
	return n
}

// properties iterates distinct predicates via seek-skip on POS: after
// reporting p it jumps straight past p's whole key range.
func (b *storeTriples) properties(fn func(p TermID) bool) {
	start := []byte{0, 0, 0, 0}
	for {
		var found []byte
		err := b.pos.ScanFrom(start, func(k, _ []byte) bool {
			found = append([]byte(nil), k[:4]...)
			return false
		})
		if err != nil {
			b.fail(err)
			return
		}
		if found == nil {
			return
		}
		p := TermID(binary.BigEndian.Uint32(found))
		if !fn(p) {
			return
		}
		// Next predicate group: smallest key with prefix > p.
		next := binary.BigEndian.Uint32(found) + 1
		if next == 0 {
			return // wrapped: p was the max
		}
		start = make([]byte, 4)
		binary.BigEndian.PutUint32(start, next)
	}
}
