package rdf

import (
	"testing"
)

func tripleSet(ts []Triple) map[Triple]struct{} {
	out := make(map[Triple]struct{}, len(ts))
	for _, t := range ts {
		out[t] = struct{}{}
	}
	return out
}

func TestSchemaTriple(t *testing.T) {
	x, y := iri("x"), iri("y")
	for _, tc := range []struct {
		p    Term
		want bool
	}{
		{NewIRI(RDFSSubClassOf), true},
		{NewIRI(RDFSSubPropertyOf), true},
		{NewIRI(RDFSDomain), true},
		{NewIRI(RDFSRange), true},
		{NewIRI(RDFType), false},
		{iri("worksFor"), false},
	} {
		if got := SchemaTriple(Triple{x, tc.p, y}); got != tc.want {
			t.Errorf("SchemaTriple(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

// TestDeltaConsequencesDataTriple: a new data triple joined against the
// saturated schema fires rdfs7, rdfs2 and rdfs3 in one step.
func TestDeltaConsequencesDataTriple(t *testing.T) {
	sat := Saturate(graphFromPaper()).Graph
	delta := Triple{iri("Marie"), iri("worksFor"), iri("Figaro")}

	var got []Triple
	DeltaConsequences(sat, delta, func(c Triple) { got = append(got, c) })
	set := tripleSet(got)

	for _, want := range []Triple{
		{iri("Marie"), iri("paidBy"), iri("Figaro")},          // rdfs7
		{iri("Figaro"), NewIRI(RDFType), iri("Organization")}, // rdfs3
	} {
		if _, ok := set[want]; !ok {
			t.Errorf("consequences of %v missing %v (got %v)", delta, want, got)
		}
	}
}

// TestDeltaConsequencesSchemaTriple: a new subClassOf edge re-types
// existing instances (rdfs9 with the delta as the schema premise) and
// splices into the existing hierarchy (rdfs11, both positions).
func TestDeltaConsequencesSchemaTriple(t *testing.T) {
	g := NewGraph()
	g.AddAll(MustParse(`
@prefix : <http://tatooine.example/> .
:Employee rdfs:subClassOf :Person .
:Samuel a :Journalist .
`))
	sat := Saturate(g).Graph
	delta := Triple{iri("Journalist"), NewIRI(RDFSSubClassOf), iri("Employee")}

	var got []Triple
	DeltaConsequences(sat, delta, func(c Triple) { got = append(got, c) })
	set := tripleSet(got)

	for _, want := range []Triple{
		{iri("Samuel"), NewIRI(RDFType), iri("Employee")},          // rdfs9
		{iri("Journalist"), NewIRI(RDFSSubClassOf), iri("Person")}, // rdfs11
	} {
		if _, ok := set[want]; !ok {
			t.Errorf("consequences of %v missing %v (got %v)", delta, want, got)
		}
	}
}

// TestDeltaConsequencesLiteralRange: rdfs3 must not type literal objects.
func TestDeltaConsequencesLiteralRange(t *testing.T) {
	g := NewGraph()
	g.AddAll(MustParse(`
@prefix : <http://tatooine.example/> .
:name rdfs:range :Label .
`))
	sat := Saturate(g).Graph
	delta := Triple{iri("s"), iri("name"), NewLiteral("plain")}

	DeltaConsequences(sat, delta, func(c Triple) {
		if c.S.Kind == Literal {
			t.Errorf("rdfs3 typed a literal: %v", c)
		}
	})
}

// TestDerivable: after removing a derived triple from the saturation,
// Derivable reports whether remaining premises still support it.
func TestDerivable(t *testing.T) {
	sat := Saturate(graphFromPaper()).Graph

	// (Samuel paidBy LeMonde) is supported by (Samuel worksFor LeMonde)
	// and worksFor ⊑ paidBy.
	paid := Triple{iri("Samuel"), iri("paidBy"), iri("LeMonde")}
	sat.Remove(paid)
	if !Derivable(sat, paid) {
		t.Error("rdfs7 support present but Derivable = false")
	}
	// Drop the data premise: no longer derivable.
	sat.Remove(Triple{iri("Samuel"), iri("worksFor"), iri("LeMonde")})
	if Derivable(sat, paid) {
		t.Error("rdfs7 premise gone but Derivable = true")
	}

	// (LeMonde type Organization) is doubly supported: rdfs2 via
	// foundedIn's domain and rdfs3 via worksFor's range — but worksFor
	// data is gone now, so only the domain support remains.
	org := Triple{iri("LeMonde"), NewIRI(RDFType), iri("Organization")}
	sat.Remove(org)
	if !Derivable(sat, org) {
		t.Error("rdfs2 support present but Derivable = false")
	}
	sat.Remove(Triple{iri("LeMonde"), iri("foundedIn"), NewLiteral("1944")})
	if Derivable(sat, org) {
		t.Error("all supports gone but Derivable = true")
	}

	// rdfs9: (Samuel type Employee) from (Samuel type Journalist) and
	// the subclass edge.
	emp := Triple{iri("Samuel"), NewIRI(RDFType), iri("Employee")}
	sat.Remove(emp)
	if !Derivable(sat, emp) {
		t.Error("rdfs9 support present but Derivable = false")
	}

	// rdfs11: a transitive subclass edge is derivable from its two hops.
	g := NewGraph()
	g.AddAll(MustParse(`
@prefix : <http://tatooine.example/> .
:A rdfs:subClassOf :B .
:B rdfs:subClassOf :C .
`))
	sat2 := Saturate(g).Graph
	ac := Triple{iri("A"), NewIRI(RDFSSubClassOf), iri("C")}
	sat2.Remove(ac)
	if !Derivable(sat2, ac) {
		t.Error("rdfs11 support present but Derivable = false")
	}
}

func TestAddBatchRemoveBatchReturnDelta(t *testing.T) {
	g := NewGraph()
	a := Triple{iri("a"), iri("p"), iri("b")}
	b := Triple{iri("b"), iri("p"), iri("c")}
	if got := g.AddBatch([]Triple{a, b, a}); len(got) != 2 {
		t.Fatalf("AddBatch delta = %v, want [a b]", got)
	}
	// Re-adding is a no-op delta.
	if got := g.AddBatch([]Triple{a}); len(got) != 0 {
		t.Errorf("duplicate AddBatch delta = %v, want empty", got)
	}
	// Invalid (zero-term) triples are skipped.
	if got := g.AddBatch([]Triple{{S: iri("x")}}); len(got) != 0 {
		t.Errorf("zero-term AddBatch delta = %v, want empty", got)
	}
	if g.Size() != 2 {
		t.Fatalf("size = %d, want 2", g.Size())
	}
	if got := g.RemoveBatch([]Triple{a, {S: iri("n"), P: iri("p"), O: iri("n")}}); len(got) != 1 || got[0] != a {
		t.Errorf("RemoveBatch delta = %v, want [a]", got)
	}
	if g.Size() != 1 || !g.Contains(b) {
		t.Errorf("graph after RemoveBatch: size %d", g.Size())
	}
}
