package rdf

// This file implements RDFS entailment: deriving the implicit triples
// that hold in a graph given its schema (RDFS) triples. The paper
// (§2.1) defines a query's *answer* as its evaluation against the
// saturation G∞; Saturate computes G∞ with a semi-naive fixpoint over
// the four standard rule groups:
//
//	rdfs5 : (p1 subPropertyOf p2), (p2 subPropertyOf p3) → (p1 subPropertyOf p3)
//	rdfs7 : (s p1 o), (p1 subPropertyOf p2)              → (s p2 o)
//	rdfs11: (c1 subClassOf c2), (c2 subClassOf c3)       → (c1 subClassOf c3)
//	rdfs9 : (x type c1), (c1 subClassOf c2)              → (x type c2)
//	rdfs2 : (s p o), (p domain c)                        → (s type c)
//	rdfs3 : (s p o), (p range c)                         → (o type c)

// Saturation holds a graph together with the closure of its schema,
// ready to answer queries over G∞ without materializing all implicit
// data triples up front (schema closures are small; data rules are
// applied during saturation).
type Saturation struct {
	// Graph is the saturated graph (input triples plus all implied ones).
	Graph *Graph
	// Derived is the number of implicit triples that were added.
	Derived int
}

// Saturate returns a new graph extended with all RDFS-entailed triples.
// The input graph is not modified.
func Saturate(g *Graph) *Saturation {
	out := g.Clone()
	derived := saturateInPlace(out)
	return &Saturation{Graph: out, Derived: derived}
}

// SaturateInPlace adds all RDFS-entailed triples to g directly and
// returns how many were added.
func SaturateInPlace(g *Graph) int { return saturateInPlace(g) }

func saturateInPlace(g *Graph) int {
	subClassOf := NewIRI(RDFSSubClassOf)
	subPropOf := NewIRI(RDFSSubPropertyOf)
	domain := NewIRI(RDFSDomain)
	rng := NewIRI(RDFSRange)
	typ := NewIRI(RDFType)

	derived := 0

	// Close hierarchies and apply data rules to a fixpoint. The schema
	// closure (rdfs5, rdfs11) and the schema snapshots are refreshed on
	// every pass, not just once up front: rdfs7 can derive new *schema*
	// triples (a property declared a sub-property of rdfs:subClassOf,
	// say), and those must feed back into the hierarchy closure and the
	// rule snapshots below or the fixpoint under-derives.
	for {
		added := 0

		// 1. rdfs5 / rdfs11: transitive closure of the hierarchies.
		added += transitiveClose(g, subClassOf)
		added += transitiveClose(g, subPropOf)

		// Snapshot schema: super-properties, domains, ranges, super-classes.
		superProps := objectMap(g, subPropOf)
		superClasses := objectMap(g, subClassOf)
		domains := objectMap(g, domain)
		ranges := objectMap(g, rng)

		// rdfs7: property inheritance.
		for p, supers := range superProps {
			pt := g.dict.Term(p)
			for _, t := range g.Match(Term{}, pt, Term{}) {
				for super := range supers {
					if g.Add(Triple{t.S, g.dict.Term(super), t.O}) {
						added++
					}
				}
			}
		}
		// rdfs2: domain typing.
		for p, classes := range domains {
			pt := g.dict.Term(p)
			for _, t := range g.Match(Term{}, pt, Term{}) {
				for c := range classes {
					if g.Add(Triple{t.S, typ, g.dict.Term(c)}) {
						added++
					}
				}
			}
		}
		// rdfs3: range typing (objects that are literals are skipped:
		// a literal cannot be typed by rdf:type in our graphs).
		for p, classes := range ranges {
			pt := g.dict.Term(p)
			for _, t := range g.Match(Term{}, pt, Term{}) {
				if t.O.Kind == Literal {
					continue
				}
				for c := range classes {
					if g.Add(Triple{t.O, typ, g.dict.Term(c)}) {
						added++
					}
				}
			}
		}
		// rdfs9: class membership propagation.
		for c, supers := range superClasses {
			ct := g.dict.Term(c)
			for _, t := range g.Match(Term{}, typ, ct) {
				for super := range supers {
					if g.Add(Triple{t.S, typ, g.dict.Term(super)}) {
						added++
					}
				}
			}
		}

		derived += added
		if added == 0 {
			return derived
		}
	}
}

// transitiveClose adds the transitive closure of property p to g and
// returns the number of added triples.
func transitiveClose(g *Graph, p Term) int {
	pid := g.dict.Lookup(p)
	if pid == NoTerm {
		return 0
	}
	// adjacency: s -> set of direct objects
	adj := make(map[TermID][]TermID)
	g.MatchIDs(NoTerm, pid, NoTerm, func(s, _, o TermID) bool {
		adj[s] = append(adj[s], o)
		return true
	})
	added := 0
	for s := range adj {
		// BFS from s. s itself is NOT pre-seeded: when a cycle leads back
		// to s, transitivity genuinely entails the reflexive edge
		// (s p s) — e.g. A ⊑ B, B ⊑ A ⟹ A ⊑ A — and the incremental
		// delta rules derive it, so the full fixpoint must too.
		seen := map[TermID]struct{}{}
		queue := append([]TermID(nil), adj[s]...)
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			if _, ok := seen[cur]; ok {
				continue
			}
			seen[cur] = struct{}{}
			if g.addIDs(s, pid, cur) {
				added++
			}
			queue = append(queue, adj[cur]...)
		}
	}
	return added
}

// objectMap snapshots p-edges as subject -> set of objects.
func objectMap(g *Graph, p Term) map[TermID]termSet {
	pid := g.dict.Lookup(p)
	if pid == NoTerm {
		return nil
	}
	out := make(map[TermID]termSet)
	g.MatchIDs(NoTerm, pid, NoTerm, func(s, _, o TermID) bool {
		set, ok := out[s]
		if !ok {
			set = make(termSet)
			out[s] = set
		}
		set[o] = struct{}{}
		return true
	})
	return out
}
