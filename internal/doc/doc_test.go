package doc

import (
	"testing"

	"tatooine/internal/value"
)

// figure2JSON is the sample tweet from Figure 2 of the paper.
const figure2JSON = `{
  "created_at": "Tue March 01 03:42:31 +0000 2016",
  "id": 464244242167342513,
  "text": "Je suis là aujourd'hui pour montrer qu'il y a une solidarité nationale. En défendant ... #SIA2016",
  "user": {
    "id": 483794260,
    "name": "François Hollande",
    "screen_name": "fhollande",
    "description": "Président de la République française",
    "followers_count": 1502835
  },
  "retweet_count": 469,
  "favorite_count": 883,
  "entities": {"hashtags": ["SIA2016"], "urls": []}
}`

func fig2(t *testing.T) *Document {
	t.Helper()
	d, err := FromJSON("tw1", []byte(figure2JSON))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestFromJSONFigure2(t *testing.T) {
	d := fig2(t)
	if d.ID != "tw1" {
		t.Errorf("id: %s", d.ID)
	}
	v, ok := d.Get("user.screen_name")
	if !ok || v != "fhollande" {
		t.Errorf("user.screen_name: %v %v", v, ok)
	}
	if _, ok := d.Get("user.missing"); ok {
		t.Error("missing path should not resolve")
	}
	if _, ok := d.Get("text.sub"); ok {
		t.Error("descending into scalar should fail")
	}
}

func TestValuesScalarsAndArrays(t *testing.T) {
	d := fig2(t)
	vals := d.Values("entities.hashtags")
	if len(vals) != 1 || vals[0].Str() != "SIA2016" {
		t.Errorf("hashtags: %v", vals)
	}
	if vals := d.Values("entities.urls"); len(vals) != 0 {
		t.Errorf("empty array: %v", vals)
	}
	rts := d.Values("retweet_count")
	if len(rts) != 1 || rts[0].Kind() != value.Int || rts[0].Int() != 469 {
		t.Errorf("retweet_count: %v", rts)
	}
	// Large tweet IDs must survive (json.Number, not float64).
	ids := d.Values("id")
	if ids[0].Int() != 464244242167342513 {
		t.Errorf("id precision lost: %v", ids[0])
	}
}

func TestValuesThroughArrayOfObjects(t *testing.T) {
	d, err := FromJSON("x", []byte(`{"posts": [{"tag": "a"}, {"tag": "b"}, {"other": 1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	vals := d.Values("posts.tag")
	if len(vals) != 2 || vals[0].Str() != "a" || vals[1].Str() != "b" {
		t.Errorf("array of objects: %v", vals)
	}
}

func TestPaths(t *testing.T) {
	d := fig2(t)
	paths := d.Paths()
	want := map[string]bool{
		"created_at": true, "id": true, "text": true,
		"user.id": true, "user.name": true, "user.screen_name": true,
		"user.description": true, "user.followers_count": true,
		"retweet_count": true, "favorite_count": true,
		"entities.hashtags": true,
	}
	got := make(map[string]bool)
	for _, p := range paths {
		got[p] = true
	}
	for p := range want {
		if !got[p] {
			t.Errorf("missing path %q in %v", p, paths)
		}
	}
	// entities.urls is an empty array: no scalar leaf, so not a path.
	if got["entities.urls"] {
		t.Error("empty array should not contribute a path")
	}
}

func TestSetAndRoundTrip(t *testing.T) {
	d := &Document{ID: "n1"}
	d.Set("user.screen_name", "mlp")
	d.Set("retweet_count", 12)
	d.Set("text", "bonjour")
	if v, ok := d.Get("user.screen_name"); !ok || v != "mlp" {
		t.Errorf("set/get: %v %v", v, ok)
	}
	data, err := d.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromJSON("n1", data)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := back.Get("user.screen_name"); v != "mlp" {
		t.Errorf("round trip: %v", v)
	}
}

func TestFromJSONErrors(t *testing.T) {
	if _, err := FromJSON("x", []byte(`not json`)); err == nil {
		t.Error("invalid JSON accepted")
	}
	if _, err := FromJSON("x", []byte(`[1,2,3]`)); err == nil {
		t.Error("non-object JSON accepted")
	}
}

func TestValueCoercionKinds(t *testing.T) {
	d, err := FromJSON("x", []byte(`{"f": 1.5, "i": 3, "b": true, "n": null, "s": "txt"}`))
	if err != nil {
		t.Fatal(err)
	}
	if d.Values("f")[0].Kind() != value.Float {
		t.Error("float kind")
	}
	if d.Values("i")[0].Kind() != value.Int {
		t.Error("int kind")
	}
	if d.Values("b")[0].Kind() != value.Bool {
		t.Error("bool kind")
	}
	if !d.Values("n")[0].IsNull() {
		t.Error("null kind")
	}
	if d.Values("s")[0].Kind() != value.String {
		t.Error("string kind")
	}
}
