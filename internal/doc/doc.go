// Package doc implements TATOOINE's semi-structured document model: the
// JSON shape of tweets and Facebook posts (Figure 2 of the paper), with
// dotted-path access and path enumeration used by dataguides and source
// digests.
package doc

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"tatooine/internal/value"
)

// Document is one JSON document with an identifier. Fields holds the
// decoded JSON object: maps, slices, strings, float64, bool, nil.
type Document struct {
	ID     string
	Fields map[string]any
}

// FromJSON decodes one JSON object into a Document with the given id.
func FromJSON(id string, data []byte) (*Document, error) {
	var fields map[string]any
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.UseNumber()
	if err := dec.Decode(&fields); err != nil {
		return nil, fmt.Errorf("doc: decode %s: %w", id, err)
	}
	return &Document{ID: id, Fields: fields}, nil
}

// ToJSON encodes the document's fields.
func (d *Document) ToJSON() ([]byte, error) {
	return json.Marshal(d.Fields)
}

// Get returns the raw value at a dotted path ("user.screen_name").
// Traversal descends through nested objects; it does not index into
// arrays (use Values for array flattening). ok is false when any path
// step is missing.
func (d *Document) Get(path string) (any, bool) {
	var cur any = d.Fields
	for _, step := range strings.Split(path, ".") {
		m, ok := cur.(map[string]any)
		if !ok {
			return nil, false
		}
		cur, ok = m[step]
		if !ok {
			return nil, false
		}
	}
	return cur, true
}

// Values returns the scalar values at a dotted path, flattening arrays
// encountered at any step. A path into objects nested inside arrays
// ("entities.urls.expanded") collects from every array element.
func (d *Document) Values(path string) []value.Value {
	steps := strings.Split(path, ".")
	var out []value.Value
	collect(d.Fields, steps, &out)
	return out
}

func collect(cur any, steps []string, out *[]value.Value) {
	if len(steps) == 0 {
		switch v := cur.(type) {
		case []any:
			for _, e := range v {
				collect(e, nil, out)
			}
		case map[string]any:
			// Objects are not scalars; stop.
		default:
			*out = append(*out, toValue(v))
		}
		return
	}
	switch v := cur.(type) {
	case map[string]any:
		next, ok := v[steps[0]]
		if !ok {
			return
		}
		collect(next, steps[1:], out)
	case []any:
		for _, e := range v {
			collect(e, steps, out)
		}
	}
}

func toValue(v any) value.Value {
	switch x := v.(type) {
	case nil:
		return value.NewNull()
	case string:
		return value.NewString(x)
	case bool:
		return value.NewBool(x)
	case float64:
		if x == float64(int64(x)) {
			return value.NewInt(int64(x))
		}
		return value.NewFloat(x)
	case int:
		return value.NewInt(int64(x))
	case int64:
		return value.NewInt(x)
	case float32:
		return value.NewFloat(float64(x))
	case json.Number:
		if i, err := x.Int64(); err == nil {
			return value.NewInt(i)
		}
		if f, err := x.Float64(); err == nil {
			return value.NewFloat(f)
		}
		return value.NewString(x.String())
	default:
		return value.NewString(fmt.Sprint(x))
	}
}

// Paths returns the sorted set of dotted paths to scalar leaves in the
// document (array elements share their parent path).
func (d *Document) Paths() []string {
	seen := make(map[string]struct{})
	var walk func(prefix string, v any)
	walk = func(prefix string, v any) {
		switch x := v.(type) {
		case map[string]any:
			for k, child := range x {
				p := k
				if prefix != "" {
					p = prefix + "." + k
				}
				walk(p, child)
			}
		case []any:
			for _, e := range x {
				walk(prefix, e)
			}
		default:
			if prefix != "" {
				seen[prefix] = struct{}{}
			}
		}
	}
	walk("", d.Fields)
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Set stores a value at a dotted path, creating intermediate objects.
func (d *Document) Set(path string, v any) {
	if d.Fields == nil {
		d.Fields = make(map[string]any)
	}
	steps := strings.Split(path, ".")
	cur := d.Fields
	for _, step := range steps[:len(steps)-1] {
		next, ok := cur[step].(map[string]any)
		if !ok {
			next = make(map[string]any)
			cur[step] = next
		}
		cur = next
	}
	cur[steps[len(steps)-1]] = v
}
