package lru_test

import (
	"testing"

	"tatooine/internal/lru"
)

func TestPutGetRemove(t *testing.T) {
	c := lru.New[int](4)
	if _, ok := c.Get("a"); ok {
		t.Error("empty cache answered a Get")
	}
	if c.Put("a", 1) {
		t.Error("first Put reported an eviction")
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Errorf("Get(a) = %d, %v", v, ok)
	}
	// Refreshing a key updates the value without growing the cache.
	if c.Put("a", 2) {
		t.Error("refresh reported an eviction")
	}
	if v, _ := c.Get("a"); v != 2 {
		t.Errorf("refreshed value: %d", v)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
	c.Remove("a")
	if _, ok := c.Get("a"); ok {
		t.Error("removed key still answered")
	}
	c.Remove("a") // removing an absent key is a no-op
	if c.Len() != 0 {
		t.Errorf("Len after removes = %d", c.Len())
	}
}

// TestEvictionOrder: the least recently *used* entry goes first, and a
// Get refreshes recency, not just Put.
func TestEvictionOrder(t *testing.T) {
	c := lru.New[int](3)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3)
	c.Get("a") // recency now: a, c, b
	if !c.Put("d", 4) {
		t.Error("overflowing Put reported no eviction")
	}
	if _, ok := c.Get("b"); ok {
		t.Error("b survived; it was least recently used")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s was evicted out of order", k)
		}
	}
	if c.Len() != 3 {
		t.Errorf("Len = %d, want 3", c.Len())
	}
}

func TestClear(t *testing.T) {
	c := lru.New[string](8)
	c.Put("a", "x")
	c.Put("b", "y")
	if n := c.Clear(); n != 2 {
		t.Errorf("Clear dropped %d entries, want 2", n)
	}
	if c.Len() != 0 {
		t.Errorf("Len after Clear = %d", c.Len())
	}
	if _, ok := c.Get("a"); ok {
		t.Error("cleared key still answered")
	}
	// The cache stays usable after a Clear.
	c.Put("c", "z")
	if v, ok := c.Get("c"); !ok || v != "z" {
		t.Errorf("Get after Clear = %q, %v", v, ok)
	}
	if n := c.Clear(); n != 1 {
		t.Errorf("second Clear dropped %d entries, want 1", n)
	}
	if c.Clear() != 0 {
		t.Error("Clear of an empty cache reported drops")
	}
}

// TestNonPositiveMaxClamped is the regression test for the max<=0 bug:
// lru.New(0) used to build a cache where every Put immediately evicted
// the entry it had just inserted — a silent 100%-miss cache.
func TestNonPositiveMaxClamped(t *testing.T) {
	for _, max := range []int{0, -1, -100} {
		c := lru.New[int](max)
		c.Put("a", 1)
		if v, ok := c.Get("a"); !ok || v != 1 {
			t.Errorf("New(%d): entry evicted on insert (got %d, %v)", max, v, ok)
		}
		if c.Len() != 1 {
			t.Errorf("New(%d): Len = %d, want 1", max, c.Len())
		}
		// Still bounded: a second key evicts down to one entry.
		if !c.Put("b", 2) {
			t.Errorf("New(%d): second Put did not evict", max)
		}
		if c.Len() != 1 {
			t.Errorf("New(%d): Len after overflow = %d, want 1", max, c.Len())
		}
	}
}
