// Package lru provides the small bounded least-recently-used map
// shared by the mediator's result cache and the per-source sub-query
// cache (source.Cached).
package lru

import "container/list"

type entry[V any] struct {
	key string
	val V
}

// Cache is a bounded LRU map from string keys to values. It is not
// safe for concurrent use; callers hold their own lock.
type Cache[V any] struct {
	max   int
	order *list.List // front = most recently used
	items map[string]*list.Element
}

// New returns a cache holding at most max entries (max must be > 0).
func New[V any](max int) *Cache[V] {
	return &Cache[V]{
		max:   max,
		order: list.New(),
		items: make(map[string]*list.Element),
	}
}

// Len returns the current number of entries.
func (c *Cache[V]) Len() int { return c.order.Len() }

// Get returns the value for key and marks it most recently used.
func (c *Cache[V]) Get(key string) (V, bool) {
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*entry[V]).val, true
	}
	var zero V
	return zero, false
}

// Remove deletes key if present (e.g. a TTL-expired entry, so dead
// entries stop occupying recency slots).
func (c *Cache[V]) Remove(key string) {
	if el, ok := c.items[key]; ok {
		c.order.Remove(el)
		delete(c.items, key)
	}
}

// Put stores (or refreshes) key and reports whether the insertion
// evicted the least recently used entry.
func (c *Cache[V]) Put(key string, val V) (evicted bool) {
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*entry[V]).val = val
		return false
	}
	c.items[key] = c.order.PushFront(&entry[V]{key: key, val: val})
	if c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*entry[V]).key)
		return true
	}
	return false
}
