// Package lru provides the small bounded least-recently-used map
// shared by the mediator's result cache and the per-source sub-query
// cache (source.Cached).
package lru

import "container/list"

type entry[V any] struct {
	key string
	val V
}

// Cache is a bounded LRU map from string keys to values. It is not
// safe for concurrent use; callers hold their own lock.
type Cache[V any] struct {
	max   int
	order *list.List // front = most recently used
	items map[string]*list.Element
}

// New returns a cache holding at most max entries. A non-positive max
// is clamped to 1: with max = 0 every Put would immediately evict the
// entry it just inserted, silently yielding a 100%-miss cache.
func New[V any](max int) *Cache[V] {
	if max < 1 {
		max = 1
	}
	return &Cache[V]{
		max:   max,
		order: list.New(),
		items: make(map[string]*list.Element),
	}
}

// Len returns the current number of entries.
func (c *Cache[V]) Len() int { return c.order.Len() }

// Get returns the value for key and marks it most recently used.
func (c *Cache[V]) Get(key string) (V, bool) {
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*entry[V]).val, true
	}
	var zero V
	return zero, false
}

// Remove deletes key if present (e.g. a TTL-expired entry, so dead
// entries stop occupying recency slots).
func (c *Cache[V]) Remove(key string) {
	if el, ok := c.items[key]; ok {
		c.order.Remove(el)
		delete(c.items, key)
	}
}

// Clear drops every entry and returns how many were removed (cache
// invalidation on instance mutation flushes whole caches at once).
func (c *Cache[V]) Clear() int {
	n := c.order.Len()
	c.order.Init()
	clear(c.items)
	return n
}

// Put stores (or refreshes) key and reports whether the insertion
// evicted the least recently used entry.
func (c *Cache[V]) Put(key string, val V) (evicted bool) {
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*entry[V]).val = val
		return false
	}
	c.items[key] = c.order.PushFront(&entry[V]{key: key, val: val})
	if c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*entry[V]).key)
		return true
	}
	return false
}
