package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"tatooine/internal/value"
)

// Parse parses one SQL statement (SELECT, INSERT or CREATE TABLE).
// A trailing ';' is allowed.
func Parse(input string) (Statement, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &sqlParser{toks: toks}
	var stmt Statement
	switch {
	case p.peekKeyword("SELECT"):
		stmt, err = p.parseSelect()
	case p.peekKeyword("INSERT"):
		stmt, err = p.parseInsert()
	case p.peekKeyword("CREATE"):
		stmt, err = p.parseCreate()
	default:
		return nil, p.errf("expected SELECT, INSERT or CREATE")
	}
	if err != nil {
		return nil, err
	}
	p.acceptOp(";")
	if !p.atEOF() {
		return nil, p.errf("unexpected trailing input %q", p.cur().Text)
	}
	return stmt, nil
}

// ParseSelect parses a statement that must be a SELECT.
func ParseSelect(input string) (*SelectStmt, error) {
	stmt, err := Parse(input)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, &SyntaxError{0, "statement is not a SELECT"}
	}
	return sel, nil
}

type sqlParser struct {
	toks    []Token
	pos     int
	nparams int
}

func (p *sqlParser) cur() Token  { return p.toks[p.pos] }
func (p *sqlParser) atEOF() bool { return p.cur().Kind == TokEOF }

func (p *sqlParser) errf(format string, args ...any) error {
	return &SyntaxError{p.cur().Pos, fmt.Sprintf(format, args...)}
}

func (p *sqlParser) peekKeyword(kw string) bool {
	t := p.cur()
	return t.Kind == TokKeyword && t.Text == kw
}

func (p *sqlParser) acceptKeyword(kw string) bool {
	if p.peekKeyword(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *sqlParser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %q, got %q", kw, p.cur().Text)
	}
	return nil
}

func (p *sqlParser) peekOp(op string) bool {
	t := p.cur()
	return t.Kind == TokOp && t.Text == op
}

func (p *sqlParser) acceptOp(op string) bool {
	if p.peekOp(op) {
		p.pos++
		return true
	}
	return false
}

func (p *sqlParser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errf("expected %q, got %q", op, p.cur().Text)
	}
	return nil
}

func (p *sqlParser) expectIdent() (string, error) {
	t := p.cur()
	if t.Kind != TokIdent {
		return "", p.errf("expected identifier, got %q", t.Text)
	}
	p.pos++
	return t.Text, nil
}

// ---------- SELECT ----------

func (p *sqlParser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &SelectStmt{Limit: -1}
	sel.Distinct = p.acceptKeyword("DISTINCT")

	if p.acceptOp("*") {
		sel.Star = true
	} else {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.acceptKeyword("AS") {
				alias, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				item.Alias = alias
			} else if p.cur().Kind == TokIdent {
				item.Alias = p.cur().Text
				p.pos++
			}
			sel.Columns = append(sel.Columns, item)
			if !p.acceptOp(",") {
				break
			}
		}
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	sel.From = from

	for {
		left := false
		switch {
		case p.acceptKeyword("JOIN"):
		case p.peekKeyword("INNER"):
			p.pos++
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
		case p.peekKeyword("LEFT"):
			p.pos++
			p.acceptKeyword("OUTER")
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			left = true
		default:
			goto afterJoins
		}
		tbl, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Joins = append(sel.Joins, JoinClause{Left: left, Table: tbl, On: cond})
	}
afterJoins:

	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = e
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		n, err := p.expectInt()
		if err != nil {
			return nil, err
		}
		sel.Limit = n
		if p.acceptKeyword("OFFSET") {
			off, err := p.expectInt()
			if err != nil {
				return nil, err
			}
			sel.Offset = off
		}
	}
	return sel, nil
}

func (p *sqlParser) expectInt() (int, error) {
	t := p.cur()
	if t.Kind != TokNumber {
		return 0, p.errf("expected number, got %q", t.Text)
	}
	n, err := strconv.Atoi(t.Text)
	if err != nil {
		return 0, p.errf("expected integer, got %q", t.Text)
	}
	p.pos++
	return n, nil
}

func (p *sqlParser) parseTableRef() (TableRef, error) {
	name, err := p.expectIdent()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Name: name}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = alias
	} else if p.cur().Kind == TokIdent {
		ref.Alias = p.cur().Text
		p.pos++
	}
	return ref, nil
}

// ---------- INSERT ----------

func (p *sqlParser) parseInsert() (*InsertStmt, error) {
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ins := &InsertStmt{Table: table}
	if p.acceptOp("(") {
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, col)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.acceptOp(",") {
			break
		}
	}
	return ins, nil
}

// ---------- CREATE TABLE ----------

func (p *sqlParser) parseCreate() (*CreateTableStmt, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ct := &CreateTableStmt{Table: table}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptKeyword("PRIMARY"):
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			for {
				col, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				ct.PrimaryKey = append(ct.PrimaryKey, col)
				if !p.acceptOp(",") {
					break
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
		case p.acceptKeyword("FOREIGN"):
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			if err := p.expectKeyword("REFERENCES"); err != nil {
				return nil, err
			}
			ref, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			refCol, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			ct.ForeignKeys = append(ct.ForeignKeys, ForeignKeyDef{col, ref, refCol})
		default:
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			kind, err := p.parseColumnType()
			if err != nil {
				return nil, err
			}
			def := ColumnDef{Name: name, Type: kind}
			if p.acceptKeyword("PRIMARY") {
				if err := p.expectKeyword("KEY"); err != nil {
					return nil, err
				}
				def.PK = true
				ct.PrimaryKey = append(ct.PrimaryKey, name)
			}
			ct.Columns = append(ct.Columns, def)
		}
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return ct, nil
}

func (p *sqlParser) parseColumnType() (value.Kind, error) {
	t := p.cur()
	if t.Kind != TokKeyword {
		return value.Null, p.errf("expected column type, got %q", t.Text)
	}
	p.pos++
	switch t.Text {
	case "INT", "INTEGER":
		return value.Int, nil
	case "FLOAT", "REAL":
		return value.Float, nil
	case "TEXT":
		return value.String, nil
	case "VARCHAR":
		// Optional length: VARCHAR(255).
		if p.acceptOp("(") {
			if _, err := p.expectInt(); err != nil {
				return value.Null, err
			}
			if err := p.expectOp(")"); err != nil {
				return value.Null, err
			}
		}
		return value.String, nil
	case "BOOL", "BOOLEAN":
		return value.Bool, nil
	case "TIMESTAMP":
		return value.Time, nil
	default:
		return value.Null, p.errf("unknown column type %q", t.Text)
	}
}

// ---------- expressions (precedence climbing) ----------

// parseExpr parses OR-level expressions.
func (p *sqlParser) parseExpr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{OpOr, left, right}
	}
	return left, nil
}

func (p *sqlParser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{OpAnd, left, right}
	}
	return left, nil
}

func (p *sqlParser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotExpr{inner}, nil
	}
	return p.parseComparison()
}

func (p *sqlParser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.acceptKeyword("IS") {
		negate := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{Inner: left, Negate: negate}, nil
	}
	// [NOT] IN / LIKE / BETWEEN
	negate := false
	if p.peekKeyword("NOT") {
		// lookahead for NOT IN / NOT LIKE / NOT BETWEEN
		next := p.toks[p.pos+1]
		if next.Kind == TokKeyword && (next.Text == "IN" || next.Text == "LIKE" || next.Text == "BETWEEN") {
			p.pos++
			negate = true
		}
	}
	switch {
	case p.acceptKeyword("IN"):
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &InExpr{Needle: left, List: list, Negate: negate}, nil
	case p.acceptKeyword("LIKE"):
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		var e Expr = &BinaryExpr{OpLike, left, right}
		if negate {
			e = &NotExpr{e}
		}
		return e, nil
	case p.acceptKeyword("BETWEEN"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{X: left, Lo: lo, Hi: hi, Negate: negate}, nil
	}
	ops := map[string]BinaryOp{
		"=": OpEq, "!=": OpNe, "<>": OpNe,
		"<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
	}
	t := p.cur()
	if t.Kind == TokOp {
		if op, ok := ops[t.Text]; ok {
			p.pos++
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{op, left, right}, nil
		}
	}
	return left, nil
}

func (p *sqlParser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptOp("+"):
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{OpAdd, left, right}
		case p.acceptOp("-"):
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{OpSub, left, right}
		default:
			return left, nil
		}
	}
}

func (p *sqlParser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptOp("*"):
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{OpMul, left, right}
		case p.acceptOp("/"):
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{OpDiv, left, right}
		default:
			return left, nil
		}
	}
}

func (p *sqlParser) parseUnary() (Expr, error) {
	if p.acceptOp("-") {
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := inner.(*Literal); ok {
			switch lit.Val.Kind() {
			case value.Int:
				return &Literal{value.NewInt(-lit.Val.Int())}, nil
			case value.Float:
				return &Literal{value.NewFloat(-lit.Val.Float())}, nil
			}
		}
		return &BinaryExpr{OpSub, &Literal{value.NewInt(0)}, inner}, nil
	}
	return p.parsePrimary()
}

func (p *sqlParser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokNumber:
		p.pos++
		if strings.ContainsAny(t.Text, ".eE") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.Text)
			}
			return &Literal{value.NewFloat(f)}, nil
		}
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer %q", t.Text)
		}
		return &Literal{value.NewInt(i)}, nil
	case TokString:
		p.pos++
		return &Literal{value.NewString(t.Text)}, nil
	case TokParam:
		p.pos++
		e := &Param{Index: p.nparams}
		p.nparams++
		return e, nil
	case TokKeyword:
		switch t.Text {
		case "NULL":
			p.pos++
			return &Literal{value.NewNull()}, nil
		case "TRUE":
			p.pos++
			return &Literal{value.NewBool(true)}, nil
		case "FALSE":
			p.pos++
			return &Literal{value.NewBool(false)}, nil
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			return p.parseAggregate()
		}
		return nil, p.errf("unexpected keyword %q", t.Text)
	case TokOp:
		if t.Text == "(" {
			p.pos++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, p.errf("unexpected token %q", t.Text)
	case TokIdent:
		p.pos++
		// Function call?
		if p.peekOp("(") {
			name := strings.ToUpper(t.Text)
			p.pos++
			var args []Expr
			if !p.peekOp(")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if !p.acceptOp(",") {
						break
					}
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &FuncExpr{Name: name, Args: args}, nil
		}
		// Qualified column?
		if p.acceptOp(".") {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: t.Text, Column: col}, nil
		}
		return &ColumnRef{Column: t.Text}, nil
	default:
		return nil, p.errf("unexpected token %q", t.Text)
	}
}

func (p *sqlParser) parseAggregate() (Expr, error) {
	t := p.cur()
	var fn AggFunc
	switch t.Text {
	case "COUNT":
		fn = AggCount
	case "SUM":
		fn = AggSum
	case "AVG":
		fn = AggAvg
	case "MIN":
		fn = AggMin
	case "MAX":
		fn = AggMax
	}
	p.pos++
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	agg := &AggExpr{Func: fn}
	if p.acceptOp("*") {
		if fn != AggCount {
			return nil, p.errf("'*' argument only valid for COUNT")
		}
	} else {
		agg.Distinct = p.acceptKeyword("DISTINCT")
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		agg.Arg = arg
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return agg, nil
}
