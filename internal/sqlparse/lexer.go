// Package sqlparse implements the lexer, AST and recursive-descent
// parser for the SQL subset spoken by TATOOINE's relational sources:
// CREATE TABLE, INSERT, and SELECT with joins, predicates, grouping,
// aggregation, ordering and limits. It is the query language that CMQ
// sub-queries against relational sources are written in.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexer tokens.
type TokenKind uint8

const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokString
	TokNumber
	TokOp    // = != <> < <= > >= + - * / ( ) , .
	TokParam // ? positional parameter
)

// Token is one lexical unit with its position.
type Token struct {
	Kind TokenKind
	Text string // keywords are upper-cased; identifiers keep their case
	Pos  int    // byte offset in the input
}

var keywords = map[string]bool{
	"SELECT": true, "DISTINCT": true, "FROM": true, "WHERE": true,
	"AND": true, "OR": true, "NOT": true, "LIKE": true, "IN": true,
	"IS": true, "NULL": true, "TRUE": true, "FALSE": true,
	"JOIN": true, "INNER": true, "LEFT": true, "OUTER": true, "ON": true,
	"GROUP": true, "BY": true, "HAVING": true, "ORDER": true,
	"ASC": true, "DESC": true, "LIMIT": true, "OFFSET": true,
	"AS": true, "INSERT": true, "INTO": true, "VALUES": true,
	"CREATE": true, "TABLE": true, "PRIMARY": true, "KEY": true,
	"FOREIGN": true, "REFERENCES": true, "INT": true, "INTEGER": true,
	"FLOAT": true, "REAL": true, "TEXT": true, "VARCHAR": true,
	"BOOL": true, "BOOLEAN": true, "TIMESTAMP": true, "BETWEEN": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

// SyntaxError reports a lexing or parsing failure with its byte offset.
type SyntaxError struct {
	Pos int
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("sql: syntax error at offset %d: %s", e.Pos, e.Msg)
}

// Lex tokenizes a SQL statement.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	for i < n {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '-' && i+1 < n && input[i+1] == '-': // line comment
			for i < n && input[i] != '\n' {
				i++
			}
		case c == '\'':
			start := i
			i++
			var b strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						b.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				b.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, &SyntaxError{start, "unterminated string literal"}
			}
			toks = append(toks, Token{TokString, b.String(), start})
		case c >= '0' && c <= '9':
			start := i
			for i < n && (input[i] >= '0' && input[i] <= '9' || input[i] == '.') {
				i++
			}
			// Scientific notation.
			if i < n && (input[i] == 'e' || input[i] == 'E') {
				j := i + 1
				if j < n && (input[j] == '+' || input[j] == '-') {
					j++
				}
				if j < n && input[j] >= '0' && input[j] <= '9' {
					i = j
					for i < n && input[i] >= '0' && input[i] <= '9' {
						i++
					}
				}
			}
			toks = append(toks, Token{TokNumber, input[start:i], start})
		case unicode.IsLetter(c) || c == '_':
			start := i
			for i < n && (unicode.IsLetter(rune(input[i])) || unicode.IsDigit(rune(input[i])) || input[i] == '_') {
				i++
			}
			word := input[start:i]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, Token{TokKeyword, upper, start})
			} else {
				toks = append(toks, Token{TokIdent, word, start})
			}
		case c == '"': // quoted identifier
			start := i
			i++
			j := strings.IndexByte(input[i:], '"')
			if j < 0 {
				return nil, &SyntaxError{start, "unterminated quoted identifier"}
			}
			toks = append(toks, Token{TokIdent, input[i : i+j], start})
			i += j + 1
		case c == '?':
			toks = append(toks, Token{TokParam, "?", i})
			i++
		default:
			start := i
			two := ""
			if i+1 < n {
				two = input[i : i+2]
			}
			switch two {
			case "!=", "<>", "<=", ">=":
				toks = append(toks, Token{TokOp, two, start})
				i += 2
				continue
			}
			switch c {
			case '=', '<', '>', '+', '-', '*', '/', '(', ')', ',', '.', ';':
				toks = append(toks, Token{TokOp, string(c), start})
				i++
			default:
				return nil, &SyntaxError{start, fmt.Sprintf("unexpected character %q", c)}
			}
		}
	}
	toks = append(toks, Token{TokEOF, "", n})
	return toks, nil
}
