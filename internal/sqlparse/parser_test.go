package sqlparse

import (
	"strings"
	"testing"

	"tatooine/internal/value"
)

func mustSelect(t *testing.T, q string) *SelectStmt {
	t.Helper()
	s, err := ParseSelect(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	return s
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`SELECT a, "b col" FROM t WHERE x >= 10.5 AND name LIKE 'O''Brien' -- comment`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokenKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
		texts = append(texts, tok.Text)
	}
	if texts[0] != "SELECT" || kinds[0] != TokKeyword {
		t.Errorf("tok0: %v %q", kinds[0], texts[0])
	}
	found := false
	for i, tx := range texts {
		if tx == "O'Brien" && kinds[i] == TokString {
			found = true
		}
	}
	if !found {
		t.Error("escaped string literal not lexed")
	}
	if texts[len(texts)-1] != "" || kinds[len(kinds)-1] != TokEOF {
		t.Error("missing EOF token")
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("SELECT 'unterminated"); err == nil {
		t.Error("unterminated string should fail")
	}
	if _, err := Lex(`SELECT "unterminated`); err == nil {
		t.Error("unterminated quoted ident should fail")
	}
	if _, err := Lex("SELECT @x"); err == nil {
		t.Error("bad character should fail")
	}
}

func TestParseSimpleSelect(t *testing.T) {
	s := mustSelect(t, "SELECT name, age FROM people")
	if len(s.Columns) != 2 || s.From.Name != "people" {
		t.Errorf("parsed: %+v", s)
	}
	if s.Limit != -1 {
		t.Errorf("default limit: %d", s.Limit)
	}
}

func TestParseStar(t *testing.T) {
	s := mustSelect(t, "SELECT * FROM t WHERE x = 1")
	if !s.Star {
		t.Error("star not set")
	}
	be, ok := s.Where.(*BinaryExpr)
	if !ok || be.Op != OpEq {
		t.Errorf("where: %T", s.Where)
	}
}

func TestParseJoinsAndAliases(t *testing.T) {
	s := mustSelect(t, `SELECT p.name, d.label AS dept
		FROM people p
		JOIN dept d ON p.dept_id = d.id
		LEFT JOIN region r ON d.region_id = r.id
		WHERE r.name != 'north'`)
	if s.From.Alias != "p" {
		t.Errorf("from alias: %q", s.From.Alias)
	}
	if len(s.Joins) != 2 {
		t.Fatalf("joins: %d", len(s.Joins))
	}
	if s.Joins[0].Left || !s.Joins[1].Left {
		t.Error("join kinds wrong")
	}
	if s.Columns[1].Alias != "dept" {
		t.Errorf("alias: %q", s.Columns[1].Alias)
	}
}

func TestParseGroupByHavingOrderLimit(t *testing.T) {
	s := mustSelect(t, `SELECT party, COUNT(*) AS n FROM tweets
		GROUP BY party HAVING COUNT(*) > 5
		ORDER BY n DESC, party ASC LIMIT 10 OFFSET 20`)
	if len(s.GroupBy) != 1 || s.Having == nil {
		t.Error("group/having missing")
	}
	if len(s.OrderBy) != 2 || !s.OrderBy[0].Desc || s.OrderBy[1].Desc {
		t.Errorf("order: %+v", s.OrderBy)
	}
	if s.Limit != 10 || s.Offset != 20 {
		t.Errorf("limit/offset: %d/%d", s.Limit, s.Offset)
	}
	agg, ok := s.Columns[1].Expr.(*AggExpr)
	if !ok || agg.Func != AggCount || agg.Arg != nil {
		t.Errorf("agg: %+v", s.Columns[1].Expr)
	}
}

func TestParseExpressions(t *testing.T) {
	s := mustSelect(t, `SELECT a FROM t WHERE
		(x + 2) * 3 > y / 4 AND name LIKE 'fr%'
		AND code IN ('75', '92', '93') AND status IS NOT NULL
		AND year BETWEEN 2014 AND 2016
		AND NOT deleted = TRUE`)
	if s.Where == nil {
		t.Fatal("no where")
	}
	str := ExprString(s.Where)
	for _, want := range []string{"LIKE", "IN ('75', '92', '93')", "IS NOT NULL", "BETWEEN 2014 AND 2016"} {
		if !strings.Contains(str, want) {
			t.Errorf("ExprString missing %q: %s", want, str)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	s := mustSelect(t, "SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3")
	or, ok := s.Where.(*BinaryExpr)
	if !ok || or.Op != OpOr {
		t.Fatalf("top must be OR: %v", ExprString(s.Where))
	}
	and, ok := or.Right.(*BinaryExpr)
	if !ok || and.Op != OpAnd {
		t.Errorf("right of OR must be AND: %v", ExprString(or.Right))
	}
}

func TestParseArithmeticPrecedence(t *testing.T) {
	s := mustSelect(t, "SELECT a + b * c FROM t")
	add, ok := s.Columns[0].Expr.(*BinaryExpr)
	if !ok || add.Op != OpAdd {
		t.Fatalf("top must be +: %v", ExprString(s.Columns[0].Expr))
	}
	if mul, ok := add.Right.(*BinaryExpr); !ok || mul.Op != OpMul {
		t.Error("b*c must bind tighter")
	}
}

func TestParseNegativeNumbers(t *testing.T) {
	s := mustSelect(t, "SELECT a FROM t WHERE x = -5 AND y = -2.5")
	str := ExprString(s.Where)
	if !strings.Contains(str, "-5") || !strings.Contains(str, "-2.5") {
		t.Errorf("negatives: %s", str)
	}
}

func TestParseParams(t *testing.T) {
	s := mustSelect(t, "SELECT a FROM t WHERE x = ? AND y > ?")
	var count int
	var walk func(Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *BinaryExpr:
			walk(x.Left)
			walk(x.Right)
		case *Param:
			if x.Index != count {
				t.Errorf("param index %d, want %d", x.Index, count)
			}
			count++
		}
	}
	walk(s.Where)
	if count != 2 {
		t.Errorf("params found: %d", count)
	}
}

func TestParseInsert(t *testing.T) {
	stmt, err := Parse(`INSERT INTO parties (id, name, current) VALUES
		(1, 'PS', 'left'), (2, 'LR', 'right')`)
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*InsertStmt)
	if ins.Table != "parties" || len(ins.Columns) != 3 || len(ins.Rows) != 2 {
		t.Errorf("insert: %+v", ins)
	}
}

func TestParseCreateTable(t *testing.T) {
	stmt, err := Parse(`CREATE TABLE deputes (
		id INT PRIMARY KEY,
		name TEXT,
		party_id INT,
		elected TIMESTAMP,
		score FLOAT,
		active BOOL,
		FOREIGN KEY (party_id) REFERENCES parties(id)
	)`)
	if err != nil {
		t.Fatal(err)
	}
	ct := stmt.(*CreateTableStmt)
	if ct.Table != "deputes" || len(ct.Columns) != 6 {
		t.Fatalf("create: %+v", ct)
	}
	wantKinds := []value.Kind{value.Int, value.String, value.Int, value.Time, value.Float, value.Bool}
	for i, k := range wantKinds {
		if ct.Columns[i].Type != k {
			t.Errorf("col %d type %v, want %v", i, ct.Columns[i].Type, k)
		}
	}
	if len(ct.PrimaryKey) != 1 || ct.PrimaryKey[0] != "id" {
		t.Errorf("pk: %v", ct.PrimaryKey)
	}
	if len(ct.ForeignKeys) != 1 || ct.ForeignKeys[0].RefTable != "parties" {
		t.Errorf("fk: %v", ct.ForeignKeys)
	}
}

func TestParseCompositePrimaryKey(t *testing.T) {
	stmt, err := Parse(`CREATE TABLE votes (dept TEXT, year INT, total INT, PRIMARY KEY (dept, year))`)
	if err != nil {
		t.Fatal(err)
	}
	ct := stmt.(*CreateTableStmt)
	if len(ct.PrimaryKey) != 2 {
		t.Errorf("composite pk: %v", ct.PrimaryKey)
	}
}

func TestParseVarcharLength(t *testing.T) {
	if _, err := Parse(`CREATE TABLE t (name VARCHAR(255))`); err != nil {
		t.Errorf("VARCHAR(n): %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP",
		"SELECT a FROM t LIMIT x",
		"INSERT INTO t",
		"CREATE TABLE t",
		"CREATE TABLE t (x NOTATYPE)",
		"SELECT a FROM t JOIN u",
		"SELECT SUM(*) FROM t",
		"SELECT a FROM t; SELECT b FROM u",
		"DELETE FROM t",
	}
	for _, q := range cases {
		if _, err := Parse(q); err == nil {
			t.Errorf("expected error for %q", q)
		}
	}
}

func TestParseDistinct(t *testing.T) {
	s := mustSelect(t, "SELECT DISTINCT party FROM tweets")
	if !s.Distinct {
		t.Error("distinct not set")
	}
	s2 := mustSelect(t, "SELECT COUNT(DISTINCT author) FROM tweets")
	agg := s2.Columns[0].Expr.(*AggExpr)
	if !agg.Distinct {
		t.Error("aggregate distinct not set")
	}
}

func TestParseScalarFunctions(t *testing.T) {
	s := mustSelect(t, "SELECT LOWER(name), LENGTH(name) FROM t")
	f0, ok := s.Columns[0].Expr.(*FuncExpr)
	if !ok || f0.Name != "LOWER" {
		t.Errorf("func: %+v", s.Columns[0].Expr)
	}
}

func TestHasAggregateAndColumnRefs(t *testing.T) {
	s := mustSelect(t, "SELECT SUM(x + y) * 2 FROM t WHERE a = 1")
	if !HasAggregate(s.Columns[0].Expr) {
		t.Error("HasAggregate false negative")
	}
	if HasAggregate(s.Where) {
		t.Error("HasAggregate false positive")
	}
	var refs []*ColumnRef
	ColumnRefs(s.Columns[0].Expr, &refs)
	if len(refs) != 2 {
		t.Errorf("refs: %d", len(refs))
	}
}

func TestExprStringStable(t *testing.T) {
	s := mustSelect(t, "SELECT a FROM t WHERE x = 'it''s'")
	if got := ExprString(s.Where); got != "(x = 'it''s')" {
		t.Errorf("ExprString: %s", got)
	}
}
