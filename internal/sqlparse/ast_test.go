package sqlparse

import (
	"strings"
	"testing"

	"tatooine/internal/value"
)

func TestExprStringAllNodes(t *testing.T) {
	s := mustSelect(t, `SELECT COUNT(*), COUNT(DISTINCT a), SUM(b), AVG(b), MIN(b), MAX(b),
		LOWER(c), t.d, -e, ?
	FROM t
	WHERE a IS NULL AND b IS NOT NULL AND NOT (c LIKE 'x%')
		AND d NOT IN (1, 2) AND e NOT BETWEEN 1 AND 2 AND f = 'it''s'`)
	var parts []string
	for _, it := range s.Columns {
		parts = append(parts, ExprString(it.Expr))
	}
	joined := strings.Join(parts, " | ")
	for _, want := range []string{
		"COUNT(*)", "COUNT(DISTINCT a)", "SUM(b)", "AVG(b)", "MIN(b)", "MAX(b)",
		"LOWER(c)", "t.d", "?",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("projection rendering missing %q: %s", want, joined)
		}
	}
	where := ExprString(s.Where)
	for _, want := range []string{
		"a IS NULL", "b IS NOT NULL", "NOT ", "d NOT IN (1, 2)",
		"e NOT BETWEEN 1 AND 2", "'it''s'",
	} {
		if !strings.Contains(where, want) {
			t.Errorf("where rendering missing %q: %s", want, where)
		}
	}
}

func TestHasAggregateAllBranches(t *testing.T) {
	s := mustSelect(t, `SELECT a FROM t WHERE
		NOT (SUM(x) > 1) OR COUNT(*) IS NULL OR
		SUM(y) IN (1) OR 1 IN (SUM(z)) OR
		SUM(w) BETWEEN 1 AND 2 OR LOWER(MIN(v)) = 'x'`)
	if !HasAggregate(s.Where) {
		t.Error("aggregates not detected through nested nodes")
	}
	if HasAggregate(nil) {
		t.Error("nil expression has no aggregate")
	}
	plain := mustSelect(t, `SELECT a FROM t WHERE NOT a IS NULL AND b IN (1) AND c BETWEEN 1 AND 2 AND LOWER(d) = 'x'`)
	if HasAggregate(plain.Where) {
		t.Error("false positive")
	}
}

func TestColumnRefsAllBranches(t *testing.T) {
	s := mustSelect(t, `SELECT SUM(a + b) FROM t WHERE
		NOT c IS NULL AND d IN (e, 1) AND f BETWEEN g AND h AND LOWER(i) = 'x'`)
	var refs []*ColumnRef
	ColumnRefs(s.Columns[0].Expr, &refs)
	ColumnRefs(s.Where, &refs)
	names := map[string]bool{}
	for _, r := range refs {
		names[r.Column] = true
	}
	for _, want := range []string{"a", "b", "c", "d", "e", "f", "g", "h", "i"} {
		if !names[want] {
			t.Errorf("missing column ref %q in %v", want, names)
		}
	}
}

func TestBinaryOpStrings(t *testing.T) {
	ops := map[BinaryOp]string{
		OpEq: "=", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
		OpAnd: "AND", OpOr: "OR", OpAdd: "+", OpSub: "-", OpMul: "*",
		OpDiv: "/", OpLike: "LIKE",
	}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("op %d: %q want %q", op, op.String(), want)
		}
	}
}

func TestAggFuncStrings(t *testing.T) {
	fns := map[AggFunc]string{
		AggCount: "COUNT", AggSum: "SUM", AggAvg: "AVG", AggMin: "MIN", AggMax: "MAX",
	}
	for fn, want := range fns {
		if fn.String() != want {
			t.Errorf("fn %d: %q", fn, fn.String())
		}
	}
}

func TestTableRefBinding(t *testing.T) {
	if (TableRef{Name: "t"}).Binding() != "t" {
		t.Error("binding defaults to name")
	}
	if (TableRef{Name: "t", Alias: "x"}).Binding() != "x" {
		t.Error("alias wins")
	}
}

func TestLiteralRendering(t *testing.T) {
	if got := ExprString(&Literal{value.NewNull()}); got != "NULL" {
		t.Errorf("null literal: %q", got)
	}
	if got := ExprString(&Literal{value.NewFloat(2.5)}); got != "2.5" {
		t.Errorf("float literal: %q", got)
	}
	if got := ExprString(&Literal{value.NewBool(true)}); got != "true" {
		t.Errorf("bool literal: %q", got)
	}
}

func TestLexScientificNotationAndComments(t *testing.T) {
	toks, err := Lex("SELECT 1.5e3, 2E-2 FROM t -- trailing")
	if err != nil {
		t.Fatal(err)
	}
	var nums []string
	for _, tok := range toks {
		if tok.Kind == TokNumber {
			nums = append(nums, tok.Text)
		}
	}
	if len(nums) != 2 || nums[0] != "1.5e3" || nums[1] != "2E-2" {
		t.Errorf("scientific: %v", nums)
	}
}

func TestParseSelectRejectsNonSelect(t *testing.T) {
	if _, err := ParseSelect("INSERT INTO t VALUES (1)"); err == nil {
		t.Error("ParseSelect accepted INSERT")
	}
}
