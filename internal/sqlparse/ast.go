package sqlparse

import (
	"strings"

	"tatooine/internal/value"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// SelectStmt is a SELECT query.
type SelectStmt struct {
	Distinct bool
	Columns  []SelectItem // empty means '*'
	Star     bool
	From     TableRef
	Joins    []JoinClause
	Where    Expr // nil when absent
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int // -1 when absent
	Offset   int // 0 when absent
}

func (*SelectStmt) stmt() {}

// SelectItem is one projected expression with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// TableRef names a table with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

// Binding name: alias if present, else table name.
func (t TableRef) Binding() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// JoinClause is an INNER or LEFT OUTER join with an ON condition.
type JoinClause struct {
	Left  bool // LEFT [OUTER] JOIN when true, INNER otherwise
	Table TableRef
	On    Expr
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// InsertStmt is INSERT INTO t (cols...) VALUES (...), (...).
type InsertStmt struct {
	Table   string
	Columns []string
	Rows    [][]Expr
}

func (*InsertStmt) stmt() {}

// CreateTableStmt is CREATE TABLE with column and constraint defs.
type CreateTableStmt struct {
	Table       string
	Columns     []ColumnDef
	PrimaryKey  []string
	ForeignKeys []ForeignKeyDef
}

func (*CreateTableStmt) stmt() {}

// ColumnDef declares one column.
type ColumnDef struct {
	Name string
	Type value.Kind
	PK   bool
}

// ForeignKeyDef declares FOREIGN KEY (Column) REFERENCES RefTable(RefColumn).
type ForeignKeyDef struct {
	Column    string
	RefTable  string
	RefColumn string
}

// Expr is any expression node.
type Expr interface{ expr() }

// ColumnRef references a column, optionally qualified ("t.c").
type ColumnRef struct {
	Table  string // "" when unqualified
	Column string
}

func (*ColumnRef) expr() {}

func (c *ColumnRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Column
	}
	return c.Column
}

// Literal is a constant value.
type Literal struct {
	Val value.Value
}

func (*Literal) expr() {}

// Param is a positional '?' parameter, numbered from 0 in statement order.
type Param struct {
	Index int
}

func (*Param) expr() {}

// BinaryOp codes for BinaryExpr.
type BinaryOp uint8

const (
	OpEq BinaryOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpLike
)

func (op BinaryOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpLike:
		return "LIKE"
	default:
		return "?op"
	}
}

// BinaryExpr applies op to two operands.
type BinaryExpr struct {
	Op          BinaryOp
	Left, Right Expr
}

func (*BinaryExpr) expr() {}

// NotExpr negates a boolean expression.
type NotExpr struct {
	Inner Expr
}

func (*NotExpr) expr() {}

// IsNullExpr tests (NOT) NULL.
type IsNullExpr struct {
	Inner  Expr
	Negate bool
}

func (*IsNullExpr) expr() {}

// InExpr tests membership in a literal list.
type InExpr struct {
	Needle Expr
	List   []Expr
	Negate bool
}

func (*InExpr) expr() {}

// BetweenExpr tests Lo <= X <= Hi.
type BetweenExpr struct {
	X, Lo, Hi Expr
	Negate    bool
}

func (*BetweenExpr) expr() {}

// AggFunc enumerates aggregate functions.
type AggFunc uint8

const (
	AggCount AggFunc = iota
	AggSum
	AggAvg
	AggMin
	AggMax
)

func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return "?agg"
	}
}

// AggExpr is an aggregate call; Arg is nil for COUNT(*).
type AggExpr struct {
	Func     AggFunc
	Arg      Expr
	Distinct bool
}

func (*AggExpr) expr() {}

// FuncExpr is a scalar function call (LOWER, UPPER, LENGTH, ABS).
type FuncExpr struct {
	Name string // upper-cased
	Args []Expr
}

func (*FuncExpr) expr() {}

// HasAggregate reports whether the expression tree contains an AggExpr.
func HasAggregate(e Expr) bool {
	switch x := e.(type) {
	case nil:
		return false
	case *AggExpr:
		return true
	case *BinaryExpr:
		return HasAggregate(x.Left) || HasAggregate(x.Right)
	case *NotExpr:
		return HasAggregate(x.Inner)
	case *IsNullExpr:
		return HasAggregate(x.Inner)
	case *InExpr:
		if HasAggregate(x.Needle) {
			return true
		}
		for _, e := range x.List {
			if HasAggregate(e) {
				return true
			}
		}
		return false
	case *BetweenExpr:
		return HasAggregate(x.X) || HasAggregate(x.Lo) || HasAggregate(x.Hi)
	case *FuncExpr:
		for _, a := range x.Args {
			if HasAggregate(a) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// CountParams counts '?' parameters anywhere in the expression tree.
func CountParams(e Expr) int {
	switch x := e.(type) {
	case nil:
		return 0
	case *Param:
		return 1
	case *BinaryExpr:
		return CountParams(x.Left) + CountParams(x.Right)
	case *NotExpr:
		return CountParams(x.Inner)
	case *IsNullExpr:
		return CountParams(x.Inner)
	case *InExpr:
		n := CountParams(x.Needle)
		for _, le := range x.List {
			n += CountParams(le)
		}
		return n
	case *BetweenExpr:
		return CountParams(x.X) + CountParams(x.Lo) + CountParams(x.Hi)
	case *AggExpr:
		return CountParams(x.Arg)
	case *FuncExpr:
		n := 0
		for _, a := range x.Args {
			n += CountParams(a)
		}
		return n
	default:
		return 0
	}
}

// ColumnRefs collects every column reference in the expression tree.
func ColumnRefs(e Expr, out *[]*ColumnRef) {
	switch x := e.(type) {
	case nil:
	case *ColumnRef:
		*out = append(*out, x)
	case *BinaryExpr:
		ColumnRefs(x.Left, out)
		ColumnRefs(x.Right, out)
	case *NotExpr:
		ColumnRefs(x.Inner, out)
	case *IsNullExpr:
		ColumnRefs(x.Inner, out)
	case *InExpr:
		ColumnRefs(x.Needle, out)
		for _, e := range x.List {
			ColumnRefs(e, out)
		}
	case *BetweenExpr:
		ColumnRefs(x.X, out)
		ColumnRefs(x.Lo, out)
		ColumnRefs(x.Hi, out)
	case *AggExpr:
		ColumnRefs(x.Arg, out)
	case *FuncExpr:
		for _, a := range x.Args {
			ColumnRefs(a, out)
		}
	}
}

// ExprString renders an expression for debugging and plan display.
func ExprString(e Expr) string {
	switch x := e.(type) {
	case nil:
		return ""
	case *ColumnRef:
		return x.String()
	case *Literal:
		if x.Val.Kind() == value.String {
			return "'" + strings.ReplaceAll(x.Val.Str(), "'", "''") + "'"
		}
		return x.Val.String()
	case *Param:
		return "?"
	case *BinaryExpr:
		return "(" + ExprString(x.Left) + " " + x.Op.String() + " " + ExprString(x.Right) + ")"
	case *NotExpr:
		return "NOT " + ExprString(x.Inner)
	case *IsNullExpr:
		if x.Negate {
			return ExprString(x.Inner) + " IS NOT NULL"
		}
		return ExprString(x.Inner) + " IS NULL"
	case *InExpr:
		var parts []string
		for _, e := range x.List {
			parts = append(parts, ExprString(e))
		}
		neg := ""
		if x.Negate {
			neg = " NOT"
		}
		return ExprString(x.Needle) + neg + " IN (" + strings.Join(parts, ", ") + ")"
	case *BetweenExpr:
		neg := ""
		if x.Negate {
			neg = " NOT"
		}
		return ExprString(x.X) + neg + " BETWEEN " + ExprString(x.Lo) + " AND " + ExprString(x.Hi)
	case *AggExpr:
		arg := "*"
		if x.Arg != nil {
			arg = ExprString(x.Arg)
		}
		if x.Distinct {
			arg = "DISTINCT " + arg
		}
		return x.Func.String() + "(" + arg + ")"
	case *FuncExpr:
		var parts []string
		for _, a := range x.Args {
			parts = append(parts, ExprString(a))
		}
		return x.Name + "(" + strings.Join(parts, ", ") + ")"
	default:
		return "?expr"
	}
}
