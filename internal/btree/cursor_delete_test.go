package btree

import (
	"bytes"
	"fmt"
	"testing"

	"tatooine/internal/pager"
)

func TestCursorAfterMassDelete(t *testing.T) {
	pg, _ := pager.Open("", pager.Options{})
	tr, _ := New(pg)
	val := bytes.Repeat([]byte("x"), 256)
	for i := 0; i < 3000; i++ {
		tr.Insert([]byte(fmt.Sprintf("k%06d", i)), val)
	}
	for i := 0; i < 3000; i++ {
		if i%10 == 0 {
			continue
		}
		tr.Delete([]byte(fmt.Sprintf("k%06d", i)))
	}
	c := tr.NewCursor()
	n := 0
	for c.Seek(nil); c.Valid(); c.Next() {
		n++
	}
	if c.Err() != nil {
		t.Fatal(c.Err())
	}
	if n != 300 {
		t.Fatalf("cursor yields %d rows, want 300", n)
	}
}
