// Package btree implements an order-N B-tree over pager pages: the
// index layer of TATOOINE's storage engine, modeled on the SQLite
// B-tree page format (PAPERS.md: abk171/gosqlite,
// khandu-utkarsh/codecrafters-sqlite-go) but writable.
//
// Each tree maps variable-length byte keys to variable-length values in
// sorted order. Pages are slotted: a header, an array of 2-byte cell
// offsets sorted by key, and cell content growing down from the page
// end. Leaf cells hold the key plus an inline value prefix (long values
// spill into an overflow page chain); interior cells hold a router key
// and a child pointer, with keys <= router in the child and a rightmost
// pointer for the rest. The root page never moves: a root split pushes
// both halves into fresh pages and rewrites the root in place, so a
// tree is durably identified by one PageID.
//
// Deletes do not rebalance: an underfull (even empty) page stays in the
// tree and cursors skip it. That trades bounded space slack for
// simplicity, which suits the mediator's append-mostly workloads.
package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"tatooine/internal/pager"
)

const (
	typeLeaf     = 1
	typeInterior = 2

	hdrSize = 9 // type(1) + nCells(2) + cellStart(2) + rightChild(4)

	// MaxKey bounds key length so that any page can hold at least two
	// cells; the store layer clamps longer keys before they reach here.
	MaxKey = 1024

	// maxLeafCell bounds one leaf cell (header + key + inline value);
	// values that would exceed it continue in overflow pages.
	maxLeafCell = 1900

	leafCellHdr     = 10 // klen(2) + inlineLen(4) + overflow(4)
	interiorCellHdr = 6  // klen(2) + child(4)

	// Overflow page: next(4) + len(2) + data.
	ovflHdr  = 6
	ovflData = pager.PageSize - ovflHdr
)

// BTree is one tree within a pager. It is NOT internally synchronized:
// callers (the store layer) serialize writers per tree and exclude
// writers during reads.
type BTree struct {
	pg   *pager.Pager
	root pager.PageID
	// live is the payload the tree currently holds: the sum of
	// len(key)+len(value) over every live entry, maintained across
	// inserts, replacements and deletes. Dead space (removed cells,
	// page slack) is NOT counted, so pages-used×PageSize versus live is
	// the store's vacuum signal. The store catalog persists it per
	// keyspace and restores it through SetLiveBytes on reopen.
	live int64
}

// New allocates an empty tree and returns it; the root PageID is stable
// for the tree's lifetime (persist it to reopen the tree later).
func New(pg *pager.Pager) (*BTree, error) {
	id, page, err := pg.Allocate()
	if err != nil {
		return nil, err
	}
	initPage(page, typeLeaf)
	return &BTree{pg: pg, root: id}, nil
}

// Open returns the tree rooted at root.
func Open(pg *pager.Pager, root pager.PageID) *BTree {
	return &BTree{pg: pg, root: root}
}

// Root returns the tree's root page.
func (t *BTree) Root() pager.PageID { return t.root }

// LiveBytes returns the summed key+value payload of the live entries.
func (t *BTree) LiveBytes() int64 { return t.live }

// SetLiveBytes restores the live-byte counter of a reopened tree (the
// store catalog persists it alongside the root and count).
func (t *BTree) SetLiveBytes(n int64) { t.live = n }

func initPage(p []byte, typ byte) {
	for i := range p[:hdrSize] {
		p[i] = 0
	}
	p[0] = typ
	binary.BigEndian.PutUint16(p[3:], pager.PageSize)
}

// --- page accessors -------------------------------------------------

func pageType(p []byte) byte { return p[0] }
func nCells(p []byte) int    { return int(binary.BigEndian.Uint16(p[1:])) }
func cellStart(p []byte) int { return int(binary.BigEndian.Uint16(p[3:])) }
func rightChild(p []byte) pager.PageID {
	return pager.PageID(binary.BigEndian.Uint32(p[5:]))
}
func setNCells(p []byte, n int)    { binary.BigEndian.PutUint16(p[1:], uint16(n)) }
func setCellStart(p []byte, o int) { binary.BigEndian.PutUint16(p[3:], uint16(o)) }
func setRightChild(p []byte, c pager.PageID) {
	binary.BigEndian.PutUint32(p[5:], uint32(c))
}

func slotOff(p []byte, i int) int {
	return int(binary.BigEndian.Uint16(p[hdrSize+2*i:]))
}
func setSlotOff(p []byte, i, off int) {
	binary.BigEndian.PutUint16(p[hdrSize+2*i:], uint16(off))
}

func cellKey(p []byte, i int) []byte {
	off := slotOff(p, i)
	klen := int(binary.BigEndian.Uint16(p[off:]))
	if pageType(p) == typeLeaf {
		return p[off+leafCellHdr : off+leafCellHdr+klen]
	}
	return p[off+interiorCellHdr : off+interiorCellHdr+klen]
}

// leafCellValue returns the inline value bytes and the overflow chain
// head (0 if none).
func leafCellValue(p []byte, i int) ([]byte, pager.PageID) {
	off := slotOff(p, i)
	klen := int(binary.BigEndian.Uint16(p[off:]))
	ilen := int(binary.BigEndian.Uint32(p[off+2:]))
	ovfl := pager.PageID(binary.BigEndian.Uint32(p[off+6:]))
	start := off + leafCellHdr + klen
	return p[start : start+ilen], ovfl
}

func interiorChild(p []byte, i int) pager.PageID {
	if i >= nCells(p) {
		return rightChild(p)
	}
	off := slotOff(p, i)
	return pager.PageID(binary.BigEndian.Uint32(p[off+2:]))
}

func setInteriorChild(p []byte, i int, c pager.PageID) {
	if i >= nCells(p) {
		setRightChild(p, c)
		return
	}
	off := slotOff(p, i)
	binary.BigEndian.PutUint32(p[off+2:], uint32(c))
}

func cellSize(p []byte, i int) int {
	off := slotOff(p, i)
	klen := int(binary.BigEndian.Uint16(p[off:]))
	if pageType(p) == typeLeaf {
		ilen := int(binary.BigEndian.Uint32(p[off+2:]))
		return leafCellHdr + klen + ilen
	}
	return interiorCellHdr + klen
}

// search returns the index of the first cell whose key is >= key, and
// whether an exact match was found there.
func search(p []byte, key []byte) (int, bool) {
	lo, hi := 0, nCells(p)
	for lo < hi {
		mid := (lo + hi) / 2
		switch bytes.Compare(cellKey(p, mid), key) {
		case -1:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	exact := lo < nCells(p) && bytes.Equal(cellKey(p, lo), key)
	return lo, exact
}

// insertCell places raw cell bytes at slot i, compacting first when
// dead space from deletes or replacements fragments the page. Returns
// false if the page is full even after compaction.
func insertCell(p []byte, i int, cell []byte) bool {
	n := nCells(p)
	if cellStart(p) < hdrSize+2*(n+1)+len(cell) {
		live := 0
		for j := 0; j < n; j++ {
			live += cellSize(p, j)
		}
		if hdrSize+2*(n+1)+live+len(cell) > pager.PageSize {
			return false
		}
		compact(p)
	}
	off := cellStart(p) - len(cell)
	copy(p[off:], cell)
	n = nCells(p)
	copy(p[hdrSize+2*(i+1):hdrSize+2*(n+1)], p[hdrSize+2*i:hdrSize+2*n])
	setSlotOff(p, i, off)
	setNCells(p, n+1)
	setCellStart(p, off)
	return true
}

// removeCell drops slot i; the cell content becomes dead space
// reclaimed by the next compact.
func removeCell(p []byte, i int) {
	n := nCells(p)
	copy(p[hdrSize+2*i:hdrSize+2*(n-1)], p[hdrSize+2*(i+1):hdrSize+2*n])
	setNCells(p, n-1)
	if n-1 == 0 {
		setCellStart(p, pager.PageSize)
	}
}

// compact rewrites all cells tightly against the page end.
func compact(p []byte) {
	n := nCells(p)
	var scratch [pager.PageSize]byte
	end := pager.PageSize
	offs := make([]int, n)
	for i := 0; i < n; i++ {
		sz := cellSize(p, i)
		end -= sz
		copy(scratch[end:], p[slotOff(p, i):slotOff(p, i)+sz])
		offs[i] = end
	}
	copy(p[end:], scratch[end:])
	for i, off := range offs {
		setSlotOff(p, i, off)
	}
	setCellStart(p, end)
}

// --- public operations ----------------------------------------------

// Get returns the value for key.
func (t *BTree) Get(key []byte) ([]byte, bool, error) {
	id := t.root
	for {
		p, err := t.pg.View(id)
		if err != nil {
			return nil, false, err
		}
		i, exact := search(p, key)
		if pageType(p) == typeLeaf {
			if !exact {
				return nil, false, nil
			}
			return t.materialize(p, i)
		}
		id = interiorChild(p, i)
	}
}

// materialize copies the full value of leaf cell i, following any
// overflow chain.
func (t *BTree) materialize(p []byte, i int) ([]byte, bool, error) {
	inline, ovfl := leafCellValue(p, i)
	out := make([]byte, len(inline))
	copy(out, inline)
	for ovfl != 0 {
		op, err := t.pg.View(ovfl)
		if err != nil {
			return nil, false, err
		}
		next := pager.PageID(binary.BigEndian.Uint32(op[0:]))
		l := int(binary.BigEndian.Uint16(op[4:]))
		out = append(out, op[ovflHdr:ovflHdr+l]...)
		ovfl = next
	}
	return out, true, nil
}

// Insert sets key to value, replacing any existing value. It reports
// whether the key was new.
func (t *BTree) Insert(key, value []byte) (bool, error) {
	if len(key) == 0 || len(key) > MaxKey {
		return false, fmt.Errorf("btree: key length %d out of range [1,%d]", len(key), MaxKey)
	}
	fresh, split, err := t.insertInto(t.root, key, value)
	if err != nil {
		return false, err
	}
	if split != nil {
		if err := t.splitRoot(split); err != nil {
			return false, err
		}
	}
	return fresh, nil
}

// splitResult describes a child split to be absorbed by the parent:
// the child (which kept its PageID) now holds keys <= sep, and right
// holds the rest.
type splitResult struct {
	sep   []byte
	right pager.PageID
}

// splitRoot absorbs a split of the root itself: the root currently
// holds the left half (splitPage splits in place). Move that half into
// a fresh page and rewrite the root as a two-child interior node, so
// the root PageID stays stable for the tree's whole lifetime.
func (t *BTree) splitRoot(split *splitResult) error {
	rootPage, err := t.pg.Mut(t.root)
	if err != nil {
		return err
	}
	leftID, leftPage, err := t.pg.Allocate()
	if err != nil {
		return err
	}
	copy(leftPage, rootPage)
	// Re-fetch: Allocate may have grown structures, and Mut buffers are
	// stable per transaction, but be explicit.
	rootPage, err = t.pg.Mut(t.root)
	if err != nil {
		return err
	}
	initPage(rootPage, typeInterior)
	cell := make([]byte, interiorCellHdr+len(split.sep))
	binary.BigEndian.PutUint16(cell[0:], uint16(len(split.sep)))
	binary.BigEndian.PutUint32(cell[2:], uint32(leftID))
	copy(cell[interiorCellHdr:], split.sep)
	insertCell(rootPage, 0, cell)
	setRightChild(rootPage, split.right)
	return nil
}

// insertInto inserts into the subtree rooted at id. If the page had to
// split, the page keeps the left half and the returned splitResult
// carries the separator and the new right page.
func (t *BTree) insertInto(id pager.PageID, key, value []byte) (fresh bool, split *splitResult, err error) {
	view, err := t.pg.View(id)
	if err != nil {
		return false, nil, err
	}
	if pageType(view) == typeLeaf {
		return t.insertLeaf(id, key, value)
	}
	i, _ := search(view, key)
	child := interiorChild(view, i)
	fresh, childSplit, err := t.insertInto(child, key, value)
	if err != nil || childSplit == nil {
		return fresh, nil, err
	}
	// Absorb the child's split: new router cell (sep -> child), and the
	// slot that pointed at child now covers the right half.
	p, err := t.pg.Mut(id)
	if err != nil {
		return false, nil, err
	}
	i, _ = search(p, childSplit.sep)
	cell := make([]byte, interiorCellHdr+len(childSplit.sep))
	binary.BigEndian.PutUint16(cell[0:], uint16(len(childSplit.sep)))
	binary.BigEndian.PutUint32(cell[2:], uint32(child))
	copy(cell[interiorCellHdr:], childSplit.sep)
	if insertCell(p, i, cell) {
		setInteriorChild(p, i+1, childSplit.right)
		return fresh, nil, nil
	}
	// Parent is full: split it, then retry the router insert into the
	// correct half.
	sep, rightID, err := t.splitPage(id)
	if err != nil {
		return false, nil, err
	}
	target := id
	if bytes.Compare(childSplit.sep, sep) > 0 {
		target = rightID
	}
	p, err = t.pg.Mut(target)
	if err != nil {
		return false, nil, err
	}
	i, _ = search(p, childSplit.sep)
	if !insertCell(p, i, cell) {
		return false, nil, fmt.Errorf("btree: router insert failed after split")
	}
	setInteriorChild(p, i+1, childSplit.right)
	return fresh, &splitResult{sep: sep, right: rightID}, nil
}

func (t *BTree) insertLeaf(id pager.PageID, key, value []byte) (bool, *splitResult, error) {
	p, err := t.pg.Mut(id)
	if err != nil {
		return false, nil, err
	}
	i, exact := search(p, key)
	if exact {
		// Replace: account and drop the old cell, returning its
		// overflow chain to the pager's free list, then insert anew.
		old, err := t.dropLeafCell(p, i)
		if err != nil {
			return false, nil, err
		}
		t.live -= int64(len(key)) + old
	}
	cell, err := t.buildLeafCell(key, value)
	if err != nil {
		return false, nil, err
	}
	t.live += int64(len(key) + len(value))
	if insertCell(p, i, cell) {
		return !exact, nil, nil
	}
	split, err := t.splitLeafInsert(id, i, cell)
	if err != nil {
		return false, nil, err
	}
	return !exact, split, nil
}

// splitLeafInsert splits leaf id while placing the pending cell at
// slot position pos, choosing the split point over the combined cell
// sequence (existing cells plus the pending one) that best balances
// bytes between the halves. Splitting first and retrying the insert —
// the old approach — could strand a near-maxLeafCell cell against a
// half that the byte-blind split left too full; because maxLeafCell
// keeps every cell under half a page's usable space, the combined
// sequence always has a split point where both halves fit.
func (t *BTree) splitLeafInsert(id pager.PageID, pos int, cell []byte) (*splitResult, error) {
	p, err := t.pg.Mut(id)
	if err != nil {
		return nil, err
	}
	n := nCells(p)
	if n == 0 {
		return nil, fmt.Errorf("btree: cell of %d bytes cannot fit a page", len(cell))
	}
	// Virtual sequence: index pos is the pending cell, the rest are the
	// existing cells shifted around it. vsize includes the 2-byte slot.
	vsize := func(j int) int {
		switch {
		case j == pos:
			return len(cell) + 2
		case j < pos:
			return cellSize(p, j) + 2
		default:
			return cellSize(p, j-1) + 2
		}
	}
	total := 0
	for j := 0; j <= n; j++ {
		total += vsize(j)
	}
	// Split point s: left keeps virtual [0,s), right takes [s,n+1).
	// Minimize the larger half.
	best, bestCost, acc := 1, int(^uint(0)>>1), 0
	for s := 1; s <= n; s++ {
		acc += vsize(s - 1)
		cost := acc
		if r := total - acc; r > cost {
			cost = r
		}
		if cost < bestCost {
			best, bestCost = s, cost
		}
	}
	s := best
	rightID, rightPage, err := t.pg.Allocate()
	if err != nil {
		return nil, err
	}
	p, err = t.pg.Mut(id)
	if err != nil {
		return nil, err
	}
	initPage(rightPage, typeLeaf)
	for j := s; j <= n; j++ {
		src := cell
		if j != pos {
			oi := j
			if j > pos {
				oi = j - 1
			}
			off := slotOff(p, oi)
			src = p[off : off+cellSize(p, oi)]
		}
		if !insertCell(rightPage, nCells(rightPage), src) {
			return nil, fmt.Errorf("btree: split right overflow")
		}
	}
	// Trim the moved cells off the left, then place the pending cell if
	// it belongs there.
	firstMoved := s
	if pos < s {
		firstMoved = s - 1
	}
	for i := n - 1; i >= firstMoved; i-- {
		removeCell(p, i)
	}
	if pos < s {
		if !insertCell(p, pos, cell) {
			return nil, fmt.Errorf("btree: split left overflow")
		}
	}
	sep := append([]byte(nil), cellKey(p, nCells(p)-1)...)
	return &splitResult{sep: sep, right: rightID}, nil
}

// dropLeafCell removes leaf cell i, frees its overflow chain, and
// returns the full value length the cell held.
func (t *BTree) dropLeafCell(p []byte, i int) (int64, error) {
	inline, ovfl := leafCellValue(p, i)
	size := int64(len(inline))
	removeCell(p, i)
	if ovfl != 0 {
		n, err := t.freeOverflow(ovfl)
		if err != nil {
			return 0, err
		}
		size += n
	}
	return size, nil
}

// freeOverflow walks an overflow chain, returning every page to the
// pager's free list, and reports the chained value bytes freed.
func (t *BTree) freeOverflow(ovfl pager.PageID) (int64, error) {
	var freed int64
	for ovfl != 0 {
		op, err := t.pg.View(ovfl)
		if err != nil {
			return freed, err
		}
		next := pager.PageID(binary.BigEndian.Uint32(op[0:]))
		freed += int64(binary.BigEndian.Uint16(op[4:]))
		if err := t.pg.Free(ovfl); err != nil {
			return freed, err
		}
		ovfl = next
	}
	return freed, nil
}

// buildLeafCell encodes a leaf cell, spilling long values to overflow
// pages.
func (t *BTree) buildLeafCell(key, value []byte) ([]byte, error) {
	inline := value
	var ovfl pager.PageID
	if leafCellHdr+len(key)+len(value) > maxLeafCell {
		cut := maxLeafCell - leafCellHdr - len(key)
		if cut < 0 {
			cut = 0
		}
		inline = value[:cut]
		rest := value[cut:]
		// Build the chain back-to-front so each page knows its next.
		var next pager.PageID
		chunks := (len(rest) + ovflData - 1) / ovflData
		for c := chunks - 1; c >= 0; c-- {
			lo := c * ovflData
			hi := lo + ovflData
			if hi > len(rest) {
				hi = len(rest)
			}
			id, page, err := t.pg.Allocate()
			if err != nil {
				return nil, err
			}
			binary.BigEndian.PutUint32(page[0:], uint32(next))
			binary.BigEndian.PutUint16(page[4:], uint16(hi-lo))
			copy(page[ovflHdr:], rest[lo:hi])
			next = id
		}
		ovfl = next
	}
	cell := make([]byte, leafCellHdr+len(key)+len(inline))
	binary.BigEndian.PutUint16(cell[0:], uint16(len(key)))
	binary.BigEndian.PutUint32(cell[2:], uint32(len(inline)))
	binary.BigEndian.PutUint32(cell[6:], uint32(ovfl))
	copy(cell[leafCellHdr:], key)
	copy(cell[leafCellHdr+len(key):], inline)
	return cell, nil
}

// splitPage moves the upper half of page id's cells into a fresh page
// and returns the separator (max key retained on the left) and the new
// right page. For interior pages the right page inherits the old
// rightChild and the left page's rightChild becomes the child of the
// cell just past the split point (whose router key becomes the
// separator and is removed — standard B-tree promotion).
func (t *BTree) splitPage(id pager.PageID) ([]byte, pager.PageID, error) {
	p, err := t.pg.Mut(id)
	if err != nil {
		return nil, 0, err
	}
	n := nCells(p)
	if n < 2 {
		return nil, 0, fmt.Errorf("btree: cannot split page with %d cells", n)
	}
	// Find the split point by accumulated cell size.
	total := 0
	for i := 0; i < n; i++ {
		total += cellSize(p, i) + 2
	}
	mid, acc := 0, 0
	for mid = 0; mid < n-1; mid++ {
		acc += cellSize(p, mid) + 2
		if acc >= total/2 {
			break
		}
	}
	if mid == 0 {
		mid = 1
	}
	rightID, rightPage, err := t.pg.Allocate()
	if err != nil {
		return nil, 0, err
	}
	// Allocate may have touched page 0; re-fetch our Mut buffer (same
	// transaction, still dirty, pointer is stable — but be explicit).
	p, err = t.pg.Mut(id)
	if err != nil {
		return nil, 0, err
	}
	typ := pageType(p)
	initPage(rightPage, typ)

	var sep []byte
	if typ == typeLeaf {
		sep = append([]byte(nil), cellKey(p, mid-1)...)
		for i := mid; i < n; i++ {
			off := slotOff(p, i)
			sz := cellSize(p, i)
			if !insertCell(rightPage, nCells(rightPage), p[off:off+sz]) {
				return nil, 0, fmt.Errorf("btree: split right overflow")
			}
		}
		for i := n - 1; i >= mid; i-- {
			removeCell(p, i)
		}
	} else {
		// Promote the key at mid: left keeps cells [0,mid), its
		// rightChild becomes cell mid's child; right takes (mid, n) and
		// the old rightChild.
		sep = append([]byte(nil), cellKey(p, mid)...)
		promotedChild := interiorChild(p, mid)
		for i := mid + 1; i < n; i++ {
			off := slotOff(p, i)
			sz := cellSize(p, i)
			if !insertCell(rightPage, nCells(rightPage), p[off:off+sz]) {
				return nil, 0, fmt.Errorf("btree: split right overflow")
			}
		}
		setRightChild(rightPage, rightChild(p))
		for i := n - 1; i >= mid; i-- {
			removeCell(p, i)
		}
		setRightChild(p, promotedChild)
	}
	compact(p)
	return sep, rightID, nil
}

// Delete removes key, reporting whether it was present. Tree pages are
// not rebalanced (an underfull page stays in the tree), but the value's
// overflow chain goes back to the pager's free list and the live-byte
// counter retreats by the entry's payload.
func (t *BTree) Delete(key []byte) (bool, error) {
	id := t.root
	for {
		view, err := t.pg.View(id)
		if err != nil {
			return false, err
		}
		i, exact := search(view, key)
		if pageType(view) == typeLeaf {
			if !exact {
				return false, nil
			}
			p, err := t.pg.Mut(id)
			if err != nil {
				return false, err
			}
			i, exact = search(p, key)
			if !exact {
				return false, nil
			}
			old, err := t.dropLeafCell(p, i)
			if err != nil {
				return false, err
			}
			t.live -= int64(len(key)) + old
			return true, nil
		}
		id = interiorChild(view, i)
	}
}

// Pages enumerates every page the tree owns — interior and leaf nodes
// plus all overflow chains — so the store layer can return them to the
// pager's free list when a keyspace is dropped or rewritten by vacuum.
func (t *BTree) Pages() ([]pager.PageID, error) {
	var out []pager.PageID
	var walk func(id pager.PageID) error
	walk = func(id pager.PageID) error {
		p, err := t.pg.View(id)
		if err != nil {
			return err
		}
		out = append(out, id)
		if pageType(p) == typeLeaf {
			for i := 0; i < nCells(p); i++ {
				_, ovfl := leafCellValue(p, i)
				for ovfl != 0 {
					op, err := t.pg.View(ovfl)
					if err != nil {
						return err
					}
					out = append(out, ovfl)
					ovfl = pager.PageID(binary.BigEndian.Uint32(op[0:]))
				}
			}
			return nil
		}
		for i := 0; i <= nCells(p); i++ { // interior has nCells+1 children
			if err := walk(interiorChild(p, i)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root); err != nil {
		return nil, err
	}
	return out, nil
}

// Cursor iterates keys in ascending order. It must not be used across
// writes to the same tree (callers hold the tree's lock while
// iterating).
type Cursor struct {
	t     *BTree
	stack []cursorLevel
	err   error
	valid bool
}

type cursorLevel struct {
	page pager.PageID
	idx  int
}

// NewCursor returns an unpositioned cursor; call Seek first.
func (t *BTree) NewCursor() *Cursor { return &Cursor{t: t} }

// Seek positions the cursor at the first key >= key.
func (c *Cursor) Seek(key []byte) {
	c.stack = c.stack[:0]
	c.err = nil
	c.valid = false
	id := c.t.root
	for {
		p, err := c.t.pg.View(id)
		if err != nil {
			c.err = err
			return
		}
		i, _ := search(p, key)
		c.stack = append(c.stack, cursorLevel{page: id, idx: i})
		if pageType(p) == typeLeaf {
			if i < nCells(p) {
				c.valid = true
				return
			}
			c.advance()
			return
		}
		id = interiorChild(p, i)
	}
}

// Next advances to the next key.
func (c *Cursor) Next() {
	if !c.valid {
		return
	}
	top := &c.stack[len(c.stack)-1]
	p, err := c.t.pg.View(top.page)
	if err != nil {
		c.err, c.valid = err, false
		return
	}
	top.idx++
	if top.idx < nCells(p) {
		return
	}
	c.advance()
}

// advance pops exhausted levels and descends to the next leaf cell.
func (c *Cursor) advance() {
	c.valid = false
	// Pop the exhausted leaf.
	c.stack = c.stack[:len(c.stack)-1]
	for len(c.stack) > 0 {
		top := &c.stack[len(c.stack)-1]
		p, err := c.t.pg.View(top.page)
		if err != nil {
			c.err = err
			return
		}
		top.idx++
		if top.idx <= nCells(p) { // interior has nCells+1 children
			if c.descendMin(interiorChild(p, top.idx)) {
				return
			}
			continue // empty subtree: keep advancing at this level
		}
		c.stack = c.stack[:len(c.stack)-1]
	}
}

// descendMin pushes the path to the smallest key under id; returns
// true if it found a leaf cell. Deletes can empty whole leaves (the
// tree does not rebalance), so the minimum is not always down the
// leftmost path: each interior level tries its children left to right
// until one subtree yields a cell.
func (c *Cursor) descendMin(id pager.PageID) bool {
	p, err := c.t.pg.View(id)
	if err != nil {
		c.err = err
		return false
	}
	if pageType(p) == typeLeaf {
		if nCells(p) == 0 {
			return false
		}
		c.stack = append(c.stack, cursorLevel{page: id, idx: 0})
		c.valid = true
		return true
	}
	for i := 0; i <= nCells(p); i++ {
		c.stack = append(c.stack, cursorLevel{page: id, idx: i})
		if c.descendMin(interiorChild(p, i)) {
			return true
		}
		c.stack = c.stack[:len(c.stack)-1]
		if c.err != nil {
			return false
		}
	}
	return false
}

// Valid reports whether the cursor is on a cell.
func (c *Cursor) Valid() bool { return c.valid }

// Err returns the first I/O error the cursor hit.
func (c *Cursor) Err() error { return c.err }

// Key returns a copy of the current key.
func (c *Cursor) Key() []byte {
	if !c.valid {
		return nil
	}
	top := c.stack[len(c.stack)-1]
	p, err := c.t.pg.View(top.page)
	if err != nil {
		c.err, c.valid = err, false
		return nil
	}
	return append([]byte(nil), cellKey(p, top.idx)...)
}

// Value returns a copy of the current value (following overflow).
func (c *Cursor) Value() []byte {
	if !c.valid {
		return nil
	}
	top := c.stack[len(c.stack)-1]
	p, err := c.t.pg.View(top.page)
	if err != nil {
		c.err, c.valid = err, false
		return nil
	}
	v, _, err := c.t.materialize(p, top.idx)
	if err != nil {
		c.err, c.valid = err, false
		return nil
	}
	return v
}
