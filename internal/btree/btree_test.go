package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"tatooine/internal/pager"
)

func memTree(t *testing.T) *BTree {
	t.Helper()
	pg, err := pager.Open("", pager.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bt, err := New(pg)
	if err != nil {
		t.Fatal(err)
	}
	return bt
}

func TestInsertGetDelete(t *testing.T) {
	bt := memTree(t)
	if _, err := bt.Insert([]byte("k1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	fresh, err := bt.Insert([]byte("k1"), []byte("v2"))
	if err != nil {
		t.Fatal(err)
	}
	if fresh {
		t.Fatal("re-insert reported fresh")
	}
	v, ok, err := bt.Get([]byte("k1"))
	if err != nil || !ok || string(v) != "v2" {
		t.Fatalf("got %q ok=%v err=%v", v, ok, err)
	}
	deleted, err := bt.Delete([]byte("k1"))
	if err != nil || !deleted {
		t.Fatalf("delete = %v, %v", deleted, err)
	}
	if _, ok, _ := bt.Get([]byte("k1")); ok {
		t.Fatal("key survived delete")
	}
	if deleted, _ := bt.Delete([]byte("k1")); deleted {
		t.Fatal("double delete reported present")
	}
}

// TestRandomAgainstMap drives the tree with a random workload and
// checks it against a Go map + sorted iteration after every phase.
func TestRandomAgainstMap(t *testing.T) {
	bt := memTree(t)
	rng := rand.New(rand.NewSource(7))
	ref := make(map[string]string)

	key := func() string { return fmt.Sprintf("key-%05d", rng.Intn(3000)) }

	for step := 0; step < 12000; step++ {
		k := key()
		switch rng.Intn(3) {
		case 0, 1:
			v := fmt.Sprintf("val-%d-%d", step, rng.Intn(1000))
			fresh, err := bt.Insert([]byte(k), []byte(v))
			if err != nil {
				t.Fatal(err)
			}
			_, existed := ref[k]
			if fresh == existed {
				t.Fatalf("step %d: insert %q fresh=%v but existed=%v", step, k, fresh, existed)
			}
			ref[k] = v
		case 2:
			deleted, err := bt.Delete([]byte(k))
			if err != nil {
				t.Fatal(err)
			}
			_, existed := ref[k]
			if deleted != existed {
				t.Fatalf("step %d: delete %q = %v but existed=%v", step, k, deleted, existed)
			}
			delete(ref, k)
		}
	}

	// Point lookups.
	for k, v := range ref {
		got, ok, err := bt.Get([]byte(k))
		if err != nil {
			t.Fatal(err)
		}
		if !ok || string(got) != v {
			t.Fatalf("get %q = %q,%v want %q", k, got, ok, v)
		}
	}

	// Full ordered scan must equal the sorted reference.
	keys := make([]string, 0, len(ref))
	for k := range ref {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	c := bt.NewCursor()
	c.Seek(nil)
	i := 0
	for ; c.Valid(); c.Next() {
		if i >= len(keys) {
			t.Fatalf("cursor yielded more than %d keys", len(keys))
		}
		if got := string(c.Key()); got != keys[i] {
			t.Fatalf("scan[%d] = %q, want %q", i, got, keys[i])
		}
		if got := string(c.Value()); got != ref[keys[i]] {
			t.Fatalf("scan[%d] value = %q, want %q", i, got, ref[keys[i]])
		}
		i++
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if i != len(keys) {
		t.Fatalf("cursor yielded %d keys, want %d", i, len(keys))
	}
}

func TestSeekPositionsAtLowerBound(t *testing.T) {
	bt := memTree(t)
	for i := 0; i < 100; i += 2 { // even keys only
		k := []byte(fmt.Sprintf("%04d", i))
		if _, err := bt.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	c := bt.NewCursor()
	c.Seek([]byte("0013")) // absent odd key: next even is 0014
	if !c.Valid() || string(c.Key()) != "0014" {
		t.Fatalf("seek landed on %q valid=%v", c.Key(), c.Valid())
	}
	c.Seek([]byte("0098"))
	if !c.Valid() || string(c.Key()) != "0098" {
		t.Fatalf("exact seek landed on %q", c.Key())
	}
	c.Seek([]byte("0099")) // past the end
	if c.Valid() {
		t.Fatalf("seek past end still valid at %q", c.Key())
	}
}

func TestLargeValuesOverflow(t *testing.T) {
	bt := memTree(t)
	big := bytes.Repeat([]byte("abcdefgh"), 4096) // 32 KiB value
	if _, err := bt.Insert([]byte("big"), big); err != nil {
		t.Fatal(err)
	}
	if _, err := bt.Insert([]byte("small"), []byte("s")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := bt.Get([]byte("big"))
	if err != nil || !ok {
		t.Fatalf("get big: %v %v", ok, err)
	}
	if !bytes.Equal(v, big) {
		t.Fatalf("overflow value corrupted: got %d bytes, want %d", len(v), len(big))
	}
	// Replace with a different large value.
	big2 := bytes.Repeat([]byte("12345678"), 2048)
	if _, err := bt.Insert([]byte("big"), big2); err != nil {
		t.Fatal(err)
	}
	v, _, _ = bt.Get([]byte("big"))
	if !bytes.Equal(v, big2) {
		t.Fatal("replacement of overflow value corrupted")
	}
	// Cursor must materialize overflow values too.
	c := bt.NewCursor()
	c.Seek([]byte("big"))
	if !bytes.Equal(c.Value(), big2) {
		t.Fatal("cursor overflow materialization corrupted")
	}
}

func TestKeyTooLong(t *testing.T) {
	bt := memTree(t)
	if _, err := bt.Insert(make([]byte, MaxKey+1), []byte("v")); err == nil {
		t.Fatal("oversized key accepted")
	}
	if _, err := bt.Insert(make([]byte, MaxKey), []byte("v")); err != nil {
		t.Fatalf("max-size key rejected: %v", err)
	}
}

func TestPersistAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bt.db")
	pg, err := pager.Open(path, pager.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bt, err := New(pg)
	if err != nil {
		t.Fatal(err)
	}
	root := bt.Root()
	n := 5000
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%06d", i))
		if _, err := bt.Insert(k, []byte(fmt.Sprintf("value-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := pg.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := pg.Close(); err != nil {
		t.Fatal(err)
	}

	pg2, err := pager.Open(path, pager.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer pg2.Close()
	bt2 := Open(pg2, root)
	for _, i := range []int{0, 1, 42, n / 2, n - 1} {
		k := []byte(fmt.Sprintf("key-%06d", i))
		v, ok, err := bt2.Get(k)
		if err != nil || !ok {
			t.Fatalf("reopen get %s: ok=%v err=%v", k, ok, err)
		}
		if string(v) != fmt.Sprintf("value-%d", i) {
			t.Fatalf("reopen get %s = %q", k, v)
		}
	}
	c := bt2.NewCursor()
	count := 0
	for c.Seek(nil); c.Valid(); c.Next() {
		count++
	}
	if count != n {
		t.Fatalf("reopen scan found %d keys, want %d", count, n)
	}
}

// TestLiveBytesRandomized pins the live-byte counters against a model
// through mixed insert/overwrite/delete/reinsert traffic, including
// overflow-sized values: drift here would skew the store's auto-vacuum
// trigger and its compaction bound.
func TestLiveBytesRandomized(t *testing.T) {
	tr := memTree(t)
	rng := rand.New(rand.NewSource(41))
	model := map[string]int{}
	val := func(n int) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + rng.Intn(26))
		}
		return b
	}
	for step := 0; step < 8000; step++ {
		k := fmt.Sprintf("key%04d", rng.Intn(1200))
		switch rng.Intn(3) {
		case 0, 1:
			n := rng.Intn(200)
			if rng.Intn(20) == 0 {
				n = 2000 + rng.Intn(6000) // overflow chains
			}
			v := val(n)
			if _, err := tr.Insert([]byte(k), v); err != nil {
				t.Fatal(err)
			}
			model[k] = n
		case 2:
			if _, err := tr.Delete([]byte(k)); err != nil {
				t.Fatal(err)
			}
			delete(model, k)
		}
		if step%1000 == 0 {
			var want int64
			for k, n := range model {
				want += int64(len(k) + n)
			}
			if got := tr.LiveBytes(); got != want {
				t.Fatalf("step %d: live bytes = %d, model = %d", step, got, want)
			}
		}
	}
	var want int64
	for k, n := range model {
		want += int64(len(k) + n)
	}
	if got := tr.LiveBytes(); got != want {
		t.Fatalf("final live bytes = %d, model = %d", got, want)
	}
}
