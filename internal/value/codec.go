package value

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"
)

// Binary row codec shared by the relational store and the executor's
// spill files. Layout:
//
//	u16 column count, then per value:
//	  u8 kind, then a kind-specific payload:
//	    Null   —
//	    String u32 length + bytes
//	    Int    u64 big-endian (two's complement)
//	    Float  u64 big-endian IEEE-754 bits
//	    Bool   u8
//	    Time   u32 length + RFC3339Nano bytes (values are stored UTC)

// EncodeRow serializes r with the row codec.
func EncodeRow(r Row) []byte {
	buf := make([]byte, 2, 2+8*len(r))
	binary.BigEndian.PutUint16(buf, uint16(len(r)))
	var u64 [8]byte
	var u32 [4]byte
	for _, v := range r {
		buf = append(buf, byte(v.Kind()))
		switch v.Kind() {
		case Null:
		case String:
			s := v.Str()
			binary.BigEndian.PutUint32(u32[:], uint32(len(s)))
			buf = append(buf, u32[:]...)
			buf = append(buf, s...)
		case Int:
			binary.BigEndian.PutUint64(u64[:], uint64(v.Int()))
			buf = append(buf, u64[:]...)
		case Float:
			binary.BigEndian.PutUint64(u64[:], math.Float64bits(v.Float()))
			buf = append(buf, u64[:]...)
		case Bool:
			if v.Bool() {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		case Time:
			s := v.Time().UTC().Format(time.RFC3339Nano)
			binary.BigEndian.PutUint32(u32[:], uint32(len(s)))
			buf = append(buf, u32[:]...)
			buf = append(buf, s...)
		}
	}
	return buf
}

// DecodeRow deserializes a row encoded by EncodeRow.
func DecodeRow(b []byte) (Row, error) {
	return decodeRowInto(b, nil)
}

// DecodeRowProject decodes only the columns need[i] marks true,
// leaving Null placeholders elsewhere so positional references stay
// valid. Columns beyond len(need) are skipped. Unneeded variable-width
// values are skipped without materializing their bytes — the point of
// column-pruned scans.
func DecodeRowProject(b []byte, need []bool) (Row, error) {
	return decodeRowInto(b, need)
}

func decodeRowInto(b []byte, need []bool) (Row, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("value: row codec: short buffer")
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	row := make(Row, 0, n)
	varlen := func() ([]byte, error) {
		if len(b) < 4 {
			return nil, fmt.Errorf("value: row codec: truncated length")
		}
		l := int(binary.BigEndian.Uint32(b))
		b = b[4:]
		if len(b) < l {
			return nil, fmt.Errorf("value: row codec: truncated string")
		}
		s := b[:l]
		b = b[l:]
		return s, nil
	}
	for i := 0; i < n; i++ {
		if len(b) < 1 {
			return nil, fmt.Errorf("value: row codec: truncated kind")
		}
		k := Kind(b[0])
		b = b[1:]
		want := need == nil || (i < len(need) && need[i])
		switch k {
		case Null:
			row = append(row, NewNull())
		case String:
			s, err := varlen()
			if err != nil {
				return nil, err
			}
			if want {
				row = append(row, NewString(string(s)))
			} else {
				row = append(row, NewNull())
			}
		case Int:
			if len(b) < 8 {
				return nil, fmt.Errorf("value: row codec: truncated int")
			}
			if want {
				row = append(row, NewInt(int64(binary.BigEndian.Uint64(b))))
			} else {
				row = append(row, NewNull())
			}
			b = b[8:]
		case Float:
			if len(b) < 8 {
				return nil, fmt.Errorf("value: row codec: truncated float")
			}
			if want {
				row = append(row, NewFloat(math.Float64frombits(binary.BigEndian.Uint64(b))))
			} else {
				row = append(row, NewNull())
			}
			b = b[8:]
		case Bool:
			if len(b) < 1 {
				return nil, fmt.Errorf("value: row codec: truncated bool")
			}
			if want {
				row = append(row, NewBool(b[0] != 0))
			} else {
				row = append(row, NewNull())
			}
			b = b[1:]
		case Time:
			s, err := varlen()
			if err != nil {
				return nil, err
			}
			if want {
				t, err := time.Parse(time.RFC3339Nano, string(s))
				if err != nil {
					return nil, fmt.Errorf("value: row codec: bad time %q: %v", s, err)
				}
				row = append(row, NewTime(t))
			} else {
				row = append(row, NewNull())
			}
		default:
			return nil, fmt.Errorf("value: row codec: unknown kind %d", k)
		}
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("value: row codec: %d trailing bytes", len(b))
	}
	return row, nil
}
