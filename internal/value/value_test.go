package value

import (
	"testing"
	"testing/quick"
	"time"
)

func TestKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{NewNull(), Null, "NULL"},
		{NewString("x"), String, "x"},
		{NewInt(-42), Int, "-42"},
		{NewFloat(2.5), Float, "2.5"},
		{NewBool(true), Bool, "true"},
		{NewTime(time.Date(2015, 11, 13, 21, 0, 0, 0, time.UTC)), Time, "2015-11-13T21:00:00Z"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("Kind(%v) = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if c.v.String() != c.str {
			t.Errorf("String(%v) = %q, want %q", c.v, c.v.String(), c.str)
		}
	}
}

func TestEqualCrossNumeric(t *testing.T) {
	if !Equal(NewInt(3), NewFloat(3.0)) {
		t.Error("3 should equal 3.0")
	}
	if Equal(NewInt(3), NewFloat(3.5)) {
		t.Error("3 should not equal 3.5")
	}
	if Equal(NewString("3"), NewInt(3)) {
		t.Error("'3' should not equal 3")
	}
	if Equal(NewNull(), NewNull()) {
		t.Error("NULL must not equal NULL")
	}
}

func TestKeyConsistentWithEqual(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := NewInt(a), NewFloat(float64(b))
		if Equal(va, vb) {
			return va.Key() == vb.Key()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Spot check: int/float key equality for equal values.
	if NewInt(7).Key() != NewFloat(7).Key() {
		t.Error("7 and 7.0 must share a key")
	}
	if NewString("7").Key() == NewInt(7).Key() {
		t.Error("'7' and 7 must not share a key")
	}
}

func TestCompareOrdering(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewFloat(2.5), NewInt(2), 1},
		{NewString("a"), NewString("b"), -1},
		{NewBool(false), NewBool(true), -1},
		{NewNull(), NewInt(0), -1},
		{NewInt(0), NewNull(), 1},
		{NewNull(), NewNull(), 0},
		{NewTime(time.Unix(1, 0)), NewTime(time.Unix(2, 0)), -1},
	}
	for _, c := range cases {
		got, _ := Compare(c.a, c.b)
		if got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareAntisymmetricProperty(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := NewInt(a), NewInt(b)
		ab, _ := Compare(va, vb)
		ba, _ := Compare(vb, va)
		return ab == -ba
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		kind Kind
	}{
		{"42", Int},
		{"-7", Int},
		{"3.14", Float},
		{"true", Bool},
		{"FALSE", Bool},
		{"2015-11-13T21:00:00Z", Time},
		{"hello", String},
		{"12abc", String},
	}
	for _, c := range cases {
		if got := Parse(c.in, true).Kind(); got != c.kind {
			t.Errorf("Parse(%q) kind = %v, want %v", c.in, got, c.kind)
		}
	}
	if !Parse("", true).IsNull() {
		t.Error("empty with nullEmpty should be Null")
	}
	if Parse("", false).Kind() != String {
		t.Error("empty without nullEmpty should be String")
	}
}

func TestCoerce(t *testing.T) {
	if v, ok := Coerce(NewString("42"), Int); !ok || v.Int() != 42 {
		t.Errorf("Coerce('42', Int) = %v, %v", v, ok)
	}
	if v, ok := Coerce(NewInt(42), Float); !ok || v.Float() != 42 {
		t.Errorf("Coerce(42, Float) = %v, %v", v, ok)
	}
	if v, ok := Coerce(NewFloat(3.9), Int); !ok || v.Int() != 3 {
		t.Errorf("Coerce(3.9, Int) = %v, %v", v, ok)
	}
	if _, ok := Coerce(NewString("abc"), Int); ok {
		t.Error("Coerce('abc', Int) should fail")
	}
	if v, ok := Coerce(NewString("2015-11-14"), Time); !ok || v.Time().Year() != 2015 {
		t.Errorf("Coerce(date) = %v, %v", v, ok)
	}
	if v, ok := Coerce(NewString("yes"), Bool); !ok || !v.Bool() {
		t.Errorf("Coerce('yes', Bool) = %v, %v", v, ok)
	}
	if v, ok := Coerce(NewInt(5), Int); !ok || v.Int() != 5 {
		t.Error("identity coerce failed")
	}
}

func TestRowKeyInjectiveOnBoundaries(t *testing.T) {
	// Rows ["ab","c"] and ["a","bc"] must have different keys.
	r1 := Row{NewString("ab"), NewString("c")}
	r2 := Row{NewString("a"), NewString("bc")}
	if r1.Key() == r2.Key() {
		t.Error("row key must encode value boundaries")
	}
}

func TestRowClone(t *testing.T) {
	r := Row{NewInt(1), NewString("x")}
	c := r.Clone()
	c[0] = NewInt(99)
	if r[0].Int() != 1 {
		t.Error("Clone shares backing array")
	}
}

func TestIntFloatAccessors(t *testing.T) {
	if NewFloat(2.9).Int() != 2 {
		t.Error("Float→Int truncation")
	}
	if NewInt(2).Float() != 2.0 {
		t.Error("Int→Float widening")
	}
	if NewBool(true).Int() != 1 || NewBool(false).Int() != 0 {
		t.Error("Bool→Int conversion")
	}
	if NewString("x").Int() != 0 {
		t.Error("String Int() should be 0")
	}
}
