// Package value defines the dynamic value model shared by TATOOINE's
// substrates and its mixed-query engine. Tuples flowing between the
// relational store, the full-text store, the RDF store and the mediator
// are rows of Values, so joins across heterogeneous sources compare
// values uniformly.
package value

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the dynamic types.
type Kind uint8

const (
	Null Kind = iota
	String
	Int
	Float
	Bool
	Time
)

func (k Kind) String() string {
	switch k {
	case Null:
		return "null"
	case String:
		return "string"
	case Int:
		return "int"
	case Float:
		return "float"
	case Bool:
		return "bool"
	case Time:
		return "time"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is one dynamically-typed value. The zero Value is Null.
type Value struct {
	kind Kind
	s    string
	i    int64
	f    float64
	b    bool
	t    time.Time
}

// NewNull returns the null value.
func NewNull() Value { return Value{} }

// NewString returns a string value.
func NewString(s string) Value { return Value{kind: String, s: s} }

// NewInt returns an integer value.
func NewInt(i int64) Value { return Value{kind: Int, i: i} }

// NewFloat returns a float value.
func NewFloat(f float64) Value { return Value{kind: Float, f: f} }

// NewBool returns a boolean value.
func NewBool(b bool) Value { return Value{kind: Bool, b: b} }

// NewTime returns a timestamp value (stored in UTC).
func NewTime(t time.Time) Value { return Value{kind: Time, t: t.UTC()} }

// Kind returns the value's dynamic type.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.kind == Null }

// Str returns the string payload (only meaningful for String values).
func (v Value) Str() string { return v.s }

// Int returns the integer payload, converting Float and Bool.
func (v Value) Int() int64 {
	switch v.kind {
	case Int:
		return v.i
	case Float:
		return int64(v.f)
	case Bool:
		if v.b {
			return 1
		}
		return 0
	default:
		return 0
	}
}

// Float returns the float payload, converting Int.
func (v Value) Float() float64 {
	switch v.kind {
	case Float:
		return v.f
	case Int:
		return float64(v.i)
	default:
		return 0
	}
}

// Bool returns the boolean payload.
func (v Value) Bool() bool { return v.kind == Bool && v.b }

// Time returns the timestamp payload.
func (v Value) Time() time.Time { return v.t }

// String renders the value for display.
func (v Value) String() string {
	switch v.kind {
	case Null:
		return "NULL"
	case String:
		return v.s
	case Int:
		return strconv.FormatInt(v.i, 10)
	case Float:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case Bool:
		return strconv.FormatBool(v.b)
	case Time:
		return v.t.Format(time.RFC3339)
	default:
		return "?"
	}
}

// Key returns a string usable as a join/hash key: equal values (under
// Equal, including cross-numeric equality) produce equal keys.
func (v Value) Key() string {
	switch v.kind {
	case Null:
		return "\x00n"
	case String:
		return "s" + v.s
	case Int:
		// Integral floats and ints must share keys (Equal(1, 1.0) is true).
		return "f" + strconv.FormatFloat(float64(v.i), 'g', -1, 64)
	case Float:
		return "f" + strconv.FormatFloat(v.f, 'g', -1, 64)
	case Bool:
		return "b" + strconv.FormatBool(v.b)
	case Time:
		return "t" + v.t.Format(time.RFC3339Nano)
	default:
		return "?"
	}
}

// Equal reports semantic equality. Numeric values compare across Int and
// Float. Null equals nothing, including Null (SQL semantics are applied
// by callers that need them; Equal(Null,Null) is false).
func Equal(a, b Value) bool {
	if a.kind == Null || b.kind == Null {
		return false
	}
	if a.isNumeric() && b.isNumeric() {
		return a.Float() == b.Float()
	}
	if a.kind != b.kind {
		return false
	}
	switch a.kind {
	case String:
		return a.s == b.s
	case Bool:
		return a.b == b.b
	case Time:
		return a.t.Equal(b.t)
	default:
		return false
	}
}

func (v Value) isNumeric() bool { return v.kind == Int || v.kind == Float }

// Compare orders a relative to b: -1, 0, +1. Nulls sort first; values of
// different non-numeric kinds order by kind. The second return value is
// false when the comparison is not meaningful (kept for callers that
// must distinguish, e.g. typed predicates).
func Compare(a, b Value) (int, bool) {
	if a.kind == Null && b.kind == Null {
		return 0, true
	}
	if a.kind == Null {
		return -1, true
	}
	if b.kind == Null {
		return 1, true
	}
	if a.isNumeric() && b.isNumeric() {
		af, bf := a.Float(), b.Float()
		switch {
		case af < bf:
			return -1, true
		case af > bf:
			return 1, true
		default:
			return 0, true
		}
	}
	if a.kind != b.kind {
		if a.kind < b.kind {
			return -1, false
		}
		return 1, false
	}
	switch a.kind {
	case String:
		return strings.Compare(a.s, b.s), true
	case Bool:
		switch {
		case a.b == b.b:
			return 0, true
		case !a.b:
			return -1, true
		default:
			return 1, true
		}
	case Time:
		switch {
		case a.t.Before(b.t):
			return -1, true
		case a.t.After(b.t):
			return 1, true
		default:
			return 0, true
		}
	}
	return 0, false
}

// Less is Compare < 0.
func Less(a, b Value) bool {
	c, _ := Compare(a, b)
	return c < 0
}

// Parse converts a string to the most specific Value: integer, float,
// boolean, RFC3339 time, else string. Empty strings parse to Null when
// nullEmpty is true.
func Parse(s string, nullEmpty bool) Value {
	if s == "" {
		if nullEmpty {
			return NewNull()
		}
		return NewString("")
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return NewInt(i)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil && !math.IsInf(f, 0) && !math.IsNaN(f) {
		return NewFloat(f)
	}
	switch s {
	case "true", "TRUE", "True":
		return NewBool(true)
	case "false", "FALSE", "False":
		return NewBool(false)
	}
	if t, err := time.Parse(time.RFC3339, s); err == nil {
		return NewTime(t)
	}
	return NewString(s)
}

// Coerce converts v to kind k when a lossless or conventional conversion
// exists; otherwise it returns v unchanged and false.
func Coerce(v Value, k Kind) (Value, bool) {
	if v.kind == k {
		return v, true
	}
	switch k {
	case String:
		return NewString(v.String()), true
	case Int:
		switch v.kind {
		case Float:
			return NewInt(int64(v.f)), true
		case String:
			if i, err := strconv.ParseInt(strings.TrimSpace(v.s), 10, 64); err == nil {
				return NewInt(i), true
			}
		case Bool:
			return NewInt(v.Int()), true
		}
	case Float:
		switch v.kind {
		case Int:
			return NewFloat(float64(v.i)), true
		case String:
			if f, err := strconv.ParseFloat(strings.TrimSpace(v.s), 64); err == nil {
				return NewFloat(f), true
			}
		}
	case Bool:
		if v.kind == String {
			switch strings.ToLower(v.s) {
			case "true", "1", "yes":
				return NewBool(true), true
			case "false", "0", "no":
				return NewBool(false), true
			}
		}
	case Time:
		if v.kind == String {
			for _, layout := range []string{time.RFC3339, "2006-01-02 15:04:05", "2006-01-02"} {
				if t, err := time.Parse(layout, v.s); err == nil {
					return NewTime(t), true
				}
			}
		}
	}
	return v, false
}

// Row is an ordered tuple of values.
type Row []Value

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Frame appends a length-framed component ("len:content") to b. It is
// the one encoding every collision-critical key builder in the system
// uses (Row.Key, join keys, sub-query cache keys, CMQ canonical keys):
// framing each component makes the concatenation uniquely decodable,
// so no two distinct component sequences produce the same key.
func Frame(b *strings.Builder, s string) {
	b.WriteString(strconv.Itoa(len(s)))
	b.WriteByte(':')
	b.WriteString(s)
}

// HasNull reports whether any value in the row is Null.
func (r Row) HasNull() bool {
	for _, v := range r {
		if v.IsNull() {
			return true
		}
	}
	return false
}

// Key concatenates the value keys; equal rows produce equal keys.
func (r Row) Key() string {
	var b strings.Builder
	for _, v := range r {
		Frame(&b, v.Key())
	}
	return b.String()
}
