package value

import (
	"encoding/json"
	"fmt"
	"time"
)

// wireValue is the JSON shape of a Value on the federation protocol:
// an explicit kind tag plus a string payload keeps round trips exact
// (no float/int confusion, no timezone loss).
type wireValue struct {
	K string `json:"k"`
	V string `json:"v,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (v Value) MarshalJSON() ([]byte, error) {
	w := wireValue{K: v.Kind().String()}
	if v.kind != Null {
		if v.kind == Time {
			w.V = v.t.Format(time.RFC3339Nano)
		} else {
			w.V = v.String()
		}
	}
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler.
func (v *Value) UnmarshalJSON(data []byte) error {
	var w wireValue
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	switch w.K {
	case "null":
		*v = NewNull()
	case "string":
		*v = NewString(w.V)
	case "int":
		parsed, ok := Coerce(NewString(w.V), Int)
		if !ok {
			return fmt.Errorf("value: bad int payload %q", w.V)
		}
		*v = parsed
	case "float":
		parsed, ok := Coerce(NewString(w.V), Float)
		if !ok {
			return fmt.Errorf("value: bad float payload %q", w.V)
		}
		*v = parsed
	case "bool":
		parsed, ok := Coerce(NewString(w.V), Bool)
		if !ok {
			return fmt.Errorf("value: bad bool payload %q", w.V)
		}
		*v = parsed
	case "time":
		t, err := time.Parse(time.RFC3339Nano, w.V)
		if err != nil {
			return fmt.Errorf("value: bad time payload %q: %v", w.V, err)
		}
		*v = NewTime(t)
	default:
		return fmt.Errorf("value: unknown kind %q", w.K)
	}
	return nil
}
