package value

import (
	"encoding/json"
	"testing"
	"testing/quick"
	"time"
)

func TestJSONRoundTripAllKinds(t *testing.T) {
	vals := []Value{
		NewNull(),
		NewString("héllo\nworld"),
		NewString(""),
		NewInt(-9007199254740993), // beyond float53 precision
		NewFloat(3.141592653589793),
		NewBool(true),
		NewBool(false),
		NewTime(time.Date(2016, 3, 1, 3, 42, 31, 123456789, time.UTC)),
	}
	for _, v := range vals {
		data, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("marshal %v: %v", v, err)
		}
		var back Value
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if back.Kind() != v.Kind() {
			t.Errorf("kind: %v → %v", v.Kind(), back.Kind())
		}
		if v.Kind() != Null && !Equal(v, back) {
			t.Errorf("value: %v → %v", v, back)
		}
		if v.Kind() == Time && !v.Time().Equal(back.Time()) {
			t.Errorf("time precision lost: %v vs %v", v.Time(), back.Time())
		}
	}
}

func TestJSONRowRoundTrip(t *testing.T) {
	row := Row{NewString("x"), NewInt(7), NewNull()}
	data, err := json.Marshal(row)
	if err != nil {
		t.Fatal(err)
	}
	var back Row
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 || !Equal(back[1], NewInt(7)) || !back[2].IsNull() {
		t.Errorf("row: %+v", back)
	}
}

func TestJSONUnmarshalErrors(t *testing.T) {
	cases := []string{
		`{"k":"unknown","v":"x"}`,
		`{"k":"int","v":"abc"}`,
		`{"k":"float","v":"xx"}`,
		`{"k":"bool","v":"maybe"}`,
		`{"k":"time","v":"not-a-time"}`,
		`[1,2]`,
	}
	for _, c := range cases {
		var v Value
		if err := json.Unmarshal([]byte(c), &v); err == nil {
			t.Errorf("expected error for %s", c)
		}
	}
}

// Property: int round trips exactly for all int64 values.
func TestJSONIntProperty(t *testing.T) {
	f := func(i int64) bool {
		data, err := json.Marshal(NewInt(i))
		if err != nil {
			return false
		}
		var back Value
		if err := json.Unmarshal(data, &back); err != nil {
			return false
		}
		return back.Kind() == Int && back.Int() == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: strings round trip byte-exactly.
func TestJSONStringProperty(t *testing.T) {
	f := func(s string) bool {
		data, err := json.Marshal(NewString(s))
		if err != nil {
			return false
		}
		var back Value
		if err := json.Unmarshal(data, &back); err != nil {
			return false
		}
		return back.Kind() == String && back.Str() == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLessAndAccessors(t *testing.T) {
	if !Less(NewInt(1), NewInt(2)) || Less(NewInt(2), NewInt(1)) {
		t.Error("Less")
	}
	ts := time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)
	if NewTime(ts).Time() != ts {
		t.Error("Time accessor")
	}
	if NewBool(true).Bool() != true || NewString("x").Bool() != false {
		t.Error("Bool accessor")
	}
	if NewString("s").Str() != "s" {
		t.Error("Str accessor")
	}
	if Null.String() != "null" || Time.String() != "time" {
		t.Error("Kind.String")
	}
}
