package digest

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
)

// Wire formats: digests travel between federation endpoints and
// mediators, so every component (Bloom filter bits included) has a
// JSON encoding. Decoded digests answer Lookup/MayContain/Original
// exactly like locally built ones.
//
// Every encoded digest and bloom carries a version field ("v"). A
// mediator that decodes a digest from a peer speaking a different
// version keeps it for keyword search but refuses to prune with it
// (Digest.PruneCapable), and a bloom decoded at an unknown version
// degrades to a filter whose MayContain always answers true — older
// peers therefore lose the optimization, never answers.

// WireVersion is the digest wire-format version this build speaks.
// Bump it whenever hash functions, normalization, or bit layout
// change in a way that would make cross-version membership tests lie.
const WireVersion = 1

type wireBloom struct {
	V      int    `json:"v"`
	M      uint64 `json:"m"`
	K      int    `json:"k"`
	Added  int    `json:"added"`
	Bits64 string `json:"bits"` // base64 of little-endian uint64 words
}

type wireHistogram struct {
	Bounds []float64 `json:"bounds"`
	Counts []int     `json:"counts"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
	N      int       `json:"n"`
}

type wireValueSet struct {
	Count        int               `json:"count"`
	NumericCount int               `json:"numericCount"`
	TimeCount    int               `json:"timeCount"`
	Exact        []string          `json:"exact,omitempty"`
	Samples      []string          `json:"samples,omitempty"`
	Originals    map[string]string `json:"originals,omitempty"`
	Bloom        *wireBloom        `json:"bloom,omitempty"`
	Hist         *wireHistogram    `json:"hist,omitempty"`
}

type wireNode struct {
	ID       string        `json:"id"`
	Source   string        `json:"source"`
	Label    string        `json:"label"`
	Kind     uint8         `json:"kind"`
	Analyzed bool          `json:"analyzed,omitempty"`
	Values   *wireValueSet `json:"values,omitempty"`
}

type wireDigest struct {
	V      int        `json:"v"`
	Source string     `json:"source"`
	Nodes  []wireNode `json:"nodes"`
	Edges  []Edge     `json:"edges"`
}

// MarshalJSON implements json.Marshaler for Bloom.
func (b *Bloom) MarshalJSON() ([]byte, error) {
	raw := make([]byte, 8*len(b.bits))
	for i, w := range b.bits {
		binary.LittleEndian.PutUint64(raw[i*8:], w)
	}
	return json.Marshal(wireBloom{
		V:      WireVersion,
		M:      b.m,
		K:      b.k,
		Added:  b.nAdded,
		Bits64: base64.StdEncoding.EncodeToString(raw),
	})
}

// UnmarshalJSON implements json.Unmarshaler for Bloom. A bloom encoded
// at a different wire version decodes to a pass-through filter (every
// MayContain answers true): membership bits hashed under another
// scheme must never be trusted to say "absent".
func (b *Bloom) UnmarshalJSON(data []byte) error {
	var w wireBloom
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if w.V != WireVersion {
		*b = Bloom{bits: make([]uint64, 1), m: 64, k: 0, nAdded: w.Added}
		return nil
	}
	raw, err := base64.StdEncoding.DecodeString(w.Bits64)
	if err != nil {
		return fmt.Errorf("digest: bloom bits: %w", err)
	}
	if len(raw)%8 != 0 || uint64(len(raw))*8 < w.M {
		return fmt.Errorf("digest: bloom bits length %d inconsistent with m=%d", len(raw), w.M)
	}
	b.m = w.M
	b.k = w.K
	b.nAdded = w.Added
	b.bits = make([]uint64, len(raw)/8)
	for i := range b.bits {
		b.bits[i] = binary.LittleEndian.Uint64(raw[i*8:])
	}
	return nil
}

func (vs *ValueSet) toWire() *wireValueSet {
	if vs == nil {
		return nil
	}
	w := &wireValueSet{
		Count:        vs.count,
		NumericCount: vs.numericCount,
		TimeCount:    vs.timeCount,
		Samples:      vs.samples,
		Originals:    vs.originals,
	}
	if vs.exact != nil {
		for k := range vs.exact {
			w.Exact = append(w.Exact, k)
		}
	}
	if vs.bloom != nil {
		raw := make([]byte, 8*len(vs.bloom.bits))
		for i, word := range vs.bloom.bits {
			binary.LittleEndian.PutUint64(raw[i*8:], word)
		}
		w.Bloom = &wireBloom{
			V:      WireVersion,
			M:      vs.bloom.m,
			K:      vs.bloom.k,
			Added:  vs.bloom.nAdded,
			Bits64: base64.StdEncoding.EncodeToString(raw),
		}
	}
	if vs.hist != nil {
		w.Hist = &wireHistogram{
			Bounds: vs.hist.Bounds,
			Counts: vs.hist.Counts,
			Min:    vs.hist.Min,
			Max:    vs.hist.Max,
			N:      vs.hist.N,
		}
	}
	return w
}

func valueSetFromWire(w *wireValueSet) (*ValueSet, error) {
	if w == nil {
		return nil, nil
	}
	vs := &ValueSet{
		count:        w.Count,
		numericCount: w.NumericCount,
		timeCount:    w.TimeCount,
		samples:      w.Samples,
		originals:    w.Originals,
	}
	if len(w.Exact) > 0 {
		vs.exact = make(map[string]struct{}, len(w.Exact))
		for _, k := range w.Exact {
			vs.exact[k] = struct{}{}
		}
	}
	if w.Bloom != nil {
		data, err := json.Marshal(w.Bloom)
		if err != nil {
			return nil, err
		}
		vs.bloom = &Bloom{}
		if err := vs.bloom.UnmarshalJSON(data); err != nil {
			return nil, err
		}
	}
	if w.Hist != nil {
		vs.hist = &Histogram{
			Bounds: w.Hist.Bounds,
			Counts: w.Hist.Counts,
			Min:    w.Hist.Min,
			Max:    w.Hist.Max,
			N:      w.Hist.N,
		}
	}
	return vs, nil
}

// MarshalJSON implements json.Marshaler for Digest. The current
// WireVersion is always stamped: locally built digests are by
// definition this build's format.
func (d *Digest) MarshalJSON() ([]byte, error) {
	w := wireDigest{V: WireVersion, Source: d.Source, Edges: d.Edges}
	for _, n := range d.NodeList() {
		w.Nodes = append(w.Nodes, wireNode{
			ID:       n.ID,
			Source:   n.Source,
			Label:    n.Label,
			Kind:     uint8(n.Kind),
			Analyzed: n.Analyzed,
			Values:   n.Values.toWire(),
		})
	}
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler for Digest. A digest from
// a peer speaking another wire version still decodes (keyword lookup
// stays useful) but records the foreign version so PruneCapable — and
// with it semi-join pruning and estimate refinement — refuses it.
func (d *Digest) UnmarshalJSON(data []byte) error {
	var w wireDigest
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	d.Version = w.V
	d.Source = w.Source
	d.Edges = w.Edges
	d.Nodes = make(map[string]*Node, len(w.Nodes))
	for _, wn := range w.Nodes {
		vs, err := valueSetFromWire(wn.Values)
		if err != nil {
			return fmt.Errorf("digest: node %s: %w", wn.ID, err)
		}
		d.Nodes[wn.ID] = &Node{
			ID:       wn.ID,
			Source:   wn.Source,
			Label:    wn.Label,
			Kind:     NodeKind(wn.Kind),
			Analyzed: wn.Analyzed,
			Values:   vs,
		}
	}
	return nil
}
