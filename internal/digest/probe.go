package digest

import (
	"math"
	"strings"

	"tatooine/internal/fulltext"
	"tatooine/internal/rdf"
	"tatooine/internal/source"
	"tatooine/internal/sqlparse"
	"tatooine/internal/value"
)

// This file turns digests into executable statistics: ProbeKey maps a
// binding value to the normalized key digests index, ParamMatcher maps
// a sub-query's parameter positions to the digest nodes their values
// must appear in (semi-join pruning), and RefineEstimate derives row
// estimates from value-set counts and histograms (digest-driven
// planning).
//
// Safety contract: both digest construction (ValueSet.Add) and probing
// go through Value.String() + Normalize, and normalization is a
// function — equal raw values always produce equal keys. A membership
// "no" from an exact set or Bloom filter therefore proves the binding
// cannot match; a "yes" proves nothing (false positives just cost a
// wasted probe). Pruning additionally refuses: Null or
// empty-normalizing values (they never entered the digest), analyzed
// full-text paths (CONTAINS semantics, not equality), aggregate SQL
// (an empty match still yields a row), optional BGP patterns, and
// digests decoded at a foreign wire version (PruneCapable).

// ProbeKey maps a binding value to its digest key. ok is false when
// the value cannot be tested against a digest (Null, or nothing
// survives normalization) — such bindings must never be pruned.
func ProbeKey(v value.Value) (string, bool) {
	if v.IsNull() {
		return "", false
	}
	key := Normalize(v.String())
	if key == "" {
		return "", false
	}
	return key, true
}

// MayContainKey is the pruning-grade membership test for a
// pre-normalized key: exact set when it survived the budget, Bloom
// filter otherwise. Unlike MayContain it skips the NumericOnly keyword
// heuristic, which may reject keys that were genuinely added —
// acceptable for ranked keyword lookup, fatal for pruning.
func (vs *ValueSet) MayContainKey(key string) bool {
	if vs == nil || key == "" {
		return true
	}
	if vs.exact != nil {
		_, ok := vs.exact[key]
		return ok
	}
	if vs.bloom == nil {
		return true
	}
	return vs.bloom.MayContain(key)
}

// ParamMatcher maps each parameter position of one sub-query to the
// digest nodes whose value sets the bound value must appear in. A
// binding failing any mapped node's membership test cannot contribute
// rows and may be skipped before the probe is dispatched.
type ParamMatcher struct {
	nodes [][]*Node // per parameter position; empty = cannot prune
}

// NewParamMatcher analyzes q against d. It returns nil when nothing
// can be pruned: no digest, foreign wire version, unparsable text, or
// no parameter position resolving to a digested equality target —
// callers treat nil as "probe everything".
func NewParamMatcher(d *Digest, q source.SubQuery, prefixes map[string]string) *ParamMatcher {
	if !d.PruneCapable() || len(q.InVars) == 0 {
		return nil
	}
	m := &ParamMatcher{nodes: make([][]*Node, len(q.InVars))}
	switch q.Language {
	case source.LangSQL:
		m.analyzeSQL(d, q.Text)
	case source.LangBGP:
		m.analyzeBGP(d, q, prefixes)
	case source.LangSearch:
		m.analyzeSearch(d, q.Text)
	default:
		return nil
	}
	if !m.Prunable() {
		return nil
	}
	return m
}

// Prunable reports whether at least one parameter position is covered.
func (m *ParamMatcher) Prunable() bool {
	if m == nil {
		return false
	}
	for _, ns := range m.nodes {
		if len(ns) > 0 {
			return true
		}
	}
	return false
}

// MayMatch reports whether the binding tuple may produce rows. False
// is definitive (some equality target provably lacks the value); true
// means "probe it".
func (m *ParamMatcher) MayMatch(params value.Row) bool {
	if m == nil {
		return true
	}
	for i, ns := range m.nodes {
		if len(ns) == 0 || i >= len(params) {
			continue
		}
		key, ok := ProbeKey(params[i])
		if !ok {
			continue
		}
		for _, n := range ns {
			if !n.Values.MayContainKey(key) {
				return false
			}
		}
	}
	return true
}

// Filters returns one wire-shippable membership filter per parameter
// position (nil where the position is uncovered or the node keeps no
// Bloom filter), so federation endpoints can re-run the same pruning
// server-side.
func (m *ParamMatcher) Filters() []source.ProbeFilter {
	if m == nil {
		return nil
	}
	out := make([]source.ProbeFilter, len(m.nodes))
	any := false
	for i, ns := range m.nodes {
		for _, n := range ns {
			if b := n.Values.Bloom(); b != nil && b.Added() >= 0 {
				out[i] = b
				any = true
				break
			}
		}
	}
	if !any {
		return nil
	}
	return out
}

func (m *ParamMatcher) add(pos int, n *Node) {
	if pos < 0 || pos >= len(m.nodes) || n == nil || n.Values == nil || n.Analyzed {
		return
	}
	m.nodes[pos] = append(m.nodes[pos], n)
}

// analyzeSQL maps top-level `col = ?` conjuncts to attribute nodes.
// Aggregate statements are refused entirely: an empty WHERE match
// still yields one output row, so skipping the probe would change
// results.
func (m *ParamMatcher) analyzeSQL(d *Digest, text string) {
	stmt, err := sqlparse.ParseSelect(text)
	if err != nil || stmt.Where == nil {
		return
	}
	for _, it := range stmt.Columns {
		if sqlparse.HasAggregate(it.Expr) {
			return
		}
	}
	byLabel := lowerLabelIndex(d)
	tables := sqlTableBindings(stmt)
	for _, c := range sqlConjuncts(stmt.Where) {
		be, ok := c.(*sqlparse.BinaryExpr)
		if !ok || be.Op != sqlparse.OpEq {
			continue
		}
		col, p := sqlEqColParam(be)
		if col == nil || p == nil {
			continue
		}
		if n := resolveAttr(byLabel, tables, col); n != nil {
			m.add(p.Index, n)
		}
	}
}

// analyzeBGP maps pre-bound variables to property nodes (variable in
// object position of a constant-predicate pattern) and class nodes
// (variable in subject position of a constant rdf:type pattern). Only
// required patterns count — OPTIONAL groups may leave the variable
// unmatched without emptying the solution.
func (m *ParamMatcher) analyzeBGP(d *Digest, q source.SubQuery, prefixes map[string]string) {
	bgp, err := rdf.ParseBGP(q.Text, prefixes)
	if err != nil {
		return
	}
	pos := make(map[string]int, len(q.InVars))
	for i, name := range q.InVars {
		pos[strings.TrimPrefix(name, "?")] = i
	}
	typ := rdf.NewIRI(rdf.RDFType)
	for _, p := range bgp.Patterns {
		if p.P.IsVar() {
			continue
		}
		if p.P.Term == typ {
			if p.S.IsVar() && !p.O.IsVar() {
				if i, ok := pos[p.S.Var]; ok {
					m.add(i, d.Nodes[d.Source+"#"+p.O.Term.Value])
				}
			}
			continue
		}
		if p.O.IsVar() {
			if i, ok := pos[p.O.Var]; ok {
				m.add(i, d.Nodes[d.Source+"#"+p.P.Term.Value])
			}
		}
	}
}

// analyzeSearch maps `field = ?` keyword-equality conditions to
// non-analyzed path nodes (analyzed fields match via CONTAINS
// semantics, which membership bits cannot decide).
func (m *ParamMatcher) analyzeSearch(d *Digest, text string) {
	tq, err := fulltext.ParseTextQuery(text)
	if err != nil {
		return
	}
	for _, c := range tq.Conds {
		if c.Op != fulltext.CondEq || c.Param < 0 {
			continue
		}
		m.add(c.Param, d.Nodes[d.Source+"#"+c.Field])
	}
}

// ---------- shared sub-query analysis helpers ----------

// lowerLabelIndex indexes value-bearing nodes by lower-cased label
// (relational digests preserve schema case; SQL identifiers are
// case-insensitive).
func lowerLabelIndex(d *Digest) map[string]*Node {
	out := make(map[string]*Node, len(d.Nodes))
	for _, n := range d.Nodes {
		if n.Values != nil {
			out[strings.ToLower(n.Label)] = n
		}
	}
	return out
}

// sqlTableBindings maps lower-cased binding names (alias or table) to
// table names for the FROM table and every join.
func sqlTableBindings(stmt *sqlparse.SelectStmt) map[string]string {
	out := map[string]string{strings.ToLower(stmt.From.Binding()): stmt.From.Name}
	for _, j := range stmt.Joins {
		out[strings.ToLower(j.Table.Binding())] = j.Table.Name
	}
	return out
}

// resolveAttr resolves a column reference to its attribute node, or
// nil when the table is unknown or an unqualified column is ambiguous.
func resolveAttr(byLabel map[string]*Node, tables map[string]string, col *sqlparse.ColumnRef) *Node {
	if col.Table != "" {
		t, ok := tables[strings.ToLower(col.Table)]
		if !ok {
			return nil
		}
		return byLabel[strings.ToLower(t+"."+col.Column)]
	}
	if len(tables) == 1 {
		for _, t := range tables {
			return byLabel[strings.ToLower(t+"."+col.Column)]
		}
	}
	return nil
}

// sqlConjuncts splits a WHERE tree into its top-level AND conjuncts.
func sqlConjuncts(e sqlparse.Expr) []sqlparse.Expr {
	if be, ok := e.(*sqlparse.BinaryExpr); ok && be.Op == sqlparse.OpAnd {
		return append(sqlConjuncts(be.Left), sqlConjuncts(be.Right)...)
	}
	return []sqlparse.Expr{e}
}

// sqlEqColParam extracts (column, param) from `col = ?` / `? = col`.
func sqlEqColParam(be *sqlparse.BinaryExpr) (*sqlparse.ColumnRef, *sqlparse.Param) {
	if c, ok := be.Left.(*sqlparse.ColumnRef); ok {
		if p, ok := be.Right.(*sqlparse.Param); ok {
			return c, p
		}
	}
	if c, ok := be.Right.(*sqlparse.ColumnRef); ok {
		if p, ok := be.Left.(*sqlparse.Param); ok {
			return c, p
		}
	}
	return nil, nil
}

// ---------- estimate refinement ----------

// RefineEstimate derives an expected result cardinality for q from the
// digest's value statistics: equality conjuncts contribute
// count/distinct (zero when membership proves absence), numeric range
// conjuncts integrate the histogram, and the tightest conjunct wins.
// ok is false when the digest cannot say anything (no statistics, a
// foreign wire version, unsupported query shape) — callers keep their
// flat estimate then.
func RefineEstimate(d *Digest, q source.SubQuery, prefixes map[string]string) (rows int, ok bool) {
	if !d.PruneCapable() {
		return 0, false
	}
	switch q.Language {
	case source.LangSQL:
		return refineSQL(d, q.Text)
	case source.LangBGP:
		return refineBGP(d, q, prefixes)
	case source.LangSearch:
		return refineSearch(d, q.Text)
	default:
		return 0, false
	}
}

// perKeyRows is the expected rows matching one equality key:
// count/distinct, rounded up.
func perKeyRows(vs *ValueSet) int {
	dist := vs.DistinctEstimate()
	if dist <= 0 {
		return vs.Count()
	}
	return (vs.Count() + dist - 1) / dist
}

// better folds one conjunct estimate into the running minimum.
func better(best, est int, found bool) (int, bool) {
	if !found || est < best {
		return est, true
	}
	return best, true
}

func refineSQL(d *Digest, text string) (int, bool) {
	stmt, err := sqlparse.ParseSelect(text)
	if err != nil || stmt.Where == nil || len(stmt.Joins) > 0 ||
		len(stmt.GroupBy) > 0 || stmt.Having != nil {
		return 0, false
	}
	for _, it := range stmt.Columns {
		if sqlparse.HasAggregate(it.Expr) {
			return 0, false
		}
	}
	byLabel := lowerLabelIndex(d)
	tables := sqlTableBindings(stmt)
	best, found := 0, false
	for _, c := range sqlConjuncts(stmt.Where) {
		switch x := c.(type) {
		case *sqlparse.BinaryExpr:
			if x.Op == sqlparse.OpEq {
				if col, p := sqlEqColParam(x); col != nil && p != nil {
					if n := resolveAttr(byLabel, tables, col); n != nil && n.Values != nil && !n.Analyzed {
						best, found = better(best, perKeyRows(n.Values), found)
					}
					continue
				}
				if col, lit := sqlEqColLiteral(x); col != nil {
					n := resolveAttr(byLabel, tables, col)
					if n == nil || n.Values == nil || n.Analyzed {
						continue
					}
					if key, kok := ProbeKey(lit.Val); kok && !n.Values.MayContainKey(key) {
						best, found = better(best, 0, found)
						continue
					}
					best, found = better(best, perKeyRows(n.Values), found)
				}
				continue
			}
			if lo, hi, col, rok := sqlRange(x); rok {
				if n := resolveAttr(byLabel, tables, col); n != nil && n.Values != nil {
					if h := n.Values.Histogram(); h != nil {
						best, found = better(best, int(math.Ceil(h.EstimateRange(lo, hi))), found)
					}
				}
			}
		case *sqlparse.BetweenExpr:
			if x.Negate {
				continue
			}
			col, cok := x.X.(*sqlparse.ColumnRef)
			lo, lok := sqlNumericLiteral(x.Lo)
			hi, hok := sqlNumericLiteral(x.Hi)
			if cok && lok && hok {
				if n := resolveAttr(byLabel, tables, col); n != nil && n.Values != nil {
					if h := n.Values.Histogram(); h != nil {
						best, found = better(best, int(math.Ceil(h.EstimateRange(lo, hi))), found)
					}
				}
			}
		}
	}
	if !found {
		return 0, false
	}
	if stmt.Limit >= 0 && best > stmt.Limit {
		best = stmt.Limit
	}
	return best, true
}

// sqlEqColLiteral extracts (column, literal) from `col = lit` / `lit = col`.
func sqlEqColLiteral(be *sqlparse.BinaryExpr) (*sqlparse.ColumnRef, *sqlparse.Literal) {
	if c, ok := be.Left.(*sqlparse.ColumnRef); ok {
		if l, ok := be.Right.(*sqlparse.Literal); ok {
			return c, l
		}
	}
	if c, ok := be.Right.(*sqlparse.ColumnRef); ok {
		if l, ok := be.Left.(*sqlparse.Literal); ok {
			return c, l
		}
	}
	return nil, nil
}

// sqlRange decodes `col OP numeric-literal` (either operand order)
// into a closed [lo, hi] interval.
func sqlRange(be *sqlparse.BinaryExpr) (lo, hi float64, col *sqlparse.ColumnRef, ok bool) {
	op := be.Op
	c, cok := be.Left.(*sqlparse.ColumnRef)
	v, vok := sqlNumericLiteral(be.Right)
	if !cok || !vok {
		// literal OP col: mirror the operator.
		if c, cok = be.Right.(*sqlparse.ColumnRef); !cok {
			return 0, 0, nil, false
		}
		if v, vok = sqlNumericLiteral(be.Left); !vok {
			return 0, 0, nil, false
		}
		switch op {
		case sqlparse.OpLt:
			op = sqlparse.OpGt
		case sqlparse.OpLe:
			op = sqlparse.OpGe
		case sqlparse.OpGt:
			op = sqlparse.OpLt
		case sqlparse.OpGe:
			op = sqlparse.OpLe
		}
	}
	switch op {
	case sqlparse.OpLt, sqlparse.OpLe:
		return math.Inf(-1), v, c, true
	case sqlparse.OpGt, sqlparse.OpGe:
		return v, math.Inf(1), c, true
	}
	return 0, 0, nil, false
}

func sqlNumericLiteral(e sqlparse.Expr) (float64, bool) {
	l, ok := e.(*sqlparse.Literal)
	if !ok {
		return 0, false
	}
	switch l.Val.Kind() {
	case value.Int, value.Float:
		return l.Val.Float(), true
	}
	return 0, false
}

func refineBGP(d *Digest, q source.SubQuery, prefixes map[string]string) (int, bool) {
	bgp, err := rdf.ParseBGP(q.Text, prefixes)
	if err != nil || len(bgp.Patterns) == 0 {
		return 0, false
	}
	bound := make(map[string]bool, len(q.InVars))
	for _, name := range q.InVars {
		bound[strings.TrimPrefix(name, "?")] = true
	}
	typ := rdf.NewIRI(rdf.RDFType)
	best, found := 0, false
	for _, p := range bgp.Patterns {
		if p.P.IsVar() {
			continue
		}
		var n *Node
		var objKey string
		var objKnown, objExact bool
		if p.P.Term == typ {
			if p.O.IsVar() {
				continue
			}
			n = d.Nodes[d.Source+"#"+p.O.Term.Value]
			// Subject position plays the "value" role for class nodes.
			if !p.S.IsVar() {
				objKey, objExact = Normalize(p.S.Term.Value), true
			}
			objKnown = !p.S.IsVar() || bound[p.S.Var]
		} else {
			n = d.Nodes[d.Source+"#"+p.P.Term.Value]
			if !p.O.IsVar() {
				objKey, objExact = Normalize(p.O.Term.Value), true
			}
			objKnown = !p.O.IsVar() || bound[p.O.Var]
		}
		if n == nil || n.Values == nil {
			continue
		}
		switch {
		case objExact && objKey != "" && !n.Values.MayContainKey(objKey):
			best, found = better(best, 0, found)
		case objKnown:
			best, found = better(best, perKeyRows(n.Values), found)
		default:
			best, found = better(best, n.Values.Count(), found)
		}
	}
	return best, found
}

func refineSearch(d *Digest, text string) (int, bool) {
	tq, err := fulltext.ParseTextQuery(text)
	if err != nil {
		return 0, false
	}
	best, found := 0, false
	for _, c := range tq.Conds {
		n := d.Nodes[d.Source+"#"+c.Field]
		if n == nil || n.Values == nil {
			continue
		}
		switch c.Op {
		case fulltext.CondEq:
			if n.Analyzed {
				continue
			}
			if c.Param < 0 {
				if key, kok := ProbeKey(c.Val); kok && !n.Values.MayContainKey(key) {
					best, found = better(best, 0, found)
					continue
				}
			}
			best, found = better(best, perKeyRows(n.Values), found)
		case fulltext.CondGe, fulltext.CondLe, fulltext.CondBetween:
			h := n.Values.Histogram()
			if h == nil || c.Param >= 0 || (c.Op == fulltext.CondBetween && c.Param2 >= 0) {
				continue
			}
			lo, hi := math.Inf(-1), math.Inf(1)
			switch c.Op {
			case fulltext.CondGe:
				v, vok := numericValue(c.Val)
				if !vok {
					continue
				}
				lo = v
			case fulltext.CondLe:
				v, vok := numericValue(c.Val)
				if !vok {
					continue
				}
				hi = v
			case fulltext.CondBetween:
				v1, ok1 := numericValue(c.Val)
				v2, ok2 := numericValue(c.Val2)
				if !ok1 || !ok2 {
					continue
				}
				lo, hi = v1, v2
			}
			best, found = better(best, int(math.Ceil(h.EstimateRange(lo, hi))), found)
		}
	}
	if !found {
		return 0, false
	}
	if tq.Limit > 0 && best > tq.Limit {
		best = tq.Limit
	}
	return best, true
}

func numericValue(v value.Value) (float64, bool) {
	switch v.Kind() {
	case value.Int, value.Float:
		return v.Float(), true
	}
	if c, ok := value.Coerce(v, value.Float); ok {
		return c.Float(), true
	}
	return 0, false
}
