// Package digest implements TATOOINE's source digests (§2.2): for each
// data source, a digest combines (i) a schema graph — nodes for
// attributes / properties / document paths, edges for structural and
// join relationships — and (ii) a value-set representation per node
// (Bloom filters for membership, histograms for numeric distributions)
// under a configurable space budget. Digests power the keyword-based
// query engine: keywords are located in digests, then join paths
// between matched nodes generate candidate mixed queries.
package digest

import (
	"hash/fnv"
	"math"
)

// Bloom is a fixed-size Bloom filter over strings.
type Bloom struct {
	bits   []uint64
	m      uint64 // number of bits
	k      int    // number of hash functions
	nAdded int
}

// NewBloom sizes a filter for expectedN items at the target false
// positive rate (standard m/k formulas). Both inputs are clamped to
// sane minimums.
func NewBloom(expectedN int, fpr float64) *Bloom {
	if expectedN < 1 {
		expectedN = 1
	}
	if fpr <= 0 || fpr >= 1 {
		fpr = 0.01
	}
	m := uint64(math.Ceil(-float64(expectedN) * math.Log(fpr) / (math.Ln2 * math.Ln2)))
	if m < 64 {
		m = 64
	}
	k := int(math.Round(float64(m) / float64(expectedN) * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > 16 {
		k = 16
	}
	return &Bloom{bits: make([]uint64, (m+63)/64), m: m, k: k}
}

// NewBloomWithBits builds a filter with an explicit bit budget (space-
// budget experiments sweep this).
func NewBloomWithBits(bits uint64, k int) *Bloom {
	if bits < 64 {
		bits = 64
	}
	if k < 1 {
		k = 4
	}
	return &Bloom{bits: make([]uint64, (bits+63)/64), m: bits, k: k}
}

// hash2 derives two independent 64-bit hashes of s.
func hash2(s string) (uint64, uint64) {
	h := fnv.New64a()
	h.Write([]byte(s))
	h1 := h.Sum64()
	h.Write([]byte{0xff})
	h2 := h.Sum64()
	if h2 == 0 {
		h2 = 0x9e3779b97f4a7c15
	}
	return h1, h2
}

// Add inserts s.
func (b *Bloom) Add(s string) {
	h1, h2 := hash2(s)
	for i := 0; i < b.k; i++ {
		pos := (h1 + uint64(i)*h2) % b.m
		b.bits[pos/64] |= 1 << (pos % 64)
	}
	b.nAdded++
}

// MayContain reports whether s may have been added (false positives
// possible, false negatives impossible).
func (b *Bloom) MayContain(s string) bool {
	h1, h2 := hash2(s)
	for i := 0; i < b.k; i++ {
		pos := (h1 + uint64(i)*h2) % b.m
		if b.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// Bits returns the filter's bit capacity.
func (b *Bloom) Bits() uint64 { return b.m }

// Hashes returns the number of hash functions.
func (b *Bloom) Hashes() int { return b.k }

// Added returns how many values were inserted.
func (b *Bloom) Added() int { return b.nAdded }

// EstimatedFPR returns the expected false-positive rate at the current
// fill level: (1 - e^{-kn/m})^k.
func (b *Bloom) EstimatedFPR() float64 {
	if b.nAdded == 0 {
		return 0
	}
	return math.Pow(1-math.Exp(-float64(b.k)*float64(b.nAdded)/float64(b.m)), float64(b.k))
}
