// Package digest implements TATOOINE's source digests (§2.2): for each
// data source, a digest combines (i) a schema graph — nodes for
// attributes / properties / document paths, edges for structural and
// join relationships — and (ii) a value-set representation per node
// (Bloom filters for membership, histograms for numeric distributions)
// under a configurable space budget. Digests power the keyword-based
// query engine: keywords are located in digests, then join paths
// between matched nodes generate candidate mixed queries.
package digest

import (
	"hash/fnv"
	"math"
	"math/bits"
)

// Bloom is a fixed-size Bloom filter over strings.
type Bloom struct {
	bits   []uint64
	m      uint64 // number of bits
	k      int    // number of hash functions
	nAdded int
}

// NewBloom sizes a filter for expectedN items at the target false
// positive rate (standard m/k formulas). Both inputs are clamped to
// sane minimums.
func NewBloom(expectedN int, fpr float64) *Bloom {
	if expectedN < 1 {
		expectedN = 1
	}
	if fpr <= 0 || fpr >= 1 {
		fpr = 0.01
	}
	m := uint64(math.Ceil(-float64(expectedN) * math.Log(fpr) / (math.Ln2 * math.Ln2)))
	if m < 64 {
		m = 64
	}
	k := int(math.Round(float64(m) / float64(expectedN) * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > 16 {
		k = 16
	}
	return &Bloom{bits: make([]uint64, (m+63)/64), m: m, k: k}
}

// NewBloomWithBits builds a filter with an explicit bit budget (space-
// budget experiments sweep this).
func NewBloomWithBits(bits uint64, k int) *Bloom {
	if bits < 64 {
		bits = 64
	}
	if k < 1 {
		k = 4
	}
	return &Bloom{bits: make([]uint64, (bits+63)/64), m: bits, k: k}
}

// hash2 derives two independent 64-bit hashes of s.
func hash2(s string) (uint64, uint64) {
	h := fnv.New64a()
	h.Write([]byte(s))
	h1 := h.Sum64()
	h.Write([]byte{0xff})
	h2 := h.Sum64()
	if h2 == 0 {
		h2 = 0x9e3779b97f4a7c15
	}
	return h1, h2
}

// Add inserts s.
func (b *Bloom) Add(s string) {
	h1, h2 := hash2(s)
	for i := 0; i < b.k; i++ {
		pos := (h1 + uint64(i)*h2) % b.m
		b.bits[pos/64] |= 1 << (pos % 64)
	}
	b.nAdded++
}

// MayContain reports whether s may have been added (false positives
// possible, false negatives impossible). A filter decoded from an
// unknown wire version has k == 0 and answers true for everything —
// the fail-open degradation cross-version peers rely on.
func (b *Bloom) MayContain(s string) bool {
	if b.k == 0 || b.m == 0 {
		return true
	}
	h1, h2 := hash2(s)
	for i := 0; i < b.k; i++ {
		pos := (h1 + uint64(i)*h2) % b.m
		if b.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// MayContainKey implements the probe-filter contract used by semi-join
// pruning (source.ProbeFilter): the key is a pre-normalized digest key
// (see ProbeKey), tested directly against the filter.
func (b *Bloom) MayContainKey(key string) bool { return b.MayContain(key) }

// Bits returns the filter's bit capacity.
func (b *Bloom) Bits() uint64 { return b.m }

// Hashes returns the number of hash functions.
func (b *Bloom) Hashes() int { return b.k }

// Added returns how many values were inserted.
func (b *Bloom) Added() int { return b.nAdded }

// EstimatedFPR returns the expected false-positive rate at the current
// fill level: (1 - e^{-kn/m})^k.
func (b *Bloom) EstimatedFPR() float64 {
	if b.nAdded == 0 {
		return 0
	}
	return math.Pow(1-math.Exp(-float64(b.k)*float64(b.nAdded)/float64(b.m)), float64(b.k))
}

// EstimatedDistinct estimates how many *distinct* keys were inserted
// from the filter's fill ratio: with X of m bits set after n distinct
// insertions under k hashes, E[X/m] = 1 - e^{-kn/m}, so
// n ≈ -(m/k)·ln(1 - X/m). Saturated filters (X == m) fall back to the
// insertion count, which over-counts duplicates but bounds the answer.
func (b *Bloom) EstimatedDistinct() int {
	if b.k == 0 || b.m == 0 || b.nAdded == 0 {
		return b.nAdded
	}
	var set int
	for _, w := range b.bits {
		set += bits.OnesCount64(w)
	}
	if set == 0 {
		return 0
	}
	if uint64(set) >= b.m {
		return b.nAdded
	}
	n := -(float64(b.m) / float64(b.k)) * math.Log(1-float64(set)/float64(b.m))
	est := int(math.Round(n))
	if est < 1 {
		est = 1
	}
	if est > b.nAdded {
		est = b.nAdded
	}
	return est
}
