package digest

import (
	"encoding/json"
	"fmt"
	"testing"

	"tatooine/internal/source"
	"tatooine/internal/value"
)

func probeSub(text string, inVars ...string) source.SubQuery {
	return source.SubQuery{Language: source.LangSQL, Text: text, InVars: inVars}
}

func TestParamMatcherSQLEquality(t *testing.T) {
	d := BuildRelational("sql://insee", relFixture(t), DefaultBudget())
	m := NewParamMatcher(d, probeSub("SELECT name FROM departements WHERE code = ?", "code"), nil)
	if m == nil {
		t.Fatal("equality on a digested column must be prunable")
	}
	if !m.MayMatch(value.Row{value.NewString("75")}) {
		t.Error("present key pruned — a false negative loses rows")
	}
	if m.MayMatch(value.Row{value.NewString("00")}) {
		t.Error("provably absent key not pruned")
	}
	// Values that never enter a digest must never be pruned.
	if !m.MayMatch(value.Row{value.NewNull()}) {
		t.Error("NULL binding pruned; NULLs are not digested")
	}
}

func TestParamMatcherRefusals(t *testing.T) {
	d := BuildRelational("sql://insee", relFixture(t), DefaultBudget())
	for name, q := range map[string]source.SubQuery{
		// An aggregate yields a row even over an empty match: skipping
		// the probe would change results.
		"aggregate": probeSub("SELECT COUNT(*) FROM departements WHERE code = ?", "code"),
		// No digested equality target for the parameter.
		"range param":   probeSub("SELECT name FROM departements WHERE population > ?", "p"),
		"unknown table": probeSub("SELECT x FROM nowhere WHERE x = ?", "x"),
		"no params":     probeSub("SELECT name FROM departements"),
	} {
		if m := NewParamMatcher(d, q, nil); m != nil {
			t.Errorf("%s: matcher %+v, want nil (probe everything)", name, m)
		}
	}
}

func TestParamMatcherForeignVersionNil(t *testing.T) {
	d := BuildRelational("sql://insee", relFixture(t), DefaultBudget())
	raw, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	m["v"] = 999
	raw, err = json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var foreign Digest
	if err := json.Unmarshal(raw, &foreign); err != nil {
		t.Fatal(err)
	}
	q := probeSub("SELECT name FROM departements WHERE code = ?", "code")
	if pm := NewParamMatcher(&foreign, q, nil); pm != nil {
		t.Error("foreign-version digest produced a matcher; cross-version pruning is unsafe")
	}
}

func TestParamMatcherFilters(t *testing.T) {
	d := BuildRelational("sql://insee", relFixture(t), DefaultBudget())
	m := NewParamMatcher(d, probeSub("SELECT name FROM departements WHERE code = ?", "code"), nil)
	fs := m.Filters()
	if len(fs) != 1 || fs[0] == nil {
		t.Fatalf("filters: %+v, want one per parameter position", fs)
	}
	if !fs[0].MayContainKey(Normalize("75")) {
		t.Error("wire filter excludes a present key")
	}
	if fs[0].MayContainKey(Normalize("code-definitely-not-present")) {
		t.Error("wire filter admits an absent key (flaky only if the Bloom false-positives; seed data is tiny)")
	}
}

func TestRefineEstimateSQL(t *testing.T) {
	d := BuildRelational("sql://insee", relFixture(t), DefaultBudget())
	cases := []struct {
		name string
		text string
		rows int
		ok   bool
	}{
		// 2 rows, 2 distinct codes: one row per key.
		{"present literal", "SELECT name FROM departements WHERE code = '75'", 1, true},
		// Membership proves absence: exactly zero.
		{"absent literal", "SELECT name FROM departements WHERE code = 'zz'", 0, true},
		// Parameter equality: per-key expectation without a concrete key.
		{"param equality", "SELECT name FROM departements WHERE code = ?", 1, true},
		// LIMIT caps the refined estimate.
		{"limit cap", "SELECT name FROM departements WHERE population > 0 LIMIT 1", 1, true},
		// Shapes the digest cannot speak to keep the flat estimate.
		{"no where", "SELECT name FROM departements", 0, false},
		{"aggregate", "SELECT COUNT(*) FROM departements WHERE code = '75'", 0, false},
	}
	for _, c := range cases {
		rows, ok := RefineEstimate(d, probeSub(c.text, "p"), nil)
		if ok != c.ok || (ok && rows != c.rows) {
			t.Errorf("%s: (%d, %v), want (%d, %v)", c.name, rows, ok, c.rows, c.ok)
		}
	}
}

func TestOverlapEstimateEdgeCases(t *testing.T) {
	b := DefaultBudget()
	empty := NewValueSet(b)
	empty.Seal()
	full := NewValueSet(b)
	for i := 0; i < 10; i++ {
		full.Add(value.NewString(fmt.Sprintf("v-%d", i)))
	}
	full.Seal()
	if got := OverlapEstimate(nil, full); got != 0 {
		t.Errorf("nil a: %f", got)
	}
	if got := OverlapEstimate(full, nil); got != 0 {
		t.Errorf("nil b: %f", got)
	}
	if got := OverlapEstimate(empty, full); got != 0 {
		t.Errorf("empty a: %f", got)
	}
	half := NewValueSet(b)
	for i := 5; i < 15; i++ {
		half.Add(value.NewString(fmt.Sprintf("v-%d", i)))
	}
	half.Seal()
	got := OverlapEstimate(full, half)
	if got < 0.3 || got > 0.7 {
		t.Errorf("half overlap: %f, want ~0.5", got)
	}
	if got < 0 || got > 1 {
		t.Errorf("overlap out of [0,1]: %f", got)
	}
}

// FuzzBloomMayContain pins the property semi-join pruning depends on:
// a Bloom filter NEVER reports false negatives. Any value Added must
// test positive afterwards — including after a JSON wire round trip —
// or pruning would silently drop result rows.
func FuzzBloomMayContain(f *testing.F) {
	f.Add("75", "92", "zz")
	f.Add("", "a", "a")
	f.Add("Hauts-de-Seine", "\x00\xff", "émile")
	f.Add("dup", "dup", "dup")
	f.Fuzz(func(t *testing.T, a, b, c string) {
		bl := NewBloom(4, 0.01)
		for _, s := range []string{a, b, c} {
			bl.Add(s)
		}
		raw, err := json.Marshal(bl)
		if err != nil {
			t.Fatal(err)
		}
		var decoded Bloom
		if err := json.Unmarshal(raw, &decoded); err != nil {
			t.Fatal(err)
		}
		for _, s := range []string{a, b, c} {
			if !bl.MayContain(s) {
				t.Fatalf("false negative for %q", s)
			}
			if !bl.MayContainKey(s) {
				t.Fatalf("MayContainKey false negative for %q", s)
			}
			if !decoded.MayContain(s) {
				t.Fatalf("false negative for %q after wire round trip", s)
			}
		}
	})
}
