package digest

import (
	"encoding/json"
	"fmt"
	"testing"

	"tatooine/internal/value"
)

func TestBloomJSONRoundTrip(t *testing.T) {
	b := NewBloom(100, 0.01)
	for i := 0; i < 100; i++ {
		b.Add(fmt.Sprintf("v-%d", i))
	}
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	var back Bloom
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Bits() != b.Bits() || back.Hashes() != b.Hashes() || back.Added() != b.Added() {
		t.Errorf("params: %d/%d/%d vs %d/%d/%d",
			back.Bits(), back.Hashes(), back.Added(), b.Bits(), b.Hashes(), b.Added())
	}
	for i := 0; i < 100; i++ {
		if !back.MayContain(fmt.Sprintf("v-%d", i)) {
			t.Fatalf("round-tripped bloom lost member v-%d", i)
		}
	}
}

func TestBloomUnmarshalErrors(t *testing.T) {
	var b Bloom
	if err := json.Unmarshal([]byte(`{"m":128,"k":4,"bits":"!!!"}`), &b); err == nil {
		t.Error("bad base64 accepted")
	}
	if err := json.Unmarshal([]byte(`{"m":99999,"k":4,"bits":"AAAA"}`), &b); err == nil {
		t.Error("inconsistent bit length accepted")
	}
}

func TestDigestJSONRoundTrip(t *testing.T) {
	d := BuildRelational("sql://insee", relFixture(t), DefaultBudget())
	data, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var back Digest
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Source != d.Source || len(back.Nodes) != len(d.Nodes) || len(back.Edges) != len(d.Edges) {
		t.Fatalf("shape: %s %d/%d", back.Source, len(back.Nodes), len(back.Edges))
	}
	// Lookups behave identically after the round trip.
	orig := d.Lookup("Paris")
	rt := back.Lookup("Paris")
	if len(orig) != len(rt) || len(rt) != 1 || rt[0].Label != "departements.name" {
		t.Errorf("lookup after round trip: %+v", rt)
	}
	// Originals survive (needed for query generation from remote digests).
	n := back.Nodes["sql://insee#departements.name"]
	if v, ok := n.Values.Original("paris"); !ok || v != "Paris" {
		t.Errorf("original after round trip: %q %v", v, ok)
	}
}

func TestDigestJSONLargeValueSet(t *testing.T) {
	// Bloom-only nodes (exact dropped) must still answer after a trip.
	b := DefaultBudget()
	b.ExactThreshold = 4
	vs := NewValueSet(b)
	for i := 0; i < 200; i++ {
		vs.Add(value.NewString(fmt.Sprintf("tok%d", i)))
	}
	vs.Seal()
	d := NewDigest("x")
	n := d.addNode("field", DocPath, vs)
	_ = n
	data, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var back Digest
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	got := back.Nodes["x#field"]
	if got.Values.Exact() {
		t.Error("exactness should not survive when dropped")
	}
	if !got.Values.MayContain("tok42") {
		t.Error("bloom membership lost")
	}
}

func TestDigestJSONHistogram(t *testing.T) {
	vs := NewValueSet(DefaultBudget())
	for i := 1; i <= 100; i++ {
		vs.Add(value.NewInt(int64(i)))
	}
	vs.Seal()
	d := NewDigest("x")
	d.addNode("nums", RelAttribute, vs)
	data, _ := json.Marshal(d)
	var back Digest
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	h := back.Nodes["x#nums"].Values.Histogram()
	if h == nil || h.N != 100 {
		t.Fatalf("hist: %+v", h)
	}
	if est := h.EstimateRange(1, 50); est < 40 || est > 60 {
		t.Errorf("estimate after round trip: %f", est)
	}
}
