package digest

import (
	"encoding/json"
	"fmt"
	"testing"

	"tatooine/internal/value"
)

func TestBloomJSONRoundTrip(t *testing.T) {
	b := NewBloom(100, 0.01)
	for i := 0; i < 100; i++ {
		b.Add(fmt.Sprintf("v-%d", i))
	}
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	var back Bloom
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Bits() != b.Bits() || back.Hashes() != b.Hashes() || back.Added() != b.Added() {
		t.Errorf("params: %d/%d/%d vs %d/%d/%d",
			back.Bits(), back.Hashes(), back.Added(), b.Bits(), b.Hashes(), b.Added())
	}
	for i := 0; i < 100; i++ {
		if !back.MayContain(fmt.Sprintf("v-%d", i)) {
			t.Fatalf("round-tripped bloom lost member v-%d", i)
		}
	}
}

func TestBloomUnmarshalErrors(t *testing.T) {
	var b Bloom
	if err := json.Unmarshal([]byte(`{"v":1,"m":128,"k":4,"bits":"!!!"}`), &b); err == nil {
		t.Error("bad base64 accepted")
	}
	if err := json.Unmarshal([]byte(`{"v":1,"m":99999,"k":4,"bits":"AAAA"}`), &b); err == nil {
		t.Error("inconsistent bit length accepted")
	}
}

func TestBloomWireVersionStamped(t *testing.T) {
	b := NewBloom(10, 0.01)
	b.Add("x")
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	var w struct {
		V int `json:"v"`
	}
	if err := json.Unmarshal(data, &w); err != nil {
		t.Fatal(err)
	}
	if w.V != WireVersion {
		t.Fatalf("marshaled bloom carries v=%d, want %d", w.V, WireVersion)
	}
}

// A bloom from a peer speaking a different wire version (including the
// pre-versioning v=0 era) must degrade to a pass-through filter: its
// bit layout cannot be trusted, and a misread filter could prune
// bindings that actually match. Pass-through answers true for every
// key — no pruning, never mis-pruning.
func TestBloomCrossVersionDecodesPassThrough(t *testing.T) {
	payloads := map[string]string{
		"pre-versioning (no v field)": `{"m":128,"k":4,"bits":"AAAAAAAAAAAAAAAAAAAAAAAAAA==","added":7}`,
		"future version":              `{"v":999,"m":128,"k":4,"bits":"!!! not even base64","added":3}`,
	}
	for name, payload := range payloads {
		var b Bloom
		if err := json.Unmarshal([]byte(payload), &b); err != nil {
			t.Fatalf("%s: cross-version bloom should degrade, not error: %v", name, err)
		}
		for _, key := range []string{"anything", "at", "all", ""} {
			if !b.MayContain(key) {
				t.Fatalf("%s: degraded bloom answered false for %q — could mis-prune", name, key)
			}
			if !b.MayContainKey(key) {
				t.Fatalf("%s: degraded bloom MayContainKey answered false for %q", name, key)
			}
		}
	}
}

// A digest decoded from a foreign wire version keeps its payload
// usable for keyword lookups (blooms degrade per node) but reports
// itself prune-incapable, so the planner never builds a semi-join
// pruner from it.
func TestDigestCrossVersionNotPruneCapable(t *testing.T) {
	d := BuildRelational("sql://insee", relFixture(t), DefaultBudget())
	data, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(data, &probe); err != nil {
		t.Fatal(err)
	}
	probe["v"] = json.RawMessage(`999`)
	foreign, err := json.Marshal(probe)
	if err != nil {
		t.Fatal(err)
	}
	var back Digest
	if err := json.Unmarshal(foreign, &back); err != nil {
		t.Fatalf("foreign-version digest should decode: %v", err)
	}
	if back.PruneCapable() {
		t.Fatal("foreign-version digest claims prune capability")
	}

	var same Digest
	if err := json.Unmarshal(data, &same); err != nil {
		t.Fatal(err)
	}
	if !same.PruneCapable() {
		t.Fatal("current-version digest lost prune capability in transit")
	}
	if (*Digest)(nil).PruneCapable() {
		t.Fatal("nil digest claims prune capability")
	}
}

func TestDigestJSONRoundTrip(t *testing.T) {
	d := BuildRelational("sql://insee", relFixture(t), DefaultBudget())
	data, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var back Digest
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Source != d.Source || len(back.Nodes) != len(d.Nodes) || len(back.Edges) != len(d.Edges) {
		t.Fatalf("shape: %s %d/%d", back.Source, len(back.Nodes), len(back.Edges))
	}
	// Lookups behave identically after the round trip.
	orig := d.Lookup("Paris")
	rt := back.Lookup("Paris")
	if len(orig) != len(rt) || len(rt) != 1 || rt[0].Label != "departements.name" {
		t.Errorf("lookup after round trip: %+v", rt)
	}
	// Originals survive (needed for query generation from remote digests).
	n := back.Nodes["sql://insee#departements.name"]
	if v, ok := n.Values.Original("paris"); !ok || v != "Paris" {
		t.Errorf("original after round trip: %q %v", v, ok)
	}
}

func TestDigestJSONLargeValueSet(t *testing.T) {
	// Bloom-only nodes (exact dropped) must still answer after a trip.
	b := DefaultBudget()
	b.ExactThreshold = 4
	vs := NewValueSet(b)
	for i := 0; i < 200; i++ {
		vs.Add(value.NewString(fmt.Sprintf("tok%d", i)))
	}
	vs.Seal()
	d := NewDigest("x")
	n := d.addNode("field", DocPath, vs)
	_ = n
	data, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var back Digest
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	got := back.Nodes["x#field"]
	if got.Values.Exact() {
		t.Error("exactness should not survive when dropped")
	}
	if !got.Values.MayContain("tok42") {
		t.Error("bloom membership lost")
	}
}

func TestDigestJSONHistogram(t *testing.T) {
	vs := NewValueSet(DefaultBudget())
	for i := 1; i <= 100; i++ {
		vs.Add(value.NewInt(int64(i)))
	}
	vs.Seal()
	d := NewDigest("x")
	d.addNode("nums", RelAttribute, vs)
	data, _ := json.Marshal(d)
	var back Digest
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	h := back.Nodes["x#nums"].Values.Histogram()
	if h == nil || h.N != 100 {
		t.Fatalf("hist: %+v", h)
	}
	if est := h.EstimateRange(1, 50); est < 40 || est > 60 {
		t.Errorf("estimate after round trip: %f", est)
	}
}
