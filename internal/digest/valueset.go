package digest

import (
	"strings"
	"unicode"

	"tatooine/internal/value"
)

// Budget controls how much space a digest spends per node (§2.2: "the
// precision level of the value set representations is controlled by
// parameters dividing up the available space").
type Budget struct {
	// BloomBits is the Bloom filter size per node, in bits.
	BloomBits uint64
	// BloomHashes is the number of hash functions.
	BloomHashes int
	// HistBuckets is the histogram resolution for numeric nodes.
	HistBuckets int
	// ExactThreshold keeps the exact value set when a node has at most
	// this many distinct values (0 disables exact sets).
	ExactThreshold int
	// SampleSize keeps up to this many sample values per node for
	// cross-source overlap testing and query generation.
	SampleSize int
}

// DefaultBudget is a balanced configuration.
func DefaultBudget() Budget {
	return Budget{
		BloomBits:      8192,
		BloomHashes:    5,
		HistBuckets:    32,
		ExactThreshold: 64,
		SampleSize:     32,
	}
}

// Normalize canonicalizes a value or keyword for digest matching:
// lower-case, accents folded, camelCase split, non-alphanumerics
// removed. "head of state", "headOfState" and "HEAD-OF-STATE" all
// normalize to "headofstate"; IRIs are reduced to their local name
// first ("http://x/headOfState" → "headofstate").
func Normalize(s string) string {
	s = localName(s)
	// Split camelCase by inserting nothing (we only strip): the
	// character classes below keep letters and digits.
	var b strings.Builder
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(unicode.ToLower(r))
		}
	}
	return foldASCII(b.String())
}

// localName strips an IRI prefix up to the last '/' or '#'.
func localName(s string) string {
	if !strings.Contains(s, "://") && !strings.HasPrefix(s, "urn:") {
		return s
	}
	if i := strings.LastIndexAny(s, "/#"); i >= 0 && i+1 < len(s) {
		return s[i+1:]
	}
	return s
}

// foldASCII strips common diacritics (shared logic with the full-text
// analyzer, duplicated to keep the package dependency-light).
func foldASCII(s string) string {
	repl := map[rune]string{
		'à': "a", 'â': "a", 'ä': "a", 'é': "e", 'è': "e", 'ê': "e", 'ë': "e",
		'î': "i", 'ï': "i", 'ô': "o", 'ö': "o", 'ù': "u", 'û': "u", 'ü': "u",
		'ç': "c", 'œ': "oe",
	}
	var b strings.Builder
	for _, r := range s {
		if out, ok := repl[r]; ok {
			b.WriteString(out)
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}

// ValueSet is the per-node representation of the atomic values
// associated with one schema position.
type ValueSet struct {
	bloom        *Bloom
	hist         *Histogram
	exact        map[string]struct{}
	samples      []string
	originals    map[string]string   // normalized → first original form
	distinct     map[string]struct{} // tracked until exact threshold passes
	numeric      []float64
	numericCount int
	timeCount    int
	budget       Budget
	count        int
}

// NewValueSet creates an empty value set under the budget.
func NewValueSet(b Budget) *ValueSet {
	return &ValueSet{
		bloom:     NewBloomWithBits(b.BloomBits, b.BloomHashes),
		exact:     make(map[string]struct{}),
		originals: make(map[string]string),
		distinct:  make(map[string]struct{}),
		budget:    b,
	}
}

// Add records one value.
func (vs *ValueSet) Add(v value.Value) {
	if v.IsNull() {
		return
	}
	key := Normalize(v.String())
	if key == "" {
		return
	}
	vs.count++
	vs.bloom.Add(key)
	if _, seen := vs.distinct[key]; !seen {
		vs.distinct[key] = struct{}{}
		if len(vs.samples) < vs.budget.SampleSize {
			vs.samples = append(vs.samples, key)
		}
	}
	// Keep the original spelling of a bounded number of values so the
	// keyword engine can generate executable queries from digest hits.
	keepOriginals := vs.budget.ExactThreshold
	if vs.budget.SampleSize > keepOriginals {
		keepOriginals = vs.budget.SampleSize
	}
	if len(vs.originals) < keepOriginals*4 {
		if _, ok := vs.originals[key]; !ok {
			vs.originals[key] = v.String()
		}
	}
	if vs.budget.ExactThreshold > 0 {
		if len(vs.exact) <= vs.budget.ExactThreshold {
			vs.exact[key] = struct{}{}
		}
	}
	switch v.Kind() {
	case value.Int, value.Float:
		vs.numeric = append(vs.numeric, v.Float())
		vs.numericCount++
	case value.Time:
		vs.timeCount++
	case value.String:
		// Sources often store timestamps and numbers as strings
		// (Figure 2's created_at); classify them so textual keyword
		// probes don't false-positive against them. The first-byte
		// check keeps the common textual-token path cheap.
		if s := v.Str(); s != "" && (s[0] >= '0' && s[0] <= '9' || s[0] == '-' || s[0] == '+') {
			if _, ok := value.Coerce(v, value.Time); ok {
				vs.timeCount++
			} else if _, ok := value.Coerce(v, value.Float); ok {
				vs.numericCount++
			}
		}
	}
}

// NumericOnly reports whether every added value was numeric or
// temporal; membership probes with textual keywords on such sets are
// rejected (they could only be Bloom false positives).
func (vs *ValueSet) NumericOnly() bool {
	return vs.count > 0 && vs.numericCount+vs.timeCount == vs.count
}

// Seal finalizes the representation (builds the histogram, drops exact
// sets that exceeded the threshold). Call once after loading.
func (vs *ValueSet) Seal() {
	if len(vs.numeric) > 0 {
		vs.hist = NewEquiDepth(vs.numeric, vs.budget.HistBuckets)
		vs.numeric = nil
	}
	if vs.budget.ExactThreshold == 0 || len(vs.exact) > vs.budget.ExactThreshold {
		vs.exact = nil
	}
	vs.distinct = nil
}

// MayContain reports whether the normalized keyword may appear in the
// value set (exact when the exact set survived, Bloom otherwise).
// Textual keywords never match purely numeric/temporal sets: such hits
// could only be Bloom false positives.
func (vs *ValueSet) MayContain(keyword string) bool {
	key := Normalize(keyword)
	if key == "" {
		return false
	}
	if vs.NumericOnly() && !isNumericKeyword(key) {
		return false
	}
	if vs.exact != nil {
		_, ok := vs.exact[key]
		return ok
	}
	return vs.bloom.MayContain(key)
}

func isNumericKeyword(key string) bool {
	if key == "" {
		return false
	}
	for _, r := range key {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

// Exact reports whether membership answers are exact (no false
// positives).
func (vs *ValueSet) Exact() bool { return vs.exact != nil }

// Original returns the stored original spelling for a keyword whose
// normalized form is in the value set ("headofstate" →
// "http://t.example/headOfState"), when the bounded original store
// still holds it.
func (vs *ValueSet) Original(keyword string) (string, bool) {
	v, ok := vs.originals[Normalize(keyword)]
	return v, ok
}

// Count returns the number of values added.
func (vs *ValueSet) Count() int { return vs.count }

// DistinctEstimate estimates the number of distinct values: exact when
// the exact set survived the budget, otherwise recovered from the
// Bloom filter's fill ratio. Zero only for an empty set.
func (vs *ValueSet) DistinctEstimate() int {
	if vs.count == 0 {
		return 0
	}
	if vs.exact != nil {
		return len(vs.exact)
	}
	// Pre-Seal, the tracked distinct map is still authoritative.
	if vs.distinct != nil {
		return len(vs.distinct)
	}
	if est := vs.bloom.EstimatedDistinct(); est > 0 {
		return est
	}
	return 1
}

// Samples returns up to SampleSize normalized distinct values.
func (vs *ValueSet) Samples() []string { return vs.samples }

// Histogram returns the numeric histogram, or nil.
func (vs *ValueSet) Histogram() *Histogram { return vs.hist }

// Bloom returns the membership filter.
func (vs *ValueSet) Bloom() *Bloom { return vs.bloom }

// OverlapEstimate estimates the fraction of a's values present in b by
// probing b with a's samples; used to discover cross-source join
// edges. When b answers through a Bloom filter, the raw hit rate is
// corrected for b's expected false-positive rate (a saturated filter
// over a large token set would otherwise claim overlap with
// everything).
func OverlapEstimate(a, b *ValueSet) float64 {
	if a == nil || b == nil || len(a.samples) == 0 {
		return 0
	}
	hits := 0
	for _, s := range a.samples {
		if b.MayContain(s) {
			hits++
		}
	}
	frac := float64(hits) / float64(len(a.samples))
	if !b.Exact() {
		fpr := b.bloom.EstimatedFPR()
		if fpr >= 1 {
			return 0
		}
		frac = (frac - fpr) / (1 - fpr)
		if frac < 0 {
			frac = 0
		}
	}
	return frac
}
