package digest

import "tatooine/internal/source"

// Digester is implemented by sources that can produce (or fetch) their
// own digest — e.g. federation clients pulling the remote endpoint's
// digest.
type Digester interface {
	Digest(budget Budget) (*Digest, error)
}

// ForSource builds the digest appropriate for a data source's
// substrate, dispatching on the adapter type. Sources implementing
// Digester provide their own (remote endpoints). Unknown source types
// yield (nil, nil): they simply do not participate in keyword search.
func ForSource(s source.DataSource, budget Budget) (*Digest, error) {
	switch src := s.(type) {
	case Digester:
		return src.Digest(budget)
	case interface{ Unwrap() source.DataSource }:
		// Decorators (e.g. source.Cached) digest as their inner source.
		return ForSource(src.Unwrap(), budget)
	case *source.RDFSource:
		return BuildRDF(s.URI(), src.Graph(), budget), nil
	case *source.RelSource:
		return BuildRelational(s.URI(), src.DB(), budget), nil
	case *source.DocSource:
		return BuildDocument(s.URI(), src.Index(), budget), nil
	case *source.XMLSource:
		return BuildXML(s.URI(), src.Store(), budget), nil
	default:
		return nil, nil
	}
}
