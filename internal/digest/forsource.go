package digest

import (
	"fmt"

	"tatooine/internal/source"
)

// Digester is implemented by sources that can produce (or fetch) their
// own digest — e.g. federation clients pulling the remote endpoint's
// digest.
type Digester interface {
	Digest(budget Budget) (*Digest, error)
}

// ForSource builds the digest appropriate for a data source's
// substrate, dispatching on the adapter type. Sources implementing
// Digester provide their own (remote endpoints). Unknown source types
// yield (nil, nil): they simply do not participate in keyword search.
func ForSource(s source.DataSource, budget Budget) (*Digest, error) {
	switch src := s.(type) {
	case Digester:
		return src.Digest(budget)
	case *source.Cached:
		// The probe-cache decorator memoizes the inner digest under its
		// invalidation generation (epoch-driven), so planning pays the
		// build/fetch once, and a mutation drops the memo with the probe
		// cache — a stale digest is impossible. The undigestable answer
		// (nil, nil) is memoized too: re-asking cannot make a source
		// digestable, but it can re-pay a failed scan.
		v, err := src.MemoizeDigest(budgetKey(budget), func() (any, error) {
			d, err := ForSource(src.Unwrap(), budget)
			if err != nil {
				return nil, err
			}
			if d == nil {
				return nil, nil
			}
			return d, nil
		})
		if err != nil || v == nil {
			return nil, err
		}
		d, _ := v.(*Digest)
		return d, nil
	case interface{ Unwrap() source.DataSource }:
		// Other decorators digest as their inner source.
		return ForSource(src.Unwrap(), budget)
	case *source.RDFSource:
		return BuildRDF(s.URI(), src.Graph(), budget), nil
	case *source.RelSource:
		return BuildRelational(s.URI(), src.DB(), budget), nil
	case *source.DocSource:
		return BuildDocument(s.URI(), src.Index(), budget), nil
	case *source.XMLSource:
		return BuildXML(s.URI(), src.Store(), budget), nil
	default:
		return nil, nil
	}
}

// budgetKey identifies a Budget inside the Cached digest memo.
func budgetKey(b Budget) string {
	return fmt.Sprintf("%d/%d/%d/%d/%d",
		b.BloomBits, b.BloomHashes, b.HistBuckets, b.ExactThreshold, b.SampleSize)
}
