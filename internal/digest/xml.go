package digest

import (
	"sort"

	"tatooine/internal/value"
	"tatooine/internal/xmlstore"
)

// BuildXML digests an XML store: a collection root plus a path node
// per element/attribute path (the XML-dataguide-with-values digest of
// §2.2).
func BuildXML(uri string, s *xmlstore.Store, budget Budget) *Digest {
	d := NewDigest(uri)
	root := d.addNode(s.Name(), XMLRoot, nil)

	// Discover the path set first.
	pathSet := make(map[string]struct{})
	s.Each(func(doc *xmlstore.Document) bool {
		for _, p := range doc.Root.Paths() {
			pathSet[p] = struct{}{}
		}
		return true
	})
	paths := make([]string, 0, len(pathSet))
	for p := range pathSet {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	nodes := make(map[string]*Node, len(paths))
	for _, p := range paths {
		n := d.addNode(p, XMLPath, NewValueSet(budget))
		nodes[p] = n
		d.addEdge(root, n, Structural, 1)
		d.addEdge(n, root, Structural, 1)
	}

	// Fill value sets.
	s.Each(func(doc *xmlstore.Document) bool {
		var walk func(cur *xmlstore.Node, prefix string)
		walk = func(cur *xmlstore.Node, prefix string) {
			p := cur.Name
			if prefix != "" {
				p = prefix + "/" + cur.Name
			}
			if cur.Text != "" {
				if n := nodes[p]; n != nil {
					n.Values.Add(value.NewString(cur.Text))
				}
			}
			for a, v := range cur.Attrs {
				if n := nodes[p+"/@"+a]; n != nil {
					n.Values.Add(value.NewString(v))
				}
			}
			for _, c := range cur.Children {
				walk(c, p)
			}
		}
		walk(doc.Root, "")
		return true
	})
	for _, n := range nodes {
		n.Values.Seal()
	}
	return d
}
