package digest

import (
	"fmt"
	"sort"
	"strings"

	"tatooine/internal/doc"
	"tatooine/internal/fulltext"
	"tatooine/internal/rdf"
	"tatooine/internal/relstore"
	"tatooine/internal/value"
)

// NodeKind classifies digest graph nodes.
type NodeKind uint8

const (
	// RelTable is a relational table (no value set).
	RelTable NodeKind = iota
	// RelAttribute is a relational column.
	RelAttribute
	// RDFProperty is an RDF property; its value set holds object values.
	RDFProperty
	// RDFClass is an rdf:type class; its value set holds instance IRIs.
	RDFClass
	// DocRoot is a document collection (no value set).
	DocRoot
	// DocPath is a dotted document path.
	DocPath
	// XMLRoot is an XML document collection (no value set).
	XMLRoot
	// XMLPath is an XML element or attribute path.
	XMLPath
)

func (k NodeKind) String() string {
	switch k {
	case RelTable:
		return "table"
	case RelAttribute:
		return "attribute"
	case RDFProperty:
		return "property"
	case RDFClass:
		return "class"
	case DocRoot:
		return "collection"
	case DocPath:
		return "path"
	case XMLRoot:
		return "xml-collection"
	case XMLPath:
		return "xml-path"
	default:
		return fmt.Sprintf("NodeKind(%d)", uint8(k))
	}
}

// EdgeKind classifies digest graph edges.
type EdgeKind uint8

const (
	// Structural links a container to its parts (table→column,
	// collection→path) or RDF properties sharing subjects.
	Structural EdgeKind = iota
	// KeyForeignKey links a foreign key column to the referenced key.
	KeyForeignKey
	// ValueOverlap links nodes (possibly across sources) whose value
	// sets overlap — the join opportunities the paper builds on.
	ValueOverlap
)

func (k EdgeKind) String() string {
	switch k {
	case Structural:
		return "structural"
	case KeyForeignKey:
		return "fk"
	case ValueOverlap:
		return "overlap"
	default:
		return fmt.Sprintf("EdgeKind(%d)", uint8(k))
	}
}

// Node is one digest graph node.
type Node struct {
	// ID is unique within a digest set: "<source>#<label>".
	ID string
	// Source is the owning source URI ("tatooine:G" for the custom graph).
	Source string
	// Label is the attribute ("table.column"), property IRI, class IRI,
	// or document path.
	Label string
	// Kind classifies the node.
	Kind NodeKind
	// Analyzed marks document paths indexed as full text (matching uses
	// CONTAINS, not keyword equality).
	Analyzed bool
	// Values summarizes the node's atomic values (nil for containers).
	Values *ValueSet
}

// Edge is one digest graph edge.
type Edge struct {
	From, To string
	Kind     EdgeKind
	// Weight is a traversal cost (shortest-path search minimizes it).
	Weight float64
}

// Digest is the digest of one source.
type Digest struct {
	Source string
	Nodes  map[string]*Node
	Edges  []Edge
	// Version is the wire version the digest was decoded at (WireVersion
	// for locally built digests). Pruning trusts only same-version
	// digests; see PruneCapable.
	Version int
}

// NewDigest creates an empty digest for a source.
func NewDigest(source string) *Digest {
	return &Digest{Source: source, Nodes: make(map[string]*Node), Version: WireVersion}
}

// PruneCapable reports whether the digest's membership structures may
// be used to *exclude* bindings (semi-join pruning) or refine row
// estimates. Digests decoded from peers speaking another wire version
// remain usable for keyword search — which fails open — but must not
// prune: their bits were hashed under an unknown scheme.
func (d *Digest) PruneCapable() bool { return d != nil && d.Version == WireVersion }

func (d *Digest) addNode(label string, kind NodeKind, vs *ValueSet) *Node {
	n := &Node{
		ID:     d.Source + "#" + label,
		Source: d.Source,
		Label:  label,
		Kind:   kind,
		Values: vs,
	}
	d.Nodes[n.ID] = n
	return n
}

func (d *Digest) addEdge(from, to *Node, kind EdgeKind, weight float64) {
	d.Edges = append(d.Edges, Edge{From: from.ID, To: to.ID, Kind: kind, Weight: weight})
}

// NodeList returns nodes sorted by ID.
func (d *Digest) NodeList() []*Node {
	out := make([]*Node, 0, len(d.Nodes))
	for _, n := range d.Nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lookup returns the nodes whose value sets may contain the keyword,
// plus nodes whose label itself matches (schema-term hits).
func (d *Digest) Lookup(keyword string) []*Node {
	key := Normalize(keyword)
	if key == "" {
		return nil
	}
	var out []*Node
	for _, n := range d.NodeList() {
		if Normalize(n.Label) == key {
			out = append(out, n)
			continue
		}
		if n.Values != nil && n.Values.MayContain(keyword) {
			out = append(out, n)
		}
	}
	return out
}

// ---------- builders ----------

// BuildRelational digests a relational database: a table node per
// table, an attribute node per column with its value set, structural
// table→column edges, and FK edges between attributes.
func BuildRelational(uri string, db *relstore.Database, budget Budget) *Digest {
	d := NewDigest(uri)
	attrNode := make(map[string]*Node) // "table.column" → node
	for _, t := range db.Tables() {
		schema := t.Schema()
		tNode := d.addNode(schema.Name, RelTable, nil)
		for _, col := range schema.Columns {
			vs := NewValueSet(budget)
			label := schema.Name + "." + col.Name
			aNode := d.addNode(label, RelAttribute, vs)
			attrNode[strings.ToLower(label)] = aNode
			d.addEdge(tNode, aNode, Structural, 1)
			d.addEdge(aNode, tNode, Structural, 1)
		}
	}
	// Fill value sets with a single scan per table.
	for _, t := range db.Tables() {
		schema := t.Schema()
		nodes := make([]*Node, len(schema.Columns))
		for i, col := range schema.Columns {
			nodes[i] = attrNode[strings.ToLower(schema.Name+"."+col.Name)]
		}
		t.Scan(func(row value.Row) bool {
			for i, v := range row {
				nodes[i].Values.Add(v)
			}
			return true
		})
		for _, n := range nodes {
			n.Values.Seal()
		}
	}
	// FK edges.
	for _, t := range db.Tables() {
		schema := t.Schema()
		for _, fk := range schema.ForeignKeys {
			from := attrNode[strings.ToLower(schema.Name+"."+fk.Column)]
			to := attrNode[strings.ToLower(fk.RefTable+"."+fk.RefColumn)]
			if from != nil && to != nil {
				d.addEdge(from, to, KeyForeignKey, 0.5)
				d.addEdge(to, from, KeyForeignKey, 0.5)
			}
		}
	}
	return d
}

// BuildRDF digests an RDF graph: a property node per predicate (value
// set = object values), a class node per rdf:type object (value set =
// instance IRIs), and structural edges between properties that share
// subjects (the data-derived summary of [3] in the paper, reduced to
// the property-cooccurrence quotient).
func BuildRDF(uri string, g *rdf.Graph, budget Budget) *Digest {
	d := NewDigest(uri)
	typ := rdf.NewIRI(rdf.RDFType)

	propNode := make(map[string]*Node)
	subjectsOf := make(map[string]map[string]struct{}) // property → subject keys
	for _, p := range g.Properties() {
		if p == typ {
			continue
		}
		vs := NewValueSet(budget)
		n := d.addNode(p.Value, RDFProperty, vs)
		propNode[p.Value] = n
		subjects := make(map[string]struct{})
		for _, tri := range g.Match(rdf.Term{}, p, rdf.Term{}) {
			vs.Add(termDigestValue(tri.O))
			subjects[tri.S.Key()] = struct{}{}
		}
		vs.Seal()
		subjectsOf[p.Value] = subjects
	}
	// Class nodes.
	for _, cls := range g.Objects(rdf.Term{}, typ) {
		vs := NewValueSet(budget)
		n := d.addNode(cls.Value, RDFClass, vs)
		for _, tri := range g.Match(rdf.Term{}, typ, cls) {
			vs.Add(termDigestValue(tri.S))
		}
		vs.Seal()
		// Link the class to properties used by its instances.
		instances := make(map[string]struct{})
		for _, tri := range g.Match(rdf.Term{}, typ, cls) {
			instances[tri.S.Key()] = struct{}{}
		}
		for pv, subs := range subjectsOf {
			shared := false
			for s := range instances {
				if _, ok := subs[s]; ok {
					shared = true
					break
				}
			}
			if shared {
				d.addEdge(n, propNode[pv], Structural, 1)
				d.addEdge(propNode[pv], n, Structural, 1)
			}
		}
	}
	// Property co-occurrence edges.
	props := make([]string, 0, len(propNode))
	for pv := range propNode {
		props = append(props, pv)
	}
	sort.Strings(props)
	for i := 0; i < len(props); i++ {
		for j := i + 1; j < len(props); j++ {
			if shareAny(subjectsOf[props[i]], subjectsOf[props[j]]) {
				d.addEdge(propNode[props[i]], propNode[props[j]], Structural, 1)
				d.addEdge(propNode[props[j]], propNode[props[i]], Structural, 1)
			}
		}
	}
	return d
}

func shareAny(a, b map[string]struct{}) bool {
	if len(a) > len(b) {
		a, b = b, a
	}
	for k := range a {
		if _, ok := b[k]; ok {
			return true
		}
	}
	return false
}

// termDigestValue converts an RDF term to a value for digest purposes
// (IRIs keep their full text; Normalize reduces them to local names at
// match time).
func termDigestValue(t rdf.Term) value.Value {
	return value.NewString(t.Value)
}

// BuildDocument digests a full-text index: a collection root node plus
// a path node per schema field, filled from the index's stored
// documents (this is the JSON-dataguide-with-values digest of §2.2).
func BuildDocument(uri string, ix *fulltext.Index, budget Budget) *Digest {
	d := NewDigest(uri)
	root := d.addNode(ix.Name(), DocRoot, nil)
	paths := make([]string, 0, len(ix.Schema()))
	for path := range ix.Schema() {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	nodes := make(map[string]*Node, len(paths))
	for _, path := range paths {
		n := d.addNode(path, DocPath, NewValueSet(budget))
		n.Analyzed = ix.Schema()[path] == fulltext.TextField
		nodes[path] = n
		d.addEdge(root, n, Structural, 1)
		d.addEdge(n, root, Structural, 1)
	}
	analyzer := ix.Analyzer()
	ix.Each(func(dc *doc.Document) bool {
		for _, path := range paths {
			n := nodes[path]
			for _, v := range dc.Values(path) {
				if n.Analyzed {
					// Text fields digest their analyzed tokens, matching
					// how queries will probe them.
					for _, tok := range analyzer.Tokens(v.String()) {
						n.Values.Add(value.NewString(tok))
					}
					continue
				}
				n.Values.Add(v)
			}
		}
		return true
	})
	for _, n := range nodes {
		n.Values.Seal()
	}
	return d
}
