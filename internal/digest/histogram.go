package digest

import (
	"fmt"
	"math"
	"sort"
)

// Histogram summarizes a numeric value set. Both equi-width and
// equi-depth variants are supported (§2.2: "the precision level of the
// value set representations is controlled by parameters dividing up the
// available space; histograms and Bloom filters are used").
type Histogram struct {
	// Bounds holds bucket boundaries: bucket i covers
	// [Bounds[i], Bounds[i+1]) and the last bucket is closed.
	Bounds []float64
	// Counts holds per-bucket value counts.
	Counts []int
	// Min/Max are the exact extrema.
	Min, Max float64
	// N is the total number of values.
	N int
}

// NewEquiWidth builds a histogram with equal-width buckets.
func NewEquiWidth(values []float64, buckets int) *Histogram {
	return build(values, buckets, false)
}

// NewEquiDepth builds a histogram whose buckets hold roughly equal
// numbers of values (better for skewed distributions).
func NewEquiDepth(values []float64, buckets int) *Histogram {
	return build(values, buckets, true)
}

func build(values []float64, buckets int, equiDepth bool) *Histogram {
	if buckets < 1 {
		buckets = 1
	}
	h := &Histogram{}
	if len(values) == 0 {
		return h
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	h.Min, h.Max = sorted[0], sorted[len(sorted)-1]
	h.N = len(sorted)

	if equiDepth {
		// Quantile bounds. A value spanning several quantiles produces a
		// zero-width singleton bucket, which keeps estimates exact for
		// heavy hitters (skewed corpora are the norm in this domain).
		per := float64(len(sorted)) / float64(buckets)
		h.Bounds = append(h.Bounds, h.Min)
		for i := 1; i < buckets; i++ {
			idx := int(math.Round(per * float64(i)))
			if idx >= len(sorted) {
				idx = len(sorted) - 1
			}
			bound := sorted[idx]
			n := len(h.Bounds)
			// Allow at most two equal consecutive bounds (one singleton).
			if bound > h.Bounds[n-1] || (n < 2 || h.Bounds[n-2] != bound) && bound == h.Bounds[n-1] {
				h.Bounds = append(h.Bounds, bound)
			}
		}
		if h.Max > h.Bounds[len(h.Bounds)-1] {
			h.Bounds = append(h.Bounds, h.Max)
		} else if len(h.Bounds) == 1 {
			h.Bounds = append(h.Bounds, h.Max)
		}
	} else {
		width := (h.Max - h.Min) / float64(buckets)
		if width == 0 {
			h.Bounds = []float64{h.Min, h.Max}
		} else {
			for i := 0; i <= buckets; i++ {
				h.Bounds = append(h.Bounds, h.Min+width*float64(i))
			}
		}
	}
	h.Counts = make([]int, len(h.Bounds)-1)
	for _, v := range sorted {
		h.Counts[h.bucketOf(v)]++
	}
	return h
}

func (h *Histogram) bucketOf(v float64) int {
	// Last bucket is closed on the right.
	n := len(h.Bounds) - 1
	i := sort.SearchFloat64s(h.Bounds, v)
	// SearchFloat64s returns the first index with Bounds[i] >= v.
	if i > 0 && (i == len(h.Bounds) || h.Bounds[i] != v) {
		i--
	}
	if i >= n {
		i = n - 1
	}
	return i
}

// Buckets returns the number of buckets.
func (h *Histogram) Buckets() int { return len(h.Counts) }

// EstimateRange estimates how many values fall in [lo, hi] assuming
// uniformity within buckets.
func (h *Histogram) EstimateRange(lo, hi float64) float64 {
	if h.N == 0 || hi < lo || hi < h.Min || lo > h.Max {
		return 0
	}
	total := 0.0
	for i, c := range h.Counts {
		bLo, bHi := h.Bounds[i], h.Bounds[i+1]
		if bHi < lo || bLo > hi {
			continue
		}
		overlapLo := math.Max(bLo, lo)
		overlapHi := math.Min(bHi, hi)
		width := bHi - bLo
		if width == 0 {
			total += float64(c)
			continue
		}
		frac := (overlapHi - overlapLo) / width
		if frac < 0 {
			frac = 0
		}
		total += float64(c) * frac
	}
	return total
}

// MayContain reports whether v could be present (its bucket is
// non-empty and v is within [Min, Max]).
func (h *Histogram) MayContain(v float64) bool {
	if h.N == 0 || v < h.Min || v > h.Max {
		return false
	}
	return h.Counts[h.bucketOf(v)] > 0
}

// String renders a short summary.
func (h *Histogram) String() string {
	return fmt.Sprintf("hist{n=%d min=%g max=%g buckets=%d}", h.N, h.Min, h.Max, h.Buckets())
}
