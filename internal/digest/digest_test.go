package digest

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"tatooine/internal/doc"
	"tatooine/internal/fulltext"
	"tatooine/internal/rdf"
	"tatooine/internal/relstore"
	"tatooine/internal/value"
)

func TestBloomNoFalseNegatives(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBloom(100, 0.01)
		var added []string
		for i := 0; i < 100; i++ {
			s := fmt.Sprintf("value-%d", rng.Intn(10000))
			b.Add(s)
			added = append(added, s)
		}
		for _, s := range added {
			if !b.MayContain(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBloomFalsePositiveRate(t *testing.T) {
	b := NewBloom(1000, 0.01)
	for i := 0; i < 1000; i++ {
		b.Add(fmt.Sprintf("member-%d", i))
	}
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if b.MayContain(fmt.Sprintf("nonmember-%d", i)) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.05 {
		t.Errorf("false positive rate %.4f too high for 1%% filter", rate)
	}
	if est := b.EstimatedFPR(); est > 0.05 {
		t.Errorf("estimated FPR %.4f", est)
	}
}

func TestBloomBudgetTradeoff(t *testing.T) {
	// Smaller budgets must yield (weakly) more false positives.
	measure := func(bits uint64) float64 {
		b := NewBloomWithBits(bits, 4)
		for i := 0; i < 500; i++ {
			b.Add(fmt.Sprintf("m-%d", i))
		}
		fp := 0
		for i := 0; i < 5000; i++ {
			if b.MayContain(fmt.Sprintf("x-%d", i)) {
				fp++
			}
		}
		return float64(fp) / 5000
	}
	small, large := measure(512), measure(16384)
	if small <= large {
		t.Errorf("FPR small=%f should exceed large=%f", small, large)
	}
}

func TestHistogramEquiWidth(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	h := NewEquiWidth(vals, 5)
	if h.N != 10 || h.Min != 1 || h.Max != 10 {
		t.Fatalf("hist: %+v", h)
	}
	if got := h.EstimateRange(1, 10); got < 9 || got > 11 {
		t.Errorf("full range estimate: %f", got)
	}
	if got := h.EstimateRange(20, 30); got != 0 {
		t.Errorf("out of range estimate: %f", got)
	}
	if !h.MayContain(5) {
		t.Error("5 should be contained")
	}
	if h.MayContain(100) {
		t.Error("100 should not be contained")
	}
}

func TestHistogramEquiDepthSkew(t *testing.T) {
	// Heavy skew: equi-depth should split the dense region.
	var vals []float64
	for i := 0; i < 1000; i++ {
		vals = append(vals, 1.0)
	}
	vals = append(vals, 1000)
	h := NewEquiDepth(vals, 4)
	if h.N != 1001 {
		t.Fatalf("n: %d", h.N)
	}
	est := h.EstimateRange(0.5, 1.5)
	if est < 500 {
		t.Errorf("dense region estimate %f too low", est)
	}
}

func TestHistogramEmptyAndSingle(t *testing.T) {
	h := NewEquiWidth(nil, 8)
	if h.MayContain(1) || h.EstimateRange(0, 10) != 0 {
		t.Error("empty histogram should match nothing")
	}
	h1 := NewEquiWidth([]float64{7}, 8)
	if !h1.MayContain(7) {
		t.Error("single-value histogram must contain its value")
	}
	if h1.EstimateRange(6, 8) != 1 {
		t.Errorf("single estimate: %f", h1.EstimateRange(6, 8))
	}
}

func TestNormalize(t *testing.T) {
	cases := map[string]string{
		"head of state":                "headofstate",
		"headOfState":                  "headofstate",
		"HEAD-OF-STATE":                "headofstate",
		"http://t.example/headOfState": "headofstate",
		"État d'urgence":               "etatdurgence",
		"SIA2016":                      "sia2016",
		"#SIA2016":                     "sia2016",
	}
	for in, want := range cases {
		if got := Normalize(in); got != want {
			t.Errorf("Normalize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestValueSetExactVsBloom(t *testing.T) {
	b := DefaultBudget()
	b.ExactThreshold = 4
	vs := NewValueSet(b)
	for i := 0; i < 3; i++ {
		vs.Add(value.NewString(fmt.Sprintf("v%d", i)))
	}
	vs.Seal()
	if !vs.Exact() {
		t.Error("small set should stay exact")
	}
	if !vs.MayContain("v1") || vs.MayContain("v99") {
		t.Error("exact membership wrong")
	}

	vs2 := NewValueSet(b)
	for i := 0; i < 100; i++ {
		vs2.Add(value.NewString(fmt.Sprintf("w%d", i)))
	}
	vs2.Seal()
	if vs2.Exact() {
		t.Error("large set should drop exact representation")
	}
	if !vs2.MayContain("w42") {
		t.Error("bloom must not have false negatives")
	}
}

func TestValueSetNumericHistogram(t *testing.T) {
	vs := NewValueSet(DefaultBudget())
	for i := 1; i <= 100; i++ {
		vs.Add(value.NewInt(int64(i)))
	}
	vs.Seal()
	h := vs.Histogram()
	if h == nil || h.N != 100 {
		t.Fatalf("histogram: %+v", h)
	}
	if est := h.EstimateRange(1, 50); est < 40 || est > 60 {
		t.Errorf("range estimate: %f", est)
	}
}

func TestOverlapEstimate(t *testing.T) {
	b := DefaultBudget()
	a := NewValueSet(b)
	c := NewValueSet(b)
	for i := 0; i < 20; i++ {
		a.Add(value.NewString(fmt.Sprintf("shared-%d", i)))
		c.Add(value.NewString(fmt.Sprintf("shared-%d", i)))
	}
	for i := 0; i < 20; i++ {
		c.Add(value.NewString(fmt.Sprintf("private-%d", i)))
	}
	a.Seal()
	c.Seal()
	if got := OverlapEstimate(a, c); got < 0.9 {
		t.Errorf("overlap a⊆c: %f", got)
	}
	d := NewValueSet(b)
	for i := 0; i < 20; i++ {
		d.Add(value.NewString(fmt.Sprintf("disjoint-%d", i)))
	}
	d.Seal()
	if got := OverlapEstimate(a, d); got > 0.2 {
		t.Errorf("overlap disjoint: %f", got)
	}
}

func relFixture(t *testing.T) *relstore.Database {
	t.Helper()
	db := relstore.NewDatabase("insee")
	for _, q := range []string{
		"CREATE TABLE departements (code TEXT PRIMARY KEY, name TEXT, population INT)",
		"CREATE TABLE resultats (dept TEXT, party TEXT, votes INT, FOREIGN KEY (dept) REFERENCES departements(code))",
		"INSERT INTO departements VALUES ('75','Paris',2187526), ('92','Hauts-de-Seine',1609306)",
		"INSERT INTO resultats VALUES ('75','PS',350000), ('92','LR',380000)",
	} {
		if _, err := db.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestBuildRelationalDigest(t *testing.T) {
	d := BuildRelational("sql://insee", relFixture(t), DefaultBudget())
	// Table nodes + attribute nodes: 2 tables, 3+3 columns.
	if len(d.Nodes) != 8 {
		t.Fatalf("nodes: %d", len(d.Nodes))
	}
	// Keyword "Paris" is a value of departements.name.
	hits := d.Lookup("Paris")
	if len(hits) != 1 || hits[0].Label != "departements.name" {
		t.Errorf("lookup Paris: %+v", hits)
	}
	// Schema-term hit: "resultats" matches the table node label.
	hits = d.Lookup("resultats")
	if len(hits) == 0 {
		t.Error("schema term lookup failed")
	}
	// FK edge present with low weight.
	foundFK := false
	for _, e := range d.Edges {
		if e.Kind == KeyForeignKey {
			foundFK = true
		}
	}
	if !foundFK {
		t.Error("missing FK edge")
	}
}

func rdfFixture() *rdf.Graph {
	g := rdf.NewGraph()
	g.AddAll(rdf.MustParse(`
@prefix : <http://t.example/> .
:POL1 a :politician ;
  :position :headOfState ;
  :twitterAccount "fhollande" .
:POL2 a :politician ;
  :position :deputy ;
  :twitterAccount "jdupont" .
`))
	return g
}

func TestBuildRDFDigest(t *testing.T) {
	d := BuildRDF("tatooine:G", rdfFixture(), DefaultBudget())
	// "head of state" must match the position property's value set.
	hits := d.Lookup("head of state")
	found := false
	for _, n := range hits {
		if n.Label == "http://t.example/position" {
			found = true
		}
	}
	if !found {
		t.Errorf("lookup 'head of state': %+v", hits)
	}
	// Property co-occurrence edge between position and twitterAccount.
	pos := d.Source + "#http://t.example/position"
	tw := d.Source + "#http://t.example/twitterAccount"
	connected := false
	for _, e := range d.Edges {
		if e.From == pos && e.To == tw {
			connected = true
		}
	}
	if !connected {
		t.Error("co-occurring properties not connected")
	}
	// Class node for politician exists and holds instances.
	cls := d.Nodes[d.Source+"#http://t.example/politician"]
	if cls == nil || cls.Kind != RDFClass || cls.Values.Count() != 2 {
		t.Errorf("class node: %+v", cls)
	}
}

func TestBuildDocumentDigest(t *testing.T) {
	ix := fulltext.NewIndex("tweets", fulltext.Schema{
		"text":              fulltext.TextField,
		"user.screen_name":  fulltext.KeywordField,
		"entities.hashtags": fulltext.KeywordField,
	})
	d1 := &doc.Document{ID: "t1"}
	d1.Set("text", "solidarité #SIA2016")
	d1.Set("user.screen_name", "fhollande")
	d1.Set("entities.hashtags", []any{"SIA2016"})
	if err := ix.Add(d1); err != nil {
		t.Fatal(err)
	}
	d := BuildDocument("solr://tweets", ix, DefaultBudget())
	hits := d.Lookup("SIA2016")
	foundTag := false
	for _, n := range hits {
		if n.Label == "entities.hashtags" {
			foundTag = true
		}
	}
	if !foundTag {
		t.Errorf("lookup SIA2016: %+v", hits)
	}
	// Root is connected to every path.
	root := d.Source + "#tweets"
	edges := 0
	for _, e := range d.Edges {
		if e.From == root {
			edges++
		}
	}
	if edges != 3 {
		t.Errorf("root edges: %d", edges)
	}
}

func TestCrossSourceOverlap(t *testing.T) {
	// The twitterAccount property values overlap the tweet
	// user.screen_name values — the join bridge of the paper.
	rdfDig := BuildRDF("tatooine:G", rdfFixture(), DefaultBudget())
	ix := fulltext.NewIndex("tweets", fulltext.Schema{
		"user.screen_name": fulltext.KeywordField,
	})
	d1 := &doc.Document{ID: "t1"}
	d1.Set("user.screen_name", "fhollande")
	ix.Add(d1)
	docDig := BuildDocument("solr://tweets", ix, DefaultBudget())

	tw := rdfDig.Nodes["tatooine:G#http://t.example/twitterAccount"]
	sn := docDig.Nodes["solr://tweets#user.screen_name"]
	if tw == nil || sn == nil {
		t.Fatal("nodes missing")
	}
	if got := OverlapEstimate(sn.Values, tw.Values); got < 0.9 {
		t.Errorf("screen_name ⊆ twitterAccount overlap: %f", got)
	}
}
