package xmlstore

import (
	"fmt"
	"strings"
)

// Textual sub-query form used inside mixed queries against XML
// sources:
//
//	XPATH /speeches/speech[@speaker=?] RETURN _id, @date, title, text()
//
// The XPath selects element nodes; each RETURN item is evaluated per
// matched node: "_id" (document id), "@attr" (attribute), "name" (text
// of the first child element named name), or "text()" (the node's own
// text).

// TextQuery is a parsed XPATH sub-query.
type TextQuery struct {
	Path    *Path
	Returns []string
	// NumParams counts the '?' placeholders.
	NumParams int
}

// ParseTextQuery parses the XPATH ... RETURN ... form.
func ParseTextQuery(input string) (*TextQuery, error) {
	trimmed := strings.TrimSpace(input)
	upper := strings.ToUpper(trimmed)
	if !strings.HasPrefix(upper, "XPATH") {
		return nil, fmt.Errorf("xmlstore: query must start with XPATH")
	}
	rest := strings.TrimSpace(trimmed[len("XPATH"):])
	retIdx := strings.Index(strings.ToUpper(rest), "RETURN")
	if retIdx < 0 {
		return nil, fmt.Errorf("xmlstore: missing RETURN clause")
	}
	pathText := strings.TrimSpace(rest[:retIdx])
	path, err := ParsePath(pathText)
	if err != nil {
		return nil, err
	}
	if path.SelAttr != "" || path.SelText {
		return nil, fmt.Errorf("xmlstore: the XPATH of a sub-query must select elements (selectors go in RETURN)")
	}
	var returns []string
	for _, part := range strings.Split(rest[retIdx+len("RETURN"):], ",") {
		item := strings.TrimSpace(part)
		if item == "" {
			return nil, fmt.Errorf("xmlstore: empty RETURN item")
		}
		returns = append(returns, item)
	}
	if len(returns) == 0 {
		return nil, fmt.Errorf("xmlstore: RETURN needs at least one item")
	}
	return &TextQuery{Path: path, Returns: returns, NumParams: path.NumParams}, nil
}

// Execute evaluates the query over every document of the store,
// returning column names (the RETURN items) and string rows.
func (q *TextQuery) Execute(s *Store, params []string) ([]string, [][]string, error) {
	if len(params) < q.NumParams {
		return nil, nil, fmt.Errorf("xmlstore: query needs %d parameters, got %d", q.NumParams, len(params))
	}
	var rows [][]string
	var evalErr error
	s.Each(func(d *Document) bool {
		res, err := q.Path.Eval(d.Root, params)
		if err != nil {
			evalErr = err
			return false
		}
		for _, n := range res.Nodes {
			row := make([]string, len(q.Returns))
			for i, item := range q.Returns {
				switch {
				case item == "_id":
					row[i] = d.ID
				case item == "text()":
					row[i] = n.Text
				case strings.HasPrefix(item, "@"):
					row[i] = n.Attr(item[1:])
				default:
					row[i] = n.ChildText(item)
				}
			}
			rows = append(rows, row)
		}
		return true
	})
	if evalErr != nil {
		return nil, nil, evalErr
	}
	return q.Returns, rows, nil
}
