package xmlstore

import (
	"strings"
	"testing"
)

const speechXML = `<speeches>
  <speech speaker="François Hollande" date="2016-02-27" venue="Salon de l'Agriculture">
    <title>Discours sur l'agriculture</title>
    <topic>agriculture</topic>
    <body>Je suis venu soutenir les agriculteurs.</body>
  </speech>
  <speech speaker="Jean Dupont" date="2015-11-20" venue="Assemblée nationale">
    <title>Sur l'état d'urgence</title>
    <topic>etat-durgence</topic>
    <body>Le parlement doit voter la prolongation.</body>
  </speech>
</speeches>`

func store(t *testing.T) *Store {
	t.Helper()
	s := NewStore("speeches")
	if err := s.Add("d1", []byte(speechXML)); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParseTree(t *testing.T) {
	root, err := Parse([]byte(speechXML))
	if err != nil {
		t.Fatal(err)
	}
	if root.Name != "speeches" || len(root.Children) != 2 {
		t.Fatalf("root: %s children=%d", root.Name, len(root.Children))
	}
	sp := root.Children[0]
	if sp.Attr("speaker") != "François Hollande" {
		t.Errorf("attr: %q", sp.Attr("speaker"))
	}
	if sp.ChildText("topic") != "agriculture" {
		t.Errorf("child text: %q", sp.ChildText("topic"))
	}
	if sp.Parent() != root {
		t.Error("parent link")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`<a><b></a>`,
		`<a></a><b></b>`,
		`<a>`,
	}
	for _, c := range cases {
		if _, err := Parse([]byte(c)); err == nil {
			t.Errorf("expected error for %q", c)
		}
	}
}

func TestPaths(t *testing.T) {
	root, _ := Parse([]byte(speechXML))
	paths := root.Paths()
	want := []string{
		"speeches/speech/@date", "speeches/speech/@speaker", "speeches/speech/@venue",
		"speeches/speech/body", "speeches/speech/title", "speeches/speech/topic",
	}
	got := strings.Join(paths, ",")
	for _, w := range want {
		if !strings.Contains(got, w) {
			t.Errorf("missing path %q in %v", w, paths)
		}
	}
}

func TestXPathAbsolute(t *testing.T) {
	root, _ := Parse([]byte(speechXML))
	p, err := ParsePath("/speeches/speech")
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Eval(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 2 {
		t.Errorf("speeches: %d", len(res.Nodes))
	}
}

func TestXPathPredicates(t *testing.T) {
	root, _ := Parse([]byte(speechXML))
	cases := []struct {
		expr string
		want int
	}{
		{"/speeches/speech[@speaker='Jean Dupont']", 1},
		{"/speeches/speech[topic='agriculture']", 1},
		{"/speeches/speech[@speaker='Nobody']", 0},
		{"/speeches/*", 2},
		{"//speech", 2},
		{"//title", 2},
		{"/speeches/speech[@speaker='Jean Dupont'][topic='etat-durgence']", 1},
		{"/speeches/speech[@speaker='Jean Dupont'][topic='agriculture']", 0},
	}
	for _, c := range cases {
		p, err := ParsePath(c.expr)
		if err != nil {
			t.Errorf("parse %q: %v", c.expr, err)
			continue
		}
		res, err := p.Eval(root, nil)
		if err != nil {
			t.Errorf("eval %q: %v", c.expr, err)
			continue
		}
		if len(res.Nodes) != c.want {
			t.Errorf("%q: %d nodes, want %d", c.expr, len(res.Nodes), c.want)
		}
	}
}

func TestXPathSelectors(t *testing.T) {
	root, _ := Parse([]byte(speechXML))
	p, err := ParsePath("/speeches/speech/@date")
	if err != nil {
		t.Fatal(err)
	}
	res, _ := p.Eval(root, nil)
	if len(res.Strings) != 2 || res.Strings[0] != "2016-02-27" {
		t.Errorf("attr selector: %v", res.Strings)
	}
	p2, _ := ParsePath("/speeches/speech/title/text()")
	res2, _ := p2.Eval(root, nil)
	if len(res2.Strings) != 2 || !strings.Contains(res2.Strings[0], "agriculture") {
		t.Errorf("text selector: %v", res2.Strings)
	}
}

func TestXPathParams(t *testing.T) {
	root, _ := Parse([]byte(speechXML))
	p, err := ParsePath("/speeches/speech[@speaker=?]")
	if err != nil {
		t.Fatal(err)
	}
	if p.NumParams != 1 {
		t.Fatalf("params: %d", p.NumParams)
	}
	res, err := p.Eval(root, []string{"François Hollande"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 1 {
		t.Errorf("param eval: %d", len(res.Nodes))
	}
	if _, err := p.Eval(root, nil); err == nil {
		t.Error("missing param accepted")
	}
}

func TestXPathParseErrors(t *testing.T) {
	cases := []string{
		"",
		"speech",
		"/speeches/speech[",
		"/speeches/speech[@a]",
		"/speeches/speech[@a=unquoted]",
		"/@attr",
		"//",
	}
	for _, c := range cases {
		if _, err := ParsePath(c); err == nil {
			t.Errorf("expected error for %q", c)
		}
	}
}

func TestTextQueryExecute(t *testing.T) {
	s := store(t)
	q, err := ParseTextQuery("XPATH /speeches/speech[@speaker=?] RETURN _id, @date, title, text()")
	if err != nil {
		t.Fatal(err)
	}
	cols, rows, err := q.Execute(s, []string{"Jean Dupont"})
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 4 || len(rows) != 1 {
		t.Fatalf("result: %v %v", cols, rows)
	}
	if rows[0][0] != "d1" || rows[0][1] != "2015-11-20" {
		t.Errorf("row: %v", rows[0])
	}
	if !strings.Contains(rows[0][2], "urgence") {
		t.Errorf("title: %q", rows[0][2])
	}
}

func TestTextQueryErrors(t *testing.T) {
	cases := []string{
		"SELECT * FROM t",
		"XPATH /a/b",
		"XPATH /a/b/@x RETURN _id",
		"XPATH /a/b RETURN ",
	}
	for _, c := range cases {
		if _, err := ParseTextQuery(c); err == nil {
			t.Errorf("expected error for %q", c)
		}
	}
}

func TestStoreDuplicateAndGet(t *testing.T) {
	s := store(t)
	if err := s.Add("d1", []byte("<x/>")); err == nil {
		t.Error("duplicate ID accepted")
	}
	if s.Get("d1") == nil || s.Get("zz") != nil {
		t.Error("Get behaviour")
	}
	if s.Count() != 1 {
		t.Errorf("count: %d", s.Count())
	}
}
