// Package xmlstore implements TATOOINE's structured-text substrate:
// XML documents (laws, regulations, public speeches — §1/§2.1 of the
// paper) stored as element trees and queried with an XPath subset.
// Like the other substrates it is exposed to the mediator through a
// source adapter accepting a textual sub-query language.
package xmlstore

import (
	"encoding/xml"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Node is one XML element.
type Node struct {
	Name     string
	Attrs    map[string]string
	Children []*Node
	// Text is the concatenated character data directly under the
	// element (trimmed).
	Text   string
	parent *Node
}

// Parent returns the enclosing element (nil at the root).
func (n *Node) Parent() *Node { return n.parent }

// Attr returns an attribute value ("" when absent).
func (n *Node) Attr(name string) string { return n.Attrs[name] }

// ChildText returns the text of the first child with the given name.
func (n *Node) ChildText(name string) string {
	for _, c := range n.Children {
		if c.Name == name {
			return c.Text
		}
	}
	return ""
}

// Parse decodes one XML document into its root element.
func Parse(data []byte) (*Node, error) {
	dec := xml.NewDecoder(strings.NewReader(string(data)))
	var root *Node
	var stack []*Node
	for {
		tok, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			return nil, fmt.Errorf("xmlstore: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := &Node{Name: t.Name.Local, Attrs: make(map[string]string)}
			for _, a := range t.Attr {
				n.Attrs[a.Name.Local] = a.Value
			}
			if len(stack) > 0 {
				parent := stack[len(stack)-1]
				n.parent = parent
				parent.Children = append(parent.Children, n)
			} else if root == nil {
				root = n
			} else {
				return nil, fmt.Errorf("xmlstore: multiple root elements")
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmlstore: unbalanced end element %s", t.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) > 0 {
				text := strings.TrimSpace(string(t))
				if text != "" {
					cur := stack[len(stack)-1]
					if cur.Text != "" {
						cur.Text += " "
					}
					cur.Text += text
				}
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("xmlstore: empty document")
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmlstore: unclosed element %s", stack[len(stack)-1].Name)
	}
	return root, nil
}

// Paths returns the distinct element and attribute paths of the tree
// ("speeches/speech/title", "speeches/speech/@date"), for dataguides
// and digests.
func (n *Node) Paths() []string {
	seen := make(map[string]struct{})
	var walk func(cur *Node, prefix string)
	walk = func(cur *Node, prefix string) {
		p := cur.Name
		if prefix != "" {
			p = prefix + "/" + cur.Name
		}
		if cur.Text != "" {
			seen[p] = struct{}{}
		}
		for a := range cur.Attrs {
			seen[p+"/@"+a] = struct{}{}
		}
		for _, c := range cur.Children {
			walk(c, p)
		}
	}
	walk(n, "")
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Store is a named collection of XML documents, safe for concurrent
// use.
type Store struct {
	mu   sync.RWMutex
	name string
	docs []*Document
	byID map[string]int
}

// Document is one stored XML document.
type Document struct {
	ID   string
	Root *Node
}

// NewStore creates an empty store.
func NewStore(name string) *Store {
	return &Store{name: name, byID: make(map[string]int)}
}

// Name returns the store name.
func (s *Store) Name() string { return s.name }

// Add parses and stores a document; IDs must be unique.
func (s *Store) Add(id string, data []byte) error {
	root, err := Parse(data)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.byID[id]; dup {
		return fmt.Errorf("xmlstore: duplicate document ID %q", id)
	}
	s.byID[id] = len(s.docs)
	s.docs = append(s.docs, &Document{ID: id, Root: root})
	return nil
}

// Get returns a document by ID, or nil.
func (s *Store) Get(id string) *Document {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if i, ok := s.byID[id]; ok {
		return s.docs[i]
	}
	return nil
}

// Count returns the number of documents.
func (s *Store) Count() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.docs)
}

// Each calls fn for every document until it returns false.
func (s *Store) Each(fn func(d *Document) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, d := range s.docs {
		if !fn(d) {
			return
		}
	}
}
