package xmlstore

import (
	"fmt"
	"strings"
)

// XPath subset: location paths over the element tree.
//
//	/speeches/speech                absolute child steps
//	//speech                        descendant-or-self
//	/speeches/*/title               wildcard element
//	/speeches/speech[@speaker='X']  attribute equality predicate
//	/speeches/speech[topic='Y']     child-text equality predicate
//	…/@date                         attribute selection (string result)
//	…/text()                        text selection
//
// Predicate values may be '?' parameters, bound at evaluation (the
// mediator's bind joins push outer values there).

// Step is one location step.
type Step struct {
	// Descendant marks '//' (descendant-or-self search).
	Descendant bool
	// Name is the element name ("*" matches any).
	Name string
	// Preds are the step's predicates (all must hold).
	Preds []Predicate
}

// Predicate is an equality test on an attribute or child text.
type Predicate struct {
	// Attr is true for [@name='v'], false for [child='v'].
	Attr bool
	// Name is the attribute or child element name.
	Name string
	// Value is the literal; Param >= 0 marks the n-th '?' parameter.
	Value string
	Param int
}

// Path is a parsed XPath expression: steps plus an optional final
// selector (attribute or text()).
type Path struct {
	Steps []Step
	// SelAttr selects an attribute of matched nodes ("" = none).
	SelAttr string
	// SelText selects the text of matched nodes.
	SelText bool
	// NumParams counts '?' placeholders in document order.
	NumParams int
}

// ParsePath parses the XPath subset.
func ParsePath(expr string) (*Path, error) {
	expr = strings.TrimSpace(expr)
	if expr == "" || expr[0] != '/' {
		return nil, fmt.Errorf("xmlstore: xpath must start with '/': %q", expr)
	}
	p := &Path{}
	i := 0
	params := 0
	for i < len(expr) {
		if expr[i] != '/' {
			return nil, fmt.Errorf("xmlstore: expected '/' at %d in %q", i, expr)
		}
		i++
		step := Step{}
		if i < len(expr) && expr[i] == '/' {
			step.Descendant = true
			i++
		}
		// Selector endings.
		if strings.HasPrefix(expr[i:], "@") {
			if len(p.Steps) == 0 {
				return nil, fmt.Errorf("xmlstore: attribute selector needs a preceding step")
			}
			p.SelAttr = expr[i+1:]
			if p.SelAttr == "" || strings.ContainsAny(p.SelAttr, "/[") {
				return nil, fmt.Errorf("xmlstore: malformed attribute selector in %q", expr)
			}
			p.NumParams = params
			return p, nil
		}
		if strings.HasPrefix(expr[i:], "text()") && i+6 == len(expr) {
			if len(p.Steps) == 0 {
				return nil, fmt.Errorf("xmlstore: text() needs a preceding step")
			}
			p.SelText = true
			p.NumParams = params
			return p, nil
		}
		// Element name.
		j := i
		for j < len(expr) && expr[j] != '/' && expr[j] != '[' {
			j++
		}
		step.Name = expr[i:j]
		if step.Name == "" {
			return nil, fmt.Errorf("xmlstore: empty step name in %q", expr)
		}
		i = j
		// Predicates (a step may carry several).
		for i < len(expr) && expr[i] == '[' {
			end := strings.IndexByte(expr[i:], ']')
			if end < 0 {
				return nil, fmt.Errorf("xmlstore: unterminated predicate in %q", expr)
			}
			pred, np, err := parsePredicate(expr[i+1:i+end], params)
			if err != nil {
				return nil, err
			}
			params = np
			step.Preds = append(step.Preds, *pred)
			i += end + 1
		}
		p.Steps = append(p.Steps, step)
	}
	if len(p.Steps) == 0 {
		return nil, fmt.Errorf("xmlstore: empty path %q", expr)
	}
	p.NumParams = params
	return p, nil
}

func parsePredicate(s string, params int) (*Predicate, int, error) {
	s = strings.TrimSpace(s)
	pred := &Predicate{Param: -1}
	if strings.HasPrefix(s, "@") {
		pred.Attr = true
		s = s[1:]
	}
	eq := strings.IndexByte(s, '=')
	if eq < 0 {
		return nil, params, fmt.Errorf("xmlstore: predicate must be an equality: %q", s)
	}
	pred.Name = strings.TrimSpace(s[:eq])
	if pred.Name == "" {
		return nil, params, fmt.Errorf("xmlstore: empty predicate name in %q", s)
	}
	rhs := strings.TrimSpace(s[eq+1:])
	switch {
	case rhs == "?":
		pred.Param = params
		params++
	case len(rhs) >= 2 && rhs[0] == '\'' && rhs[len(rhs)-1] == '\'':
		pred.Value = rhs[1 : len(rhs)-1]
	default:
		return nil, params, fmt.Errorf("xmlstore: predicate value must be quoted or '?': %q", rhs)
	}
	return pred, params, nil
}

// Eval evaluates the path over a document root, with params bound to
// the '?' placeholders. It returns the matched element nodes; when a
// selector (attribute / text()) is present, Strings holds the selected
// values positionally (empty string when absent).
type Result struct {
	Nodes   []*Node
	Strings []string
}

// Eval runs the path against a root element.
func (p *Path) Eval(root *Node, params []string) (*Result, error) {
	if len(params) < p.NumParams {
		return nil, fmt.Errorf("xmlstore: path needs %d parameters, got %d", p.NumParams, len(params))
	}
	cur := []*Node{}
	// The first step matches the root (or searches from it for //).
	first := p.Steps[0]
	if first.Descendant {
		collectDescendants(root, first.Name, &cur)
	} else if nameMatches(first.Name, root.Name) {
		cur = append(cur, root)
	}
	cur = filterPreds(cur, first.Preds, params)

	for _, step := range p.Steps[1:] {
		var next []*Node
		for _, n := range cur {
			if step.Descendant {
				for _, c := range n.Children {
					collectDescendants(c, step.Name, &next)
				}
			} else {
				for _, c := range n.Children {
					if nameMatches(step.Name, c.Name) {
						next = append(next, c)
					}
				}
			}
		}
		cur = filterPreds(next, step.Preds, params)
	}

	res := &Result{Nodes: cur}
	if p.SelAttr != "" {
		for _, n := range cur {
			res.Strings = append(res.Strings, n.Attr(p.SelAttr))
		}
	} else if p.SelText {
		for _, n := range cur {
			res.Strings = append(res.Strings, n.Text)
		}
	}
	return res, nil
}

func nameMatches(pattern, name string) bool {
	return pattern == "*" || pattern == name
}

// collectDescendants gathers n and all descendants matching name.
func collectDescendants(n *Node, name string, out *[]*Node) {
	if nameMatches(name, n.Name) {
		*out = append(*out, n)
	}
	for _, c := range n.Children {
		collectDescendants(c, name, out)
	}
}

func filterPreds(nodes []*Node, preds []Predicate, params []string) []*Node {
	if len(preds) == 0 {
		return nodes
	}
	var out []*Node
	for _, n := range nodes {
		keep := true
		for _, pred := range preds {
			want := pred.Value
			if pred.Param >= 0 {
				want = params[pred.Param]
			}
			var got string
			if pred.Attr {
				got = n.Attr(pred.Name)
			} else {
				got = n.ChildText(pred.Name)
			}
			if got != want {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, n)
		}
	}
	return out
}
