// Package summary derives structural summaries from schema-less data,
// as the paper's digests require ("its schema (if it has one; otherwise
// we use data-derived structural summaries, i.e., XML or JSON
// Dataguides, RDF summaries, etc.)", §2.2): JSON dataguides over
// document collections, characteristic-set summaries over RDF graphs,
// and schema graphs over relational databases.
package summary

import (
	"fmt"
	"sort"
	"strings"

	"tatooine/internal/doc"
	"tatooine/internal/rdf"
	"tatooine/internal/relstore"
	"tatooine/internal/value"
)

// ---------- JSON dataguide ----------

// PathInfo describes one dotted path of a dataguide.
type PathInfo struct {
	Path string
	// Kinds counts the value kinds observed at the path.
	Kinds map[value.Kind]int
	// Count is the number of scalar occurrences.
	Count int
	// DocCount is the number of documents containing the path.
	DocCount int
}

// Dataguide is a data-derived structural summary of a document
// collection: the set of all dotted paths with type statistics.
type Dataguide struct {
	Paths map[string]*PathInfo
	Docs  int
}

// BuildDataguide scans documents and accumulates their paths.
func BuildDataguide(docs []*doc.Document) *Dataguide {
	dg := &Dataguide{Paths: make(map[string]*PathInfo)}
	for _, d := range docs {
		dg.AddDoc(d)
	}
	return dg
}

// AddDoc extends the dataguide with one document.
func (dg *Dataguide) AddDoc(d *doc.Document) {
	dg.Docs++
	for _, p := range d.Paths() {
		info, ok := dg.Paths[p]
		if !ok {
			info = &PathInfo{Path: p, Kinds: make(map[value.Kind]int)}
			dg.Paths[p] = info
		}
		info.DocCount++
		for _, v := range d.Values(p) {
			info.Count++
			info.Kinds[v.Kind()]++
		}
	}
}

// PathList returns paths sorted alphabetically.
func (dg *Dataguide) PathList() []*PathInfo {
	out := make([]*PathInfo, 0, len(dg.Paths))
	for _, p := range dg.Paths {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// DominantKind returns the most frequent kind at a path.
func (p *PathInfo) DominantKind() value.Kind {
	best, bestN := value.String, -1
	for k, n := range p.Kinds {
		if n > bestN {
			best, bestN = k, n
		}
	}
	return best
}

// String renders the dataguide as an indented path tree.
func (dg *Dataguide) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "dataguide (%d docs)\n", dg.Docs)
	for _, p := range dg.PathList() {
		fmt.Fprintf(&b, "  %-32s %-8v n=%d docs=%d\n", p.Path, p.DominantKind(), p.Count, p.DocCount)
	}
	return b.String()
}

// ---------- RDF summary ----------

// CharacteristicSet is one equivalence class of an RDF summary: the
// subjects sharing exactly the same property set (a quotient summary in
// the spirit of the paper's reference [3]).
type CharacteristicSet struct {
	// Properties is the sorted property IRI set.
	Properties []string
	// Subjects is the number of subjects in the class.
	Subjects int
	// Classes lists the rdf:type objects observed for these subjects.
	Classes []string
}

// RDFSummary is the set of characteristic sets of a graph.
type RDFSummary struct {
	Sets []*CharacteristicSet
}

// BuildRDFSummary groups the graph's subjects by property set.
func BuildRDFSummary(g *rdf.Graph) *RDFSummary {
	typ := rdf.NewIRI(rdf.RDFType)
	// subject key → property set, classes
	props := make(map[string]map[string]struct{})
	classes := make(map[string]map[string]struct{})
	subjTerm := make(map[string]rdf.Term)
	for _, tri := range g.Match(rdf.Term{}, rdf.Term{}, rdf.Term{}) {
		sk := tri.S.Key()
		subjTerm[sk] = tri.S
		if tri.P == typ {
			if classes[sk] == nil {
				classes[sk] = make(map[string]struct{})
			}
			classes[sk][tri.O.Value] = struct{}{}
			continue
		}
		if props[sk] == nil {
			props[sk] = make(map[string]struct{})
		}
		props[sk][tri.P.Value] = struct{}{}
	}
	group := make(map[string]*CharacteristicSet)
	for sk := range subjTerm {
		var ps []string
		for p := range props[sk] {
			ps = append(ps, p)
		}
		sort.Strings(ps)
		key := strings.Join(ps, "\x00")
		cs, ok := group[key]
		if !ok {
			cs = &CharacteristicSet{Properties: ps}
			group[key] = cs
		}
		cs.Subjects++
		for c := range classes[sk] {
			if !contains(cs.Classes, c) {
				cs.Classes = append(cs.Classes, c)
			}
		}
	}
	out := &RDFSummary{}
	for _, cs := range group {
		sort.Strings(cs.Classes)
		out.Sets = append(out.Sets, cs)
	}
	sort.Slice(out.Sets, func(i, j int) bool {
		if out.Sets[i].Subjects != out.Sets[j].Subjects {
			return out.Sets[i].Subjects > out.Sets[j].Subjects
		}
		return strings.Join(out.Sets[i].Properties, ",") < strings.Join(out.Sets[j].Properties, ",")
	})
	return out
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// ---------- relational schema graph ----------

// SchemaGraph summarizes a relational database's structure.
type SchemaGraph struct {
	Tables []TableSummary
}

// TableSummary is one table with its columns and keys.
type TableSummary struct {
	Name        string
	Columns     []relstore.Column
	PrimaryKey  []string
	ForeignKeys []relstore.ForeignKey
	Rows        int
}

// BuildSchemaGraph summarizes db.
func BuildSchemaGraph(db *relstore.Database) *SchemaGraph {
	sg := &SchemaGraph{}
	for _, t := range db.Tables() {
		s := t.Schema()
		sg.Tables = append(sg.Tables, TableSummary{
			Name:        s.Name,
			Columns:     s.Columns,
			PrimaryKey:  s.PrimaryKey,
			ForeignKeys: s.ForeignKeys,
			Rows:        t.RowCount(),
		})
	}
	return sg
}

// String renders the schema graph.
func (sg *SchemaGraph) String() string {
	var b strings.Builder
	for _, t := range sg.Tables {
		fmt.Fprintf(&b, "%s (%d rows)\n", t.Name, t.Rows)
		for _, c := range t.Columns {
			pk := ""
			for _, k := range t.PrimaryKey {
				if strings.EqualFold(k, c.Name) {
					pk = " PK"
				}
			}
			fmt.Fprintf(&b, "  %-24s %v%s\n", c.Name, c.Type, pk)
		}
		for _, fk := range t.ForeignKeys {
			fmt.Fprintf(&b, "  %s -> %s.%s\n", fk.Column, fk.RefTable, fk.RefColumn)
		}
	}
	return b.String()
}
