package summary

import (
	"strings"
	"testing"

	"tatooine/internal/doc"
	"tatooine/internal/rdf"
	"tatooine/internal/relstore"
	"tatooine/internal/value"
)

func TestDataguide(t *testing.T) {
	docs := []*doc.Document{}
	mk := func(id string, fields map[string]any) *doc.Document {
		d := &doc.Document{ID: id}
		for k, v := range fields {
			d.Set(k, v)
		}
		return d
	}
	docs = append(docs,
		mk("t1", map[string]any{"text": "a", "user.screen_name": "x", "retweet_count": 1}),
		mk("t2", map[string]any{"text": "b", "user.screen_name": "y"}),
		mk("t3", map[string]any{"text": "c", "user.verified": true}),
	)
	dg := BuildDataguide(docs)
	if dg.Docs != 3 {
		t.Fatalf("docs: %d", dg.Docs)
	}
	if len(dg.Paths) != 4 {
		t.Fatalf("paths: %v", dg.PathList())
	}
	text := dg.Paths["text"]
	if text.DocCount != 3 || text.Count != 3 {
		t.Errorf("text info: %+v", text)
	}
	if dg.Paths["retweet_count"].DominantKind() != value.Int {
		t.Error("retweet_count kind")
	}
	if !strings.Contains(dg.String(), "user.screen_name") {
		t.Error("String output")
	}
}

func TestRDFSummaryCharacteristicSets(t *testing.T) {
	g := rdf.NewGraph()
	g.AddAll(rdf.MustParse(`
@prefix : <http://t.example/> .
:P1 a :politician ; :name "A" ; :twitter "a" .
:P2 a :politician ; :name "B" ; :twitter "b" .
:P3 a :politician ; :name "C" .
:Party1 a :party ; :name "PS" .
`))
	s := BuildRDFSummary(g)
	// P1/P2 share {name, twitter}; P3 and Party1 share {name} (character-
	// istic sets group by property set, regardless of rdf:type).
	if len(s.Sets) != 2 {
		t.Fatalf("sets: %+v", s.Sets)
	}
	var nameTwitter, nameOnly *CharacteristicSet
	for _, cs := range s.Sets {
		switch len(cs.Properties) {
		case 2:
			nameTwitter = cs
		case 1:
			nameOnly = cs
		}
	}
	if nameTwitter == nil || nameTwitter.Subjects != 2 {
		t.Errorf("{name,twitter} set: %+v", nameTwitter)
	}
	if nameTwitter != nil && (len(nameTwitter.Classes) != 1 || nameTwitter.Classes[0] != "http://t.example/politician") {
		t.Errorf("{name,twitter} classes: %v", nameTwitter.Classes)
	}
	if nameOnly == nil || nameOnly.Subjects != 2 || len(nameOnly.Classes) != 2 {
		t.Errorf("{name} set: %+v", nameOnly)
	}
}

func TestRDFSummaryEmptyGraph(t *testing.T) {
	s := BuildRDFSummary(rdf.NewGraph())
	if len(s.Sets) != 0 {
		t.Errorf("empty graph sets: %+v", s.Sets)
	}
}

func TestSchemaGraph(t *testing.T) {
	db := relstore.NewDatabase("d")
	db.Exec("CREATE TABLE a (id INT PRIMARY KEY, name TEXT)")
	db.Exec("CREATE TABLE b (aid INT, v FLOAT, FOREIGN KEY (aid) REFERENCES a(id))")
	db.Exec("INSERT INTO a VALUES (1, 'x')")
	sg := BuildSchemaGraph(db)
	if len(sg.Tables) != 2 {
		t.Fatalf("tables: %d", len(sg.Tables))
	}
	if sg.Tables[0].Name != "a" || sg.Tables[0].Rows != 1 {
		t.Errorf("table a: %+v", sg.Tables[0])
	}
	out := sg.String()
	for _, want := range []string{"a (1 rows)", "id", "PK", "aid -> a.id"} {
		if !strings.Contains(out, want) {
			t.Errorf("schema graph output missing %q:\n%s", want, out)
		}
	}
}
