package fulltext

import (
	"testing"

	"tatooine/internal/value"
)

func TestParseTextQueryFull(t *testing.T) {
	q, err := ParseTextQuery(`SEARCH tweets
WHERE entities.hashtags = ? AND text CONTAINS 'solidarité'
      AND retweet_count >= 100 AND created_at BETWEEN 2016-01-01T00:00:00Z AND 2016-12-31T00:00:00Z
      AND favorite_count <= 1000 AND text PHRASE 'solidarité nationale'
RETURN _id, user.screen_name, _score
ORDER BY retweet_count DESC LIMIT 50`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Index != "tweets" || len(q.Conds) != 6 || q.NumParams != 1 {
		t.Fatalf("parsed: %+v", q)
	}
	ops := []CondOp{CondEq, CondContains, CondGe, CondBetween, CondLe, CondPhrase}
	for i, want := range ops {
		if q.Conds[i].Op != want {
			t.Errorf("cond %d op %v, want %v", i, q.Conds[i].Op, want)
		}
	}
	if q.Conds[0].Param != 0 || q.Conds[1].Param != -1 {
		t.Errorf("params: %+v", q.Conds[:2])
	}
	if len(q.Returns) != 3 || q.Returns[2] != "_score" {
		t.Errorf("returns: %v", q.Returns)
	}
	if q.OrderBy != "retweet_count" || !q.Desc || q.Limit != 50 {
		t.Errorf("order/limit: %+v", q)
	}
}

func TestParseTextQueryNoWhere(t *testing.T) {
	q, err := ParseTextQuery("SEARCH tweets RETURN _id LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Conds) != 0 || q.Limit != 3 {
		t.Errorf("parsed: %+v", q)
	}
}

func TestParseTextQueryErrors(t *testing.T) {
	cases := []string{
		"",
		"FIND tweets RETURN _id",
		"SEARCH tweets",
		"SEARCH tweets WHERE RETURN _id",
		"SEARCH tweets WHERE f = RETURN _id",
		"SEARCH tweets WHERE f LIKE 'x' RETURN _id",
		"SEARCH tweets WHERE f BETWEEN 1 RETURN _id",
		"SEARCH tweets RETURN _id ORDER retweets",
		"SEARCH tweets RETURN _id LIMIT xx",
		"SEARCH tweets RETURN _id trailing",
		"SEARCH tweets WHERE f = 'unterminated RETURN _id",
	}
	for _, c := range cases {
		if _, err := ParseTextQuery(c); err == nil {
			t.Errorf("expected error for %q", c)
		}
	}
}

func TestTextQueryExecuteAllCondKinds(t *testing.T) {
	ix := testIndex(t)
	q, err := ParseTextQuery(`SEARCH tweets
WHERE text CONTAINS 'agriculteurs' AND retweet_count BETWEEN 1 AND 100
RETURN _id, retweet_count ORDER BY retweet_count`)
	if err != nil {
		t.Fatal(err)
	}
	cols, rows, err := q.Execute(ix, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 2 || len(rows) != 2 { // t2 (12), t4 (5) — ascending
		t.Fatalf("rows: %+v", rows)
	}
	if rows[0][1].Int() != 5 || rows[1][1].Int() != 12 {
		t.Errorf("ascending order: %+v", rows)
	}
}

func TestTextQueryExecuteScoreAndMissingField(t *testing.T) {
	ix := testIndex(t)
	q, err := ParseTextQuery(`SEARCH tweets WHERE text CONTAINS 'solidarité' RETURN _score, user.missing`)
	if err != nil {
		t.Fatal(err)
	}
	_, rows, err := q.Execute(ix, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	if rows[0][0].Kind() != value.Float || rows[0][0].Float() <= 0 {
		t.Errorf("score: %v", rows[0][0])
	}
	if !rows[0][1].IsNull() {
		t.Errorf("missing field should be NULL: %v", rows[0][1])
	}
}

func TestTextQueryMissingParams(t *testing.T) {
	ix := testIndex(t)
	q, _ := ParseTextQuery(`SEARCH tweets WHERE entities.hashtags = ? RETURN _id`)
	if _, _, err := q.Execute(ix, nil); err == nil {
		t.Error("missing params accepted")
	}
}

func TestTextQueryPhraseViaText(t *testing.T) {
	ix := testIndex(t)
	q, err := ParseTextQuery(`SEARCH tweets WHERE text PHRASE 'solidarité nationale' RETURN _id`)
	if err != nil {
		t.Fatal(err)
	}
	_, rows, err := q.Execute(ix, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].Str() != "t1" {
		t.Errorf("phrase rows: %+v", rows)
	}
}

func TestAnalyzerNoStem(t *testing.T) {
	a := NewAnalyzerNoStem()
	toks := a.Tokens("les agriculteurs")
	if len(toks) != 1 || toks[0] != "agriculteurs" {
		t.Errorf("no-stem tokens: %v", toks)
	}
}

func TestIsStopword(t *testing.T) {
	if !IsStopword("les") || !IsStopword("THE") {
		t.Error("stopword detection")
	}
	if IsStopword("agriculture") {
		t.Error("false stopword")
	}
}

// Property: analysis is idempotent — re-analyzing the analyzed tokens
// yields the same tokens (stemming reaches a fixpoint for our corpus
// vocabulary; guard against oscillation regressions).
func TestAnalyzerIdempotentOnVocab(t *testing.T) {
	a := NewAnalyzer()
	vocab := []string{
		"solidarité nationale", "les agriculteurs manifestent",
		"l'état d'urgence", "perquisitions excès libertés",
		"#SIA2016 au salon", "chômage économie croissance",
	}
	for _, text := range vocab {
		once := a.Tokens(text)
		for _, tok := range once {
			again := a.Tokens(tok)
			if len(again) > 1 {
				t.Errorf("token %q re-split: %v", tok, again)
				continue
			}
			if len(again) == 1 && again[0] != tok && LightStem(again[0]) != tok {
				// One extra stemming round is tolerated only if stable after.
				third := a.Tokens(again[0])
				if len(third) != 1 || third[0] != again[0] {
					t.Errorf("token %q unstable: %v -> %v", tok, again, third)
				}
			}
		}
	}
}
