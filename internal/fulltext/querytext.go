package fulltext

import (
	"fmt"
	"strconv"
	"strings"

	"tatooine/internal/value"
)

// This file implements the textual query syntax used when full-text
// sub-queries appear inside Conjunctive Mixed Queries, playing the role
// of Solr's query strings in the paper:
//
//	SEARCH tweets
//	WHERE entities.hashtags = ? AND text CONTAINS 'solidarité'
//	      AND retweet_count >= 100
//	RETURN _id, user.screen_name, text
//	ORDER BY retweet_count DESC LIMIT 50
//
// Conditions: '=' (keyword equality), CONTAINS (analyzed match),
// PHRASE (ordered phrase), <=, >=, BETWEEN..AND (numeric/time ranges),
// all conjoined with AND. '?' marks a positional parameter bound at
// execution time (bind joins). RETURN paths may include the pseudo
// fields _id and _score.

// TextQuery is a parsed SEARCH statement.
type TextQuery struct {
	Index   string
	Conds   []Cond
	Returns []string
	OrderBy string
	Desc    bool
	Limit   int // 0 = unlimited
	// NumParams is the number of '?' placeholders, in cond order.
	NumParams int
}

// CondOp enumerates condition operators.
type CondOp uint8

const (
	CondEq CondOp = iota
	CondContains
	CondPhrase
	CondGe
	CondLe
	CondBetween
)

// Cond is one WHERE conjunct. A Param index >= 0 marks the value as the
// n-th '?' parameter; Val holds the literal otherwise. Between uses
// Val/Val2 (or Param/Param2).
type Cond struct {
	Field  string
	Op     CondOp
	Val    value.Value
	Val2   value.Value
	Param  int // -1 when literal
	Param2 int
}

// ParseTextQuery parses the SEARCH syntax.
func ParseTextQuery(input string) (*TextQuery, error) {
	toks, err := lexQuery(input)
	if err != nil {
		return nil, err
	}
	p := &qparser{toks: toks}
	return p.parse()
}

type qtoken struct {
	kind string // "word", "string", "number", "op", "param", "eof"
	text string
}

func lexQuery(input string) ([]qtoken, error) {
	var out []qtoken
	i, n := 0, len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'':
			j := i + 1
			var b strings.Builder
			closed := false
			for j < n {
				if input[j] == '\'' {
					if j+1 < n && input[j+1] == '\'' {
						b.WriteByte('\'')
						j += 2
						continue
					}
					closed = true
					j++
					break
				}
				b.WriteByte(input[j])
				j++
			}
			if !closed {
				return nil, fmt.Errorf("fulltext: unterminated string in query")
			}
			out = append(out, qtoken{"string", b.String()})
			i = j
		case c == '?':
			out = append(out, qtoken{"param", "?"})
			i++
		case c == ',':
			out = append(out, qtoken{"op", ","})
			i++
		case c == '=':
			out = append(out, qtoken{"op", "="})
			i++
		case c == '>' && i+1 < n && input[i+1] == '=':
			out = append(out, qtoken{"op", ">="})
			i += 2
		case c == '<' && i+1 < n && input[i+1] == '=':
			out = append(out, qtoken{"op", "<="})
			i += 2
		case c >= '0' && c <= '9' || c == '-':
			j := i + 1
			for j < n && (input[j] >= '0' && input[j] <= '9' || input[j] == '.' ||
				input[j] == ':' || input[j] == 'T' || input[j] == 'Z' || input[j] == '-' || input[j] == '+') {
				j++
			}
			out = append(out, qtoken{"number", input[i:j]})
			i = j
		default:
			j := i
			for j < n && !strings.ContainsRune(" \t\n\r'?,=<>", rune(input[j])) {
				j++
			}
			if j == i {
				return nil, fmt.Errorf("fulltext: unexpected character %q in query", c)
			}
			out = append(out, qtoken{"word", input[i:j]})
			i = j
		}
	}
	out = append(out, qtoken{"eof", ""})
	return out, nil
}

type qparser struct {
	toks   []qtoken
	pos    int
	params int
}

func (p *qparser) cur() qtoken { return p.toks[p.pos] }

func (p *qparser) acceptWord(w string) bool {
	t := p.cur()
	if t.kind == "word" && strings.EqualFold(t.text, w) {
		p.pos++
		return true
	}
	return false
}

func (p *qparser) expectWordAny() (string, error) {
	t := p.cur()
	if t.kind != "word" {
		return "", fmt.Errorf("fulltext: expected word, got %q", t.text)
	}
	p.pos++
	return t.text, nil
}

func (p *qparser) parse() (*TextQuery, error) {
	if !p.acceptWord("SEARCH") {
		return nil, fmt.Errorf("fulltext: query must start with SEARCH")
	}
	idx, err := p.expectWordAny()
	if err != nil {
		return nil, err
	}
	q := &TextQuery{Index: idx}
	if p.acceptWord("WHERE") {
		for {
			cond, err := p.parseCond(q)
			if err != nil {
				return nil, err
			}
			q.Conds = append(q.Conds, cond)
			if !p.acceptWord("AND") {
				break
			}
		}
	}
	if !p.acceptWord("RETURN") {
		return nil, fmt.Errorf("fulltext: missing RETURN clause")
	}
	for {
		f, err := p.expectWordAny()
		if err != nil {
			return nil, err
		}
		q.Returns = append(q.Returns, f)
		if p.cur().kind == "op" && p.cur().text == "," {
			p.pos++
			continue
		}
		break
	}
	if p.acceptWord("ORDER") {
		if !p.acceptWord("BY") {
			return nil, fmt.Errorf("fulltext: expected BY after ORDER")
		}
		f, err := p.expectWordAny()
		if err != nil {
			return nil, err
		}
		q.OrderBy = f
		if p.acceptWord("DESC") {
			q.Desc = true
		} else {
			p.acceptWord("ASC")
		}
	}
	if p.acceptWord("LIMIT") {
		t := p.cur()
		if t.kind != "number" {
			return nil, fmt.Errorf("fulltext: LIMIT expects a number")
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("fulltext: bad LIMIT %q", t.text)
		}
		q.Limit = n
		p.pos++
	}
	if p.cur().kind != "eof" {
		return nil, fmt.Errorf("fulltext: unexpected trailing %q", p.cur().text)
	}
	q.NumParams = p.params
	return q, nil
}

func (p *qparser) parseValueOrParam() (value.Value, int, error) {
	t := p.cur()
	switch t.kind {
	case "param":
		p.pos++
		idx := p.params
		p.params++
		return value.Value{}, idx, nil
	case "string":
		p.pos++
		return value.NewString(t.text), -1, nil
	case "number":
		p.pos++
		return value.Parse(t.text, false), -1, nil
	default:
		return value.Value{}, -1, fmt.Errorf("fulltext: expected value or '?', got %q", t.text)
	}
}

func (p *qparser) parseCond(q *TextQuery) (Cond, error) {
	field, err := p.expectWordAny()
	if err != nil {
		return Cond{}, err
	}
	cond := Cond{Field: field, Param: -1, Param2: -1}
	t := p.cur()
	switch {
	case t.kind == "op" && t.text == "=":
		p.pos++
		cond.Op = CondEq
	case t.kind == "op" && t.text == ">=":
		p.pos++
		cond.Op = CondGe
	case t.kind == "op" && t.text == "<=":
		p.pos++
		cond.Op = CondLe
	case t.kind == "word" && strings.EqualFold(t.text, "CONTAINS"):
		p.pos++
		cond.Op = CondContains
	case t.kind == "word" && strings.EqualFold(t.text, "PHRASE"):
		p.pos++
		cond.Op = CondPhrase
	case t.kind == "word" && strings.EqualFold(t.text, "BETWEEN"):
		p.pos++
		cond.Op = CondBetween
	default:
		return Cond{}, fmt.Errorf("fulltext: expected operator after field %q, got %q", field, t.text)
	}
	v, param, err := p.parseValueOrParam()
	if err != nil {
		return Cond{}, err
	}
	cond.Val, cond.Param = v, param
	if cond.Op == CondBetween {
		if !p.acceptWord("AND") {
			return Cond{}, fmt.Errorf("fulltext: BETWEEN expects AND")
		}
		v2, param2, err := p.parseValueOrParam()
		if err != nil {
			return Cond{}, err
		}
		cond.Val2, cond.Param2 = v2, param2
	}
	return cond, nil
}

// Build converts the parsed query into an executable Query given
// parameter values, returning the Query and search options.
func (q *TextQuery) Build(params []value.Value) (Query, SearchOptions, error) {
	if len(params) < q.NumParams {
		return nil, SearchOptions{}, fmt.Errorf("fulltext: query needs %d parameters, got %d", q.NumParams, len(params))
	}
	resolve := func(v value.Value, idx int) value.Value {
		if idx >= 0 {
			return params[idx]
		}
		return v
	}
	var must []Query
	for _, c := range q.Conds {
		v := resolve(c.Val, c.Param)
		switch c.Op {
		case CondEq:
			must = append(must, KeywordQuery{Field: c.Field, Value: v.String()})
		case CondContains:
			must = append(must, MatchQuery{Field: c.Field, Text: v.String(), RequireAll: true})
		case CondPhrase:
			must = append(must, PhraseQuery{Field: c.Field, Text: v.String()})
		case CondGe:
			must = append(must, RangeQuery{Field: c.Field, Min: v, Max: value.NewNull()})
		case CondLe:
			must = append(must, RangeQuery{Field: c.Field, Min: value.NewNull(), Max: v})
		case CondBetween:
			v2 := resolve(c.Val2, c.Param2)
			must = append(must, RangeQuery{Field: c.Field, Min: v, Max: v2})
		}
	}
	var query Query
	switch len(must) {
	case 0:
		query = AllQuery{}
	case 1:
		query = must[0]
	default:
		query = BoolQuery{Must: must}
	}
	opts := SearchOptions{Limit: q.Limit, SortField: q.OrderBy, SortAsc: q.OrderBy != "" && !q.Desc}
	return query, opts, nil
}

// Execute parses nothing: it runs the prepared query against ix and
// projects the RETURN paths into rows. The pseudo-paths _id and _score
// yield the document ID and BM25 score.
func (q *TextQuery) Execute(ix *Index, params []value.Value) ([]string, [][]value.Value, error) {
	query, opts, err := q.Build(params)
	if err != nil {
		return nil, nil, err
	}
	hits, err := ix.Search(query, opts)
	if err != nil {
		return nil, nil, err
	}
	rows := make([][]value.Value, 0, len(hits))
	for _, h := range hits {
		row := make([]value.Value, len(q.Returns))
		for i, path := range q.Returns {
			switch path {
			case "_id":
				row[i] = value.NewString(h.ID)
			case "_score":
				row[i] = value.NewFloat(h.Score)
			default:
				vals := h.Doc.Values(path)
				if len(vals) == 0 {
					row[i] = value.NewNull()
				} else {
					row[i] = vals[0]
				}
			}
		}
		rows = append(rows, row)
	}
	return q.Returns, rows, nil
}
