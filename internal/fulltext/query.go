package fulltext

import (
	"fmt"
	"math"
	"sort"

	"tatooine/internal/doc"
	"tatooine/internal/value"
)

// Query is any full-text query node.
type Query interface{ isQuery() }

// TermQuery matches documents whose analyzed text field contains the
// term (the term itself is analyzed, so "États" matches "etat").
type TermQuery struct {
	Field string
	Term  string
}

func (TermQuery) isQuery() {}

// MatchQuery analyzes Text and matches documents containing the
// resulting terms; all terms are required when RequireAll is set,
// otherwise any (with ranking favouring more matches).
type MatchQuery struct {
	Field      string
	Text       string
	RequireAll bool
}

func (MatchQuery) isQuery() {}

// PhraseQuery matches consecutive terms in order.
type PhraseQuery struct {
	Field string
	Text  string
}

func (PhraseQuery) isQuery() {}

// KeywordQuery matches a keyword field exactly (case- and accent-
// insensitively): hashtags, screen names, codes.
type KeywordQuery struct {
	Field string
	Value string
}

func (KeywordQuery) isQuery() {}

// RangeQuery matches numeric or time fields within [Min, Max]
// (inclusive); a Null bound is open.
type RangeQuery struct {
	Field    string
	Min, Max value.Value
}

func (RangeQuery) isQuery() {}

// BoolQuery combines sub-queries: all of Must, at least one of Should
// (if any present), none of MustNot.
type BoolQuery struct {
	Must    []Query
	Should  []Query
	MustNot []Query
}

func (BoolQuery) isQuery() {}

// AllQuery matches every document with score 0.
type AllQuery struct{}

func (AllQuery) isQuery() {}

// Hit is one search result.
type Hit struct {
	ID    string
	Score float64
	Doc   *doc.Document
}

// SearchOptions control result shaping.
type SearchOptions struct {
	// Limit bounds the number of hits (0 means unlimited).
	Limit int
	// SortField orders hits by a numeric/time field instead of score.
	SortField string
	// SortAsc sorts ascending when SortField is set (default descending).
	SortAsc bool
}

// BM25 parameters (standard defaults).
const (
	bm25K1 = 1.2
	bm25B  = 0.75
)

// Search evaluates the query and returns hits ordered by descending
// BM25 score (or by SortField when given).
func (ix *Index) Search(q Query, opts SearchOptions) ([]Hit, error) {
	ix.mu.RLock()
	scores, err := ix.eval(q)
	if err != nil {
		ix.mu.RUnlock()
		return nil, err
	}
	hits := make([]Hit, 0, len(scores))
	for docID, score := range scores {
		d := ix.docs[docID]
		hits = append(hits, Hit{ID: d.ID, Score: score, Doc: d})
	}
	ix.mu.RUnlock()

	if opts.SortField != "" {
		sort.SliceStable(hits, func(i, j int) bool {
			vi := firstNumeric(hits[i].Doc, opts.SortField)
			vj := firstNumeric(hits[j].Doc, opts.SortField)
			if opts.SortAsc {
				return vi < vj
			}
			return vi > vj
		})
	} else {
		sort.SliceStable(hits, func(i, j int) bool {
			if hits[i].Score != hits[j].Score {
				return hits[i].Score > hits[j].Score
			}
			return hits[i].ID < hits[j].ID
		})
	}
	if opts.Limit > 0 && len(hits) > opts.Limit {
		hits = hits[:opts.Limit]
	}
	return hits, nil
}

func firstNumeric(d *doc.Document, field string) float64 {
	for _, v := range d.Values(field) {
		switch v.Kind() {
		case value.Int, value.Float:
			return v.Float()
		case value.Time:
			return float64(v.Time().UnixNano())
		case value.String:
			if c, ok := value.Coerce(v, value.Time); ok {
				return float64(c.Time().UnixNano())
			}
			if c, ok := value.Coerce(v, value.Float); ok {
				return c.Float()
			}
		}
	}
	return math.Inf(-1)
}

// eval returns docID → score for the query. Caller holds the read lock.
func (ix *Index) eval(q Query) (map[int32]float64, error) {
	switch x := q.(type) {
	case AllQuery:
		out := make(map[int32]float64, len(ix.docs))
		for i := range ix.docs {
			out[int32(i)] = 0
		}
		return out, nil
	case TermQuery:
		terms := ix.analyzer.Tokens(x.Term)
		if len(terms) > 1 {
			terms = terms[:1]
		}
		return ix.evalTerms(x.Field, terms, false)
	case MatchQuery:
		terms := ix.analyzer.Tokens(x.Text)
		return ix.evalTerms(x.Field, terms, x.RequireAll)
	case PhraseQuery:
		return ix.evalPhrase(x.Field, x.Text)
	case KeywordQuery:
		m, ok := ix.keyword[x.Field]
		out := make(map[int32]float64)
		if !ok {
			if _, declared := ix.schema[x.Field]; !declared {
				return nil, fmt.Errorf("fulltext: unknown keyword field %q", x.Field)
			}
			return out, nil
		}
		for _, id := range m[Fold(x.Value)] {
			out[id] = 1
		}
		return out, nil
	case RangeQuery:
		return ix.evalRange(x)
	case BoolQuery:
		return ix.evalBool(x)
	default:
		return nil, fmt.Errorf("fulltext: unsupported query %T", q)
	}
}

func (ix *Index) evalTerms(field string, terms []string, requireAll bool) (map[int32]float64, error) {
	if _, declared := ix.schema[field]; !declared {
		return nil, fmt.Errorf("fulltext: unknown field %q", field)
	}
	postingsByTerm := ix.text[field]
	out := make(map[int32]float64)
	if len(terms) == 0 || postingsByTerm == nil {
		return out, nil
	}
	n := float64(len(ix.docs))
	avgLen := 1.0
	if n > 0 && ix.totalLen[field] > 0 {
		avgLen = float64(ix.totalLen[field]) / n
	}
	matchCount := make(map[int32]int)
	for _, term := range terms {
		plist := postingsByTerm[term]
		if len(plist) == 0 {
			continue
		}
		idf := math.Log(1 + (n-float64(len(plist))+0.5)/(float64(len(plist))+0.5))
		for _, p := range plist {
			tf := float64(len(p.positions))
			dl := 1.0
			if int(p.docID) < len(ix.docLen[field]) {
				dl = float64(ix.docLen[field][p.docID])
			}
			score := idf * (tf * (bm25K1 + 1)) / (tf + bm25K1*(1-bm25B+bm25B*dl/avgLen))
			out[p.docID] += score
			matchCount[p.docID]++
		}
	}
	if requireAll {
		for id, c := range matchCount {
			if c < len(terms) {
				delete(out, id)
			}
		}
	}
	return out, nil
}

func (ix *Index) evalPhrase(field, text string) (map[int32]float64, error) {
	if _, declared := ix.schema[field]; !declared {
		return nil, fmt.Errorf("fulltext: unknown field %q", field)
	}
	terms := ix.analyzer.Tokens(text)
	out := make(map[int32]float64)
	if len(terms) == 0 {
		return out, nil
	}
	scored, err := ix.evalTerms(field, terms, true)
	if err != nil {
		return nil, err
	}
	postingsByTerm := ix.text[field]
	positionsOf := func(term string, docID int32) []uint32 {
		for _, p := range postingsByTerm[term] {
			if p.docID == docID {
				return p.positions
			}
		}
		return nil
	}
	for docID, score := range scored {
		first := positionsOf(terms[0], docID)
		ok := false
		for _, start := range first {
			match := true
			for k := 1; k < len(terms); k++ {
				if !containsPos(positionsOf(terms[k], docID), start+uint32(k)) {
					match = false
					break
				}
			}
			if match {
				ok = true
				break
			}
		}
		if ok {
			out[docID] = score
		}
	}
	return out, nil
}

func containsPos(ps []uint32, want uint32) bool {
	for _, p := range ps {
		if p == want {
			return true
		}
	}
	return false
}

func (ix *Index) evalRange(q RangeQuery) (map[int32]float64, error) {
	if _, declared := ix.schema[q.Field]; !declared {
		return nil, fmt.Errorf("fulltext: unknown field %q", q.Field)
	}
	toF := func(v value.Value, def float64) float64 {
		switch v.Kind() {
		case value.Null:
			return def
		case value.Time:
			return float64(v.Time().UnixNano())
		case value.String:
			if c, ok := value.Coerce(v, value.Time); ok {
				return float64(c.Time().UnixNano())
			}
			if c, ok := value.Coerce(v, value.Float); ok {
				return c.Float()
			}
			return def
		default:
			return v.Float()
		}
	}
	lo := toF(q.Min, math.Inf(-1))
	hi := toF(q.Max, math.Inf(1))
	out := make(map[int32]float64)
	entries := ix.sortedNumeric(q.Field)
	// Binary search the lower bound, scan to the upper.
	i := sort.Search(len(entries), func(i int) bool { return entries[i].val >= lo })
	for ; i < len(entries) && entries[i].val <= hi; i++ {
		out[entries[i].docID] = 1
	}
	return out, nil
}

func (ix *Index) evalBool(q BoolQuery) (map[int32]float64, error) {
	var acc map[int32]float64
	for _, sub := range q.Must {
		scores, err := ix.eval(sub)
		if err != nil {
			return nil, err
		}
		if acc == nil {
			acc = scores
			continue
		}
		for id := range acc {
			s, ok := scores[id]
			if !ok {
				delete(acc, id)
				continue
			}
			acc[id] += s
		}
	}
	if len(q.Should) > 0 {
		shouldScores := make(map[int32]float64)
		for _, sub := range q.Should {
			scores, err := ix.eval(sub)
			if err != nil {
				return nil, err
			}
			for id, s := range scores {
				shouldScores[id] += s
			}
		}
		if acc == nil {
			acc = shouldScores
		} else {
			for id := range acc {
				s, ok := shouldScores[id]
				if !ok {
					delete(acc, id)
					continue
				}
				acc[id] += s
			}
		}
	}
	if acc == nil {
		// Only MustNot given: start from everything.
		all, err := ix.eval(AllQuery{})
		if err != nil {
			return nil, err
		}
		acc = all
	}
	for _, sub := range q.MustNot {
		scores, err := ix.eval(sub)
		if err != nil {
			return nil, err
		}
		for id := range scores {
			delete(acc, id)
		}
	}
	return acc, nil
}
