package fulltext

import (
	"fmt"
	"testing"

	"tatooine/internal/doc"
	"tatooine/internal/value"
)

// TweetSchema mirrors the paper's Solr tweet collection: stemmed text,
// author/hashtag keyword lookup, retweet count and timestamp ranges.
func tweetSchema() Schema {
	return Schema{
		"text":              TextField,
		"user.screen_name":  KeywordField,
		"entities.hashtags": KeywordField,
		"retweet_count":     NumericField,
		"created_at":        TimeField,
	}
}

func mkTweet(id, author, text string, hashtags []string, retweets int, ts string) *doc.Document {
	d := &doc.Document{ID: id}
	d.Set("text", text)
	d.Set("user.screen_name", author)
	d.Set("retweet_count", retweets)
	d.Set("created_at", ts)
	tags := make([]any, len(hashtags))
	for i, h := range hashtags {
		tags[i] = h
	}
	d.Set("entities.hashtags", tags)
	return d
}

func testIndex(t *testing.T) *Index {
	t.Helper()
	ix := NewIndex("tweets", tweetSchema())
	tweets := []*doc.Document{
		mkTweet("t1", "fhollande", "Je suis là pour montrer la solidarité nationale #SIA2016", []string{"SIA2016"}, 469, "2016-03-01T03:42:31Z"),
		mkTweet("t2", "jdupont", "L'agriculture française au salon #SIA2016 avec les agriculteurs", []string{"SIA2016"}, 12, "2016-03-01T10:00:00Z"),
		mkTweet("t3", "amartin", "Débat sur l'état d'urgence au parlement", []string{"EtatDurgence"}, 88, "2015-11-20T09:00:00Z"),
		mkTweet("t4", "jdupont", "Les agriculteurs manifestent pour la solidarité", nil, 5, "2016-02-10T12:00:00Z"),
		mkTweet("t5", "amartin", "Solidarité avec les agriculteurs au salon", []string{"SIA2016", "agriculture"}, 300, "2016-03-02T08:00:00Z"),
	}
	for _, tw := range tweets {
		if err := ix.Add(tw); err != nil {
			t.Fatal(err)
		}
	}
	return ix
}

func ids(hits []Hit) []string {
	out := make([]string, len(hits))
	for i, h := range hits {
		out[i] = h.ID
	}
	return out
}

func TestAnalyzerTokens(t *testing.T) {
	a := NewAnalyzer()
	toks := a.Tokens("L'état d'urgence: les députés votent à Paris! #EtatDurgence")
	has := func(want string) bool {
		for _, tok := range toks {
			if tok == want {
				return true
			}
		}
		return false
	}
	if !has("etat") {
		t.Errorf("elision+fold: %v", toks)
	}
	if !has("deput") { // députés → deput (stemmed)
		t.Errorf("stem: %v", toks)
	}
	if !has("#etatdurgence") {
		t.Errorf("hashtag token: %v", toks)
	}
	if has("les") || has("la") {
		t.Errorf("stopwords kept: %v", toks)
	}
}

func TestFold(t *testing.T) {
	if Fold("Détermination Où Çà œuvre") != "determination ou ca oeuvre" {
		t.Errorf("fold: %q", Fold("Détermination Où Çà œuvre"))
	}
}

func TestLightStem(t *testing.T) {
	cases := map[string]string{
		"agriculteurs":  "agriculteur",
		"nationale":     "national",
		"journaux":      "journal",
		"manifestation": "manifest",
		"votes":         "vot",
		"#sia2016":      "#sia2016", // sigil tokens untouched
	}
	for in, want := range cases {
		if got := LightStem(in); got != want {
			t.Errorf("LightStem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestTermQuery(t *testing.T) {
	ix := testIndex(t)
	hits, err := ix.Search(TermQuery{Field: "text", Term: "solidarité"}, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 3 {
		t.Fatalf("solidarité hits: %v", ids(hits))
	}
}

func TestTermQueryAnalyzesNeedle(t *testing.T) {
	ix := testIndex(t)
	// Unaccented, differently-cased query must still match.
	hits, err := ix.Search(TermQuery{Field: "text", Term: "SOLIDARITE"}, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 3 {
		t.Errorf("case/accent-insensitive match: %v", ids(hits))
	}
}

func TestKeywordQueryHashtag(t *testing.T) {
	ix := testIndex(t)
	hits, err := ix.Search(KeywordQuery{Field: "entities.hashtags", Value: "sia2016"}, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 3 {
		t.Errorf("#SIA2016 tweets: %v", ids(hits))
	}
}

func TestKeywordQueryAuthor(t *testing.T) {
	ix := testIndex(t)
	hits, err := ix.Search(KeywordQuery{Field: "user.screen_name", Value: "jdupont"}, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Errorf("author tweets: %v", ids(hits))
	}
}

func TestMatchQueryAnyVsAll(t *testing.T) {
	ix := testIndex(t)
	any, err := ix.Search(MatchQuery{Field: "text", Text: "solidarité agriculteurs"}, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	all, err := ix.Search(MatchQuery{Field: "text", Text: "solidarité agriculteurs", RequireAll: true}, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(any) <= len(all) {
		t.Errorf("any=%v all=%v", ids(any), ids(all))
	}
	if len(all) != 2 { // t4 and t5 have both
		t.Errorf("all: %v", ids(all))
	}
}

func TestPhraseQuery(t *testing.T) {
	ix := testIndex(t)
	hits, err := ix.Search(PhraseQuery{Field: "text", Text: "solidarité nationale"}, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].ID != "t1" {
		t.Errorf("phrase: %v", ids(hits))
	}
	// Reversed order must not match.
	hits, _ = ix.Search(PhraseQuery{Field: "text", Text: "nationale solidarité"}, SearchOptions{})
	if len(hits) != 0 {
		t.Errorf("reversed phrase matched: %v", ids(hits))
	}
}

func TestRangeQueryNumeric(t *testing.T) {
	ix := testIndex(t)
	hits, err := ix.Search(RangeQuery{
		Field: "retweet_count",
		Min:   value.NewInt(100),
		Max:   value.NewNull(),
	}, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 { // 469, 300
		t.Errorf("retweets >= 100: %v", ids(hits))
	}
}

func TestRangeQueryTime(t *testing.T) {
	ix := testIndex(t)
	hits, err := ix.Search(RangeQuery{
		Field: "created_at",
		Min:   value.NewString("2016-03-01T00:00:00Z"),
		Max:   value.NewString("2016-03-01T23:59:59Z"),
	}, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 { // t1, t2
		t.Errorf("March 1 tweets: %v", ids(hits))
	}
}

func TestBoolQuery(t *testing.T) {
	ix := testIndex(t)
	q := BoolQuery{
		Must: []Query{
			KeywordQuery{Field: "entities.hashtags", Value: "SIA2016"},
			TermQuery{Field: "text", Term: "solidarité"},
		},
		MustNot: []Query{
			KeywordQuery{Field: "user.screen_name", Value: "fhollande"},
		},
	}
	hits, err := ix.Search(q, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].ID != "t5" {
		t.Errorf("bool: %v", ids(hits))
	}
}

func TestBoolQueryShould(t *testing.T) {
	ix := testIndex(t)
	q := BoolQuery{
		Should: []Query{
			KeywordQuery{Field: "entities.hashtags", Value: "EtatDurgence"},
			KeywordQuery{Field: "entities.hashtags", Value: "agriculture"},
		},
	}
	hits, err := ix.Search(q, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Errorf("should: %v", ids(hits))
	}
}

func TestBoolQueryOnlyMustNot(t *testing.T) {
	ix := testIndex(t)
	hits, err := ix.Search(BoolQuery{
		MustNot: []Query{KeywordQuery{Field: "user.screen_name", Value: "jdupont"}},
	}, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 3 {
		t.Errorf("must-not only: %v", ids(hits))
	}
}

func TestSortByFieldAndLimit(t *testing.T) {
	ix := testIndex(t)
	hits, err := ix.Search(AllQuery{}, SearchOptions{SortField: "retweet_count", Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 || hits[0].ID != "t1" || hits[1].ID != "t5" {
		t.Errorf("sort desc: %v", ids(hits))
	}
	asc, _ := ix.Search(AllQuery{}, SearchOptions{SortField: "retweet_count", SortAsc: true, Limit: 1})
	if asc[0].ID != "t4" {
		t.Errorf("sort asc: %v", ids(asc))
	}
}

func TestBM25RanksRarerTermsHigher(t *testing.T) {
	ix := NewIndex("x", Schema{"text": TextField})
	// "rare" appears in 1 doc, "common" in all.
	for i := 0; i < 10; i++ {
		d := &doc.Document{ID: fmt.Sprintf("d%d", i)}
		if i == 0 {
			d.Set("text", "common rare")
		} else {
			d.Set("text", "common filler")
		}
		ix.Add(d)
	}
	rare, _ := ix.Search(TermQuery{Field: "text", Term: "rare"}, SearchOptions{})
	common, _ := ix.Search(TermQuery{Field: "text", Term: "common"}, SearchOptions{})
	if len(rare) != 1 || len(common) != 10 {
		t.Fatalf("hits: rare=%d common=%d", len(rare), len(common))
	}
	if rare[0].Score <= common[0].Score {
		t.Errorf("rare term score %f should exceed common %f", rare[0].Score, common[0].Score)
	}
}

func TestDuplicateIDRejected(t *testing.T) {
	ix := testIndex(t)
	err := ix.Add(mkTweet("t1", "x", "dup", nil, 0, "2016-01-01T00:00:00Z"))
	if err == nil {
		t.Error("duplicate ID accepted")
	}
}

func TestUnknownFieldErrors(t *testing.T) {
	ix := testIndex(t)
	if _, err := ix.Search(TermQuery{Field: "nope", Term: "x"}, SearchOptions{}); err == nil {
		t.Error("unknown text field accepted")
	}
	if _, err := ix.Search(KeywordQuery{Field: "nope", Value: "x"}, SearchOptions{}); err == nil {
		t.Error("unknown keyword field accepted")
	}
	if _, err := ix.Search(RangeQuery{Field: "nope"}, SearchOptions{}); err == nil {
		t.Error("unknown range field accepted")
	}
}

func TestGetAndEach(t *testing.T) {
	ix := testIndex(t)
	if d := ix.Get("t3"); d == nil {
		t.Fatal("Get t3 nil")
	}
	if ix.Get("missing") != nil {
		t.Error("Get missing should be nil")
	}
	n := 0
	ix.Each(func(*doc.Document) bool { n++; return n < 3 })
	if n != 3 {
		t.Errorf("Each early stop: %d", n)
	}
	if ix.Count() != 5 {
		t.Errorf("Count: %d", ix.Count())
	}
}

func TestFieldTermsAndDocFreq(t *testing.T) {
	ix := testIndex(t)
	terms := ix.FieldTerms("entities.hashtags")
	if len(terms) != 3 {
		t.Errorf("hashtag terms: %v", terms)
	}
	if df := ix.DocFreq("text", "solidarit"); df != 3 {
		t.Errorf("DocFreq(solidarite) = %d", df)
	}
}

func TestTermCounts(t *testing.T) {
	ix := testIndex(t)
	counts, total := ix.TermCounts("text", []string{"t1", "t4"})
	if total == 0 {
		t.Fatal("no term counts")
	}
	if counts["solidarit"] != 2 {
		t.Errorf("solidarite count: %d (%v)", counts["solidarit"], counts)
	}
	all, allTotal := ix.TermCounts("text", nil)
	if allTotal <= total {
		t.Error("corpus total should exceed subset total")
	}
	if all["solidarit"] != 3 {
		t.Errorf("corpus solidarite: %d", all["solidarit"])
	}
}

func TestAddJSONFigure2(t *testing.T) {
	ix := NewIndex("tweets", tweetSchema())
	err := ix.AddJSON("fig2", []byte(`{
		"created_at": "2016-03-01T03:42:31Z",
		"id": 464244242167342513,
		"text": "Je suis là aujourd'hui #SIA2016",
		"user": {"screen_name": "fhollande"},
		"retweet_count": 469,
		"entities": {"hashtags": ["SIA2016"]}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	hits, err := ix.Search(KeywordQuery{Field: "entities.hashtags", Value: "SIA2016"}, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].ID != "fig2" {
		t.Errorf("fig2: %v", ids(hits))
	}
}

func TestConcurrentSearches(t *testing.T) {
	ix := testIndex(t)
	done := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func() {
			_, err := ix.Search(TermQuery{Field: "text", Term: "solidarité"}, SearchOptions{})
			done <- err
		}()
	}
	for i := 0; i < 16; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
