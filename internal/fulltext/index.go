package fulltext

import (
	"fmt"
	"sort"
	"sync"

	"tatooine/internal/doc"
	"tatooine/internal/value"
)

// FieldType describes how a document path is indexed.
type FieldType uint8

const (
	// TextField is analyzed full text (tokenized, stemmed, BM25-ranked).
	TextField FieldType = iota
	// KeywordField is matched exactly (lower-cased), e.g. hashtags,
	// screen names, codes.
	KeywordField
	// NumericField supports equality and range queries over numbers.
	NumericField
	// TimeField supports range queries over RFC3339 timestamps.
	TimeField
)

// Schema maps dotted document paths to field types. Paths absent from
// the schema are stored but not indexed.
type Schema map[string]FieldType

// posting records the occurrences of one token in one document field.
type posting struct {
	docID     int32
	positions []uint32
}

type numEntry struct {
	docID int32
	val   float64
}

// Index is an inverted-index document store, safe for concurrent use.
type Index struct {
	mu       sync.RWMutex
	name     string
	schema   Schema
	analyzer *Analyzer

	docs []*doc.Document
	byID map[string]int32

	text     map[string]map[string][]posting // text field → token → postings
	keyword  map[string]map[string][]int32   // keyword field → folded value → doc ids
	numeric  map[string][]numEntry           // numeric/time field → entries (sorted lazily)
	numDirty map[string]bool

	docLen   map[string][]uint32 // text field → per-doc token count
	totalLen map[string]uint64   // text field → total token count
}

// NewIndex creates an empty index with the given schema.
func NewIndex(name string, schema Schema) *Index {
	return &Index{
		name:     name,
		schema:   schema,
		analyzer: NewAnalyzer(),
		byID:     make(map[string]int32),
		text:     make(map[string]map[string][]posting),
		keyword:  make(map[string]map[string][]int32),
		numeric:  make(map[string][]numEntry),
		numDirty: make(map[string]bool),
		docLen:   make(map[string][]uint32),
		totalLen: make(map[string]uint64),
	}
}

// Name returns the index name.
func (ix *Index) Name() string { return ix.name }

// Schema returns the index schema.
func (ix *Index) Schema() Schema { return ix.schema }

// Analyzer returns the analyzer used for text fields.
func (ix *Index) Analyzer() *Analyzer { return ix.analyzer }

// Count returns the number of indexed documents.
func (ix *Index) Count() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.docs)
}

// Add indexes a document. Document IDs must be unique.
func (ix *Index) Add(d *doc.Document) error {
	if d.ID == "" {
		return fmt.Errorf("fulltext: document must have an ID")
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, dup := ix.byID[d.ID]; dup {
		return fmt.Errorf("fulltext: duplicate document ID %q", d.ID)
	}
	id := int32(len(ix.docs))
	ix.docs = append(ix.docs, d)
	ix.byID[d.ID] = id

	for path, ft := range ix.schema {
		vals := d.Values(path)
		if len(vals) == 0 {
			continue
		}
		switch ft {
		case TextField:
			var tokens []string
			for _, v := range vals {
				tokens = append(tokens, ix.analyzer.Tokens(v.String())...)
			}
			field := ix.text[path]
			if field == nil {
				field = make(map[string][]posting)
				ix.text[path] = field
			}
			perTok := make(map[string][]uint32)
			for pos, t := range tokens {
				perTok[t] = append(perTok[t], uint32(pos))
			}
			for t, positions := range perTok {
				field[t] = append(field[t], posting{docID: id, positions: positions})
			}
			for len(ix.docLen[path]) < int(id) {
				ix.docLen[path] = append(ix.docLen[path], 0)
			}
			ix.docLen[path] = append(ix.docLen[path], uint32(len(tokens)))
			ix.totalLen[path] += uint64(len(tokens))
		case KeywordField:
			field := ix.keyword[path]
			if field == nil {
				field = make(map[string][]int32)
				ix.keyword[path] = field
			}
			seen := make(map[string]struct{})
			for _, v := range vals {
				k := Fold(v.String())
				if _, dup := seen[k]; dup {
					continue
				}
				seen[k] = struct{}{}
				field[k] = append(field[k], id)
			}
		case NumericField, TimeField:
			for _, v := range vals {
				var f float64
				switch v.Kind() {
				case value.Int, value.Float:
					f = v.Float()
				case value.Time:
					f = float64(v.Time().UnixNano())
				case value.String:
					coerced, ok := value.Coerce(v, value.Time)
					if ft == TimeField && ok {
						f = float64(coerced.Time().UnixNano())
						break
					}
					cn, ok := value.Coerce(v, value.Float)
					if !ok {
						continue
					}
					f = cn.Float()
				default:
					continue
				}
				ix.numeric[path] = append(ix.numeric[path], numEntry{docID: id, val: f})
				ix.numDirty[path] = true
			}
		}
	}
	return nil
}

// AddJSON decodes and indexes a JSON document.
func (ix *Index) AddJSON(id string, data []byte) error {
	d, err := doc.FromJSON(id, data)
	if err != nil {
		return err
	}
	return ix.Add(d)
}

// Get returns the document with the given ID, or nil.
func (ix *Index) Get(id string) *doc.Document {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	i, ok := ix.byID[id]
	if !ok {
		return nil
	}
	return ix.docs[i]
}

// Each calls fn for every document until fn returns false.
func (ix *Index) Each(fn func(d *doc.Document) bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	for _, d := range ix.docs {
		if !fn(d) {
			return
		}
	}
}

// sortedNumeric returns the numeric entries for a field sorted by value.
func (ix *Index) sortedNumeric(field string) []numEntry {
	if ix.numDirty[field] {
		entries := ix.numeric[field]
		sort.Slice(entries, func(i, j int) bool { return entries[i].val < entries[j].val })
		ix.numDirty[field] = false
	}
	return ix.numeric[field]
}

// FieldTerms returns the distinct tokens (text fields) or folded values
// (keyword fields) of a field, sorted; used by digests.
func (ix *Index) FieldTerms(field string) []string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var out []string
	if m, ok := ix.text[field]; ok {
		for t := range m {
			out = append(out, t)
		}
	} else if m, ok := ix.keyword[field]; ok {
		for v := range m {
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

// DocFreq returns how many documents contain the analyzed token in the
// text field.
func (ix *Index) DocFreq(field, token string) int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	m, ok := ix.text[field]
	if !ok {
		return 0
	}
	return len(m[token])
}

// TermCounts accumulates token → occurrence count over the text field of
// the given documents (all documents when ids is nil). It is the raw
// material for the PMI analytics of the paper's scenario (2).
func (ix *Index) TermCounts(field string, ids []string) (map[string]int, int) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	counts := make(map[string]int)
	total := 0
	add := func(docID int32) {
		d := ix.docs[docID]
		for _, v := range d.Values(field) {
			for _, t := range ix.analyzer.Tokens(v.String()) {
				counts[t]++
				total++
			}
		}
	}
	if ids == nil {
		for i := range ix.docs {
			add(int32(i))
		}
		return counts, total
	}
	for _, id := range ids {
		if i, ok := ix.byID[id]; ok {
			add(i)
		}
	}
	return counts, total
}

// fieldKind reports the declared type of a field.
func (ix *Index) fieldKind(field string) (FieldType, bool) {
	ft, ok := ix.schema[field]
	return ft, ok
}
