// Package fulltext implements TATOOINE's full-text substrate: an
// analyzed, inverted-index document store with BM25 ranking. It stands
// in for the Apache Solr instances that hold tweets and Facebook posts
// in the paper's mixed instance, exposing the same query capabilities
// the mediator relies on (term/hashtag/field lookup, boolean
// combinations, ranking, stored-field retrieval, term statistics).
package fulltext

import (
	"strings"
	"unicode"
)

// Analyzer turns text into index tokens: Unicode word segmentation,
// lower-casing, accent folding, stop-word removal and light FR/EN
// suffix stemming (the paper's corpus is French political Twitter).
type Analyzer struct {
	stopwords map[string]struct{}
	stem      bool
}

// NewAnalyzer returns the default French+English analyzer.
func NewAnalyzer() *Analyzer {
	return &Analyzer{stopwords: defaultStopwords, stem: true}
}

// NewAnalyzerNoStem returns an analyzer without stemming (useful in
// tests and for exactish matching of short fields).
func NewAnalyzerNoStem() *Analyzer {
	return &Analyzer{stopwords: defaultStopwords, stem: false}
}

// Tokens analyzes text into the token stream, preserving positions
// (the slice index is the token position).
func (a *Analyzer) Tokens(text string) []string {
	raw := tokenize(text)
	out := make([]string, 0, len(raw))
	for _, t := range raw {
		t = Fold(t)
		if _, stop := a.stopwords[t]; stop {
			continue
		}
		if len(t) < 2 {
			continue
		}
		if a.stem {
			t = LightStem(t)
		}
		out = append(out, t)
	}
	return out
}

// tokenize splits text into runs of letters/digits. '#' and '@' sigils
// attach to the following word so hashtags and mentions survive as
// distinct tokens ("#SIA2016" → "#sia2016").
func tokenize(text string) []string {
	var out []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			out = append(out, strings.ToLower(b.String()))
			b.Reset()
		}
	}
	prevSigil := false
	for _, r := range text {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(r)
			prevSigil = false
		case (r == '#' || r == '@') && b.Len() == 0:
			b.WriteRune(r)
			prevSigil = true
		case r == '\'' || r == '’':
			// French elision: "l'état" → "l", "état". Flush the prefix.
			flush()
		default:
			if prevSigil {
				b.Reset()
				prevSigil = false
			}
			flush()
		}
	}
	flush()
	return out
}

// Fold lower-cases and strips diacritics from common French letters.
func Fold(s string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(s) {
		if folded, ok := foldMap[r]; ok {
			b.WriteString(folded)
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}

var foldMap = map[rune]string{
	'à': "a", 'â': "a", 'ä': "a",
	'é': "e", 'è': "e", 'ê': "e", 'ë': "e",
	'î': "i", 'ï': "i",
	'ô': "o", 'ö': "o",
	'ù': "u", 'û': "u", 'ü': "u",
	'ç': "c", 'œ': "oe", 'æ': "ae",
	'ÿ': "y", 'ñ': "n",
}

// LightStem applies a light suffix stemmer adequate for matching
// French/English inflections in tweets: plural and a few verbal/
// adjectival endings. It never reduces a token below three characters.
func LightStem(t string) string {
	if strings.HasPrefix(t, "#") || strings.HasPrefix(t, "@") {
		return t // sigil tokens are matched exactly
	}
	for _, suf := range []string{"issements", "issement", "issantes", "issants", "issante", "issant"} {
		if strings.HasSuffix(t, suf) && len(t)-len(suf) >= 3 {
			return t[:len(t)-len(suf)] + "ir"
		}
	}
	if strings.HasSuffix(t, "aux") && len(t) > 4 {
		return t[:len(t)-3] + "al"
	}
	for _, suf := range []string{"ations", "ation", "ements", "ement", "euses", "euse", "istes", "iste", "ives", "ive"} {
		if strings.HasSuffix(t, suf) && len(t)-len(suf) >= 3 {
			return t[:len(t)-len(suf)]
		}
	}
	for _, suf := range []string{"ing", "ed"} { // light English
		if strings.HasSuffix(t, suf) && len(t)-len(suf) >= 4 {
			return t[:len(t)-len(suf)]
		}
	}
	// Plurals and mute endings.
	for _, suf := range []string{"es", "s", "e"} {
		if strings.HasSuffix(t, suf) && len(t)-len(suf) >= 3 {
			return t[:len(t)-len(suf)]
		}
	}
	return t
}

var defaultStopwords = func() map[string]struct{} {
	words := []string{
		// French
		"le", "la", "les", "de", "des", "du", "un", "une", "et", "en",
		"pour", "que", "qui", "quoi", "dans", "sur", "au", "aux", "avec",
		"ce", "cette", "ces", "cet", "il", "elle", "ils", "elles", "on",
		"nous", "vous", "je", "tu", "ne", "pas", "est", "sont", "etre",
		"avoir", "a", "ont", "se", "son", "sa", "ses", "leur", "leurs",
		"plus", "par", "ou", "mais", "donc", "car", "si", "tout", "tous",
		"toute", "toutes", "comme", "meme", "aussi", "bien", "tres",
		"fait", "faire", "peut", "notre", "nos", "votre", "vos", "mon",
		"ma", "mes", "ton", "ta", "tes", "lui", "y", "l", "d", "c", "j",
		"n", "s", "t", "m", "qu",
		// English
		"the", "a", "an", "of", "to", "and", "in", "is", "are", "was",
		"were", "for", "on", "with", "that", "this", "it", "as", "be",
		"by", "at", "from", "or", "we", "our", "not", "but", "have",
		"has", "had", "they", "their", "you", "your", "i", "he", "she",
	}
	m := make(map[string]struct{}, len(words))
	for _, w := range words {
		m[Fold(w)] = struct{}{}
	}
	return m
}()

// IsStopword reports whether the folded token is a stop word.
func IsStopword(t string) bool {
	_, ok := defaultStopwords[Fold(t)]
	return ok
}
