package keyword

import (
	"net/http/httptest"
	"testing"

	"tatooine/internal/core"
	"tatooine/internal/digest"
	"tatooine/internal/doc"
	"tatooine/internal/federation"
	"tatooine/internal/fulltext"
	"tatooine/internal/rdf"
	"tatooine/internal/source"
)

// TestRemoteSourceParticipatesInKeywordSearch serves the tweet store
// over HTTP, registers only the federation client with the mediator,
// and verifies the keyword engine pulls the remote digest and still
// generates the qSIA-style query across the wire.
func TestRemoteSourceParticipatesInKeywordSearch(t *testing.T) {
	// Remote tweet source.
	ix := fulltext.NewIndex("tweets", fulltext.Schema{
		"text":              fulltext.TextField,
		"user.screen_name":  fulltext.KeywordField,
		"entities.hashtags": fulltext.KeywordField,
	})
	d := &doc.Document{ID: "t1"}
	d.Set("text", "solidarité #SIA2016")
	d.Set("user.screen_name", "fhollande")
	d.Set("entities.hashtags", []any{"SIA2016"})
	if err := ix.Add(d); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(federation.Handler(source.NewDocSource("solr://tweets", ix)))
	defer srv.Close()

	// Local mediator: graph + the remote client.
	g := rdf.NewGraph()
	g.AddAll(rdf.MustParse(`
@prefix : <http://t.example/> .
:POL1 :position :headOfState ;
  :twitterAccount "fhollande" .
`))
	in := core.NewInstance(g)
	client, err := federation.Dial(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.AddSource(client); err != nil {
		t.Fatal(err)
	}

	cat, err := BuildCatalog(in, digest.DefaultBudget())
	if err != nil {
		t.Fatal(err)
	}
	if len(cat.Digests()) != 2 { // G + remote tweets
		t.Fatalf("digests: %d", len(cat.Digests()))
	}
	cands, err := cat.Search([]string{"head of state", "SIA2016"}, SearchOptions{MaxCandidates: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, cand := range cands {
		res, err := in.Execute(cand.Query)
		if err != nil {
			continue
		}
		for _, row := range res.Rows {
			for _, v := range row {
				if v.Str() == "t1" {
					return // the remote tweet was found end-to-end
				}
			}
		}
	}
	t.Error("no candidate over the remote source produced the tweet")
}
