package keyword

import (
	"testing"

	"tatooine/internal/core"
	"tatooine/internal/digest"
	"tatooine/internal/rdf"
	"tatooine/internal/source"
	"tatooine/internal/xmlstore"
)

// TestKeywordSearchThroughXMLSource checks that the keyword engine
// digests XML stores, discovers the name-based join to the custom
// graph, and generates an executable XPATH sub-query.
func TestKeywordSearchThroughXMLSource(t *testing.T) {
	g := rdf.NewGraph()
	g.AddAll(rdf.MustParse(`
@prefix : <http://t.example/> .
:POL1 :position :headOfState ;
  foaf:name "François Hollande" .
:POL2 :position :deputy ;
  foaf:name "Jean Dupont" .
`))
	in := core.NewInstance(g)
	store := xmlstore.NewStore("speeches")
	if err := store.Add("d1", []byte(`<speeches>
  <speech speaker="François Hollande" date="2016-02-27">
    <title>Discours agriculture</title><topic>agriculture</topic>
  </speech>
  <speech speaker="Jean Dupont" date="2015-11-20">
    <title>Etat urgence</title><topic>etatdurgence</topic>
  </speech>
</speeches>`)); err != nil {
		t.Fatal(err)
	}
	if err := in.AddSource(source.NewXMLSource("xml://speeches", store)); err != nil {
		t.Fatal(err)
	}

	cat, err := BuildCatalog(in, digest.DefaultBudget())
	if err != nil {
		t.Fatal(err)
	}
	// The speaker attribute must be digested and overlap with foaf:name.
	sp := cat.NodeByLabel("xml://speeches", "speeches/speech/@speaker")
	if sp == nil || sp.Kind != digest.XMLPath {
		t.Fatalf("speaker node: %+v", sp)
	}
	nameNode := cat.NodeByLabel("tatooine:G", rdf.FOAFName)
	if nameNode == nil {
		t.Fatal("foaf:name node missing")
	}
	if ov := digest.OverlapEstimate(sp.Values, nameNode.Values); ov < 0.9 {
		t.Errorf("speaker↔name overlap: %f", ov)
	}

	// Keywords: a position (graph) and a topic (XML) — the join path
	// crosses the name bridge and the generated query must execute.
	cands, err := cat.Search([]string{"head of state", "agriculture"}, SearchOptions{MaxCandidates: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, cand := range cands {
		res, err := in.Execute(cand.Query)
		if err != nil {
			t.Logf("candidate failed (%v): %s", err, cand.Query)
			continue
		}
		for _, row := range res.Rows {
			for _, v := range row {
				if v.Str() == "d1" {
					return // found the speech document end-to-end
				}
			}
		}
	}
	t.Error("no candidate reached the speeches store")
}
