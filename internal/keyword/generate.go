package keyword

import (
	"fmt"
	"strings"

	"tatooine/internal/core"
	"tatooine/internal/digest"
	"tatooine/internal/source"
)

// Candidate is one generated mixed query, with the join path that
// produced it.
type Candidate struct {
	// Query is executable against the instance the catalog was built on.
	Query *core.CMQ
	// Path lists the digest node IDs the query follows.
	Path []string
	// Weight is the join path's total edge weight (lower is better).
	Weight float64
}

// segment is a maximal run of same-source path nodes.
type segment struct {
	sourceURI string
	nodes     []*digest.Node
	inVar     string            // shared variable entering the segment ("" for the first)
	outVar    string            // shared variable leaving the segment ("" for the last)
	keywords  map[string]string // node ID → original constrained value
}

// generate translates a join path into a CMQ. keywordsAt maps node IDs
// to the original value each matched keyword selects.
func (c *Catalog) generate(path pathResult, keywordsAt map[string]string) (*core.CMQ, error) {
	if len(path.nodes) == 0 {
		return nil, fmt.Errorf("keyword: empty path")
	}
	// Split into per-source segments.
	var segs []*segment
	var cur *segment
	for _, id := range path.nodes {
		n := c.nodes[id]
		if n == nil {
			return nil, fmt.Errorf("keyword: unknown node %q in path", id)
		}
		if cur == nil || cur.sourceURI != n.Source {
			cur = &segment{sourceURI: n.Source, keywords: make(map[string]string)}
			segs = append(segs, cur)
		}
		cur.nodes = append(cur.nodes, n)
		if orig, ok := keywordsAt[id]; ok {
			cur.keywords[id] = orig
		}
	}
	// Assign shared variables at segment boundaries.
	for i := 0; i < len(segs)-1; i++ {
		v := fmt.Sprintf("j%d", i)
		segs[i].outVar = v
		segs[i+1].inVar = v
	}

	q := &core.CMQ{Name: "kq", Distinct: true}
	for i, seg := range segs {
		atom, headVars, err := c.segmentAtom(seg, i)
		if err != nil {
			return nil, err
		}
		q.Atoms = append(q.Atoms, *atom)
		q.Head = append(q.Head, headVars...)
	}
	// Deduplicate head variables, preserving order.
	seen := make(map[string]struct{})
	var head []string
	for _, v := range q.Head {
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		head = append(head, v)
	}
	q.Head = head
	return q, nil
}

// segmentAtom renders one segment as a CMQ atom. It returns the atom
// and the variables the segment contributes to the query head (its
// evidence variable plus any shared variables).
func (c *Catalog) segmentAtom(seg *segment, idx int) (*core.Atom, []string, error) {
	switch seg.nodes[0].Kind {
	case digest.RDFProperty, digest.RDFClass:
		return c.rdfAtom(seg, idx)
	case digest.DocRoot, digest.DocPath:
		return c.docAtom(seg, idx)
	case digest.XMLRoot, digest.XMLPath:
		return c.xmlAtom(seg, idx)
	case digest.RelTable, digest.RelAttribute:
		return c.relAtom(seg, idx)
	default:
		return nil, nil, fmt.Errorf("keyword: cannot generate atom for node kind %v", seg.nodes[0].Kind)
	}
}

// rdfAtom renders an RDF segment: one shared subject variable, one
// triple pattern per property node, type patterns for class nodes.
func (c *Catalog) rdfAtom(seg *segment, idx int) (*core.Atom, []string, error) {
	subj := fmt.Sprintf("s%d", idx)
	var pats []string
	head := []string{subj}
	freshen := 0

	renderConst := func(orig string) string {
		if strings.HasPrefix(orig, "http://") || strings.HasPrefix(orig, "https://") {
			return "<" + orig + ">"
		}
		return `"` + orig + `"`
	}
	for _, n := range seg.nodes {
		switch n.Kind {
		case digest.RDFClass:
			pats = append(pats, fmt.Sprintf("?%s a <%s>", subj, n.Label))
		case digest.RDFProperty:
			// Shared variables attach at the boundary nodes' objects. A
			// boundary node can carry BOTH a keyword constraint and a
			// shared variable (the keyword's value is what joins to the
			// neighbouring source); emit one pattern per role.
			var objs []string
			if orig := seg.keywords[n.ID]; orig != "" {
				objs = append(objs, renderConst(orig))
			}
			if n == seg.nodes[0] && seg.inVar != "" {
				objs = append(objs, "?"+seg.inVar)
			}
			if n == seg.nodes[len(seg.nodes)-1] && seg.outVar != "" {
				objs = append(objs, "?"+seg.outVar)
			}
			if len(objs) == 0 {
				objs = append(objs, fmt.Sprintf("?o%d_%d", idx, freshen))
				freshen++
			}
			for _, obj := range objs {
				pats = append(pats, fmt.Sprintf("?%s <%s> %s", subj, n.Label, obj))
			}
		}
	}
	if seg.inVar != "" {
		head = append(head, seg.inVar)
	}
	if seg.outVar != "" {
		head = append(head, seg.outVar)
	}
	headList := "?" + strings.Join(head, ", ?")
	text := fmt.Sprintf("q(%s) :- %s", headList, strings.Join(pats, " . "))

	atom := &core.Atom{Sub: source.SubQuery{Language: source.LangBGP, Text: text}}
	if c.GraphURI == seg.sourceURI {
		atom.Kind = core.GraphAtom
	} else {
		atom.Kind = core.SourceAtom
		atom.SourceURI = seg.sourceURI
	}
	if seg.inVar != "" {
		atom.Sub.InVars = []string{seg.inVar}
	}
	return atom, head, nil
}

// docAtom renders a document segment as a SEARCH sub-query.
func (c *Catalog) docAtom(seg *segment, idx int) (*core.Atom, []string, error) {
	indexName := ""
	var conds []string
	returns := []string{"_id"}
	docVar := fmt.Sprintf("d%d", idx)
	outCols := []string{docVar}
	var inVars []string

	// Parameter conditions must appear in '?' order; the inbound
	// parameter condition is emitted first.
	first, last := seg.nodes[0], seg.nodes[len(seg.nodes)-1]
	for _, n := range seg.nodes {
		switch n.Kind {
		case digest.DocRoot:
			indexName = n.Label
		case digest.DocPath:
			op := "="
			if n.Analyzed {
				op = "CONTAINS" // text fields are probed by analyzed match
			}
			if orig, ok := seg.keywords[n.ID]; ok {
				conds = append(conds, fmt.Sprintf("%s %s '%s'", n.Label, op, strings.ReplaceAll(orig, "'", "''")))
			}
			if n == first && seg.inVar != "" {
				conds = append([]string{n.Label + " " + op + " ?"}, conds...)
				inVars = append(inVars, seg.inVar)
			}
			if n == last && seg.outVar != "" {
				returns = append(returns, n.Label)
				outCols = append(outCols, seg.outVar)
			}
		}
	}
	if indexName == "" {
		// Segment may not pass through the root; find it from the digest.
		for _, d := range c.digests {
			if d.Source != seg.sourceURI {
				continue
			}
			for _, n := range d.NodeList() {
				if n.Kind == digest.DocRoot {
					indexName = n.Label
				}
			}
		}
	}
	if indexName == "" {
		return nil, nil, fmt.Errorf("keyword: no collection root for source %s", seg.sourceURI)
	}
	text := "SEARCH " + indexName
	if len(conds) > 0 {
		text += " WHERE " + strings.Join(conds, " AND ")
	}
	text += " RETURN " + strings.Join(returns, ", ")

	atom := &core.Atom{
		Kind:      core.SourceAtom,
		SourceURI: seg.sourceURI,
		Sub:       source.SubQuery{Language: source.LangSearch, Text: text, InVars: inVars},
		OutVars:   outCols,
	}
	head := []string{docVar}
	if seg.inVar != "" {
		head = append(head, seg.inVar)
	}
	if seg.outVar != "" {
		head = append(head, seg.outVar)
	}
	return atom, head, nil
}

// xmlAtom renders an XML segment as an XPATH sub-query. The segment's
// path labels must share an element prefix (e.g.
// "speeches/speech/@speaker" and "speeches/speech/title" share
// "speeches/speech"); keyword matches become predicates, shared
// variables become '?' predicates or RETURN selectors.
func (c *Catalog) xmlAtom(seg *segment, idx int) (*core.Atom, []string, error) {
	type sel struct {
		node     *digest.Node
		selector string // "@attr" or child element name
		prefix   string // element path
	}
	var sels []sel
	for _, n := range seg.nodes {
		if n.Kind != digest.XMLPath {
			continue
		}
		label := n.Label
		i := strings.LastIndexByte(label, '/')
		if i < 0 {
			return nil, nil, fmt.Errorf("keyword: malformed XML path %q", label)
		}
		sels = append(sels, sel{node: n, selector: label[i+1:], prefix: label[:i]})
	}
	if len(sels) == 0 {
		return nil, nil, fmt.Errorf("keyword: XML segment has no paths")
	}
	// All selectors must share the (longest) element prefix.
	prefix := sels[0].prefix
	for _, s := range sels[1:] {
		if len(s.prefix) > len(prefix) {
			prefix = s.prefix
		}
	}
	for _, s := range sels {
		if !strings.HasPrefix(prefix, s.prefix) {
			return nil, nil, fmt.Errorf("keyword: XML paths %q and %q do not share a prefix", prefix, s.prefix)
		}
	}

	predOf := func(s sel) string {
		if strings.HasPrefix(s.selector, "@") {
			return s.selector
		}
		return s.selector
	}

	var preds []string
	var inVars []string
	docVar := fmt.Sprintf("x%d", idx)
	returns := []string{"_id"}
	outCols := []string{docVar}
	first, last := seg.nodes[0], seg.nodes[len(seg.nodes)-1]
	for _, s := range sels {
		if orig, ok := seg.keywords[s.node.ID]; ok {
			preds = append(preds, fmt.Sprintf("%s='%s'", predOf(s), strings.ReplaceAll(orig, "'", "")))
		}
		if s.node == first && seg.inVar != "" {
			preds = append([]string{predOf(s) + "=?"}, preds...)
			inVars = append(inVars, seg.inVar)
		}
		if s.node == last && seg.outVar != "" {
			returns = append(returns, s.selector)
			outCols = append(outCols, seg.outVar)
		}
	}
	xpath := "/" + prefix
	for _, p := range preds {
		xpath += "[" + p + "]"
	}
	text := "XPATH " + xpath + " RETURN " + strings.Join(returns, ", ")

	atom := &core.Atom{
		Kind:      core.SourceAtom,
		SourceURI: seg.sourceURI,
		Sub:       source.SubQuery{Language: source.LangXPath, Text: text, InVars: inVars},
		OutVars:   outCols,
	}
	head := []string{docVar}
	if seg.inVar != "" {
		head = append(head, seg.inVar)
	}
	if seg.outVar != "" {
		head = append(head, seg.outVar)
	}
	return atom, head, nil
}

// relAtom renders a relational segment as a SQL sub-query, joining
// tables along FK edges crossed by the path.
func (c *Catalog) relAtom(seg *segment, idx int) (*core.Atom, []string, error) {
	// Tables in path order and the FK joins between consecutive attrs.
	var tables []string
	tableSeen := make(map[string]bool)
	var joins []string
	var conds []string
	var inVars []string
	var selectCols []string
	var outCols []string

	attrTable := func(label string) (string, string) {
		i := strings.IndexByte(label, '.')
		if i < 0 {
			return label, ""
		}
		return label[:i], label[i+1:]
	}
	addTable := func(t string) {
		if !tableSeen[t] {
			tableSeen[t] = true
			tables = append(tables, t)
		}
	}

	var prevAttr *digest.Node
	first, last := seg.nodes[0], seg.nodes[len(seg.nodes)-1]
	for _, n := range seg.nodes {
		switch n.Kind {
		case digest.RelTable:
			addTable(n.Label)
		case digest.RelAttribute:
			t, _ := attrTable(n.Label)
			if tableSeen[t] && prevAttr != nil {
				pt, _ := attrTable(prevAttr.Label)
				if pt != t {
					// FK hop between already-known tables: add join cond.
					joins = append(joins, fmt.Sprintf("%s = %s", prevAttr.Label, n.Label))
				}
			} else if !tableSeen[t] && prevAttr != nil {
				pt, _ := attrTable(prevAttr.Label)
				if pt != t && c.edgeKind(prevAttr.ID, n.ID) == digest.KeyForeignKey {
					addTable(t)
					joins = append(joins, fmt.Sprintf("%s = %s", prevAttr.Label, n.Label))
				} else {
					addTable(t)
				}
			} else {
				addTable(t)
			}
			if orig, ok := seg.keywords[n.ID]; ok {
				conds = append(conds, fmt.Sprintf("%s = '%s'", n.Label, strings.ReplaceAll(orig, "'", "''")))
			}
			if n == first && seg.inVar != "" {
				conds = append([]string{n.Label + " = ?"}, conds...)
				inVars = append(inVars, seg.inVar)
			}
			if n == last && seg.outVar != "" {
				selectCols = append(selectCols, n.Label)
				outCols = append(outCols, seg.outVar)
			}
			prevAttr = n
		}
	}
	if len(tables) == 0 {
		return nil, nil, fmt.Errorf("keyword: relational segment has no table")
	}
	// Evidence column: select the first table's first path attribute or
	// a constant-ish placeholder — use the match/in column when no out.
	rowVar := fmt.Sprintf("r%d", idx)
	evidenceCol := ""
	for _, n := range seg.nodes {
		if n.Kind == digest.RelAttribute {
			evidenceCol = n.Label
			break
		}
	}
	if evidenceCol == "" {
		return nil, nil, fmt.Errorf("keyword: relational segment has no attribute")
	}
	selectCols = append([]string{evidenceCol}, selectCols...)
	outCols = append([]string{rowVar}, outCols...)

	where := append(append([]string{}, joins...), conds...)
	text := "SELECT " + strings.Join(selectCols, ", ") + " FROM " + strings.Join(tables, ", ")
	if len(where) > 0 {
		text += " WHERE " + strings.Join(where, " AND ")
	}
	// Multi-table FROM lists need explicit join syntax in our SQL
	// subset; rewrite "FROM a, b WHERE a.x = b.y AND …" as JOIN.
	if len(tables) > 1 {
		text = "SELECT " + strings.Join(selectCols, ", ") + " FROM " + tables[0]
		for i := 1; i < len(tables); i++ {
			on := ""
			for _, j := range joins {
				if strings.Contains(j, tables[i]+".") {
					on = j
					break
				}
			}
			if on == "" {
				return nil, nil, fmt.Errorf("keyword: no join condition for table %s", tables[i])
			}
			text += " JOIN " + tables[i] + " ON " + on
		}
		if len(conds) > 0 {
			text += " WHERE " + strings.Join(conds, " AND ")
		}
	}

	atom := &core.Atom{
		Kind:      core.SourceAtom,
		SourceURI: seg.sourceURI,
		Sub:       source.SubQuery{Language: source.LangSQL, Text: text, InVars: inVars},
		OutVars:   outCols,
	}
	head := []string{rowVar}
	if seg.inVar != "" {
		head = append(head, seg.inVar)
	}
	if seg.outVar != "" {
		head = append(head, seg.outVar)
	}
	return atom, head, nil
}

// edgeKind returns the kind of the edge from a to b (Structural when
// absent).
func (c *Catalog) edgeKind(a, b string) digest.EdgeKind {
	for _, e := range c.adj[a] {
		if e.To == b {
			return e.Kind
		}
	}
	return digest.Structural
}
