package keyword

import (
	"strings"
	"testing"

	"tatooine/internal/core"
	"tatooine/internal/digest"
	"tatooine/internal/doc"
	"tatooine/internal/fulltext"
	"tatooine/internal/rdf"
	"tatooine/internal/relstore"
	"tatooine/internal/source"
)

// fixture builds the paper's running mixed instance: politics graph,
// tweets, and an INSEE-like table.
func fixture(t testing.TB) *core.Instance {
	g := rdf.NewGraph()
	g.AddAll(rdf.MustParse(`
@prefix : <http://t.example/> .
@prefix pol: <http://t.example/pol/> .
pol:POL01140 a :politician ;
  :position :headOfState ;
  :twitterAccount "fhollande" .
pol:POL02 a :politician ;
  :position :deputy ;
  :twitterAccount "jdupont" .
`))
	in := core.NewInstance(g, core.WithPrefixes(map[string]string{"": "http://t.example/"}))

	ix := fulltext.NewIndex("tweets", fulltext.Schema{
		"text":              fulltext.TextField,
		"user.screen_name":  fulltext.KeywordField,
		"entities.hashtags": fulltext.KeywordField,
	})
	add := func(id, author, text string, tags []string) {
		d := &doc.Document{ID: id}
		d.Set("text", text)
		d.Set("user.screen_name", author)
		anyTags := make([]any, len(tags))
		for i, h := range tags {
			anyTags[i] = h
		}
		d.Set("entities.hashtags", anyTags)
		if err := ix.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	add("t1", "fhollande", "solidarité au salon #SIA2016", []string{"SIA2016"})
	add("t2", "jdupont", "les agriculteurs #SIA2016", []string{"SIA2016"})
	add("t3", "fhollande", "état d'urgence", []string{"EtatDurgence"})
	if err := in.AddSource(source.NewDocSource("solr://tweets", ix)); err != nil {
		t.Fatal(err)
	}

	db := relstore.NewDatabase("insee")
	for _, q := range []string{
		"CREATE TABLE departements (code TEXT PRIMARY KEY, name TEXT, population INT)",
		"INSERT INTO departements VALUES ('75','Paris',2187526), ('92','Hauts-de-Seine',1609306)",
	} {
		if _, err := db.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.AddSource(source.NewRelSource("sql://insee", db)); err != nil {
		t.Fatal(err)
	}
	return in
}

func catalog(t testing.TB, in *core.Instance) *Catalog {
	t.Helper()
	c, err := BuildCatalog(in, digest.DefaultBudget())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCatalogDigestsAndOverlaps(t *testing.T) {
	in := fixture(t)
	c := catalog(t, in)
	if len(c.Digests()) != 3 { // G + tweets + insee
		t.Fatalf("digests: %d", len(c.Digests()))
	}
	// The twitterAccount ↔ user.screen_name overlap edge must exist.
	tw := c.NodeByLabel("tatooine:G", "http://t.example/twitterAccount")
	sn := c.NodeByLabel("solr://tweets", "user.screen_name")
	if tw == nil || sn == nil {
		t.Fatal("bridge nodes missing")
	}
	found := false
	for _, e := range c.adj[tw.ID] {
		if e.To == sn.ID && e.Kind == digest.ValueOverlap {
			found = true
		}
	}
	if !found {
		t.Error("value overlap edge missing between twitterAccount and user.screen_name")
	}
}

func TestMatchesKeywordLocation(t *testing.T) {
	in := fixture(t)
	c := catalog(t, in)
	matches, err := c.Matches([]string{"head of state", "SIA2016"})
	if err != nil {
		t.Fatal(err)
	}
	// "head of state" must hit the position property in G.
	foundPos := false
	for _, m := range matches[0] {
		if m.Node.Label == "http://t.example/position" {
			foundPos = true
		}
	}
	if !foundPos {
		t.Errorf("head of state matches: %+v", matches[0])
	}
	// "SIA2016" must hit the hashtags path.
	foundTag := false
	for _, m := range matches[1] {
		if m.Node.Label == "entities.hashtags" {
			foundTag = true
		}
	}
	if !foundTag {
		t.Errorf("SIA2016 matches: %+v", matches[1])
	}
	if _, err := c.Matches([]string{"zzznothing"}); err == nil {
		t.Error("unmatched keyword accepted")
	}
}

// TestPaperExampleKeywordToQSIA reproduces §2.2: from the keywords
// "head of state" and "SIA2016", the engine generates a structured
// query equivalent to qSIA and its execution finds Hollande's tweet.
func TestPaperExampleKeywordToQSIA(t *testing.T) {
	in := fixture(t)
	c := catalog(t, in)
	cands, err := c.Search([]string{"head of state", "SIA2016"}, SearchOptions{MaxCandidates: 3})
	if err != nil {
		t.Fatal(err)
	}
	// At least one candidate must execute and return exactly tweet t1.
	for _, cand := range cands {
		res, err := in.Execute(cand.Query)
		if err != nil {
			t.Logf("candidate failed (%v): %s", err, cand.Query)
			continue
		}
		if len(res.Rows) == 0 {
			continue
		}
		// The result must reference t1 (the head of state's SIA tweet)
		// in some column.
		for _, row := range res.Rows {
			for _, v := range row {
				if v.Str() == "t1" {
					return // success
				}
			}
		}
	}
	t.Errorf("no candidate produced t1; candidates: %d", len(cands))
}

func TestSearchSingleKeyword(t *testing.T) {
	in := fixture(t)
	c := catalog(t, in)
	cands, err := c.Search([]string{"SIA2016"}, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := in.Execute(cands[0].Query)
	if err != nil {
		t.Fatalf("execute: %v (%s)", err, cands[0].Query)
	}
	if len(res.Rows) != 2 { // t1 and t2 carry the hashtag
		t.Errorf("single keyword rows: %+v", res.Rows)
	}
}

func TestSearchWithinRelationalSource(t *testing.T) {
	in := fixture(t)
	c := catalog(t, in)
	cands, err := c.Search([]string{"Paris"}, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := in.Execute(cands[0].Query)
	if err != nil {
		t.Fatalf("execute: %v (%s)", err, cands[0].Query)
	}
	if len(res.Rows) != 1 {
		t.Errorf("Paris rows: %+v", res.Rows)
	}
}

func TestSearchRanksShorterPathsFirst(t *testing.T) {
	in := fixture(t)
	c := catalog(t, in)
	cands, err := c.Search([]string{"fhollande", "SIA2016"}, SearchOptions{MaxCandidates: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(cands); i++ {
		if cands[i-1].Weight > cands[i].Weight {
			t.Errorf("candidates not sorted by weight: %v", cands)
		}
	}
}

func TestSearchNoJoinPath(t *testing.T) {
	// Keywords in disconnected sources with no overlap → error.
	g := rdf.NewGraph()
	g.AddAll(rdf.MustParse(`@prefix : <http://e/> . :a :p "isolatedvalue1" .`))
	in := core.NewInstance(g)
	db := relstore.NewDatabase("d")
	db.Exec("CREATE TABLE t (c TEXT)")
	db.Exec("INSERT INTO t VALUES ('isolatedvalue2')")
	in.AddSource(source.NewRelSource("sql://d", db))
	c := catalog(t, in)
	if _, err := c.Search([]string{"isolatedvalue1", "isolatedvalue2"}, SearchOptions{}); err == nil {
		t.Error("expected no-join-path error")
	}
}

func TestExplainPath(t *testing.T) {
	in := fixture(t)
	c := catalog(t, in)
	cands, err := c.Search([]string{"head of state", "SIA2016"}, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	out := c.Explain(cands[0])
	if !strings.Contains(out, "->") {
		t.Errorf("explain: %s", out)
	}
}

func TestGeneratedQueryIsBindJoinChain(t *testing.T) {
	in := fixture(t)
	c := catalog(t, in)
	cands, err := c.Search([]string{"head of state", "SIA2016"}, SearchOptions{MaxCandidates: 1})
	if err != nil {
		t.Fatal(err)
	}
	q := cands[0].Query
	if len(q.Atoms) < 2 {
		t.Fatalf("expected multi-atom query: %s", q)
	}
	// Every atom after the first must consume a shared variable.
	for i, a := range q.Atoms[1:] {
		if len(a.Sub.InVars) == 0 {
			t.Errorf("atom %d has no IN variables: %s", i+1, q)
		}
	}
}

// TestThreeKeywordSteinerPath exercises the >2-keyword heuristic: the
// path must visit matches of all three keywords.
func TestThreeKeywordSteinerPath(t *testing.T) {
	in := fixture(t)
	c := catalog(t, in)
	cands, err := c.Search([]string{"head of state", "fhollande", "SIA2016"}, SearchOptions{MaxCandidates: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	// The best candidate's path must include nodes from both G and the
	// tweet store.
	sources := map[string]bool{}
	for _, id := range cands[0].Path {
		if n := c.Node(id); n != nil {
			sources[n.Source] = true
		}
	}
	if !sources["tatooine:G"] || !sources["solr://tweets"] {
		t.Errorf("path sources: %v (path %v)", sources, cands[0].Path)
	}
}

// TestCandidateWeightsOrdered ensures Search returns candidates in
// non-decreasing weight order across mixed match sets.
func TestCandidateWeightsOrdered(t *testing.T) {
	in := fixture(t)
	c := catalog(t, in)
	cands, err := c.Search([]string{"SIA2016", "jdupont"}, SearchOptions{MaxCandidates: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(cands); i++ {
		if cands[i-1].Weight > cands[i].Weight {
			t.Errorf("weights out of order: %v", cands)
		}
	}
}
