package keyword

import (
	"strings"
	"testing"

	"tatooine/internal/core"
	"tatooine/internal/digest"
	"tatooine/internal/rdf"
	"tatooine/internal/relstore"
	"tatooine/internal/source"
)

// TestKeywordPathAcrossForeignKey checks join-path discovery *inside* a
// relational source: two keywords in different tables connected by a
// key–foreign-key edge must generate a SQL join.
func TestKeywordPathAcrossForeignKey(t *testing.T) {
	db := relstore.NewDatabase("insee")
	for _, q := range []string{
		"CREATE TABLE departements (code TEXT PRIMARY KEY, name TEXT)",
		`CREATE TABLE resultats (dept TEXT, parti TEXT, voix INT,
			FOREIGN KEY (dept) REFERENCES departements(code))`,
		"INSERT INTO departements VALUES ('75', 'Paris'), ('29', 'Finistere')",
		"INSERT INTO resultats VALUES ('75', 'SocParty', 350000), ('29', 'ConsParty', 120000)",
	} {
		if _, err := db.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	in := core.NewInstance(rdf.NewGraph())
	if err := in.AddSource(source.NewRelSource("sql://insee", db)); err != nil {
		t.Fatal(err)
	}
	cat, err := BuildCatalog(in, digest.DefaultBudget())
	if err != nil {
		t.Fatal(err)
	}
	cands, err := cat.Search([]string{"Paris", "SocParty"}, SearchOptions{MaxCandidates: 3})
	if err != nil {
		t.Fatal(err)
	}
	ran := false
	for _, cand := range cands {
		q := cand.Query
		// Expect at least one candidate whose SQL joins the two tables.
		text := ""
		for _, a := range q.Atoms {
			text += a.Sub.Text + " "
		}
		if !strings.Contains(text, "JOIN") {
			continue
		}
		res, err := in.Execute(q)
		if err != nil {
			t.Logf("candidate failed (%v): %s", err, q)
			continue
		}
		if len(res.Rows) != 1 {
			t.Errorf("FK-join candidate rows: %+v", res.Rows)
		}
		ran = true
	}
	if !ran {
		for _, cand := range cands {
			t.Logf("candidate: %s (path %s)", cand.Query, cat.Explain(cand))
		}
		t.Error("no FK-join candidate generated and executed")
	}
}

// TestKeywordRelationalToDocPath checks a path that starts in a
// relational attribute and crosses an overlap edge into the tweet
// store (departement codes appearing in tweets' text is synthetic here
// via a shared code field).
func TestKeywordRelationalToDocPath(t *testing.T) {
	in := fixture(t) // politics graph + tweets + insee
	cat := catalog(t, in)
	// "Paris" lives in departements.name only; "fhollande" in the graph
	// and the tweet store. No path may exist (disconnected) — accept
	// either an error or candidates; what must not happen is a panic or
	// a wrong-result execution.
	cands, err := cat.Search([]string{"Paris", "fhollande"}, SearchOptions{MaxCandidates: 2})
	if err != nil {
		return // disconnected is a legitimate outcome
	}
	for _, cand := range cands {
		if _, err := in.Execute(cand.Query); err != nil {
			t.Logf("candidate failed cleanly: %v", err)
		}
	}
}
