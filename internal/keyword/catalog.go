// Package keyword implements TATOOINE's keyword-based query engine
// (§2.2): keywords are located in per-source digests, the shortest join
// paths between the matched digest nodes are identified (following the
// approach of Le et al. [9]), and each path is translated into an
// executable Conjunctive Mixed Query. This lets non-expert users
// discover connections across a mixed instance without writing
// queries.
package keyword

import (
	"container/heap"
	"fmt"
	"sort"

	"tatooine/internal/core"
	"tatooine/internal/digest"
)

// OverlapThreshold is the minimum sample-overlap fraction for two value
// sets to be considered joinable across sources.
const OverlapThreshold = 0.4

// Catalog holds the digests of a mixed instance plus the cross-source
// value-overlap edges that bridge them.
type Catalog struct {
	digests []*digest.Digest
	nodes   map[string]*digest.Node
	adj     map[string][]digest.Edge
	// GraphURI is the digest source name of the custom RDF graph.
	GraphURI string
}

// BuildCatalog digests the custom graph and every registered source of
// the instance, then discovers cross-source join edges by value-set
// overlap. The budget controls digest precision.
func BuildCatalog(in *core.Instance, budget digest.Budget) (*Catalog, error) {
	c := &Catalog{
		nodes:    make(map[string]*digest.Node),
		adj:      make(map[string][]digest.Edge),
		GraphURI: "tatooine:G",
	}
	c.addDigest(digest.BuildRDF(c.GraphURI, in.Graph(), budget))

	for _, s := range in.Sources().All() {
		d, err := digest.ForSource(s, budget)
		if err != nil {
			return nil, err
		}
		if d != nil {
			c.addDigest(d)
		}
	}
	c.discoverOverlaps()
	return c, nil
}

func (c *Catalog) addDigest(d *digest.Digest) {
	c.digests = append(c.digests, d)
	for id, n := range d.Nodes {
		c.nodes[id] = n
	}
	for _, e := range d.Edges {
		c.adj[e.From] = append(c.adj[e.From], e)
	}
}

// discoverOverlaps probes value-set overlap between every pair of
// value-bearing nodes in different sources and adds ValueOverlap edges
// where the sampled overlap passes the threshold; these are the "joins
// available in this application domain" the paper capitalizes on.
func (c *Catalog) discoverOverlaps() {
	var valueNodes []*digest.Node
	for _, n := range c.sortedNodes() {
		if n.Values != nil && n.Values.Count() > 0 {
			valueNodes = append(valueNodes, n)
		}
	}
	for i := 0; i < len(valueNodes); i++ {
		for j := i + 1; j < len(valueNodes); j++ {
			a, b := valueNodes[i], valueNodes[j]
			if a.Source == b.Source {
				continue
			}
			ov := digest.OverlapEstimate(a.Values, b.Values)
			if rev := digest.OverlapEstimate(b.Values, a.Values); rev > ov {
				ov = rev
			}
			if ov < OverlapThreshold {
				continue
			}
			w := 2.0 - ov // stronger overlap → cheaper edge
			c.adj[a.ID] = append(c.adj[a.ID], digest.Edge{From: a.ID, To: b.ID, Kind: digest.ValueOverlap, Weight: w})
			c.adj[b.ID] = append(c.adj[b.ID], digest.Edge{From: b.ID, To: a.ID, Kind: digest.ValueOverlap, Weight: w})
		}
	}
}

func (c *Catalog) sortedNodes() []*digest.Node {
	out := make([]*digest.Node, 0, len(c.nodes))
	for _, n := range c.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Digests returns the per-source digests.
func (c *Catalog) Digests() []*digest.Digest { return c.digests }

// Node returns a node by ID.
func (c *Catalog) Node(id string) *digest.Node { return c.nodes[id] }

// Lookup returns all digest nodes matching the keyword.
func (c *Catalog) Lookup(kw string) []*digest.Node {
	var out []*digest.Node
	for _, d := range c.digests {
		out = append(out, d.Lookup(kw)...)
	}
	return out
}

// Match pairs a keyword with a digest node that may contain it.
type Match struct {
	Keyword string
	Node    *digest.Node
	// Exact is true when the node's value set answered exactly.
	Exact bool
}

// Matches returns per-keyword matches; an error if a keyword matches
// nothing.
func (c *Catalog) Matches(keywords []string) ([][]Match, error) {
	out := make([][]Match, len(keywords))
	for i, kw := range keywords {
		nodes := c.Lookup(kw)
		if len(nodes) == 0 {
			return nil, fmt.Errorf("keyword: %q matches no digest node", kw)
		}
		for _, n := range nodes {
			out[i] = append(out[i], Match{
				Keyword: kw,
				Node:    n,
				Exact:   n.Values != nil && n.Values.Exact(),
			})
		}
	}
	return out, nil
}

// ---------- shortest paths ----------

// pathResult is a join path with its total weight.
type pathResult struct {
	nodes  []string
	weight float64
}

type pqItem struct {
	node string
	dist float64
}

type pq []pqItem

func (p pq) Len() int           { return len(p) }
func (p pq) Less(i, j int) bool { return p[i].dist < p[j].dist }
func (p pq) Swap(i, j int)      { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x any)        { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() any          { old := *p; n := len(old); x := old[n-1]; *p = old[:n-1]; return x }

// shortestPath runs Dijkstra from one node to a target set; it returns
// the path and weight, or false.
func (c *Catalog) shortestPath(from string, targets map[string]struct{}) (pathResult, bool) {
	dist := map[string]float64{from: 0}
	prev := map[string]string{}
	done := map[string]struct{}{}
	h := &pq{{from, 0}}
	for h.Len() > 0 {
		cur := heap.Pop(h).(pqItem)
		if _, ok := done[cur.node]; ok {
			continue
		}
		done[cur.node] = struct{}{}
		if _, hit := targets[cur.node]; hit {
			// Reconstruct.
			var nodes []string
			for n := cur.node; ; {
				nodes = append([]string{n}, nodes...)
				p, ok := prev[n]
				if !ok {
					break
				}
				n = p
			}
			return pathResult{nodes: nodes, weight: cur.dist}, true
		}
		for _, e := range c.adj[cur.node] {
			nd := cur.dist + e.Weight
			if old, seen := dist[e.To]; !seen || nd < old {
				dist[e.To] = nd
				prev[e.To] = cur.node
				heap.Push(h, pqItem{e.To, nd})
			}
		}
	}
	return pathResult{}, false
}

// joinPaths finds up to k low-weight paths connecting one match of the
// first keyword to one match of each other keyword. For two keywords
// this is pairwise shortest path; for more, paths from the first
// keyword's matches are extended greedily through the remaining
// keywords' target sets (a Steiner-tree heuristic in the spirit of [9]).
func (c *Catalog) joinPaths(matches [][]Match, k int) []pathResult {
	if k <= 0 {
		k = 3
	}
	targetSet := func(ms []Match) map[string]struct{} {
		out := make(map[string]struct{}, len(ms))
		for _, m := range ms {
			out[m.Node.ID] = struct{}{}
		}
		return out
	}
	var results []pathResult
	if len(matches) == 1 {
		for _, m := range matches[0] {
			results = append(results, pathResult{nodes: []string{m.Node.ID}})
		}
	} else {
		for _, start := range matches[0] {
			nodes := []string{start.Node.ID}
			weight := 0.0
			ok := true
			cur := start.Node.ID
			for _, rest := range matches[1:] {
				p, found := c.shortestPath(cur, targetSet(rest))
				if !found {
					ok = false
					break
				}
				nodes = append(nodes, p.nodes[1:]...)
				weight += p.weight
				cur = p.nodes[len(p.nodes)-1]
			}
			if ok {
				results = append(results, pathResult{nodes: nodes, weight: weight})
			}
		}
	}
	sort.SliceStable(results, func(i, j int) bool {
		if results[i].weight != results[j].weight {
			return results[i].weight < results[j].weight
		}
		return len(results[i].nodes) < len(results[j].nodes)
	})
	// Deduplicate identical node sequences.
	seen := make(map[string]struct{})
	var dedup []pathResult
	for _, r := range results {
		key := fmt.Sprint(r.nodes)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		dedup = append(dedup, r)
	}
	if len(dedup) > k {
		dedup = dedup[:k]
	}
	return dedup
}
