package keyword

import (
	"fmt"

	"tatooine/internal/digest"
)

// SearchOptions tune keyword search.
type SearchOptions struct {
	// MaxCandidates bounds the number of generated queries (default 3).
	MaxCandidates int
}

// Search locates the keywords in the catalog's digests, finds the
// lowest-weight join paths connecting them, and generates one
// executable CMQ per path (§2.2: "the keyword-based query engine
// identifies a set of mixed queries which, evaluated over the set of
// (joining) datasets, return the results users are interested in").
func (c *Catalog) Search(keywords []string, opts SearchOptions) ([]Candidate, error) {
	if len(keywords) == 0 {
		return nil, fmt.Errorf("keyword: no keywords given")
	}
	if opts.MaxCandidates <= 0 {
		opts.MaxCandidates = 3
	}
	matches, err := c.Matches(keywords)
	if err != nil {
		return nil, err
	}
	paths := c.joinPaths(matches, opts.MaxCandidates)
	if len(paths) == 0 {
		return nil, fmt.Errorf("keyword: no join path connects %v", keywords)
	}

	// Constrained values: for every matched node on a path, the original
	// spelling of the keyword's value (digest-recovered); label-only
	// matches (schema terms) carry no value constraint.
	constraintFor := func(nodeID, kw string) (string, bool) {
		n := c.nodes[nodeID]
		if n == nil || n.Values == nil || !n.Values.MayContain(kw) {
			return "", false
		}
		if orig, ok := n.Values.Original(kw); ok {
			return orig, true
		}
		return kw, true // Bloom-only: fall back to the keyword itself
	}

	var out []Candidate
	for _, p := range paths {
		keywordsAt := make(map[string]string)
		onPath := make(map[string]struct{}, len(p.nodes))
		for _, id := range p.nodes {
			onPath[id] = struct{}{}
		}
		for i, kw := range keywords {
			for _, m := range matches[i] {
				if _, ok := onPath[m.Node.ID]; !ok {
					continue
				}
				if orig, ok := constraintFor(m.Node.ID, kw); ok {
					keywordsAt[m.Node.ID] = orig
				}
			}
		}
		q, err := c.generate(p, keywordsAt)
		if err != nil {
			continue // a path that cannot be rendered is skipped, not fatal
		}
		out = append(out, Candidate{Query: q, Path: p.nodes, Weight: p.weight})
		if len(out) >= opts.MaxCandidates {
			break
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("keyword: no executable query could be generated for %v", keywords)
	}
	return out, nil
}

// Explain renders a candidate's join path with node kinds.
func (c *Catalog) Explain(cand Candidate) string {
	out := ""
	for i, id := range cand.Path {
		n := c.nodes[id]
		if i > 0 {
			out += " -> "
		}
		if n == nil {
			out += id
			continue
		}
		out += fmt.Sprintf("%s(%s)", n.Label, n.Kind)
	}
	return out
}

// NodeByLabel finds a node by source and label (test/debug helper).
func (c *Catalog) NodeByLabel(sourceURI, label string) *digest.Node {
	return c.nodes[sourceURI+"#"+label]
}
