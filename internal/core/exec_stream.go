package core

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tatooine/internal/obs"
	"tatooine/internal/source"
	"tatooine/internal/value"
)

// StreamBatchRows is the row granularity of StreamingResult.NextBatch
// (and thus of one NDJSON flush): batches are capped at this size but
// flush early whenever the pipeline would block, so the first rows
// reach the consumer at upstream latency, not at batch-fill latency.
const StreamBatchRows = 64

// streamChanBatches bounds the sink node's channel: the producer runs
// at most this many batches ahead of the consumer before Send blocks
// (backpressure all the way into the probe fan-out, whose jobs hold
// their fan-out slots while blocked on emit).
const streamChanBatches = 4

// errStreamDone marks a producer stopped because the consumer
// cancelled the stream — a LIMIT reached its bound or the client went
// away — not because anything failed.
var errStreamDone = errors.New("core: stream consumer gone")

// streamEligible reports whether execution can run as a tuple-streaming
// pipeline: the DAG scheduler with parallelism on, none of the
// materializing ablation knobs set.
func streamEligible(opts ExecOptions) bool {
	return opts.Parallel && !opts.WaveBarrier && !opts.Materialized && !opts.MaterializeFinal
}

// ExecuteStream runs a CMQ and returns its result as a stream of row
// batches instead of a materialized relation: the first batch is
// available as soon as the first rows clear the pipeline, while
// upstream nodes are still probing. The caller must Close the result
// (Close is idempotent; a full drain still requires it). When the
// options are not stream-eligible — sequential, wave-barrier, or the
// Materialized ablation — the query executes on the materialized path
// and the result replays as batches, so callers get one API either
// way.
func (in *Instance) ExecuteStream(ctx context.Context, q *CMQ, opts ExecOptions) (*StreamingResult, error) {
	ex, err := in.newExecutor(ctx, q, opts)
	if err != nil {
		return nil, err
	}
	if streamEligible(ex.opts) {
		return ex.runDAGStream()
	}
	res, err := ex.runMaterialized()
	if err != nil {
		return nil, err
	}
	return replayResult(res), nil
}

// StreamingResult is a query result consumed incrementally: NextBatch
// until it returns an empty batch (end of result), then Stats for the
// final counters; Close releases the pipeline and is what propagates
// early abandonment upstream (in-flight probes are cancelled, not
// drained). Not safe for concurrent use.
type StreamingResult struct {
	// Cols are the result column names, fixed before the first row.
	Cols []string
	// Plan is the executed plan.
	Plan *Plan

	ex  *executor
	run *streamRun
	it  Iterator // finishing chain over the root join; nil in replay mode

	rows []value.Row // replay mode: pre-materialized rows
	pos  int

	stats     ExecStats
	trace     *obs.SpanData
	statsDone bool
	opened    bool
	done      bool
	closed    bool
}

// replayResult wraps an already-materialized result in the streaming
// interface.
func replayResult(res *QueryResult) *StreamingResult {
	return &StreamingResult{Cols: res.Cols, Plan: res.Plan,
		rows: res.Rows, stats: res.Stats, trace: res.Trace, statsDone: true}
}

// NextBatch returns the next rows of the result, up to StreamBatchRows
// per call but flushing earlier whenever the pipeline would block — a
// caller writing batches to a wire delivers the first rows at
// first-probe latency. An empty batch signals the end of the result; a
// non-nil error ends the stream (rows already returned stand).
func (r *StreamingResult) NextBatch() ([]value.Row, error) {
	if r.done || r.closed {
		return nil, nil
	}
	if r.it == nil { // replay mode
		if r.pos >= len(r.rows) {
			r.done = true
			return nil, nil
		}
		end := min(r.pos+StreamBatchRows, len(r.rows))
		batch := r.rows[r.pos:end]
		r.pos = end
		return batch, nil
	}
	if !r.opened {
		r.opened = true
		if err := r.it.Open(); err != nil {
			return nil, r.fail(err)
		}
	}
	var batch []value.Row
	for len(batch) < StreamBatchRows {
		row, ok, err := r.it.Next()
		if err != nil {
			return nil, r.fail(err)
		}
		if !ok {
			r.done = true
			r.shutdown()
			break
		}
		batch = append(batch, row)
		if !iterBuffered(r.it) {
			break // flush what we have rather than block for a full batch
		}
	}
	return batch, nil
}

// fail shuts the pipeline down and returns the most informative error:
// the pipeline's recorded root cause when the iterator surfaced only
// its cancellation fallout.
func (r *StreamingResult) fail(err error) error {
	r.shutdown()
	if pe := r.run.err(); pe != nil && !errors.Is(pe, errStreamDone) {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return pe
		}
	}
	return err
}

// shutdown tears the pipeline down: the iterator chain closes (which
// cancels the sink stream), the pipeline context cancels (stopping
// in-flight probes that nothing will read — LIMIT early termination
// lands here), and every node goroutine is awaited, so no probe
// goroutine outlives the result. Idempotent.
func (r *StreamingResult) shutdown() {
	if r.statsDone {
		return
	}
	r.it.Close()
	r.run.cancel()
	r.run.wg.Wait()
	r.stats = r.ex.finalStats()
	r.ex.span.End()
	r.trace = r.ex.span.Data()
	r.statsDone = true
}

// Close ends consumption, cancelling whatever still runs upstream.
// Required after a drain too; idempotent.
func (r *StreamingResult) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	if r.it != nil {
		r.shutdown()
	}
	return nil
}

// Stats returns the execution counters: final once the stream ended
// (drained, failed or closed), a live snapshot of the counters —
// without the per-node report — while streaming.
func (r *StreamingResult) Stats() ExecStats {
	if r.statsDone {
		return r.stats
	}
	r.ex.mu.Lock()
	defer r.ex.mu.Unlock()
	return r.ex.stats
}

// Trace returns the execution's span tree: complete once the stream
// ended (drained, failed or closed), nil while it still runs — a
// streaming server sends it as part of the trailer, after the rows.
func (r *StreamingResult) Trace() *obs.SpanData { return r.trace }

// drain consumes the whole stream into a QueryResult — how the
// materialized ExecuteContext API is served off the streaming engine.
func (r *StreamingResult) drain() (*QueryResult, error) {
	defer r.Close()
	res := &QueryResult{Cols: r.Cols, Plan: r.Plan}
	for {
		batch, err := r.NextBatch()
		if err != nil {
			return nil, err
		}
		if len(batch) == 0 {
			break
		}
		res.Rows = append(res.Rows, batch...)
	}
	res.Stats = r.Stats()
	res.Trace = r.Trace()
	return res, nil
}

// streamRun is the shared state of one streaming DAG execution: the
// per-node handoffs, the failure side-band and the producer goroutines.
type streamRun struct {
	ex     *executor
	sink   int           // plan step streaming into the root join
	bufs   []*nodeBuffer // progressive outputs of the non-sink nodes
	stream *BatchStream  // the sink node's bounded output
	cancel context.CancelFunc
	wg     sync.WaitGroup

	errMu    sync.Mutex
	firstErr error
}

// fail records the first failure and cancels the pipeline context, so
// sibling nodes stop probing instead of finishing work nobody reads.
func (r *streamRun) fail(err error) {
	r.errMu.Lock()
	if r.firstErr == nil && err != nil {
		r.firstErr = err
	}
	r.errMu.Unlock()
	r.cancel()
}

func (r *streamRun) err() error {
	r.errMu.Lock()
	defer r.errMu.Unlock()
	return r.firstErr
}

// runDAGStream launches the plan as a tuple-streaming pipeline: every
// node runs in its own goroutine immediately, consuming its
// dependencies' outputs through progressive cursors — a downstream
// bind join fires its first probe batch as soon as the upstream's
// first rows land, not when the upstream materializes. The sink node
// (no dependents, most expensive) feeds a bounded BatchStream that the
// root hash join probes row by row; every other node's output doubles
// as a hash-build input of that join, exactly as in the materialized
// executor, so the row multiset is identical — only the timing moves.
func (ex *executor) runDAGStream() (*StreamingResult, error) {
	steps := ex.plan.Steps
	if len(steps) == 0 {
		res, err := ex.runMaterialized()
		if err != nil {
			return nil, err
		}
		return replayResult(res), nil
	}

	pctx, cancel := context.WithCancel(ex.ctx)
	ex.ctx = pctx // every probe observes sibling failures and consumer abandonment alike

	run := &streamRun{ex: ex, sink: ex.plan.StreamSink(), cancel: cancel,
		bufs: make([]*nodeBuffer, len(steps))}
	for i, s := range steps {
		cols := ex.nodeCols(s)
		if i == run.sink {
			run.stream = NewBatchStream(cols, streamChanBatches)
		} else {
			run.bufs[i] = newNodeBuffer(cols)
		}
	}

	for i := range steps {
		run.wg.Add(1)
		go func(i int) {
			defer run.wg.Done()
			run.runNode(i)
		}(i)
	}

	it := ex.finishIter(run.rootChain())
	return &StreamingResult{Cols: it.Cols(), Plan: ex.plan, ex: ex, run: run, it: it}, nil
}

// rootChain assembles the final join: the sink's live stream probes a
// left-deep chain of hash joins whose build sides are the other nodes'
// outputs (their Open blocks until those nodes complete — the builds
// overlap with the sink's drain, which is where the time-to-first-row
// win comes from). Build order is connectivity-greedy over the
// statically known columns, avoiding cross products when anything
// connected remains.
func (r *streamRun) rootChain() Iterator {
	it := Iterator(newStreamIterator(r.stream))
	joined := make(map[string]struct{})
	for _, c := range r.stream.Cols() {
		joined[c] = struct{}{}
	}
	var remaining []int
	for i := range r.ex.plan.Steps {
		if i != r.sink {
			remaining = append(remaining, i)
		}
	}
	for len(remaining) > 0 {
		pick := -1
		for j, i := range remaining {
			for _, c := range r.bufs[i].cols {
				if _, ok := joined[c]; ok {
					pick = j
					break
				}
			}
			if pick >= 0 {
				break
			}
		}
		if pick < 0 {
			pick = 0 // nothing connects: unavoidable cross product
		}
		i := remaining[pick]
		remaining = append(remaining[:pick], remaining[pick+1:]...)
		it = r.ex.newJoin(it, newCursorIterator(r.bufs[i].cursor(r.ex.ctx)))
		for _, c := range r.bufs[i].cols {
			joined[c] = struct{}{}
		}
	}
	return it
}

// runNode produces one plan step's output, closing its handoff with
// the node's terminal status whatever happens.
func (r *streamRun) runNode(i int) {
	ex := r.ex
	s := ex.plan.Steps[i]
	sp := ex.span.StartChild("node")
	sp.SetAttr("atom", strconv.Itoa(s.AtomIndex))
	sp.SetAttr("target", ex.q.Atoms[s.AtomIndex].Designator())
	defer sp.End()
	var produced atomic.Int64
	emit := func(rows []value.Row) error {
		if len(rows) == 0 {
			return nil
		}
		produced.Add(int64(len(rows)))
		if i == r.sink {
			if !r.stream.Send(ex.ctx, rows) {
				if err := ex.ctx.Err(); err != nil {
					return err
				}
				return errStreamDone
			}
			return nil
		}
		r.bufs[i].emit(rows)
		return nil
	}
	err := r.produce(s, emit, sp)
	ex.nodeRows[i] = int(produced.Load())
	if err != nil {
		r.fail(err)
	}
	if i == r.sink {
		r.stream.Close(err)
	} else {
		r.bufs[i].close(err)
	}
}

// produce evaluates one step, pushing output rows through emit as they
// become available.
func (r *streamRun) produce(s PlanStep, emit func([]value.Row) error, sp *obs.Span) error {
	ex := r.ex
	a := ex.q.Atoms[s.AtomIndex]
	outs := ex.plan.outs[s.AtomIndex]

	if s.Dynamic {
		// Dynamic resolution needs the complete outer result: the set of
		// URIs to contact comes from all of it (§2.2), so this node — and
		// only this node — waits for its dependencies to finish.
		outer, err := r.materializedOuter(s)
		if err != nil {
			return err
		}
		rel, err := ex.runDynamic(a, outs, outer, sp)
		if err != nil {
			return err
		}
		return emit(rel.Rows)
	}

	src, err := ex.atomSource(a)
	if err != nil {
		return err
	}
	if s.BindJoin {
		ex.mu.Lock()
		ex.stats.BindJoins++
		ex.mu.Unlock()
		outer, err := r.outerIter(s)
		if err != nil {
			return err
		}
		return ex.streamBindJoin(src, a, outs, outer, emit, sp)
	}
	res, err := ex.scanSource(src, a, sp)
	if err != nil {
		return err
	}
	rel, err := atomRelation(res, outs)
	if err != nil {
		return err
	}
	return emit(rel.Rows)
}

// outerIter builds the streaming outer input of a bind join: its
// single dependency's progressive cursor, or — for several — a hash
// join streaming the most-downstream dependency against the others as
// build sides (their cursors drain to completion at Open).
func (r *streamRun) outerIter(s PlanStep) (Iterator, error) {
	if len(s.Deps) == 0 {
		return nil, nil
	}
	stream := s.Deps[0]
	for _, d := range s.Deps[1:] {
		if d > stream {
			stream = d
		}
	}
	it := Iterator(newCursorIterator(r.bufs[stream].cursor(r.ex.ctx)))
	for _, d := range s.Deps {
		if d == stream {
			continue
		}
		it = r.ex.newJoin(it, newCursorIterator(r.bufs[d].cursor(r.ex.ctx)))
	}
	return it, nil
}

// materializedOuter assembles a node's complete outer relation — the
// blocking variant outerInput used, for consumers that cannot stream.
func (r *streamRun) materializedOuter(s PlanStep) (*Relation, error) {
	switch len(s.Deps) {
	case 0:
		return nil, nil
	case 1:
		return r.bufs[s.Deps[0]].waitRelation(r.ex.ctx)
	}
	rels := make([]*Relation, len(s.Deps))
	for j, d := range s.Deps {
		rel, err := r.bufs[d].waitRelation(r.ex.ctx)
		if err != nil {
			return nil, err
		}
		rels[j] = rel
	}
	return Materialize(r.ex.joinPipeline(joinOrder(rels)))
}

// nodeCols computes a step's output columns without running it — the
// streaming handoffs need their schema before any row exists. Must
// mirror exactly what bindJoin / atomRelation / runDynamic produce.
func (ex *executor) nodeCols(s PlanStep) []string {
	a := ex.q.Atoms[s.AtomIndex]
	outs := ex.plan.outs[s.AtomIndex]
	bindCols := func() []string {
		ins := make([]string, len(a.Sub.InVars))
		for i, iv := range a.Sub.InVars {
			ins[i] = strings.TrimPrefix(iv, "?")
		}
		cols := append([]string(nil), ins...)
		for _, o := range outs {
			if _, dup := indexOf(ins, o); !dup {
				cols = append(cols, o)
			}
		}
		return cols
	}
	scanCols := func() []string {
		seen := make(map[string]struct{}, len(outs))
		var cols []string
		for _, o := range outs {
			if _, dup := seen[o]; dup {
				continue
			}
			seen[o] = struct{}{}
			cols = append(cols, o)
		}
		return cols
	}
	switch {
	case s.Dynamic:
		inner := scanCols()
		if len(a.Sub.InVars) > 0 {
			inner = bindCols()
		}
		return append([]string{a.SourceVar}, inner...)
	case s.BindJoin:
		return bindCols()
	default:
		return scanCols()
	}
}

// streamBindJoin is the streaming sibling of bindJoin: it consumes the
// outer input incrementally, deduplicates parameter tuples on the fly,
// and dispatches probe jobs under the fan-out bound as soon as a chunk
// fills — or earlier, with whatever is pending, when the outer input
// would block. Probe results emit as they land; with the sink's
// bounded stream downstream, a blocked emit holds the job's fan-out
// slot, so backpressure reaches the probe dispatch itself.
func (ex *executor) streamBindJoin(src source.DataSource, a Atom, outs []string,
	outer Iterator, emit func([]value.Row) error, sp *obs.Span) error {

	if outer == nil {
		return fmt.Errorf("core: bind join for atom %s has no outer bindings", a.Designator())
	}
	if err := outer.Open(); err != nil {
		outer.Close()
		return err
	}
	defer outer.Close()
	spec, err := newBindSpec(a, outs, outer.Cols())
	if err != nil {
		return err
	}

	// Digest semi-join pruning, as in the materialized bindJoin: tuples
	// the digest excludes never enter a chunk (so fully-pruned chunks
	// never dispatch), and the Bloom filters ship with batched probes
	// for server-side pruning.
	pruner := ex.probePruner(src, a)
	if pruner != nil {
		a.Sub.Prune = pruner.Filters()
	}

	// chunk is the dispatch granularity: the adaptive/configured batch
	// size for batch-capable sources, a single tuple otherwise.
	chunk := 1
	var bp source.BatchProber
	if source.CanBatch(src) && ex.opts.ProbeBatch > 1 {
		chunk = ex.opts.ProbeBatch
		if ex.opts.Tuner != nil {
			chunk = ex.opts.Tuner.Size(src.URI(), chunk)
		}
		ex.recordBatchSize(src.URI(), chunk)
		bp = src.(source.BatchProber)
	}

	sem := make(chan struct{}, ex.opts.MaxFanout)
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var jobErr error
	var failed atomic.Bool
	setErr := func(err error) {
		errMu.Lock()
		if jobErr == nil {
			jobErr = err
		}
		errMu.Unlock()
		failed.Store(true)
	}

	probeOne := func(t paramTuple) error {
		psp := sp.StartChild("probe")
		psp.SetAttr("source", src.URI())
		start := time.Now()
		res, err := source.ExecuteWith(ex.ctx, src, a.Sub, t.params)
		psp.End()
		if err != nil {
			return err
		}
		probeSeconds.With(src.URI()).ObserveSince(start)
		ex.addStats(1, len(res.Rows))
		local, err := spec.filterRows(t, res)
		if err != nil {
			return err
		}
		return emit(local)
	}
	runChunk := func(ts []paramTuple, batched bool) error {
		if batched {
			rows, unsupported, err := ex.batchProbeRows(bp, a, ts, spec.filterRows, sp)
			if err != nil {
				return err
			}
			if !unsupported {
				return emit(rows)
			}
			// The source rejected this sub-query's shape: fall through to
			// per-tuple probes for the chunk.
		}
		for _, t := range ts {
			if err := ex.ctx.Err(); err != nil {
				return err
			}
			if err := probeOne(t); err != nil {
				return err
			}
		}
		return nil
	}
	// dispatch ships one chunk as a probe job under MaxFanout; false
	// tells the consume loop to stop feeding (failure or cancellation).
	dispatch := func(ts []paramTuple, batched bool) bool {
		if failed.Load() {
			return false
		}
		select {
		case sem <- struct{}{}:
		case <-ex.ctx.Done():
			setErr(ex.ctx.Err())
			return false
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			if failed.Load() {
				return
			}
			if err := runChunk(ts, batched); err != nil {
				setErr(err)
			}
		}()
		return true
	}

	seen := make(map[string]struct{})
	var pending []paramTuple
	total := 0  // distinct surviving tuples so far; a lone tuple ships per-tuple like the materialized path
	pruned := 0 // distinct tuples the digest excluded
	aborted := false
	flush := func(partial bool) bool {
		for len(pending) > 0 && (partial || len(pending) >= chunk) {
			n := min(chunk, len(pending))
			ts := pending[:n:n]
			pending = pending[n:]
			if !dispatch(ts, bp != nil && total > 1) {
				return false
			}
		}
		return true
	}
	for {
		if failed.Load() {
			aborted = true
			break
		}
		if len(pending) >= chunk {
			if !flush(false) {
				aborted = true
				break
			}
		} else if len(pending) > 0 && total > 1 && !iterBuffered(outer) {
			// The outer would block: fire what is pending now rather than
			// hold the first probes hostage to a full chunk.
			if !flush(true) {
				aborted = true
				break
			}
		}
		row, ok, err := outer.Next()
		if err != nil {
			wg.Wait()
			errMu.Lock()
			defer errMu.Unlock()
			if jobErr != nil {
				return jobErr
			}
			return err
		}
		if !ok {
			break
		}
		t, ok := spec.extract(row)
		if !ok {
			continue
		}
		if _, dup := seen[t.key]; dup {
			continue
		}
		seen[t.key] = struct{}{}
		if pruner != nil && !pruner.MayMatch(t.params) {
			pruned++
			continue
		}
		pending = append(pending, t)
		total++
	}
	if pruned > 0 {
		ex.mu.Lock()
		ex.stats.PrunedProbes += pruned
		ex.mu.Unlock()
	}
	if !aborted {
		flush(true)
	}
	wg.Wait()
	errMu.Lock()
	defer errMu.Unlock()
	return jobErr
}
