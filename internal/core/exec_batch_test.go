package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"tatooine/internal/relstore"
	"tatooine/internal/source"
	"tatooine/internal/value"
)

// batchProbeSource is a scripted bind-join target implementing
// source.BatchProber, instrumented to count per-tuple and batched
// dispatches.
type batchProbeSource struct {
	uri string

	mu          sync.Mutex
	execCalls   int
	batchCalls  int
	batchSizes  []int
	failBatchAt int  // 1-based batch call that errors (0 = never)
	unsupported bool // ExecuteBatch always reports ErrBatchUnsupported
}

func (s *batchProbeSource) URI() string                           { return s.uri }
func (s *batchProbeSource) Model() source.Model                   { return source.RelationalModel }
func (s *batchProbeSource) Languages() []source.Language          { return []source.Language{source.LangSQL} }
func (s *batchProbeSource) EstimateCost(source.SubQuery, int) int { return 1 }

// rowsFor scripts the probe result per outer binding. "c" returns one
// row whose echo column mismatches the binding, which the executor's
// outCheck equality filter must drop; "dup" returns duplicate rows.
func (s *batchProbeSource) rowsFor(p value.Value) []value.Row {
	switch p.Str() {
	case "a":
		return []value.Row{
			{value.NewString("a"), value.NewInt(1)},
			{value.NewString("a"), value.NewInt(2)},
		}
	case "b":
		return []value.Row{{value.NewString("b"), value.NewInt(3)}}
	case "c":
		return []value.Row{
			{value.NewString("MISMATCH"), value.NewInt(99)},
			{value.NewString("c"), value.NewInt(4)},
		}
	case "dup":
		return []value.Row{
			{value.NewString("dup"), value.NewInt(7)},
			{value.NewString("dup"), value.NewInt(7)},
		}
	default:
		return nil
	}
}

func (s *batchProbeSource) Execute(q source.SubQuery, params []value.Value) (*source.Result, error) {
	s.mu.Lock()
	s.execCalls++
	s.mu.Unlock()
	return &source.Result{Cols: []string{"k", "v"}, Rows: s.rowsFor(params[0])}, nil
}

func (s *batchProbeSource) ExecuteBatch(q source.SubQuery, paramSets []value.Row) ([]*source.Result, error) {
	s.mu.Lock()
	s.batchCalls++
	call := s.batchCalls
	s.batchSizes = append(s.batchSizes, len(paramSets))
	s.mu.Unlock()
	if s.unsupported {
		return nil, source.ErrBatchUnsupported
	}
	if s.failBatchAt > 0 && call == s.failBatchAt {
		return nil, fmt.Errorf("batch %d exploded", call)
	}
	out := make([]*source.Result, len(paramSets))
	for i, ps := range paramSets {
		out[i] = &source.Result{Cols: []string{"k", "v"}, Rows: s.rowsFor(ps[0])}
	}
	return out, nil
}

// batchFixture builds an instance whose seed atom yields duplicate and
// NULL bindings (5 distinct non-null tuples) and whose second atom bind
// joins against the scripted probe source.
func batchFixture(t *testing.T) (*Instance, *batchProbeSource) {
	t.Helper()
	in := NewInstance(nil)
	db := relstore.NewDatabase("seed")
	for _, q := range []string{
		"CREATE TABLE seed (k TEXT)",
		"INSERT INTO seed (k) VALUES ('a'), ('b'), ('a'), ('c'), ('dup'), ('missing')",
		"INSERT INTO seed VALUES (NULL)",
	} {
		if _, err := db.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.AddSource(source.NewRelSource("sql://seed", db)); err != nil {
		t.Fatal(err)
	}
	probe := &batchProbeSource{uri: "sql://probe"}
	if err := in.AddSource(probe); err != nil {
		t.Fatal(err)
	}
	return in, probe
}

const batchQuery = `
QUERY q(?x, ?y)
FROM <sql://seed> OUT(?x) { SELECT k FROM seed }
FROM <sql://probe> IN(?x) OUT(?x, ?y) { SELECT k, v FROM t WHERE k = ? }
`

func mustParse(t *testing.T, text string) *CMQ {
	t.Helper()
	q, _, err := ParseCMQ(text)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func sortedRows(res *QueryResult) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = r.Key()
	}
	sort.Strings(out)
	return out
}

// TestBatchedBindJoinMatchesPerProbe is the acceptance check: batched
// and per-probe bind joins return byte-identical relations (duplicate
// probe rows kept, NULL bindings skipped, outCheck mismatches dropped),
// and the batched run reports ⌈N/ProbeBatch⌉ probe sub-queries instead
// of N.
func TestBatchedBindJoinMatchesPerProbe(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		in, probe := batchFixture(t)
		q := mustParse(t, batchQuery)

		perProbe, err := in.ExecuteOpts(q, ExecOptions{Parallel: parallel, ProbeBatch: 1})
		if err != nil {
			t.Fatal(err)
		}
		batched, err := in.ExecuteOpts(q, ExecOptions{Parallel: parallel, ProbeBatch: 2})
		if err != nil {
			t.Fatal(err)
		}

		if got, want := sortedRows(batched), sortedRows(perProbe); !equalStrings(got, want) {
			t.Errorf("parallel=%v: batched rows diverge:\n got %v\nwant %v", parallel, got, want)
		}
		if len(perProbe.Rows) == 0 {
			t.Fatalf("fixture produced no rows")
		}
		// 5 distinct non-null bindings (a, b, c, dup, missing): per-probe
		// ships 5 probe sub-queries, batch size 2 ships ⌈5/2⌉ = 3.
		if perProbe.Stats.SubQueries != 1+5 || perProbe.Stats.BatchProbes != 0 {
			t.Errorf("parallel=%v: per-probe stats: %+v", parallel, perProbe.Stats)
		}
		if batched.Stats.SubQueries != 1+3 || batched.Stats.BatchProbes != 3 {
			t.Errorf("parallel=%v: batched stats: %+v", parallel, batched.Stats)
		}
		if probe.execCalls != 5 {
			t.Errorf("parallel=%v: probe Execute calls = %d, want 5 (per-probe run only)", parallel, probe.execCalls)
		}
		if probe.batchCalls != 3 {
			t.Errorf("parallel=%v: probe ExecuteBatch calls = %d, want 3", parallel, probe.batchCalls)
		}
	}
}

// TestBatchedBindJoinDefaultBatchSize checks ProbeBatch=0 resolves to
// DefaultProbeBatch: 5 tuples fit one batch → exactly one probe
// sub-query beyond the seed scan.
func TestBatchedBindJoinDefaultBatchSize(t *testing.T) {
	in, probe := batchFixture(t)
	res, err := in.ExecuteOpts(mustParse(t, batchQuery), ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SubQueries != 2 || res.Stats.BatchProbes != 1 {
		t.Errorf("default batch stats: %+v", res.Stats)
	}
	if probe.batchSizes[0] != 5 {
		t.Errorf("batch size = %d, want 5", probe.batchSizes[0])
	}
}

// TestBatchUnsupportedFallsBackPerTuple checks a source whose
// ExecuteBatch rejects the sub-query degrades to per-tuple probes with
// identical results and no BatchProbes counted.
func TestBatchUnsupportedFallsBackPerTuple(t *testing.T) {
	in, probe := batchFixture(t)
	probe.unsupported = true
	q := mustParse(t, batchQuery)
	res, err := in.ExecuteOpts(q, ExecOptions{ProbeBatch: 2})
	if err != nil {
		t.Fatal(err)
	}

	inRef, _ := batchFixture(t)
	ref, err := inRef.ExecuteOpts(mustParse(t, batchQuery), ExecOptions{ProbeBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sortedRows(res), sortedRows(ref); !equalStrings(got, want) {
		t.Errorf("fallback rows diverge:\n got %v\nwant %v", got, want)
	}
	if res.Stats.BatchProbes != 0 {
		t.Errorf("BatchProbes = %d after unsupported batches", res.Stats.BatchProbes)
	}
	if res.Stats.SubQueries != 1+5 {
		t.Errorf("SubQueries = %d, want 6 (per-tuple fallback)", res.Stats.SubQueries)
	}
	if probe.execCalls != 5 || probe.batchCalls != 3 {
		t.Errorf("calls: exec=%d batch=%d, want 5/3", probe.execCalls, probe.batchCalls)
	}
}

// TestPartialBatchFailureAborts checks a real error from one batch of a
// multi-batch bind join aborts the query.
func TestPartialBatchFailureAborts(t *testing.T) {
	in, probe := batchFixture(t)
	probe.failBatchAt = 2
	_, err := in.ExecuteOpts(mustParse(t, batchQuery), ExecOptions{ProbeBatch: 2})
	if err == nil || !strings.Contains(err.Error(), "batch 2 exploded") {
		t.Errorf("partial batch failure: err = %v", err)
	}
}

// TestStreamedFinishMatchesMaterialized checks the final wave's join
// pipeline streaming straight into finish() returns exactly what the
// materializing path returns, across projection, distinct, order and
// limit.
func TestStreamedFinishMatchesMaterialized(t *testing.T) {
	build := func() *Instance {
		in := NewInstance(nil)
		db := relstore.NewDatabase("d")
		for _, q := range []string{
			"CREATE TABLE t1 (k TEXT, v INT)",
			"INSERT INTO t1 VALUES ('a', 1), ('b', 2), ('c', 3), ('a', 1)",
			"CREATE TABLE t2 (k TEXT, w INT)",
			"INSERT INTO t2 VALUES ('a', 10), ('b', 20), ('b', 21), ('z', 99)",
		} {
			if _, err := db.Exec(q); err != nil {
				t.Fatal(err)
			}
		}
		if err := in.AddSource(source.NewRelSource("sql://d", db)); err != nil {
			t.Fatal(err)
		}
		return in
	}
	for _, text := range []string{
		// Plain join + projection.
		`QUERY q(?x, ?w)
FROM <sql://d> OUT(?x, ?v) { SELECT k, v FROM t1 }
FROM <sql://d> OUT(?x, ?w) { SELECT k, w FROM t2 }`,
		// Distinct + order + limit over the streamed pipeline.
		`QUERY q(?x, ?w)
FROM <sql://d> OUT(?x, ?v) { SELECT k, v FROM t1 }
FROM <sql://d> OUT(?x, ?w) { SELECT k, w FROM t2 }
DISTINCT ORDER BY ?w DESC LIMIT 3`,
	} {
		q := mustParse(t, text)
		streamed, err := build().ExecuteOpts(q, ExecOptions{})
		if err != nil {
			t.Fatal(err)
		}
		materialized, err := build().ExecuteOpts(q, ExecOptions{MaterializeFinal: true})
		if err != nil {
			t.Fatal(err)
		}
		if !equalStrings(streamed.Cols, materialized.Cols) {
			t.Fatalf("cols diverge: %v vs %v", streamed.Cols, materialized.Cols)
		}
		if len(streamed.Rows) != len(materialized.Rows) {
			t.Fatalf("row counts diverge: %d vs %d", len(streamed.Rows), len(materialized.Rows))
		}
		for i := range streamed.Rows {
			if streamed.Rows[i].Key() != materialized.Rows[i].Key() {
				t.Errorf("row %d diverges: %v vs %v", i, streamed.Rows[i], materialized.Rows[i])
			}
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
