package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tatooine/internal/relstore"
	"tatooine/internal/source"
	"tatooine/internal/value"
)

// countingSource is a context-aware probe source that counts every
// sub-query shipped to it and injects a small latency, so tests can
// observe how many probes a LIMIT-terminated execution actually paid
// for.
type countingSource struct {
	uri   string
	delay time.Duration
	calls atomic.Int64

	mu       sync.Mutex
	inFlight int
}

func (s *countingSource) URI() string                           { return s.uri }
func (s *countingSource) Model() source.Model                   { return source.RelationalModel }
func (s *countingSource) Languages() []source.Language          { return []source.Language{source.LangSQL} }
func (s *countingSource) EstimateCost(source.SubQuery, int) int { return 1 }

func (s *countingSource) Execute(q source.SubQuery, params []value.Value) (*source.Result, error) {
	return s.ExecuteContext(context.Background(), q, params)
}

func (s *countingSource) ExecuteContext(ctx context.Context, q source.SubQuery, params []value.Value) (*source.Result, error) {
	s.calls.Add(1)
	s.mu.Lock()
	s.inFlight++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.inFlight--
		s.mu.Unlock()
	}()
	select {
	case <-time.After(s.delay):
		return &source.Result{Cols: []string{"k", "v"}, Rows: []value.Row{{params[0], value.NewString("v")}}}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// streamFixture builds an instance with a seeded table of n keys and a
// latency-injected counting probe source — a bind join over it ships
// one probe per distinct key.
func streamFixture(t *testing.T, n int, delay time.Duration) (*Instance, *countingSource) {
	t.Helper()
	in := NewInstance(nil)
	db := relstore.NewDatabase("seed")
	if _, err := db.Exec("CREATE TABLE seed (k TEXT)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := db.Exec(fmt.Sprintf("INSERT INTO seed VALUES ('k%02d')", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.AddSource(source.NewRelSource("sql://seed", db)); err != nil {
		t.Fatal(err)
	}
	probe := &countingSource{uri: "sql://probe", delay: delay}
	if err := in.AddSource(probe); err != nil {
		t.Fatal(err)
	}
	return in, probe
}

const streamQuery = `
QUERY q(?k, ?v)
FROM <sql://seed> OUT(?k) { SELECT k FROM seed }
FROM <sql://probe> IN(?k) OUT(?k, ?v) { SELECT k, v FROM t WHERE k = ? }
`

// TestLimitCancelsUpstreamProbes pins the streaming executor's early
// termination: a LIMIT satisfied by the first rows must cancel the
// remaining bind-join probes upstream, so a tiny LIMIT over a
// federated join pays a strictly smaller probe bill than the full
// drain, instead of executing everything and discarding rows at the
// end.
func TestLimitCancelsUpstreamProbes(t *testing.T) {
	const keys = 32
	run := func(suffix string) int64 {
		in, probe := streamFixture(t, keys, 2*time.Millisecond)
		res, err := in.ExecuteOpts(mustParse(t, streamQuery+suffix),
			ExecOptions{Parallel: true, ProbeBatch: 1, MaxFanout: 1})
		if err != nil {
			t.Fatalf("%q: %v", suffix, err)
		}
		if suffix == "" && len(res.Rows) != keys {
			t.Fatalf("full drain returned %d rows, want %d", len(res.Rows), keys)
		}
		return probe.calls.Load()
	}
	full := run("")
	if full != keys {
		t.Fatalf("full drain shipped %d probes, want %d", full, keys)
	}
	limited := run("LIMIT 1")
	if limited >= full {
		t.Fatalf("LIMIT 1 shipped %d probes, want strictly fewer than the unlimited %d", limited, full)
	}
}

// TestStreamAbandonmentLeaksNothing pins the mid-stream Close
// contract: abandoning a StreamingResult after one batch cancels the
// in-flight probes and unwinds every executor goroutine.
func TestStreamAbandonmentLeaksNothing(t *testing.T) {
	before := runtime.NumGoroutine()
	in, probe := streamFixture(t, 32, 5*time.Millisecond)
	sr, err := in.ExecuteStream(context.Background(), mustParse(t, streamQuery),
		ExecOptions{Parallel: true, ProbeBatch: 1, MaxFanout: 2})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := sr.NextBatch()
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) == 0 {
		t.Fatal("expected at least one row before abandoning the stream")
	}
	if err := sr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sr.Close(); err != nil { // idempotent
		t.Fatalf("second Close: %v", err)
	}
	if batch, err := sr.NextBatch(); err != nil || len(batch) != 0 {
		t.Fatalf("NextBatch after Close = %d rows, %v; want empty", len(batch), err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		probe.mu.Lock()
		inFlight := probe.inFlight
		probe.mu.Unlock()
		if inFlight == 0 && runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("leak after abandonment: %d probes in flight, %d goroutines (baseline %d)",
				inFlight, runtime.NumGoroutine(), before)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if calls := probe.calls.Load(); calls >= 32 {
		t.Fatalf("abandoned stream still shipped all %d probes", calls)
	}
}

// TestExecuteStreamIneligibleReplays: stream-ineligible options (here:
// sequential execution) still serve the streaming API, replaying the
// materialized result in batches with identical rows and stats.
func TestExecuteStreamIneligibleReplays(t *testing.T) {
	in, _ := streamFixture(t, 5, 0)
	q := mustParse(t, streamQuery)
	ref, err := in.ExecuteOpts(q, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sr, err := in.ExecuteStream(context.Background(), q, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	if !equalStrings(sr.Cols, ref.Cols) {
		t.Fatalf("cols %v, want %v", sr.Cols, ref.Cols)
	}
	var rows []value.Row
	for {
		batch, err := sr.NextBatch()
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) == 0 {
			break
		}
		rows = append(rows, batch...)
	}
	if len(rows) != len(ref.Rows) {
		t.Fatalf("replayed %d rows, want %d", len(rows), len(ref.Rows))
	}
	for i := range rows {
		if rows[i].Key() != ref.Rows[i].Key() {
			t.Fatalf("row %d: %v, want %v", i, rows[i], ref.Rows[i])
		}
	}
	if got, want := sr.Stats().SubQueries, ref.Stats.SubQueries; got != want {
		t.Fatalf("stats.SubQueries = %d, want %d", got, want)
	}
}

// TestStreamedLimitPushdownMatchesMaterialized: the limit pushed below
// the projection must not change results relative to the materialized
// path applying it at the top.
func TestStreamedLimitPushdownMatchesMaterialized(t *testing.T) {
	for _, limit := range []int{1, 3, 5, 32, 100} {
		q := mustParse(t, fmt.Sprintf("%sLIMIT %d", streamQuery, limit))
		in, _ := streamFixture(t, 8, 0)
		ref, err := in.ExecuteOpts(q, ExecOptions{Parallel: true, Materialized: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := in.ExecuteOpts(q, ExecOptions{Parallel: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != len(ref.Rows) {
			t.Fatalf("LIMIT %d: streamed %d rows, materialized %d", limit, len(res.Rows), len(ref.Rows))
		}
		if got, want := sortedRows(res), sortedRows(ref); limit >= 8 && !equalStrings(got, want) {
			t.Fatalf("LIMIT %d: row multiset diverges\n got %v\nwant %v", limit, got, want)
		}
	}
}
