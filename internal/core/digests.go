package core

import (
	"context"
	"sync"

	"tatooine/internal/digest"
	"tatooine/internal/obs"
	"tatooine/internal/source"
)

// digestCatalog caches per-source digests for the planner and the
// bind-join pruner. Entries are keyed by source URI and valid for one
// mutation epoch: the first digest request after a mutation clears the
// catalog, so planning can never rank or prune against pre-mutation
// statistics. A nil entry is a negative cache — the source is
// undigestable (or its digest fetch failed) this epoch, and re-asking
// would only re-pay the scan or the round trip.
//
// The catalog sits above the per-source memo in source.Cached: for
// interposed registries the inner build/fetch is additionally memoized
// under the probe cache's own invalidation generation, so the two
// layers invalidate together (both are driven by the epoch).
type digestCatalog struct {
	mu      sync.Mutex
	epoch   uint64
	entries map[string]*digest.Digest
	fetches int64
	hits    int64
}

// DigestStats reports the digest catalog's activity: how many digests
// were built or fetched, and how many planner/pruner lookups were
// answered from the catalog.
type DigestStats struct {
	Fetches int64 `json:"digestFetches"`
	Hits    int64 `json:"digestHits"`
}

// DigestStats returns the instance's digest catalog counters.
func (in *Instance) DigestStats() DigestStats {
	in.dig.mu.Lock()
	defer in.dig.mu.Unlock()
	return DigestStats{Fetches: in.dig.fetches, Hits: in.dig.hits}
}

// sourceDigest returns the source's digest, building or fetching it on
// first use per epoch. It fails open: an undigestable source or a
// failed fetch yields nil (planning keeps the source estimate, pruning
// stays off) and is negative-cached for the epoch. Fetches open a
// "digest" span under ctx's trace so the (potentially remote) build
// shows up in the query's span tree; catalog hits cost nothing.
func (in *Instance) sourceDigest(ctx context.Context, s source.DataSource) *digest.Digest {
	if s == nil {
		return nil
	}
	epoch := in.Epoch()
	c := &in.dig
	c.mu.Lock()
	if c.entries == nil || c.epoch != epoch {
		c.entries = make(map[string]*digest.Digest)
		c.epoch = epoch
	}
	if d, ok := c.entries[s.URI()]; ok {
		c.hits++
		c.mu.Unlock()
		digestHitTotal.Inc()
		return d
	}
	c.mu.Unlock()

	// Build/fetch outside the lock: a slow remote /digest round trip
	// must not serialize unrelated sources' lookups.
	sp := obs.SpanFromContext(ctx).StartChild("digest")
	sp.SetAttr("source", s.URI())
	d, err := digest.ForSource(s, digest.DefaultBudget())
	sp.End()
	if err != nil {
		d = nil
	}
	digestFetchTotal.Inc()

	c.mu.Lock()
	defer c.mu.Unlock()
	c.fetches++
	if c.epoch != epoch {
		// A mutation landed mid-build: the digest may describe either
		// side of it, so don't cache — the next lookup rebuilds fresh.
		return d
	}
	if prev, ok := c.entries[s.URI()]; ok {
		return prev // concurrent fill: first one in wins
	}
	c.entries[s.URI()] = d
	return d
}

// atomPruner builds the semi-join pruning matcher for a bind-join atom
// against src's digest. nil when pruning cannot apply: graph atoms
// (G's digest would be rebuilt every epoch, defeating the incremental
// saturation), atoms without parameters, sources without a digest, or
// sub-query shapes the digest cannot prune safely.
func (in *Instance) atomPruner(ctx context.Context, src source.DataSource, a Atom, extra map[string]string) *digest.ParamMatcher {
	if a.Kind == GraphAtom || len(a.Sub.InVars) == 0 {
		return nil
	}
	d := in.sourceDigest(ctx, src)
	if d == nil {
		return nil
	}
	return digest.NewParamMatcher(d, a.Sub, in.prefixesFor(extra))
}

// probePruner is the executor's view of atomPruner, honouring the
// NoDigestPlanning ablation switch.
func (ex *executor) probePruner(src source.DataSource, a Atom) *digest.ParamMatcher {
	if ex.opts.NoDigestPlanning {
		return nil
	}
	return ex.in.atomPruner(ex.ctx, src, a, ex.q.Prefixes)
}

// refineAtomRows tightens an atom's planner row estimate with the
// source's digest statistics (exact counts, distinct counts, numeric
// histograms). The refined estimate replaces an unknown base and can
// only lower a known one — digests summarize the same data the source
// estimated from, so agreement means the smaller bound is the safer
// ranking signal.
func (in *Instance) refineAtomRows(ctx context.Context, a Atom, extra map[string]string, base int) int {
	if a.SourceVar != "" || a.Kind == GraphAtom {
		return base
	}
	s, err := in.sources.Resolve(a.SourceURI)
	if err != nil {
		return base
	}
	d := in.sourceDigest(ctx, s)
	if d == nil {
		return base
	}
	refined, ok := digest.RefineEstimate(d, a.Sub, in.prefixesFor(extra))
	if !ok {
		return base
	}
	if base >= 0 && refined > base {
		return base
	}
	return refined
}
