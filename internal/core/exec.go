package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tatooine/internal/obs"
	"tatooine/internal/source"
	"tatooine/internal/value"
)

// ExecOptions tune query execution.
type ExecOptions struct {
	// Parallel overlaps independent DAG nodes (and the per-binding
	// probes of a bind join) concurrently.
	Parallel bool
	// MaxFanout bounds bind-join concurrency. Zero or negative derives
	// the bound from the host via DefaultMaxFanout.
	MaxFanout int
	// ProbeBatch is the bind-join batch size: when the source supports
	// batched probes (source.BatchProber) the distinct outer tuples are
	// chunked into batches of this size and each batch ships as one
	// native sub-query. 0 uses DefaultProbeBatch; 1 or negative forces
	// per-tuple probes (the pre-batching behavior). With a Tuner set,
	// ProbeBatch only seeds the per-source adaptive size.
	ProbeBatch int
	// Tuner, when non-nil, adapts the effective per-source batch size
	// from observed batch round-trip latency (see BatchTuner). Share
	// one tuner across queries so sizes converge over traffic.
	Tuner *BatchTuner
	// NaiveOrder disables selectivity-based ordering (ablation E6):
	// atoms run one per wave in declaration order.
	NaiveOrder bool
	// NoDigestPlanning disables digest-driven planning and semi-join
	// pruning ("tatooine serve -digest-planning=false", ablation): atom
	// row estimates fall back to the sources' own guesses, bind joins
	// probe every distinct outer binding, and no Bloom filters ship with
	// batched probes. Results are identical either way.
	NoDigestPlanning bool
	// WaveBarrier restores the pre-DAG scheduler for ablation: steps
	// are grouped by dependency depth and every step of depth d+1 waits
	// for the *slowest* step of depth d, even when its own inputs were
	// ready long before.
	WaveBarrier bool
	// MaterializeFinal materializes the root join pipeline into a
	// relation before the finishing projection instead of streaming it
	// straight into finish() (ablation/testing knob; results are
	// identical either way).
	MaterializeFinal bool
	// JoinMemBudget bounds each residual hash join's build-side memory,
	// in bytes ("tatooine serve -join-mem-budget"). A build side that
	// outgrows it spills to a Grace-style partitioned on-disk join —
	// same row multiset, bounded memory. Zero or negative disables
	// spilling (builds stay fully in memory).
	JoinMemBudget int64
	// Materialized disables tuple-level streaming ("tatooine serve
	// -materialized", ablation): every DAG node materializes its full
	// relation before dependents start, the pre-streaming behavior.
	// Row multisets are identical either way; only time-to-first-row
	// and early-termination behavior differ.
	Materialized bool
}

// DefaultProbeBatch is the bind-join batch size when ExecOptions leaves
// ProbeBatch at zero.
const DefaultProbeBatch = 64

// DefaultMaxFanout derives the bind-join fan-out bound from the host:
// probes are I/O-bound (they mostly wait on remote sources), so twice
// GOMAXPROCS, clamped to [8, 64] so a one-core container still
// overlaps round trips and a large host does not stampede a remote.
func DefaultMaxFanout() int {
	n := 2 * runtime.GOMAXPROCS(0)
	if n < 8 {
		n = 8
	}
	if n > 64 {
		n = 64
	}
	return n
}

// NodeStats reports what one DAG node actually did, next to what the
// planner predicted, so estimate drift is visible per query.
type NodeStats struct {
	Atom    int `json:"atom"`    // index in the CMQ body
	EstRows int `json:"estRows"` // planner cardinality estimate (-1 unknown)
	EstCost int `json:"estCost"` // planner effort estimate (-1 unknown)
	Rows    int `json:"rows"`    // rows the node actually produced
}

// ExecStats reports what an execution did.
type ExecStats struct {
	SubQueries  int // native sub-query invocations (a batched probe counts once)
	RowsFetched int // rows returned by sources before residual joins
	Waves       int // DAG depth (longest dependency chain)
	BindJoins   int // atoms executed as bind joins
	BatchProbes int // batched bind-join dispatches (each also counts one SubQuery)
	Dynamic     int // distinct dynamically-resolved sources contacted
	// PrunedProbes counts distinct bind-join parameter tuples skipped
	// because the target's digest proved they cannot match — probes that
	// paid no round trip at all (digest semi-join pruning).
	PrunedProbes int
	// SpilledJoins counts residual hash joins whose build side exceeded
	// ExecOptions.JoinMemBudget and ran as partitioned on-disk joins;
	// SpilledBytes is the total bytes they wrote to spill files.
	SpilledJoins int
	SpilledBytes int64

	// Nodes lists per-DAG-node estimated vs actual rows, in schedule
	// order.
	Nodes []NodeStats `json:"Nodes,omitempty"`
	// BatchSizes records the effective bind-join batch size used per
	// source URI (adaptive when a Tuner is set, ProbeBatch otherwise).
	BatchSizes map[string]int `json:"BatchSizes,omitempty"`
}

// QueryResult is the outcome of a CMQ execution.
type QueryResult struct {
	Cols  []string
	Rows  []value.Row
	Stats ExecStats
	Plan  *Plan
	// Trace is the query's span tree — the "execute" subtree covering
	// planning, digest fetches, every DAG node and every probe chunk.
	// When the caller's context already carried a span (a traced server
	// request) the subtree is part of that larger trace and shares its
	// trace ID.
	Trace *obs.SpanData
}

// Execute runs a CMQ over the instance with default options
// (parallelism on).
func (in *Instance) Execute(q *CMQ) (*QueryResult, error) {
	return in.ExecuteOpts(q, ExecOptions{Parallel: true})
}

// ExecuteOpts runs a CMQ with explicit options and no caller context.
func (in *Instance) ExecuteOpts(q *CMQ, opts ExecOptions) (*QueryResult, error) {
	return in.ExecuteContext(context.Background(), q, opts)
}

// ExecuteContext runs a CMQ with explicit options under ctx. The
// context is threaded through the whole operator DAG into every probe:
// cancelling it (a disconnected HTTP client, a deadline) stops
// scheduled nodes from launching, refuses further probe fan-out, and
// aborts in-flight federation round trips mid-request.
func (in *Instance) ExecuteContext(ctx context.Context, q *CMQ, opts ExecOptions) (*QueryResult, error) {
	ex, err := in.newExecutor(ctx, q, opts)
	if err != nil {
		return nil, err
	}
	if streamEligible(ex.opts) {
		sr, err := ex.runDAGStream()
		if err != nil {
			return nil, err
		}
		return sr.drain()
	}
	return ex.runMaterialized()
}

// newExecutor normalizes the options, plans the query and wires an
// executor — the shared front half of ExecuteContext and ExecuteStream.
// The executor's "execute" span joins the context's trace when one is
// there (a traced server request) and roots a fresh trace otherwise, so
// every execution produces a span tree.
func (in *Instance) newExecutor(ctx context.Context, q *CMQ, opts ExecOptions) (*executor, error) {
	if opts.MaxFanout <= 0 {
		opts.MaxFanout = DefaultMaxFanout()
	}
	if opts.ProbeBatch == 0 {
		opts.ProbeBatch = DefaultProbeBatch
	}
	ctx, span, _ := obs.EnsureSpan(ctx, "execute")
	pctx, psp := obs.StartSpan(ctx, "plan")
	plan, err := in.planQuery(pctx, q, opts)
	psp.End()
	if err != nil {
		span.End()
		return nil, err
	}
	psp.SetAttr("nodes", strconv.Itoa(len(plan.Steps)))
	return &executor{in: in, q: q, plan: plan, opts: opts, ctx: ctx, span: span,
		nodeRows: make([]int, len(plan.Steps))}, nil
}

// runMaterialized is the pre-streaming execution path (and the
// sequential / wave-barrier / ExecOptions.Materialized one): every DAG
// node materializes its relation before dependents start, and the root
// join drains into finish before anything is returned.
func (ex *executor) runMaterialized() (*QueryResult, error) {
	defer ex.span.End()
	var it Iterator
	var err error
	if ex.opts.WaveBarrier {
		it, err = ex.runWaves()
	} else {
		it, err = ex.runDAG()
	}
	if err != nil {
		return nil, err
	}
	out, err := ex.finish(it)
	if err != nil {
		return nil, err
	}
	ex.span.SetAttr("rows", strconv.Itoa(len(out.Rows)))
	ex.span.End()
	return &QueryResult{Cols: out.Cols, Rows: out.Rows, Stats: ex.finalStats(),
		Plan: ex.plan, Trace: ex.span.Data()}, nil
}

// finalStats assembles the per-node estimate-vs-actual report into the
// accumulated counters. Call once, after every node finished.
func (ex *executor) finalStats() ExecStats {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	ex.stats.Waves = ex.plan.NumWaves()
	ex.stats.Nodes = nil
	for i, s := range ex.plan.Steps {
		ex.stats.Nodes = append(ex.stats.Nodes, NodeStats{
			Atom: s.AtomIndex, EstRows: s.EstRows, EstCost: s.EstCost, Rows: ex.nodeRows[i],
		})
	}
	return ex.stats
}

type executor struct {
	in   *Instance
	q    *CMQ
	plan *Plan
	opts ExecOptions
	// ctx is the caller's context; runDAG narrows it to a cancellable
	// child so one node's failure stops its siblings' probes.
	ctx context.Context

	// span is the execution's root span ("execute"): node spans, probe
	// chunks and digest fetches hang off it. Never nil.
	span *obs.Span

	stats    ExecStats
	nodeRows []int      // actual rows per plan step (indexed by step position)
	mu       sync.Mutex // guards stats
}

func (ex *executor) addStats(subQueries, rows int) {
	ex.mu.Lock()
	ex.stats.SubQueries += subQueries
	ex.stats.RowsFetched += rows
	ex.mu.Unlock()
}

func (ex *executor) recordBatchSize(uri string, size int) {
	ex.mu.Lock()
	if ex.stats.BatchSizes == nil {
		ex.stats.BatchSizes = make(map[string]int)
	}
	ex.stats.BatchSizes[uri] = size
	ex.mu.Unlock()
	probeBatchSize.With(uri).Set(int64(size))
}

// errDepFailed marks a node skipped because one of its dependencies
// already failed; the dependency's own error is what surfaces.
var errDepFailed = errors.New("core: dependency failed")

// runDAG executes the plan as a pipelined operator DAG: every node
// waits only for its OWN dependencies, so independent subtrees overlap
// with downstream bind joins instead of idling at wave boundaries. A
// node's outer input is the natural join of its dependencies' results
// — a superset of the full intermediate result projected onto the
// variables it needs, so the final join yields exactly the
// wave-barrier answer (extra probe rows cannot survive it). The root
// of the DAG — the join of all node results — is returned as a
// streaming iterator pipeline for finish() to consume without
// materializing.
func (ex *executor) runDAG() (Iterator, error) {
	steps := ex.plan.Steps
	results := make([]*Relation, len(steps))
	nodeErr := make([]error, len(steps))
	done := make([]chan struct{}, len(steps))
	for i := range done {
		done[i] = make(chan struct{})
	}

	ctx, cancel := context.WithCancel(ex.ctx)
	defer cancel()
	ex.ctx = ctx // probes observe sibling failures and caller cancellation alike

	var failOnce sync.Once
	var firstErr error
	fail := func(err error) {
		failOnce.Do(func() { firstErr = err })
		cancel()
	}

	runNode := func(i int) {
		defer close(done[i])
		for _, d := range steps[i].Deps {
			select {
			case <-done[d]:
				if nodeErr[d] != nil {
					nodeErr[i] = errDepFailed
					return
				}
			case <-ctx.Done():
				nodeErr[i] = ctx.Err()
				fail(ctx.Err())
				return
			}
		}
		outer, err := ex.outerInput(steps[i], results)
		if err == nil {
			results[i], err = ex.runStep(steps[i], outer)
		}
		if err != nil {
			nodeErr[i] = err
			if !errors.Is(err, errDepFailed) {
				fail(err)
			}
			return
		}
		ex.nodeRows[i] = len(results[i].Rows)
	}

	if ex.opts.Parallel && len(steps) > 1 {
		var wg sync.WaitGroup
		for i := range steps {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				runNode(i)
			}(i)
		}
		wg.Wait()
	} else {
		// Steps are topologically ordered, so sequential execution in
		// schedule order satisfies every dependency.
		for i := range steps {
			runNode(i)
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	for _, err := range nodeErr { // belt and braces: no failure escapes
		if err != nil {
			return nil, err
		}
	}
	return ex.rootPipeline(results)
}

// outerInput assembles the outer relation a bind-join or dynamic node
// probes from: nothing for scans, the single dependency's result
// as-is, or the natural join of several dependencies' results.
func (ex *executor) outerInput(s PlanStep, results []*Relation) (*Relation, error) {
	switch len(s.Deps) {
	case 0:
		return nil, nil
	case 1:
		return results[s.Deps[0]], nil
	}
	rels := make([]*Relation, len(s.Deps))
	for i, d := range s.Deps {
		rels[i] = results[d]
	}
	it := ex.joinPipeline(joinOrder(rels))
	return Materialize(it)
}

// rootPipeline joins every node's result into the final body relation,
// returned as a streaming iterator (materialized first only under the
// MaterializeFinal ablation knob).
func (ex *executor) rootPipeline(results []*Relation) (Iterator, error) {
	if len(results) == 0 {
		return NewScan(&Relation{}), nil
	}
	it := ex.joinPipeline(joinOrder(results))
	if ex.opts.MaterializeFinal {
		rel, err := Materialize(it)
		if err != nil {
			return nil, err
		}
		return NewScan(rel), nil
	}
	return it, nil
}

// joinOrder orders relations for a left-deep join chain: smallest
// first, then greedily the smallest relation sharing a column with
// what is already joined — disconnected relations (cross products)
// only when nothing connected remains.
func joinOrder(rels []*Relation) []*Relation {
	if len(rels) <= 1 {
		return rels
	}
	rest := append([]*Relation(nil), rels...)
	sort.SliceStable(rest, func(i, j int) bool { return len(rest[i].Rows) < len(rest[j].Rows) })

	ordered := []*Relation{rest[0]}
	joined := make(map[string]struct{})
	add := func(r *Relation) {
		ordered = append(ordered, r)
		for _, c := range r.Cols {
			joined[c] = struct{}{}
		}
	}
	for _, c := range rest[0].Cols {
		joined[c] = struct{}{}
	}
	rest = rest[1:]
	for len(rest) > 0 {
		pick := -1
		for i, r := range rest {
			for _, c := range r.Cols {
				if _, ok := joined[c]; ok {
					pick = i
					break
				}
			}
			if pick >= 0 {
				break
			}
		}
		if pick < 0 {
			pick = 0 // nothing connects: unavoidable cross product
		}
		add(rest[pick])
		rest = append(rest[:pick], rest[pick+1:]...)
	}
	return ordered
}

// newJoin builds a hash join under the executor's memory policy: with
// JoinMemBudget set, an oversized build side spills to disk and the
// spill surfaces in ExecStats and the process metrics.
func (ex *executor) newJoin(left, right Iterator) Iterator {
	if ex.opts.JoinMemBudget <= 0 {
		return NewHashJoin(left, right)
	}
	counted := false
	return NewHashJoinBudget(left, right, ex.opts.JoinMemBudget, func(bytes int64) {
		ex.mu.Lock()
		if !counted {
			counted = true
			ex.stats.SpilledJoins++
			spilledJoinsTotal.Inc()
		}
		ex.stats.SpilledBytes += bytes
		ex.mu.Unlock()
		spilledBytesTotal.Add(bytes)
	})
}

// joinPipeline chains relations into one left-deep streaming hash-join
// pipeline: the first relation streams, every later one is hashed as a
// build side.
func (ex *executor) joinPipeline(ordered []*Relation) Iterator {
	it := Iterator(NewScan(ordered[0]))
	for _, r := range ordered[1:] {
		it = ex.newJoin(it, NewScan(r))
	}
	return it
}

// runWaves executes the plan wave by wave — the pre-DAG scheduler,
// kept behind ExecOptions.WaveBarrier for ablation: steps are grouped
// by dependency depth, each group joins into the growing intermediate
// relation, and depth d+1 starts only after the slowest step of depth
// d finished. Intermediate waves materialize (later bind joins consume
// their rows); the final wave's join pipeline is returned
// unmaterialized so finish() streams it.
func (ex *executor) runWaves() (Iterator, error) {
	var rel *Relation
	last := ex.plan.NumWaves() - 1
	for wave := 0; wave <= last; wave++ {
		var steps []PlanStep
		var positions []int
		for i, s := range ex.plan.Steps {
			if s.Wave == wave {
				steps = append(steps, s)
				positions = append(positions, i)
			}
		}
		results := make([]*Relation, len(steps))
		if ex.opts.Parallel && len(steps) > 1 {
			var wg sync.WaitGroup
			errs := make([]error, len(steps))
			for i, s := range steps {
				wg.Add(1)
				go func(i int, s PlanStep) {
					defer wg.Done()
					results[i], errs[i] = ex.runStep(s, rel)
				}(i, s)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					return nil, err
				}
			}
		} else {
			for i, s := range steps {
				r, err := ex.runStep(s, rel)
				if err != nil {
					return nil, err
				}
				results[i] = r
			}
		}
		for i, r := range results {
			ex.nodeRows[positions[i]] = len(r.Rows)
		}
		// Join the wave's results into the intermediate relation,
		// smallest first so intermediates grow from the tightest seed.
		// The joins are composed into one left-deep iterator pipeline so
		// the wave materializes at most once: the seed streams through
		// the whole chain while each remaining relation is hashed as a
		// join's build side. The final wave skips even that single
		// materialization and streams into the finishing operators.
		sort.SliceStable(results, func(i, j int) bool {
			return len(results[i].Rows) < len(results[j].Rows)
		})
		var it Iterator
		joins := 0
		for _, r := range results {
			if rel == nil {
				rel = r
				continue
			}
			if it == nil {
				it = NewScan(rel)
			}
			it = ex.newJoin(it, NewScan(r))
			joins++
		}
		if joins > 0 {
			if wave == last && !ex.opts.MaterializeFinal {
				return it, nil
			}
			joined, err := Materialize(it)
			if err != nil {
				return nil, err
			}
			rel = joined
		}
	}
	if rel == nil {
		rel = &Relation{}
	}
	return NewScan(rel), nil
}

// runStep executes one atom against its source(s). rel is the outer
// relation bind joins and dynamic resolution consume: the assembled
// dependency join under the DAG executor, the cumulative intermediate
// relation under the wave-barrier one. Each step runs under its own
// "node" span.
func (ex *executor) runStep(s PlanStep, rel *Relation) (*Relation, error) {
	a := ex.q.Atoms[s.AtomIndex]
	outs := ex.plan.outs[s.AtomIndex]

	sp := ex.span.StartChild("node")
	sp.SetAttr("atom", strconv.Itoa(s.AtomIndex))
	sp.SetAttr("target", a.Designator())
	defer sp.End()

	if s.Dynamic {
		return ex.runDynamic(a, outs, rel, sp)
	}

	src, err := ex.atomSource(a)
	if err != nil {
		return nil, err
	}
	if s.BindJoin {
		ex.mu.Lock()
		ex.stats.BindJoins++
		ex.mu.Unlock()
		return ex.bindJoin(src, a, outs, rel, "", sp)
	}
	res, err := ex.scanSource(src, a, sp)
	if err != nil {
		return nil, err
	}
	return atomRelation(res, outs)
}

// scanSource executes an unparameterized sub-query — one native scan —
// under a child span, observing its round trip into the per-source
// probe histogram.
func (ex *executor) scanSource(src source.DataSource, a Atom, sp *obs.Span) (*source.Result, error) {
	ssp := sp.StartChild("scan")
	ssp.SetAttr("source", src.URI())
	start := time.Now()
	res, err := source.ExecuteWith(ex.ctx, src, a.Sub, nil)
	ssp.End()
	if err != nil {
		return nil, err
	}
	probeSeconds.With(src.URI()).ObserveSince(start)
	ex.addStats(1, len(res.Rows))
	return res, nil
}

func (ex *executor) atomSource(a Atom) (source.DataSource, error) {
	if a.Kind == GraphAtom {
		return ex.in.graphSource(ex.q.Prefixes), nil
	}
	return ex.in.ResolveSource(a.SourceURI)
}

// runDynamic resolves the designating variable's distinct values from
// the outer relation and ships the sub-query to each discovered
// source; results carry the designator column so they join back to the
// rows that mentioned that source (§2.2's per-embedding source
// resolution).
func (ex *executor) runDynamic(a Atom, outs []string, rel *Relation, sp *obs.Span) (*Relation, error) {
	if rel == nil {
		return nil, fmt.Errorf("core: dynamic source ?%s has no bindings yet", a.SourceVar)
	}
	ci := rel.colIndex(a.SourceVar)
	if ci < 0 {
		return nil, fmt.Errorf("core: dynamic source variable ?%s not in intermediate relation", a.SourceVar)
	}
	uris := make(map[string]struct{})
	for _, row := range rel.Rows {
		if !row[ci].IsNull() {
			uris[row[ci].Str()] = struct{}{}
		}
	}
	ex.mu.Lock()
	ex.stats.Dynamic += len(uris)
	ex.mu.Unlock()

	cols := []string{a.SourceVar}
	var merged *Relation
	ordered := make([]string, 0, len(uris))
	for uri := range uris {
		ordered = append(ordered, uri)
	}
	sort.Strings(ordered)
	for _, uri := range ordered {
		src, err := ex.in.ResolveSource(uri)
		if err != nil {
			return nil, fmt.Errorf("core: dynamic source ?%s: %w", a.SourceVar, err)
		}
		var part *Relation
		if len(a.Sub.InVars) > 0 {
			part, err = ex.bindJoin(src, a, outs, rel, uri, sp)
		} else {
			var res *source.Result
			res, err = ex.scanSource(src, a, sp)
			if err == nil {
				part, err = atomRelation(res, outs)
			}
		}
		if err != nil {
			return nil, err
		}
		// Tag rows with the source URI under the designator column.
		tagged := &Relation{Cols: append(cols, part.Cols...)}
		for _, r := range part.Rows {
			row := make(value.Row, 0, 1+len(r))
			row = append(row, value.NewString(uri))
			row = append(row, r...)
			tagged.Rows = append(tagged.Rows, row)
		}
		if merged == nil {
			merged = tagged
		} else {
			merged.Rows = append(merged.Rows, tagged.Rows...)
		}
	}
	if merged == nil {
		return &Relation{Cols: append(cols, outs...)}, nil
	}
	return merged, nil
}

// paramTuple is one distinct combination of bind-join parameter values.
type paramTuple struct {
	key    string
	params value.Row
}

// bindSpec is the column plumbing of one bind join, computed once from
// the atom and the outer input's columns and shared by the
// materialized and streaming paths: which outer positions feed the
// sub-query parameters, what the output columns are, and how a probe
// result filters back into output rows.
type bindSpec struct {
	ins      []string // parameter variable names, in InVars order
	inPos    []int    // their positions in the outer input
	cols     []string // output columns: ins, then outs not among ins
	outKeep  []int    // positions in the sub-result to append
	outCheck []struct{ resPos, insPos int }
	outs     []string
	atom     Atom
}

// newBindSpec resolves the atom's InVars against the outer columns and
// lays out the output relation. Output columns: InVars first, then
// OutVars not already among the InVars (overlaps are equality-checked
// instead of duplicated).
func newBindSpec(a Atom, outs []string, outerCols []string) (*bindSpec, error) {
	sp := &bindSpec{atom: a, outs: outs}
	sp.ins = make([]string, len(a.Sub.InVars))
	sp.inPos = make([]int, len(sp.ins))
	for i, iv := range a.Sub.InVars {
		sp.ins[i] = strings.TrimPrefix(iv, "?")
		p, ok := indexOf(outerCols, sp.ins[i])
		if !ok {
			return nil, fmt.Errorf("core: bind-join variable ?%s not in intermediate relation", sp.ins[i])
		}
		sp.inPos[i] = p
	}
	sp.cols = append([]string(nil), sp.ins...)
	for i, o := range outs {
		if j, dup := indexOf(sp.ins, o); dup {
			sp.outCheck = append(sp.outCheck, struct{ resPos, insPos int }{i, j})
			continue
		}
		sp.cols = append(sp.cols, o)
		sp.outKeep = append(sp.outKeep, i)
	}
	return sp, nil
}

// extract pulls one outer row's parameter tuple; ok=false skips the
// row (a NULL never binds a parameter).
func (sp *bindSpec) extract(row value.Row) (paramTuple, bool) {
	params := make(value.Row, len(sp.inPos))
	for i, p := range sp.inPos {
		if row[p].IsNull() {
			return paramTuple{}, false
		}
		params[i] = row[p]
	}
	return paramTuple{params.Key(), params}, true
}

// filterRows turns one tuple's sub-result into output rows: the
// overlap columns are equality-checked against the tuple, the rest
// appended after the tuple's parameter values.
func (sp *bindSpec) filterRows(t paramTuple, res *source.Result) ([]value.Row, error) {
	if len(res.Cols) != len(sp.outs) {
		if len(res.Cols) == 0 && len(res.Rows) == 0 {
			// A schema-less empty result: how a federation endpoint answers
			// a probe it pruned server-side against its digest.
			return nil, nil
		}
		return nil, fmt.Errorf("core: atom %s returned %d columns for %d OUT variables",
			sp.atom.Designator(), len(res.Cols), len(sp.outs))
	}
	var local []value.Row
	for _, r := range res.Rows {
		ok := true
		for _, ch := range sp.outCheck {
			if !value.Equal(r[ch.resPos], t.params[ch.insPos]) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		row := make(value.Row, 0, len(sp.cols))
		row = append(row, t.params...)
		for _, p := range sp.outKeep {
			row = append(row, r[p])
		}
		local = append(local, row)
	}
	return local, nil
}

// bindJoin executes the atom once per distinct combination of its
// InVars values in rel, pushing the values as sub-query parameters, and
// returns the relation (InVars ∪ OutVars). When the source supports
// batched probes (source.BatchProber) and opts.ProbeBatch > 1, the
// distinct tuples are chunked and each chunk ships as ONE native
// sub-query (⌈N/batch⌉ round trips instead of N); the chunk size is
// the per-source adaptive size when a Tuner is set. Sources without
// the capability — or sub-query shapes a source cannot batch — keep
// the per-tuple fan-out. When srcURI is non-empty the bindings
// considered are restricted to rows designating that source.
func (ex *executor) bindJoin(src source.DataSource, a Atom, outs []string, rel *Relation, srcURI string, sp *obs.Span) (*Relation, error) {
	if rel == nil {
		return nil, fmt.Errorf("core: bind join for atom %s has no outer bindings", a.Designator())
	}
	spec, err := newBindSpec(a, outs, rel.Cols)
	if err != nil {
		return nil, err
	}
	srcPos := -1
	if srcURI != "" {
		srcPos = rel.colIndex(a.SourceVar)
	}

	// Distinct parameter tuples.
	seen := make(map[string]struct{})
	var tuples []paramTuple
	for _, row := range rel.Rows {
		if srcPos >= 0 && row[srcPos].Str() != srcURI {
			continue
		}
		t, ok := spec.extract(row)
		if !ok {
			continue
		}
		if _, dup := seen[t.key]; dup {
			continue
		}
		seen[t.key] = struct{}{}
		tuples = append(tuples, t)
	}

	// Digest semi-join pruning: bindings the source's digest proves
	// absent are dropped before any round trip, and the per-position
	// Bloom filters ride along with the sub-query so batch-capable
	// federation endpoints can prune server-side as well.
	if m := ex.probePruner(src, a); m != nil {
		kept := make([]paramTuple, 0, len(tuples))
		pruned := 0
		for _, t := range tuples {
			if m.MayMatch(t.params) {
				kept = append(kept, t)
			} else {
				pruned++
			}
		}
		if pruned > 0 {
			tuples = kept
			ex.mu.Lock()
			ex.stats.PrunedProbes += pruned
			ex.mu.Unlock()
		}
		a.Sub.Prune = m.Filters()
	}

	filterRows := spec.filterRows
	out := &Relation{Cols: spec.cols}
	var outMu sync.Mutex

	probe := func(t paramTuple) error {
		psp := sp.StartChild("probe")
		psp.SetAttr("source", src.URI())
		start := time.Now()
		res, err := source.ExecuteWith(ex.ctx, src, a.Sub, t.params)
		psp.End()
		if err != nil {
			return err
		}
		probeSeconds.With(src.URI()).ObserveSince(start)
		ex.addStats(1, len(res.Rows))
		local, err := filterRows(t, res)
		if err != nil {
			return err
		}
		outMu.Lock()
		out.Rows = append(out.Rows, local...)
		outMu.Unlock()
		return nil
	}

	// Batch phase: when the source can really batch (source.CanBatch
	// sees through decorators, so a probe cache over a plain source
	// does not look batchable), ship chunks of the effective batch
	// size, each as one job. Chunks the source rejects at run time as
	// unbatchable (source.ErrBatchUnsupported, e.g. a remote endpoint
	// without the batch route) collect their tuples for the per-tuple
	// phase; real errors abort the join.
	probeTuples := tuples
	if source.CanBatch(src) && ex.opts.ProbeBatch > 1 && len(tuples) > 1 {
		batch := ex.opts.ProbeBatch
		if ex.opts.Tuner != nil {
			batch = ex.opts.Tuner.Size(src.URI(), batch)
		}
		ex.recordBatchSize(src.URI(), batch)
		bp := src.(source.BatchProber)
		var rejectedMu sync.Mutex
		var rejected []paramTuple
		var jobs []func() error
		for start := 0; start < len(tuples); start += batch {
			chunk := tuples[start:min(start+batch, len(tuples))]
			jobs = append(jobs, func() error {
				unsupported, err := ex.batchProbe(bp, a, chunk, filterRows, out, &outMu, sp)
				if err != nil {
					return err
				}
				if unsupported {
					rejectedMu.Lock()
					rejected = append(rejected, chunk...)
					rejectedMu.Unlock()
				}
				return nil
			})
		}
		if err := ex.runJobs(jobs); err != nil {
			return nil, err
		}
		probeTuples = rejected
	}

	// Per-tuple phase: everything the batch phase did not cover, one
	// job per tuple so MaxFanout parallelism and the per-probe error
	// short-circuit apply at tuple granularity either way.
	var jobs []func() error
	for _, t := range probeTuples {
		t := t
		jobs = append(jobs, func() error { return probe(t) })
	}
	if err := ex.runJobs(jobs); err != nil {
		return nil, err
	}
	return out, nil
}

// runJobs executes probe jobs, concurrently under MaxFanout when the
// options allow. Once a job fails — or the query's context is done —
// no further jobs launch: queued probes would only fire doomed network
// sub-queries.
func (ex *executor) runJobs(jobs []func() error) error {
	if !ex.opts.Parallel || len(jobs) <= 1 {
		for _, job := range jobs {
			if err := ex.ctx.Err(); err != nil {
				return err
			}
			if err := job(); err != nil {
				return err
			}
		}
		return nil
	}
	sem := make(chan struct{}, ex.opts.MaxFanout)
	var wg sync.WaitGroup
	errOnce := sync.Once{}
	var firstErr error
	var failed atomic.Bool
	for _, job := range jobs {
		if failed.Load() {
			break
		}
		if err := ex.ctx.Err(); err != nil {
			errOnce.Do(func() { firstErr = err })
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(job func() error) {
			defer wg.Done()
			defer func() { <-sem }()
			if failed.Load() {
				return
			}
			if err := job(); err != nil {
				errOnce.Do(func() { firstErr = err })
				failed.Store(true)
			}
		}(job)
	}
	wg.Wait()
	return firstErr
}

// batchProbe ships one chunk of parameter tuples as a single batched
// sub-query and appends the merged per-tuple results to out.
// unsupported=true reports the source rejected this sub-query's shape
// (ErrBatchUnsupported); the caller then reprobes the chunk's tuples
// individually.
func (ex *executor) batchProbe(bp source.BatchProber, a Atom, chunk []paramTuple,
	filterRows func(paramTuple, *source.Result) ([]value.Row, error),
	out *Relation, outMu *sync.Mutex, sp *obs.Span) (unsupported bool, _ error) {

	merged, unsupported, err := ex.batchProbeRows(bp, a, chunk, filterRows, sp)
	if err != nil || unsupported {
		return unsupported, err
	}
	outMu.Lock()
	out.Rows = append(out.Rows, merged...)
	outMu.Unlock()
	return false, nil
}

// batchProbeRows ships one chunk of parameter tuples as a single
// batched sub-query and returns the merged per-tuple result rows —
// the transport shared by the materialized and streaming bind joins.
// Successful round trips feed the adaptive tuner when one is
// configured.
func (ex *executor) batchProbeRows(bp source.BatchProber, a Atom, chunk []paramTuple,
	filterRows func(paramTuple, *source.Result) ([]value.Row, error),
	sp *obs.Span) (_ []value.Row, unsupported bool, _ error) {

	if len(chunk) == 0 {
		// A fully-pruned chunk never reaches the wire, so there is no
		// round trip to make and no RTT signal for the tuner to learn
		// from.
		return nil, false, nil
	}
	sets := make([]value.Row, len(chunk))
	for i, t := range chunk {
		sets[i] = t.params
	}
	csp := sp.StartChild("probe-batch")
	csp.SetAttr("source", bp.URI())
	csp.SetAttr("tuples", strconv.Itoa(len(chunk)))
	start := time.Now()
	results, err := source.ExecuteBatchWith(ex.ctx, bp, a.Sub, sets)
	csp.End()
	if err != nil {
		if errors.Is(err, source.ErrBatchUnsupported) {
			return nil, true, nil
		}
		return nil, false, err
	}
	probeSeconds.With(bp.URI()).ObserveSince(start)
	if ex.opts.Tuner != nil {
		ex.opts.Tuner.Observe(bp.URI(), time.Since(start))
	}
	if len(results) != len(chunk) {
		return nil, false, fmt.Errorf("core: atom %s: batched probe returned %d results for %d tuples",
			a.Designator(), len(results), len(chunk))
	}
	rows := 0
	var merged []value.Row
	for i, res := range results {
		if res == nil {
			return nil, false, fmt.Errorf("core: atom %s: batched probe returned a nil result", a.Designator())
		}
		rows += len(res.Rows)
		local, err := filterRows(chunk[i], res)
		if err != nil {
			return nil, false, err
		}
		merged = append(merged, local...)
	}
	ex.mu.Lock()
	ex.stats.SubQueries++
	ex.stats.BatchProbes++
	ex.stats.RowsFetched += rows
	ex.mu.Unlock()
	return merged, false, nil
}

// atomRelation renames a source result's columns to the atom's OUT
// variables. Repeated OUT variables become an equality filter plus a
// single column.
func atomRelation(res *source.Result, outs []string) (*Relation, error) {
	if len(res.Cols) != len(outs) {
		return nil, fmt.Errorf("core: sub-query returned %d columns for %d OUT variables", len(res.Cols), len(outs))
	}
	// Detect repeats.
	first := make(map[string]int)
	var keep []int
	var checks [][2]int // (pos, firstPos) equality requirements
	for i, o := range outs {
		if j, dup := first[o]; dup {
			checks = append(checks, [2]int{i, j})
			continue
		}
		first[o] = i
		keep = append(keep, i)
	}
	out := &Relation{}
	for _, i := range keep {
		out.Cols = append(out.Cols, outs[i])
	}
	for _, r := range res.Rows {
		ok := true
		for _, c := range checks {
			if !value.Equal(r[c[0]], r[c[1]]) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		row := make(value.Row, 0, len(keep))
		for _, i := range keep {
			row = append(row, r[i])
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// finishIter chains the finishing operators — head projection (or
// grouped aggregation), distinct, order, limit — over the body
// pipeline. When the query is non-distinct, unordered and
// non-aggregating, the limit pushes BELOW the projection: the bound
// cuts the body pipeline (and, streaming, cancels upstream probes)
// before any per-row projection work, not after.
func (ex *executor) finishIter(input Iterator) Iterator {
	it := input
	pushLimit := ex.q.Limit > 0 && !ex.q.Distinct && ex.q.OrderBy == "" && len(ex.q.HeadItems) == 0
	if pushLimit {
		it = NewLimit(it, ex.q.Limit)
	}
	if len(ex.q.HeadItems) > 0 {
		it = NewAggregate(it, ex.q.GroupBy, ex.q.HeadItems)
	} else {
		head := ex.q.Head
		if len(head) == 0 {
			head = input.Cols()
		}
		it = NewProject(it, head)
	}
	if ex.q.Distinct {
		it = NewDistinct(it)
	}
	if ex.q.OrderBy != "" {
		it = NewSort(it, ex.q.OrderBy, ex.q.OrderDesc)
	}
	if ex.q.Limit > 0 && !pushLimit {
		it = NewLimit(it, ex.q.Limit)
	}
	return it
}

// finish applies the finishing operators, consuming the body pipeline
// without materializing it first.
func (ex *executor) finish(input Iterator) (*Relation, error) {
	return Materialize(ex.finishIter(input))
}
