package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"tatooine/internal/source"
	"tatooine/internal/value"
)

// ExecOptions tune query execution.
type ExecOptions struct {
	// Parallel runs independent atoms of a wave (and the per-binding
	// probes of a bind join) concurrently.
	Parallel bool
	// MaxFanout bounds bind-join concurrency (default 8).
	MaxFanout int
	// ProbeBatch is the bind-join batch size: when the source supports
	// batched probes (source.BatchProber) the distinct outer tuples are
	// chunked into batches of this size and each batch ships as one
	// native sub-query. 0 uses DefaultProbeBatch; 1 or negative forces
	// per-tuple probes (the pre-batching behavior).
	ProbeBatch int
	// NaiveOrder disables selectivity-based ordering (ablation E6):
	// atoms run one per wave in declaration order.
	NaiveOrder bool
	// MaterializeFinal materializes the final wave's join pipeline into
	// a relation before the finishing projection instead of streaming
	// it straight into finish() (ablation/testing knob; results are
	// identical either way).
	MaterializeFinal bool
}

// DefaultProbeBatch is the bind-join batch size when ExecOptions leaves
// ProbeBatch at zero.
const DefaultProbeBatch = 64

// ExecStats reports what an execution did.
type ExecStats struct {
	SubQueries  int // native sub-query invocations (a batched probe counts once)
	RowsFetched int // rows returned by sources before residual joins
	Waves       int
	BindJoins   int // atoms executed as bind joins
	BatchProbes int // batched bind-join dispatches (each also counts one SubQuery)
	Dynamic     int // distinct dynamically-resolved sources contacted
}

// QueryResult is the outcome of a CMQ execution.
type QueryResult struct {
	Cols  []string
	Rows  []value.Row
	Stats ExecStats
	Plan  *Plan
}

// Execute runs a CMQ over the instance with default options
// (parallelism on).
func (in *Instance) Execute(q *CMQ) (*QueryResult, error) {
	return in.ExecuteOpts(q, ExecOptions{Parallel: true})
}

// ExecuteOpts runs a CMQ with explicit options.
func (in *Instance) ExecuteOpts(q *CMQ, opts ExecOptions) (*QueryResult, error) {
	if opts.MaxFanout <= 0 {
		opts.MaxFanout = 8
	}
	if opts.ProbeBatch == 0 {
		opts.ProbeBatch = DefaultProbeBatch
	}
	plan, err := in.planQuery(q, opts.NaiveOrder)
	if err != nil {
		return nil, err
	}
	ex := &executor{in: in, q: q, plan: plan, opts: opts}
	it, err := ex.run()
	if err != nil {
		return nil, err
	}
	out, err := ex.finish(it)
	if err != nil {
		return nil, err
	}
	ex.stats.Waves = plan.NumWaves()
	return &QueryResult{Cols: out.Cols, Rows: out.Rows, Stats: ex.stats, Plan: plan}, nil
}

type executor struct {
	in    *Instance
	q     *CMQ
	plan  *Plan
	opts  ExecOptions
	stats ExecStats
	mu    sync.Mutex // guards stats
}

func (ex *executor) addStats(subQueries, rows int) {
	ex.mu.Lock()
	ex.stats.SubQueries += subQueries
	ex.stats.RowsFetched += rows
	ex.mu.Unlock()
}

// run executes the plan wave by wave, joining each wave's atom results
// into the growing intermediate relation. Intermediate waves
// materialize (later bind joins need their rows); the final wave's
// join pipeline is returned unmaterialized so finish() streams it.
func (ex *executor) run() (Iterator, error) {
	var rel *Relation
	last := ex.plan.NumWaves() - 1
	for wave := 0; wave <= last; wave++ {
		var steps []PlanStep
		for _, s := range ex.plan.Steps {
			if s.Wave == wave {
				steps = append(steps, s)
			}
		}
		results := make([]*Relation, len(steps))
		if ex.opts.Parallel && len(steps) > 1 {
			var wg sync.WaitGroup
			errs := make([]error, len(steps))
			for i, s := range steps {
				wg.Add(1)
				go func(i int, s PlanStep) {
					defer wg.Done()
					results[i], errs[i] = ex.runStep(s, rel)
				}(i, s)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					return nil, err
				}
			}
		} else {
			for i, s := range steps {
				r, err := ex.runStep(s, rel)
				if err != nil {
					return nil, err
				}
				results[i] = r
			}
		}
		// Join the wave's results into the intermediate relation,
		// smallest first so intermediates grow from the tightest seed.
		// The joins are composed into one left-deep iterator pipeline so
		// the wave materializes at most once: the seed streams through
		// the whole chain while each remaining relation is hashed as a
		// join's build side. The final wave skips even that single
		// materialization and streams into the finishing operators.
		sort.SliceStable(results, func(i, j int) bool {
			return len(results[i].Rows) < len(results[j].Rows)
		})
		var it Iterator
		joins := 0
		for _, r := range results {
			if rel == nil {
				rel = r
				continue
			}
			if it == nil {
				it = NewScan(rel)
			}
			it = NewHashJoin(it, NewScan(r))
			joins++
		}
		if joins > 0 {
			if wave == last && !ex.opts.MaterializeFinal {
				return it, nil
			}
			joined, err := Materialize(it)
			if err != nil {
				return nil, err
			}
			rel = joined
		}
	}
	if rel == nil {
		rel = &Relation{}
	}
	return NewScan(rel), nil
}

// runStep executes one atom against its source(s).
func (ex *executor) runStep(s PlanStep, rel *Relation) (*Relation, error) {
	a := ex.q.Atoms[s.AtomIndex]
	outs := ex.plan.outs[s.AtomIndex]

	if s.Dynamic {
		return ex.runDynamic(a, outs, rel)
	}

	src, err := ex.atomSource(a)
	if err != nil {
		return nil, err
	}
	if s.BindJoin {
		ex.mu.Lock()
		ex.stats.BindJoins++
		ex.mu.Unlock()
		return ex.bindJoin(src, a, outs, rel, "")
	}
	res, err := src.Execute(a.Sub, nil)
	if err != nil {
		return nil, err
	}
	ex.addStats(1, len(res.Rows))
	return atomRelation(res, outs)
}

func (ex *executor) atomSource(a Atom) (source.DataSource, error) {
	if a.Kind == GraphAtom {
		return ex.in.graphSource(ex.q.Prefixes), nil
	}
	return ex.in.ResolveSource(a.SourceURI)
}

// runDynamic resolves the designating variable's distinct values from
// the intermediate relation and ships the sub-query to each discovered
// source; results carry the designator column so they join back to the
// rows that mentioned that source (§2.2's per-embedding source
// resolution).
func (ex *executor) runDynamic(a Atom, outs []string, rel *Relation) (*Relation, error) {
	if rel == nil {
		return nil, fmt.Errorf("core: dynamic source ?%s has no bindings yet", a.SourceVar)
	}
	ci := rel.colIndex(a.SourceVar)
	if ci < 0 {
		return nil, fmt.Errorf("core: dynamic source variable ?%s not in intermediate relation", a.SourceVar)
	}
	uris := make(map[string]struct{})
	for _, row := range rel.Rows {
		if !row[ci].IsNull() {
			uris[row[ci].Str()] = struct{}{}
		}
	}
	ex.mu.Lock()
	ex.stats.Dynamic += len(uris)
	ex.mu.Unlock()

	cols := []string{a.SourceVar}
	var merged *Relation
	ordered := make([]string, 0, len(uris))
	for uri := range uris {
		ordered = append(ordered, uri)
	}
	sort.Strings(ordered)
	for _, uri := range ordered {
		src, err := ex.in.ResolveSource(uri)
		if err != nil {
			return nil, fmt.Errorf("core: dynamic source ?%s: %w", a.SourceVar, err)
		}
		var part *Relation
		if len(a.Sub.InVars) > 0 {
			part, err = ex.bindJoin(src, a, outs, rel, uri)
		} else {
			var res *source.Result
			res, err = src.Execute(a.Sub, nil)
			if err == nil {
				ex.addStats(1, len(res.Rows))
				part, err = atomRelation(res, outs)
			}
		}
		if err != nil {
			return nil, err
		}
		// Tag rows with the source URI under the designator column.
		tagged := &Relation{Cols: append(cols, part.Cols...)}
		for _, r := range part.Rows {
			row := make(value.Row, 0, 1+len(r))
			row = append(row, value.NewString(uri))
			row = append(row, r...)
			tagged.Rows = append(tagged.Rows, row)
		}
		if merged == nil {
			merged = tagged
		} else {
			merged.Rows = append(merged.Rows, tagged.Rows...)
		}
	}
	if merged == nil {
		return &Relation{Cols: append(cols, outs...)}, nil
	}
	return merged, nil
}

// paramTuple is one distinct combination of bind-join parameter values.
type paramTuple struct {
	key    string
	params value.Row
}

// bindJoin executes the atom once per distinct combination of its
// InVars values in rel, pushing the values as sub-query parameters, and
// returns the relation (InVars ∪ OutVars). When the source supports
// batched probes (source.BatchProber) and opts.ProbeBatch > 1, the
// distinct tuples are chunked and each chunk ships as ONE native
// sub-query (⌈N/ProbeBatch⌉ round trips instead of N); sources without
// the capability — or sub-query shapes a source cannot batch — keep
// the per-tuple fan-out. When srcURI is non-empty the bindings
// considered are restricted to rows designating that source.
func (ex *executor) bindJoin(src source.DataSource, a Atom, outs []string, rel *Relation, srcURI string) (*Relation, error) {
	if rel == nil {
		return nil, fmt.Errorf("core: bind join for atom %s has no outer bindings", a.Designator())
	}
	ins := make([]string, len(a.Sub.InVars))
	inPos := make([]int, len(ins))
	for i, iv := range a.Sub.InVars {
		ins[i] = strings.TrimPrefix(iv, "?")
		p := rel.colIndex(ins[i])
		if p < 0 {
			return nil, fmt.Errorf("core: bind-join variable ?%s not in intermediate relation", ins[i])
		}
		inPos[i] = p
	}
	srcPos := -1
	if srcURI != "" {
		srcPos = rel.colIndex(a.SourceVar)
	}

	// Distinct parameter tuples.
	seen := make(map[string]struct{})
	var tuples []paramTuple
	for _, row := range rel.Rows {
		if srcPos >= 0 && row[srcPos].Str() != srcURI {
			continue
		}
		params := make(value.Row, len(inPos))
		skip := false
		for i, p := range inPos {
			if row[p].IsNull() {
				skip = true
				break
			}
			params[i] = row[p]
		}
		if skip {
			continue
		}
		k := params.Key()
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		tuples = append(tuples, paramTuple{k, params})
	}

	// Output columns: InVars first, then OutVars not already among the
	// InVars (overlaps are equality-checked instead of duplicated).
	cols := append([]string(nil), ins...)
	var outKeep []int // positions in the sub-result to append
	var outCheck []struct{ resPos, insPos int }
	for i, o := range outs {
		if j, dup := indexOf(ins, o); dup {
			outCheck = append(outCheck, struct{ resPos, insPos int }{i, j})
			continue
		}
		cols = append(cols, o)
		outKeep = append(outKeep, i)
	}

	out := &Relation{Cols: cols}
	var outMu sync.Mutex

	// filterRows turns one tuple's sub-result into output rows: the
	// overlap columns are equality-checked against the tuple, the rest
	// appended after the tuple's parameter values.
	filterRows := func(t paramTuple, res *source.Result) ([]value.Row, error) {
		if len(res.Cols) != len(outs) {
			return nil, fmt.Errorf("core: atom %s returned %d columns for %d OUT variables",
				a.Designator(), len(res.Cols), len(outs))
		}
		var local []value.Row
		for _, r := range res.Rows {
			ok := true
			for _, ch := range outCheck {
				if !value.Equal(r[ch.resPos], t.params[ch.insPos]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			row := make(value.Row, 0, len(cols))
			row = append(row, t.params...)
			for _, p := range outKeep {
				row = append(row, r[p])
			}
			local = append(local, row)
		}
		return local, nil
	}

	probe := func(t paramTuple) error {
		res, err := src.Execute(a.Sub, t.params)
		if err != nil {
			return err
		}
		ex.addStats(1, len(res.Rows))
		local, err := filterRows(t, res)
		if err != nil {
			return err
		}
		outMu.Lock()
		out.Rows = append(out.Rows, local...)
		outMu.Unlock()
		return nil
	}

	// Batch phase: when the source can really batch (source.CanBatch
	// sees through decorators, so a probe cache over a plain source
	// does not look batchable), ship ProbeBatch-sized chunks, each as
	// one job. Chunks the source rejects at run time as unbatchable
	// (source.ErrBatchUnsupported, e.g. a remote endpoint without the
	// batch route) collect their tuples for the per-tuple phase; real
	// errors abort the join.
	probeTuples := tuples
	if source.CanBatch(src) && ex.opts.ProbeBatch > 1 && len(tuples) > 1 {
		bp := src.(source.BatchProber)
		var rejectedMu sync.Mutex
		var rejected []paramTuple
		var jobs []func() error
		for start := 0; start < len(tuples); start += ex.opts.ProbeBatch {
			chunk := tuples[start:min(start+ex.opts.ProbeBatch, len(tuples))]
			jobs = append(jobs, func() error {
				unsupported, err := ex.batchProbe(bp, a, chunk, filterRows, out, &outMu)
				if err != nil {
					return err
				}
				if unsupported {
					rejectedMu.Lock()
					rejected = append(rejected, chunk...)
					rejectedMu.Unlock()
				}
				return nil
			})
		}
		if err := ex.runJobs(jobs); err != nil {
			return nil, err
		}
		probeTuples = rejected
	}

	// Per-tuple phase: everything the batch phase did not cover, one
	// job per tuple so MaxFanout parallelism and the per-probe error
	// short-circuit apply at tuple granularity either way.
	var jobs []func() error
	for _, t := range probeTuples {
		t := t
		jobs = append(jobs, func() error { return probe(t) })
	}
	if err := ex.runJobs(jobs); err != nil {
		return nil, err
	}
	return out, nil
}

// runJobs executes probe jobs, concurrently under MaxFanout when the
// options allow. Once a job fails no further jobs launch: queued
// probes would only fire doomed network sub-queries.
func (ex *executor) runJobs(jobs []func() error) error {
	if !ex.opts.Parallel || len(jobs) <= 1 {
		for _, job := range jobs {
			if err := job(); err != nil {
				return err
			}
		}
		return nil
	}
	sem := make(chan struct{}, ex.opts.MaxFanout)
	var wg sync.WaitGroup
	errOnce := sync.Once{}
	var firstErr error
	var failed atomic.Bool
	for _, job := range jobs {
		if failed.Load() {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(job func() error) {
			defer wg.Done()
			defer func() { <-sem }()
			if failed.Load() {
				return
			}
			if err := job(); err != nil {
				errOnce.Do(func() { firstErr = err })
				failed.Store(true)
			}
		}(job)
	}
	wg.Wait()
	return firstErr
}

// batchProbe ships one chunk of parameter tuples as a single batched
// sub-query and merges the per-tuple results. unsupported=true reports
// the source rejected this sub-query's shape (ErrBatchUnsupported);
// the caller then reprobes the chunk's tuples individually.
func (ex *executor) batchProbe(bp source.BatchProber, a Atom, chunk []paramTuple,
	filterRows func(paramTuple, *source.Result) ([]value.Row, error),
	out *Relation, outMu *sync.Mutex) (unsupported bool, _ error) {

	sets := make([]value.Row, len(chunk))
	for i, t := range chunk {
		sets[i] = t.params
	}
	results, err := bp.ExecuteBatch(a.Sub, sets)
	if err != nil {
		if errors.Is(err, source.ErrBatchUnsupported) {
			return true, nil
		}
		return false, err
	}
	if len(results) != len(chunk) {
		return false, fmt.Errorf("core: atom %s: batched probe returned %d results for %d tuples",
			a.Designator(), len(results), len(chunk))
	}
	rows := 0
	var merged []value.Row
	for i, res := range results {
		if res == nil {
			return false, fmt.Errorf("core: atom %s: batched probe returned a nil result", a.Designator())
		}
		rows += len(res.Rows)
		local, err := filterRows(chunk[i], res)
		if err != nil {
			return false, err
		}
		merged = append(merged, local...)
	}
	ex.mu.Lock()
	ex.stats.SubQueries++
	ex.stats.BatchProbes++
	ex.stats.RowsFetched += rows
	ex.mu.Unlock()
	outMu.Lock()
	out.Rows = append(out.Rows, merged...)
	outMu.Unlock()
	return false, nil
}

// atomRelation renames a source result's columns to the atom's OUT
// variables. Repeated OUT variables become an equality filter plus a
// single column.
func atomRelation(res *source.Result, outs []string) (*Relation, error) {
	if len(res.Cols) != len(outs) {
		return nil, fmt.Errorf("core: sub-query returned %d columns for %d OUT variables", len(res.Cols), len(outs))
	}
	// Detect repeats.
	first := make(map[string]int)
	var keep []int
	var checks [][2]int // (pos, firstPos) equality requirements
	for i, o := range outs {
		if j, dup := first[o]; dup {
			checks = append(checks, [2]int{i, j})
			continue
		}
		first[o] = i
		keep = append(keep, i)
	}
	out := &Relation{}
	for _, i := range keep {
		out.Cols = append(out.Cols, outs[i])
	}
	for _, r := range res.Rows {
		ok := true
		for _, c := range checks {
			if !value.Equal(r[c[0]], r[c[1]]) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		row := make(value.Row, 0, len(keep))
		for _, i := range keep {
			row = append(row, r[i])
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// finish applies head projection (or grouped aggregation), distinct,
// order and limit, consuming the body pipeline without materializing
// it first.
func (ex *executor) finish(input Iterator) (*Relation, error) {
	it := input
	if len(ex.q.HeadItems) > 0 {
		it = NewAggregate(it, ex.q.GroupBy, ex.q.HeadItems)
	} else {
		head := ex.q.Head
		if len(head) == 0 {
			head = input.Cols()
		}
		it = NewProject(it, head)
	}
	if ex.q.Distinct {
		it = NewDistinct(it)
	}
	if ex.q.OrderBy != "" {
		it = NewSort(it, ex.q.OrderBy, ex.q.OrderDesc)
	}
	if ex.q.Limit > 0 {
		it = NewLimit(it, ex.q.Limit)
	}
	return Materialize(it)
}
