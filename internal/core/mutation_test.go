package core

import (
	"testing"

	"tatooine/internal/rdf"
	"tatooine/internal/relstore"
	"tatooine/internal/source"
)

func mutableInstance(t *testing.T, opts ...InstanceOption) *Instance {
	t.Helper()
	g := rdf.NewGraph()
	g.AddAll(rdf.MustParse(`
@prefix : <http://t.example/> .
:p1 a :politician ; :position :headOfState .
:politician rdfs:subClassOf :person .
`))
	opts = append([]InstanceOption{WithPrefixes(map[string]string{"": "http://t.example/"})}, opts...)
	return NewInstance(g, opts...)
}

func TestMutationBumpsEpoch(t *testing.T) {
	in := mutableInstance(t)
	if in.Epoch() != 0 {
		t.Fatalf("fresh instance epoch = %d", in.Epoch())
	}
	added := in.AddTriples(rdf.MustParse(`
@prefix : <http://t.example/> .
:p2 a :politician .
`))
	if added != 1 || in.Epoch() != 1 {
		t.Fatalf("AddTriples: added=%d epoch=%d", added, in.Epoch())
	}
	// Re-inserting the same triple changes nothing: the epoch must not
	// move, so caches are not flushed for a no-op.
	if in.AddTriples(rdf.MustParse("@prefix : <http://t.example/> .\n:p2 a :politician .")) != 0 {
		t.Error("duplicate insert reported new triples")
	}
	if in.Epoch() != 1 {
		t.Errorf("no-op insert bumped epoch to %d", in.Epoch())
	}
	removed := in.RemoveTriples(rdf.MustParse("@prefix : <http://t.example/> .\n:p2 a :politician ."))
	if removed != 1 || in.Epoch() != 2 {
		t.Fatalf("RemoveTriples: removed=%d epoch=%d", removed, in.Epoch())
	}
	if in.RemoveTriples(rdf.MustParse("@prefix : <http://t.example/> .\n:p2 a :politician .")) != 0 || in.Epoch() != 2 {
		t.Error("removing an absent triple bumped the epoch")
	}

	db := relstore.NewDatabase("insee")
	if _, err := db.Exec("CREATE TABLE chomage (dept TEXT, taux FLOAT)"); err != nil {
		t.Fatal(err)
	}
	if err := in.AddSource(source.NewRelSource("sql://insee", db)); err != nil {
		t.Fatal(err)
	}
	if in.Epoch() != 3 {
		t.Errorf("AddSource epoch = %d, want 3", in.Epoch())
	}
	// A failed registration (duplicate URI) must not bump.
	if err := in.AddSource(source.NewRelSource("sql://insee", db)); err == nil {
		t.Fatal("duplicate AddSource succeeded")
	}
	if in.Epoch() != 3 {
		t.Errorf("failed AddSource bumped epoch to %d", in.Epoch())
	}
	if !in.DropSource("sql://insee") || in.Epoch() != 4 {
		t.Errorf("DropSource: epoch = %d, want 4", in.Epoch())
	}
	if in.DropSource("sql://insee") || in.Epoch() != 4 {
		t.Error("dropping an absent source bumped the epoch")
	}
	if _, err := in.ResolveSource("sql://insee"); err == nil {
		t.Error("dropped source still resolves")
	}
	if epoch, _ := in.Invalidate(); epoch != 5 {
		t.Errorf("Invalidate epoch = %d, want 5", epoch)
	}
}

// TestSaturationRecomputesAfterMutation is the regression test for the
// satOnce bug: the saturation of G was computed exactly once per
// instance lifetime, so a graph insert after the first query was
// silently invisible to G∞ queries forever.
func TestSaturationRecomputesAfterMutation(t *testing.T) {
	in := mutableInstance(t, WithSaturation())
	const q = "QUERY q(?x)\nGRAPH { ?x a :person }"

	res, err := in.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("pre-mutation G∞ rows: %+v", res.Rows)
	}

	// :p9 is a politician, hence (via rdfs9) a person — but only in a
	// saturation computed AFTER this insert.
	if in.AddTriples(rdf.MustParse("@prefix : <http://t.example/> .\n:p9 a :politician .")) != 1 {
		t.Fatal("insert did not apply")
	}
	res, err = in.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("post-mutation G∞ rows = %d, want 2 (stale saturation served)", len(res.Rows))
	}

	// Removal re-saturates too.
	if in.RemoveTriples(rdf.MustParse("@prefix : <http://t.example/> .\n:p9 a :politician .")) != 1 {
		t.Fatal("remove did not apply")
	}
	res, err = in.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("post-removal G∞ rows = %d, want 1", len(res.Rows))
	}
}

// TestDeltaSaturationMaintainsAnswers: under the default delta mode,
// mutations are absorbed incrementally — answers stay correct and the
// stats prove no full recompute ran beyond the initial build.
func TestDeltaSaturationMaintainsAnswers(t *testing.T) {
	in := mutableInstance(t, WithSaturation())
	const q = "QUERY q(?x)\nGRAPH { ?x a :person }"

	res, err := in.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("initial G∞ rows = %d, want 1", len(res.Rows))
	}

	if in.AddTriples(rdf.MustParse("@prefix : <http://t.example/> .\n:p9 a :politician .")) != 1 {
		t.Fatal("insert did not apply")
	}
	if res, err = in.Query(q); err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("post-insert G∞ rows = %d, want 2", len(res.Rows))
	}

	if in.RemoveTriples(rdf.MustParse("@prefix : <http://t.example/> .\n:p9 a :politician .")) != 1 {
		t.Fatal("remove did not apply")
	}
	if res, err = in.Query(q); err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("post-remove G∞ rows = %d, want 1", len(res.Rows))
	}

	st := in.SaturationStats()
	if st.Mode != "delta" {
		t.Errorf("mode = %q, want delta", st.Mode)
	}
	if st.FullRecomputes != 1 {
		t.Errorf("fullRecomputes = %d, want 1 (the initial build only)", st.FullRecomputes)
	}
	if st.DeltaApplies != 2 {
		t.Errorf("deltaApplies = %d, want 2 (one insert, one delete)", st.DeltaApplies)
	}

	// Invalidate forces a rebuild (the escape hatch for out-of-band
	// Graph() writes).
	in.Graph().AddAll(rdf.MustParse("@prefix : <http://t.example/> .\n:oob a :politician ."))
	if res, _ = in.Query(q); len(res.Rows) != 1 {
		t.Fatalf("out-of-band write visible without Invalidate: %d rows", len(res.Rows))
	}
	in.Invalidate()
	if res, err = in.Query(q); err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("post-Invalidate G∞ rows = %d, want 2", len(res.Rows))
	}
	if st := in.SaturationStats(); st.FullRecomputes != 2 {
		t.Errorf("Invalidate should force one rebuild: %+v", st)
	}
}

// TestFullResaturationAblation: WithFullResaturation restores the
// recompute-per-epoch path; answers match delta mode, stats say "full".
func TestFullResaturationAblation(t *testing.T) {
	in := mutableInstance(t, WithFullResaturation())
	const q = "QUERY q(?x)\nGRAPH { ?x a :person }"

	if res, err := in.Query(q); err != nil || len(res.Rows) != 1 {
		t.Fatalf("initial query: rows=%v err=%v", res, err)
	}
	in.AddTriples(rdf.MustParse("@prefix : <http://t.example/> .\n:p9 a :politician ."))
	if res, err := in.Query(q); err != nil || len(res.Rows) != 2 {
		t.Fatalf("post-insert query: rows=%v err=%v", res, err)
	}
	st := in.SaturationStats()
	if st.Mode != "full" {
		t.Errorf("mode = %q, want full", st.Mode)
	}
	if st.FullRecomputes != 2 {
		t.Errorf("fullRecomputes = %d, want 2 (every epoch move recomputes)", st.FullRecomputes)
	}
	if st.DeltaApplies != 0 {
		t.Errorf("deltaApplies = %d, want 0 in full mode", st.DeltaApplies)
	}
	if st.Derived <= 0 {
		t.Errorf("derived = %d, want > 0 with a cached saturation", st.Derived)
	}
}

// TestSaturationStatsOff: an unsaturated instance reports mode "off".
func TestSaturationStatsOff(t *testing.T) {
	in := mutableInstance(t)
	if st := in.SaturationStats(); st.Mode != "off" || st.Derived != 0 {
		t.Errorf("stats = %+v, want mode off", st)
	}
}

// TestInvalidateFlushesProbeCaches: Instance.Invalidate reaches the
// interposed per-source probe caches through the registry.
func TestInvalidateFlushesProbeCaches(t *testing.T) {
	in := mutableInstance(t)
	db := relstore.NewDatabase("insee")
	for _, stmt := range []string{
		"CREATE TABLE chomage (dept TEXT, taux FLOAT)",
		"INSERT INTO chomage VALUES ('75', 8.4)",
	} {
		if _, err := db.Exec(stmt); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.AddSource(source.NewRelSource("sql://insee", db)); err != nil {
		t.Fatal(err)
	}
	in.Sources().Interpose(func(s source.DataSource) source.DataSource {
		return source.NewCached(s, 16)
	})
	s, err := in.ResolveSource("sql://insee")
	if err != nil {
		t.Fatal(err)
	}
	cached := s.(*source.Cached)
	if _, err := cached.Execute(source.SubQuery{Language: source.LangSQL, Text: "SELECT dept FROM chomage"}, nil); err != nil {
		t.Fatal(err)
	}
	if cached.Stats().Entries != 1 {
		t.Fatalf("probe cache entries: %+v", cached.Stats())
	}
	epochBefore := in.Epoch()
	epoch, dropped := in.Invalidate()
	if epoch != epochBefore+1 {
		t.Errorf("Invalidate epoch %d, want %d", epoch, epochBefore+1)
	}
	if dropped != 1 {
		t.Errorf("Invalidate dropped %d probe entries, want 1", dropped)
	}
	if st := cached.Stats(); st.Entries != 0 || st.Invalidated != 1 {
		t.Errorf("probe cache after Invalidate: %+v", st)
	}
}
