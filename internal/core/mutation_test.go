package core

import (
	"testing"

	"tatooine/internal/rdf"
	"tatooine/internal/relstore"
	"tatooine/internal/source"
)

func mutableInstance(t *testing.T, opts ...InstanceOption) *Instance {
	t.Helper()
	g := rdf.NewGraph()
	g.AddAll(rdf.MustParse(`
@prefix : <http://t.example/> .
:p1 a :politician ; :position :headOfState .
:politician rdfs:subClassOf :person .
`))
	opts = append([]InstanceOption{WithPrefixes(map[string]string{"": "http://t.example/"})}, opts...)
	return NewInstance(g, opts...)
}

func TestMutationBumpsEpoch(t *testing.T) {
	in := mutableInstance(t)
	if in.Epoch() != 0 {
		t.Fatalf("fresh instance epoch = %d", in.Epoch())
	}
	added := in.AddTriples(rdf.MustParse(`
@prefix : <http://t.example/> .
:p2 a :politician .
`))
	if added != 1 || in.Epoch() != 1 {
		t.Fatalf("AddTriples: added=%d epoch=%d", added, in.Epoch())
	}
	// Re-inserting the same triple changes nothing: the epoch must not
	// move, so caches are not flushed for a no-op.
	if in.AddTriples(rdf.MustParse("@prefix : <http://t.example/> .\n:p2 a :politician .")) != 0 {
		t.Error("duplicate insert reported new triples")
	}
	if in.Epoch() != 1 {
		t.Errorf("no-op insert bumped epoch to %d", in.Epoch())
	}
	removed := in.RemoveTriples(rdf.MustParse("@prefix : <http://t.example/> .\n:p2 a :politician ."))
	if removed != 1 || in.Epoch() != 2 {
		t.Fatalf("RemoveTriples: removed=%d epoch=%d", removed, in.Epoch())
	}
	if in.RemoveTriples(rdf.MustParse("@prefix : <http://t.example/> .\n:p2 a :politician .")) != 0 || in.Epoch() != 2 {
		t.Error("removing an absent triple bumped the epoch")
	}

	db := relstore.NewDatabase("insee")
	if _, err := db.Exec("CREATE TABLE chomage (dept TEXT, taux FLOAT)"); err != nil {
		t.Fatal(err)
	}
	if err := in.AddSource(source.NewRelSource("sql://insee", db)); err != nil {
		t.Fatal(err)
	}
	if in.Epoch() != 3 {
		t.Errorf("AddSource epoch = %d, want 3", in.Epoch())
	}
	// A failed registration (duplicate URI) must not bump.
	if err := in.AddSource(source.NewRelSource("sql://insee", db)); err == nil {
		t.Fatal("duplicate AddSource succeeded")
	}
	if in.Epoch() != 3 {
		t.Errorf("failed AddSource bumped epoch to %d", in.Epoch())
	}
	if !in.DropSource("sql://insee") || in.Epoch() != 4 {
		t.Errorf("DropSource: epoch = %d, want 4", in.Epoch())
	}
	if in.DropSource("sql://insee") || in.Epoch() != 4 {
		t.Error("dropping an absent source bumped the epoch")
	}
	if _, err := in.ResolveSource("sql://insee"); err == nil {
		t.Error("dropped source still resolves")
	}
	if epoch, _ := in.Invalidate(); epoch != 5 {
		t.Errorf("Invalidate epoch = %d, want 5", epoch)
	}
}

// TestSaturationRecomputesAfterMutation is the regression test for the
// satOnce bug: the saturation of G was computed exactly once per
// instance lifetime, so a graph insert after the first query was
// silently invisible to G∞ queries forever.
func TestSaturationRecomputesAfterMutation(t *testing.T) {
	in := mutableInstance(t, WithSaturation())
	const q = "QUERY q(?x)\nGRAPH { ?x a :person }"

	res, err := in.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("pre-mutation G∞ rows: %+v", res.Rows)
	}

	// :p9 is a politician, hence (via rdfs9) a person — but only in a
	// saturation computed AFTER this insert.
	if in.AddTriples(rdf.MustParse("@prefix : <http://t.example/> .\n:p9 a :politician .")) != 1 {
		t.Fatal("insert did not apply")
	}
	res, err = in.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("post-mutation G∞ rows = %d, want 2 (stale saturation served)", len(res.Rows))
	}

	// Removal re-saturates too.
	if in.RemoveTriples(rdf.MustParse("@prefix : <http://t.example/> .\n:p9 a :politician .")) != 1 {
		t.Fatal("remove did not apply")
	}
	res, err = in.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("post-removal G∞ rows = %d, want 1", len(res.Rows))
	}
}

// TestInvalidateFlushesProbeCaches: Instance.Invalidate reaches the
// interposed per-source probe caches through the registry.
func TestInvalidateFlushesProbeCaches(t *testing.T) {
	in := mutableInstance(t)
	db := relstore.NewDatabase("insee")
	for _, stmt := range []string{
		"CREATE TABLE chomage (dept TEXT, taux FLOAT)",
		"INSERT INTO chomage VALUES ('75', 8.4)",
	} {
		if _, err := db.Exec(stmt); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.AddSource(source.NewRelSource("sql://insee", db)); err != nil {
		t.Fatal(err)
	}
	in.Sources().Interpose(func(s source.DataSource) source.DataSource {
		return source.NewCached(s, 16)
	})
	s, err := in.ResolveSource("sql://insee")
	if err != nil {
		t.Fatal(err)
	}
	cached := s.(*source.Cached)
	if _, err := cached.Execute(source.SubQuery{Language: source.LangSQL, Text: "SELECT dept FROM chomage"}, nil); err != nil {
		t.Fatal(err)
	}
	if cached.Stats().Entries != 1 {
		t.Fatalf("probe cache entries: %+v", cached.Stats())
	}
	epochBefore := in.Epoch()
	epoch, dropped := in.Invalidate()
	if epoch != epochBefore+1 {
		t.Errorf("Invalidate epoch %d, want %d", epoch, epochBefore+1)
	}
	if dropped != 1 {
		t.Errorf("Invalidate dropped %d probe entries, want 1", dropped)
	}
	if st := cached.Stats(); st.Entries != 0 || st.Invalidated != 1 {
		t.Errorf("probe cache after Invalidate: %+v", st)
	}
}
