package core

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"tatooine/internal/digest"
	"tatooine/internal/relstore"
	"tatooine/internal/source"
	"tatooine/internal/value"
)

// pruneFixture builds an instance whose seed scan yields mostly-absent
// keys for the bind-join target: the target table holds only 'a' and
// 'b', the seed also mentions four keys the target cannot match, so a
// digest-driven executor should prune four of six distinct probes.
func pruneFixture(t *testing.T) *Instance {
	t.Helper()
	in := NewInstance(nil)
	seed := relstore.NewDatabase("seed")
	for _, q := range []string{
		"CREATE TABLE seed (k TEXT)",
		"INSERT INTO seed (k) VALUES ('a'), ('b'), ('m0'), ('m1'), ('m2'), ('m3'), ('a')",
	} {
		if _, err := seed.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.AddSource(source.NewRelSource("sql://seed", seed)); err != nil {
		t.Fatal(err)
	}
	target := relstore.NewDatabase("target")
	for _, q := range []string{
		"CREATE TABLE t (k TEXT, v TEXT)",
		"INSERT INTO t VALUES ('a', 'va'), ('a', 'va2'), ('b', 'vb')",
	} {
		if _, err := target.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.AddSource(source.NewRelSource("sql://target", target)); err != nil {
		t.Fatal(err)
	}
	return in
}

const pruneQuery = `
QUERY q(?x, ?y)
FROM <sql://seed> OUT(?x) { SELECT k FROM seed }
FROM <sql://target> IN(?x) OUT(?x, ?y) { SELECT k, v FROM t WHERE k = ? }
`

// TestDigestPruningSkipsProbes checks the direct effect of semi-join
// pruning: bindings the target's digest excludes never probe, the
// skipped count surfaces in ExecStats.PrunedProbes, and the rows are
// identical to the unpruned execution — on both the materialized and
// the streaming executor.
func TestDigestPruningSkipsProbes(t *testing.T) {
	for _, mode := range []struct {
		name string
		opts ExecOptions
	}{
		{"streaming", ExecOptions{Parallel: true, ProbeBatch: 2}},
		{"materialized", ExecOptions{Parallel: true, Materialized: true, ProbeBatch: 2}},
		{"sequential", ExecOptions{Parallel: false, ProbeBatch: 2}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			in := pruneFixture(t)
			q := mustParse(t, pruneQuery)

			off := mode.opts
			off.NoDigestPlanning = true
			ref, err := in.ExecuteOpts(q, off)
			if err != nil {
				t.Fatal(err)
			}
			if ref.Stats.PrunedProbes != 0 {
				t.Fatalf("unpruned run reports %d pruned probes", ref.Stats.PrunedProbes)
			}

			res, err := in.ExecuteOpts(q, mode.opts)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := sortedRows(res), sortedRows(ref); !equalStrings(got, want) {
				t.Fatalf("pruned rows diverge:\n got %v\nwant %v", got, want)
			}
			// Six distinct keys, four provably absent from the target.
			if res.Stats.PrunedProbes != 4 {
				t.Fatalf("PrunedProbes = %d, want 4", res.Stats.PrunedProbes)
			}
			if res.Stats.SubQueries >= ref.Stats.SubQueries {
				t.Fatalf("pruned run shipped %d sub-queries, unpruned %d — pruning saved nothing",
					res.Stats.SubQueries, ref.Stats.SubQueries)
			}
		})
	}
}

// prunableFixture is randomFixture with per-source key domains offset
// against each other (s0: k0–k7, s1: k4–k11, s2: k8–k15), so random
// bind joins routinely carry keys the target source cannot match — the
// shape where digest pruning fires.
func prunableFixture(t *testing.T, rng *rand.Rand) *Instance {
	t.Helper()
	in := NewInstance(nil)
	for s := 0; s < 3; s++ {
		db := relstore.NewDatabase(fmt.Sprintf("s%d", s))
		if _, err := db.Exec("CREATE TABLE t (k TEXT, v TEXT)"); err != nil {
			t.Fatal(err)
		}
		lo := s * 4
		for i := 0; i < 12; i++ {
			var stmt string
			if rng.Intn(8) == 0 {
				stmt = fmt.Sprintf("INSERT INTO t (k) VALUES ('k%d')", lo+rng.Intn(8)) // NULL v
			} else {
				stmt = fmt.Sprintf("INSERT INTO t VALUES ('k%d', 'k%d')", lo+rng.Intn(8), lo+rng.Intn(8))
			}
			if _, err := db.Exec(stmt); err != nil {
				t.Fatal(err)
			}
		}
		if err := in.AddSource(source.NewRelSource(fmt.Sprintf("sql://s%d", s), db)); err != nil {
			t.Fatal(err)
		}
	}
	return in
}

// TestPrunedExecutionMatchesUnprunedProperty is the tentpole's
// correctness property: over randomized CMQs against sources with
// partially disjoint key domains, digest-pruned execution returns a
// row multiset identical to the unpruned reference in every executor
// mode — and the run as a whole must actually prune something, or the
// property is vacuous. Run under -race in CI.
func TestPrunedExecutionMatchesUnprunedProperty(t *testing.T) {
	const seeds, queries = 4, 20
	totalPruned := 0
	for seed := int64(0); seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		in := prunableFixture(t, rng)
		for qn := 0; qn < queries; qn++ {
			text := randomCMQ(rng)
			q := mustParse(t, text)
			ref, err := in.ExecuteOpts(q, ExecOptions{Parallel: false, NoDigestPlanning: true})
			if err != nil {
				t.Fatalf("seed %d query %d (unpruned ref): %v\n%s", seed, qn, err, text)
			}
			for _, cfg := range []struct {
				name string
				opts ExecOptions
			}{
				{"pruned-streaming", ExecOptions{Parallel: true}},
				{"pruned-materialized", ExecOptions{Parallel: true, Materialized: true}},
				{"pruned-sequential", ExecOptions{Parallel: false}},
				{"pruned-wave", ExecOptions{WaveBarrier: true, Parallel: true}},
			} {
				res, err := in.ExecuteOpts(q, cfg.opts)
				if err != nil {
					t.Fatalf("seed %d query %d (%s): %v\n%s", seed, qn, cfg.name, err, text)
				}
				if !equalStrings(res.Cols, ref.Cols) {
					t.Fatalf("seed %d query %d (%s): cols %v want %v\n%s",
						seed, qn, cfg.name, res.Cols, ref.Cols, text)
				}
				if got, want := sortedRows(res), sortedRows(ref); !equalStrings(got, want) {
					t.Fatalf("seed %d query %d (%s): row multiset diverges\n got %v\nwant %v\nquery:\n%s\nplan:\n%s",
						seed, qn, cfg.name, got, want, text, res.Plan.Explain(q))
				}
				totalPruned += res.Stats.PrunedProbes
			}
		}
	}
	if totalPruned == 0 {
		t.Fatal("property run never pruned a probe; the fixture no longer exercises pruning")
	}
}

// TestDigestPlanningTightensEstimates pins the planning half of the
// tentpole: the digest's statistics replace the source's flat
// selectivity guess, so estimate-vs-actual drift in ExecStats.Nodes
// shrinks. The query's predicate matches nothing; the digest proves it
// (estimate 0 = actual 0) where the flat guess stays positive.
func TestDigestPlanningTightensEstimates(t *testing.T) {
	in := pruneFixture(t)
	q := mustParse(t, `
QUERY q(?x, ?y)
FROM <sql://target> OUT(?x, ?y) { SELECT k, v FROM t WHERE k = 'absent' }
`)
	drift := func(opts ExecOptions) int {
		res, err := in.ExecuteOpts(q, opts)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, n := range res.Stats.Nodes {
			d := n.EstRows - n.Rows
			if d < 0 {
				d = -d
			}
			total += d
		}
		return total
	}
	flat := drift(ExecOptions{Parallel: true, NoDigestPlanning: true})
	refined := drift(ExecOptions{Parallel: true})
	if refined >= flat {
		t.Fatalf("digest planning did not tighten estimates: drift %d (refined) vs %d (flat)", refined, flat)
	}
	if refined != 0 {
		t.Fatalf("digest should prove the predicate empty (drift 0), got %d", refined)
	}
}

// prunableBatchSource is a scripted batch-capable bind-join target
// that advertises a digest covering only the keys it can match, and
// injects a small RTT so a BatchTuner observing its round trips would
// grow the batch size.
type prunableBatchSource struct {
	uri string
	dig *digest.Digest

	mu         sync.Mutex
	execCalls  int
	batchCalls int
}

func (s *prunableBatchSource) URI() string                           { return s.uri }
func (s *prunableBatchSource) Model() source.Model                   { return source.RelationalModel }
func (s *prunableBatchSource) Languages() []source.Language          { return []source.Language{source.LangSQL} }
func (s *prunableBatchSource) EstimateCost(source.SubQuery, int) int { return 1 }

func (s *prunableBatchSource) Digest(digest.Budget) (*digest.Digest, error) { return s.dig, nil }

func (s *prunableBatchSource) Execute(q source.SubQuery, params []value.Value) (*source.Result, error) {
	s.mu.Lock()
	s.execCalls++
	s.mu.Unlock()
	return &source.Result{Cols: []string{"k", "v"}}, nil
}

func (s *prunableBatchSource) ExecuteBatch(q source.SubQuery, paramSets []value.Row) ([]*source.Result, error) {
	s.mu.Lock()
	s.batchCalls++
	s.mu.Unlock()
	time.Sleep(2 * time.Millisecond) // above the tuner's wire floor, below its grow threshold
	out := make([]*source.Result, len(paramSets))
	for i := range out {
		out[i] = &source.Result{Cols: []string{"k", "v"}}
	}
	return out, nil
}

// TestTunerIgnoresFullyPrunedBindJoin pins the tuner satellite: when
// the digest prunes every binding, no chunk reaches the wire, so the
// adaptive batch size must not move — there was no round trip to learn
// from. The control run with pruning disabled dispatches batches and
// grows the size, proving the signal exists when probes do ship.
func TestTunerIgnoresFullyPrunedBindJoin(t *testing.T) {
	newInstance := func(t *testing.T) (*Instance, *prunableBatchSource) {
		t.Helper()
		in := NewInstance(nil)
		seed := relstore.NewDatabase("seed")
		for _, q := range []string{
			"CREATE TABLE seed (k TEXT)",
			"INSERT INTO seed (k) VALUES ('m0'), ('m1'), ('m2'), ('m3'), ('m4'), ('m5')",
		} {
			if _, err := seed.Exec(q); err != nil {
				t.Fatal(err)
			}
		}
		if err := in.AddSource(source.NewRelSource("sql://seed", seed)); err != nil {
			t.Fatal(err)
		}
		// The digest is built from a table holding only 'a' and 'b' —
		// every seed key is provably absent.
		db := relstore.NewDatabase("digest")
		for _, q := range []string{
			"CREATE TABLE t (k TEXT, v TEXT)",
			"INSERT INTO t VALUES ('a', 'va'), ('b', 'vb')",
		} {
			if _, err := db.Exec(q); err != nil {
				t.Fatal(err)
			}
		}
		probe := &prunableBatchSource{
			uri: "sql://probe",
			dig: digest.BuildRelational("sql://probe", db, digest.DefaultBudget()),
		}
		if err := in.AddSource(probe); err != nil {
			t.Fatal(err)
		}
		return in, probe
	}
	query := `
QUERY q(?x, ?y)
FROM <sql://seed> OUT(?x) { SELECT k FROM seed }
FROM <sql://probe> IN(?x) OUT(?x, ?y) { SELECT k, v FROM t WHERE k = ? }
`
	for _, mode := range []struct {
		name string
		opts ExecOptions
	}{
		{"streaming", ExecOptions{Parallel: true, ProbeBatch: 4}},
		{"materialized", ExecOptions{Parallel: true, Materialized: true, ProbeBatch: 4}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			in, probe := newInstance(t)
			q := mustParse(t, query)

			opts := mode.opts
			opts.Tuner = NewBatchTuner()
			res, err := in.ExecuteOpts(q, opts)
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.PrunedProbes != 6 {
				t.Fatalf("PrunedProbes = %d, want 6 (every binding)", res.Stats.PrunedProbes)
			}
			if res.Stats.BatchProbes != 0 || probe.batchCalls != 0 {
				t.Fatalf("fully-pruned bind join dispatched %d batches (%d stats)", probe.batchCalls, res.Stats.BatchProbes)
			}
			if got := opts.Tuner.Size(probe.uri, mode.opts.ProbeBatch); got != MinProbeBatch {
				t.Fatalf("tuner moved to %d on zero probes, want the %d floor untouched", got, MinProbeBatch)
			}

			// Control: with pruning off the same query ships batches and the
			// tuner grows the size from the observed (fast) round trips.
			in2, probe2 := newInstance(t)
			off := mode.opts
			off.Tuner = NewBatchTuner()
			off.NoDigestPlanning = true
			if _, err := in2.ExecuteOpts(q, off); err != nil {
				t.Fatal(err)
			}
			if probe2.batchCalls == 0 {
				t.Fatal("control run dispatched no batches; the fixture no longer exercises batching")
			}
			if got := off.Tuner.Size(probe2.uri, mode.opts.ProbeBatch); got <= MinProbeBatch {
				t.Fatalf("control tuner size = %d, expected growth past the %d floor", got, MinProbeBatch)
			}
		})
	}
}

// TestExplainReportsPruningDecision checks {"explain": true} carries
// the per-atom pruning decision alongside the refined row estimates.
func TestExplainReportsPruningDecision(t *testing.T) {
	in := pruneFixture(t)
	q := mustParse(t, pruneQuery)
	info, err := in.ExplainQuery(q, ExecOptions{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Atoms) != 2 {
		t.Fatalf("atoms: %d", len(info.Atoms))
	}
	if info.Atoms[0].Pruning != "" {
		t.Errorf("scan atom has a pruning decision: %q", info.Atoms[0].Pruning)
	}
	if got := info.Atoms[1].Pruning; !strings.Contains(got, "digest covers") {
		t.Errorf("bind-join pruning decision: %q", got)
	}

	off, err := in.ExplainQuery(q, ExecOptions{Parallel: true, NoDigestPlanning: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := off.Atoms[1].Pruning; !strings.Contains(got, "disabled") {
		t.Errorf("ablation pruning decision: %q", got)
	}
}
