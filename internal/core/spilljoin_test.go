package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"tatooine/internal/value"
)

// spillFixtureRels builds a join pair with duplicate keys, null keys
// and string payloads: enough entropy that any multiset divergence
// between the in-memory and spilled paths shows.
func spillFixtureRels(nLeft, nRight, keySpace int, seed int64) (*Relation, *Relation) {
	rng := rand.New(rand.NewSource(seed))
	left := &Relation{Cols: []string{"a", "k"}}
	for i := 0; i < nLeft; i++ {
		k := value.NewString(fmt.Sprintf("key%03d", rng.Intn(keySpace)))
		if rng.Intn(20) == 0 {
			k = value.NewNull() // null keys never join
		}
		left.Rows = append(left.Rows, value.Row{value.NewInt(int64(i)), k})
	}
	right := &Relation{Cols: []string{"k", "v"}}
	for i := 0; i < nRight; i++ {
		k := value.NewString(fmt.Sprintf("key%03d", rng.Intn(keySpace)))
		if rng.Intn(20) == 0 {
			k = value.NewNull()
		}
		right.Rows = append(right.Rows, value.Row{k, value.NewString(fmt.Sprintf("payload-%04d-%s", i, string(make([]byte, rng.Intn(40)))))})
	}
	return left, right
}

func rowMultiset(t *testing.T, rows []value.Row) []string {
	t.Helper()
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.Key()
	}
	sort.Strings(out)
	return out
}

// TestHashJoinSpillMatchesInMemory is the core property: a join forced
// to spill produces exactly the row multiset of the in-memory join —
// duplicates preserved, null keys dropped — and reports spilled bytes.
func TestHashJoinSpillMatchesInMemory(t *testing.T) {
	for _, tc := range []struct {
		name                string
		nLeft, nRight, keys int
		seed                int64
	}{
		{"dense-overlap", 400, 600, 50, 1},
		{"sparse-overlap", 300, 300, 5000, 2},
		{"skewed-single-key", 200, 500, 2, 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			left, right := spillFixtureRels(tc.nLeft, tc.nRight, tc.keys, tc.seed)
			ref, err := Materialize(NewHashJoin(NewScan(left), NewScan(right)))
			if err != nil {
				t.Fatal(err)
			}
			var spilled int64
			j := NewHashJoinBudget(NewScan(left), NewScan(right), 1<<10,
				func(b int64) { spilled += b })
			got, err := Materialize(j)
			if err != nil {
				t.Fatal(err)
			}
			if spilled <= 0 {
				t.Fatalf("build side of %d rows under a 1 KiB budget did not spill", tc.nRight)
			}
			wantRows, gotRows := rowMultiset(t, ref.Rows), rowMultiset(t, got.Rows)
			if len(gotRows) != len(wantRows) {
				t.Fatalf("spilled join returned %d rows, in-memory %d", len(gotRows), len(wantRows))
			}
			for i := range wantRows {
				if gotRows[i] != wantRows[i] {
					t.Fatalf("row multiset diverges at %d:\n got %q\nwant %q", i, gotRows[i], wantRows[i])
				}
			}
		})
	}
}

// TestHashJoinBudgetNoSpillUnderBudget: a build side within budget must
// never touch disk, and a generous budget changes nothing about the
// result.
func TestHashJoinBudgetNoSpillUnderBudget(t *testing.T) {
	left, right := spillFixtureRels(50, 40, 20, 7)
	var spilled int64
	j := NewHashJoinBudget(NewScan(left), NewScan(right), 1<<30,
		func(b int64) { spilled += b })
	got, err := Materialize(j)
	if err != nil {
		t.Fatal(err)
	}
	if spilled != 0 {
		t.Fatalf("join within budget spilled %d bytes", spilled)
	}
	ref, err := Materialize(NewHashJoin(NewScan(left), NewScan(right)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != len(ref.Rows) {
		t.Fatalf("got %d rows, want %d", len(got.Rows), len(ref.Rows))
	}
}

// TestHashJoinCrossProductNeverSpills: with no shared columns there is
// no key to partition on; the join must run in memory regardless of
// budget rather than failing or spilling uselessly.
func TestHashJoinCrossProductNeverSpills(t *testing.T) {
	left := &Relation{Cols: []string{"a"}}
	right := &Relation{Cols: []string{"b"}}
	for i := 0; i < 100; i++ {
		left.Rows = append(left.Rows, value.Row{value.NewInt(int64(i))})
		right.Rows = append(right.Rows, value.Row{value.NewString(fmt.Sprintf("r%d", i))})
	}
	var spilled int64
	j := NewHashJoinBudget(NewScan(left), NewScan(right), 1,
		func(b int64) { spilled += b })
	got, err := Materialize(j)
	if err != nil {
		t.Fatal(err)
	}
	if spilled != 0 {
		t.Fatalf("cross product spilled %d bytes", spilled)
	}
	if len(got.Rows) != 100*100 {
		t.Fatalf("cross product returned %d rows, want %d", len(got.Rows), 100*100)
	}
}

// TestSpillJoinExecutorParity runs the same federated query with and
// without a (tiny) join memory budget across the materialized,
// streaming and sequential executors: row multisets must be identical,
// and the budgeted runs must report the spill in ExecStats.
func TestSpillJoinExecutorParity(t *testing.T) {
	const keys = 150
	q := mustParse(t, streamQuery)
	refIn, _ := streamFixture(t, keys, 0)
	ref, err := refIn.ExecuteOpts(q, ExecOptions{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Rows) != keys {
		t.Fatalf("reference returned %d rows, want %d", len(ref.Rows), keys)
	}
	want := rowMultiset(t, ref.Rows)
	for _, tc := range []struct {
		name string
		opts ExecOptions
	}{
		{"streaming", ExecOptions{Parallel: true, JoinMemBudget: 256}},
		{"materialized", ExecOptions{Parallel: true, Materialized: true, JoinMemBudget: 256}},
		{"sequential", ExecOptions{Parallel: false, JoinMemBudget: 256}},
		{"wave-barrier", ExecOptions{WaveBarrier: true, JoinMemBudget: 256}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			in, _ := streamFixture(t, keys, 0)
			res, err := in.ExecuteOpts(q, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			got := rowMultiset(t, res.Rows)
			if len(got) != len(want) {
				t.Fatalf("budgeted run returned %d rows, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("row multiset diverges at %d: got %q, want %q", i, got[i], want[i])
				}
			}
			if res.Stats.SpilledJoins == 0 {
				t.Fatal("256-byte budget over 150 build rows did not report a spilled join")
			}
			if res.Stats.SpilledBytes <= 0 {
				t.Fatalf("SpilledJoins=%d but SpilledBytes=%d", res.Stats.SpilledJoins, res.Stats.SpilledBytes)
			}
		})
	}
}
