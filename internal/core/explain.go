package core

import (
	"context"
	"strconv"
	"strings"

	"tatooine/internal/source"
)

// AtomExplain reports, for one planned atom, how the executor would
// probe its source — in particular whether bind-join probes would ship
// batched (source.BatchProber) or per tuple.
type AtomExplain struct {
	Atom       int    `json:"atom"`           // index in the CMQ body
	Designator string `json:"designator"`     // source URI, ?var, or GRAPH
	Wave       int    `json:"wave"`           // dependency depth in the operator DAG
	Deps       []int  `json:"deps,omitempty"` // plan-step positions feeding this node
	Mode       string `json:"mode"`           // "scan" or "bind-join(vars)" [+ " dynamic"]
	EstRows    int    `json:"estRows"`        // planner cardinality estimate (-1 unknown)
	EstCost    int    `json:"estCost"`        // planner effort estimate (-1 unknown)
	Batched    bool   `json:"batched"`        // probes would ship as batches
	BatchSize  int    `json:"batchSize,omitempty"`
	Reason     string `json:"reason"` // why (not) batched
	// Pruning reports, for bind joins, whether digest semi-join pruning
	// would apply (and why not when it wouldn't).
	Pruning string `json:"pruning,omitempty"`
	// Spill reports, when a join memory budget is set, whether this
	// node's estimated output — a residual-join build side — would
	// exceed the budget and run as a partitioned on-disk join.
	Spill string `json:"spill,omitempty"`
}

// spillEstRowBytes is the per-row footprint the explain path assumes
// when sizing a node's output against the join memory budget (the
// executor measures real footprints at run time; explain only has
// cardinalities).
const spillEstRowBytes = 64

// ExplainInfo is the plan-only answer to an explain request: the
// rendered plan plus the per-atom probe decisions, computed without
// executing anything.
type ExplainInfo struct {
	Plan  string        `json:"plan"`
	Atoms []AtomExplain `json:"atoms"`
}

// ExplainQuery plans q under opts and reports, per atom, whether its
// bind-join probes would be batched, without executing the query.
// Dynamic atoms resolve their sources only at run time, so their
// decision is reported as undetermined.
func (in *Instance) ExplainQuery(q *CMQ, opts ExecOptions) (*ExplainInfo, error) {
	if opts.ProbeBatch == 0 {
		opts.ProbeBatch = DefaultProbeBatch
	}
	plan, err := in.planQuery(context.Background(), q, opts)
	if err != nil {
		return nil, err
	}
	info := &ExplainInfo{Plan: plan.Explain(q)}
	for _, s := range plan.Steps {
		a := q.Atoms[s.AtomIndex]
		ae := AtomExplain{
			Atom:       s.AtomIndex,
			Designator: a.Designator(),
			Wave:       s.Wave,
			Deps:       s.Deps,
			EstRows:    s.EstRows,
			EstCost:    s.EstCost,
			Mode:       "scan",
		}
		if s.BindJoin {
			ae.Mode = "bind-join(" + strings.Join(a.Sub.InVars, ",") + ")"
		}
		if s.Dynamic {
			ae.Mode += " dynamic"
		}
		switch {
		case !s.BindJoin:
			ae.Reason = "not a bind join: single sub-query, nothing to batch"
		case opts.ProbeBatch <= 1:
			ae.Reason = "batching disabled (ProbeBatch <= 1)"
		case s.Dynamic:
			ae.Reason = "dynamic source: capability known only after the designator binds at run time"
		default:
			src, err := in.atomExplainSource(a, q.Prefixes)
			if err != nil {
				ae.Reason = "source unresolvable at plan time: " + err.Error()
				break
			}
			if source.CanBatch(src) {
				ae.Batched = true
				ae.BatchSize = opts.ProbeBatch
				ae.Reason = "source supports batched probes; tuples ship in batches of " + strconv.Itoa(opts.ProbeBatch)
			} else {
				ae.Reason = "source lacks the BatchProber capability; probes ship per tuple"
			}
		}
		if s.BindJoin {
			switch {
			case opts.NoDigestPlanning:
				ae.Pruning = "digest planning disabled (-digest-planning=false); every distinct binding probes"
			case s.Dynamic:
				ae.Pruning = "dynamic source: pruning decided per discovered source at run time"
			default:
				if src, err := in.atomExplainSource(a, q.Prefixes); err == nil {
					if m := in.atomPruner(context.Background(), src, a, q.Prefixes); m != nil {
						ae.Pruning = "digest covers the parameter positions; bindings the digest excludes are skipped before probing"
					} else {
						ae.Pruning = "no prunable digest statistics for this sub-query shape; every distinct binding probes"
					}
				}
			}
		}
		if opts.JoinMemBudget > 0 {
			switch {
			case s.EstRows < 0:
				ae.Spill = "unknown cardinality; spill decided against the budget at run time"
			case int64(s.EstRows)*spillEstRowBytes > opts.JoinMemBudget:
				ae.Spill = "estimated ~" + strconv.FormatInt(int64(s.EstRows)*spillEstRowBytes, 10) +
					" bytes as a join build side exceeds the " +
					strconv.FormatInt(opts.JoinMemBudget, 10) + "-byte budget; would spill to disk"
			default:
				ae.Spill = "estimated build side fits the join memory budget"
			}
		}
		info.Atoms = append(info.Atoms, ae)
	}
	return info, nil
}

// atomExplainSource resolves the source an atom would execute against.
func (in *Instance) atomExplainSource(a Atom, prefixes map[string]string) (source.DataSource, error) {
	if a.Kind == GraphAtom {
		return in.graphSource(prefixes), nil
	}
	return in.ResolveSource(a.SourceURI)
}
